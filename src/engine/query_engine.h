/// \file query_engine.h
/// \brief Read/write job execution with a file-layout-sensitive cost model.
///
/// Reads plan against LST metadata (planning cost grows with manifest
/// bloat), open every data file on the distributed filesystem (RPC
/// pressure, possible timeouts), and scan bytes at the cluster's
/// throughput across slots (queue contention). Writes plan output files
/// with the writer profile, create them in storage, and commit with
/// optimistic concurrency — surfacing the client-side write-write
/// conflicts of Table 1.

#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "common/blob.h"
#include "common/clock.h"
#include "common/random.h"
#include "engine/cluster.h"
#include "engine/write_planner.h"
#include "format/columnar.h"
#include "lst/transaction.h"

namespace autocomp::engine {

/// \brief Outcome of one read query.
struct QueryResult {
  SimTime submit_time = 0;
  double planning_seconds = 0;
  double queue_wait_seconds = 0;
  double execution_seconds = 0;  // end-to-end minus planning
  double total_seconds = 0;
  int64_t files_scanned = 0;
  int64_t bytes_scanned = 0;
  int open_timeouts = 0;
  double gb_hours = 0;
};

enum class WriteKind : int {
  kAppend,
  /// Copy-on-write update: replaced files leave, new files join.
  kOverwrite,
  /// Data removal (CoW delete).
  kDelete,
  /// Merge-on-read update: instead of rewriting data files, appends
  /// position-delete files that accumulate until compaction folds them
  /// (§2: "MoR configurations generate delta files that accumulate").
  kMorDelete,
};

/// \brief Description of one write job.
struct WriteSpec {
  std::string table;
  WriteKind kind = WriteKind::kAppend;
  /// Logical bytes written (before compression).
  int64_t logical_bytes = 0;
  /// Target partition keys (empty = unpartitioned).
  std::vector<std::string> partitions;
  WriterProfile profile = UntunedUserJobProfile();
  /// For kOverwrite/kDelete: fraction of live files in the touched
  /// partitions that the operation replaces/removes.
  double replace_fraction = 0.05;
  /// Client-side commit retries before giving up (each retry is a
  /// client-side conflict in Table 1).
  int max_commit_retries = 3;
};

/// \brief Outcome of one write job.
struct WriteResult {
  SimTime submit_time = 0;
  double total_seconds = 0;
  int64_t files_written = 0;
  int64_t files_replaced = 0;
  int64_t bytes_written = 0;
  /// Rebase retries performed by the commit (0 = clean).
  int commit_retries = 0;
  /// True when the commit was ultimately lost to a conflict.
  bool conflict_failed = false;
  int64_t snapshot_id = 0;
  double gb_hours = 0;
};

/// \brief Cost-model knobs beyond the cluster's.
struct QueryEngineOptions {
  /// Write path costs this multiple of the scan path per byte.
  double write_amplification = 1.6;
  format::ColumnarFormatOptions format_options = {};
  lst::ValidationMode validation_mode = lst::ValidationMode::kStrictTableLevel;
  uint64_t seed = 1234;
  /// Writer id baked into generated file names. 0 (default) draws from a
  /// process-wide counter — unique across engines sharing a catalog, but
  /// dependent on construction order. The shard-parallel fleet driver
  /// pins it explicitly so file names (and everything downstream of them,
  /// like per-path timeout draws) are reproducible across runs in one
  /// process. Callers pinning ids must not share a catalog between
  /// engines with equal ids.
  int writer_id = 0;
};

/// \brief Executes read and write jobs against one cluster + catalog.
class QueryEngine {
 public:
  QueryEngine(Cluster* cluster, catalog::Catalog* catalog, const Clock* clock,
              QueryEngineOptions options = {});

  /// Runs a scan of `table` (optionally one partition) submitted at
  /// `submit_time`. `selectivity` in (0, 1] is the fraction of rows the
  /// query's predicates need: *clustered* files let the scan skip to the
  /// matching row groups and read only that fraction (§8's layout
  /// optimization); unclustered files are read in full regardless.
  Result<QueryResult> ExecuteRead(
      const std::string& table, const std::optional<std::string>& partition,
      SimTime submit_time, double selectivity = 1.0);

  /// Runs a write job submitted at `submit_time`.
  Result<WriteResult> ExecuteWrite(const WriteSpec& spec, SimTime submit_time);

  const format::ColumnarFileModel& format() const { return format_; }
  Cluster* cluster() { return cluster_; }

  /// \name Lane checkpoint (DESIGN.md §10): RNG stream position + file
  /// counter, so restored writes produce identical sizes and paths.
  /// @{
  void SaveState(common::BlobWriter* w) const {
    const Rng::State s = rng_.SaveState();
    for (uint64_t v : s.state) w->WriteU64(v);
    w->WriteU64(s.origin_seed);
    w->WriteBool(s.have_cached_normal);
    w->WriteF64(s.cached_normal);
    w->WriteI64(file_counter_);
  }
  void RestoreState(common::BlobReader* r) {
    Rng::State s;
    for (uint64_t& v : s.state) v = r->ReadU64();
    s.origin_seed = r->ReadU64();
    s.have_cached_normal = r->ReadBool();
    s.cached_normal = r->ReadF64();
    rng_.RestoreState(s);
    file_counter_ = r->ReadI64();
  }
  /// @}

 private:
  /// Unique file path under the table location.
  std::string NewFilePath(const lst::TableMetadata& meta,
                          const std::string& partition, const char* op);

  Cluster* cluster_;
  catalog::Catalog* catalog_;
  const Clock* clock_;
  QueryEngineOptions options_;
  format::ColumnarFileModel format_;
  Rng rng_;
  /// Distinguishes writers sharing one catalog (unique file names).
  int writer_id_;
  int64_t file_counter_ = 0;
};

}  // namespace autocomp::engine
