/// \file write_planner.h
/// \brief Models how engine writers fragment data into files.
///
/// The paper attributes small-file proliferation to engine configuration:
/// shuffle partition counts, parallelism, memory limits, AQE advisory
/// sizes (§2 "Causes of Small File Existence", §8 "Tuning Write ...").
/// The planner turns "this job writes B logical bytes into partitions P"
/// into a concrete list of file sizes, reproducing both the well-tuned
/// central-ingestion pipeline (≈512MB files) and untuned user jobs
/// (lognormal small-file spray) from Figure 1.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/units.h"
#include "format/columnar.h"

namespace autocomp::engine {

/// \brief Writer tuning profile.
struct WriterProfile {
  /// Bytes of *stored* data the writer aims at per file. The central
  /// pipeline uses 512MiB; untuned user jobs land much lower.
  int64_t target_file_bytes = 512 * kMiB;
  /// Parallel write tasks; each open output partition gets one file per
  /// task that received rows for it (the Spark small-file mechanism:
  /// files ~= tasks × partitions).
  int write_tasks = 1;
  /// Lognormal sigma jittering individual file sizes (0 = exact).
  double size_jitter_sigma = 0.35;
  /// Tuned writers repartition before the final write so the output file
  /// count follows the target size; untuned writers flush one file per
  /// task that received rows (Spark's default behaviour).
  bool coalesce_output = false;
};

/// Profile of LinkedIn's managed ingestion pipeline (§2): tuned writers.
WriterProfile TunedPipelineProfile();
/// Profile of an untuned end-user Spark/Trino/Flink job (§2): high
/// parallelism, small per-task flushes.
WriterProfile UntunedUserJobProfile();

/// \brief One file the planner decided to produce.
struct PlannedFile {
  std::string partition;  // empty for unpartitioned
  int64_t stored_bytes = 0;
  int64_t record_count = 0;
};

/// \brief Plans output files for a write of `logical_bytes`, split evenly
/// across `partitions` (empty vector = one unpartitioned chunk).
///
/// Per partition the writer emits max(1, min(write_tasks,
/// ceil(bytes/target))) files under a tuned profile; untuned profiles emit
/// one file per task that received rows, so a 128-task job writing 100MB
/// into a partition sprays 128 tiny files. File sizes get deterministic
/// lognormal jitter from `rng`.
std::vector<PlannedFile> PlanWriteFiles(
    int64_t logical_bytes, const std::vector<std::string>& partitions,
    const WriterProfile& profile, const format::ColumnarFileModel& format,
    Rng* rng);

/// \brief Exact number of files PlanWriteFiles would emit, without
/// drawing from any rng. The planner's rng only jitters file *sizes*;
/// the count is pure arithmetic in (logical_bytes, partition count,
/// profile, format). The lazy fleet driver uses this to publish an
/// unhydrated lane's NameNode CreateFile contribution into the epoch
/// barrier before the lane's environment exists.
int64_t PlannedFileCount(int64_t logical_bytes, size_t num_partitions,
                         const WriterProfile& profile,
                         const format::ColumnarFileModel& format);

}  // namespace autocomp::engine
