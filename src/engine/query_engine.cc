#include "engine/query_engine.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cmath>

#include "common/logging.h"

namespace autocomp::engine {

namespace {
/// Process-wide writer-instance counter: several engines may share one
/// catalog (e.g. a sidecar write cluster), so file names carry a distinct
/// writer id to stay collision-free.
std::atomic<int> g_writer_instances{0};
}  // namespace

QueryEngine::QueryEngine(Cluster* cluster, catalog::Catalog* catalog,
                         const Clock* clock, QueryEngineOptions options)
    : cluster_(cluster),
      catalog_(catalog),
      clock_(clock),
      options_(options),
      format_(options.format_options),
      rng_(options.seed),
      writer_id_(options.writer_id > 0 ? options.writer_id
                                       : ++g_writer_instances) {
  assert(cluster_ != nullptr && catalog_ != nullptr && clock_ != nullptr);
}

std::string QueryEngine::NewFilePath(const lst::TableMetadata& meta,
                                     const std::string& partition,
                                     const char* op) {
  std::string dir = meta.location();
  if (!partition.empty()) dir += "/" + partition;
  return dir + "/" + op + "-w" + std::to_string(writer_id_) + "-" +
         std::to_string(++file_counter_) + ".parquet";
}

Result<QueryResult> QueryEngine::ExecuteRead(
    const std::string& table, const std::optional<std::string>& partition,
    SimTime submit_time, double selectivity) {
  selectivity = std::clamp(selectivity, 0.05, 1.0);
  AUTOCOMP_ASSIGN_OR_RETURN(lst::Table handle, catalog_->GetTable(table));
  AUTOCOMP_ASSIGN_OR_RETURN(lst::ScanPlan plan, handle.PlanScan(partition));
  catalog_->RecordTableRead(table);

  QueryResult result;
  result.submit_time = submit_time;
  const ClusterOptions& copts = cluster_->options();
  result.planning_seconds =
      copts.plan_seconds_per_manifest * static_cast<double>(
          plan.manifests_scanned) +
      copts.plan_seconds_per_file * static_cast<double>(plan.files.size());

  // Open every data file; under NameNode overload some opens time out and
  // the client pays a retry penalty.
  double timeout_penalty = 0;
  storage::DistributedFileSystem* dfs = catalog_->filesystem();
  for (const lst::DataFile& f : plan.files) {
    auto opened = dfs->Open(f.path);
    if (!opened.ok() && opened.status().IsTimedOut()) {
      ++result.open_timeouts;
      timeout_penalty += copts.timeout_retry_seconds;
      opened = dfs->Open(f.path);  // client retry
      if (!opened.ok() && opened.status().IsTimedOut()) {
        ++result.open_timeouts;
        timeout_penalty += copts.timeout_retry_seconds;
      }
    }
  }

  // One scan task per split; small files pay the open overhead per file,
  // and MoR delete files add a merge penalty on top of their own read.
  std::vector<double> tasks;
  tasks.reserve(plan.files.size());
  for (const lst::DataFile& f : plan.files) {
    // Clustered files support row-group skipping: only the selected
    // fraction of the file's bytes is read.
    const int64_t effective_bytes =
        f.clustered ? std::max<int64_t>(
                          1, static_cast<int64_t>(std::llround(
                                 selectivity *
                                 static_cast<double>(f.file_size_bytes))))
                    : f.file_size_bytes;
    int64_t remaining = std::max<int64_t>(1, effective_bytes);
    bool first_split = true;
    while (remaining > 0) {
      const int64_t chunk = std::min(remaining, copts.split_bytes);
      double secs = static_cast<double>(chunk) / copts.scan_bytes_per_second;
      if (first_split) {
        secs += copts.open_seconds_per_file;
        if (f.content == lst::FileContent::kPositionDeletes) {
          secs += copts.mor_merge_seconds_per_delete_file;
        }
        first_split = false;
      }
      tasks.push_back(secs);
      remaining -= chunk;
    }
    result.bytes_scanned += effective_bytes;
  }
  result.files_scanned = static_cast<int64_t>(plan.files.size());

  const SimTime exec_submit =
      submit_time + static_cast<SimTime>(std::llround(
                        result.planning_seconds + timeout_penalty));
  const TaskBagResult bag = cluster_->RunTasks(exec_submit, tasks);
  result.queue_wait_seconds = bag.queue_wait_seconds;
  result.execution_seconds =
      static_cast<double>(bag.end_time - exec_submit) + timeout_penalty;
  result.total_seconds =
      result.planning_seconds + result.execution_seconds;
  result.gb_hours = cluster_->GbHoursFor(bag.busy_seconds);
  return result;
}

Result<WriteResult> QueryEngine::ExecuteWrite(const WriteSpec& spec,
                                              SimTime submit_time) {
  AUTOCOMP_ASSIGN_OR_RETURN(lst::Table handle, catalog_->GetTable(spec.table));
  AUTOCOMP_ASSIGN_OR_RETURN(lst::TableMetadataPtr meta, handle.Metadata());

  WriteResult result;
  result.submit_time = submit_time;

  // Plan output files (empty for pure CoW deletes). MoR deletes write
  // small positional delta files — one per touched partition per task
  // flush — whose logical payload is tiny relative to the rows they mask.
  std::vector<PlannedFile> planned;
  if (spec.kind != WriteKind::kDelete) {
    planned = PlanWriteFiles(spec.logical_bytes, spec.partitions, spec.profile,
                             format_, &rng_);
  }

  // Choose replaced files for overwrite/delete: a deterministic sample of
  // live files in the touched partitions. MoR deletes replace nothing.
  std::vector<std::string> replaced;
  if (spec.kind != WriteKind::kAppend && spec.kind != WriteKind::kMorDelete) {
    // Only the paths are needed; visit manifests in place instead of
    // materializing DataFile copies per write.
    std::vector<std::string> pool;
    const auto collect = [&pool](const lst::DataFile& f) {
      pool.push_back(f.path);
    };
    if (spec.partitions.empty()) {
      meta->ForEachLiveFile(collect);
    } else {
      for (const std::string& p : spec.partitions) {
        meta->ForEachLiveFile(collect, p);
      }
    }
    const auto want = static_cast<size_t>(std::llround(
        static_cast<double>(pool.size()) * spec.replace_fraction));
    for (size_t i = 0; i < pool.size() && replaced.size() < want; ++i) {
      if (rng_.Bernoulli(spec.replace_fraction * 2)) {
        replaced.push_back(pool[i]);
      }
    }
    if (replaced.empty() && !pool.empty() && want > 0) {
      replaced.push_back(pool.front());
    }
  }

  // Create the planned files in storage.
  std::vector<lst::DataFile> added;
  added.reserve(planned.size());
  storage::DistributedFileSystem* dfs = catalog_->filesystem();
  const bool mor = spec.kind == WriteKind::kMorDelete;
  for (const PlannedFile& pf : planned) {
    lst::DataFile df;
    df.path = NewFilePath(*meta, pf.partition, mor ? "delete" : "part");
    df.partition = pf.partition;
    df.content =
        mor ? lst::FileContent::kPositionDeletes : lst::FileContent::kData;
    df.file_size_bytes = pf.stored_bytes;
    df.record_count = pf.record_count;
    const Status st =
        dfs->CreateFile(df.path, df.file_size_bytes, df.record_count);
    if (!st.ok()) {
      // Quota breach or duplicate: abort the job, clean up partial output.
      for (const lst::DataFile& created : added) {
        (void)dfs->DeleteFile(created.path);
      }
      return st;
    }
    result.bytes_written += df.file_size_bytes;
    added.push_back(std::move(df));
  }

  // Stage and commit the transaction.
  AUTOCOMP_ASSIGN_OR_RETURN(lst::Transaction txn,
                            handle.NewTransaction(options_.validation_mode));
  switch (spec.kind) {
    case WriteKind::kAppend:
    case WriteKind::kMorDelete:  // delta files are appended, never replace
      AUTOCOMP_RETURN_NOT_OK(txn.Append(added));
      break;
    case WriteKind::kOverwrite:
      AUTOCOMP_RETURN_NOT_OK(txn.Overwrite(replaced, added));
      break;
    case WriteKind::kDelete:
      if (replaced.empty()) {
        return Status::FailedPrecondition("nothing to delete in " +
                                          spec.table);
      }
      AUTOCOMP_RETURN_NOT_OK(txn.DeleteFiles(replaced));
      break;
  }

  // Cost model: write bytes at amplified scan cost across tasks.
  std::vector<double> tasks;
  tasks.reserve(added.size() + 1);
  const ClusterOptions& copts = cluster_->options();
  for (const lst::DataFile& df : added) {
    tasks.push_back(copts.open_seconds_per_file +
                    options_.write_amplification *
                        static_cast<double>(df.file_size_bytes) /
                        copts.scan_bytes_per_second);
  }
  if (tasks.empty()) tasks.push_back(copts.open_seconds_per_file);
  const TaskBagResult bag = cluster_->RunTasks(submit_time, tasks);

  auto committed = txn.CommitWithRetries(spec.max_commit_retries);
  if (!committed.ok()) {
    if (committed.status().IsCommitConflict()) {
      // Lost the race: the job fails client-side and its output files are
      // garbage-collected.
      for (const lst::DataFile& created : added) {
        (void)dfs->DeleteFile(created.path);
      }
      result.conflict_failed = true;
      result.commit_retries = spec.max_commit_retries;
      result.total_seconds = static_cast<double>(bag.end_time - submit_time);
      result.gb_hours = cluster_->GbHoursFor(bag.busy_seconds);
      return result;
    }
    return committed.status();
  }
  result.commit_retries = committed->retries;
  result.snapshot_id = committed->snapshot_id;
  result.files_written = static_cast<int64_t>(added.size());
  result.files_replaced = static_cast<int64_t>(replaced.size());
  result.total_seconds = static_cast<double>(bag.end_time - submit_time) +
                         3.0 * committed->retries;  // retry round-trips
  result.gb_hours = cluster_->GbHoursFor(bag.busy_seconds);
  return result;
}

}  // namespace autocomp::engine
