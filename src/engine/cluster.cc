#include "engine/cluster.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <functional>
#include <limits>

namespace autocomp::engine {

Cluster::Cluster(std::string name, ClusterOptions options, const Clock* clock)
    : name_(std::move(name)), options_(options), clock_(clock) {
  assert(clock_ != nullptr);
  assert(options_.executors > 0 && options_.cores_per_executor > 0);
  slot_free_at_.assign(static_cast<size_t>(total_slots()), 0.0);
}

TaskBagResult Cluster::RunTasks(SimTime submit_time,
                                const std::vector<double>& task_seconds) {
  TaskBagResult result;
  result.start_time = submit_time;
  result.end_time = submit_time;
  if (task_seconds.empty()) return result;

  // Longest-processing-time-first placement.
  std::vector<double> tasks = task_seconds;
  std::sort(tasks.begin(), tasks.end(), std::greater<double>());

  const double submit = static_cast<double>(submit_time);
  double first_start = std::numeric_limits<double>::max();
  double last_end = submit;
  for (double duration : tasks) {
    duration = std::max(0.0, duration);
    // Earliest-available slot; ties resolved by index (deterministic).
    size_t best = 0;
    for (size_t i = 1; i < slot_free_at_.size(); ++i) {
      if (slot_free_at_[i] < slot_free_at_[best]) best = i;
    }
    const double start = std::max(submit, slot_free_at_[best]);
    result.queue_wait_seconds += start - submit;
    const double end = start + duration;
    slot_free_at_[best] = end;
    result.busy_seconds += duration;
    first_start = std::min(first_start, start);
    last_end = std::max(last_end, end);
  }
  result.start_time = static_cast<SimTime>(std::llround(first_start));
  result.end_time = static_cast<SimTime>(std::llround(std::ceil(last_end)));
  total_busy_seconds_ += result.busy_seconds;
  total_gb_hours_ += GbHoursFor(result.busy_seconds);
  return result;
}

double Cluster::GbHoursFor(double busy_seconds) const {
  // One busy slot-second holds (executor_memory_gb / cores) GB for 1/3600
  // of an hour.
  const double gb_per_slot =
      options_.executor_memory_gb / options_.cores_per_executor;
  return gb_per_slot * busy_seconds / 3600.0;
}

void Cluster::Reset() {
  const double now = static_cast<double>(clock_->Now());
  std::fill(slot_free_at_.begin(), slot_free_at_.end(), now);
}

}  // namespace autocomp::engine
