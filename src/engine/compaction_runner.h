/// \file compaction_runner.h
/// \brief Executes one compaction work unit (AutoComp's act phase calls
/// this; it is the simulator's RewriteDataFiles).

#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "catalog/catalog.h"
#include "common/blob.h"
#include "common/clock.h"
#include "engine/cluster.h"
#include "fault/retry_policy.h"
#include "format/columnar.h"
#include "lst/transaction.h"

namespace autocomp::engine {

/// \brief Data-movement axis of the compaction policy space (core/policy.h):
/// how much of a candidate's data one work unit rewrites.
enum class RewriteMovement : int {
  /// Binpacked partial rewrite: only small files (below the cutoff) are
  /// rewritten, packed to the target size. The pre-decomposition default.
  kPartial = 0,
  /// Full rewrite: every in-scope data file is rewritten regardless of
  /// size (maximal read-side benefit, maximal write amplification).
  kFull = 1,
  /// Tiering-style merge: the selected small files in each partition are
  /// merged into ONE output run (no binpacking to target size) — the
  /// Bigtable/LSM merge move, cheapest per step.
  kMerge = 2,
};

/// \brief Stable lower-case name ("partial" / "full" / "merge"); the
/// PolicySpec grammar's movement tokens.
const char* RewriteMovementName(RewriteMovement movement);

/// \brief One compaction work unit: a table, optionally narrowed to a
/// partition or to files added after a snapshot (§4.1 candidate scopes).
struct CompactionRequest {
  std::string table;
  /// Partition scope; nullopt = whole table.
  std::optional<std::string> partition;
  /// Snapshot scope: only compact files added after this snapshot id
  /// (0 = all files). Combines with `partition`.
  int64_t after_snapshot_id = 0;
  /// Target on-disk output file size; 0 = use the table property.
  int64_t target_file_size_bytes = 0;
  /// Only files strictly smaller than this fraction of the target are
  /// rewritten (Iceberg's min-file-size-bytes default is 75%).
  double small_file_threshold = 0.75;
  /// How much data this unit moves (policy movement axis). kPartial is
  /// byte-identical to the pre-decomposition behavior.
  RewriteMovement movement = RewriteMovement::kPartial;
  /// Conflict validation mode for the rewrite commit.
  lst::ValidationMode validation_mode = lst::ValidationMode::kStrictTableLevel;
  /// Rewrite with a clustering layout (Z-order style, §8): outputs become
  /// `clustered`, letting selective scans skip row groups, at
  /// `ClusterOptions::cluster_write_multiplier` times the rewrite cost
  /// (the extra sampling/sorting passes the paper mentions).
  bool cluster_output = false;
};

/// \brief Outcome of one compaction execution.
struct CompactionResult {
  /// False when there was nothing worth rewriting (< 2 small files).
  bool attempted = false;
  /// True when the rewrite committed.
  bool committed = false;
  /// Set when the commit was lost to a concurrent writer (a cluster-side
  /// conflict in Table 1).
  bool conflict = false;
  Status status;

  int64_t files_rewritten = 0;
  int64_t files_produced = 0;
  int64_t bytes_rewritten = 0;
  int64_t bytes_produced = 0;
  double duration_seconds = 0;
  /// GBHr by the paper's §4.2 formula: ExecutorMemoryGB × DataSize /
  /// RewriteBytesPerHour.
  double gb_hours = 0;
  int64_t snapshot_id = 0;
  SimTime start_time = 0;
  SimTime end_time = 0;

  /// Commit attempts beyond the first (injected/organic CAS races that
  /// were rebased and retried).
  int commit_retries = 0;
  /// Total deterministic backoff this unit waited across retries.
  /// Included in duration_seconds but deliberately NOT in end_time: a
  /// retried commit lands at the same simulated instant as a clean one,
  /// so fault+retry runs converge to the fault-free end state (the
  /// differential harness asserts exactly that).
  double backoff_seconds = 0;
  /// The unit wrote outputs but gave up (crash retries or the commit
  /// retry budget exhausted); its outputs were deleted.
  bool abandoned = false;
};

/// \brief An in-flight compaction: inputs read and outputs written, but
/// the rewrite not yet committed. The gap between `start_time` and
/// `end_time` is where concurrent writers cause the cluster-side
/// conflicts of Table 1 — Finalize at `end_time` validates against
/// everything that committed in between.
struct PendingCompaction {
  CompactionRequest request;
  lst::Transaction transaction;
  std::vector<lst::DataFile> outputs;
  CompactionResult result;  // filled except commit outcome
  /// Open "runner.unit" trace span handle; Finalize closes it with the
  /// commit outcome (0 when tracing is off or the unit ended in Prepare).
  uint64_t trace_span = 0;
};

/// \brief Runs compaction work units on a (possibly dedicated) cluster.
class CompactionRunner {
 public:
  /// `runner_id` is baked into output file names. 0 (default) draws from
  /// a process-wide counter — unique across runners sharing a catalog but
  /// dependent on construction order; the shard-parallel fleet driver
  /// pins it so output paths are reproducible across runs in one process.
  CompactionRunner(Cluster* cluster, catalog::Catalog* catalog,
                   const Clock* clock,
                   format::ColumnarFormatOptions format_options = {},
                   int runner_id = 0);

  /// Executes one work unit submitted at `submit_time`, committing
  /// immediately (Prepare + Finalize back to back). Never returns an
  /// error Status for conflicts — those are reported in the result so the
  /// caller can count them (only infrastructure failures error out).
  Result<CompactionResult> Run(const CompactionRequest& request,
                               SimTime submit_time);

  /// Phase 1: plan the rewrite, read the inputs, occupy the cluster, and
  /// write the output files. The returned unit's result.end_time says
  /// when the rewrite finishes; the caller commits it then via Finalize.
  /// A unit whose result.attempted is false has nothing to commit.
  Result<PendingCompaction> Prepare(const CompactionRequest& request,
                                    SimTime submit_time);

  /// Phase 2: attempt the rewrite commit (validating against everything
  /// committed since Prepare read the table). On conflict the outputs are
  /// deleted and result.conflict is set.
  CompactionResult Finalize(PendingCompaction&& pending);

  /// Cumulative counters across Run calls.
  int64_t total_conflicts() const { return total_conflicts_; }
  int64_t total_committed() const { return total_committed_; }
  /// Retries paid across units (commit rebases + crash re-writes).
  int64_t total_retries() const { return total_retries_; }
  /// Units that wrote outputs and then gave up (outputs cleaned up).
  int64_t total_abandoned() const { return total_abandoned_; }

  /// Installs (or clears, with nullptr) the fault injector. The runner
  /// arms fault::kSiteEngineRunner after writing outputs (mid-job crash:
  /// outputs are deleted and the write is retried under the policy);
  /// commit-site faults flow in via the catalog's injector.
  void SetFaultInjector(fault::FaultInjector* injector) { fault_ = injector; }

  /// Installs (or clears, with nullptr) the trace recorder. Every work
  /// unit becomes a "runner.unit" span from submit to its commit outcome
  /// (value = gb_hours), with "runner.crash_retry" /
  /// "runner.commit_retry" instants for each backoff paid in between —
  /// all at TraceLevel::kFull.
  void SetTraceRecorder(obs::TraceRecorder* trace) { trace_ = trace; }

  /// Retry budget + backoff shape for commit conflicts and crash
  /// recovery. Backoff draws are CounterRng-keyed by (table, submit
  /// time), so retry costs replay bit-identically.
  void set_retry_policy(const fault::RetryPolicy& policy) {
    retry_policy_ = policy;
  }
  const fault::RetryPolicy& retry_policy() const { return retry_policy_; }

  /// \name Lane checkpoint (DESIGN.md §10): output-name counter +
  /// cumulative totals. Inflight units are never checkpointed — the
  /// fleet driver only evicts quiescent lanes.
  /// @{
  void SaveState(common::BlobWriter* w) const {
    w->WriteI64(file_counter_);
    w->WriteI64(total_conflicts_);
    w->WriteI64(total_committed_);
    w->WriteI64(total_retries_);
    w->WriteI64(total_abandoned_);
  }
  void RestoreState(common::BlobReader* r) {
    file_counter_ = r->ReadI64();
    total_conflicts_ = r->ReadI64();
    total_committed_ = r->ReadI64();
    total_retries_ = r->ReadI64();
    total_abandoned_ = r->ReadI64();
  }
  /// @}

 private:
  Cluster* cluster_;
  catalog::Catalog* catalog_;
  const Clock* clock_;
  format::ColumnarFileModel format_;
  /// Distinguishes runners sharing one catalog (unique output names).
  int runner_id_;
  /// "/compact-r<runner_id_>-": the per-runner output-name stem, built
  /// once so the per-file path assembly in Prepare is append-only.
  std::string path_stem_;
  fault::FaultInjector* fault_ = nullptr;
  obs::TraceRecorder* trace_ = nullptr;
  fault::RetryPolicy retry_policy_;
  int64_t file_counter_ = 0;
  int64_t total_conflicts_ = 0;
  int64_t total_committed_ = 0;
  int64_t total_retries_ = 0;
  int64_t total_abandoned_ = 0;
};

}  // namespace autocomp::engine
