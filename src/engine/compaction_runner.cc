#include "engine/compaction_runner.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cmath>
#include <limits>
#include <map>

#include "common/counter_rng.h"
#include "common/logging.h"
#include "fault/fault_injector.h"
#include "format/binpack.h"
#include "obs/trace.h"

namespace autocomp::engine {

namespace {
/// Several runners may share one catalog (same-cluster + dedicated-cluster
/// deployments); output names carry a distinct runner id.
std::atomic<int> g_runner_instances{0};
}  // namespace

const char* RewriteMovementName(RewriteMovement movement) {
  switch (movement) {
    case RewriteMovement::kPartial:
      return "partial";
    case RewriteMovement::kFull:
      return "full";
    case RewriteMovement::kMerge:
      return "merge";
  }
  return "unknown";
}

CompactionRunner::CompactionRunner(Cluster* cluster, catalog::Catalog* catalog,
                                   const Clock* clock,
                                   format::ColumnarFormatOptions format_options,
                                   int runner_id)
    : cluster_(cluster),
      catalog_(catalog),
      clock_(clock),
      format_(format_options),
      runner_id_(runner_id > 0 ? runner_id : ++g_runner_instances),
      path_stem_("/compact-r" + std::to_string(runner_id_) + "-") {
  assert(cluster_ != nullptr && catalog_ != nullptr && clock_ != nullptr);
}

Result<PendingCompaction> CompactionRunner::Prepare(
    const CompactionRequest& request, SimTime submit_time) {
  CompactionResult result;
  result.start_time = submit_time;
  result.end_time = submit_time;
  result.status = Status::OK();

  AUTOCOMP_ASSIGN_OR_RETURN(lst::Table handle,
                            catalog_->GetTable(request.table));
  // Pin the transaction (and its conflict-validation base) to the table
  // state as of Prepare: everything committed after this point competes
  // with the rewrite.
  AUTOCOMP_ASSIGN_OR_RETURN(lst::Transaction txn,
                            handle.NewTransaction(request.validation_mode));
  const lst::TableMetadataPtr meta = txn.base();

  uint64_t trace_span = 0;
  if (trace_ != nullptr && trace_->enabled(obs::TraceLevel::kFull)) {
    std::string detail = "table=" + request.table;
    if (request.partition) detail += ";partition=" + *request.partition;
    if (request.after_snapshot_id != 0) {
      detail += ";after_snapshot=" + std::to_string(request.after_snapshot_id);
    }
    trace_span = trace_->BeginSpan(obs::TraceLevel::kFull,
                                   obs::SpanCategory::kRunner, "runner.unit",
                                   submit_time, std::move(detail));
  }

  const int64_t target = request.target_file_size_bytes > 0
                             ? request.target_file_size_bytes
                             : meta->target_file_size_bytes();
  // kFull rewrites everything in scope: the cutoff stops excluding files.
  const int64_t small_cutoff =
      request.movement == RewriteMovement::kFull
          ? std::numeric_limits<int64_t>::max()
          : static_cast<int64_t>(std::llround(
                static_cast<double>(target) * request.small_file_threshold));

  // Select rewrite inputs. Data files below the cutoff are rewritten; in
  // partitions carrying MoR delete files, ALL data files are rewritten
  // (Iceberg can only drop a delete file once every data file it may
  // reference has been rewritten) and the delete files fold away.
  std::map<std::string, std::vector<lst::DataFile>> in_scope;
  meta->ForEachLiveFile(
      [&](const lst::DataFile& f) {
        if (f.added_snapshot_id <= request.after_snapshot_id &&
            request.after_snapshot_id != 0) {
          return;
        }
        in_scope[f.partition].push_back(f);
      },
      request.partition);
  std::vector<lst::DataFile> inputs;              // data files to rewrite
  std::vector<lst::DataFile> delete_inputs;       // MoR delta files to fold
  std::map<std::string, int64_t> deleted_records; // per partition
  for (const auto& [partition, files] : in_scope) {
    const bool has_deletes = std::any_of(
        files.begin(), files.end(), [](const lst::DataFile& f) {
          return f.content == lst::FileContent::kPositionDeletes;
        });
    for (const lst::DataFile& f : files) {
      if (f.content == lst::FileContent::kPositionDeletes) {
        delete_inputs.push_back(f);
        deleted_records[partition] += f.record_count;
      } else if (has_deletes || f.file_size_bytes < small_cutoff) {
        inputs.push_back(f);
      }
    }
  }
  if (inputs.size() + delete_inputs.size() < 2 || inputs.empty()) {
    // attempted=false: nothing worth rewriting.
    if (trace_ != nullptr) {
      trace_->EndSpan(trace_span, submit_time, 0, "outcome=skipped");
    }
    return PendingCompaction{request, std::move(txn), {}, std::move(result)};
  }
  result.attempted = true;

  // Per-partition survival ratio: the fraction of data rows the fold-in
  // keeps (1.0 when there are no delete files).
  std::map<std::string, double> survival;
  {
    std::map<std::string, int64_t> data_records;
    for (const lst::DataFile& f : inputs) {
      data_records[f.partition] += f.record_count;
    }
    for (const auto& [partition, records] : data_records) {
      const int64_t deleted = deleted_records.count(partition) > 0
                                  ? deleted_records.at(partition)
                                  : 0;
      survival[partition] =
          records > 0 ? std::max<double>(
                            0.0, static_cast<double>(records - deleted) /
                                     static_cast<double>(records))
                      : 1.0;
    }
  }

  // Logical bytes per data input (scaled by the fold-in survival);
  // merged outputs re-encode at peak efficiency, which is where
  // compaction's storage saving comes from.
  std::vector<int64_t> logical_sizes;
  logical_sizes.reserve(inputs.size());
  for (const lst::DataFile& f : inputs) {
    const double keep = survival.at(f.partition);
    logical_sizes.push_back(static_cast<int64_t>(std::llround(
        keep * std::max<int64_t>(
                   1, format_.LogicalBytesForStored(f.file_size_bytes)))));
    result.bytes_rewritten += f.file_size_bytes;
  }
  for (const lst::DataFile& f : delete_inputs) {
    result.bytes_rewritten += f.file_size_bytes;
  }
  result.files_rewritten =
      static_cast<int64_t>(inputs.size() + delete_inputs.size());

  // Plan outputs: pack logical bytes into bins that store ~target bytes.
  // Compaction never merges across partitions (§7), so pack per partition
  // and concatenate the plans.
  const int64_t bin_capacity =
      std::max<int64_t>(1, format_.LogicalBytesForStored(target));
  std::map<std::string, std::vector<size_t>> by_partition;
  for (size_t i = 0; i < inputs.size(); ++i) {
    by_partition[inputs[i].partition].push_back(i);
  }
  std::vector<format::Bin> bins;
  for (const auto& [partition, indices] : by_partition) {
    if (request.movement == RewriteMovement::kMerge) {
      // Tiering-style merge: one output run per partition, however large.
      format::Bin bin;
      bin.item_indices = indices;
      for (size_t i : indices) bin.total_bytes += logical_sizes[i];
      bins.push_back(std::move(bin));
      continue;
    }
    std::vector<int64_t> group_sizes;
    group_sizes.reserve(indices.size());
    for (size_t i : indices) group_sizes.push_back(logical_sizes[i]);
    for (format::Bin bin :
         format::FirstFitDecreasing(group_sizes, bin_capacity)) {
      for (size_t& idx : bin.item_indices) idx = indices[idx];
      bins.push_back(std::move(bin));
    }
  }

  // Read inputs (RPC accounting; timeouts add retry latency).
  storage::DistributedFileSystem* dfs = catalog_->filesystem();
  double timeout_penalty = 0;
  for (const lst::DataFile& f : inputs) {
    auto opened = dfs->Open(f.path);
    if (!opened.ok() && opened.status().IsTimedOut()) {
      timeout_penalty += cluster_->options().timeout_retry_seconds;
      (void)dfs->Open(f.path);
    }
  }

  // Create output files. Replaced set covers both the rewritten data
  // files and the folded delete files. The whole write phase sits in a
  // bounded retry loop: an injected mid-job crash (fault site
  // engine.runner) abandons the partially written outputs — every created
  // file is deleted, leaving no orphans — then re-writes them after a
  // deterministic backoff, up to the policy's attempt budget.
  std::vector<lst::DataFile> outputs;
  std::vector<std::string> replaced;
  replaced.reserve(inputs.size() + delete_inputs.size());
  for (const lst::DataFile& f : inputs) replaced.push_back(f.path);
  for (const lst::DataFile& f : delete_inputs) replaced.push_back(f.path);
  for (int write_attempt = 1;; ++write_attempt) {
    for (const format::Bin& bin : bins) {
      int64_t logical = 0;
      int64_t records = 0;
      for (size_t idx : bin.item_indices) {
        const lst::DataFile& in = inputs[idx];
        logical += logical_sizes[idx];
        records += static_cast<int64_t>(std::llround(
            survival.at(in.partition) *
            static_cast<double>(in.record_count)));
      }
      if (logical <= 0) continue;  // everything in this bin was deleted
      lst::DataFile out;
      // All items in a bin share one partition by construction.
      const std::string& partition =
          inputs[bin.item_indices.front()].partition;
      std::string& path = out.path;
      const std::string& location = meta->location();
      path.reserve(location.size() + partition.size() + path_stem_.size() +
                   32);
      path.assign(location);
      if (!partition.empty()) {
        path += '/';
        path += partition;
      }
      path += path_stem_;
      path += std::to_string(++file_counter_);
      path += ".parquet";
      out.partition = partition;
      out.clustered = request.cluster_output;
      out.file_size_bytes = format_.StoredBytesFor(logical);
      out.record_count = records;
      const Status st =
          dfs->CreateFile(out.path, out.file_size_bytes, out.record_count);
      if (!st.ok()) {
        // Quota/namespace failures are not transient: clean up and give
        // the unit up rather than burning retries to fail again.
        for (const lst::DataFile& created : outputs) {
          (void)dfs->DeleteFile(created.path);
        }
        result.status = st;
        result.attempted = false;
        result.abandoned = true;
        result.bytes_produced = 0;
        ++total_abandoned_;
        if (trace_ != nullptr) {
          trace_->EndSpan(trace_span, submit_time, 0,
                          "outcome=abandoned;reason=create_failed");
        }
        return PendingCompaction{request, std::move(txn), {},
                                 std::move(result)};
      }
      result.bytes_produced += out.file_size_bytes;
      outputs.push_back(std::move(out));
    }
    const fault::FaultKind crash =
        fault_ == nullptr
            ? fault::FaultKind::kNone
            : fault_->Arm(fault::kSiteEngineRunner, request.table);
    if (crash != fault::FaultKind::kRunnerCrash) break;
    // Mid-job crash: the partial outputs are orphans — delete them all.
    for (const lst::DataFile& created : outputs) {
      (void)dfs->DeleteFile(created.path);
    }
    outputs.clear();
    result.bytes_produced = 0;
    if (write_attempt >= retry_policy_.max_attempts) {
      result.status = fault::FaultInjector::ToStatus(
          crash, fault::kSiteEngineRunner, request.table);
      result.attempted = false;
      result.abandoned = true;
      ++total_abandoned_;
      if (trace_ != nullptr) {
        trace_->EndSpan(trace_span, submit_time, 0,
                        "outcome=abandoned;reason=crash_retries_exhausted");
      }
      return PendingCompaction{request, std::move(txn), {},
                               std::move(result)};
    }
    const double backoff = retry_policy_.BackoffSeconds(
        CounterRng::Mix(CounterRng::HashString(request.table)) ^
            static_cast<uint64_t>(submit_time),
        write_attempt);
    timeout_penalty += backoff;
    result.backoff_seconds += backoff;
    ++total_retries_;
    if (trace_ != nullptr && trace_->enabled(obs::TraceLevel::kFull)) {
      trace_->Instant(obs::TraceLevel::kFull, obs::SpanCategory::kRunner,
                      "runner.crash_retry", submit_time,
                      "table=" + request.table + ";attempt=" +
                          std::to_string(write_attempt),
                      backoff);
    }
  }
  result.files_produced = static_cast<int64_t>(outputs.size());

  const Status staged = txn.RewriteFiles(replaced, outputs);
  if (!staged.ok()) {
    result.status = staged;
    result.attempted = false;
    if (trace_ != nullptr) {
      trace_->EndSpan(trace_span, submit_time, 0, "outcome=stage_failed");
    }
    return PendingCompaction{request, std::move(txn), {}, std::move(result)};
  }

  // One compaction work unit runs as one Spark job on one executor:
  // wall time = (bytes read + bytes written) / RewriteBytesPerHour.
  // Concurrent units from other tables occupy the cluster's remaining
  // executors; excess units queue. The measured work includes writing the
  // merged outputs — overhead the §4.2 estimator (input bytes only) does
  // not model, which is why production observed cost underestimation
  // (§7: "we estimated ... 108 TBHr ... actually consumed 129").
  const double layout_factor =
      request.cluster_output ? cluster_->options().cluster_write_multiplier
                             : 1.0;
  const double wall_seconds =
      layout_factor *
      static_cast<double>(result.bytes_rewritten + result.bytes_produced) /
      (cluster_->options().rewrite_bytes_per_hour / 3600.0);
  const int job_slots = cluster_->options().cores_per_executor;
  std::vector<double> tasks(static_cast<size_t>(job_slots), wall_seconds);
  const TaskBagResult bag = cluster_->RunTasks(submit_time, tasks);

  result.duration_seconds =
      static_cast<double>(bag.end_time - submit_time) + timeout_penalty;
  result.end_time =
      bag.end_time + static_cast<SimTime>(std::llround(timeout_penalty));
  // Measured cost over the total work (read + write), at the §4.2 rate;
  // clustering rewrites pay the extra layout passes.
  result.gb_hours =
      layout_factor * cluster_->total_memory_gb() *
      (static_cast<double>(result.bytes_rewritten + result.bytes_produced) /
       cluster_->options().rewrite_bytes_per_hour);
  return PendingCompaction{request, std::move(txn), std::move(outputs),
                           std::move(result), trace_span};
}

CompactionResult CompactionRunner::Finalize(PendingCompaction&& pending) {
  CompactionResult result = std::move(pending.result);
  if (!result.attempted) return result;

  lst::Transaction& txn = pending.transaction;
  // Backoff stream keyed by (table, submit time): unique per unit within
  // a run, identical across replays regardless of shard/pool layout.
  const uint64_t backoff_key =
      CounterRng::Mix(CounterRng::HashString(pending.request.table)) ^
      static_cast<uint64_t>(result.start_time);
  Status failure;
  for (int attempt = 1;; ++attempt) {
    auto committed = txn.Commit();
    if (committed.ok()) {
      result.committed = true;
      result.snapshot_id = committed->snapshot_id;
      ++total_committed_;
      if (trace_ != nullptr) {
        trace_->EndSpan(pending.trace_span, result.end_time, result.gb_hours,
                        "outcome=committed;snapshot=" +
                            std::to_string(result.snapshot_id));
      }
      return result;
    }
    failure = committed.status();
    // Structured conflict classification decides retry vs abandon: only
    // a CAS race (organic or injected) can converge on rebase; every
    // validation rejection is terminal.
    bool retry =
        txn.last_conflict().retryable() && attempt < retry_policy_.max_attempts;
    if (retry) {
      // Conflict-aware re-validation: before paying for another attempt,
      // confirm the inputs are still live under the current version — a
      // concurrent rewrite may have consumed them, making the next
      // attempt a guaranteed (and costly) terminal conflict.
      auto current = catalog_->LoadTable(pending.request.table);
      if (!current.ok()) {
        retry = false;
      } else {
        for (const std::string& path : txn.replaced_paths()) {
          if (!(*current)->IsLive(path)) {
            retry = false;
            break;
          }
        }
      }
    }
    if (!retry) break;
    // Deterministic exponential backoff. Charged to duration (the unit
    // took longer) but NOT to end_time: the retried commit lands at the
    // same simulated instant, so the end state converges with a
    // fault-free run (the differential tests' invariant).
    const double backoff = retry_policy_.BackoffSeconds(backoff_key, attempt);
    result.backoff_seconds += backoff;
    result.duration_seconds += backoff;
    ++result.commit_retries;
    ++total_retries_;
    if (trace_ != nullptr && trace_->enabled(obs::TraceLevel::kFull)) {
      trace_->Instant(obs::TraceLevel::kFull, obs::SpanCategory::kRunner,
                      "runner.commit_retry", result.end_time,
                      "table=" + pending.request.table + ";attempt=" +
                          std::to_string(attempt),
                      backoff);
    }
  }
  // Clean up outputs; the rewrite is lost.
  storage::DistributedFileSystem* dfs = catalog_->filesystem();
  for (const lst::DataFile& created : pending.outputs) {
    (void)dfs->DeleteFile(created.path);
  }
  result.conflict = failure.IsCommitConflict();
  result.status = failure;
  result.abandoned = true;
  ++total_abandoned_;
  if (result.conflict) ++total_conflicts_;
  if (trace_ != nullptr) {
    std::string outcome =
        result.conflict ? std::string("outcome=conflict;kind=") +
                              lst::ConflictKindName(txn.last_conflict().kind)
                        : std::string("outcome=abandoned");
    trace_->EndSpan(pending.trace_span, result.end_time, result.gb_hours,
                    std::move(outcome));
  }
  return result;
}

Result<CompactionResult> CompactionRunner::Run(
    const CompactionRequest& request, SimTime submit_time) {
  AUTOCOMP_ASSIGN_OR_RETURN(PendingCompaction pending,
                            Prepare(request, submit_time));
  return Finalize(std::move(pending));
}

}  // namespace autocomp::engine
