#include "engine/write_planner.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace autocomp::engine {

WriterProfile TunedPipelineProfile() {
  WriterProfile p;
  p.target_file_bytes = 512 * kMiB;
  p.write_tasks = 8;
  p.size_jitter_sigma = 0.15;
  p.coalesce_output = true;
  return p;
}

WriterProfile UntunedUserJobProfile() {
  WriterProfile p;
  // Untuned jobs flush per shuffle task; an AQE mis-sizing or high default
  // parallelism yields many files in the 1-32MiB range (Figure 1).
  p.target_file_bytes = 16 * kMiB;
  p.write_tasks = 64;
  p.size_jitter_sigma = 0.8;
  return p;
}

std::vector<PlannedFile> PlanWriteFiles(
    int64_t logical_bytes, const std::vector<std::string>& partitions,
    const WriterProfile& profile, const format::ColumnarFileModel& format,
    Rng* rng) {
  assert(rng != nullptr);
  std::vector<PlannedFile> out;
  if (logical_bytes <= 0) return out;

  const std::vector<std::string> parts =
      partitions.empty() ? std::vector<std::string>{""} : partitions;
  const int64_t bytes_per_partition =
      std::max<int64_t>(1, logical_bytes / static_cast<int64_t>(parts.size()));

  auto emit = [&](const std::string& partition, int64_t logical) {
    double jitter = 1.0;
    if (profile.size_jitter_sigma > 0) {
      // Mean-one lognormal jitter: exp(N(-s^2/2, s)).
      const double s = profile.size_jitter_sigma;
      jitter = rng->LogNormal(-0.5 * s * s, s);
    }
    logical = std::max<int64_t>(
        1,
        static_cast<int64_t>(std::llround(static_cast<double>(logical) *
                                          jitter)));
    PlannedFile f;
    f.partition = partition;
    f.stored_bytes = format.StoredBytesFor(logical);
    f.record_count = std::max<int64_t>(1, format.RecordsFor(logical));
    out.push_back(std::move(f));
  };

  for (const std::string& partition : parts) {
    if (profile.coalesce_output) {
      // Tuned writers roll files at the target stored size: full files at
      // the target, plus one remainder (Spark's rolling file writer).
      const int64_t logical_per_full = std::max<int64_t>(
          1, format.LogicalBytesForStored(profile.target_file_bytes));
      int64_t remaining = bytes_per_partition;
      while (remaining >= logical_per_full) {
        emit(partition, logical_per_full);
        remaining -= logical_per_full;
      }
      // Tiny remainders (<5% of a file) are folded into the last file in
      // practice; emit only meaningful leftovers.
      if (remaining > logical_per_full / 20 || out.empty()) {
        emit(partition, remaining > 0 ? remaining : 1);
      }
      continue;
    }
    // Untuned writers: every task holding rows flushes its own file;
    // tasks are capped by the number of row "chunks" available. Many
    // tasks ⇒ many small files.
    const int64_t packed_stored = format.StoredBytesFor(bytes_per_partition);
    const int64_t by_target = std::max<int64_t>(
        1, (packed_stored + profile.target_file_bytes - 1) /
               profile.target_file_bytes);
    const int64_t min_chunk = 256 * kKiB;
    const int64_t max_chunks =
        std::max<int64_t>(1, bytes_per_partition / min_chunk);
    const int64_t by_tasks =
        std::min<int64_t>(profile.write_tasks, max_chunks);
    const int64_t num_files = std::max(by_target, by_tasks);
    const int64_t logical_per_file =
        std::max<int64_t>(1, bytes_per_partition / num_files);
    for (int64_t i = 0; i < num_files; ++i) {
      emit(partition, logical_per_file);
    }
  }
  return out;
}

int64_t PlannedFileCount(int64_t logical_bytes, size_t num_partitions,
                         const WriterProfile& profile,
                         const format::ColumnarFileModel& format) {
  if (logical_bytes <= 0) return 0;
  // Mirrors PlanWriteFiles step for step; `count` stands in for
  // out.size(), including the cross-partition out.empty() in the
  // coalesce remainder rule. Any drift between the two is caught by the
  // randomized equivalence test and the fleet driver's debug assert.
  const int64_t parts =
      std::max<int64_t>(1, static_cast<int64_t>(num_partitions));
  const int64_t bytes_per_partition =
      std::max<int64_t>(1, logical_bytes / parts);
  int64_t count = 0;
  for (int64_t p = 0; p < parts; ++p) {
    if (profile.coalesce_output) {
      const int64_t logical_per_full = std::max<int64_t>(
          1, format.LogicalBytesForStored(profile.target_file_bytes));
      const int64_t full = bytes_per_partition / logical_per_full;
      const int64_t remaining =
          bytes_per_partition - full * logical_per_full;
      count += full;
      if (remaining > logical_per_full / 20 || count == 0) ++count;
      continue;
    }
    const int64_t packed_stored = format.StoredBytesFor(bytes_per_partition);
    const int64_t by_target = std::max<int64_t>(
        1, (packed_stored + profile.target_file_bytes - 1) /
               profile.target_file_bytes);
    const int64_t min_chunk = 256 * kKiB;
    const int64_t max_chunks =
        std::max<int64_t>(1, bytes_per_partition / min_chunk);
    const int64_t by_tasks =
        std::min<int64_t>(profile.write_tasks, max_chunks);
    count += std::max(by_target, by_tasks);
  }
  return count;
}

}  // namespace autocomp::engine
