/// \file cluster.h
/// \brief Spark-like cluster model: executor slots, queueing, GBHr
/// accounting.
///
/// The evaluation runs a 16-node query-processing cluster and a 4-node
/// compaction cluster (§6). We model a cluster as `executors ×
/// cores_per_executor` task slots with per-slot availability times; a job
/// submits a bag of task durations and finishes when its last task does.
/// Queue waits — and therefore the latency variability compaction reduces
/// (Figure 8) — emerge from slot contention between overlapping jobs.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/blob.h"
#include "common/clock.h"
#include "common/units.h"

namespace autocomp::engine {

/// \brief Static sizing and cost-model constants for one cluster.
struct ClusterOptions {
  int executors = 15;
  int cores_per_executor = 8;
  /// Memory per executor, in GB (enters the paper's GBHr formula).
  double executor_memory_gb = 64.0;
  /// Sequential scan throughput per task slot.
  double scan_bytes_per_second = 200.0 * kMiB;
  /// System rewrite throughput for compaction (the paper's
  /// RewriteBytesPerHour).
  double rewrite_bytes_per_hour = 2.0 * kTiB;
  /// Fixed cost of opening one file from a scan task (RPC + seek + footer
  /// decode). Small files make this term dominate.
  double open_seconds_per_file = 0.08;
  /// Planning cost per manifest and per file entry (metadata bloat).
  double plan_seconds_per_manifest = 0.05;
  double plan_seconds_per_file = 0.0008;
  /// Penalty for one storage read timeout (client retry, §7's thundering
  /// herd is this at scale).
  double timeout_retry_seconds = 8.0;
  /// Largest byte range one scan task handles (Spark split size).
  int64_t split_bytes = 128 * kMiB;
  /// Per-delete-file cost a merge-on-read scan pays to apply positional
  /// deletes while reading (§2's accumulating MoR delta files).
  double mor_merge_seconds_per_delete_file = 0.2;
  /// Extra work factor for clustering rewrites (sampling + sort passes,
  /// §8 "computational overheads like data sampling or multiple passes").
  double cluster_write_multiplier = 1.6;
};

/// \brief Outcome of running one bag of tasks.
struct TaskBagResult {
  /// When the first task actually started (>= submit time).
  SimTime start_time = 0;
  /// When the last task finished.
  SimTime end_time = 0;
  /// Seconds spent waiting for a free slot, summed over tasks.
  double queue_wait_seconds = 0;
  /// Sum of task durations (busy time).
  double busy_seconds = 0;
};

/// \brief One compute cluster with deterministic slot scheduling.
class Cluster {
 public:
  Cluster(std::string name, ClusterOptions options, const Clock* clock);

  const std::string& name() const { return name_; }
  const ClusterOptions& options() const { return options_; }
  int total_slots() const {
    return options_.executors * options_.cores_per_executor;
  }
  double total_memory_gb() const {
    return options_.executor_memory_gb * options_.executors;
  }

  /// Schedules `task_seconds` on the earliest-available slots, no earlier
  /// than `submit_time`. Longest tasks are placed first (LPT), matching
  /// how a fair scheduler amortises stragglers. Deterministic.
  TaskBagResult RunTasks(SimTime submit_time,
                         const std::vector<double>& task_seconds);

  /// GB-hours consumed by an occupation of `busy_seconds` of slot time:
  /// memory attributed per-core for the occupied duration.
  double GbHoursFor(double busy_seconds) const;

  /// Cumulative GB-hours across all RunTasks calls.
  double total_gb_hours() const { return total_gb_hours_; }
  /// Cumulative busy slot-seconds.
  double total_busy_seconds() const { return total_busy_seconds_; }

  /// Drops all queued state (slots immediately free at the current time).
  void Reset();

  /// \name Lane checkpoint (DESIGN.md §10): slot availability + GBHr
  /// accumulators, restored bit-exactly (doubles as raw bits).
  /// @{
  void SaveState(common::BlobWriter* w) const {
    w->WriteU64(slot_free_at_.size());
    for (double t : slot_free_at_) w->WriteF64(t);
    w->WriteF64(total_gb_hours_);
    w->WriteF64(total_busy_seconds_);
  }
  void RestoreState(common::BlobReader* r) {
    const uint64_t slots = r->ReadU64();
    slot_free_at_.assign(slots, 0.0);
    for (double& t : slot_free_at_) t = r->ReadF64();
    total_gb_hours_ = r->ReadF64();
    total_busy_seconds_ = r->ReadF64();
  }
  /// @}

 private:
  std::string name_;
  ClusterOptions options_;
  const Clock* clock_;
  /// Next free time per slot, in fractional seconds.
  std::vector<double> slot_free_at_;
  double total_gb_hours_ = 0;
  double total_busy_seconds_ = 0;
};

}  // namespace autocomp::engine
