/// \file counter_rng.h
/// \brief Counter-based deterministic random streams.
///
/// The stateful Rng produces draws whose values depend on *how many*
/// draws preceded them, which ties results to global event order. The
/// shard-parallel simulator instead derives every stochastic decision
/// from a pure function of (seed, key, index): any shard can evaluate
/// any draw at any time and always gets the same value, so replaying
/// events in a different interleaving — or on a different number of
/// shards — cannot perturb the stream (NFR2). This is the same idea as
/// counter-based generators like Philox, implemented with the SplitMix64
/// finalizer (full 64-bit avalanche, passes the usual empirical tests at
/// this use intensity).

#pragma once

#include <cstdint>
#include <string_view>

namespace autocomp {

class CounterRng {
 public:
  /// SplitMix64 finalizer: bijective 64-bit avalanche mix.
  static constexpr uint64_t Mix(uint64_t x) {
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
  }

  /// FNV-1a hash of a string key (table names, file paths).
  static constexpr uint64_t HashString(std::string_view s) {
    uint64_t h = 0xcbf29ce484222325ULL;
    for (char c : s) {
      h ^= static_cast<unsigned char>(c);
      h *= 0x100000001b3ULL;
    }
    return h;
  }

  /// Uniform 64-bit value for draw `index` of stream (seed, key).
  static constexpr uint64_t At(uint64_t seed, uint64_t key, uint64_t index) {
    return Mix(Mix(seed ^ Mix(key)) ^ index);
  }

  /// Uniform double in [0, 1) for draw `index` of stream (seed, key).
  static double Uniform01(uint64_t seed, uint64_t key, uint64_t index) {
    // Top 53 bits -> [0, 1) with full double precision.
    return static_cast<double>(At(seed, key, index) >> 11) * 0x1.0p-53;
  }
};

}  // namespace autocomp
