/// \file status.h
/// \brief Status / Result error-handling primitives.
///
/// AutoComp follows the Arrow/RocksDB idiom: fallible operations return a
/// Status (or Result<T> when they produce a value) instead of throwing.
/// Exceptions are reserved for programmer errors (violated preconditions in
/// accessors), where we abort via CHECK-style macros.

#pragma once

#include <cassert>
#include <memory>
#include <optional>
#include <ostream>
#include <string>
#include <utility>
#include <variant>

namespace autocomp {

/// \brief Machine-readable category for a Status.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  /// Optimistic-concurrency commit conflict (write-write conflict).
  kCommitConflict = 4,
  /// Budget / quota / capacity exhausted.
  kResourceExhausted = 5,
  /// Operation attempted in a state that does not permit it.
  kFailedPrecondition = 6,
  /// Storage-layer timeout (e.g. NameNode RPC overload).
  kTimedOut = 7,
  /// Transient unavailability; caller may retry.
  kUnavailable = 8,
  /// Invariant violation inside the library.
  kInternal = 9,
  /// Operation cancelled by caller or scheduler.
  kCancelled = 10,
};

/// \brief Human-readable name of a StatusCode (e.g. "CommitConflict").
const char* StatusCodeName(StatusCode code);

/// \brief Outcome of a fallible operation: a code plus a message.
///
/// Statuses are cheap to copy when OK (no allocation) and carry a
/// heap-allocated payload only on error.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string message)
      : rep_(code == StatusCode::kOk
                 ? nullptr
                 : std::make_shared<Rep>(Rep{code, std::move(message)})) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status CommitConflict(std::string msg) {
    return Status(StatusCode::kCommitConflict, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status TimedOut(std::string msg) {
    return Status(StatusCode::kTimedOut, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }

  bool ok() const { return rep_ == nullptr; }
  StatusCode code() const { return rep_ ? rep_->code : StatusCode::kOk; }
  /// Error message; empty for OK statuses.
  const std::string& message() const {
    static const std::string kEmpty;
    return rep_ ? rep_->message : kEmpty;
  }

  bool IsInvalidArgument() const {
    return code() == StatusCode::kInvalidArgument;
  }
  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code() == StatusCode::kAlreadyExists; }
  bool IsCommitConflict() const {
    return code() == StatusCode::kCommitConflict;
  }
  bool IsResourceExhausted() const {
    return code() == StatusCode::kResourceExhausted;
  }
  bool IsFailedPrecondition() const {
    return code() == StatusCode::kFailedPrecondition;
  }
  bool IsTimedOut() const { return code() == StatusCode::kTimedOut; }
  bool IsUnavailable() const { return code() == StatusCode::kUnavailable; }
  bool IsInternal() const { return code() == StatusCode::kInternal; }
  bool IsCancelled() const { return code() == StatusCode::kCancelled; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  friend std::ostream& operator<<(std::ostream& os, const Status& s) {
    return os << s.ToString();
  }

 private:
  struct Rep {
    StatusCode code;
    std::string message;
  };
  std::shared_ptr<const Rep> rep_;
};

/// \brief Value-or-Status union returned by fallible producers.
///
/// A Result is either a value of type T (status().ok() == true) or an error
/// Status. Accessing the value of an errored Result aborts.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit construction from an error status. Must not be OK.
  Result(Status status)  // NOLINT(runtime/explicit)
      : status_(std::move(status)) {
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  /// Returns the contained value. Precondition: ok().
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  /// Returns the value, or `fallback` when errored.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::optional<T> value_;
  Status status_;  // OK iff value_ present.
};

/// Propagates a non-OK Status from the current function.
#define AUTOCOMP_RETURN_NOT_OK(expr)             \
  do {                                           \
    ::autocomp::Status _st = (expr);             \
    if (!_st.ok()) return _st;                   \
  } while (false)

/// Assigns the value of a Result expression to `lhs`, or propagates its
/// error Status.
#define AUTOCOMP_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                                   \
  if (!tmp.ok()) return tmp.status();                  \
  lhs = std::move(tmp).value();

#define AUTOCOMP_ASSIGN_OR_RETURN_CONCAT(a, b) a##b
#define AUTOCOMP_ASSIGN_OR_RETURN_NAME(a, b) \
  AUTOCOMP_ASSIGN_OR_RETURN_CONCAT(a, b)

#define AUTOCOMP_ASSIGN_OR_RETURN(lhs, expr)                                  \
  AUTOCOMP_ASSIGN_OR_RETURN_IMPL(                                             \
      AUTOCOMP_ASSIGN_OR_RETURN_NAME(_autocomp_result_, __LINE__), lhs, expr)

}  // namespace autocomp
