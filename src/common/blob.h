/// \file blob.h
/// \brief Minimal binary serialization for lane checkpoints.
///
/// The fleet simulator's lane evictor (DESIGN.md §10) dehydrates cold
/// lanes into compact in-memory blobs and restores them bit-exactly on
/// their next due event. This writer/reader pair is the wire format:
/// LEB128 varints for integers (zigzag for signed — checkpoint state is
/// overwhelmingly small counts, ids and hour-scale timestamps, so
/// fixed-width encoding tripled blob size), raw IEEE-754 bit patterns
/// for doubles (memcpy, never a decimal round-trip — restore must
/// replay *bit-identically*, NFR2), and length-prefixed strings with
/// per-blob interning: each distinct string is written once and
/// back-referenced afterwards, which collapses the file paths repeated
/// across NameNode state, manifest pools and removed-path sets. Blobs
/// never leave the process and never cross versions, so there is no
/// tagging and no backward compatibility machinery.

#pragma once

#include <cassert>
#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

namespace autocomp::common {

/// \brief Appends varint/interned values to a growing byte buffer.
class BlobWriter {
 public:
  BlobWriter() = default;

  void WriteU8(uint8_t v) { buffer_.push_back(static_cast<char>(v)); }
  void WriteBool(bool v) { WriteU8(v ? 1 : 0); }

  void WriteU32(uint32_t v) { WriteVarint(v); }
  void WriteI32(int32_t v) { WriteVarint(ZigZag(static_cast<int64_t>(v))); }
  void WriteU64(uint64_t v) { WriteVarint(v); }
  void WriteI64(int64_t v) { WriteVarint(ZigZag(v)); }

  /// Raw IEEE-754 bits; restore reproduces the exact double. Fixed
  /// width: double bit patterns do not varint-compress.
  void WriteF64(double v) {
    uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    char bytes[sizeof(bits)];
    for (size_t i = 0; i < sizeof(bits); ++i) {
      bytes[i] = static_cast<char>((bits >> (8 * i)) & 0xFF);
    }
    buffer_.append(bytes, sizeof(bits));
  }

  /// Interned: the first occurrence writes tag 0 + length + bytes and
  /// enters the blob's string table; repeats write table-index + 1.
  void WriteString(std::string_view s) {
    const auto [it, inserted] =
        interned_.emplace(std::string(s), interned_.size());
    if (!inserted) {
      WriteVarint(static_cast<uint64_t>(it->second) + 1);
      return;
    }
    WriteVarint(0);
    WriteVarint(s.size());
    buffer_.append(s.data(), s.size());
  }

  size_t size() const { return buffer_.size(); }

  /// Moves the accumulated bytes out; the writer is empty afterwards
  /// (the intern table too — a reused writer starts a fresh blob).
  std::string Take() {
    interned_.clear();
    return std::move(buffer_);
  }

 private:
  static uint64_t ZigZag(int64_t v) {
    return (static_cast<uint64_t>(v) << 1) ^
           static_cast<uint64_t>(v >> 63);
  }

  void WriteVarint(uint64_t v) {
    while (v >= 0x80) {
      buffer_.push_back(static_cast<char>(v | 0x80));
      v >>= 7;
    }
    buffer_.push_back(static_cast<char>(v));
  }

  std::string buffer_;
  std::unordered_map<std::string, size_t> interned_;
};

/// \brief Sequential reader over a blob produced by BlobWriter.
///
/// Reads past the end are a checkpoint-format bug, not an input-data
/// condition: they assert in debug builds and return zero values in
/// release builds (`ok()` turns false so callers can surface Internal).
class BlobReader {
 public:
  explicit BlobReader(std::string_view data) : data_(data) {}

  uint8_t ReadU8() {
    if (!Require(1)) return 0;
    return static_cast<uint8_t>(data_[pos_++]);
  }
  bool ReadBool() { return ReadU8() != 0; }

  uint32_t ReadU32() { return static_cast<uint32_t>(ReadVarint()); }
  int32_t ReadI32() { return static_cast<int32_t>(UnZigZag(ReadVarint())); }
  uint64_t ReadU64() { return ReadVarint(); }
  int64_t ReadI64() { return UnZigZag(ReadVarint()); }

  double ReadF64() {
    if (!Require(8)) return 0;
    uint64_t bits = 0;
    for (size_t i = 0; i < sizeof(bits); ++i) {
      bits |= static_cast<uint64_t>(static_cast<uint8_t>(data_[pos_ + i]))
              << (8 * i);
    }
    pos_ += sizeof(bits);
    double v = 0;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }

  std::string ReadString() {
    const uint64_t tag = ReadVarint();
    if (tag != 0) {
      if (tag > interned_.size()) {
        Fail();
        return {};
      }
      return std::string(interned_[tag - 1]);
    }
    const uint64_t n = ReadVarint();
    if (!Require(n)) return {};
    const std::string_view s = data_.substr(pos_, n);
    pos_ += n;
    interned_.push_back(s);  // views into the blob: zero-copy table
    return std::string(s);
  }

  /// False after any out-of-bounds read.
  bool ok() const { return ok_; }
  /// True when every byte has been consumed (format sanity check).
  bool exhausted() const { return ok_ && pos_ == data_.size(); }
  size_t remaining() const { return data_.size() - pos_; }

 private:
  static int64_t UnZigZag(uint64_t v) {
    return static_cast<int64_t>((v >> 1) ^ (~(v & 1) + 1));
  }

  uint64_t ReadVarint() {
    uint64_t v = 0;
    for (int shift = 0; shift < 64; shift += 7) {
      if (!Require(1)) return 0;
      const uint8_t byte = static_cast<uint8_t>(data_[pos_++]);
      v |= static_cast<uint64_t>(byte & 0x7F) << shift;
      if ((byte & 0x80) == 0) return v;
    }
    Fail();  // > 10 continuation bytes: corrupt varint
    return 0;
  }

  bool Require(uint64_t n) {
    if (pos_ + n > data_.size()) {
      Fail();
      return false;
    }
    return true;
  }

  void Fail() {
    assert(false && "BlobReader: malformed checkpoint");
    ok_ = false;
  }

  std::string_view data_;
  size_t pos_ = 0;
  bool ok_ = true;
  std::vector<std::string_view> interned_;
};

}  // namespace autocomp::common
