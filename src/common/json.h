/// \file json.h
/// \brief Minimal JSON document model, writer, and parser.
///
/// Used to persist LST table metadata the way real formats do
/// (metadata.json per version). Self-contained: no external dependency.
/// Supports the full JSON grammar; integers are preserved exactly as
/// int64 when representable.

#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"

namespace autocomp {

/// \brief One JSON value (null / bool / int / double / string / array /
/// object). Objects keep key order sorted (std::map) for deterministic
/// output.
class JsonValue {
 public:
  enum class Type : int {
    kNull,
    kBool,
    kInt,
    kDouble,
    kString,
    kArray,
    kObject,
  };

  JsonValue() : type_(Type::kNull) {}
  JsonValue(bool v) : type_(Type::kBool), bool_(v) {}           // NOLINT
  JsonValue(int64_t v) : type_(Type::kInt), int_(v) {}          // NOLINT
  JsonValue(int v) : type_(Type::kInt), int_(v) {}              // NOLINT
  JsonValue(double v) : type_(Type::kDouble), double_(v) {}     // NOLINT
  JsonValue(std::string v)                                      // NOLINT
      : type_(Type::kString), string_(std::move(v)) {}
  JsonValue(const char* v) : type_(Type::kString), string_(v) {}  // NOLINT

  static JsonValue Array() {
    JsonValue v;
    v.type_ = Type::kArray;
    return v;
  }
  static JsonValue Object() {
    JsonValue v;
    v.type_ = Type::kObject;
    return v;
  }

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_number() const {
    return type_ == Type::kInt || type_ == Type::kDouble;
  }

  /// Typed accessors; wrong-type access returns the type's zero value
  /// (callers validate with type() or the As* Result variants).
  bool as_bool() const { return type_ == Type::kBool ? bool_ : false; }
  int64_t as_int() const;
  double as_double() const;
  const std::string& as_string() const { return string_; }
  const std::vector<JsonValue>& items() const { return array_; }
  const std::map<std::string, JsonValue>& members() const { return object_; }

  /// Checked accessors for parsing code.
  Result<int64_t> AsInt() const;
  Result<double> AsDouble() const;
  Result<std::string> AsString() const;
  Result<bool> AsBool() const;

  /// Array building / access.
  void Append(JsonValue v) { array_.push_back(std::move(v)); }
  size_t size() const { return array_.size(); }
  const JsonValue& operator[](size_t i) const { return array_[i]; }

  /// Object building / access. Get returns null-value for absent keys.
  void Set(const std::string& key, JsonValue v) {
    object_[key] = std::move(v);
  }
  bool Has(const std::string& key) const { return object_.count(key) > 0; }
  const JsonValue& Get(const std::string& key) const;

  /// Serializes compactly (no whitespace), deterministic member order.
  std::string Dump() const;

  /// Parses a JSON document; trailing garbage is an error.
  static Result<JsonValue> Parse(const std::string& text);

 private:
  Type type_ = Type::kNull;
  bool bool_ = false;
  int64_t int_ = 0;
  double double_ = 0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::map<std::string, JsonValue> object_;
};

}  // namespace autocomp
