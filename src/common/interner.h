/// \file interner.h
/// \brief Dense string interning for hot-path identity keys.
///
/// The simulator's hot loops (event driver, stats index, NameNode tallies)
/// historically keyed their maps by `std::string` — every lookup paid a
/// heap-allocated key compare and every tree step a memcmp. A
/// StringInterner assigns each distinct name a dense int32 handle
/// (`TableId` / `PartitionId`); hot paths key by handle and only touch the
/// string at construction and reporting edges.
///
/// Determinism contract: ids are assigned in first-Intern order, which on
/// any deterministic replay is itself deterministic — but ids are NOT
/// stable across different insertion orders. Nothing order-sensitive may
/// ever compare or sort by raw id where the legacy code sorted by name;
/// use `NameLess` (id -> name lexicographic compare) at those sites so
/// interning can never change a tie-break (NFR2 bit-identity).

#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <string_view>

namespace autocomp::common {

/// \brief Dense int32 handle for an interned table name.
using TableId = int32_t;
/// \brief Dense int32 handle for an interned partition value.
using PartitionId = int32_t;

/// \brief Append-only string -> dense id mapping with stable storage.
///
/// Thread-safe: Intern/Lookup/NameOf may race (the catalog's interner is
/// shared with pool workers). Names live in a deque so `NameOf` references
/// stay valid forever; ids are never recycled.
class StringInterner {
 public:
  using Id = int32_t;
  static constexpr Id kInvalidId = -1;

  StringInterner() = default;
  StringInterner(const StringInterner&) = delete;
  StringInterner& operator=(const StringInterner&) = delete;

  /// Returns the id for `name`, assigning the next dense id on first use.
  Id Intern(std::string_view name) {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = index_.find(name);
    if (it != index_.end()) return it->second;
    const Id id = static_cast<Id>(names_.size());
    names_.emplace_back(name);
    index_.emplace(names_.back(), id);
    return id;
  }

  /// Returns the id for `name`, or kInvalidId when it was never interned.
  Id Lookup(std::string_view name) const {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = index_.find(name);
    return it == index_.end() ? kInvalidId : it->second;
  }

  /// The interned name for `id`. The reference stays valid for the
  /// interner's lifetime (append-only deque storage).
  const std::string& NameOf(Id id) const {
    std::lock_guard<std::mutex> lock(mu_);
    return names_[static_cast<size_t>(id)];
  }

  /// Lexicographic compare by *name* — the tie-break shim that keeps
  /// interned hot paths bit-identical to their string-keyed ancestors.
  bool NameLess(Id a, Id b) const {
    std::lock_guard<std::mutex> lock(mu_);
    return names_[static_cast<size_t>(a)] < names_[static_cast<size_t>(b)];
  }

  int64_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return static_cast<int64_t>(names_.size());
  }

 private:
  mutable std::mutex mu_;
  std::deque<std::string> names_;  // id -> name; references are stable
  // string_view keys point into names_ (stable), so lookups by
  // string_view never allocate. Ordered map per the no-unordered-container
  // determinism policy (CONTRIBUTING.md).
  std::map<std::string_view, Id, std::less<>> index_;
};

}  // namespace autocomp::common
