/// \file thread_pool.h
/// \brief Work-stealing thread pool for the fleet-scale OODA hot path.
///
/// The paper's production deployment evaluates thousands of tables per
/// pipeline cycle (§7); candidate generation, stats collection and trait
/// evaluation are embarrassingly parallel per table / per candidate. The
/// pool provides fire-and-forget task submission plus a blocking
/// ParallelFor used by those phases. Determinism (NFR2) is preserved by
/// construction: parallel callers write results into per-index slots and
/// merge them in index order, so outputs are bit-identical to the
/// sequential path regardless of worker count or interleaving.
///
/// Scheduling is work-stealing: each worker owns a deque and pops from
/// its back (LIFO, cache-friendly); idle workers steal from the front of
/// other workers' deques (FIFO, oldest-first). External submissions are
/// distributed round-robin.

#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/config.h"

namespace autocomp {

/// \brief Pool sizing knobs, loadable from a component Config.
struct ThreadPoolOptions {
  /// Worker thread count; 0 picks std::thread::hardware_concurrency().
  int workers = 0;

  /// Reads "threadpool.workers" (default 0 = hardware concurrency).
  static ThreadPoolOptions FromConfig(const Config& config);
};

/// \brief Fixed-size work-stealing thread pool.
///
/// Tasks must not throw. A ParallelFor issued from inside a worker runs
/// inline on that worker (no nested fan-out), which makes nesting safe
/// and deadlock-free. Pools with fewer than two workers execute
/// ParallelFor inline as well — a single worker cannot beat the caller's
/// own thread, so the handoff would be pure overhead.
class ThreadPool {
 public:
  using Task = std::function<void()>;

  /// Creates `ThreadPoolOptions{workers}.workers` worker threads.
  explicit ThreadPool(int workers = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int worker_count() const { return static_cast<int>(workers_.size()); }

  /// Enqueues a task for asynchronous execution.
  void Submit(Task task);

  /// Invokes `body(i)` exactly once for every i in [0, n), distributing
  /// contiguous chunks across workers, and blocks until all calls
  /// returned. `body` must be safe to run concurrently with itself for
  /// distinct indices.
  void ParallelFor(int64_t n, const std::function<void(int64_t)>& body);

  /// Blocks until every submitted task has finished (used by tests).
  void WaitIdle();

  /// Process-wide shared pool, created on first use with
  /// `default_workers` threads (see SetDefaultWorkers).
  static ThreadPool* Default();

  /// Sets the worker count used when Default() first constructs the
  /// shared pool. Calls after that pool exists have no effect; returns
  /// whether the hint was applied.
  static bool SetDefaultWorkers(int workers);

 private:
  /// One worker's deque; `mu` guards `tasks`.
  struct Shard {
    std::mutex mu;
    std::deque<Task> tasks;
  };

  void WorkerLoop(int self);
  /// Pops own work (back) or steals (front of another shard).
  bool TryAcquire(int self, Task* out);

  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<std::thread> workers_;

  /// Guards wakeups and the idle handshake.
  std::mutex wake_mu_;
  std::condition_variable wake_cv_;
  std::condition_variable idle_cv_;
  int64_t pending_ = 0;  // queued + running tasks
  int64_t next_shard_ = 0;  // round-robin cursor for external Submit
  bool stop_ = false;
};

}  // namespace autocomp
