#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <cassert>

namespace autocomp {

namespace {

/// Worker identity for nested-ParallelFor detection: the pool (if any)
/// whose worker loop is running on this thread.
thread_local ThreadPool* tls_pool = nullptr;
thread_local int tls_worker_index = -1;

std::atomic<int> g_default_workers_hint{0};
std::atomic<bool> g_default_constructed{false};

}  // namespace

ThreadPoolOptions ThreadPoolOptions::FromConfig(const Config& config) {
  ThreadPoolOptions options;
  options.workers =
      static_cast<int>(config.GetInt("threadpool.workers", 0));
  return options;
}

ThreadPool::ThreadPool(int workers) {
  if (workers <= 0) {
    workers = static_cast<int>(std::thread::hardware_concurrency());
    if (workers <= 0) workers = 1;
  }
  shards_.reserve(static_cast<size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
  workers_.reserve(static_cast<size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(wake_mu_);
    stop_ = true;
  }
  wake_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::Submit(Task task) {
  assert(task != nullptr);
  int shard;
  {
    std::lock_guard<std::mutex> lock(wake_mu_);
    assert(!stop_ && "Submit after shutdown");
    ++pending_;
    // A worker pushes to its own deque (LIFO locality); external callers
    // spread round-robin.
    shard = (tls_pool == this) ? tls_worker_index
                               : static_cast<int>(next_shard_++ %
                                                  shards_.size());
  }
  {
    std::lock_guard<std::mutex> lock(shards_[shard]->mu);
    shards_[shard]->tasks.push_back(std::move(task));
  }
  wake_cv_.notify_one();
}

bool ThreadPool::TryAcquire(int self, Task* out) {
  {
    Shard& own = *shards_[self];
    std::lock_guard<std::mutex> lock(own.mu);
    if (!own.tasks.empty()) {
      *out = std::move(own.tasks.back());
      own.tasks.pop_back();
      return true;
    }
  }
  // Steal oldest-first from the other shards, starting just after self so
  // victims are spread evenly.
  const int n = static_cast<int>(shards_.size());
  for (int k = 1; k < n; ++k) {
    Shard& victim = *shards_[(self + k) % n];
    std::lock_guard<std::mutex> lock(victim.mu);
    if (!victim.tasks.empty()) {
      *out = std::move(victim.tasks.front());
      victim.tasks.pop_front();
      return true;
    }
  }
  return false;
}

void ThreadPool::WorkerLoop(int self) {
  tls_pool = this;
  tls_worker_index = self;
  while (true) {
    Task task;
    if (TryAcquire(self, &task)) {
      task();
      std::lock_guard<std::mutex> lock(wake_mu_);
      if (--pending_ == 0) idle_cv_.notify_all();
      continue;
    }
    std::unique_lock<std::mutex> lock(wake_mu_);
    // Re-check under the wake lock: a Submit may have raced the scan.
    wake_cv_.wait(lock, [this, self] {
      if (stop_) return true;
      for (const auto& shard : shards_) {
        std::lock_guard<std::mutex> inner(shard->mu);
        if (!shard->tasks.empty()) return true;
      }
      return false;
    });
    if (stop_) {
      // Drain remaining work before exiting so queued tasks still run.
      lock.unlock();
      while (TryAcquire(self, &task)) {
        task();
        std::lock_guard<std::mutex> drain_lock(wake_mu_);
        if (--pending_ == 0) idle_cv_.notify_all();
      }
      return;
    }
  }
}

void ThreadPool::WaitIdle() {
  std::unique_lock<std::mutex> lock(wake_mu_);
  idle_cv_.wait(lock, [this] { return pending_ == 0; });
}

void ThreadPool::ParallelFor(int64_t n,
                             const std::function<void(int64_t)>& body) {
  if (n <= 0) return;
  // Inline when fan-out cannot help: tiny ranges, single-worker pools, or
  // re-entrant calls from a worker of this pool (avoids deadlock).
  if (n == 1 || worker_count() <= 1 || tls_pool == this) {
    for (int64_t i = 0; i < n; ++i) body(i);
    return;
  }

  struct State {
    std::atomic<int64_t> next_chunk{0};
    std::atomic<int64_t> chunks_done{0};
    std::mutex mu;
    std::condition_variable done_cv;
  };

  const int64_t chunks =
      std::min<int64_t>(n, static_cast<int64_t>(worker_count()) * 8);
  const int64_t per_chunk = (n + chunks - 1) / chunks;
  auto state = std::make_shared<State>();

  // One runner per worker; each drains chunks off a shared counter, so a
  // worker stuck on a slow chunk simply contributes fewer chunks.
  const int runners = static_cast<int>(std::min<int64_t>(
      static_cast<int64_t>(worker_count()), chunks));
  for (int r = 0; r < runners; ++r) {
    Submit([state, chunks, per_chunk, n, &body] {
      while (true) {
        const int64_t c =
            state->next_chunk.fetch_add(1, std::memory_order_relaxed);
        if (c >= chunks) return;
        const int64_t begin = c * per_chunk;
        const int64_t end = std::min(n, begin + per_chunk);
        for (int64_t i = begin; i < end; ++i) body(i);
        if (state->chunks_done.fetch_add(1, std::memory_order_acq_rel) + 1 ==
            chunks) {
          std::lock_guard<std::mutex> lock(state->mu);
          state->done_cv.notify_all();
        }
      }
    });
  }

  std::unique_lock<std::mutex> lock(state->mu);
  state->done_cv.wait(lock, [&] {
    return state->chunks_done.load(std::memory_order_acquire) == chunks;
  });
}

ThreadPool* ThreadPool::Default() {
  g_default_constructed.store(true, std::memory_order_release);
  static ThreadPool pool(g_default_workers_hint.load());
  return &pool;
}

bool ThreadPool::SetDefaultWorkers(int workers) {
  if (g_default_constructed.load(std::memory_order_acquire)) return false;
  g_default_workers_hint.store(workers);
  return true;
}

}  // namespace autocomp
