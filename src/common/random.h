/// \file random.h
/// \brief Deterministic pseudo-random source for workload generation.
///
/// All stochastic behaviour in the simulator flows from seeded Rng
/// instances so that identical configurations replay identically (NFR2).

#pragma once

#include <cstdint>
#include <cmath>
#include <vector>

namespace autocomp {

/// \brief SplitMix64-seeded xoshiro256** generator with common
/// distributions. Not cryptographically secure; fast and reproducible.
class Rng {
 public:
  explicit Rng(uint64_t seed = 42) { Seed(seed); }

  /// Re-seeds the generator deterministically from a single value.
  void Seed(uint64_t seed);

  /// Uniform 64-bit value.
  uint64_t NextUint64();

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform integer in [lo, hi] inclusive. Precondition: lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// True with probability p (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Normal(mean, stddev) via Box-Muller.
  double Normal(double mean, double stddev);

  /// Log-normal: exp(Normal(mu, sigma)). Used for small-file size skew.
  double LogNormal(double mu, double sigma);

  /// Exponential with rate lambda (> 0).
  double Exponential(double lambda);

  /// Poisson(mean) via inversion for small means, normal approx otherwise.
  int64_t Poisson(double mean);

  /// Zipf-like rank selection over [0, n) with exponent s >= 0.
  /// Rank 0 is most popular. Used for skewed table access patterns.
  int64_t Zipf(int64_t n, double s);

  /// Picks an index in [0, weights.size()) proportionally to weights.
  /// Non-positive total weight falls back to uniform.
  size_t WeightedIndex(const std::vector<double>& weights);

  /// Derives an independent child generator; stable for a given label.
  Rng Fork(uint64_t label) const;

  /// \brief Complete generator state for lane checkpoint/restore: the
  /// xoshiro words, the origin seed (Fork derives from it), and the
  /// Box-Muller spare. Restoring it resumes the stream bit-exactly.
  struct State {
    uint64_t state[4] = {0, 0, 0, 0};
    uint64_t origin_seed = 0;
    bool have_cached_normal = false;
    double cached_normal = 0.0;
  };
  State SaveState() const {
    State s;
    for (int i = 0; i < 4; ++i) s.state[i] = state_[i];
    s.origin_seed = origin_seed_;
    s.have_cached_normal = have_cached_normal_;
    s.cached_normal = cached_normal_;
    return s;
  }
  void RestoreState(const State& s) {
    for (int i = 0; i < 4; ++i) state_[i] = s.state[i];
    origin_seed_ = s.origin_seed;
    have_cached_normal_ = s.have_cached_normal;
    cached_normal_ = s.cached_normal;
  }

  /// Number of per-exponent Zipf weight memos held by the calling
  /// thread (test hook for the bounded-memo guarantee).
  static int64_t ZipfMemoCountForTesting();

 private:
  uint64_t state_[4];
  uint64_t origin_seed_ = 0;
  bool have_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace autocomp
