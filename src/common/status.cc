#include "common/status.h"

namespace autocomp {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kCommitConflict:
      return "CommitConflict";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kTimedOut:
      return "TimedOut";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kCancelled:
      return "Cancelled";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code());
  if (!message().empty()) {
    out += ": ";
    out += message();
  }
  return out;
}

}  // namespace autocomp
