#include "common/units.h"

#include <cmath>
#include <cstdio>

namespace autocomp {

std::string FormatBytes(int64_t bytes) {
  const char* suffix = "B";
  double value = static_cast<double>(bytes);
  if (std::llabs(bytes) >= kTiB) {
    value /= static_cast<double>(kTiB);
    suffix = "TiB";
  } else if (std::llabs(bytes) >= kGiB) {
    value /= static_cast<double>(kGiB);
    suffix = "GiB";
  } else if (std::llabs(bytes) >= kMiB) {
    value /= static_cast<double>(kMiB);
    suffix = "MiB";
  } else if (std::llabs(bytes) >= kKiB) {
    value /= static_cast<double>(kKiB);
    suffix = "KiB";
  }
  char buf[64];
  if (suffix[0] == 'B') {
    std::snprintf(buf, sizeof(buf), "%lldB", static_cast<long long>(bytes));
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f%s", value, suffix);
  }
  return buf;
}

std::string FormatDuration(SimTime seconds) {
  const bool negative = seconds < 0;
  if (negative) seconds = -seconds;
  const long long h = seconds / kHour;
  const long long m = (seconds % kHour) / kMinute;
  const long long s = seconds % kMinute;
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%s%02lldh %02lldm %02llds",
                negative ? "-" : "", h, m, s);
  return buf;
}

}  // namespace autocomp
