/// \file clock.h
/// \brief Virtual-time clock used to keep the whole system deterministic.
///
/// Every component that needs "now" receives a Clock*. Production
/// deployments would pass a wall clock; the simulation passes a
/// SimulatedClock advanced by the discrete-event loop (NFR2: determinism).

#pragma once

#include <cassert>

#include "common/units.h"

namespace autocomp {

/// \brief Abstract time source, in integral simulated seconds.
class Clock {
 public:
  virtual ~Clock() = default;
  /// Current time in seconds since the simulation epoch.
  virtual SimTime Now() const = 0;
};

/// \brief Manually advanced clock for deterministic simulation.
class SimulatedClock final : public Clock {
 public:
  explicit SimulatedClock(SimTime start = 0) : now_(start) {}

  SimTime Now() const override { return now_; }

  /// Moves time forward by `delta` seconds (must be non-negative).
  void Advance(SimTime delta) {
    assert(delta >= 0 && "clock cannot run backwards");
    now_ += delta;
  }

  /// Jumps to an absolute time (must not be in the past).
  void AdvanceTo(SimTime t) {
    assert(t >= now_ && "clock cannot run backwards");
    now_ = t;
  }

 private:
  SimTime now_;
};

}  // namespace autocomp
