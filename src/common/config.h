/// \file config.h
/// \brief Typed key-value configuration shared by pluggable components.
///
/// AutoComp stages (generators, traits, rankers, schedulers) are configured
/// through a uniform property bag so that deployments can wire components
/// declaratively (NFR1/NFR3), mirroring table properties in LST catalogs.

#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "common/status.h"

namespace autocomp {

/// \brief String-keyed property bag with typed accessors and defaults.
class Config {
 public:
  Config() = default;

  Config& Set(const std::string& key, const std::string& value) {
    entries_[key] = value;
    return *this;
  }
  Config& SetInt(const std::string& key, int64_t value) {
    return Set(key, std::to_string(value));
  }
  Config& SetDouble(const std::string& key, double value);
  Config& SetBool(const std::string& key, bool value) {
    return Set(key, value ? "true" : "false");
  }

  bool Has(const std::string& key) const {
    return entries_.count(key) > 0;
  }

  std::string GetString(const std::string& key,
                        const std::string& fallback = "") const;
  int64_t GetInt(const std::string& key, int64_t fallback) const;
  double GetDouble(const std::string& key, double fallback) const;
  bool GetBool(const std::string& key, bool fallback) const;

  /// Typed accessors that fail instead of defaulting.
  Result<int64_t> RequireInt(const std::string& key) const;
  Result<double> RequireDouble(const std::string& key) const;
  Result<std::string> RequireString(const std::string& key) const;

  /// Returns a copy with `overrides` layered on top of this config.
  Config WithOverrides(const Config& overrides) const;

  const std::map<std::string, std::string>& entries() const {
    return entries_;
  }

 private:
  std::map<std::string, std::string> entries_;
};

}  // namespace autocomp
