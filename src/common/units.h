/// \file units.h
/// \brief Byte-size and time units used throughout the simulation.

#pragma once

#include <cstdint>
#include <string>

namespace autocomp {

inline constexpr int64_t kKiB = int64_t{1} << 10;
inline constexpr int64_t kMiB = int64_t{1} << 20;
inline constexpr int64_t kGiB = int64_t{1} << 30;
inline constexpr int64_t kTiB = int64_t{1} << 40;

/// Simulated time is tracked in integral seconds.
using SimTime = int64_t;

inline constexpr SimTime kSecond = 1;
inline constexpr SimTime kMinute = 60 * kSecond;
inline constexpr SimTime kHour = 60 * kMinute;
inline constexpr SimTime kDay = 24 * kHour;
inline constexpr SimTime kWeek = 7 * kDay;

/// \brief Renders a byte count with a binary-unit suffix, e.g. "512.0MiB".
std::string FormatBytes(int64_t bytes);

/// \brief Renders a simulated duration as "HHh MMm SSs".
std::string FormatDuration(SimTime seconds);

}  // namespace autocomp
