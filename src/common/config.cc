#include "common/config.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>

namespace autocomp {

Config& Config::SetDouble(const std::string& key, double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return Set(key, buf);
}

std::string Config::GetString(const std::string& key,
                              const std::string& fallback) const {
  const auto it = entries_.find(key);
  return it == entries_.end() ? fallback : it->second;
}

int64_t Config::GetInt(const std::string& key, int64_t fallback) const {
  const auto it = entries_.find(key);
  if (it == entries_.end()) return fallback;
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(it->second.c_str(), &end, 10);
  if (errno != 0 || end == it->second.c_str() || *end != '\0') return fallback;
  return v;
}

double Config::GetDouble(const std::string& key, double fallback) const {
  const auto it = entries_.find(key);
  if (it == entries_.end()) return fallback;
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(it->second.c_str(), &end);
  if (errno != 0 || end == it->second.c_str() || *end != '\0') return fallback;
  return v;
}

bool Config::GetBool(const std::string& key, bool fallback) const {
  const auto it = entries_.find(key);
  if (it == entries_.end()) return fallback;
  if (it->second == "true" || it->second == "1") return true;
  if (it->second == "false" || it->second == "0") return false;
  return fallback;
}

Result<int64_t> Config::RequireInt(const std::string& key) const {
  if (!Has(key)) return Status::NotFound("missing config key: " + key);
  const int64_t sentinel = INT64_MIN;
  const int64_t v = GetInt(key, sentinel);
  if (v == sentinel && GetString(key) != std::to_string(sentinel)) {
    return Status::InvalidArgument("config key not an integer: " + key);
  }
  return v;
}

Result<double> Config::RequireDouble(const std::string& key) const {
  if (!Has(key)) return Status::NotFound("missing config key: " + key);
  errno = 0;
  const std::string& raw = entries_.at(key);
  char* end = nullptr;
  const double v = std::strtod(raw.c_str(), &end);
  if (errno != 0 || end == raw.c_str() || *end != '\0') {
    return Status::InvalidArgument("config key not a double: " + key);
  }
  return v;
}

Result<std::string> Config::RequireString(const std::string& key) const {
  if (!Has(key)) return Status::NotFound("missing config key: " + key);
  return entries_.at(key);
}

Config Config::WithOverrides(const Config& overrides) const {
  Config merged = *this;
  for (const auto& [k, v] : overrides.entries_) merged.entries_[k] = v;
  return merged;
}

}  // namespace autocomp
