/// \file histogram.h
/// \brief Value summaries used for file-size distributions and latency
/// percentiles (Figures 1, 2, 8).

#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace autocomp {

/// \brief Five-number summary of a sample (candlesticks in Figure 8).
struct QuantileSummary {
  double min = 0;
  double p25 = 0;
  double median = 0;
  double p75 = 0;
  double max = 0;
  int64_t count = 0;
};

/// \brief Streaming sample collector with exact quantiles.
///
/// Stores all observations; suitable for the simulator's sample sizes
/// (<= millions). Deterministic: quantiles use linear interpolation on the
/// sorted sample.
class Sample {
 public:
  void Add(double value) { values_.push_back(value); }
  void Clear() { values_.clear(); }

  int64_t count() const { return static_cast<int64_t>(values_.size()); }
  bool empty() const { return values_.empty(); }

  double Sum() const;
  double Mean() const;
  double StdDev() const;
  double Min() const;
  double Max() const;

  /// Quantile q in [0, 1] via linear interpolation. Precondition: !empty().
  double Quantile(double q) const;

  /// Convenience five-number summary.
  QuantileSummary Summary() const;

  const std::vector<double>& values() const { return values_; }

 private:
  // Sorted lazily by Quantile(); kept simple and value-exact.
  mutable std::vector<double> values_;
  mutable bool sorted_ = false;
  void EnsureSorted() const;
};

/// \brief Fixed-bucket histogram over byte sizes, with human-readable
/// bucket labels, used to print file-size distributions.
class SizeHistogram {
 public:
  /// \param bucket_bounds ascending exclusive upper bounds in bytes; a
  /// final overflow bucket captures everything above the last bound.
  explicit SizeHistogram(std::vector<int64_t> bucket_bounds);

  /// Default buckets used by the paper's distribution plots:
  /// <1MiB, <8, <32, <64, <128, <256, <512, <1GiB, >=1GiB.
  static SizeHistogram ForFileSizes();

  void Add(int64_t bytes);
  void Clear();

  int64_t total_count() const { return total_; }
  size_t num_buckets() const { return counts_.size(); }
  int64_t bucket_count(size_t i) const { return counts_[i]; }
  /// Label such as "<128MiB" or ">=1GiB".
  std::string bucket_label(size_t i) const;

  /// Fraction of observations strictly below `bytes` (interpolating within
  /// the containing bucket). Used for "% of files smaller than 128MB".
  double FractionBelow(int64_t bytes) const;

  /// Renders an ASCII bar chart, one row per bucket.
  std::string ToAsciiChart(int width = 50) const;

 private:
  std::vector<int64_t> bounds_;
  std::vector<int64_t> counts_;  // bounds_.size() + 1 buckets
  std::vector<int64_t> raw_;     // raw values for exact FractionBelow
  int64_t total_ = 0;
};

}  // namespace autocomp
