#include "common/histogram.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>

#include "common/units.h"

namespace autocomp {

void Sample::EnsureSorted() const {
  if (!sorted_) {
    std::sort(values_.begin(), values_.end());
    sorted_ = true;
  }
}

double Sample::Sum() const {
  double s = 0;
  for (double v : values_) s += v;
  return s;
}

double Sample::Mean() const { return values_.empty() ? 0.0 : Sum() / count(); }

double Sample::StdDev() const {
  if (values_.size() < 2) return 0.0;
  const double m = Mean();
  double acc = 0;
  for (double v : values_) acc += (v - m) * (v - m);
  return std::sqrt(acc / (values_.size() - 1));
}

double Sample::Min() const {
  assert(!empty());
  EnsureSorted();
  return values_.front();
}

double Sample::Max() const {
  assert(!empty());
  EnsureSorted();
  return values_.back();
}

double Sample::Quantile(double q) const {
  assert(!empty());
  q = std::clamp(q, 0.0, 1.0);
  EnsureSorted();
  const double pos = q * (values_.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const size_t hi = std::min(lo + 1, values_.size() - 1);
  const double frac = pos - lo;
  return values_[lo] * (1.0 - frac) + values_[hi] * frac;
}

QuantileSummary Sample::Summary() const {
  QuantileSummary s;
  s.count = count();
  if (empty()) return s;
  s.min = Min();
  s.p25 = Quantile(0.25);
  s.median = Quantile(0.5);
  s.p75 = Quantile(0.75);
  s.max = Max();
  return s;
}

SizeHistogram::SizeHistogram(std::vector<int64_t> bucket_bounds)
    : bounds_(std::move(bucket_bounds)), counts_(bounds_.size() + 1, 0) {
  assert(std::is_sorted(bounds_.begin(), bounds_.end()));
}

SizeHistogram SizeHistogram::ForFileSizes() {
  return SizeHistogram({1 * kMiB, 8 * kMiB, 32 * kMiB, 64 * kMiB, 128 * kMiB,
                        256 * kMiB, 512 * kMiB, 1 * kGiB});
}

void SizeHistogram::Add(int64_t bytes) {
  // Bucket i holds values strictly below bounds_[i]: the first bound
  // greater than `bytes` identifies the bucket.
  const auto it = std::upper_bound(bounds_.begin(), bounds_.end(), bytes);
  counts_[static_cast<size_t>(it - bounds_.begin())]++;
  raw_.push_back(bytes);
  ++total_;
}

void SizeHistogram::Clear() {
  std::fill(counts_.begin(), counts_.end(), 0);
  raw_.clear();
  total_ = 0;
}

std::string SizeHistogram::bucket_label(size_t i) const {
  assert(i < counts_.size());
  if (i < bounds_.size()) return "<" + FormatBytes(bounds_[i]);
  return ">=" + FormatBytes(bounds_.back());
}

double SizeHistogram::FractionBelow(int64_t bytes) const {
  if (total_ == 0) return 0.0;
  int64_t below = 0;
  for (int64_t v : raw_) {
    if (v < bytes) ++below;
  }
  return static_cast<double>(below) / static_cast<double>(total_);
}

std::string SizeHistogram::ToAsciiChart(int width) const {
  int64_t max_count = 1;
  for (int64_t c : counts_) max_count = std::max(max_count, c);
  std::string out;
  char buf[160];
  for (size_t i = 0; i < counts_.size(); ++i) {
    const int bar = static_cast<int>(
        std::llround(static_cast<double>(counts_[i]) * width / max_count));
    std::snprintf(buf, sizeof(buf), "%10s | %-*s %lld\n",
                  bucket_label(i).c_str(), width,
                  std::string(static_cast<size_t>(bar), '#').c_str(),
                  static_cast<long long>(counts_[i]));
    out += buf;
  }
  return out;
}

}  // namespace autocomp
