#include "common/random.h"

#include <algorithm>
#include <cassert>

namespace autocomp {

namespace {

uint64_t SplitMix64(uint64_t* x) {
  uint64_t z = (*x += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

void Rng::Seed(uint64_t seed) {
  origin_seed_ = seed;
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(&sm);
  have_cached_normal_ = false;
}

uint64_t Rng::NextUint64() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 random mantissa bits -> uniform in [0, 1).
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<int64_t>(NextUint64());  // full range
  return lo + static_cast<int64_t>(NextUint64() % span);
}

double Rng::Uniform(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

bool Rng::Bernoulli(double p) {
  p = std::clamp(p, 0.0, 1.0);
  return NextDouble() < p;
}

double Rng::Normal(double mean, double stddev) {
  if (have_cached_normal_) {
    have_cached_normal_ = false;
    return mean + stddev * cached_normal_;
  }
  // Box-Muller; guard against log(0).
  double u1 = NextDouble();
  if (u1 <= 1e-300) u1 = 1e-300;
  const double u2 = NextDouble();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  have_cached_normal_ = true;
  return mean + stddev * r * std::cos(theta);
}

double Rng::LogNormal(double mu, double sigma) {
  return std::exp(Normal(mu, sigma));
}

double Rng::Exponential(double lambda) {
  assert(lambda > 0);
  double u = NextDouble();
  if (u <= 1e-300) u = 1e-300;
  return -std::log(u) / lambda;
}

int64_t Rng::Poisson(double mean) {
  if (mean <= 0) return 0;
  if (mean < 30.0) {
    // Knuth inversion.
    const double limit = std::exp(-mean);
    double product = NextDouble();
    int64_t count = 0;
    while (product > limit) {
      ++count;
      product *= NextDouble();
    }
    return count;
  }
  // Normal approximation for large means.
  const double v = Normal(mean, std::sqrt(mean));
  return std::max<int64_t>(0, static_cast<int64_t>(std::llround(v)));
}

namespace {

// Per-exponent memo of Zipf harmonic weights (see Rng::Zipf). Bounded:
// a workload sweeping many distinct exponents (tuning searches do)
// must not grow a thread's memo arena linearly, so the arena holds at
// most kMaxZipfMemos entries and evicts the least-recently-used one.
// Eviction is safe for determinism because a re-admitted exponent
// recomputes exactly the same weights/prefix sums — the memo only ever
// changes speed, never a draw.
struct ZipfWeightCache {
  double s = 0.0;
  uint64_t last_used = 0;
  std::vector<double> weights;  // weights[i-1] = 1/i^s
  std::vector<double> totals;   // totals[i-1] = sum of weights[0..i-1]
};
constexpr size_t kMaxZipfMemos = 8;
thread_local std::vector<ZipfWeightCache> zipf_memos;
thread_local uint64_t zipf_memo_clock = 0;

}  // namespace

int64_t Rng::ZipfMemoCountForTesting() {
  return static_cast<int64_t>(zipf_memos.size());
}

int64_t Rng::Zipf(int64_t n, double s) {
  assert(n > 0);
  if (n == 1) return 0;
  if (s <= 0.0) return UniformInt(0, n - 1);
  // Inverse-CDF over harmonic weights. The 1/i^s terms and their running
  // prefix sums are memoized per exponent (thread-local, so concurrent
  // lanes never contend), turning repeated draws from O(n) pow calls
  // into an early-exiting subtraction scan. The weights, the prefix
  // accumulation order, and the scan are exactly the original inline
  // loop's arithmetic, so every draw is bit-identical to the unmemoized
  // implementation — fleet workloads replay unchanged.
  ZipfWeightCache* cache = nullptr;
  for (auto& c : zipf_memos) {
    if (c.s == s) {
      cache = &c;
      break;
    }
  }
  if (cache == nullptr) {
    if (zipf_memos.size() >= kMaxZipfMemos) {
      // Evict the least-recently-used exponent; recomputation on
      // re-admission is bit-identical.
      size_t victim = 0;
      for (size_t i = 1; i < zipf_memos.size(); ++i) {
        if (zipf_memos[i].last_used < zipf_memos[victim].last_used) {
          victim = i;
        }
      }
      cache = &zipf_memos[victim];
      cache->s = s;
      cache->weights.clear();
      cache->totals.clear();
    } else {
      zipf_memos.emplace_back();
      cache = &zipf_memos.back();
      cache->s = s;
    }
  }
  cache->last_used = ++zipf_memo_clock;
  while (static_cast<int64_t>(cache->weights.size()) < n) {
    const auto i = static_cast<double>(cache->weights.size() + 1);
    cache->weights.push_back(1.0 / std::pow(i, s));
    cache->totals.push_back(
        (cache->totals.empty() ? 0.0 : cache->totals.back()) +
        cache->weights.back());
  }
  double u = NextDouble() * cache->totals[static_cast<size_t>(n - 1)];
  for (int64_t i = 1; i <= n; ++i) {
    u -= cache->weights[static_cast<size_t>(i - 1)];
    if (u <= 0) return i - 1;
  }
  return n - 1;
}

size_t Rng::WeightedIndex(const std::vector<double>& weights) {
  assert(!weights.empty());
  double total = 0.0;
  for (double w : weights) total += std::max(0.0, w);
  if (total <= 0.0) return static_cast<size_t>(
      UniformInt(0, static_cast<int64_t>(weights.size()) - 1));
  double u = NextDouble() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    u -= std::max(0.0, weights[i]);
    if (u <= 0) return i;
  }
  return weights.size() - 1;
}

Rng Rng::Fork(uint64_t label) const {
  // Mix the origin seed with the label via SplitMix so that forks with
  // different labels are decorrelated but stable across runs.
  uint64_t mix = origin_seed_ ^ (0x6C62272E07BB0142ULL + label * 0x100000001B3ULL);
  return Rng(SplitMix64(&mix));
}

}  // namespace autocomp
