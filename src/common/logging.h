/// \file logging.h
/// \brief Minimal leveled logger plus CHECK macros for invariants.

#pragma once

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace autocomp {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// \brief Process-wide log configuration. Defaults to kWarn so tests and
/// benches stay quiet; examples raise it to kInfo.
class Logger {
 public:
  static LogLevel threshold() { return threshold_; }
  static void set_threshold(LogLevel level) { threshold_ = level; }

  static void Write(LogLevel level, const std::string& msg);

 private:
  static LogLevel threshold_;
};

namespace internal {

/// Accumulates one log line and emits it on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line) : level_(level) {
    stream_ << "[" << Basename(file) << ":" << line << "] ";
  }
  ~LogMessage() { Logger::Write(level_, stream_.str()); }

  std::ostream& stream() { return stream_; }

 private:
  static const char* Basename(const char* path);
  LogLevel level_;
  std::ostringstream stream_;
};

/// Aborts the process after emitting the message.
class FatalLogMessage {
 public:
  FatalLogMessage(const char* file, int line) {
    stream_ << "[" << file << ":" << line << "] CHECK failed: ";
  }
  [[noreturn]] ~FatalLogMessage() {
    std::cerr << stream_.str() << std::endl;
    std::abort();
  }
  std::ostream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
};

}  // namespace internal

#define AUTOCOMP_LOG(level)                                              \
  if (::autocomp::LogLevel::level < ::autocomp::Logger::threshold())     \
    ;                                                                    \
  else                                                                   \
    ::autocomp::internal::LogMessage(::autocomp::LogLevel::level,        \
                                     __FILE__, __LINE__)                 \
        .stream()

#define LOG_DEBUG AUTOCOMP_LOG(kDebug)
#define LOG_INFO AUTOCOMP_LOG(kInfo)
#define LOG_WARN AUTOCOMP_LOG(kWarn)
#define LOG_ERROR AUTOCOMP_LOG(kError)

/// Invariant check: aborts with a message when `cond` is false. Active in
/// all build types — these guard library invariants, not user errors.
#define AUTOCOMP_CHECK(cond)                                       \
  if (cond)                                                        \
    ;                                                              \
  else                                                             \
    ::autocomp::internal::FatalLogMessage(__FILE__, __LINE__)      \
            .stream()                                              \
        << #cond << " "

}  // namespace autocomp
