#include "common/logging.h"

#include <cstring>

namespace autocomp {

LogLevel Logger::threshold_ = LogLevel::kWarn;

void Logger::Write(LogLevel level, const std::string& msg) {
  const char* tag = "?";
  switch (level) {
    case LogLevel::kDebug:
      tag = "D";
      break;
    case LogLevel::kInfo:
      tag = "I";
      break;
    case LogLevel::kWarn:
      tag = "W";
      break;
    case LogLevel::kError:
      tag = "E";
      break;
  }
  std::ostream& os = (level >= LogLevel::kWarn) ? std::cerr : std::clog;
  os << tag << " " << msg << std::endl;
}

const char* internal::LogMessage::Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash ? slash + 1 : path;
}

}  // namespace autocomp
