#include "common/json.h"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace autocomp {

namespace {

void EscapeTo(const std::string& s, std::string* out) {
  out->push_back('"');
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\b':
        *out += "\\b";
        break;
      case '\f':
        *out += "\\f";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(static_cast<char>(c));
        }
    }
  }
  out->push_back('"');
}

/// Recursive-descent parser over a bounded view.
class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Result<JsonValue> ParseDocument() {
    AUTOCOMP_ASSIGN_OR_RETURN(JsonValue v, ParseValue());
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Status::InvalidArgument("trailing characters at offset " +
                                     std::to_string(pos_));
    }
    return v;
  }

 private:
  Result<JsonValue> ParseValue() {
    SkipWhitespace();
    if (pos_ >= text_.size()) {
      return Status::InvalidArgument("unexpected end of input");
    }
    const char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject();
      case '[':
        return ParseArray();
      case '"': {
        AUTOCOMP_ASSIGN_OR_RETURN(std::string s, ParseString());
        return JsonValue(std::move(s));
      }
      case 't':
        AUTOCOMP_RETURN_NOT_OK(Expect("true"));
        return JsonValue(true);
      case 'f':
        AUTOCOMP_RETURN_NOT_OK(Expect("false"));
        return JsonValue(false);
      case 'n':
        AUTOCOMP_RETURN_NOT_OK(Expect("null"));
        return JsonValue();
      default:
        return ParseNumber();
    }
  }

  Result<JsonValue> ParseObject() {
    ++pos_;  // '{'
    JsonValue obj = JsonValue::Object();
    SkipWhitespace();
    if (Peek() == '}') {
      ++pos_;
      return obj;
    }
    while (true) {
      SkipWhitespace();
      if (Peek() != '"') {
        return Status::InvalidArgument("expected object key at offset " +
                                       std::to_string(pos_));
      }
      AUTOCOMP_ASSIGN_OR_RETURN(std::string key, ParseString());
      SkipWhitespace();
      if (Peek() != ':') {
        return Status::InvalidArgument("expected ':' at offset " +
                                       std::to_string(pos_));
      }
      ++pos_;
      AUTOCOMP_ASSIGN_OR_RETURN(JsonValue value, ParseValue());
      obj.Set(key, std::move(value));
      SkipWhitespace();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == '}') {
        ++pos_;
        return obj;
      }
      return Status::InvalidArgument("expected ',' or '}' at offset " +
                                     std::to_string(pos_));
    }
  }

  Result<JsonValue> ParseArray() {
    ++pos_;  // '['
    JsonValue arr = JsonValue::Array();
    SkipWhitespace();
    if (Peek() == ']') {
      ++pos_;
      return arr;
    }
    while (true) {
      AUTOCOMP_ASSIGN_OR_RETURN(JsonValue value, ParseValue());
      arr.Append(std::move(value));
      SkipWhitespace();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == ']') {
        ++pos_;
        return arr;
      }
      return Status::InvalidArgument("expected ',' or ']' at offset " +
                                     std::to_string(pos_));
    }
  }

  Result<std::string> ParseString() {
    ++pos_;  // '"'
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':
          out.push_back('"');
          break;
        case '\\':
          out.push_back('\\');
          break;
        case '/':
          out.push_back('/');
          break;
        case 'b':
          out.push_back('\b');
          break;
        case 'f':
          out.push_back('\f');
          break;
        case 'n':
          out.push_back('\n');
          break;
        case 'r':
          out.push_back('\r');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            return Status::InvalidArgument("truncated \\u escape");
          }
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code += static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code += static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code += static_cast<unsigned>(h - 'A' + 10);
            } else {
              return Status::InvalidArgument("bad \\u escape digit");
            }
          }
          // Encode the BMP code point as UTF-8 (surrogates unsupported —
          // metadata strings are ASCII paths/names in practice).
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return Status::InvalidArgument("bad escape character");
      }
    }
    return Status::InvalidArgument("unterminated string");
  }

  Result<JsonValue> ParseNumber() {
    const size_t start = pos_;
    if (Peek() == '-') ++pos_;
    while (pos_ < text_.size() && std::isdigit(
        static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    bool is_double = false;
    if (pos_ < text_.size() && text_[pos_] == '.') {
      is_double = true;
      ++pos_;
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      is_double = true;
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    const std::string token = text_.substr(start, pos_ - start);
    if (token.empty() || token == "-") {
      return Status::InvalidArgument("malformed number at offset " +
                                     std::to_string(start));
    }
    errno = 0;
    if (!is_double) {
      char* end = nullptr;
      const long long v = std::strtoll(token.c_str(), &end, 10);
      if (errno == 0 && end == token.c_str() + token.size()) {
        return JsonValue(static_cast<int64_t>(v));
      }
      // Fall through to double on overflow.
    }
    char* end = nullptr;
    const double d = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) {
      return Status::InvalidArgument("malformed number: " + token);
    }
    return JsonValue(d);
  }

  Status Expect(const char* literal) {
    const size_t len = std::strlen(literal);
    if (text_.compare(pos_, len, literal) != 0) {
      return Status::InvalidArgument(std::string("expected '") + literal +
                                     "' at offset " + std::to_string(pos_));
    }
    pos_ += len;
    return Status::OK();
  }

  char Peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace

int64_t JsonValue::as_int() const {
  if (type_ == Type::kInt) return int_;
  if (type_ == Type::kDouble) return static_cast<int64_t>(double_);
  return 0;
}

double JsonValue::as_double() const {
  if (type_ == Type::kDouble) return double_;
  if (type_ == Type::kInt) return static_cast<double>(int_);
  return 0;
}

Result<int64_t> JsonValue::AsInt() const {
  if (!is_number()) return Status::InvalidArgument("not a number");
  return as_int();
}

Result<double> JsonValue::AsDouble() const {
  if (!is_number()) return Status::InvalidArgument("not a number");
  return as_double();
}

Result<std::string> JsonValue::AsString() const {
  if (type_ != Type::kString) return Status::InvalidArgument("not a string");
  return string_;
}

Result<bool> JsonValue::AsBool() const {
  if (type_ != Type::kBool) return Status::InvalidArgument("not a bool");
  return bool_;
}

const JsonValue& JsonValue::Get(const std::string& key) const {
  static const JsonValue kNull;
  const auto it = object_.find(key);
  return it == object_.end() ? kNull : it->second;
}

std::string JsonValue::Dump() const {
  std::string out;
  switch (type_) {
    case Type::kNull:
      out = "null";
      break;
    case Type::kBool:
      out = bool_ ? "true" : "false";
      break;
    case Type::kInt:
      out = std::to_string(int_);
      break;
    case Type::kDouble: {
      char buf[48];
      std::snprintf(buf, sizeof(buf), "%.17g", double_);
      out = buf;
      // Ensure re-parse keeps double-ness for integral values.
      if (out.find_first_of(".eE") == std::string::npos) out += ".0";
      break;
    }
    case Type::kString:
      EscapeTo(string_, &out);
      break;
    case Type::kArray: {
      out.push_back('[');
      for (size_t i = 0; i < array_.size(); ++i) {
        if (i > 0) out.push_back(',');
        out += array_[i].Dump();
      }
      out.push_back(']');
      break;
    }
    case Type::kObject: {
      out.push_back('{');
      bool first = true;
      for (const auto& [key, value] : object_) {
        if (!first) out.push_back(',');
        first = false;
        EscapeTo(key, &out);
        out.push_back(':');
        out += value.Dump();
      }
      out.push_back('}');
      break;
    }
  }
  return out;
}

Result<JsonValue> JsonValue::Parse(const std::string& text) {
  Parser parser(text);
  return parser.ParseDocument();
}

}  // namespace autocomp
