#include "catalog/control_plane.h"

#include <cassert>

#include "common/logging.h"
#include "lst/metadata_json.h"

namespace autocomp::catalog {

ControlPlane::ControlPlane(Catalog* catalog) : catalog_(catalog) {
  assert(catalog_ != nullptr);
}

void ControlPlane::SetPolicy(const std::string& qualified_name,
                             TablePolicy policy) {
  policies_[qualified_name] = policy;
}

TablePolicy ControlPlane::GetPolicy(const std::string& qualified_name) const {
  const auto it = policies_.find(qualified_name);
  return it == policies_.end() ? TablePolicy{} : it->second;
}

Result<RetentionReport> ControlPlane::RunRetentionFor(
    const std::string& qualified_name,
    std::optional<SimTime> retention_override) {
  const TablePolicy policy = GetPolicy(qualified_name);
  const SimTime now = catalog_->clock()->Now();
  const SimTime retention =
      retention_override.value_or(policy.snapshot_retention);
  const SimTime older_than = now - retention;

  RetentionReport report;
  AUTOCOMP_ASSIGN_OR_RETURN(
      lst::ExpireResult expired,
      lst::ExpireSnapshots(catalog_, qualified_name, catalog_->clock(),
                           older_than, /*keep_last=*/1));
  report.tables_processed = 1;
  report.snapshots_expired = expired.expired_snapshots;
  for (const std::string& path : expired.orphaned_paths) {
    auto info = catalog_->filesystem()->Stat(path);
    if (info.ok()) report.bytes_deleted += info->size_bytes;
    const Status st = catalog_->filesystem()->DeleteFile(path);
    if (st.ok()) {
      ++report.files_deleted;
    } else {
      LOG_WARN << "orphan cleanup failed for " << path << ": " << st;
    }
  }
  if (expired.expired_snapshots > 0 && catalog_->options().persist_metadata) {
    // The expiry commit re-persisted the new metadata version; reap the
    // manifest objects only the expired snapshots referenced, so the
    // storage-side metadata footprint tracks the retained lineage.
    AUTOCOMP_ASSIGN_OR_RETURN(lst::TableMetadataPtr metadata,
                              catalog_->LoadTable(qualified_name));
    AUTOCOMP_ASSIGN_OR_RETURN(
        report.metadata_objects_deleted,
        lst::ExpireManifestFootprint(catalog_->filesystem(), *metadata));
  }
  return report;
}

RetentionReport ControlPlane::RunRetentionService() {
  RetentionReport total;
  for (const std::string& name : catalog_->ListAllTables()) {
    auto report = RunRetentionFor(name);
    if (!report.ok()) {
      LOG_WARN << "retention failed for " << name << ": " << report.status();
      continue;
    }
    total.tables_processed += report->tables_processed;
    total.snapshots_expired += report->snapshots_expired;
    total.files_deleted += report->files_deleted;
    total.bytes_deleted += report->bytes_deleted;
    total.metadata_objects_deleted += report->metadata_objects_deleted;
  }
  return total;
}

}  // namespace autocomp::catalog
