#include "catalog/catalog.h"

#include <algorithm>
#include <cassert>
#include <mutex>

#include "common/logging.h"
#include "fault/fault_injector.h"
#include "lst/metadata_blob.h"
#include "lst/metadata_json.h"

namespace autocomp::catalog {

Result<std::pair<std::string, std::string>> SplitQualifiedName(
    const std::string& qualified_name) {
  const size_t dot = qualified_name.find('.');
  if (dot == std::string::npos || dot == 0 ||
      dot + 1 == qualified_name.size() ||
      qualified_name.find('.', dot + 1) != std::string::npos) {
    return Status::InvalidArgument("expected 'db.table', got: " +
                                   qualified_name);
  }
  return std::make_pair(qualified_name.substr(0, dot),
                        qualified_name.substr(dot + 1));
}

Catalog::Catalog(const Clock* clock, storage::DistributedFileSystem* dfs,
                 CatalogOptions options)
    : clock_(clock), dfs_(dfs), options_(options) {
  assert(clock_ != nullptr && dfs_ != nullptr);
}

void Catalog::MaybePersistMetadata(const lst::TableMetadata& metadata) {
  if (!options_.persist_metadata) return;
  auto persisted = lst::PersistMetadataFootprint(dfs_, metadata);
  if (!persisted.ok()) {
    // A quota breach on the metadata write mirrors a real failure mode
    // (namespace exhaustion blocks commits' bookkeeping); surface it but
    // keep the already-swapped commit.
    LOG_WARN << "metadata persistence failed for " << metadata.name() << ": "
             << persisted.status();
    return;
  }
  const int64_t expire_below =
      metadata.version() - options_.metadata_versions_retained;
  if (expire_below > 0) {
    auto expired = lst::ExpireMetadataFootprint(dfs_, metadata, expire_below);
    if (!expired.ok()) {
      LOG_WARN << "metadata expiry failed for " << metadata.name() << ": "
               << expired.status();
    }
  }
}

std::string Catalog::DatabaseLocation(const std::string& db) {
  return "/data/" + db;
}

std::string Catalog::TableLocation(const std::string& qualified_name) {
  auto parts = SplitQualifiedName(qualified_name);
  if (!parts.ok()) return "/data/_invalid";
  return DatabaseLocation(parts->first) + "/" + parts->second;
}

Status Catalog::CreateDatabase(const std::string& db,
                               int64_t namespace_quota_objects) {
  if (db.empty() || db.find('.') != std::string::npos ||
      db.find('/') != std::string::npos) {
    return Status::InvalidArgument("invalid database name: " + db);
  }
  std::unique_lock lock(mu_);
  if (databases_.count(db) > 0) {
    return Status::AlreadyExists("database exists: " + db);
  }
  databases_[db] = {};
  if (namespace_quota_objects > 0) {
    dfs_->SetNamespaceQuota(DatabaseLocation(db), namespace_quota_objects);
  }
  return Status::OK();
}

bool Catalog::DatabaseExists(const std::string& db) const {
  std::shared_lock lock(mu_);
  return databases_.count(db) > 0;
}

std::vector<std::string> Catalog::ListDatabases() const {
  std::shared_lock lock(mu_);
  std::vector<std::string> out;
  out.reserve(databases_.size());
  for (const auto& [db, _] : databases_) out.push_back(db);
  return out;
}

Result<lst::Table> Catalog::CreateTable(const std::string& db,
                                        const std::string& table,
                                        lst::Schema schema,
                                        lst::PartitionSpec spec,
                                        Config properties) {
  std::unique_lock lock(mu_);
  const auto db_it = databases_.find(db);
  if (db_it == databases_.end()) {
    return Status::NotFound("no such database: " + db);
  }
  if (table.empty() || table.find('.') != std::string::npos ||
      table.find('/') != std::string::npos) {
    return Status::InvalidArgument("invalid table name: " + table);
  }
  const std::string qualified = db + "." + table;
  if (tables_.count(qualified) > 0) {
    return Status::AlreadyExists("table exists: " + qualified);
  }
  lst::TableMetadata::Builder builder(qualified, TableLocation(qualified),
                                      std::move(schema), std::move(spec));
  builder.SetProperties(std::move(properties));
  builder.SetCreatedAt(clock_->Now());
  AUTOCOMP_ASSIGN_OR_RETURN(lst::TableMetadataPtr meta, builder.Build());
  MaybePersistMetadata(*meta);
  tables_.emplace(qualified, std::move(meta));
  db_it->second.push_back(table);
  ++stats_.tables_created;
  return lst::Table(this, qualified, clock_);
}

Result<lst::Table> Catalog::GetTable(const std::string& qualified_name) {
  std::shared_lock lock(mu_);
  if (tables_.count(qualified_name) == 0) {
    return Status::NotFound("no such table: " + qualified_name);
  }
  return lst::Table(this, qualified_name, clock_);
}

Status Catalog::DropTable(const std::string& qualified_name) {
  AUTOCOMP_ASSIGN_OR_RETURN(auto parts, SplitQualifiedName(qualified_name));
  {
    std::unique_lock lock(mu_);
    const auto it = tables_.find(qualified_name);
    if (it == tables_.end()) {
      return Status::NotFound("no such table: " + qualified_name);
    }
    tables_.erase(it);
    auto& list = databases_[parts.first];
    list.erase(std::remove(list.begin(), list.end(), parts.second),
               list.end());
    ++stats_.tables_dropped;
  }
  CommitEvent event;
  event.table = qualified_name;
  event.metadata = nullptr;  // dropped
  NotifyCommit(event);
  return Status::OK();
}

std::vector<std::string> Catalog::ListTables(const std::string& db) const {
  std::shared_lock lock(mu_);
  const auto it = databases_.find(db);
  if (it == databases_.end()) return {};
  std::vector<std::string> out = it->second;
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::string> Catalog::ListAllTables() const {
  std::shared_lock lock(mu_);
  std::vector<std::string> out;
  out.reserve(tables_.size());
  for (const auto& [qualified, _] : tables_) out.push_back(qualified);
  return out;
}

storage::QuotaStatus Catalog::DatabaseQuota(const std::string& db) const {
  return dfs_->GetQuota(DatabaseLocation(db));
}

void Catalog::RecordTableRead(const std::string& qualified_name) {
  std::unique_lock lock(mu_);
  TableAccessStats& stats = access_[qualified_name];
  ++stats.read_count;
  stats.last_read_at = clock_->Now();
}

TableAccessStats Catalog::GetAccessStats(
    const std::string& qualified_name) const {
  std::shared_lock lock(mu_);
  const auto it = access_.find(qualified_name);
  return it == access_.end() ? TableAccessStats{} : it->second;
}

int64_t Catalog::AddCommitListener(CommitListener listener) {
  std::unique_lock lock(mu_);
  const int64_t id = next_listener_id_++;
  commit_listeners_.emplace_back(id, std::move(listener));
  return id;
}

void Catalog::RemoveCommitListener(int64_t id) {
  std::unique_lock lock(mu_);
  commit_listeners_.erase(
      std::remove_if(commit_listeners_.begin(), commit_listeners_.end(),
                     [id](const auto& entry) { return entry.first == id; }),
      commit_listeners_.end());
}

void Catalog::NotifyCommit(const CommitEvent& event) const {
  // Snapshot the listener list, then invoke outside the lock: listeners
  // do real work (index maintenance, cache eviction) and must not
  // serialize catalog reads or deadlock on re-entrant lookups. The event
  // carries the committed metadata, so listeners never need the lock.
  std::vector<CommitListener> listeners;
  {
    std::shared_lock lock(mu_);
    listeners.reserve(commit_listeners_.size());
    for (const auto& [id, listener] : commit_listeners_) {
      listeners.push_back(listener);
    }
  }
  for (const CommitListener& listener : listeners) listener(event);
}

Result<lst::TableMetadataPtr> Catalog::LoadTable(
    const std::string& name) const {
  std::shared_lock lock(mu_);
  const auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound("no such table: " + name);
  }
  return it->second;
}

Status Catalog::CommitTable(const std::string& name, int64_t base_version,
                            lst::TableMetadataPtr new_metadata) {
  // No delta available (snapshot expiry, rollback, direct callers):
  // listeners see delta == nullptr and fall back to a full rebuild.
  return CommitTableWithDelta(name, base_version, std::move(new_metadata),
                              lst::CommitDelta{});
}

Status Catalog::CommitTableWithDelta(const std::string& name,
                                     int64_t base_version,
                                     lst::TableMetadataPtr new_metadata,
                                     const lst::CommitDelta& delta) {
  lst::TableMetadataPtr committed;
  {
    std::unique_lock lock(mu_);
    ++stats_.commit_attempts;
    const auto it = tables_.find(name);
    if (it == tables_.end()) {
      return Status::NotFound("no such table: " + name);
    }
    if (it->second->version() != base_version) {
      ++stats_.commit_conflicts;
      return Status::CommitConflict(
          "version moved: expected " + std::to_string(base_version) + ", is " +
          std::to_string(it->second->version()));
    }
    if (new_metadata == nullptr || new_metadata->version() <= base_version) {
      return Status::InvalidArgument("new metadata must advance the version");
    }
    MaybePersistMetadata(*new_metadata);
    it->second = std::move(new_metadata);
    committed = it->second;
  }
  // Outside the lock: concurrent commits to the SAME table may deliver
  // their events out of order here; listeners order by metadata version.
  CommitEvent event;
  event.table = name;
  event.metadata = std::move(committed);
  event.delta = delta.known ? &delta : nullptr;
  // Event-delivery faults fire AFTER the swap: the commit itself is
  // durable either way, only the notification is lossy/duplicated —
  // listeners (stats cache, incremental index) must tolerate both.
  fault::FaultKind event_fault = fault::FaultKind::kNone;
  if (fault_ != nullptr) {
    event_fault = fault_->Arm(fault::kSiteCatalogCommitEvent, name);
  }
  if (event_fault != fault::FaultKind::kDropEvent) {
    NotifyCommit(event);
    if (event_fault == fault::FaultKind::kDuplicateEvent) NotifyCommit(event);
  }
  return Status::OK();
}

void Catalog::SaveState(common::BlobWriter* w) const {
  std::shared_lock lock(mu_);
  w->WriteU64(databases_.size());
  for (const auto& [db, tables] : databases_) {
    w->WriteString(db);
    // Table lists keep creation order (DropTable removes in place); the
    // checkpoint preserves it verbatim.
    w->WriteU64(tables.size());
    for (const std::string& t : tables) w->WriteString(t);
  }
  w->WriteU64(tables_.size());
  for (const auto& [qualified, meta] : tables_) {
    w->WriteString(qualified);
    lst::TableMetadataToBlob(*meta, w);
  }
  w->WriteU64(access_.size());
  for (const auto& [qualified, stats] : access_) {
    w->WriteString(qualified);
    w->WriteI64(stats.read_count);
    w->WriteI64(stats.last_read_at);
  }
  w->WriteI64(stats_.commit_attempts);
  w->WriteI64(stats_.commit_conflicts);
  w->WriteI64(stats_.tables_created);
  w->WriteI64(stats_.tables_dropped);
}

Status Catalog::RestoreState(common::BlobReader* r) {
  std::unique_lock lock(mu_);
  databases_.clear();
  tables_.clear();
  access_.clear();
  const uint64_t db_count = r->ReadU64();
  for (uint64_t i = 0; i < db_count; ++i) {
    std::string db = r->ReadString();
    std::vector<std::string> tables(r->ReadU64());
    for (std::string& t : tables) t = r->ReadString();
    databases_.emplace(std::move(db), std::move(tables));
  }
  const uint64_t table_count = r->ReadU64();
  for (uint64_t i = 0; i < table_count; ++i) {
    std::string qualified = r->ReadString();
    AUTOCOMP_ASSIGN_OR_RETURN(lst::TableMetadataPtr meta,
                              lst::TableMetadataFromBlob(r));
    tables_.emplace(std::move(qualified), std::move(meta));
  }
  const uint64_t access_count = r->ReadU64();
  for (uint64_t i = 0; i < access_count; ++i) {
    std::string qualified = r->ReadString();
    TableAccessStats stats;
    stats.read_count = r->ReadI64();
    stats.last_read_at = r->ReadI64();
    access_.emplace(std::move(qualified), stats);
  }
  stats_.commit_attempts = r->ReadI64();
  stats_.commit_conflicts = r->ReadI64();
  stats_.tables_created = r->ReadI64();
  stats_.tables_dropped = r->ReadI64();
  if (!r->ok()) return Status::Internal("truncated catalog checkpoint");
  return Status::OK();
}

}  // namespace autocomp::catalog
