/// \file control_plane.h
/// \brief OpenHouse-style control plane: declarative table policies plus
/// data services that reconcile observed and desired state (§2).

#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "common/blob.h"
#include "common/units.h"

namespace autocomp::catalog {

/// \brief Desired-state policy attached to a table.
struct TablePolicy {
  /// Target on-disk file size for writes and compaction.
  int64_t target_file_size_bytes = 512 * kMiB;
  /// Snapshots older than this are expired by the retention service.
  SimTime snapshot_retention = 3 * kDay;
  /// Tables can opt out of automatic maintenance.
  bool compaction_enabled = true;
  /// Rewrite with a clustering layout (§8): costlier compaction, faster
  /// selective scans afterwards.
  bool clustering_enabled = false;
  /// Tenant-facing priority hint (1 = normal); multiplies ranking scores.
  double priority = 1.0;
  /// Per-table compaction-policy override: a core::PolicySpec string
  /// (core/policy.h), e.g.
  /// "trigger=staleness;granularity=table;movement=merge;picker=moop".
  /// Empty = inherit the service's fleet-wide policy. The scheduler
  /// applies the movement axis per request; unparsable strings are
  /// ignored (the service cannot crash on a bad catalog entry).
  std::string compaction_policy;
};

/// \brief Result of one retention-service sweep.
struct RetentionReport {
  int64_t tables_processed = 0;
  int64_t snapshots_expired = 0;
  int64_t files_deleted = 0;
  int64_t bytes_deleted = 0;
  /// Metadata objects (metadata.json versions + manifest-*.avro files)
  /// reclaimed alongside the snapshots, when the catalog persists its
  /// metadata footprint (CatalogOptions::persist_metadata).
  int64_t metadata_objects_deleted = 0;
};

/// \brief Control plane over a Catalog: policy registry + data services.
///
/// In the paper, OpenHouse hosts both the declarative catalog and the data
/// services (retention, compaction) that act on it; AutoComp plugs into
/// this layer (Figure 5). The compaction service itself lives in
/// src/core; this class provides the policy registry and the snapshot
/// retention service whose file deletions make compaction's storage-level
/// effect visible.
class ControlPlane {
 public:
  explicit ControlPlane(Catalog* catalog);

  Catalog* catalog() { return catalog_; }

  /// Sets the policy for a table (creating or replacing it).
  void SetPolicy(const std::string& qualified_name, TablePolicy policy);

  /// Policy for a table; default-constructed policy if none was set.
  TablePolicy GetPolicy(const std::string& qualified_name) const;

  /// Expires old snapshots for every table per its policy and deletes the
  /// orphaned files from storage. Returns what was reclaimed.
  RetentionReport RunRetentionService();

  /// Expires snapshots for one table (used right after compaction so the
  /// rewrite's input files actually leave the storage layer).
  /// `retention_override`, when set, replaces the policy's retention
  /// window for this run — passing 0 expires everything but the current
  /// snapshot, which is how the compaction data service reaps the files
  /// it just rewrote.
  Result<RetentionReport> RunRetentionFor(
      const std::string& qualified_name,
      std::optional<SimTime> retention_override = std::nullopt);

  /// \name Lane checkpoint (DESIGN.md §10): the policy registry is the
  /// control plane's only mutable state.
  /// @{
  void SaveState(common::BlobWriter* w) const {
    w->WriteU64(policies_.size());
    for (const auto& [name, p] : policies_) {
      w->WriteString(name);
      w->WriteI64(p.target_file_size_bytes);
      w->WriteI64(p.snapshot_retention);
      w->WriteBool(p.compaction_enabled);
      w->WriteBool(p.clustering_enabled);
      w->WriteF64(p.priority);
      w->WriteString(p.compaction_policy);
    }
  }
  void RestoreState(common::BlobReader* r) {
    policies_.clear();
    const uint64_t n = r->ReadU64();
    for (uint64_t i = 0; i < n; ++i) {
      std::string name = r->ReadString();
      TablePolicy p;
      p.target_file_size_bytes = r->ReadI64();
      p.snapshot_retention = r->ReadI64();
      p.compaction_enabled = r->ReadBool();
      p.clustering_enabled = r->ReadBool();
      p.priority = r->ReadF64();
      p.compaction_policy = r->ReadString();
      policies_.emplace(std::move(name), p);
    }
  }
  /// @}

 private:
  Catalog* catalog_;
  std::map<std::string, TablePolicy> policies_;
};

}  // namespace autocomp::catalog
