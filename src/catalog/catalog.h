/// \file catalog.h
/// \brief Catalog: databases, tables, and the atomic commit point.
///
/// Models the catalog role OpenHouse plays in the paper: it owns table
/// metadata pointers and swaps them atomically on commit (the CAS where
/// optimistic-concurrency conflicts surface), groups tables into
/// databases (one per tenant, each with an HDFS namespace quota — the
/// signal behind the production w1 weighting in §7), and exposes listing
/// APIs the AutoComp candidate generator walks.

#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <shared_mutex>
#include <string>
#include <vector>

#include "common/blob.h"
#include "common/clock.h"
#include "common/config.h"
#include "common/status.h"
#include "lst/commit_delta.h"
#include "lst/table.h"
#include "lst/table_metadata.h"
#include "storage/filesystem.h"

namespace autocomp::catalog {

/// \brief Commit-traffic counters (cluster-side conflicts in Table 1 are
/// failed compaction commits recorded here by the engine).
struct CatalogStats {
  int64_t commit_attempts = 0;
  int64_t commit_conflicts = 0;
  int64_t tables_created = 0;
  int64_t tables_dropped = 0;
};

/// \brief Per-table access telemetry the control plane surfaces to
/// AutoComp's workload-aware traits (§8 "Workload Awareness": align
/// layout optimization with query patterns and access frequency).
struct TableAccessStats {
  int64_t read_count = 0;
  SimTime last_read_at = 0;
};

/// \brief What a commit listener learns about one table mutation.
///
/// Carries everything an incremental consumer needs so that listeners
/// never have to call back into the catalog (they run outside the
/// catalog lock; a re-entrant LoadTable could also observe a *newer*
/// version than the one that triggered the event).
struct CommitEvent {
  /// Qualified "db.table" name.
  std::string table;
  /// The metadata version the commit installed; nullptr when the table
  /// was dropped.
  lst::TableMetadataPtr metadata;
  /// Exact live-set change, when the commit path produced one (only
  /// valid for the duration of the callback). nullptr for drops and for
  /// wholesale history edits (snapshot expiry, rollback) — consumers
  /// must then rebuild from `metadata`.
  const lst::CommitDelta* delta = nullptr;
};

/// \brief Catalog behaviour knobs.
struct CatalogOptions {
  /// Persist every committed metadata version (and its manifests) as
  /// storage objects under `<table>/metadata/` — the way real LSTs do.
  /// Those objects count against namespace quotas and are themselves a
  /// small-file source (§2 cause iv: "Iceberg introduces additional
  /// metadata for each table ... contributes to small file
  /// proliferation"). Off by default to keep the metadata-level
  /// simulation cheap; turn on to study the metadata footprint.
  bool persist_metadata = false;
  /// With persistence on, keep at most this many metadata.json versions
  /// per table (older ones are expired on commit).
  int64_t metadata_versions_retained = 3;
};

/// \brief In-memory catalog implementing the LST MetadataStore.
///
/// Databases map to storage directories ("/data/<db>") so that namespace
/// quotas set on the database directory cover all of its tables' files.
class Catalog final : public lst::MetadataStore {
 public:
  Catalog(const Clock* clock, storage::DistributedFileSystem* dfs,
          CatalogOptions options = {});

  /// Creates a database; `namespace_quota_objects` (0 = unlimited) is
  /// installed as the storage namespace quota for the database directory.
  Status CreateDatabase(const std::string& db,
                        int64_t namespace_quota_objects = 0);

  bool DatabaseExists(const std::string& db) const;
  std::vector<std::string> ListDatabases() const;

  /// Creates a table `db`.`table` with an empty snapshot history.
  Result<lst::Table> CreateTable(const std::string& db,
                                 const std::string& table, lst::Schema schema,
                                 lst::PartitionSpec spec,
                                 Config properties = {});

  Result<lst::Table> GetTable(const std::string& qualified_name);
  Status DropTable(const std::string& qualified_name);
  std::vector<std::string> ListTables(const std::string& db) const;
  /// All "db.table" names across all databases.
  std::vector<std::string> ListAllTables() const;

  /// Storage quota usage for a database's directory.
  storage::QuotaStatus DatabaseQuota(const std::string& db) const;

  /// Records one read of `qualified_name` (called by the query engine's
  /// scan path); feeds the workload-aware traits.
  void RecordTableRead(const std::string& qualified_name);
  TableAccessStats GetAccessStats(const std::string& qualified_name) const;

  /// \name Commit listeners
  /// Invoked with a CommitEvent after every successful metadata swap
  /// (CommitTable / CommitTableWithDelta) and on DropTable. Every commit
  /// path — lst::Transaction, snapshot expiry, the compaction runner —
  /// funnels through CommitTable, so a listener observes all table
  /// mutations. Listeners run OUTSIDE the catalog lock (so they may not
  /// assume LoadTable still returns event.metadata) and may therefore be
  /// invoked out of commit order under concurrent writers — consumers
  /// must order by event.metadata->version(). Consumers:
  /// core::CachingStatsCollector (eviction) and
  /// core::IncrementalStatsIndex (O(delta) aggregate maintenance).
  /// Listeners must not commit re-entrantly.
  /// @{
  using CommitListener = std::function<void(const CommitEvent& event)>;
  int64_t AddCommitListener(CommitListener listener);
  void RemoveCommitListener(int64_t id);
  /// @}

  /// Storage directory of a database ("/data/<db>").
  static std::string DatabaseLocation(const std::string& db);
  /// Storage directory of a table ("/data/<db>/<table>").
  static std::string TableLocation(const std::string& qualified_name);

  const CatalogStats& stats() const { return stats_; }
  storage::DistributedFileSystem* filesystem() { return dfs_; }
  const Clock* clock() const { return clock_; }
  const CatalogOptions& options() const { return options_; }

  /// \name Lane checkpoint (DESIGN.md §10)
  /// Serializes databases, table metadata lineages (binary codec, see
  /// lst/metadata_blob.h), access telemetry and commit counters. Commit
  /// listeners are NOT checkpointed: the fleet driver only evicts lanes
  /// without an attached service, and those lanes register none.
  /// @{
  void SaveState(common::BlobWriter* w) const;
  Status RestoreState(common::BlobReader* r);
  /// @}

  /// Installs (or clears, with nullptr) the fault injector. Transactions
  /// pick it up through MetadataStore::fault_injector() (commit-site
  /// faults), and the commit path arms fault::kSiteCatalogCommitEvent:
  /// kDropEvent suppresses the listener notification for one commit,
  /// kDuplicateEvent delivers it twice — exercising the at-least-once /
  /// at-most-once tolerance of incremental consumers.
  void SetFaultInjector(fault::FaultInjector* injector) { fault_ = injector; }

  /// Installs (or clears, with nullptr) the trace recorder. Transactions
  /// pick it up through MetadataStore::trace_recorder() and record their
  /// commit outcomes ("commit.success" / "commit.conflict") against it.
  void SetTraceRecorder(obs::TraceRecorder* trace) { trace_ = trace; }

  // MetadataStore:
  Result<lst::TableMetadataPtr> LoadTable(
      const std::string& name) const override;
  Status CommitTable(const std::string& name, int64_t base_version,
                     lst::TableMetadataPtr new_metadata) override;
  Status CommitTableWithDelta(const std::string& name, int64_t base_version,
                              lst::TableMetadataPtr new_metadata,
                              const lst::CommitDelta& delta) override;
  fault::FaultInjector* fault_injector() const override { return fault_; }
  obs::TraceRecorder* trace_recorder() const override { return trace_; }

 private:
  /// Writes (and prunes) the storage-side metadata footprint for a
  /// freshly committed version when persistence is enabled.
  void MaybePersistMetadata(const lst::TableMetadata& metadata);

  /// Copies the listener list under the lock and invokes each listener
  /// WITHOUT holding it — a listener doing non-trivial work (index
  /// rebuild) must not serialize unrelated catalog reads, and one that
  /// reads the catalog must not deadlock.
  void NotifyCommit(const CommitEvent& event) const;

  const Clock* clock_;
  storage::DistributedFileSystem* dfs_;
  CatalogOptions options_;
  fault::FaultInjector* fault_ = nullptr;
  obs::TraceRecorder* trace_ = nullptr;

  /// Guards all catalog maps and counters. Concurrent transaction
  /// commits, expiry and observe-phase reads all funnel through here;
  /// reads take shared ownership, mutations exclusive.
  mutable std::shared_mutex mu_;
  std::map<std::string, std::vector<std::string>> databases_;  // db -> tables
  std::map<std::string, lst::TableMetadataPtr> tables_;  // "db.table" -> meta
  std::map<std::string, TableAccessStats> access_;
  std::vector<std::pair<int64_t, CommitListener>> commit_listeners_;
  int64_t next_listener_id_ = 1;
  CatalogStats stats_;
};

/// \brief Splits "db.table" into its parts; InvalidArgument when malformed.
Result<std::pair<std::string, std::string>> SplitQualifiedName(
    const std::string& qualified_name);

}  // namespace autocomp::catalog
