#include "tuning/policy_search.h"

#include <algorithm>
#include <cmath>

#include "engine/compaction_runner.h"

namespace autocomp::tuning {

namespace {

int RoundClamp(double value, int hi) {
  const int rounded = static_cast<int>(std::lround(value));
  return std::clamp(rounded, 0, hi);
}

}  // namespace

std::vector<ParamSpec> PolicySpecCodec::Dims() {
  return {
      {"trigger", 0, 4, /*log_scale=*/false},
      {"granularity", 0, 2, /*log_scale=*/false},
      {"movement", 0, 2, /*log_scale=*/false},
      {"picker", 0, 3, /*log_scale=*/false},
  };
}

core::PolicySpec PolicySpecCodec::Decode(const ParamVector& params) {
  core::PolicySpec spec;
  if (params.size() >= 4) {
    spec.trigger = static_cast<core::TriggerAxis>(RoundClamp(params[0], 4));
    spec.granularity =
        static_cast<core::GranularityAxis>(RoundClamp(params[1], 2));
    spec.movement =
        static_cast<engine::RewriteMovement>(RoundClamp(params[2], 2));
    spec.picker = static_cast<core::PickerAxis>(RoundClamp(params[3], 3));
  }
  spec.trigger_param = core::DefaultTriggerParam(spec.trigger);
  spec.picker_param = core::DefaultPickerParam(spec.picker);
  // Constraint repair: the merge-pressure picker only makes sense with
  // the tiering-style movement it scores.
  if (spec.picker == core::PickerAxis::kOnlineMerge) {
    spec.movement = engine::RewriteMovement::kMerge;
  }
  return spec;
}

ParamVector PolicySpecCodec::Encode(const core::PolicySpec& spec) {
  return {static_cast<double>(static_cast<int>(spec.trigger)),
          static_cast<double>(static_cast<int>(spec.granularity)),
          static_cast<double>(static_cast<int>(spec.movement)),
          static_cast<double>(static_cast<int>(spec.picker))};
}

PolicyTuner::PolicyTuner(Optimizer* optimizer, ObjectiveFn objective)
    : optimizer_(optimizer), objective_(std::move(objective)) {}

Result<std::vector<PolicyTrial>> PolicyTuner::Run(int iterations) {
  for (int i = 0; i < iterations; ++i) {
    const ParamVector params = optimizer_->Suggest();
    const core::PolicySpec spec = PolicySpecCodec::Decode(params);
    const std::string key = spec.ToString();
    double objective = 0;
    const auto it = memo_.find(key);
    if (it != memo_.end()) {
      ++memo_hits_;
      objective = it->second;
    } else {
      AUTOCOMP_ASSIGN_OR_RETURN(objective, objective_(spec));
      memo_.emplace(key, objective);
    }
    optimizer_->Observe(params, objective);
    trials_.push_back({spec, objective});
  }
  return trials_;
}

Result<PolicyTrial> PolicyTuner::Best() const {
  if (trials_.empty()) {
    return Status::FailedPrecondition("no policy trials have run");
  }
  const auto best = std::min_element(
      trials_.begin(), trials_.end(),
      [](const PolicyTrial& a, const PolicyTrial& b) {
        return a.objective < b.objective;
      });
  return *best;
}

}  // namespace autocomp::tuning
