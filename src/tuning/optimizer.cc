#include "tuning/optimizer.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

namespace autocomp::tuning {

namespace {

double FromUnit(const ParamSpec& spec, double u) {
  u = std::clamp(u, 0.0, 1.0);
  if (spec.log_scale) {
    assert(spec.lo > 0 && spec.hi > spec.lo);
    const double lo = std::log10(spec.lo);
    const double hi = std::log10(spec.hi);
    return std::pow(10.0, lo + (hi - lo) * u);
  }
  return spec.lo + (spec.hi - spec.lo) * u;
}

}  // namespace

RandomSearchOptimizer::RandomSearchOptimizer(std::vector<ParamSpec> specs,
                                             uint64_t seed)
    : specs_(std::move(specs)), rng_(seed) {}

ParamVector RandomSearchOptimizer::Suggest() {
  ParamVector out;
  out.reserve(specs_.size());
  for (const ParamSpec& spec : specs_) {
    out.push_back(FromUnit(spec, rng_.NextDouble()));
  }
  return out;
}

void RandomSearchOptimizer::Observe(const ParamVector&, double) {}

CfoOptimizer::CfoOptimizer(std::vector<ParamSpec> specs, uint64_t seed)
    : specs_(std::move(specs)),
      rng_(seed),
      incumbent_(specs_.size(), 0.5),
      incumbent_objective_(std::numeric_limits<double>::infinity()),
      step_(0.25) {}

ParamVector CfoOptimizer::Denormalize(const std::vector<double>& unit) const {
  ParamVector out;
  out.reserve(specs_.size());
  for (size_t i = 0; i < specs_.size(); ++i) {
    out.push_back(FromUnit(specs_[i], unit[i]));
  }
  return out;
}

ParamVector CfoOptimizer::Suggest() {
  if (!has_incumbent_) {
    pending_ = incumbent_;
    return Denormalize(pending_);
  }
  // Random unit direction scaled by the current step.
  std::vector<double> direction(specs_.size());
  double norm = 0;
  for (double& d : direction) {
    d = rng_.Normal(0, 1);
    norm += d * d;
  }
  norm = std::sqrt(std::max(norm, 1e-12));
  pending_ = incumbent_;
  for (size_t i = 0; i < pending_.size(); ++i) {
    pending_[i] =
        std::clamp(pending_[i] + step_ * direction[i] / norm, 0.0, 1.0);
  }
  return Denormalize(pending_);
}

void CfoOptimizer::Observe(const ParamVector&, double objective) {
  if (!has_incumbent_) {
    has_incumbent_ = true;
    incumbent_objective_ = objective;
    return;
  }
  if (objective < incumbent_objective_) {
    incumbent_ = pending_;
    incumbent_objective_ = objective;
    step_ = std::min(0.5, step_ * 1.6);  // expand on success
  } else {
    step_ *= 0.6;  // contract on failure
    if (step_ < 0.01) {
      // Restart from a random point, keeping the best-known objective so
      // the new region must genuinely beat it.
      for (double& v : incumbent_) v = rng_.NextDouble();
      step_ = 0.25;
    }
  }
}

Tuner::Tuner(Optimizer* optimizer, ObjectiveFn objective)
    : optimizer_(optimizer), objective_(std::move(objective)) {
  assert(optimizer_ != nullptr);
}

Result<std::vector<Trial>> Tuner::Run(int iterations) {
  for (int i = 0; i < iterations; ++i) {
    const ParamVector params = optimizer_->Suggest();
    AUTOCOMP_ASSIGN_OR_RETURN(double objective, objective_(params));
    optimizer_->Observe(params, objective);
    trials_.push_back(Trial{params, objective});
  }
  return trials_;
}

Result<Trial> Tuner::Best() const {
  if (trials_.empty()) {
    return Status::FailedPrecondition("no trials run yet");
  }
  const Trial* best = &trials_.front();
  for (const Trial& t : trials_) {
    if (t.objective < best->objective) best = &t;
  }
  return *best;
}

}  // namespace autocomp::tuning
