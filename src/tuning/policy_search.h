/// \file policy_search.h
/// \brief §6.3 auto-tuning over the composable policy design space:
/// instead of scalar trigger knobs, the optimizer searches PolicySpec
/// *shapes* (core/policy.h).
///
/// The blackbox optimizers speak continuous ParamVectors, so the codec
/// maps the four discrete axes onto four numeric dimensions and decodes
/// any point back to the nearest *valid* spec (rounding + constraint
/// repair — e.g. a point that lands on picker=online-merge is repaired
/// to movement=merge, the only legal combination). Decode is total:
/// every point in the box maps to some valid spec, so the optimizer
/// never wastes a trial on an infeasible suggestion.

#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "core/policy.h"
#include "tuning/optimizer.h"

namespace autocomp::tuning {

/// \brief Maps PolicySpecs onto the optimizers' continuous box.
/// Dimensions (all linear): trigger kind [0,4], granularity [0,2],
/// movement [0,2], picker [0,3]. Axis parameters stay at their defaults
/// — the shape search; parameter refinement can follow with the scalar
/// tuner on the winning shape.
class PolicySpecCodec {
 public:
  /// The four dimensions, in codec order.
  static std::vector<ParamSpec> Dims();

  /// Rounds each dimension to the nearest enum value, clamps to range,
  /// and repairs constraint violations (online-merge forces merge
  /// movement). Total: always returns a spec that Validate()s.
  static core::PolicySpec Decode(const ParamVector& params);

  /// The codec point for `spec` (Decode(Encode(s)) == s for any valid
  /// spec whose parameters are the axis defaults).
  static ParamVector Encode(const core::PolicySpec& spec);
};

/// \brief One evaluated policy shape.
struct PolicyTrial {
  core::PolicySpec spec;
  double objective = 0;
};

/// \brief Runs a blackbox optimizer over policy shapes. Each suggest is
/// decoded to a valid spec, evaluated (objective minimized — e.g. GBHr,
/// read latency, or a scalarization of both), and observed back.
/// Decoding is many-to-one, so repeated shapes are served from a memo
/// instead of re-simulating.
class PolicyTuner {
 public:
  using ObjectiveFn = std::function<Result<double>(const core::PolicySpec&)>;

  PolicyTuner(Optimizer* optimizer, ObjectiveFn objective);

  /// Runs `iterations` suggest→decode→evaluate→observe cycles.
  Result<std::vector<PolicyTrial>> Run(int iterations);

  /// Best (lowest-objective) trial so far; FailedPrecondition when none.
  Result<PolicyTrial> Best() const;

  const std::vector<PolicyTrial>& trials() const { return trials_; }
  /// Trials served from the memo instead of a fresh evaluation.
  int64_t memo_hits() const { return memo_hits_; }

 private:
  Optimizer* optimizer_;
  ObjectiveFn objective_;
  std::vector<PolicyTrial> trials_;
  /// Canonical spec string -> objective (decode is many-to-one).
  std::map<std::string, double> memo_;
  int64_t memo_hits_ = 0;
};

}  // namespace autocomp::tuning
