/// \file optimizer.h
/// \brief Blackbox optimizers for compaction-trigger auto-tuning (§6.3).
///
/// The paper tunes trigger thresholds with the FLAML optimizer inside
/// MLOS. We provide random search and a CFO-style local search (FLAML's
/// core strategy: randomized directional steps with adaptive step size
/// and restarts), both deterministic under a fixed seed.

#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/status.h"

namespace autocomp::tuning {

/// \brief One tunable dimension.
struct ParamSpec {
  std::string name;
  double lo = 0;
  double hi = 1;
  /// Search in log10 space (thresholds spanning decades).
  bool log_scale = false;
};

/// \brief A parameter assignment, ordered like the spec list.
using ParamVector = std::vector<double>;

/// \brief Suggest/observe optimizer interface. Objectives are minimized.
class Optimizer {
 public:
  virtual ~Optimizer() = default;
  virtual std::string name() const = 0;
  virtual ParamVector Suggest() = 0;
  virtual void Observe(const ParamVector& params, double objective) = 0;
};

/// \brief Uniform random search within bounds.
class RandomSearchOptimizer final : public Optimizer {
 public:
  RandomSearchOptimizer(std::vector<ParamSpec> specs, uint64_t seed);
  std::string name() const override { return "random-search"; }
  ParamVector Suggest() override;
  void Observe(const ParamVector& params, double objective) override;

 private:
  std::vector<ParamSpec> specs_;
  Rng rng_;
};

/// \brief CFO-style local search: move the incumbent along random unit
/// directions; grow the step on improvement, shrink on failure, restart
/// from a random point when the step collapses.
class CfoOptimizer final : public Optimizer {
 public:
  CfoOptimizer(std::vector<ParamSpec> specs, uint64_t seed);
  std::string name() const override { return "cfo"; }
  ParamVector Suggest() override;
  void Observe(const ParamVector& params, double objective) override;

 private:
  /// Position in normalized [0,1]^d space.
  ParamVector Denormalize(const std::vector<double>& unit) const;

  std::vector<ParamSpec> specs_;
  Rng rng_;
  std::vector<double> incumbent_;   // normalized
  double incumbent_objective_;
  std::vector<double> pending_;     // normalized proposal awaiting Observe
  double step_;
  bool has_incumbent_ = false;
};

/// \brief One completed trial.
struct Trial {
  ParamVector params;
  double objective = 0;
};

/// \brief Runs an optimizer against an objective function.
class Tuner {
 public:
  using ObjectiveFn = std::function<Result<double>(const ParamVector&)>;

  Tuner(Optimizer* optimizer, ObjectiveFn objective);

  /// Runs `iterations` suggest→evaluate→observe cycles.
  Result<std::vector<Trial>> Run(int iterations);

  /// Best (lowest-objective) trial so far; FailedPrecondition when none.
  Result<Trial> Best() const;

  const std::vector<Trial>& trials() const { return trials_; }

 private:
  Optimizer* optimizer_;
  ObjectiveFn objective_;
  std::vector<Trial> trials_;
};

}  // namespace autocomp::tuning
