/// \file filesystem.h
/// \brief Federated distributed-filesystem facade over NameNode shards.
///
/// The paper notes that LinkedIn's HDFS deployment uses federation to
/// spread namespace load across NameNodes (§1, §7). The facade routes each
/// path to a shard via a mount table of path prefixes, mirroring
/// ViewFs-style federation, and aggregates fleet-wide statistics.

#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/clock.h"
#include "storage/namenode.h"

namespace autocomp::storage {

/// \brief Mount-table federated filesystem. With a single shard it behaves
/// as a plain HDFS cluster.
class DistributedFileSystem {
 public:
  /// Creates `num_shards` NameNodes; shard i owns mount prefix
  /// "/shard<i>" plus anything routed to it by AddMount. Paths that match
  /// no mount are routed by a stable hash of their first path component.
  DistributedFileSystem(const Clock* clock, int num_shards,
                        NameNodeOptions options = {});

  /// Routes all paths under `prefix` to shard `shard`.
  Status AddMount(const std::string& prefix, int shard);

  Status CreateFile(const std::string& path, int64_t size_bytes,
                    int64_t record_count);
  Status DeleteFile(const std::string& path);
  Result<FileInfo> Open(const std::string& path);
  Result<FileInfo> Stat(const std::string& path) const;
  bool Exists(const std::string& path) const;
  std::vector<FileInfo> ListFiles(const std::string& dir_prefix);

  void SetNamespaceQuota(const std::string& dir, int64_t max_objects);
  QuotaStatus GetQuota(const std::string& dir) const;

  /// Fleet-wide aggregation across shards.
  NameNodeStats AggregateStats() const;
  int64_t OpenCallsInHour(SimTime hour_start) const;
  /// RPCs issued during the hour starting at `hour_start`, summed across
  /// NameNode shards (epoch-barrier load tallies).
  int64_t RpcsInHour(SimTime hour_start) const;

  /// Installs (or clears, with nullptr) the epoch-barriered fleet load
  /// view on every NameNode shard (see NameNode::SetEpochLoadView).
  void SetEpochLoadView(const EpochLoadView* view);

  /// Installs (or clears, with nullptr) the fault injector on every
  /// NameNode shard (see NameNode::SetFaultInjector).
  void SetFaultInjector(fault::FaultInjector* injector);

  /// Installs (or clears, with nullptr) the trace recorder on every
  /// NameNode shard (see NameNode::SetTraceRecorder).
  void SetTraceRecorder(obs::TraceRecorder* trace);

  /// Runs NameNode::AuditAccounting on every shard; first failure wins.
  Status AuditAccounting() const;

  int num_shards() const { return static_cast<int>(shards_.size()); }
  NameNode& shard(int i) { return *shards_[static_cast<size_t>(i)]; }
  const NameNode& shard(int i) const { return *shards_[static_cast<size_t>(i)]; }

 private:
  int ShardFor(const std::string& path) const;

  std::vector<std::unique_ptr<NameNode>> shards_;
  std::vector<std::pair<std::string, int>> mounts_;  // longest-prefix wins
};

}  // namespace autocomp::storage
