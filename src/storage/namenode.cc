#include "storage/namenode.h"

#include <algorithm>
#include <cassert>

#include "common/counter_rng.h"
#include "fault/fault_injector.h"
#include "obs/trace.h"
#include "storage/epoch_load.h"

namespace autocomp::storage {

NameNode::NameNode(const Clock* clock, NameNodeOptions options)
    : clock_(clock), options_(options), rng_(options.seed) {
  assert(clock_ != nullptr);
}

std::vector<std::string> NameNode::ParentDirs(const std::string& path) {
  std::vector<std::string> dirs;
  size_t pos = 0;
  // "/a/b/c.parquet" -> "/a", "/a/b".
  while ((pos = path.find('/', pos + 1)) != std::string::npos) {
    dirs.push_back(path.substr(0, pos));
  }
  return dirs;
}

void NameNode::AddDirectoriesFor(const std::string& path) {
  for (const auto& dir : ParentDirs(path)) {
    auto [it, inserted] = dirs_.emplace(dir, 0);
    if (inserted) {
      ++stats_.total_objects;
      // New directory counts against every covering quota; files are
      // checked in CreateFile before insertion.
    }
    ++it->second;
  }
}

Status NameNode::CreateFile(const std::string& path, int64_t size_bytes,
                            int64_t record_count) {
  if (path.empty() || path.front() != '/') {
    return Status::InvalidArgument("path must be absolute: " + path);
  }
  if (size_bytes < 0 || record_count < 0) {
    return Status::InvalidArgument("negative size or record count");
  }
  if (files_.count(path) > 0) {
    return Status::AlreadyExists("file exists: " + path);
  }
  // Quota check: creating the file adds one object (plus any new parent
  // directories) under each covering quota root.
  const auto parents = ParentDirs(path);
  for (const auto& [quota_dir, max_objects] : quotas_) {
    if (max_objects <= 0) continue;
    const std::string prefix = quota_dir + "/";
    const bool covers = path.compare(0, prefix.size(), prefix) == 0;
    if (!covers) continue;
    int64_t new_objects = 1;  // the file itself
    for (const auto& dir : parents) {
      if (dir.size() > quota_dir.size() &&
          dir.compare(0, prefix.size(), prefix) == 0 &&
          dirs_.count(dir) == 0) {
        ++new_objects;
      }
    }
    const QuotaStatus q = GetQuota(quota_dir);
    if (q.used_objects + new_objects > max_objects) {
      if (trace_ != nullptr && trace_->enabled(obs::TraceLevel::kFull)) {
        trace_->Instant(obs::TraceLevel::kFull, obs::SpanCategory::kStorage,
                        "storage.quota_reject", clock_->Now(),
                        "path=" + path + ";quota=" + quota_dir);
      }
      return Status::ResourceExhausted(
          "namespace quota exceeded for " + quota_dir + " (" +
          std::to_string(q.used_objects) + "+" + std::to_string(new_objects) +
          " > " + std::to_string(max_objects) + ")");
    }
  }
  // Injected quota breach: the create is rejected even though the quota
  // arithmetic above admitted it (modelling stale quota caches and
  // admin-tightened quotas the paper's §7 pain points describe).
  if (fault_ != nullptr) {
    const fault::FaultKind kind = fault_->Arm(fault::kSiteStorageCreate, path);
    if (kind == fault::FaultKind::kQuotaExceeded) {
      return fault::FaultInjector::ToStatus(kind, fault::kSiteStorageCreate,
                                            path);
    }
  }
  AddDirectoriesFor(path);
  files_.emplace(path, FileInfo{path, size_bytes, record_count,
                                clock_->Now()});
  ++stats_.total_objects;
  ++stats_.file_count;
  ++stats_.create_calls;
  CountRpc();
  return Status::OK();
}

Status NameNode::DeleteFile(const std::string& path) {
  const auto it = files_.find(path);
  if (it == files_.end()) {
    return Status::NotFound("no such file: " + path);
  }
  files_.erase(it);
  --stats_.total_objects;
  --stats_.file_count;
  ++stats_.delete_calls;
  for (const auto& dir : ParentDirs(path)) {
    const auto dit = dirs_.find(dir);
    if (dit != dirs_.end() && dit->second > 0) --dit->second;
  }
  CountRpc();
  return Status::OK();
}

Result<FileInfo> NameNode::Open(const std::string& path) {
  ++stats_.open_calls;
  const SimTime hour = (clock_->Now() / kHour) * kHour;
  ++open_calls_by_hour_[hour];
  CountRpc();
  // Injected read timeout, on top of the organic load model. Counted in
  // stats().timeouts so callers' retry paths see one failure mode.
  if (fault_ != nullptr &&
      fault_->Arm(fault::kSiteStorageOpen, path) == fault::FaultKind::kTimeout) {
    ++stats_.timeouts;
    if (trace_ != nullptr && trace_->enabled(obs::TraceLevel::kFull)) {
      trace_->Instant(obs::TraceLevel::kFull, obs::SpanCategory::kStorage,
                      "storage.open_timeout", clock_->Now(),
                      "path=" + path + ";injected=1");
    }
    return fault::FaultInjector::ToStatus(fault::FaultKind::kTimeout,
                                          fault::kSiteStorageOpen, path);
  }
  const double p_timeout = CurrentTimeoutProbability();
  bool timed_out = false;
  if (p_timeout > 0.0) {
    if (epoch_load_ != nullptr) {
      // Counter-based draw: a pure function of (seed, path, open index),
      // so the outcome cannot depend on draws made for other tables.
      timed_out = CounterRng::Uniform01(
                      options_.seed, CounterRng::HashString(path),
                      static_cast<uint64_t>(stats_.open_calls)) < p_timeout;
    } else {
      timed_out = rng_.Bernoulli(p_timeout);
    }
  }
  if (timed_out) {
    ++stats_.timeouts;
    if (trace_ != nullptr && trace_->enabled(obs::TraceLevel::kFull)) {
      trace_->Instant(obs::TraceLevel::kFull, obs::SpanCategory::kStorage,
                      "storage.open_timeout", clock_->Now(),
                      "path=" + path + ";injected=0", p_timeout);
    }
    return Status::TimedOut("read timeout under NameNode RPC pressure: " +
                            path);
  }
  const auto it = files_.find(path);
  if (it == files_.end()) {
    return Status::NotFound("no such file: " + path);
  }
  return it->second;
}

Result<FileInfo> NameNode::Stat(const std::string& path) const {
  const auto it = files_.find(path);
  if (it == files_.end()) {
    return Status::NotFound("no such file: " + path);
  }
  return it->second;
}

bool NameNode::Exists(const std::string& path) const {
  return files_.count(path) > 0;
}

void NameNode::ForEachFile(
    const std::function<void(const FileInfo&)>& fn) const {
  for (const auto& [path, info] : files_) fn(info);
}

Status NameNode::AuditAccounting() const {
  if (stats_.file_count != static_cast<int64_t>(files_.size())) {
    return Status::Internal(
        "file_count counter " + std::to_string(stats_.file_count) +
        " != actual " + std::to_string(files_.size()));
  }
  if (stats_.total_objects !=
      static_cast<int64_t>(files_.size() + dirs_.size())) {
    return Status::Internal(
        "total_objects counter " + std::to_string(stats_.total_objects) +
        " != actual " + std::to_string(files_.size() + dirs_.size()));
  }
  // Recount per-directory contained files from scratch.
  std::map<std::string, int64_t> recount;
  for (const auto& [dir, count] : dirs_) recount.emplace(dir, 0);
  for (const auto& [path, info] : files_) {
    for (const auto& dir : ParentDirs(path)) {
      const auto it = recount.find(dir);
      if (it == recount.end()) {
        return Status::Internal("untracked parent directory " + dir +
                                " of file " + path);
      }
      ++it->second;
    }
  }
  for (const auto& [dir, count] : dirs_) {
    const int64_t actual = recount[dir];
    if (count != actual) {
      return Status::Internal("directory " + dir + " tally " +
                              std::to_string(count) + " != recount " +
                              std::to_string(actual));
    }
  }
  return Status::OK();
}

std::vector<FileInfo> NameNode::ListFiles(const std::string& dir_prefix) {
  std::vector<FileInfo> out;
  const std::string prefix = dir_prefix + "/";
  for (auto it = files_.lower_bound(prefix);
       it != files_.end() && it->first.compare(0, prefix.size(), prefix) == 0;
       ++it) {
    out.push_back(it->second);
  }
  ++stats_.list_calls;
  CountRpc(1 + static_cast<int64_t>(out.size()) / 1000);
  return out;
}

void NameNode::SetNamespaceQuota(const std::string& dir, int64_t max_objects) {
  if (max_objects <= 0) {
    quotas_.erase(dir);
  } else {
    quotas_[dir] = max_objects;
  }
}

QuotaStatus NameNode::GetQuota(const std::string& dir) const {
  QuotaStatus q;
  const auto quota_it = quotas_.find(dir);
  q.total_objects = quota_it == quotas_.end() ? 0 : quota_it->second;
  const std::string prefix = dir + "/";
  for (auto it = files_.lower_bound(prefix);
       it != files_.end() && it->first.compare(0, prefix.size(), prefix) == 0;
       ++it) {
    ++q.used_objects;
  }
  for (auto it = dirs_.lower_bound(prefix);
       it != dirs_.end() && it->first.compare(0, prefix.size(), prefix) == 0;
       ++it) {
    ++q.used_objects;
  }
  return q;
}

int64_t NameNode::OpenCallsInHour(SimTime hour_start) const {
  const auto it = open_calls_by_hour_.find((hour_start / kHour) * kHour);
  return it == open_calls_by_hour_.end() ? 0 : it->second;
}

int64_t NameNode::RpcsThisHour() const {
  return RpcsInHour(clock_->Now());
}

int64_t NameNode::RpcsInHour(SimTime hour_start) const {
  const auto it = rpcs_by_hour_.find((hour_start / kHour) * kHour);
  return it == rpcs_by_hour_.end() ? 0 : it->second;
}

double NameNode::CurrentTimeoutProbability() const {
  if (epoch_load_ != nullptr) {
    return epoch_load_->TimeoutProbabilityAt(clock_->Now());
  }
  return TimeoutProbabilityForLoad(options_,
                                   static_cast<double>(RpcsThisHour()));
}

void NameNode::CountRpc(int64_t n) {
  const SimTime hour = (clock_->Now() / kHour) * kHour;
  rpcs_by_hour_[hour] += n;
}

}  // namespace autocomp::storage
