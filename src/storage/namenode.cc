#include "storage/namenode.h"

#include <algorithm>
#include <cassert>

#include "common/counter_rng.h"
#include "fault/fault_injector.h"
#include "obs/trace.h"
#include "storage/epoch_load.h"

namespace autocomp::storage {

NameNode::NameNode(const Clock* clock, NameNodeOptions options)
    : clock_(clock), options_(options), rng_(options.seed) {
  assert(clock_ != nullptr);
}

std::vector<std::string> NameNode::ParentDirs(const std::string& path) {
  std::vector<std::string> dirs;
  size_t pos = 0;
  // "/a/b/c.parquet" -> "/a", "/a/b".
  while ((pos = path.find('/', pos + 1)) != std::string::npos) {
    dirs.push_back(path.substr(0, pos));
  }
  return dirs;
}

common::StringInterner::Id NameNode::InternDir(std::string_view dir) {
  const common::StringInterner::Id known = dir_ids_.Lookup(dir);
  if (known != common::StringInterner::kInvalidId) return known;
  // Intern the ancestry first so the parent link can be recorded. The
  // recursion depth is the path depth (a handful of levels).
  common::StringInterner::Id parent = common::StringInterner::kInvalidId;
  const size_t slash = dir.rfind('/');
  if (slash != std::string_view::npos && slash > 0) {
    parent = InternDir(dir.substr(0, slash));
  }
  const common::StringInterner::Id id = dir_ids_.Intern(dir);
  if (static_cast<size_t>(id) >= dir_meta_.size()) {
    dir_meta_.resize(static_cast<size_t>(id) + 1);
  }
  dir_meta_[static_cast<size_t>(id)].parent = parent;
  return id;
}

void NameNode::ParentChain(std::string_view path,
                           std::vector<common::StringInterner::Id>* chain) {
  chain->clear();
  const size_t slash = path.rfind('/');
  if (slash == std::string_view::npos || slash == 0) return;  // "/f" case
  // One string lookup for the deepest parent; ancestors follow the
  // integer parent links (deepest first).
  for (common::StringInterner::Id id = InternDir(path.substr(0, slash));
       id != common::StringInterner::kInvalidId;
       id = dir_meta_[static_cast<size_t>(id)].parent) {
    chain->push_back(id);
  }
}

Status NameNode::CreateFile(const std::string& path, int64_t size_bytes,
                            int64_t record_count) {
  if (path.empty() || path.front() != '/') {
    return Status::InvalidArgument("path must be absolute: " + path);
  }
  if (size_bytes < 0 || record_count < 0) {
    return Status::InvalidArgument("negative size or record count");
  }
  const auto hint = files_.lower_bound(path);
  if (hint != files_.end() && hint->first == path) {
    return Status::AlreadyExists("file exists: " + path);
  }
  ParentChain(path, &chain_scratch_);
  const auto& chain = chain_scratch_;  // parent dirs, deepest first
  // Quota check: creating the file adds one object (plus any new parent
  // directories) under each covering quota root. Every covering quota
  // root lies on the parent chain, and the maintained subtree tallies
  // replace the seed's per-create prefix scan over the whole namespace.
  // Roots are visited shallowest-first — the lexicographic order the
  // seed's quota-map iteration produced for nested roots — so the
  // rejection (and its trace instant) names the same quota on ties.
  if (active_quota_count_ > 0) {
    for (size_t i = chain.size(); i-- > 0;) {
      const DirEntry& entry = dir_meta_[static_cast<size_t>(chain[i])];
      if (entry.quota <= 0) continue;
      int64_t new_objects = 1;  // the file itself
      for (size_t j = 0; j < i; ++j) {  // chain dirs strictly below root
        if (!dir_meta_[static_cast<size_t>(chain[j])].exists) ++new_objects;
      }
      const int64_t used = entry.file_count + entry.dir_count;
      if (used + new_objects > entry.quota) {
        const std::string& quota_dir = dir_ids_.NameOf(chain[i]);
        if (trace_ != nullptr && trace_->enabled(obs::TraceLevel::kFull)) {
          trace_->Instant(obs::TraceLevel::kFull, obs::SpanCategory::kStorage,
                          "storage.quota_reject", clock_->Now(),
                          "path=" + path + ";quota=" + quota_dir);
        }
        return Status::ResourceExhausted(
            "namespace quota exceeded for " + quota_dir + " (" +
            std::to_string(used) + "+" + std::to_string(new_objects) + " > " +
            std::to_string(entry.quota) + ")");
      }
    }
  }
  // Injected quota breach: the create is rejected even though the quota
  // arithmetic above admitted it (modelling stale quota caches and
  // admin-tightened quotas the paper's §7 pain points describe).
  if (fault_ != nullptr) {
    const fault::FaultKind kind = fault_->Arm(fault::kSiteStorageCreate, path);
    if (kind == fault::FaultKind::kQuotaExceeded) {
      return fault::FaultInjector::ToStatus(kind, fault::kSiteStorageCreate,
                                            path);
    }
  }
  // Materialize new directories (shallowest first so each new dir bumps
  // the dir_count of the ancestors above it) and count the file into
  // every subtree on the chain.
  for (size_t i = chain.size(); i-- > 0;) {
    DirEntry& entry = dir_meta_[static_cast<size_t>(chain[i])];
    if (!entry.exists) {
      entry.exists = true;
      ++existing_dir_count_;
      ++stats_.total_objects;
      for (size_t j = i + 1; j < chain.size(); ++j) {
        ++dir_meta_[static_cast<size_t>(chain[j])].dir_count;
      }
    }
    ++entry.file_count;
  }
  files_.emplace_hint(hint, path,
                      FileInfo{path, size_bytes, record_count, clock_->Now()});
  ++stats_.total_objects;
  ++stats_.file_count;
  ++stats_.create_calls;
  CountRpc();
  return Status::OK();
}

Status NameNode::DeleteFile(const std::string& path) {
  const auto it = files_.find(path);
  if (it == files_.end()) {
    return Status::NotFound("no such file: " + path);
  }
  files_.erase(it);
  --stats_.total_objects;
  --stats_.file_count;
  ++stats_.delete_calls;
  ParentChain(path, &chain_scratch_);
  for (const common::StringInterner::Id id : chain_scratch_) {
    DirEntry& entry = dir_meta_[static_cast<size_t>(id)];
    if (entry.file_count > 0) --entry.file_count;
  }
  CountRpc();
  return Status::OK();
}

Result<FileInfo> NameNode::Open(const std::string& path) {
  ++stats_.open_calls;
  const SimTime hour = (clock_->Now() / kHour) * kHour;
  if (hour != open_hour_) {
    open_hour_ = hour;
    open_slot_ = &open_calls_by_hour_[hour];
  }
  ++*open_slot_;
  CountRpc();
  // Injected read timeout, on top of the organic load model. Counted in
  // stats().timeouts so callers' retry paths see one failure mode.
  if (fault_ != nullptr &&
      fault_->Arm(fault::kSiteStorageOpen, path) == fault::FaultKind::kTimeout) {
    ++stats_.timeouts;
    if (trace_ != nullptr && trace_->enabled(obs::TraceLevel::kFull)) {
      trace_->Instant(obs::TraceLevel::kFull, obs::SpanCategory::kStorage,
                      "storage.open_timeout", clock_->Now(),
                      "path=" + path + ";injected=1");
    }
    return fault::FaultInjector::ToStatus(fault::FaultKind::kTimeout,
                                          fault::kSiteStorageOpen, path);
  }
  const double p_timeout = CurrentTimeoutProbability();
  bool timed_out = false;
  if (p_timeout > 0.0) {
    if (epoch_load_ != nullptr) {
      // Counter-based draw: a pure function of (seed, path, open index),
      // so the outcome cannot depend on draws made for other tables.
      timed_out = CounterRng::Uniform01(
                      options_.seed, CounterRng::HashString(path),
                      static_cast<uint64_t>(stats_.open_calls)) < p_timeout;
    } else {
      timed_out = rng_.Bernoulli(p_timeout);
    }
  }
  if (timed_out) {
    ++stats_.timeouts;
    if (trace_ != nullptr && trace_->enabled(obs::TraceLevel::kFull)) {
      trace_->Instant(obs::TraceLevel::kFull, obs::SpanCategory::kStorage,
                      "storage.open_timeout", clock_->Now(),
                      "path=" + path + ";injected=0", p_timeout);
    }
    return Status::TimedOut("read timeout under NameNode RPC pressure: " +
                            path);
  }
  const auto it = files_.find(path);
  if (it == files_.end()) {
    return Status::NotFound("no such file: " + path);
  }
  return it->second;
}

Result<FileInfo> NameNode::Stat(const std::string& path) const {
  const auto it = files_.find(path);
  if (it == files_.end()) {
    return Status::NotFound("no such file: " + path);
  }
  return it->second;
}

bool NameNode::Exists(const std::string& path) const {
  return files_.count(path) > 0;
}

void NameNode::ForEachFile(
    const std::function<void(const FileInfo&)>& fn) const {
  for (const auto& [path, info] : files_) fn(info);
}

Status NameNode::AuditAccounting() const {
  if (stats_.file_count != static_cast<int64_t>(files_.size())) {
    return Status::Internal(
        "file_count counter " + std::to_string(stats_.file_count) +
        " != actual " + std::to_string(files_.size()));
  }
  if (stats_.total_objects !=
      static_cast<int64_t>(files_.size()) + existing_dir_count_) {
    return Status::Internal(
        "total_objects counter " + std::to_string(stats_.total_objects) +
        " != actual " +
        std::to_string(static_cast<int64_t>(files_.size()) +
                       existing_dir_count_));
  }
  // Recount the maintained subtree tallies from scratch — per-directory
  // contained files via string prefixes (deliberately not the parent
  // links, so the audit cross-checks the id plumbing itself) and
  // contained dirs via the parent links of every existing directory.
  std::vector<int64_t> file_recount(dir_meta_.size(), 0);
  std::vector<int64_t> dir_recount(dir_meta_.size(), 0);
  for (const auto& [path, info] : files_) {
    for (const auto& dir : ParentDirs(path)) {
      const auto id = dir_ids_.Lookup(dir);
      if (id == common::StringInterner::kInvalidId ||
          !dir_meta_[static_cast<size_t>(id)].exists) {
        return Status::Internal("untracked parent directory " + dir +
                                " of file " + path);
      }
      ++file_recount[static_cast<size_t>(id)];
    }
  }
  int64_t existing = 0;
  for (size_t id = 0; id < dir_meta_.size(); ++id) {
    if (!dir_meta_[id].exists) continue;
    ++existing;
    for (auto p = dir_meta_[id].parent;
         p != common::StringInterner::kInvalidId;
         p = dir_meta_[static_cast<size_t>(p)].parent) {
      ++dir_recount[static_cast<size_t>(p)];
    }
  }
  if (existing != existing_dir_count_) {
    return Status::Internal("existing_dir_count " +
                            std::to_string(existing_dir_count_) +
                            " != recount " + std::to_string(existing));
  }
  for (size_t id = 0; id < dir_meta_.size(); ++id) {
    const DirEntry& entry = dir_meta_[id];
    if (entry.file_count != file_recount[id]) {
      return Status::Internal(
          "directory " + dir_ids_.NameOf(static_cast<int32_t>(id)) +
          " tally " + std::to_string(entry.file_count) + " != recount " +
          std::to_string(file_recount[id]));
    }
    if (entry.dir_count != dir_recount[id]) {
      return Status::Internal(
          "directory " + dir_ids_.NameOf(static_cast<int32_t>(id)) +
          " dir tally " + std::to_string(entry.dir_count) + " != recount " +
          std::to_string(dir_recount[id]));
    }
  }
  return Status::OK();
}

std::vector<FileInfo> NameNode::ListFiles(const std::string& dir_prefix) {
  std::vector<FileInfo> out;
  const std::string prefix = dir_prefix + "/";
  for (auto it = files_.lower_bound(prefix);
       it != files_.end() && it->first.compare(0, prefix.size(), prefix) == 0;
       ++it) {
    out.push_back(it->second);
  }
  ++stats_.list_calls;
  CountRpc(1 + static_cast<int64_t>(out.size()) / 1000);
  return out;
}

void NameNode::SetNamespaceQuota(const std::string& dir, int64_t max_objects) {
  const common::StringInterner::Id id = InternDir(dir);
  DirEntry& entry = dir_meta_[static_cast<size_t>(id)];
  const int64_t quota = max_objects <= 0 ? 0 : max_objects;
  if (entry.quota > 0 && quota == 0) --active_quota_count_;
  if (entry.quota == 0 && quota > 0) ++active_quota_count_;
  entry.quota = quota;
}

QuotaStatus NameNode::GetQuota(const std::string& dir) const {
  QuotaStatus q;
  const common::StringInterner::Id id = dir_ids_.Lookup(dir);
  if (id == common::StringInterner::kInvalidId) return q;
  const DirEntry& entry = dir_meta_[static_cast<size_t>(id)];
  q.total_objects = entry.quota;
  q.used_objects = entry.file_count + entry.dir_count;
  return q;
}

int64_t NameNode::OpenCallsInHour(SimTime hour_start) const {
  const auto it = open_calls_by_hour_.find((hour_start / kHour) * kHour);
  return it == open_calls_by_hour_.end() ? 0 : it->second;
}

int64_t NameNode::RpcsThisHour() const {
  return RpcsInHour(clock_->Now());
}

int64_t NameNode::RpcsInHour(SimTime hour_start) const {
  const auto it = rpcs_by_hour_.find((hour_start / kHour) * kHour);
  return it == rpcs_by_hour_.end() ? 0 : it->second;
}

double NameNode::CurrentTimeoutProbability() const {
  if (epoch_load_ != nullptr) {
    return epoch_load_->TimeoutProbabilityAt(clock_->Now());
  }
  return TimeoutProbabilityForLoad(options_,
                                   static_cast<double>(RpcsThisHour()));
}

void NameNode::CountRpc(int64_t n) {
  const SimTime hour = (clock_->Now() / kHour) * kHour;
  if (hour != rpc_hour_) {
    rpc_hour_ = hour;
    rpc_slot_ = &rpcs_by_hour_[hour];
  }
  *rpc_slot_ += n;
}

void NameNode::SaveState(common::BlobWriter* w) const {
  const Rng::State rng = rng_.SaveState();
  for (uint64_t v : rng.state) w->WriteU64(v);
  w->WriteU64(rng.origin_seed);
  w->WriteBool(rng.have_cached_normal);
  w->WriteF64(rng.cached_normal);

  w->WriteU64(files_.size());
  for (const auto& [path, info] : files_) {
    // info.path == map key; stored once.
    w->WriteString(path);
    w->WriteI64(info.size_bytes);
    w->WriteI64(info.record_count);
    w->WriteI64(info.created_at);
  }

  // Directory interner + per-directory accounting, in id order so the
  // restore re-interns into identical ids (NFR2: NameLess tie-breaks and
  // parent links survive byte for byte).
  const int64_t dir_count = dir_ids_.size();
  w->WriteI64(dir_count);
  for (int64_t id = 0; id < dir_count; ++id) {
    w->WriteString(dir_ids_.NameOf(static_cast<common::StringInterner::Id>(id)));
  }
  w->WriteU64(dir_meta_.size());
  for (const DirEntry& e : dir_meta_) {
    w->WriteI32(e.parent);
    w->WriteBool(e.exists);
    w->WriteI64(e.file_count);
    w->WriteI64(e.dir_count);
    w->WriteI64(e.quota);
  }
  w->WriteI64(existing_dir_count_);
  w->WriteI64(active_quota_count_);

  w->WriteI64(stats_.total_objects);
  w->WriteI64(stats_.file_count);
  w->WriteI64(stats_.open_calls);
  w->WriteI64(stats_.create_calls);
  w->WriteI64(stats_.delete_calls);
  w->WriteI64(stats_.list_calls);
  w->WriteI64(stats_.timeouts);

  w->WriteU64(open_calls_by_hour_.size());
  for (const auto& [hour, n] : open_calls_by_hour_) {
    w->WriteI64(hour);
    w->WriteI64(n);
  }
  w->WriteU64(rpcs_by_hour_.size());
  for (const auto& [hour, n] : rpcs_by_hour_) {
    w->WriteI64(hour);
    w->WriteI64(n);
  }
}

Status NameNode::RestoreState(common::BlobReader* r) {
  if (dir_ids_.size() != 0 || !files_.empty()) {
    return Status::Internal("NameNode::RestoreState requires a fresh node");
  }
  Rng::State rng;
  for (uint64_t& v : rng.state) v = r->ReadU64();
  rng.origin_seed = r->ReadU64();
  rng.have_cached_normal = r->ReadBool();
  rng.cached_normal = r->ReadF64();
  rng_.RestoreState(rng);

  const uint64_t file_count = r->ReadU64();
  for (uint64_t i = 0; i < file_count; ++i) {
    FileInfo info;
    info.path = r->ReadString();
    info.size_bytes = r->ReadI64();
    info.record_count = r->ReadI64();
    info.created_at = r->ReadI64();
    std::string key = info.path;
    files_.emplace(std::move(key), std::move(info));
  }

  const int64_t dir_count = r->ReadI64();
  for (int64_t id = 0; id < dir_count; ++id) {
    const common::StringInterner::Id got = dir_ids_.Intern(r->ReadString());
    if (got != static_cast<common::StringInterner::Id>(id)) {
      return Status::Internal("NameNode checkpoint: interner id mismatch");
    }
  }
  dir_meta_.resize(r->ReadU64());
  for (DirEntry& e : dir_meta_) {
    e.parent = r->ReadI32();
    e.exists = r->ReadBool();
    e.file_count = r->ReadI64();
    e.dir_count = r->ReadI64();
    e.quota = r->ReadI64();
  }
  existing_dir_count_ = r->ReadI64();
  active_quota_count_ = r->ReadI64();

  stats_.total_objects = r->ReadI64();
  stats_.file_count = r->ReadI64();
  stats_.open_calls = r->ReadI64();
  stats_.create_calls = r->ReadI64();
  stats_.delete_calls = r->ReadI64();
  stats_.list_calls = r->ReadI64();
  stats_.timeouts = r->ReadI64();

  const uint64_t open_hours = r->ReadU64();
  for (uint64_t i = 0; i < open_hours; ++i) {
    const SimTime hour = r->ReadI64();
    open_calls_by_hour_[hour] = r->ReadI64();
  }
  const uint64_t rpc_hours = r->ReadU64();
  for (uint64_t i = 0; i < rpc_hours; ++i) {
    const SimTime hour = r->ReadI64();
    rpcs_by_hour_[hour] = r->ReadI64();
  }
  // Invalidate the per-hour slot caches: they point into the old maps.
  rpc_hour_ = -1;
  rpc_slot_ = nullptr;
  open_hour_ = -1;
  open_slot_ = nullptr;
  if (!r->ok()) return Status::Internal("truncated NameNode checkpoint");
  return Status::OK();
}

}  // namespace autocomp::storage
