#include "storage/epoch_load.h"

#include <algorithm>

namespace autocomp::storage {

double TimeoutProbabilityForLoad(const NameNodeOptions& options, double load) {
  const double capacity =
      static_cast<double>(options.rpc_capacity_per_hour) *
      (1.0 + std::max(0, options.observer_namenodes));
  if (capacity <= 0) return 0.0;
  if (load <= capacity) return 0.0;
  const double overload_span = capacity * (options.overload_factor - 1.0);
  if (overload_span <= 0) return options.max_timeout_probability;
  const double excess = load - capacity;
  return std::min(options.max_timeout_probability,
                  options.max_timeout_probability * excess / overload_span);
}

void EpochLoadModel::PublishHour(SimTime hour_start, int64_t fleet_rpcs) {
  load_by_hour_[(hour_start / kHour) * kHour] = fleet_rpcs;
}

void EpochLoadModel::AddDelta(SimTime hour_start, int64_t delta) {
  if (delta == 0) return;
  pending_deltas_[(hour_start / kHour) * kHour] += delta;
}

void EpochLoadModel::PublishAccumulated(SimTime hour_start, int64_t extra) {
  const SimTime hour = (hour_start / kHour) * kHour;
  int64_t total = extra;
  if (const auto it = pending_deltas_.find(hour);
      it != pending_deltas_.end()) {
    total += it->second;
    pending_deltas_.erase(it);
  }
  load_by_hour_[hour] = total;
}

int64_t EpochLoadModel::LoadAt(SimTime now) const {
  const SimTime hour = (now / kHour) * kHour;
  // Newest published hour strictly before the current one; barriers only
  // publish completed hours, so this is exactly the epoch-start view.
  auto it = load_by_hour_.lower_bound(hour);
  if (it == load_by_hour_.begin()) return 0;
  return std::prev(it)->second;
}

double EpochLoadModel::TimeoutProbabilityAt(SimTime now) const {
  return TimeoutProbabilityForLoad(options_,
                                   static_cast<double>(LoadAt(now)));
}

}  // namespace autocomp::storage
