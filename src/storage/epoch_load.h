/// \file epoch_load.h
/// \brief Epoch-barriered NameNode load model for shard-parallel replay.
///
/// The sequential simulator computes the read-timeout probability from
/// the RPCs accumulated *so far this hour*, which makes every open()
/// depend on the global order of all preceding events — fine for one
/// thread, fatal for shard-parallelism. The epoch model breaks that
/// dependency: the fleet's per-shard RPC tallies are merged at hour-
/// bucket barriers, and during an epoch every shard computes the timeout
/// probability from the load that was already published when the epoch
/// started (the last fully completed hour). Within an epoch the
/// probability is therefore a constant, so timeout draws are independent
/// of the interleaving of shards — and of the shard count itself.
///
/// Physically this models NameNode congestion as a signal sampled at the
/// RPC-metrics cadence (hourly, like Figure 11b's open() buckets): the
/// pressure a read experiences reflects the herd of the previous bucket,
/// not the requests racing it inside the current one.

#pragma once

#include <cstdint>
#include <map>

#include "common/units.h"
#include "storage/namenode.h"

namespace autocomp::storage {

/// \brief Read-only view a NameNode consults for the fleet-wide timeout
/// probability. Published entries are immutable; the coordinator mutates
/// the model only at epoch barriers (never concurrently with readers).
class EpochLoadView {
 public:
  virtual ~EpochLoadView() = default;

  /// Timeout probability for an open() issued at `now`, derived from the
  /// newest load published for an hour strictly before `now`'s hour.
  virtual double TimeoutProbabilityAt(SimTime now) const = 0;
};

/// \brief Timeout probability for an absolute fleet RPC load, using the
/// same linear ramp as NameNode::CurrentTimeoutProbability: 0 up to
/// capacity, rising to max_timeout_probability at overload_factor ×
/// capacity. Shared by the local (sequential) and epoch (sharded) paths.
double TimeoutProbabilityForLoad(const NameNodeOptions& options, double load);

/// \brief Concrete epoch model: hour-bucket fleet RPC tallies published
/// at barriers by the shard coordinator.
class EpochLoadModel final : public EpochLoadView {
 public:
  explicit EpochLoadModel(NameNodeOptions options) : options_(options) {}

  /// Publishes the fleet-wide RPC total observed during the completed
  /// hour starting at `hour_start`. Must not race TimeoutProbabilityAt —
  /// call only from the barrier, between parallel sections.
  void PublishHour(SimTime hour_start, int64_t fleet_rpcs);

  /// O(changed) barrier protocol: lanes that were touched this epoch add
  /// their tally *deltas* here (possibly for the following hour too —
  /// work finalizing exactly at the epoch boundary lands in the next
  /// bucket), and the coordinator seals each hour with PublishAccumulated
  /// instead of re-summing every lane. AddDelta tolerates out-of-order
  /// hours; PublishAccumulated folds whatever accumulated for that hour
  /// (plus `extra`, the planned contribution of still-unhydrated lanes)
  /// into the published series. Same single-threaded barrier contract as
  /// PublishHour.
  void AddDelta(SimTime hour_start, int64_t delta);
  void PublishAccumulated(SimTime hour_start, int64_t extra = 0);

  /// Fleet RPC load the epoch containing `now` started with: the tally
  /// of the newest published hour before `now`'s hour (0 if none).
  int64_t LoadAt(SimTime now) const;

  double TimeoutProbabilityAt(SimTime now) const override;

  const NameNodeOptions& options() const { return options_; }

 private:
  NameNodeOptions options_;
  std::map<SimTime, int64_t> load_by_hour_;
  /// Deltas accumulated for not-yet-sealed hours (AddDelta), consumed by
  /// PublishAccumulated. Small: the current hour plus boundary spillover.
  std::map<SimTime, int64_t> pending_deltas_;
};

}  // namespace autocomp::storage
