#include "storage/filesystem.h"

#include <algorithm>
#include <cassert>
#include <functional>

namespace autocomp::storage {

DistributedFileSystem::DistributedFileSystem(const Clock* clock,
                                             int num_shards,
                                             NameNodeOptions options) {
  assert(num_shards >= 1);
  shards_.reserve(static_cast<size_t>(num_shards));
  for (int i = 0; i < num_shards; ++i) {
    NameNodeOptions shard_options = options;
    shard_options.seed = options.seed + static_cast<uint64_t>(i) * 7919;
    shards_.push_back(std::make_unique<NameNode>(clock, shard_options));
  }
}

Status DistributedFileSystem::AddMount(const std::string& prefix, int shard) {
  if (shard < 0 || shard >= num_shards()) {
    return Status::InvalidArgument("shard out of range: " +
                                   std::to_string(shard));
  }
  if (prefix.empty() || prefix.front() != '/') {
    return Status::InvalidArgument("mount prefix must be absolute");
  }
  mounts_.emplace_back(prefix, shard);
  // Longest-prefix-first ordering makes ShardFor a linear scan that stops
  // at the first (most specific) match.
  std::sort(mounts_.begin(), mounts_.end(),
            [](const auto& a, const auto& b) {
              return a.first.size() > b.first.size();
            });
  return Status::OK();
}

int DistributedFileSystem::ShardFor(const std::string& path) const {
  for (const auto& [prefix, shard] : mounts_) {
    if (path.compare(0, prefix.size(), prefix) == 0 &&
        (path.size() == prefix.size() || path[prefix.size()] == '/')) {
      return shard;
    }
  }
  // Stable routing by first path component.
  const size_t end = path.find('/', 1);
  const std::string head =
      end == std::string::npos ? path : path.substr(0, end);
  return static_cast<int>(std::hash<std::string>{}(head) % shards_.size());
}

Status DistributedFileSystem::CreateFile(const std::string& path,
                                         int64_t size_bytes,
                                         int64_t record_count) {
  return shards_[static_cast<size_t>(ShardFor(path))]->CreateFile(
      path, size_bytes, record_count);
}

Status DistributedFileSystem::DeleteFile(const std::string& path) {
  return shards_[static_cast<size_t>(ShardFor(path))]->DeleteFile(path);
}

Result<FileInfo> DistributedFileSystem::Open(const std::string& path) {
  return shards_[static_cast<size_t>(ShardFor(path))]->Open(path);
}

Result<FileInfo> DistributedFileSystem::Stat(const std::string& path) const {
  return shards_[static_cast<size_t>(ShardFor(path))]->Stat(path);
}

bool DistributedFileSystem::Exists(const std::string& path) const {
  return shards_[static_cast<size_t>(ShardFor(path))]->Exists(path);
}

std::vector<FileInfo> DistributedFileSystem::ListFiles(
    const std::string& dir_prefix) {
  // A directory may only live on one shard (mount granularity is a
  // prefix), but hash-routed paths sharing the prefix could scatter; list
  // all shards and merge to stay correct in both regimes.
  std::vector<FileInfo> out;
  for (auto& shard : shards_) {
    auto part = shard->ListFiles(dir_prefix);
    out.insert(out.end(), part.begin(), part.end());
  }
  std::sort(out.begin(), out.end(),
            [](const FileInfo& a, const FileInfo& b) { return a.path < b.path; });
  return out;
}

void DistributedFileSystem::SetNamespaceQuota(const std::string& dir,
                                              int64_t max_objects) {
  shards_[static_cast<size_t>(ShardFor(dir))]->SetNamespaceQuota(dir,
                                                                 max_objects);
}

QuotaStatus DistributedFileSystem::GetQuota(const std::string& dir) const {
  return shards_[static_cast<size_t>(ShardFor(dir))]->GetQuota(dir);
}

NameNodeStats DistributedFileSystem::AggregateStats() const {
  NameNodeStats agg;
  for (const auto& shard : shards_) {
    const NameNodeStats& s = shard->stats();
    agg.total_objects += s.total_objects;
    agg.file_count += s.file_count;
    agg.open_calls += s.open_calls;
    agg.create_calls += s.create_calls;
    agg.delete_calls += s.delete_calls;
    agg.list_calls += s.list_calls;
    agg.timeouts += s.timeouts;
  }
  return agg;
}

int64_t DistributedFileSystem::OpenCallsInHour(SimTime hour_start) const {
  int64_t total = 0;
  for (const auto& shard : shards_) total += shard->OpenCallsInHour(hour_start);
  return total;
}

int64_t DistributedFileSystem::RpcsInHour(SimTime hour_start) const {
  int64_t total = 0;
  for (const auto& shard : shards_) total += shard->RpcsInHour(hour_start);
  return total;
}

void DistributedFileSystem::SetEpochLoadView(const EpochLoadView* view) {
  for (const auto& shard : shards_) shard->SetEpochLoadView(view);
}

void DistributedFileSystem::SetFaultInjector(fault::FaultInjector* injector) {
  for (const auto& shard : shards_) shard->SetFaultInjector(injector);
}

void DistributedFileSystem::SetTraceRecorder(obs::TraceRecorder* trace) {
  for (const auto& shard : shards_) shard->SetTraceRecorder(trace);
}

Status DistributedFileSystem::AuditAccounting() const {
  for (size_t i = 0; i < shards_.size(); ++i) {
    if (Status s = shards_[i]->AuditAccounting(); !s.ok()) {
      return Status::Internal("shard " + std::to_string(i) + ": " +
                              s.message());
    }
  }
  return Status::OK();
}

}  // namespace autocomp::storage
