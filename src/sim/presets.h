/// \file presets.h
/// \brief Ready-made AutoComp pipeline configurations matching the
/// paper's evaluated strategies (§6.1: TABLE-k and HYBRID-k with the
/// MOOP ranking at weights 0.7/0.3, hourly trigger) and the §7 production
/// deployment (daily, budgeted, quota-aware).

#pragma once

#include <memory>
#include <optional>

#include "core/pipeline.h"
#include "core/policy.h"
#include "core/triggers.h"
#include "sim/environment.h"

namespace autocomp::sim {

/// \brief Candidate scoping strategy of §6.
enum class ScopeStrategy : int {
  kTable,
  kHybrid,
  kPartition,
  kSnapshot,
};

/// \brief Parameters for the standard MOOP pipeline.
struct StrategyPreset {
  ScopeStrategy scope = ScopeStrategy::kTable;
  /// Fixed top-k selection; ignored when `budget_gb_hours` is set.
  int64_t k = 10;
  /// When set, dynamic-k budgeted selection (§7, Figure 10b).
  std::optional<double> budget_gb_hours;
  double weight_reduction = 0.7;
  double weight_cost = 0.3;
  SimTime trigger_interval = kHour;
  SimTime first_trigger = kHour;
  /// Filters.
  SimTime min_table_age = 0;
  int64_t min_small_files = 2;
  lst::ValidationMode validation_mode = lst::ValidationMode::kStrictTableLevel;
  bool run_retention_after_commit = true;
  /// When true, the pipeline stops after decide (null scheduler) and the
  /// EventDriver executes the plan on the timeline — Prepare at unit
  /// start, commit at unit end — so rewrites genuinely overlap user
  /// writes. Requires DriverOptions::deferred_compaction.
  bool deferred_act = false;
  /// Thread pool for the observe/orient fan-out; nullptr runs the
  /// pipeline sequentially. Not owned; must outlive the service.
  ThreadPool* pool = nullptr;
  /// Use the snapshot-keyed CachingStatsCollector instead of the plain
  /// one (commit-invalidated; identical output, cheaper idle cycles).
  bool cache_stats = false;
  /// LRU entry bound for the stats cache (<= 0 = unbounded).
  int64_t stats_cache_capacity = core::CachingStatsCollector::kDefaultCapacity;
  /// Maintain an IncrementalStatsIndex from commit deltas and serve
  /// observation stats / partition lists / replace watermarks from it
  /// (O(delta) per cycle instead of rescanning manifests). Output is
  /// bit-identical to the rescan path (NFR2). Off = the `--no-stats-index`
  /// ablation. Composes with `cache_stats` (index feeds cache misses).
  bool use_stats_index = true;
  /// Debug mode: on every index hit, also rescan and fail loudly on any
  /// divergence. Expensive; for tests and ablation studies.
  bool cross_check_stats_index = false;
  /// Trace recorder for the pipeline's OODA phase spans and decision
  /// instants (not owned; must outlive the service). Usually the same
  /// recorder EnvironmentOptions::trace installs on the lower layers.
  obs::TraceRecorder* trace = nullptr;
  /// Composable policy point (core/policy.h). When set to anything other
  /// than PolicySpec::Default(), the spec's axes override the stage
  /// choices above: granularity overrides `scope`, the trigger axis
  /// appends its admission filter, the picker axis replaces the ranker,
  /// and the movement axis flows into every compaction request. Unset or
  /// Default() leaves the preset byte-identical to the pre-decomposition
  /// pipeline (tests/policy_diff_test.cc pins this).
  std::optional<core::PolicySpec> policy;
};

/// \brief Builds the full pipeline + periodic service over `env`'s
/// dedicated compaction cluster. The returned service owns the pipeline;
/// stage objects are shared into it.
std::unique_ptr<core::AutoCompService> MakeMoopService(
    SimEnvironment* env, const StrategyPreset& preset);

}  // namespace autocomp::sim
