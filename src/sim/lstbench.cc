#include "sim/lstbench.h"

#include <algorithm>
#include <memory>

#include "common/logging.h"
#include "common/random.h"
#include "core/observe.h"
#include "core/ranking.h"
#include "core/scheduler.h"
#include "core/traits.h"
#include "core/triggers.h"
#include "engine/compaction_runner.h"
#include "sim/environment.h"
#include "workload/tpcds.h"
#include "workload/tpch.h"

namespace autocomp::sim {

const char* LstBenchWorkloadName(LstBenchWorkload workload) {
  switch (workload) {
    case LstBenchWorkload::kWp1:
      return "tpcds-wp1";
    case LstBenchWorkload::kWp3:
      return "tpcds-wp3";
    case LstBenchWorkload::kTpchLike:
      return "tpch";
  }
  return "unknown";
}

Result<double> LstBenchRunner::Run(const std::string& trait_name,
                                   double threshold) const {
  SimEnvironment env;
  Rng rng(config_.seed);
  const bool is_tpch = config_.workload == LstBenchWorkload::kTpchLike;
  const bool split_clusters = config_.workload == LstBenchWorkload::kWp3;

  // WP3 decouples clusters: writes go to a sidecar cluster and compaction
  // to the dedicated cluster; WP1/TPC-H run everything on the query
  // cluster (the contended configuration).
  engine::ClusterOptions sidecar_options;
  sidecar_options.executors = 7;  // the paper's 7-node write sidecar
  engine::Cluster sidecar("sidecar", sidecar_options, &env.clock());
  engine::QueryEngine write_engine(&sidecar, &env.catalog(), &env.clock());
  engine::CompactionRunner same_cluster_runner(&env.query_cluster(),
                                               &env.catalog(), &env.clock());
  engine::CompactionRunner* runner =
      split_clusters ? &env.compaction_runner() : &same_cluster_runner;
  engine::QueryEngine* writer =
      split_clusters ? &write_engine : &env.query_engine();

  // Load phase.
  workload::TpcdsOptions tpcds_options;
  tpcds_options.total_logical_bytes = config_.total_logical_bytes;
  tpcds_options.queries_per_pass = config_.queries_per_pass;
  workload::TpcdsWorkload tpcds(tpcds_options);
  if (is_tpch) {
    AUTOCOMP_RETURN_NOT_OK(workload::SetupTpchDatabase(
        &env.catalog(), &env.query_engine(), "tpch",
        config_.total_logical_bytes, engine::UntunedUserJobProfile(), 0));
  } else {
    AUTOCOMP_RETURN_NOT_OK(
        tpcds.Setup(&env.catalog(), &env.query_engine(), 0));
  }

  // Optimize-after-write hook (immediate mode, §5), when enabled.
  std::unique_ptr<core::OptimizeAfterWriteHook> hook;
  if (threshold >= 0) {
    std::vector<std::shared_ptr<const core::Trait>> traits;
    if (trait_name == "file_entropy_total") {
      traits.push_back(std::make_shared<core::TotalFileEntropyTrait>());
    } else if (trait_name == "file_count_reduction") {
      traits.push_back(std::make_shared<core::FileCountReductionTrait>());
    } else {
      return Status::InvalidArgument("unsupported trigger trait: " +
                                     trait_name);
    }
    core::OptimizeAfterWriteHook::ImmediateStages stages{
        std::make_shared<core::StatsCollector>(
            &env.catalog(), &env.control_plane(), &env.clock()),
        std::move(traits),
        core::ThresholdPolicy(trait_name, threshold),
        std::make_shared<core::SerialScheduler>(runner,
                                                &env.control_plane())};
    hook = std::make_unique<core::OptimizeAfterWriteHook>(std::move(stages));
  }

  const SimTime start = env.clock().Now();
  for (int session = 0; session < config_.sessions; ++session) {
    // --- Data modification phase.
    std::vector<engine::WriteSpec> writes;
    if (is_tpch) {
      for (const workload::TpchTableSpec& spec : workload::TpchTables()) {
        if (spec.partitioned) continue;
        engine::WriteSpec w;
        w.table = "tpch." + spec.name;
        w.kind = engine::WriteKind::kOverwrite;
        w.logical_bytes = static_cast<int64_t>(
            static_cast<double>(config_.total_logical_bytes) *
            spec.size_fraction * config_.tpch_overwrite_fraction);
        w.profile = engine::UntunedUserJobProfile();
        w.replace_fraction = 0.1;
        if (w.logical_bytes > 0) writes.push_back(std::move(w));
      }
    } else {
      writes = tpcds.MaintenanceWrites(config_.modify_fraction, &rng);
    }
    for (const engine::WriteSpec& w : writes) {
      AUTOCOMP_ASSIGN_OR_RETURN(engine::WriteResult written,
                                writer->ExecuteWrite(w, env.clock().Now()));
      // WP3's writes run on the sidecar concurrently with reads; on the
      // shared cluster they serialize with the rest of the session.
      if (!split_clusters) {
        env.clock().Advance(static_cast<SimTime>(written.total_seconds) + 1);
      }
      if (hook != nullptr) {
        const std::optional<std::string> partition =
            w.partitions.size() == 1
                ? std::optional<std::string>(w.partitions.front())
                : std::nullopt;
        auto compacted = hook->OnWrite(w.table, partition, env.clock().Now());
        AUTOCOMP_RETURN_NOT_OK(compacted.status());
        if (compacted->has_value() && (*compacted)->result.committed &&
            !split_clusters) {
          // Same-cluster compaction blocks the workload until it ends.
          env.clock().AdvanceTo(std::max(env.clock().Now(),
                                         (*compacted)->result.end_time));
        }
      }
    }
    // --- Read phase.
    auto run_read = [&](const std::string& table,
                        const std::optional<std::string>& partition)
        -> Status {
      AUTOCOMP_ASSIGN_OR_RETURN(
          engine::QueryResult result,
          env.query_engine().ExecuteRead(table, partition,
                                         env.clock().Now()));
      env.clock().Advance(static_cast<SimTime>(result.total_seconds) + 1);
      return Status::OK();
    };
    if (is_tpch) {
      for (const workload::TpchTableSpec& spec : workload::TpchTables()) {
        AUTOCOMP_RETURN_NOT_OK(run_read("tpch." + spec.name, std::nullopt));
      }
    } else {
      for (const auto& [table, partition] : tpcds.SingleUserQueries(&rng)) {
        AUTOCOMP_RETURN_NOT_OK(run_read(table, partition));
      }
    }
  }
  return static_cast<double>(env.clock().Now() - start);
}

}  // namespace autocomp::sim
