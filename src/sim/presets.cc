#include "sim/presets.h"

#include "core/filters.h"
#include "core/observe.h"
#include "core/ranking.h"
#include "core/scheduler.h"
#include "core/stats_index.h"
#include "core/traits.h"

namespace autocomp::sim {

std::unique_ptr<core::AutoCompService> MakeMoopService(
    SimEnvironment* env, const StrategyPreset& preset) {
  core::AutoCompPipeline::Stages stages;

  // Non-default policy specs override stage choices along their axes;
  // the Default() spec leaves every choice — and every trace byte —
  // exactly as the pre-decomposition preset produced it.
  const bool has_policy = preset.policy.has_value() &&
                          *preset.policy != core::PolicySpec::Default();
  ScopeStrategy scope = preset.scope;
  if (has_policy) {
    switch (preset.policy->granularity) {
      case core::GranularityAxis::kPartition:
        scope = ScopeStrategy::kPartition;
        break;
      case core::GranularityAxis::kTable:
        scope = ScopeStrategy::kTable;
        break;
      case core::GranularityAxis::kFleet:
        // Fleet granularity = the mixed-scope pool over every table the
        // control plane sees (the hybrid generator).
        scope = ScopeStrategy::kHybrid;
        break;
    }
  }

  // One index shared by the generator (partition lists, replace
  // watermarks) and the collector (candidate stats); commit listeners
  // keep it current for the service's lifetime.
  std::shared_ptr<core::IncrementalStatsIndex> index;
  if (preset.use_stats_index) {
    index = std::make_shared<core::IncrementalStatsIndex>(&env->catalog());
  }

  switch (scope) {
    case ScopeStrategy::kTable:
      stages.generator = std::make_shared<core::TableScopeGenerator>(index);
      break;
    case ScopeStrategy::kHybrid:
      stages.generator = std::make_shared<core::HybridScopeGenerator>(index);
      break;
    case ScopeStrategy::kPartition:
      stages.generator =
          std::make_shared<core::PartitionScopeGenerator>(index);
      break;
    case ScopeStrategy::kSnapshot:
      stages.generator = std::make_shared<core::SnapshotScopeGenerator>(index);
      break;
  }

  std::shared_ptr<core::StatsCollector> base;
  if (index != nullptr) {
    base = std::make_shared<core::IndexedStatsCollector>(
        &env->catalog(), &env->control_plane(), &env->clock(), index,
        preset.cross_check_stats_index);
  }
  if (preset.cache_stats) {
    stages.collector = std::make_shared<core::CachingStatsCollector>(
        &env->catalog(), &env->control_plane(), &env->clock(), base,
        preset.stats_cache_capacity);
  } else if (base != nullptr) {
    stages.collector = std::move(base);
  } else {
    stages.collector = std::make_shared<core::StatsCollector>(
        &env->catalog(), &env->control_plane(), &env->clock());
  }
  stages.pool = preset.pool;
  stages.trace = preset.trace;

  if (preset.min_table_age > 0) {
    stages.pre_orient_filters.push_back(
        std::make_shared<core::RecentCreationFilter>(preset.min_table_age));
  }
  if (preset.min_small_files > 0) {
    stages.pre_orient_filters.push_back(
        std::make_shared<core::MinSmallFilesFilter>(preset.min_small_files));
  }
  if (has_policy) {
    // Trigger axis: the admission filter deciding when a candidate's
    // debt is worth acting on (nullptr for periodic — every cycle
    // admits everything, the default cadence behavior).
    if (auto trigger_filter = core::TriggerFilterFor(*preset.policy)) {
      stages.pre_orient_filters.push_back(std::move(trigger_filter));
    }
  }

  const engine::ClusterOptions& compaction =
      env->compaction_cluster().options();
  stages.traits = {
      std::make_shared<core::FileCountReductionTrait>(),
      std::make_shared<core::FileEntropyTrait>(),
      std::make_shared<core::ComputeCostTrait>(
          compaction.executor_memory_gb * compaction.executors,
          compaction.rewrite_bytes_per_hour),
  };

  stages.ranker = std::make_shared<core::MoopRanker>(
      std::vector<core::MoopRanker::Objective>{
          {"file_count_reduction", preset.weight_reduction, false},
          {"compute_cost_gbhr", preset.weight_cost, true}});
  if (has_policy) {
    // Picker axis: replaces the decide-phase ranker.
    switch (preset.policy->picker) {
      case core::PickerAxis::kMoop:
        break;  // the MOOP ranker built above
      case core::PickerAxis::kSorted:
        stages.ranker = std::make_shared<core::SingleTraitRanker>(
            "file_count_reduction");
        break;
      case core::PickerAxis::kGreedySizeRatio:
        stages.ranker = std::make_shared<core::GreedySizeRatioRanker>();
        break;
      case core::PickerAxis::kOnlineMerge:
        stages.ranker = std::make_shared<core::OnlineMergeRanker>(
            static_cast<size_t>(preset.policy->picker_param));
        break;
    }
  }

  if (preset.budget_gb_hours.has_value()) {
    stages.selector = std::make_shared<core::BudgetedSelector>(
        *preset.budget_gb_hours, "compute_cost_gbhr");
  } else {
    stages.selector = std::make_shared<core::FixedKSelector>(preset.k);
  }

  if (preset.deferred_act) {
    stages.scheduler = nullptr;  // the EventDriver acts on the timeline
  } else {
    core::SchedulerOptions sched;
    sched.validation_mode = preset.validation_mode;
    sched.run_retention_after_commit = preset.run_retention_after_commit;
    if (has_policy) {
      // Movement axis: how much data each work unit rewrites.
      sched.movement = core::MovementFor(*preset.policy);
    }
    stages.scheduler = std::make_shared<core::TableParallelScheduler>(
        &env->compaction_runner(), &env->control_plane(), sched);
  }
  if (has_policy) {
    stages.policy_label = preset.policy->ToString();
  }

  auto pipeline = std::make_unique<core::AutoCompPipeline>(
      std::move(stages), &env->catalog(), &env->clock());
  return std::make_unique<core::AutoCompService>(
      std::move(pipeline),
      core::PeriodicTrigger(preset.trigger_interval, preset.first_trigger));
}

}  // namespace autocomp::sim
