#include "sim/lane_checkpoint.h"

#include "common/blob.h"

namespace autocomp::sim {

namespace {

// Format tag: catches blobs fed to the wrong decoder (or a stale
// checkpoint after a format change) before component decoders start
// mis-reading fields.
constexpr uint32_t kLaneBlobMagic = 0x4C414E45;  // "LANE"
constexpr uint32_t kLaneBlobVersion = 2;  // v2: varint ints + interned strings

}  // namespace

Result<std::string> SaveLaneState(SimEnvironment* env, EventDriver* driver) {
  common::BlobWriter w;
  w.WriteU32(kLaneBlobMagic);
  w.WriteU32(kLaneBlobVersion);
  w.WriteI64(env->clock().Now());

  storage::DistributedFileSystem& dfs = env->dfs();
  w.WriteI32(dfs.num_shards());
  for (int i = 0; i < dfs.num_shards(); ++i) {
    dfs.shard(i).SaveState(&w);
  }
  env->catalog().SaveState(&w);
  env->control_plane().SaveState(&w);
  env->query_cluster().SaveState(&w);
  env->compaction_cluster().SaveState(&w);
  env->query_engine().SaveState(&w);
  env->compaction_runner().SaveState(&w);
  env->fault_injector().SaveState(&w);
  AUTOCOMP_RETURN_NOT_OK(driver->SaveStateOrFail(&w));
  return w.Take();
}

Status RestoreLaneState(const std::string& blob, SimEnvironment* env,
                        EventDriver* driver) {
  common::BlobReader r(blob);
  if (r.ReadU32() != kLaneBlobMagic || r.ReadU32() != kLaneBlobVersion) {
    return Status::Internal("lane checkpoint: bad magic or version");
  }
  const SimTime t = r.ReadI64();
  if (t < env->clock().Now()) {
    return Status::Internal("lane checkpoint: clock would run backwards");
  }
  env->clock().AdvanceTo(t);

  storage::DistributedFileSystem& dfs = env->dfs();
  const int shards = static_cast<int>(r.ReadI32());
  if (shards != dfs.num_shards()) {
    return Status::Internal("lane checkpoint: NameNode shard count mismatch");
  }
  for (int i = 0; i < shards; ++i) {
    AUTOCOMP_RETURN_NOT_OK(dfs.shard(i).RestoreState(&r));
  }
  AUTOCOMP_RETURN_NOT_OK(env->catalog().RestoreState(&r));
  env->control_plane().RestoreState(&r);
  env->query_cluster().RestoreState(&r);
  env->compaction_cluster().RestoreState(&r);
  env->query_engine().RestoreState(&r);
  env->compaction_runner().RestoreState(&r);
  env->fault_injector().RestoreState(&r);
  AUTOCOMP_RETURN_NOT_OK(driver->RestoreState(&r));
  if (!r.ok() || !r.exhausted()) {
    return Status::Internal("lane checkpoint: trailing or truncated bytes");
  }
  return Status::OK();
}

}  // namespace autocomp::sim
