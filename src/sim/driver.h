/// \file driver.h
/// \brief Executes a workload timeline against a SimEnvironment while
/// ticking the AutoComp service and recording the metrics the paper's
/// figures plot.
///
/// Compaction can run in two modes:
///  * synchronous — the service's own scheduler executes the act phase
///    inside the tick (commit happens instantly; no cluster-side
///    conflicts can occur);
///  * deferred — the service only decides (its scheduler is null) and the
///    driver executes the plan on the timeline: Prepare at the unit's
///    start, Finalize (the commit) at its end. User writes that land in
///    between cause exactly the cluster-side conflicts of Table 1.

#pragma once

#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/blob.h"
#include "common/interner.h"
#include "core/triggers.h"
#include "engine/compaction_runner.h"
#include "sim/calendar_queue.h"
#include "sim/environment.h"
#include "sim/metrics.h"
#include "workload/events.h"

namespace autocomp::sim {

/// \brief Driver configuration.
struct DriverOptions {
  /// Interval for sampling the storage file count ("files_total" series).
  SimTime sample_interval = 10 * kMinute;
  /// Run the retention data service at this interval so replaced files
  /// leave storage (0 = never).
  SimTime retention_interval = kHour;
  /// Execute the service's selected plan on the timeline (requires the
  /// service pipeline to have a null scheduler).
  bool deferred_compaction = false;
  /// Conflict validation for deferred compaction commits.
  lst::ValidationMode compaction_validation =
      lst::ValidationMode::kStrictTableLevel;
  /// Retention window for the post-commit sweep (0 = reap immediately).
  SimTime post_commit_retention = 0;
  /// Data-movement axis for deferred compaction requests (core/policy.h).
  /// A non-empty TablePolicy::compaction_policy overrides it per table,
  /// mirroring core::RequestFor.
  engine::RewriteMovement compaction_movement =
      engine::RewriteMovement::kPartial;
  /// Record the pipeline_*_ms host wall-clock profiling series for
  /// attached-service runs. These are the only nondeterministic metrics
  /// the driver produces; bit-identity comparisons (policy_diff_test,
  /// the policy sweep's NFR2 gate) turn them off.
  bool record_host_timings = true;
};

/// \brief Event-loop driver. Metric names it produces:
///  * series  "files_total"         — sampled storage file count
///  * series  "compaction_gbhr"     — GBHr_App per finalized rewrite
///  * hourly  "read_latency_s"      — per read query (Figure 8 left)
///  * hourly  "write_latency_s"     — per write query (Figure 8 right)
///  * hourly  "write_queries"       — count of write queries (Table 1)
///  * hourly  "client_conflicts"    — commit retries + conflict failures
///  * hourly  "cluster_conflicts"   — compaction commits lost to races
///  * hourly  "compaction_commits"  — compaction commits that landed
///  * hourly  "open_timeouts"       — storage read timeouts
class EventDriver {
 public:
  EventDriver(SimEnvironment* env, MetricsRecorder* metrics,
              DriverOptions options = {});

  /// Installs the compaction service (ticked as simulated time advances).
  void AttachService(core::AutoCompService* service) { service_ = service; }
  /// Installs an optimize-after-write hook (invoked after write commits).
  void AttachHook(core::OptimizeAfterWriteHook* hook) { hook_ = hook; }

  /// Runs all events (must be sorted) and advances time to `end_time`,
  /// finalizing any still-inflight compactions at the end.
  Status Run(const std::vector<workload::QueryEvent>& events,
             SimTime end_time);

  /// Advances simulated time to `t`, sampling metrics, ticking the
  /// service/retention, and finalizing due compactions along the way.
  Status AdvanceTo(SimTime t);

  /// Executes a single event at the current time.
  Status Execute(const workload::QueryEvent& event);

  /// Flushes inflight rewrites (they commit at their natural end times,
  /// past the current clock), drops queued units, and takes a final
  /// storage sample. Run() calls this; incremental callers that drive
  /// AdvanceTo/Execute themselves (the shard-parallel fleet driver) call
  /// it once at the end of the experiment.
  void FinishRun();

  /// Sum of end-to-end read latency observed so far, in seconds (the
  /// "experiment duration" objective used by the §6.3 auto-tuner).
  double total_read_seconds() const { return total_read_seconds_; }
  double total_write_seconds() const { return total_write_seconds_; }

  /// Earliest future boundary at which this driver could issue a storage
  /// RPC or mutate table state: the next retention run, the service
  /// trigger, or an inflight compaction end — but NOT the metrics sample
  /// timer, which reads state without changing it. The lazy fleet driver
  /// dozes a lane until min(this, its next workload event); the deferred
  /// sample ticks replay identically on the next advance because the
  /// lane's file count cannot change while it dozes. nullopt = the lane
  /// is fully passive until its next event.
  std::optional<SimTime> NextActivityBound() const;

  /// True when nothing is in flight and no decided work is queued — the
  /// precondition for lane eviction (a PendingCompaction holds an open
  /// lst::Transaction, which is not checkpointable).
  bool Quiescent() const { return table_queues_.empty() && inflight_.empty(); }

  /// Next scheduled retention tick (-1 = retention disabled). The fleet
  /// evictor uses it to compute the first tick that could actually
  /// expire a snapshot (see fleet_driver.cc).
  SimTime next_retention() const { return next_retention_; }

  /// \name Lane checkpoint (DESIGN.md §10)
  /// Serializes the timer scalars, latency accumulators and the table-id
  /// interner of a *quiescent* driver. RestoreState expects a freshly
  /// constructed driver over the restored environment: the calendar
  /// queue needs no state (ArmTimers re-derives every timer entry from
  /// the scalars on the next advance; a quiescent driver has no
  /// compaction entries).
  /// @{
  void SaveState(common::BlobWriter* w) const;
  Status SaveStateOrFail(common::BlobWriter* w) const;
  Status RestoreState(common::BlobReader* r);
  /// @}

 private:
  void SampleNow();
  /// Deferred mode: queue a decided plan and start the first unit of each
  /// table group.
  void ScheduleCompactions(const std::vector<core::ScoredCandidate>& plan);
  /// Starts the next queued unit for `table` (Prepare at the current
  /// time). No-op units finalize instantly and pull the next one.
  void StartNextUnit(common::TableId table);
  /// Finalizes every inflight unit whose rewrite finished by `t`.
  void FinalizeDueCompactions(SimTime t);
  void FinalizeUnit(common::TableId table,
                    engine::PendingCompaction&& pending);
  /// Re-syncs the calendar queue's timer entries with the scalar
  /// schedules (sample/retention/service) before each boundary peek.
  void ArmTimers(SimTime now);

  SimEnvironment* env_;
  MetricsRecorder* metrics_;
  DriverOptions options_;
  core::AutoCompService* service_ = nullptr;
  core::OptimizeAfterWriteHook* hook_ = nullptr;
  SimTime next_sample_ = 0;
  SimTime next_retention_ = 0;
  double total_read_seconds_ = 0;
  double total_write_seconds_ = 0;

  /// Interned handles for the per-event metrics (one vector index per
  /// record instead of a string hash + map lookup per event).
  struct Ids {
    MetricId files_total, compaction_commits, compaction_gbhr,
        compaction_files_reduced, cluster_conflicts, write_queries,
        write_failures, write_latency_s, client_conflicts, read_failures,
        read_latency_s, open_timeouts, pipeline_generate_ms,
        pipeline_observe_ms, pipeline_orient_ms, pipeline_decide_ms,
        pipeline_act_ms, stats_cache_hits, stats_cache_misses,
        stats_index_hits, stats_index_fallbacks, compaction_retries,
        compaction_abandoned, compaction_backoff_s;
  };
  Ids ids_;

  /// Table names interned to dense ids: the per-table hot-path maps key
  /// by int32 instead of std::string, and the name is only touched at
  /// construction (ScheduleCompactions) and reporting (Finalize/retention)
  /// edges. The driver is single-threaded per lane, so its interner is
  /// private and uncontended.
  common::StringInterner table_ids_;

  /// Deferred-compaction state: per-table FIFO of decided candidates and
  /// at most one inflight unit per table (§4.4 sequencing). Drained
  /// queues are erased so week-long replays don't leak one map node per
  /// table that ever compacted.
  std::map<common::TableId, std::deque<core::Candidate>> table_queues_;
  std::map<common::TableId, engine::PendingCompaction> inflight_;

  /// Time boundaries (sample/retention/service timers and inflight
  /// compaction ends) in one hour-bucketed calendar queue. A compaction
  /// entry is pushed exactly when a unit enters `inflight_` and popped
  /// exactly when it leaves; pop order is (end_time, then table *name*)
  /// via the interner's NameLess, matching the min-heap this replaces.
  CalendarQueue calendar_;
};

}  // namespace autocomp::sim
