/// \file driver.h
/// \brief Executes a workload timeline against a SimEnvironment while
/// ticking the AutoComp service and recording the metrics the paper's
/// figures plot.
///
/// Compaction can run in two modes:
///  * synchronous — the service's own scheduler executes the act phase
///    inside the tick (commit happens instantly; no cluster-side
///    conflicts can occur);
///  * deferred — the service only decides (its scheduler is null) and the
///    driver executes the plan on the timeline: Prepare at the unit's
///    start, Finalize (the commit) at its end. User writes that land in
///    between cause exactly the cluster-side conflicts of Table 1.

#pragma once

#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <vector>

#include "core/triggers.h"
#include "engine/compaction_runner.h"
#include "sim/environment.h"
#include "sim/metrics.h"
#include "workload/events.h"

namespace autocomp::sim {

/// \brief Driver configuration.
struct DriverOptions {
  /// Interval for sampling the storage file count ("files_total" series).
  SimTime sample_interval = 10 * kMinute;
  /// Run the retention data service at this interval so replaced files
  /// leave storage (0 = never).
  SimTime retention_interval = kHour;
  /// Execute the service's selected plan on the timeline (requires the
  /// service pipeline to have a null scheduler).
  bool deferred_compaction = false;
  /// Conflict validation for deferred compaction commits.
  lst::ValidationMode compaction_validation =
      lst::ValidationMode::kStrictTableLevel;
  /// Retention window for the post-commit sweep (0 = reap immediately).
  SimTime post_commit_retention = 0;
};

/// \brief Event-loop driver. Metric names it produces:
///  * series  "files_total"         — sampled storage file count
///  * series  "compaction_gbhr"     — GBHr_App per finalized rewrite
///  * hourly  "read_latency_s"      — per read query (Figure 8 left)
///  * hourly  "write_latency_s"     — per write query (Figure 8 right)
///  * hourly  "write_queries"       — count of write queries (Table 1)
///  * hourly  "client_conflicts"    — commit retries + conflict failures
///  * hourly  "cluster_conflicts"   — compaction commits lost to races
///  * hourly  "compaction_commits"  — compaction commits that landed
///  * hourly  "open_timeouts"       — storage read timeouts
class EventDriver {
 public:
  EventDriver(SimEnvironment* env, MetricsRecorder* metrics,
              DriverOptions options = {});

  /// Installs the compaction service (ticked as simulated time advances).
  void AttachService(core::AutoCompService* service) { service_ = service; }
  /// Installs an optimize-after-write hook (invoked after write commits).
  void AttachHook(core::OptimizeAfterWriteHook* hook) { hook_ = hook; }

  /// Runs all events (must be sorted) and advances time to `end_time`,
  /// finalizing any still-inflight compactions at the end.
  Status Run(const std::vector<workload::QueryEvent>& events,
             SimTime end_time);

  /// Advances simulated time to `t`, sampling metrics, ticking the
  /// service/retention, and finalizing due compactions along the way.
  Status AdvanceTo(SimTime t);

  /// Executes a single event at the current time.
  Status Execute(const workload::QueryEvent& event);

  /// Sum of end-to-end read latency observed so far, in seconds (the
  /// "experiment duration" objective used by the §6.3 auto-tuner).
  double total_read_seconds() const { return total_read_seconds_; }
  double total_write_seconds() const { return total_write_seconds_; }

 private:
  void SampleNow();
  /// Deferred mode: queue a decided plan and start the first unit of each
  /// table group.
  void ScheduleCompactions(const std::vector<core::ScoredCandidate>& plan);
  /// Starts the next queued unit for `table` (Prepare at the current
  /// time). No-op units finalize instantly and pull the next one.
  void StartNextUnit(const std::string& table);
  /// Finalizes every inflight unit whose rewrite finished by `t`.
  void FinalizeDueCompactions(SimTime t);
  void FinalizeUnit(const std::string& table,
                    engine::PendingCompaction&& pending);
  /// Earliest inflight finish time, if any.
  std::optional<SimTime> NextCompactionEnd() const;

  SimEnvironment* env_;
  MetricsRecorder* metrics_;
  DriverOptions options_;
  core::AutoCompService* service_ = nullptr;
  core::OptimizeAfterWriteHook* hook_ = nullptr;
  SimTime next_sample_ = 0;
  SimTime next_retention_ = 0;
  double total_read_seconds_ = 0;
  double total_write_seconds_ = 0;

  /// Deferred-compaction state: per-table FIFO of decided candidates and
  /// at most one inflight unit per table (§4.4 sequencing).
  std::map<std::string, std::deque<core::Candidate>> table_queues_;
  std::map<std::string, engine::PendingCompaction> inflight_;
};

}  // namespace autocomp::sim
