/// \file metrics.h
/// \brief Metric collection for experiments: time series, hourly latency
/// samples, hourly counters, and ASCII reporting.

#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/histogram.h"
#include "common/units.h"
#include "obs/metrics_export.h"

namespace autocomp::sim {

/// \brief One (time, value) point of a recorded series.
struct SeriesPoint {
  SimTime time = 0;
  double value = 0;
};

/// \brief Interned handle for a metric name. The string API hashes a
/// std::string on every call — per-event cost on the driver's hot loop.
/// Hot paths intern their names once and record through the handle,
/// which is a plain vector index.
struct MetricId {
  int32_t value = -1;
  bool valid() const { return value >= 0; }
};

/// \brief Collects experiment telemetry. All lookups are by metric name;
/// unknown names return empty results rather than failing, so reporting
/// code stays straightforward.
class MetricsRecorder {
 public:
  /// Interns `name`, returning a stable handle. One id namespace covers
  /// series, hourly samples and hourly counters (a name identifies one
  /// logical metric regardless of kind). Idempotent.
  MetricId Intern(const std::string& name);

  /// Appends a point to a named time series (e.g. sampled file counts).
  void Record(const std::string& series, SimTime time, double value);
  void Record(MetricId id, SimTime time, double value);

  /// Adds an observation to the hourly distribution bucket containing
  /// `time` (e.g. per-query latencies for Figure 8's candlesticks).
  void Observe(const std::string& metric, SimTime time, double value);
  void Observe(MetricId id, SimTime time, double value);

  /// Increments an hourly counter (conflicts, retries, timeouts).
  void Increment(const std::string& counter, SimTime time, int64_t n = 1);
  void Increment(MetricId id, SimTime time, int64_t n = 1);

  const std::vector<SeriesPoint>& Series(const std::string& series) const;

  /// (hour_start, summary) rows, ascending.
  std::vector<std::pair<SimTime, QuantileSummary>> HourlySummaries(
      const std::string& metric) const;

  /// (hour_start, count) rows, ascending; hours with no increments are
  /// absent.
  std::vector<std::pair<SimTime, int64_t>> HourlyCounts(
      const std::string& counter) const;

  int64_t TotalCount(const std::string& counter) const;

  /// Raw sample across all hours.
  Sample AllObservations(const std::string& metric) const;

  /// \brief Content equality across every recorded metric: series are
  /// compared point for point (time and value bit-exact), hourly samples
  /// as value multisets per hour, counters per hour. Interned-but-empty
  /// metrics are ignored. On mismatch, `why` (when given) receives a
  /// human-readable description of the first difference.
  bool Equals(const MetricsRecorder& other, std::string* why = nullptr) const;

  /// \brief Aggregated export view: hourly counters collapse to run
  /// totals, each series contributes its last value as a gauge, hourly
  /// samples aggregate to count/sum/min/max summaries. Feeds
  /// obs::ToPrometheusText (the CLI's --metrics-out).
  obs::MetricsSnapshot Snapshot() const;

  /// \brief Deterministic merge of per-lane recorders: series points are
  /// stably merged by time (ties keep lane order), per-hour samples are
  /// concatenated in lane order, counters are summed. Callers must pass
  /// lanes in a fixed order (the shard-parallel driver uses lane index)
  /// so the merged output is independent of shard count and scheduling.
  /// Repeated pointers are allowed (the lazy fleet driver passes one
  /// shared ghost recorder for every idle lane). Internally the lanes'
  /// interned id arrays are translated once and slots merged in id order
  /// with pre-reserved series storage — no per-name map lookups in the
  /// append pass.
  static MetricsRecorder Merge(const std::vector<const MetricsRecorder*>& lanes);

  /// \brief Order-stable 64-bit content hash: covers exactly what Equals
  /// compares (names in sorted order, series point for point, hourly
  /// counts, per-hour sample multisets; interned-but-empty slots are
  /// skipped). Two recorders are Equals iff their hashes match, modulo
  /// collisions — the scale-tier bench compares runs across processes
  /// with it, where shipping whole recorders is impractical.
  uint64_t ContentHash() const;

 private:
  /// Per-metric storage; a slot may be populated as any mix of kinds.
  struct Slot {
    std::vector<SeriesPoint> series;
    std::map<SimTime, Sample> hourly_samples;
    std::map<SimTime, int64_t> hourly_counts;
  };

  const Slot* FindSlot(const std::string& name) const;

  std::map<std::string, int32_t> ids_;  // name -> slot index
  std::vector<Slot> slots_;
};

/// \brief Sum of all values in a recorded series (0 when absent) — e.g.
/// total wall-clock a pipeline phase consumed across every run.
double SeriesSum(const MetricsRecorder& metrics, const std::string& series);

/// \brief Fixed-width ASCII table printer used by the bench harnesses.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);
  void AddRow(std::vector<std::string> cells);
  /// Renders with a header underline; column widths fit the content.
  std::string ToString() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// \brief printf-style float formatting helper ("%.2f").
std::string Fmt(double value, int decimals = 2);

}  // namespace autocomp::sim
