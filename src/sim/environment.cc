#include "sim/environment.h"

namespace autocomp::sim {

SimEnvironment::SimEnvironment(EnvironmentOptions options)
    : options_(options), clock_(0) {
  fault_injector_ = std::make_unique<fault::FaultInjector>(options_.fault);
  storage::NameNodeOptions nn = options_.namenode;
  nn.seed = options_.seed * 31 + 5;
  dfs_ = std::make_unique<storage::DistributedFileSystem>(
      &clock_, options_.namenode_shards, nn);
  catalog_ =
      std::make_unique<catalog::Catalog>(&clock_, dfs_.get(), options_.catalog);
  if (options_.fault.enabled) {
    dfs_->SetFaultInjector(fault_injector_.get());
    catalog_->SetFaultInjector(fault_injector_.get());
  }
  control_plane_ = std::make_unique<catalog::ControlPlane>(catalog_.get());
  query_cluster_ = std::make_unique<engine::Cluster>(
      "query", options_.query_cluster, &clock_);
  compaction_cluster_ = std::make_unique<engine::Cluster>(
      "compaction", options_.compaction_cluster, &clock_);
  engine::QueryEngineOptions eng = options_.engine;
  eng.seed = options_.seed * 101 + 13;
  query_engine_ = std::make_unique<engine::QueryEngine>(
      query_cluster_.get(), catalog_.get(), &clock_, eng);
  compaction_runner_ = std::make_unique<engine::CompactionRunner>(
      compaction_cluster_.get(), catalog_.get(), &clock_,
      eng.format_options, options_.runner_id);
  compaction_runner_->set_retry_policy(options_.retry);
  if (options_.fault.enabled) {
    compaction_runner_->SetFaultInjector(fault_injector_.get());
  }
  if (options_.trace != nullptr) {
    dfs_->SetTraceRecorder(options_.trace);
    catalog_->SetTraceRecorder(options_.trace);
    compaction_runner_->SetTraceRecorder(options_.trace);
    fault_injector_->SetTrace(options_.trace, &clock_);
  }
}

int64_t SimEnvironment::TotalFileCount() const {
  return dfs_->AggregateStats().file_count;
}

}  // namespace autocomp::sim
