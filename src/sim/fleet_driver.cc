#include "sim/fleet_driver.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cstdio>
#include <utility>

#include "common/counter_rng.h"
#include "common/logging.h"
#include "sim/lane_checkpoint.h"
#include "engine/write_planner.h"
#include "fault/invariant_checker.h"
#include "format/columnar.h"
#include "obs/trace_export.h"

namespace autocomp::sim {

/// One tenant database's complete simulated deployment. A lane starts
/// cold — just its name and a queue of planned-but-unmaterialised table
/// loads — and is hydrated into the full stack (clock, storage, catalog,
/// clusters, engine, recorder, driver) on first due work. Hydrated lanes
/// share no mutable state, so shards advance them concurrently; the only
/// cross-lane read is the EpochLoadModel, immutable between barriers.
struct FleetSimulation::Lane {
  std::string db;
  int index = 0;
  int shard = 0;

  /// Cold state: planned table loads queued until hydration, with each
  /// op's exact CreateFile count (engine::PlannedFileCount) so the lane
  /// contributes to epoch barriers before its environment exists.
  std::vector<workload::FleetWorkload::TableOp> pending;
  std::vector<int64_t> pending_rpcs;
  bool ever_had_events = false;

  /// Hot state (null until hydrated). The recorder is constructed before
  /// the environment (which wires it through the stack); all of this
  /// lane's spans land there, on its own timeline.
  std::unique_ptr<obs::TraceRecorder> trace;
  std::unique_ptr<SimEnvironment> env;
  MetricsRecorder metrics;
  /// Per-lane AutoComp control loop (only with FleetSimOptions::preset).
  std::unique_ptr<core::AutoCompService> service;
  std::unique_ptr<EventDriver> driver;

  /// This day's events for this lane, time-sorted; `next_event` is the
  /// cursor of the first not-yet-executed one.
  std::vector<workload::QueryEvent> day_events;
  size_t next_event = 0;
  int64_t executed = 0;
  /// First failure while advancing (surfaced at the next barrier; the
  /// parallel section itself never propagates errors across threads).
  Status status = Status::OK();

  /// Active-lane scheduling: the authoritative wake-up time (-1 =
  /// unarmed). Wake-queue entries at any other time are stale tombstones.
  SimTime next_wake = -1;
  bool hydrated = false;
  bool finalized = false;
  /// Eviction state (DESIGN.md §10): a dehydrated lane keeps `hydrated`
  /// true (its planned loads were consumed) but its environment/driver
  /// are gone, replaced by this compact resumable blob. `last_active` is
  /// the end of the last epoch the lane was due in; `restore_host_ms`
  /// accumulates the O(state) rebuild cost (parallel-safe: each lane
  /// only ever writes its own).
  std::string checkpoint;
  bool evicted = false;
  SimTime last_active = 0;
  double restore_host_ms = 0;
  /// Time of this lane's last planned workload event across *all* days
  /// (-1 = none), precomputed at setup when eviction is on —
  /// EventsForDay forks a per-day RNG, so scanning the full horizon up
  /// front draws nothing the replay will draw again. The evictor may
  /// finalize a lane early only when this is in the past: day_events
  /// alone only proves the *current* day is drained, and a retired
  /// lane cannot be re-activated when tomorrow's Zipf picks land on it.
  SimTime last_event_time = -1;
  /// Earliest instant the lane could become retire-eligible again: the
  /// blocking mutating retention tick found by the last failed
  /// TryRetireLane. A lane past its last workload touch only changes
  /// state by executing that tick, so re-checking before it has run is
  /// a wasted catalog scan. -1 = never checked (always attempt).
  SimTime retire_blocked_until = -1;
  /// Delta-barrier bookkeeping: RPCs this lane already published for
  /// `spill_hour` (work finalizing exactly at an epoch boundary posts
  /// into the *next* hour's bucket), subtracted from the next tally so
  /// nothing double-counts.
  SimTime spill_hour = -1;
  int64_t spill_amount = 0;

  /// Results captured by FinalizeLane (the environment may be destroyed
  /// right after — transient finalization of cold lanes).
  int64_t total_files = 0;
  int64_t open_calls = 0;
  int64_t faults_injected = 0;
};

namespace {

workload::LaneTargets TargetsOf(SimEnvironment* env) {
  return {&env->catalog(), &env->query_engine(), &env->control_plane()};
}

/// Due lanes advanced per wave when the evictor is on. Retention ticks
/// cluster at day boundaries (a fleet loaded together expires together),
/// so a single epoch can wake hundreds of dozing lanes at once; waves
/// bound how many of those restores are resident simultaneously.
constexpr size_t kEvictWaveSize = 256;

}  // namespace

int FleetSimulation::ShardOf(const std::string& db, int shards) {
  assert(shards > 0);
  return static_cast<int>(CounterRng::HashString(db) %
                          static_cast<uint64_t>(shards));
}

FleetSimulation::FleetSimulation(FleetSimOptions options)
    : options_(std::move(options)), epoch_load_(options_.env.namenode) {
  if (options_.shards < 1) options_.shards = 1;
  if (options_.days < 1) options_.days = 1;
}

FleetSimulation::~FleetSimulation() = default;

void FleetSimulation::PrepareHydration(Lane* lane, int64_t from_hour) {
  // The lane's actual tallies take over from here: retract its planned
  // contributions for hours the barrier has not sealed yet. (Estimates
  // for already-sealed hours were consumed by their barriers; the replay
  // recreates the same counts in those old buckets, which nothing reads
  // again.)
  for (size_t i = 0; i < lane->pending.size(); ++i) {
    const SimTime hour = (lane->pending[i].at / kHour) * kHour;
    if (hour < from_hour) continue;
    const auto it = pending_rpcs_by_hour_.find(hour);
    if (it == pending_rpcs_by_hour_.end()) continue;
    it->second -= lane->pending_rpcs[i];
    if (it->second <= 0) pending_rpcs_by_hour_.erase(it);
  }
  ++lanes_hydrated_;
  ++resident_lanes_;
  peak_resident_lanes_ = std::max(peak_resident_lanes_, resident_lanes_);
  if (options_.on_lane_residency) {
    options_.on_lane_residency(lane->db, resident_lanes_,
                               peak_resident_lanes_);
  }
}

EnvironmentOptions FleetSimulation::LaneEnvironmentOptions(Lane* lane) const {
  EnvironmentOptions env = options_.env;
  // Per-lane seed is a pure function of (master seed, database name):
  // independent of lane enumeration, shard count, pool size — and of
  // *when* the lane hydrates.
  env.seed = CounterRng::At(options_.seed, CounterRng::HashString(lane->db),
                            /*index=*/0);
  // Pin writer/runner ids so file names do not depend on how many
  // engines this *process* constructed before (each lane has its own
  // catalog, so ids need not be unique across lanes).
  env.engine.writer_id = 1;
  env.runner_id = 1;
  // Per-lane fault seed, same construction as the environment seed:
  // injections are a pure function of (fault seed, database name, the
  // lane's serial hit counts), never of shard count or pool size.
  if (env.fault.enabled) {
    env.fault.seed = CounterRng::At(options_.env.fault.seed,
                                    CounterRng::HashString(lane->db),
                                    /*index=*/1);
  }
  // A restored lane keeps recording into the recorder it had before
  // eviction — the digest stream continues seamlessly.
  env.trace = lane->trace.get();
  return env;
}

DriverOptions FleetSimulation::LaneDriverOptions() const {
  DriverOptions driver_options = options_.driver;
  if (options_.preset && options_.preset->policy &&
      *options_.preset->policy != core::PolicySpec::Default()) {
    // The preset policy's movement axis flows into deferred-mode
    // requests (synchronous mode routes it through the scheduler).
    driver_options.compaction_movement =
        core::MovementFor(*options_.preset->policy);
  }
  return driver_options;
}

void FleetSimulation::HydrateLane(Lane* lane) {
  if (lane->hydrated) return;
  lane->hydrated = true;

  // Lane recorder: built even at level kOff when armed, so every
  // emission site pays its guard (the bench parity configuration).
  const bool tracing =
      options_.trace_armed || options_.trace_level != obs::TraceLevel::kOff;
  if (tracing) {
    obs::TraceRecorder::Options trace_options;
    trace_options.level = options_.trace_level;
    trace_options.lane = lane->db;
    trace_options.capacity = options_.trace_capacity;
    lane->trace = std::make_unique<obs::TraceRecorder>(trace_options);
  }
  lane->env = std::make_unique<SimEnvironment>(LaneEnvironmentOptions(lane));
  lane->env->dfs().SetEpochLoadView(&epoch_load_);
  lane->driver = std::make_unique<EventDriver>(lane->env.get(),
                                               &lane->metrics,
                                               LaneDriverOptions());
  if (options_.preset) {
    // Per-lane AutoComp control loop. The lane advances serially (the
    // fleet pool parallelizes shards, never the inside of a lane), so
    // the pipeline runs without its own pool; the lane recorder takes
    // the OODA/decision spans.
    StrategyPreset preset = *options_.preset;
    preset.pool = nullptr;
    preset.trace = lane->trace.get();
    lane->service = MakeMoopService(lane->env.get(), preset);
    lane->driver->AttachService(lane->service.get());
  }

  // Replay the planned loads: database first, then ops in plan order,
  // each at its original time (AdvanceTo replays any deferred sample /
  // retention ticks on the way — a dozing lane's state cannot change, so
  // the deferred ticks reproduce exactly what eager ticking recorded).
  // The injector stays disarmed through the loads, as the eager path's
  // serial-load sections were.
  lane->env->fault_injector().set_armed(false);
  Status st = lane->env->catalog().CreateDatabase(
      lane->db, options_.fleet.quota_objects_per_db);
  for (const workload::FleetWorkload::TableOp& op : lane->pending) {
    if (!st.ok()) break;
    st = lane->driver->AdvanceTo(op.at);
    if (st.ok()) {
      st = workload::FleetWorkload::Materialize(TargetsOf(lane->env.get()),
                                                op);
    }
  }
  if (!st.ok()) lane->status = std::move(st);
  lane->pending.clear();
  lane->pending.shrink_to_fit();
  lane->pending_rpcs.clear();
  lane->pending_rpcs.shrink_to_fit();
  lane->env->fault_injector().set_armed(fault_armed_);
}

void FleetSimulation::AdvanceLane(Lane* lane, SimTime epoch_end) {
  if (!lane->status.ok()) return;
  while (lane->next_event < lane->day_events.size() &&
         lane->day_events[lane->next_event].time < epoch_end) {
    const workload::QueryEvent& event = lane->day_events[lane->next_event];
    Status st = lane->driver->AdvanceTo(event.time);
    if (st.ok()) st = lane->driver->Execute(event);
    if (!st.ok()) {
      lane->status = std::move(st);
      return;
    }
    ++lane->next_event;
    ++lane->executed;
  }
  Status st = lane->driver->AdvanceTo(epoch_end);
  if (!st.ok()) lane->status = std::move(st);
}

int64_t FleetSimulation::PublishLaneDeltas(Lane* lane, SimTime epoch) {
  const int64_t tally = lane->env->dfs().RpcsInHour(epoch);
  const int64_t already =
      lane->spill_hour == epoch ? lane->spill_amount : 0;
  epoch_load_.AddDelta(epoch, tally - already);
  // Work finalizing exactly at the epoch boundary posts its RPCs into
  // the *next* hour's bucket; publish that spillover now and remember it
  // so the next touch of this lane does not count it twice.
  const SimTime next_hour = epoch + kHour;
  const int64_t spill = lane->env->dfs().RpcsInHour(next_hour);
  if (spill > 0) epoch_load_.AddDelta(next_hour, spill);
  lane->spill_hour = next_hour;
  lane->spill_amount = spill;
  return tally;
}

void FleetSimulation::MaybeArm(Lane* lane, SimTime at) {
  if (lane->next_wake >= 0 && lane->next_wake <= at) return;
  lane->next_wake = at;
  wake_queue_.ScheduleCompaction(at, lane->index);
}

void FleetSimulation::FinalizeLane(Lane* lane, SimTime end_time,
                                   bool keep_env) {
  if (lane->finalized || !lane->status.ok()) return;
  AdvanceLane(lane, end_time);
  if (!lane->status.ok()) return;
  lane->driver->FinishRun();
  lane->total_files = lane->env->TotalFileCount();
  lane->open_calls = lane->env->dfs().AggregateStats().open_calls;
  lane->faults_injected = lane->env->fault_injector().total_injected();
  if (options_.check_invariants) {
    const fault::InvariantChecker checker;
    if (Status s = checker.CheckOrFail(lane->env->catalog()); !s.ok()) {
      lane->status = Status::Internal("after final flush, lane " + lane->db +
                                      ": " + s.message());
      return;
    }
  }
  lane->finalized = true;
  if (!keep_env) {
    // Transient finalization: keep the recorder and trace for the merge,
    // drop the heavy environment so peak residency stays bounded.
    lane->service.reset();
    lane->driver.reset();
    lane->env.reset();
  }
}

SimTime FleetSimulation::EffectiveRetentionBound(Lane* lane) const {
  const SimTime next_tick = lane->driver->next_retention();
  if (next_tick < 0) return -1;  // retention disabled
  const SimTime interval = options_.driver.retention_interval;
  // Earliest instant any snapshot of this lane becomes expirable.
  // ExpireSnapshots (keep_last=1) retains a snapshot iff it is the
  // lineage tail, the current snapshot, or `timestamp >= now -
  // retention`; so snapshot i (i < size-1, id != current) first expires
  // at `timestamp + retention + 1`. While the lane is evicted its
  // catalog is frozen — no new snapshot can appear before a wake — so
  // this threshold can only be conservative.
  SimTime threshold = -1;
  for (const std::string& name : lane->env->catalog().ListAllTables()) {
    auto metadata = lane->env->catalog().LoadTable(name);
    if (!metadata.ok()) continue;  // surfaced by the next real operation
    const auto& snapshots = (*metadata)->snapshots();
    if (snapshots.size() < 2) continue;
    const SimTime retention =
        lane->env->control_plane().GetPolicy(name).snapshot_retention;
    for (size_t i = 0; i + 1 < snapshots.size(); ++i) {
      if (snapshots[i].snapshot_id == (*metadata)->current_snapshot_id()) {
        continue;
      }
      const SimTime t = snapshots[i].timestamp + retention;
      if (threshold < 0 || t < threshold) threshold = t;
      break;  // snapshots are chronological; later ones expire later
    }
  }
  if (threshold < 0) return -1;  // nothing can ever expire while frozen
  // First tick of the cadence {next_tick, next_tick+interval, ...} at or
  // after threshold+1. Every tick before it observes an empty expired
  // set and commits nothing — a provable no-op the restore replays.
  SimTime tick = next_tick;
  if (tick <= threshold) {
    tick += ((threshold + 1 - tick + interval - 1) / interval) * interval;
  }
  return tick;
}

bool FleetSimulation::TryRetireLane(Lane* lane, SimTime now, SimTime end_time,
                                    SimTime* next_due) {
  // The lane's next forced residency: its next workload event and the
  // first retention tick that could actually mutate state. This
  // deliberately replaces the driver's hourly retention arming — the
  // skipped ticks are no-ops, which is exactly what makes eviction pay
  // off.
  SimTime next = -1;
  if (lane->next_event < lane->day_events.size()) {
    next = lane->day_events[lane->next_event].time;
  }
  const SimTime retention = EffectiveRetentionBound(lane);
  if (retention >= 0 && (next < 0 || retention < next)) next = retention;
  if (next_due != nullptr) *next_due = next;

  // Nothing can ever wake this lane again before the run ends: no
  // workload event or onboard load left on any remaining day
  // (`last_event_time` covers the full horizon — `next` alone only
  // drains the current day) and no retention tick that could mutate
  // state. Checkpointing it would buy a guaranteed wrap-up restore (the
  // single largest eviction cost at fleet scale — most lanes end the
  // replay cold). Its finalization result is already determined — the
  // only replay left is metric samples, which are value-stable while a
  // lane dozes — so retire it on the spot: same computation wrap-up
  // would run, no blob, no restore.
  if (!((next < 0 || next >= end_time) && lane->last_event_time < now)) {
    return false;
  }
  FinalizeLane(lane, end_time, /*keep_env=*/false);
  // On a finalization error the env survives FinalizeLane; drop it
  // anyway so residency accounting stays truthful (the lane's status
  // carries the failure to collection).
  lane->service.reset();
  lane->driver.reset();
  lane->env.reset();
  --resident_lanes_;
  ++lanes_retired_;
  lane->next_wake = -1;
  if (options_.on_lane_residency) {
    options_.on_lane_residency(lane->db, resident_lanes_,
                               peak_resident_lanes_);
  }
  return true;
}

Status FleetSimulation::EvictLane(Lane* lane, SimTime now,
                                  SimTime end_time) {
  // Retire-or-checkpoint: the replacement wake is computed *before*
  // dropping the driver.
  SimTime next = -1;
  if (TryRetireLane(lane, now, end_time, &next)) return Status::OK();

  auto blob = SaveLaneState(lane->env.get(), lane->driver.get());
  if (!blob.ok()) return blob.status();
  lane->checkpoint = std::move(*blob);
  lane->service.reset();
  lane->driver.reset();
  lane->env.reset();
  lane->evicted = true;
  --resident_lanes_;
  ++lanes_evicted_;
  checkpoint_bytes_now_ += static_cast<int64_t>(lane->checkpoint.size());
  checkpoint_bytes_peak_ =
      std::max(checkpoint_bytes_peak_, checkpoint_bytes_now_);
  if (options_.on_lane_residency) {
    options_.on_lane_residency(lane->db, resident_lanes_,
                               peak_resident_lanes_);
  }
  // Authoritative wake replacement: unlike MaybeArm this may *loosen*
  // the arming (the hourly tick entries already queued become stale
  // tombstones, skipped on pop).
  lane->next_wake = next >= 0 && next < end_time ? next : -1;
  if (lane->next_wake >= 0) {
    wake_queue_.ScheduleCompaction(lane->next_wake, lane->index);
  }
  return Status::OK();
}

Status FleetSimulation::EvictColdLanes(SimTime now, SimTime end_time) {
  // Eviction requires a quiescent driver (a PendingCompaction holds an
  // open lst::Transaction — not checkpointable) and no per-lane service
  // (a preset wakes every lane at the trigger cadence anyway, so
  // dehydration would thrash).
  if (options_.preset) return Status::OK();
  if (options_.max_resident_lanes <= 0 && options_.evict_after_idle_hours <= 0) {
    return Status::OK();
  }
  std::vector<Lane*> candidates;
  for (const auto& lane : lanes_) {
    if (!lane->hydrated || lane->evicted || lane->finalized ||
        lane->env == nullptr || !lane->status.ok() ||
        !lane->driver->Quiescent()) {
      continue;
    }
    // Idle rule, with a near-wake guard: a lane that has been idle past
    // the threshold but is due to wake *within* it would restore almost
    // immediately — dehydrating it pays a full save+restore cycle for
    // one window of residency. Daily writers live exactly in this
    // regime (idle 23–24 h, due again within 24 h), so without the
    // guard every hot lane thrashes once per simulated day.
    const SimTime idle_window =
        static_cast<SimTime>(options_.evict_after_idle_hours) * kHour;
    if (options_.evict_after_idle_hours > 0 &&
        now - lane->last_active >= idle_window &&
        (lane->next_wake < 0 || lane->next_wake - now >= idle_window)) {
      AUTOCOMP_RETURN_NOT_OK(EvictLane(lane.get(), now, end_time));
      continue;
    }
    candidates.push_back(lane.get());
  }
  if (options_.max_resident_lanes <= 0 ||
      resident_lanes_ <= options_.max_resident_lanes) {
    return Status::OK();
  }
  // LRU by next-due distance: evict the lanes woken furthest in the
  // future first, unarmed lanes (nothing scheduled at all) before any
  // armed one; ties broken by lane index for determinism.
  std::sort(candidates.begin(), candidates.end(), [](Lane* a, Lane* b) {
    const bool a_armed = a->next_wake >= 0;
    const bool b_armed = b->next_wake >= 0;
    if (a_armed != b_armed) return !a_armed;
    if (a_armed && a->next_wake != b->next_wake) {
      return a->next_wake > b->next_wake;
    }
    return a->index < b->index;
  });
  for (Lane* lane : candidates) {
    if (resident_lanes_ <= options_.max_resident_lanes) break;
    AUTOCOMP_RETURN_NOT_OK(EvictLane(lane, now, end_time));
  }
  return Status::OK();
}

void FleetSimulation::PrepareRestore(Lane* lane) {
  ++resident_lanes_;
  peak_resident_lanes_ = std::max(peak_resident_lanes_, resident_lanes_);
  ++lanes_restored_;
  checkpoint_bytes_now_ -= static_cast<int64_t>(lane->checkpoint.size());
  if (options_.on_lane_residency) {
    options_.on_lane_residency(lane->db, resident_lanes_,
                               peak_resident_lanes_);
  }
}

void FleetSimulation::RestoreLane(Lane* lane) {
  assert(lane->evicted && lane->env == nullptr);
  const auto start = std::chrono::steady_clock::now();
  lane->env = std::make_unique<SimEnvironment>(LaneEnvironmentOptions(lane));
  lane->env->dfs().SetEpochLoadView(&epoch_load_);
  lane->driver = std::make_unique<EventDriver>(lane->env.get(),
                                               &lane->metrics,
                                               LaneDriverOptions());
  Status st = RestoreLaneState(lane->checkpoint, lane->env.get(),
                               lane->driver.get());
  if (!st.ok() && lane->status.ok()) {
    lane->status = Status::Internal("restoring lane " + lane->db + ": " +
                                    st.message());
  }
  lane->checkpoint.clear();
  lane->checkpoint.shrink_to_fit();
  lane->evicted = false;
  lane->env->fault_injector().set_armed(fault_armed_);
  lane->restore_host_ms +=
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - start)
          .count();
}

Result<FleetSimResult> FleetSimulation::Run() {
  if (ran_) {
    return Status::FailedPrecondition("FleetSimulation::Run called twice");
  }
  ran_ = true;
  const auto host_start = std::chrono::steady_clock::now();

  const bool active = options_.lane_mode == LaneMode::kActive;
  // A Chrome export needs one track per lane, so every lane hydrates up
  // front; active scheduling (and its delta barriers) still applies.
  const bool hydrate_all = !active || !options_.trace_out.empty();

  // --- Lane descriptors (one per tenant database, in database order). ---
  std::map<std::string, int> lane_by_db;
  char db_buf[32];
  for (int d = 0; d < options_.fleet.num_databases; ++d) {
    std::snprintf(db_buf, sizeof(db_buf), "tenant%03d", d);
    auto lane = std::make_unique<Lane>();
    lane->db = db_buf;
    lane->index = static_cast<int>(lanes_.size());
    lane->shard = ShardOf(lane->db, options_.shards);
    lane_by_db.emplace(lane->db, lane->index);
    lanes_.push_back(std::move(lane));
  }
  shard_lanes_.assign(static_cast<size_t>(options_.shards), {});
  for (const auto& lane : lanes_) {
    shard_lanes_[static_cast<size_t>(lane->shard)].push_back(lane->index);
  }

  // --- Plan the initial fleet load (serial; the generator's rng is one
  // shared sequence) and queue it on the lanes. ---
  workload::FleetWorkload fleet(options_.fleet);
  const format::ColumnarFileModel format(options_.env.engine.format_options);
  const auto queue_op = [&](workload::FleetWorkload::TableOp&& op) {
    const auto it = lane_by_db.find(op.db);
    assert(it != lane_by_db.end());
    Lane* lane = lanes_[static_cast<size_t>(it->second)].get();
    const int64_t planned = engine::PlannedFileCount(
        op.load.logical_bytes, op.load.partitions.size(), op.load.profile,
        format);
    pending_rpcs_by_hour_[(op.at / kHour) * kHour] += planned;
    lane->pending_rpcs.push_back(planned);
    lane->pending.push_back(std::move(op));
  };
  for (workload::FleetWorkload::TableOp& op : fleet.PlanSetup(0)) {
    queue_op(std::move(op));
  }

  // Early-retirement horizon: with eviction on, scan the full workload
  // plan once so each lane knows the last instant anything can touch it
  // — a daily event or an onboarded table. Both generators fork per-day
  // RNGs, but PlanOnboard registers the new tables it draws (EventsForDay
  // must be able to target them), so the pre-scan runs on a *throwaway*
  // workload instance that replays the exact PlanSetup → per-day
  // PlanOnboard → EventsForDay sequence of the day loop below; the live
  // `fleet` draws nothing here.
  if (active && !options_.preset &&
      (options_.max_resident_lanes > 0 ||
       options_.evict_after_idle_hours > 0)) {
    workload::FleetWorkload horizon(options_.fleet);
    horizon.PlanSetup(0);
    const auto touch = [&](const std::string& db, SimTime at) {
      const auto it = lane_by_db.find(db);
      if (it == lane_by_db.end()) return;
      Lane* lane = lanes_[static_cast<size_t>(it->second)].get();
      lane->last_event_time = std::max(lane->last_event_time, at);
    };
    for (int day = 0; day < options_.days; ++day) {
      const SimTime day_start = static_cast<SimTime>(day) * kDay;
      for (const workload::FleetWorkload::TableOp& op :
           horizon.PlanOnboard(day, day_start)) {
        touch(op.db, op.at);
      }
      for (const workload::QueryEvent& event : horizon.EventsForDay(day)) {
        touch(workload::FleetWorkload::DatabaseOf(event), event.time);
      }
    }
  }

  if (hydrate_all) {
    for (const auto& lane : lanes_) {
      PrepareHydration(lane.get(), 0);
      HydrateLane(lane.get());
      AUTOCOMP_RETURN_NOT_OK(lane->status);
    }
  }
  fault_armed_ = true;
  for (const auto& lane : lanes_) {
    if (lane->hydrated) lane->env->fault_injector().set_armed(true);
  }
  if (active) {
    // Initial wake-ups: the control loop (when present) must observe
    // every lane at the trigger cadence; hydrated lanes also wake for
    // retention / service / compaction boundaries. Unhydrated lanes are
    // otherwise passive until their first event — their queued loads
    // feed the barriers through the planned estimates, and their
    // deferred retention runs are no-ops (single-snapshot tables expire
    // nothing), so nothing can happen on them before an event does.
    for (const auto& lane : lanes_) {
      if (options_.preset) MaybeArm(lane.get(), options_.preset->first_trigger);
      if (lane->hydrated) {
        if (const auto bound = lane->driver->NextActivityBound()) {
          MaybeArm(lane.get(), *bound);
        }
      }
    }
  }
  FleetSimResult result;
  result.setup_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - host_start)
          .count();

  // --- Lockstep hour epochs. ---
  const SimTime end_time = static_cast<SimTime>(options_.days) * kDay;
  std::vector<int> due;  // lanes advancing this epoch, by lane index
  std::vector<std::vector<int>> due_by_shard(
      static_cast<size_t>(options_.shards));
  for (SimTime epoch = 0; epoch < end_time; epoch += kHour) {
    if (epoch % kDay == 0) {
      // Day boundary: onboard the day's new tables and deal this day's
      // events out to lanes. Both are serial — the workload generator
      // draws from one sequence.
      const int day = static_cast<int>(epoch / kDay);
      for (workload::FleetWorkload::TableOp& op :
           fleet.PlanOnboard(day, epoch)) {
        Lane* lane =
            lanes_[static_cast<size_t>(lane_by_db.at(op.db))].get();
        if (lane->hydrated) {
          if (lane->evicted) {
            // The onboard op needs a live catalog right now (serial
            // section): restore before materializing.
            PrepareRestore(lane);
            RestoreLane(lane);
            AUTOCOMP_RETURN_NOT_OK(lane->status);
          }
          // Materialize immediately (serial section), injector paused as
          // the eager path's onboarding sections were. The catch-up
          // advance runs the lane's clock to the boundary first, so
          // creation timestamps match the eager replay exactly.
          lane->env->fault_injector().set_armed(false);
          Status st = lane->driver->AdvanceTo(epoch);
          if (st.ok()) {
            st = workload::FleetWorkload::Materialize(
                TargetsOf(lane->env.get()), op);
          }
          lane->env->fault_injector().set_armed(fault_armed_);
          AUTOCOMP_RETURN_NOT_OK(st);
          // The load's RPCs just landed in this epoch's bucket; make the
          // lane due now so the barrier publishes them this hour, as the
          // eager tally did.
          if (active) MaybeArm(lane, epoch);
        } else {
          queue_op(std::move(op));
        }
      }
      for (const auto& lane : lanes_) {
        assert(lane->next_event == lane->day_events.size());
        lane->day_events.clear();
        lane->next_event = 0;
      }
      for (workload::QueryEvent& event : fleet.EventsForDay(day)) {
        const auto it = lane_by_db.find(workload::FleetWorkload::DatabaseOf(
            event));
        if (it == lane_by_db.end()) continue;  // not a lane table
        lanes_[static_cast<size_t>(it->second)]->day_events.push_back(
            std::move(event));
      }
      for (const auto& lane : lanes_) {
        if (lane->day_events.empty()) continue;
        lane->ever_had_events = true;
        if (active) MaybeArm(lane.get(), lane->day_events.front().time);
      }
    }

    // Collect this epoch's due lanes. kActive: pop the fleet wake queue
    // (dropping stale tombstones). kAdvanceAll: everything is due, every
    // epoch.
    const SimTime epoch_end = epoch + kHour;
    due.clear();
    if (active) {
      // The cutoff is *inclusive* of epoch_end: the eager reference's
      // AdvanceTo(epoch_end) processes boundaries landing exactly on the
      // epoch edge within this epoch — before this hour's barrier
      // publishes — so a lane armed right on the edge must advance now,
      // not next epoch (its timeout draws would see a newer load view).
      // An *event* exactly on the edge still executes next epoch
      // (AdvanceLane only runs events strictly before epoch_end); the
      // lane just re-arms at the same time and wakes again.
      while (const auto entry = wake_queue_.PopCompactionDue(epoch_end)) {
        Lane* lane = lanes_[static_cast<size_t>(entry->table)].get();
        if (lane->next_wake != entry->time) continue;  // superseded
        lane->next_wake = -1;
        due.push_back(lane->index);
      }
      std::sort(due.begin(), due.end());
    } else {
      for (const auto& lane : lanes_) due.push_back(lane->index);
    }

    // Advance the due lanes to the end of the epoch, sharded. Lanes are
    // mutually independent here: the epoch load view is frozen, and each
    // lane's timeout draws are counter-based (lane seed, path, index) —
    // so the set can be processed in bounded *waves*. With the evictor
    // on, mass wakes (retention ticks cluster at day boundaries, so
    // hundreds of dozing lanes can restore in one epoch) would otherwise
    // all be resident simultaneously before the post-epoch sweep; each
    // wave instead retires its own done lanes before the next wave
    // hydrates, capping the transient above the steady residency at the
    // wave size. Serial bookkeeping (Prepare*, barrier deltas, retire)
    // brackets the parallel advance of each wave.
    const bool evictor_on =
        active && !options_.preset &&
        (options_.max_resident_lanes > 0 ||
         options_.evict_after_idle_hours > 0);
    const size_t wave_size =
        evictor_on ? kEvictWaveSize : std::max<size_t>(due.size(), 1);
    for (size_t wave_begin = 0; wave_begin < due.size();
         wave_begin += wave_size) {
      const size_t wave_end = std::min(due.size(), wave_begin + wave_size);
      for (size_t i = wave_begin; i < wave_end; ++i) {
        Lane* lane = lanes_[static_cast<size_t>(due[i])].get();
        if (!lane->hydrated) {
          PrepareHydration(lane, epoch);
        } else if (lane->evicted) {
          PrepareRestore(lane);
        }
      }
      for (auto& shard : due_by_shard) shard.clear();
      for (size_t i = wave_begin; i < wave_end; ++i) {
        const int lane_index = due[i];
        due_by_shard[static_cast<size_t>(
                         lanes_[static_cast<size_t>(lane_index)]->shard)]
            .push_back(lane_index);
      }
      const auto advance_shard = [&](int64_t s) {
        for (const int lane_index : due_by_shard[static_cast<size_t>(s)]) {
          Lane* lane = lanes_[static_cast<size_t>(lane_index)].get();
          if (!lane->hydrated) {
            HydrateLane(lane);
          } else if (lane->evicted) {
            RestoreLane(lane);
          }
          AdvanceLane(lane, epoch_end);
        }
      };
      if (options_.sharded && options_.pool != nullptr) {
        options_.pool->ParallelFor(static_cast<int64_t>(due_by_shard.size()),
                                   advance_shard);
      } else {
        for (int64_t s = 0; s < static_cast<int64_t>(due_by_shard.size());
             ++s) {
          advance_shard(s);
        }
      }

      // Barrier bookkeeping for the wave: fold the touched lanes' tally
      // deltas (the hour itself is published once, after all waves), and
      // retire lanes that can never wake again rather than carrying them
      // to the sweep. O(touched), not O(lanes).
      for (size_t i = wave_begin; i < wave_end; ++i) {
        Lane* lane = lanes_[static_cast<size_t>(due[i])].get();
        AUTOCOMP_RETURN_NOT_OK(lane->status);
        const int64_t tally = PublishLaneDeltas(lane, epoch);
        // Activity signal for the idle evictor: RPCs issued or work
        // still inflight. A wake that only replayed no-op ticks leaves
        // last_active alone, so perpetual hourly retention arming cannot
        // keep a lane artificially "hot".
        if (tally != 0 || !lane->driver->Quiescent()) {
          lane->last_active = epoch_end;
        }
        if (active) {
          // The horizon gates first: they are plain compares and rule
          // out every lane with workload left or a known future blocking
          // tick, so the catalog scan inside TryRetireLane only runs for
          // genuine retire candidates.
          // The blocking-tick compare is *inclusive* of epoch_end for
          // the same reason the wake cutoff is: a tick landing exactly
          // on the epoch edge has already executed by now.
          if (evictor_on && lane->last_event_time < epoch_end &&
              lane->retire_blocked_until <= epoch_end &&
              lane->driver->Quiescent()) {
            SimTime next = -1;
            if (TryRetireLane(lane, epoch_end, end_time, &next)) {
              continue;  // finalized: nothing left to arm
            }
            lane->retire_blocked_until = next;
          }
          SimTime next = -1;
          if (lane->next_event < lane->day_events.size()) {
            next = lane->day_events[lane->next_event].time;
          }
          if (const auto bound = lane->driver->NextActivityBound()) {
            if (next < 0 || *bound < next) next = *bound;
          }
          if (next >= 0 && next < end_time) MaybeArm(lane, next);
        }
      }
    }
    int64_t planned_this_hour = 0;
    if (const auto it = pending_rpcs_by_hour_.find(epoch);
        it != pending_rpcs_by_hour_.end()) {
      planned_this_hour = it->second;
      pending_rpcs_by_hour_.erase(it);
    }
    epoch_load_.PublishAccumulated(epoch, planned_this_hour);

    // Safety oracle under fault injection: no hydrated lane may have
    // lost or duplicated a live file, broken its snapshot lineage, or
    // drifted its quota/object accounting — checked after EVERY epoch so
    // a violation is caught at the hour it happened, not at the end.
    // (Cold lanes have no metadata to audit yet; they are audited at
    // their finalization.)
    if (options_.check_invariants) {
      const fault::InvariantChecker checker;
      for (const auto& lane : lanes_) {
        // Evicted lanes have no live catalog; their state is frozen, so
        // the audit that passed before eviction still holds — they are
        // re-audited on restore paths and at finalization.
        if (!lane->hydrated || lane->env == nullptr) continue;
        if (Status s = checker.CheckOrFail(lane->env->catalog()); !s.ok()) {
          return Status::Internal("after epoch hour " +
                                  std::to_string(epoch / kHour) + ", lane " +
                                  lane->db + ": " + s.message());
        }
      }
    }

    // Post-barrier eviction pass (the tentpole's bounded-residency
    // budget): dehydrate idle lanes, then enforce the LRU budget.
    if (active) AUTOCOMP_RETURN_NOT_OK(EvictColdLanes(epoch_end, end_time));
  }

  // --- Wrap up. Resident lanes catch up to end_time and finish; cold
  // lanes with queued loads are served by one transient replay per
  // distinct planned-load signature (environment destroyed after its
  // totals are captured — at most one transient lane per shard is
  // resident at a time); truly idle lanes (no tables, no events, ever)
  // share one ghost replay of an empty lane, whose metric stream is
  // identical to each of theirs by construction. Ghosting is disabled
  // under a preset: the control loop gives even empty lanes per-lane
  // pipeline telemetry.
  const bool can_ghost = active && !options_.preset;

  // Cold-lane replay sharing: a never-touched lane's finalization replay
  // is a pure function of its planned loads' (hour, CreateFile count,
  // policy) signature — the lane's seed only jitters file *sizes*, and
  // no metric, total, or RPC visible after the epochs ever reads a size
  // from an untouched table. One transient replay per distinct signature
  // stands in for every cold lane that shares it (the same argument as
  // the ghost replay, extended to lanes that own tables), which turns
  // wrap-up cost from O(fleet) environment builds into O(activity +
  // distinct signatures). Disabled whenever a per-lane artifact could
  // differ: fault injection (per-lane draw streams), tracing (per-lane
  // tracks/digests), invariant audits (must inspect every catalog).
  const bool tracing_on =
      options_.trace_armed || options_.trace_level != obs::TraceLevel::kOff;
  const bool can_share = can_ghost && !options_.env.fault.enabled &&
                         !tracing_on && !options_.check_invariants;
  std::vector<int> rep_of(lanes_.size(), -1);
  if (can_share) {
    std::map<std::string, int> reps_by_signature;
    for (size_t i = 0; i < lanes_.size(); ++i) {
      const Lane& lane = *lanes_[i];
      if (lane.hydrated || lane.ever_had_events || lane.pending.empty()) {
        continue;
      }
      std::string signature;
      for (size_t k = 0; k < lane.pending.size(); ++k) {
        signature += std::to_string(lane.pending[k].at);
        signature += ':';
        signature += std::to_string(lane.pending_rpcs[k]);
        signature += lane.pending[k].set_policy ? "p;" : ";";
      }
      const auto [it, inserted] =
          reps_by_signature.emplace(std::move(signature), static_cast<int>(i));
      if (!inserted) rep_of[i] = it->second;
    }
  }
  const auto shares_replay = [&](int lane_index) {
    return rep_of[static_cast<size_t>(lane_index)] >= 0;
  };

  int64_t shards_with_cold = 0;
  for (const auto& shard : shard_lanes_) {
    for (const int lane_index : shard) {
      const Lane& lane = *lanes_[static_cast<size_t>(lane_index)];
      // Evicted lanes restore transiently at wrap-up (finalized then
      // dropped, one at a time per shard) — same peak contribution as a
      // cold transient hydration.
      const bool cold_transient =
          !lane.hydrated && !shares_replay(lane_index) &&
          !(can_ghost && lane.pending.empty() && !lane.ever_had_events);
      if (!cold_transient && !lane.evicted) continue;
      ++shards_with_cold;
      break;
    }
  }
  // Serial restore bookkeeping for the parallel finalization below.
  for (const auto& lane : lanes_) {
    if (!lane->evicted) continue;
    ++lanes_restored_;
    checkpoint_bytes_now_ -= static_cast<int64_t>(lane->checkpoint.size());
  }
  peak_resident_lanes_ =
      std::max(peak_resident_lanes_, resident_lanes_ + shards_with_cold);
  int64_t transient_hydrations = 0;
  const auto finalize_shard = [&](int64_t s) {
    for (const int lane_index : shard_lanes_[static_cast<size_t>(s)]) {
      Lane* lane = lanes_[static_cast<size_t>(lane_index)].get();
      if (!lane->hydrated) {
        if (shares_replay(lane_index)) continue;  // representative stands in
        if (can_ghost && lane->pending.empty() && !lane->ever_had_events) {
          continue;  // served by the ghost
        }
        HydrateLane(lane);
        FinalizeLane(lane, end_time, /*keep_env=*/false);
        continue;
      }
      if (lane->evicted) RestoreLane(lane);
      FinalizeLane(lane, end_time, /*keep_env=*/false);
    }
  };
  for (size_t i = 0; i < lanes_.size(); ++i) {
    const Lane& lane = *lanes_[i];
    if (!lane.hydrated && rep_of[i] < 0 &&
        !(can_ghost && lane.pending.empty() && !lane.ever_had_events)) {
      ++transient_hydrations;
    }
  }
  if (options_.sharded && options_.pool != nullptr) {
    options_.pool->ParallelFor(static_cast<int64_t>(shard_lanes_.size()),
                               finalize_shard);
  } else {
    for (int64_t s = 0; s < static_cast<int64_t>(shard_lanes_.size()); ++s) {
      finalize_shard(s);
    }
  }
  lanes_hydrated_ += transient_hydrations;

  // Ghost replay: one empty environment advanced over the whole horizon.
  // Its recorder stands in for every idle lane in the merge — the eager
  // path's idle lanes record exactly this stream (file-count samples of
  // an empty deployment), lane for lane.
  MetricsRecorder ghost_metrics;
  bool ghost_built = false;
  const auto ghost_recorder = [&]() -> const MetricsRecorder* {
    if (!ghost_built) {
      ghost_built = true;
      EnvironmentOptions env = options_.env;
      env.seed = options_.seed;  // never drawn from: no tables, no events
      env.engine.writer_id = 1;
      env.runner_id = 1;
      SimEnvironment ghost_env(env);
      ghost_env.dfs().SetEpochLoadView(&epoch_load_);
      EventDriver ghost_driver(&ghost_env, &ghost_metrics, options_.driver);
      if (Status st = ghost_driver.AdvanceTo(end_time); !st.ok()) {
        LOG_WARN << "ghost lane advance failed: " << st;
      }
      ghost_driver.FinishRun();
    }
    return &ghost_metrics;
  };

  // --- Merge in lane order (deterministic), folding trace digests
  // incrementally as we go. ---
  std::vector<const MetricsRecorder*> recorders;
  recorders.reserve(lanes_.size());
  std::vector<const obs::TraceRecorder*> tracks;
  result.lanes_total = static_cast<int64_t>(lanes_.size());
  for (size_t i = 0; i < lanes_.size(); ++i) {
    const auto& lane = lanes_[i];
    if (rep_of[i] >= 0) {
      // Cold lane sharing a representative's replay: identical metric
      // stream and totals by construction (same planned-load signature).
      const Lane* rep = lanes_[static_cast<size_t>(rep_of[i])].get();
      AUTOCOMP_RETURN_NOT_OK(rep->status);
      ++result.lanes_ghosted;
      result.total_files += rep->total_files;
      result.open_calls += rep->open_calls;
      recorders.push_back(&rep->metrics);
      continue;
    }
    if (!lane->hydrated) {
      ++result.lanes_ghosted;
      recorders.push_back(ghost_recorder());
      continue;
    }
    AUTOCOMP_RETURN_NOT_OK(lane->status);
    result.events_executed += lane->executed;
    result.total_files += lane->total_files;
    result.open_calls += lane->open_calls;
    result.faults_injected += lane->faults_injected;
    result.restore_ms += lane->restore_host_ms;
    recorders.push_back(&lane->metrics);
    if (lane->trace != nullptr) {
      result.trace_digest.Combine(lane->trace->digest());
      tracks.push_back(lane->trace.get());
    }
  }
  result.metrics = MetricsRecorder::Merge(recorders);
  result.lanes_hydrated = lanes_hydrated_;
  result.peak_resident_lanes = peak_resident_lanes_;
  result.lanes_evicted = lanes_evicted_;
  result.lanes_restored = lanes_restored_;
  result.lanes_retired = lanes_retired_;
  result.checkpoint_bytes = checkpoint_bytes_peak_;

  if (!tracks.empty() && !options_.trace_out.empty()) {
    AUTOCOMP_RETURN_NOT_OK(obs::WriteChromeTrace(tracks, options_.trace_out));
  }
  return result;
}

}  // namespace autocomp::sim
