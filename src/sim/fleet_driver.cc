#include "sim/fleet_driver.h"

#include <cassert>
#include <cstdio>
#include <map>
#include <utility>

#include "common/counter_rng.h"
#include "common/logging.h"
#include "fault/invariant_checker.h"
#include "obs/trace_export.h"

namespace autocomp::sim {

/// One tenant database's complete simulated deployment. Everything a
/// lane touches while advancing — clock, storage, catalog, clusters,
/// engine, recorder, driver — lives here, so lanes share no mutable
/// state and shards can advance them concurrently. The only cross-lane
/// read is the EpochLoadModel, which is immutable between barriers.
struct FleetSimulation::Lane {
  std::string db;
  /// Constructed before the environment (which wires it through the
  /// stack); all of this lane's spans land here, on its own timeline.
  std::unique_ptr<obs::TraceRecorder> trace;
  std::unique_ptr<SimEnvironment> env;
  MetricsRecorder metrics;
  /// Per-lane AutoComp control loop (only with FleetSimOptions::preset).
  std::unique_ptr<core::AutoCompService> service;
  std::unique_ptr<EventDriver> driver;
  /// This day's events for this lane, time-sorted; `next_event` is the
  /// cursor of the first not-yet-executed one.
  std::vector<workload::QueryEvent> day_events;
  size_t next_event = 0;
  int64_t executed = 0;
  /// First failure while advancing (surfaced at the next barrier; the
  /// parallel section itself never propagates errors across threads).
  Status status = Status::OK();
};

int FleetSimulation::ShardOf(const std::string& db, int shards) {
  assert(shards > 0);
  return static_cast<int>(CounterRng::HashString(db) %
                          static_cast<uint64_t>(shards));
}

FleetSimulation::FleetSimulation(FleetSimOptions options)
    : options_(std::move(options)), epoch_load_(options_.env.namenode) {
  if (options_.shards < 1) options_.shards = 1;
  if (options_.days < 1) options_.days = 1;
}

FleetSimulation::~FleetSimulation() = default;

void FleetSimulation::AdvanceLane(Lane* lane, SimTime epoch_end) {
  if (!lane->status.ok()) return;
  while (lane->next_event < lane->day_events.size() &&
         lane->day_events[lane->next_event].time < epoch_end) {
    const workload::QueryEvent& event = lane->day_events[lane->next_event];
    Status st = lane->driver->AdvanceTo(event.time);
    if (st.ok()) st = lane->driver->Execute(event);
    if (!st.ok()) {
      lane->status = std::move(st);
      return;
    }
    ++lane->next_event;
    ++lane->executed;
  }
  Status st = lane->driver->AdvanceTo(epoch_end);
  if (!st.ok()) lane->status = std::move(st);
}

Result<FleetSimResult> FleetSimulation::Run() {
  if (ran_) {
    return Status::FailedPrecondition("FleetSimulation::Run called twice");
  }
  ran_ = true;

  // --- Build lanes (one per tenant database, in database order). ---
  std::map<std::string, int> lane_by_db;
  char db_buf[32];
  for (int d = 0; d < options_.fleet.num_databases; ++d) {
    std::snprintf(db_buf, sizeof(db_buf), "tenant%03d", d);
    auto lane = std::make_unique<Lane>();
    lane->db = db_buf;
    EnvironmentOptions env = options_.env;
    // Per-lane seed is a pure function of (master seed, database name):
    // independent of lane enumeration, shard count, and pool size.
    env.seed = CounterRng::At(options_.seed, CounterRng::HashString(lane->db),
                              /*index=*/0);
    // Pin writer/runner ids so file names do not depend on how many
    // engines this *process* constructed before (each lane has its own
    // catalog, so ids need not be unique across lanes).
    env.engine.writer_id = 1;
    env.runner_id = 1;
    // Per-lane fault seed, same construction as the environment seed:
    // injections are a pure function of (fault seed, database name, the
    // lane's serial hit counts), never of shard count or pool size.
    if (env.fault.enabled) {
      env.fault.seed = CounterRng::At(options_.env.fault.seed,
                                      CounterRng::HashString(lane->db),
                                      /*index=*/1);
    }
    // Lane recorder: built even at level kOff when armed, so every
    // emission site pays its guard (the bench parity configuration).
    const bool tracing =
        options_.trace_armed || options_.trace_level != obs::TraceLevel::kOff;
    if (tracing) {
      obs::TraceRecorder::Options trace_options;
      trace_options.level = options_.trace_level;
      trace_options.lane = lane->db;
      trace_options.capacity = options_.trace_capacity;
      lane->trace = std::make_unique<obs::TraceRecorder>(trace_options);
      env.trace = lane->trace.get();
    }
    lane->env = std::make_unique<SimEnvironment>(env);
    lane->env->dfs().SetEpochLoadView(&epoch_load_);
    lane->driver = std::make_unique<EventDriver>(lane->env.get(),
                                                 &lane->metrics,
                                                 options_.driver);
    if (options_.preset) {
      // Per-lane AutoComp control loop. The lane advances serially (the
      // fleet pool parallelizes shards, never the inside of a lane), so
      // the pipeline runs without its own pool; the lane recorder takes
      // the OODA/decision spans.
      StrategyPreset preset = *options_.preset;
      preset.pool = nullptr;
      preset.trace = lane->trace.get();
      lane->service = MakeMoopService(lane->env.get(), preset);
      lane->driver->AttachService(lane->service.get());
    }
    lane_by_db.emplace(lane->db, static_cast<int>(lanes_.size()));
    lanes_.push_back(std::move(lane));
  }
  shard_lanes_.assign(static_cast<size_t>(options_.shards), {});
  for (size_t i = 0; i < lanes_.size(); ++i) {
    shard_lanes_[static_cast<size_t>(ShardOf(lanes_[i]->db, options_.shards))]
        .push_back(static_cast<int>(i));
  }

  const workload::LaneResolver resolver =
      [&](const std::string& db) -> workload::LaneTargets {
    const auto it = lane_by_db.find(db);
    if (it == lane_by_db.end()) return {};
    Lane& lane = *lanes_[static_cast<size_t>(it->second)];
    return {&lane.env->catalog(), &lane.env->query_engine(),
            &lane.env->control_plane()};
  };

  // Injections pause around scripted data loads: setup and onboarding
  // treat write failures as fatal, so a fault there would kill the run
  // before the measured part starts. Both toggles happen in serial
  // coordinator sections, so the arming boundary is deterministic.
  const auto arm_all = [&](bool armed) {
    for (const auto& lane : lanes_) lane->env->fault_injector().set_armed(armed);
  };

  // --- Initial fleet load (serial; the generator's rng is shared). ---
  workload::FleetWorkload fleet(options_.fleet);
  arm_all(false);
  AUTOCOMP_RETURN_NOT_OK(fleet.SetupSharded(resolver, 0));
  arm_all(true);

  // --- Lockstep hour epochs. ---
  const SimTime end_time = static_cast<SimTime>(options_.days) * kDay;
  for (SimTime epoch = 0; epoch < end_time; epoch += kHour) {
    if (epoch % kDay == 0) {
      // Day boundary (all lane clocks are exactly here): onboard the
      // day's new tables and deal this day's events out to lanes. Both
      // are serial — the workload generator draws from one sequence.
      const int day = static_cast<int>(epoch / kDay);
      arm_all(false);
      AUTOCOMP_RETURN_NOT_OK(
          fleet.OnboardNewTablesSharded(resolver, day, epoch));
      arm_all(true);
      for (const auto& lane : lanes_) {
        assert(lane->next_event == lane->day_events.size());
        lane->day_events.clear();
        lane->next_event = 0;
      }
      for (workload::QueryEvent& event : fleet.EventsForDay(day)) {
        const auto it = lane_by_db.find(workload::FleetWorkload::DatabaseOf(
            event));
        if (it == lane_by_db.end()) continue;  // not a lane table
        lanes_[static_cast<size_t>(it->second)]->day_events.push_back(
            std::move(event));
      }
    }

    // Advance every shard to the end of the epoch. Lanes are mutually
    // independent here: the epoch load view is frozen, and each lane's
    // timeout draws are counter-based (lane seed, path, open index).
    const SimTime epoch_end = epoch + kHour;
    const auto advance_shard = [&](int64_t s) {
      for (const int lane_index : shard_lanes_[static_cast<size_t>(s)]) {
        AdvanceLane(lanes_[static_cast<size_t>(lane_index)].get(), epoch_end);
      }
    };
    if (options_.sharded && options_.pool != nullptr) {
      options_.pool->ParallelFor(static_cast<int64_t>(shard_lanes_.size()),
                                 advance_shard);
    } else {
      for (int64_t s = 0; s < static_cast<int64_t>(shard_lanes_.size()); ++s) {
        advance_shard(s);
      }
    }

    // Barrier: merge per-lane NameNode tallies for the completed hour and
    // publish them — next epoch's timeout probability everywhere.
    int64_t fleet_rpcs = 0;
    for (const auto& lane : lanes_) {
      AUTOCOMP_RETURN_NOT_OK(lane->status);
      fleet_rpcs += lane->env->dfs().RpcsInHour(epoch);
    }
    epoch_load_.PublishHour(epoch, fleet_rpcs);

    // Safety oracle under fault injection: no lane may have lost or
    // duplicated a live file, broken its snapshot lineage, or drifted
    // its quota/object accounting — checked after EVERY epoch so a
    // violation is caught at the hour it happened, not at the end.
    if (options_.check_invariants) {
      const fault::InvariantChecker checker;
      for (const auto& lane : lanes_) {
        if (Status s = checker.CheckOrFail(lane->env->catalog()); !s.ok()) {
          return Status::Internal("after epoch hour " +
                                  std::to_string(epoch / kHour) + ", lane " +
                                  lane->db + ": " + s.message());
        }
      }
    }
  }

  // --- Wrap up: flush inflight work, merge metrics in lane order. ---
  FleetSimResult result;
  std::vector<const MetricsRecorder*> recorders;
  recorders.reserve(lanes_.size());
  for (const auto& lane : lanes_) {
    lane->driver->FinishRun();
    result.events_executed += lane->executed;
    result.total_files += lane->env->TotalFileCount();
    result.open_calls += lane->env->dfs().AggregateStats().open_calls;
    result.faults_injected += lane->env->fault_injector().total_injected();
    recorders.push_back(&lane->metrics);
  }
  if (options_.check_invariants) {
    const fault::InvariantChecker checker;
    for (const auto& lane : lanes_) {
      if (Status s = checker.CheckOrFail(lane->env->catalog()); !s.ok()) {
        return Status::Internal("after final flush, lane " + lane->db + ": " +
                                s.message());
      }
    }
  }
  result.metrics = MetricsRecorder::Merge(recorders);

  // Trace wrap-up: merge lane digests (commutative — lane order cannot
  // matter even in principle) and export the Chrome trace if asked.
  std::vector<const obs::TraceRecorder*> tracks;
  for (const auto& lane : lanes_) {
    if (lane->trace != nullptr) tracks.push_back(lane->trace.get());
  }
  if (!tracks.empty()) {
    result.trace_digest = obs::TraceRecorder::MergeDigests(tracks);
    if (!options_.trace_out.empty()) {
      AUTOCOMP_RETURN_NOT_OK(
          obs::WriteChromeTrace(tracks, options_.trace_out));
    }
  }
  return result;
}

}  // namespace autocomp::sim
