/// \file lane_checkpoint.h
/// \brief Whole-lane checkpoint/restore for the fleet evictor
/// (DESIGN.md §10).
///
/// A fleet lane is one tenant deployment: a SimEnvironment plus the
/// EventDriver running its timeline. SaveLaneState serializes every
/// piece of resumable state — clock time, per-shard NameNode namespace
/// and tallies, catalog metadata/lineage, retention policies, cluster
/// accumulators, engine/runner counters and RNG cursors, fault-injector
/// hit streams, and the driver's timer scalars — into one compact blob.
/// RestoreLaneState replays the blob into a *freshly constructed*
/// environment/driver pair built with the lane's original options, in
/// O(state) instead of O(replay). Restores are bit-exact: a lane that
/// is evicted and restored produces the same metrics, trace digest and
/// RPC stream as one that stayed resident (NFR2).
///
/// Not checkpointed (survive eviction as fleet-driver Lane members):
/// the MetricsRecorder, the TraceRecorder, per-lane workload events and
/// spill bookkeeping. Not checkpointable: inflight compactions — the
/// caller must only evict quiescent drivers (EventDriver::Quiescent).

#pragma once

#include <string>

#include "common/status.h"
#include "sim/driver.h"
#include "sim/environment.h"

namespace autocomp::sim {

/// \brief Serializes a quiescent lane into a compact blob. Fails with
/// Internal if the driver has inflight or queued compactions.
Result<std::string> SaveLaneState(SimEnvironment* env, EventDriver* driver);

/// \brief Restores a blob produced by SaveLaneState into a freshly
/// constructed environment/driver pair (same options the evicted lane
/// was built with; the caller re-wires the epoch-load view and fault
/// arming afterwards). Fails with Internal on a malformed or
/// length-mismatched blob.
Status RestoreLaneState(const std::string& blob, SimEnvironment* env,
                        EventDriver* driver);

}  // namespace autocomp::sim
