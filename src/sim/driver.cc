#include "sim/driver.h"

#include <algorithm>
#include <cassert>
#include <limits>

#include "common/logging.h"
#include "core/policy.h"

namespace autocomp::sim {

EventDriver::EventDriver(SimEnvironment* env, MetricsRecorder* metrics,
                         DriverOptions options)
    : env_(env),
      metrics_(metrics),
      options_(options),
      calendar_([this](int32_t a, int32_t b) {
        return table_ids_.NameLess(a, b);
      }) {
  assert(env_ != nullptr && metrics_ != nullptr);
  next_sample_ = env_->clock().Now();
  next_retention_ = options_.retention_interval > 0
                        ? env_->clock().Now() + options_.retention_interval
                        : -1;
  ids_.files_total = metrics_->Intern("files_total");
  ids_.compaction_commits = metrics_->Intern("compaction_commits");
  ids_.compaction_gbhr = metrics_->Intern("compaction_gbhr");
  ids_.compaction_files_reduced = metrics_->Intern("compaction_files_reduced");
  ids_.cluster_conflicts = metrics_->Intern("cluster_conflicts");
  ids_.write_queries = metrics_->Intern("write_queries");
  ids_.write_failures = metrics_->Intern("write_failures");
  ids_.write_latency_s = metrics_->Intern("write_latency_s");
  ids_.client_conflicts = metrics_->Intern("client_conflicts");
  ids_.read_failures = metrics_->Intern("read_failures");
  ids_.read_latency_s = metrics_->Intern("read_latency_s");
  ids_.open_timeouts = metrics_->Intern("open_timeouts");
  ids_.pipeline_generate_ms = metrics_->Intern("pipeline_generate_ms");
  ids_.pipeline_observe_ms = metrics_->Intern("pipeline_observe_ms");
  ids_.pipeline_orient_ms = metrics_->Intern("pipeline_orient_ms");
  ids_.pipeline_decide_ms = metrics_->Intern("pipeline_decide_ms");
  ids_.pipeline_act_ms = metrics_->Intern("pipeline_act_ms");
  ids_.stats_cache_hits = metrics_->Intern("stats_cache_hits");
  ids_.stats_cache_misses = metrics_->Intern("stats_cache_misses");
  ids_.stats_index_hits = metrics_->Intern("stats_index_hits");
  ids_.stats_index_fallbacks = metrics_->Intern("stats_index_fallbacks");
  ids_.compaction_retries = metrics_->Intern("compaction_retries");
  ids_.compaction_abandoned = metrics_->Intern("compaction_abandoned");
  ids_.compaction_backoff_s = metrics_->Intern("compaction_backoff_s");
}

void EventDriver::SampleNow() {
  metrics_->Record(ids_.files_total, env_->clock().Now(),
                   static_cast<double>(env_->TotalFileCount()));
}

void EventDriver::ScheduleCompactions(
    const std::vector<core::ScoredCandidate>& plan) {
  for (const core::ScoredCandidate& item : plan) {
    core::Candidate unit = item.candidate();
    unit.table_id = table_ids_.Intern(unit.table);
    table_queues_[unit.table_id].push_back(std::move(unit));
  }
  // Kick off the first unit of every table that has no inflight rewrite
  // (within-table sequencing mirrors TableParallelScheduler).
  for (const core::ScoredCandidate& item : plan) {
    const common::TableId table = table_ids_.Lookup(item.candidate().table);
    const auto queue_it = table_queues_.find(table);
    if (inflight_.count(table) == 0 && queue_it != table_queues_.end() &&
        !queue_it->second.empty()) {
      StartNextUnit(table);
    }
  }
}

void EventDriver::StartNextUnit(common::TableId table) {
  auto queue_it = table_queues_.find(table);
  if (queue_it == table_queues_.end()) return;
  bool started = false;
  while (!started && !queue_it->second.empty()) {
    const core::Candidate candidate = std::move(queue_it->second.front());
    queue_it->second.pop_front();

    engine::CompactionRequest request;
    request.table = candidate.table;
    request.partition = candidate.partition;
    request.after_snapshot_id = candidate.after_snapshot_id;
    request.validation_mode = options_.compaction_validation;
    request.movement = options_.compaction_movement;
    const catalog::TablePolicy policy =
        env_->control_plane().GetPolicy(candidate.table);
    request.target_file_size_bytes = policy.target_file_size_bytes;
    if (!policy.compaction_policy.empty()) {
      // Per-table override, mirroring core::RequestFor: a bad catalog
      // entry is ignored, never fatal.
      auto spec = core::PolicySpec::Parse(policy.compaction_policy);
      if (spec.ok()) request.movement = core::MovementFor(*spec);
    }

    auto pending =
        env_->compaction_runner().Prepare(request, env_->clock().Now());
    if (!pending.ok()) {
      LOG_WARN << "compaction prepare failed for " << candidate.id() << ": "
               << pending.status();
      continue;  // try the next queued unit
    }
    if (!pending->result.attempted) {
      // Either nothing to rewrite, or the write phase gave the unit up
      // (crash-retry budget exhausted, quota breach) — its outputs were
      // already cleaned up; count the abandonment and pull the next unit.
      if (pending->result.abandoned) {
        const SimTime at = env_->clock().Now();
        metrics_->Increment(ids_.compaction_abandoned, at);
        if (pending->result.backoff_seconds > 0) {
          metrics_->Observe(ids_.compaction_backoff_s, at,
                            pending->result.backoff_seconds);
        }
      }
      continue;
    }
    calendar_.ScheduleCompaction(pending->result.end_time, table);
    inflight_.emplace(table, std::move(pending).value());
    started = true;
  }
  // Drained queues are erased eagerly — a week-long replay would
  // otherwise leak one map node per table that ever compacted.
  if (queue_it->second.empty()) table_queues_.erase(queue_it);
}

void EventDriver::FinalizeUnit(common::TableId table,
                               engine::PendingCompaction&& pending) {
  const SimTime at = pending.result.end_time;
  engine::CompactionResult result =
      env_->compaction_runner().Finalize(std::move(pending));
  if (result.committed) {
    metrics_->Increment(ids_.compaction_commits, at);
    metrics_->Record(ids_.compaction_gbhr, at, result.gb_hours);
    metrics_->Record(
        ids_.compaction_files_reduced, at,
        static_cast<double>(result.files_rewritten - result.files_produced));
    const std::string& table_name = table_ids_.NameOf(table);
    auto retention = env_->control_plane().RunRetentionFor(
        table_name, options_.post_commit_retention);
    if (!retention.ok()) {
      LOG_WARN << "post-compaction retention failed for " << table_name
               << ": " << retention.status();
    }
  } else if (result.conflict) {
    metrics_->Increment(ids_.cluster_conflicts, at);
    metrics_->Record(ids_.compaction_gbhr, at, result.gb_hours);
  }
  // Fault/retry accounting (all zero in fault-free runs, so recorders
  // stay bit-identical to the seed behaviour).
  if (result.commit_retries > 0) {
    metrics_->Increment(ids_.compaction_retries, at, result.commit_retries);
  }
  if (result.abandoned) {
    metrics_->Increment(ids_.compaction_abandoned, at);
  }
  if (result.backoff_seconds > 0) {
    metrics_->Observe(ids_.compaction_backoff_s, at, result.backoff_seconds);
  }
}

void EventDriver::FinalizeDueCompactions(SimTime t) {
  // Earliest-finishing units first; ties finalize in table-name order
  // (the calendar queue's comparator), matching the min-heap this
  // replaces and the seed's linear scan over the name-sorted map.
  while (auto due = calendar_.PopCompactionDue(t)) {
    auto it = inflight_.find(due->table);
    assert(it != inflight_.end());
    engine::PendingCompaction pending = std::move(it->second);
    inflight_.erase(it);
    FinalizeUnit(due->table, std::move(pending));
    StartNextUnit(due->table);
  }
}

std::optional<SimTime> EventDriver::NextActivityBound() const {
  std::optional<SimTime> next;
  const auto fold = [&](SimTime t) {
    if (!next || t < *next) next = t;
  };
  if (next_retention_ >= 0) fold(next_retention_);
  if (service_ != nullptr) fold(service_->trigger().next_due());
  if (const auto end = calendar_.PeekNextCompaction()) fold(*end);
  return next;
}

void EventDriver::ArmTimers(SimTime now) {
  calendar_.ArmTimer(CalendarQueue::Kind::kSample, next_sample_);
  if (next_retention_ >= 0) {
    calendar_.ArmTimer(CalendarQueue::Kind::kRetention, next_retention_);
  } else {
    calendar_.DisarmTimer(CalendarQueue::Kind::kRetention);
  }
  // A service trigger already due (next_due <= now) never bounds the
  // clock advance — the per-stop Tick below handles it structurally —
  // mirroring the `next_due() > clock.Now()` guard of the old min-scan.
  if (service_ != nullptr && service_->trigger().next_due() > now) {
    calendar_.ArmTimer(CalendarQueue::Kind::kService,
                       service_->trigger().next_due());
  } else {
    calendar_.DisarmTimer(CalendarQueue::Kind::kService);
  }
}

Status EventDriver::AdvanceTo(SimTime t) {
  SimulatedClock& clock = env_->clock();
  while (clock.Now() < t) {
    // Next interesting boundary: the earliest calendar-queue entry
    // (sample point, retention run, service trigger, compaction finish)
    // or the target. Entries at or before `now` never advance the clock;
    // the processing block below consumes them at the current stop,
    // exactly as the seed's min-scan did.
    ArmTimers(clock.Now());
    SimTime next = t;
    if (const auto peek = calendar_.PeekNext(); peek && *peek < next) {
      next = *peek;
    }
    if (next > clock.Now()) clock.AdvanceTo(next);

    FinalizeDueCompactions(clock.Now());
    if (clock.Now() >= next_sample_) {
      SampleNow();
      next_sample_ = clock.Now() + options_.sample_interval;
    }
    if (next_retention_ >= 0 && clock.Now() >= next_retention_) {
      (void)env_->control_plane().RunRetentionService();
      next_retention_ = clock.Now() + options_.retention_interval;
    }
    if (service_ != nullptr) {
      auto ran = service_->Tick(clock.Now());
      if (!ran.ok()) {
        LOG_WARN << "autocomp service tick failed: " << ran.status();
      } else if (ran->has_value()) {
        const core::PipelineRunReport& report = **ran;
        // Control-loop profiling: how long each OODA phase of this run
        // took in host wall-clock, plus stats-cache traffic. These feed
        // the pipeline-throughput benchmarks and the CLI summary.
        if (options_.record_host_timings) {
          metrics_->Record(ids_.pipeline_generate_ms, clock.Now(),
                           report.timings.generate_ms);
          metrics_->Record(ids_.pipeline_observe_ms, clock.Now(),
                           report.timings.observe_ms);
          metrics_->Record(ids_.pipeline_orient_ms, clock.Now(),
                           report.timings.orient_ms);
          metrics_->Record(ids_.pipeline_decide_ms, clock.Now(),
                           report.timings.decide_ms);
          metrics_->Record(ids_.pipeline_act_ms, clock.Now(),
                           report.timings.act_ms);
        }
        if (report.stats_cache_hits > 0) {
          metrics_->Increment(ids_.stats_cache_hits, clock.Now(),
                              report.stats_cache_hits);
        }
        if (report.stats_cache_misses > 0) {
          metrics_->Increment(ids_.stats_cache_misses, clock.Now(),
                              report.stats_cache_misses);
        }
        if (report.stats_index_hits > 0) {
          metrics_->Increment(ids_.stats_index_hits, clock.Now(),
                              report.stats_index_hits);
        }
        if (report.stats_index_fallbacks > 0) {
          metrics_->Increment(ids_.stats_index_fallbacks, clock.Now(),
                              report.stats_index_fallbacks);
        }
        if (options_.deferred_compaction) {
          ScheduleCompactions(report.selected);
        }
      }
    }
  }
  FinalizeDueCompactions(clock.Now());
  return Status::OK();
}

Status EventDriver::Execute(const workload::QueryEvent& event) {
  const SimTime now = env_->clock().Now();
  if (event.is_write) {
    metrics_->Increment(ids_.write_queries, now);
    auto result = env_->query_engine().ExecuteWrite(event.write, now);
    if (!result.ok()) {
      // Quota breaches and missing tables are workload-level failures; the
      // experiment records and continues (the paper's users see exactly
      // these failures pre-compaction).
      metrics_->Increment(ids_.write_failures, now);
      return Status::OK();
    }
    total_write_seconds_ += result->total_seconds;
    metrics_->Observe(ids_.write_latency_s, now, result->total_seconds);
    if (result->commit_retries > 0) {
      metrics_->Increment(ids_.client_conflicts, now,
                          result->commit_retries);
    }
    if (result->conflict_failed) {
      metrics_->Increment(ids_.client_conflicts, now);
      metrics_->Increment(ids_.write_failures, now);
      return Status::OK();
    }
    if (hook_ != nullptr) {
      const std::optional<std::string> partition =
          event.write.partitions.size() == 1
              ? std::optional<std::string>(event.write.partitions.front())
              : std::nullopt;
      auto hooked = hook_->OnWrite(event.write.table, partition, now);
      if (!hooked.ok()) {
        LOG_WARN << "optimize-after-write hook failed: " << hooked.status();
      }
    }
  } else {
    auto result =
        env_->query_engine().ExecuteRead(event.table, event.read_partition,
                                         now);
    if (!result.ok()) {
      metrics_->Increment(ids_.read_failures, now);
      return Status::OK();
    }
    total_read_seconds_ += result->total_seconds;
    metrics_->Observe(ids_.read_latency_s, now, result->total_seconds);
    if (result->open_timeouts > 0) {
      metrics_->Increment(ids_.open_timeouts, now, result->open_timeouts);
    }
  }
  return Status::OK();
}

void EventDriver::FinishRun() {
  // Flush inflight rewrites so their output files do not linger as
  // orphans; they commit at their natural end times (past the clock).
  // Pop order (end time, then table name) keeps the finalize sequence —
  // and the metric series appended by it — deterministic.
  while (auto due = calendar_.PopCompactionDue(
             std::numeric_limits<SimTime>::max())) {
    auto it = inflight_.find(due->table);
    assert(it != inflight_.end());
    engine::PendingCompaction pending = std::move(it->second);
    inflight_.erase(it);
    FinalizeUnit(due->table, std::move(pending));
    // Do not start further queued units past the end of the experiment.
  }
  table_queues_.clear();
  // Surface per-site fault-injection counters as hourly counters. The
  // injector's counter map is sorted by site name and every count is a
  // pure function of the lane's serial execution, so the recorded values
  // merge deterministically across lanes and shard layouts.
  const fault::FaultInjector& injector = env_->fault_injector();
  if (injector.enabled()) {
    const SimTime now = env_->clock().Now();
    for (const auto& [site, counters] : injector.Counters()) {
      if (counters.injected > 0) {
        metrics_->Increment(metrics_->Intern("fault_injected." + site), now,
                            counters.injected);
      }
    }
  }
  SampleNow();
}

Status EventDriver::Run(const std::vector<workload::QueryEvent>& events,
                        SimTime end_time) {
  for (const workload::QueryEvent& event : events) {
    AUTOCOMP_RETURN_NOT_OK(AdvanceTo(event.time));
    AUTOCOMP_RETURN_NOT_OK(Execute(event));
  }
  AUTOCOMP_RETURN_NOT_OK(AdvanceTo(end_time));
  FinishRun();
  return Status::OK();
}

void EventDriver::SaveState(common::BlobWriter* w) const {
  assert(Quiescent());
  w->WriteI64(next_sample_);
  w->WriteI64(next_retention_);
  w->WriteF64(total_read_seconds_);
  w->WriteF64(total_write_seconds_);
  // Table-id interner in id order: the restore re-interns identically,
  // so NameLess tie-breaks (calendar pop order) survive bit for bit.
  const int64_t tables = table_ids_.size();
  w->WriteI64(tables);
  for (int64_t id = 0; id < tables; ++id) {
    w->WriteString(table_ids_.NameOf(static_cast<common::TableId>(id)));
  }
}

Status EventDriver::SaveStateOrFail(common::BlobWriter* w) const {
  if (!Quiescent()) {
    return Status::Internal("cannot checkpoint a non-quiescent driver");
  }
  SaveState(w);
  return Status::OK();
}

Status EventDriver::RestoreState(common::BlobReader* r) {
  if (!Quiescent() || table_ids_.size() != 0) {
    return Status::Internal("EventDriver::RestoreState requires a fresh driver");
  }
  next_sample_ = r->ReadI64();
  next_retention_ = r->ReadI64();
  total_read_seconds_ = r->ReadF64();
  total_write_seconds_ = r->ReadF64();
  const int64_t tables = r->ReadI64();
  for (int64_t id = 0; id < tables; ++id) {
    const common::TableId got = table_ids_.Intern(r->ReadString());
    if (got != static_cast<common::TableId>(id)) {
      return Status::Internal("driver checkpoint: interner id mismatch");
    }
  }
  if (!r->ok()) return Status::Internal("truncated driver checkpoint");
  return Status::OK();
}

}  // namespace autocomp::sim
