/// \file fleet_driver.h
/// \brief Shard-parallel discrete-event replay of the table fleet.
///
/// The classic EventDriver replays every event of the whole fleet on one
/// timeline. This driver exploits the fleet's real coupling structure:
/// tenant databases only interact through the NameNode's *hourly*
/// RPC-load/timeout model (namespace quotas are per database, tables
/// never span databases). Each database becomes a **lane** — a complete
/// SimEnvironment (clock, storage, catalog, clusters, engine) plus its
/// own MetricsRecorder and EventDriver. Lanes are grouped into K
/// deterministic shards (stable hash of the database name), and all
/// shards advance concurrently on a common::ThreadPool in lockstep
/// epochs aligned to the NameNode's hour buckets.
///
/// Cross-lane coupling is reduced to one number per epoch: at every hour
/// barrier the coordinator publishes the fleet's NameNode RPC tally for
/// the completed hour to a shared storage::EpochLoadModel. During the
/// next epoch every lane's NameNode derives its timeout probability from
/// that published (epoch-start) load — constant within the epoch — and
/// draws timeouts from a counter-based RNG stream keyed by (seed, file
/// path, per-lane open index). No draw depends on the interleaving of
/// lanes, so the run is **bit-identical at any shard count and any pool
/// size** (NFR2): metrics from a sequential run (shards advanced one
/// after another) equal those of a parallel run exactly, series for
/// series, sample for sample.
///
/// Replay cost is proportional to *activity*, not fleet size
/// (LaneMode::kActive, the default — see DESIGN.md §10):
///  * **Lazy hydration** — lanes start as lightweight descriptors; the
///    workload's table loads are *planned* (all random draws taken
///    up front from the shared sequence) but only *materialised* when a
///    lane first has work. A planned-but-unhydrated load still feeds the
///    epoch barrier exactly, because a plan's CreateFile count is pure
///    arithmetic (engine::PlannedFileCount).
///  * **Active-lane scheduling** — a fleet-level calendar queue keyed by
///    each lane's next due boundary (next workload event, or the
///    driver's NextActivityBound: retention / service trigger / inflight
///    compaction end) replaces the advance-all-lanes loop. A dozing
///    lane's deferred metric samples replay identically when it next
///    wakes, because its state cannot change while it dozes.
///  * **O(changed) barriers** — woken lanes publish RPC-tally *deltas*
///    (EpochLoadModel::AddDelta, including the next-hour spillover of
///    work finalizing exactly at the boundary) and the barrier seals the
///    hour with the accumulated deltas plus the planned contribution of
///    still-unhydrated lanes; untouched lanes cost nothing.
///
/// The merged result is deterministic and mode-independent: per-lane
/// recorders are merged in lane order with a stable sort by time
/// (MetricsRecorder::Merge); lanes that never had any work share one
/// "ghost" replay of an empty lane (their metric streams are identical
/// by construction). kAdvanceAll preserves the historical hydrate-
/// everything / advance-everything behaviour as the bit-identity
/// reference for tests.

#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "obs/trace.h"
#include "sim/calendar_queue.h"
#include "sim/driver.h"
#include "sim/environment.h"
#include "sim/metrics.h"
#include "sim/presets.h"
#include "storage/epoch_load.h"
#include "workload/fleet.h"

namespace autocomp::sim {

/// \brief Lane lifecycle policy (results are bit-identical either way).
enum class LaneMode {
  /// Lazy hydration + active-lane scheduling + delta barriers: an epoch
  /// touches only lanes with due work. The default.
  kActive,
  /// Hydrate every lane at setup and advance every lane every epoch —
  /// the historical behaviour, kept as the reference the bit-identity
  /// tests compare kActive against.
  kAdvanceAll,
};

/// \brief Configuration for a shard-parallel fleet replay.
struct FleetSimOptions {
  /// Simulated days to replay.
  int days = 7;
  /// Deterministic shard count K (lane = database, shard = hash(db) % K).
  /// The *results* do not depend on K — only wall-clock does.
  int shards = 4;
  /// When false, shards are advanced one after another on the calling
  /// thread — the sequential reference the determinism tests compare
  /// against. Results are identical either way.
  bool sharded = true;
  /// Pool for concurrent shard advancement (nullptr = inline, i.e.
  /// sequential even when `sharded`).
  ThreadPool* pool = nullptr;
  /// Master seed; per-lane environment seeds are derived from it and the
  /// database name, independent of lane/shard enumeration order.
  uint64_t seed = 7;
  /// Environment template instantiated once per lane (the seed and the
  /// engine writer id are overridden per lane).
  EnvironmentOptions env = {};
  workload::FleetOptions fleet = {};
  DriverOptions driver = {};
  /// Lane lifecycle (see LaneMode). kActive replays 100×-scale fleets in
  /// memory and time bounded by *activity*; kAdvanceAll is the eager
  /// reference.
  LaneMode lane_mode = LaneMode::kActive;
  /// Run the fault::InvariantChecker over every hydrated lane at every
  /// hour barrier (and over every lane at its finalization); the replay
  /// fails fast with Internal on the first violation. Test-only — a
  /// full-metadata audit per lane per epoch is far too slow for
  /// benchmarking.
  bool check_invariants = false;
  /// Per-lane AutoComp service built from this preset (the preset's pool
  /// and trace are overridden per lane). nullopt replays the workload
  /// with no compaction control loop — the pre-tracing behaviour. With a
  /// preset, every lane wakes at the trigger cadence (the control loop
  /// must observe every lane), so kActive degrades gracefully to
  /// near-eager scheduling while staying bit-identical.
  std::optional<StrategyPreset> preset;
  /// Trace detail recorded per lane. kOff records nothing (and, unless
  /// `trace_armed`, no recorders are even constructed).
  obs::TraceLevel trace_level = obs::TraceLevel::kOff;
  /// Install per-lane recorders even at kOff, so every emission site
  /// pays its pointer+level check — the bench harness measures exactly
  /// this armed-but-disabled overhead against the <2% target.
  bool trace_armed = false;
  /// Per-lane ring capacity (events retained for export; the digest
  /// covers everything regardless).
  size_t trace_capacity = obs::TraceRecorder::kDefaultCapacity;
  /// When non-empty, the merged Chrome trace-event JSON is written here
  /// at the end of the run (one thread track per lane). Forces every
  /// lane to hydrate (so every lane has a track), but active scheduling
  /// still applies.
  std::string trace_out;
  /// Memory-accounting hook: called from serial coordinator sections as
  /// lanes hydrate, restore, or are evicted during the replay, with the
  /// lane's database, the current number of resident (hydrated) lanes,
  /// and the peak so far. Transient end-of-run finalizations are
  /// summarized in the result counters instead. Benchmarks use it to
  /// audit the sublinear-footprint claim without polling the OS.
  std::function<void(const std::string& db, int64_t resident, int64_t peak)>
      on_lane_residency;
  /// Resident-lane budget (DESIGN.md §10): when > 0, after every epoch
  /// the evictor dehydrates the coldest quiescent lanes — LRU by
  /// next-due distance, unarmed lanes first — into compact checkpoints
  /// until at most this many lanes are resident. 0 = unbounded (the
  /// historical monotone ramp). Results are bit-identical at any
  /// budget: an evicted lane restores in O(state) on its next due
  /// event and replays its deferred no-op ticks exactly. kActive only;
  /// ignored with a preset (the control loop keeps every lane hot).
  int64_t max_resident_lanes = 0;
  /// Idle-based eviction: a quiescent lane untouched for this many
  /// simulated hours is dehydrated regardless of the budget (0 = off).
  int evict_after_idle_hours = 0;
};

/// \brief Outcome of a fleet replay.
struct FleetSimResult {
  /// Lane recorders merged in lane order (deterministic).
  MetricsRecorder metrics;
  /// Workload events executed across all lanes.
  int64_t events_executed = 0;
  /// Fleet-wide data file count at end of run.
  int64_t total_files = 0;
  /// Fleet-wide NameNode open() calls across the run.
  int64_t open_calls = 0;
  /// Faults injected across all lanes (0 in fault-free runs).
  int64_t faults_injected = 0;
  /// Per-lane trace digests merged (order-insensitive, accumulated
  /// incrementally as lanes finalize). Empty (zero events) when tracing
  /// was off; bit-identical across shard counts, pool sizes and lane
  /// modes otherwise — the golden-trace tests' oracle.
  obs::TraceDigest trace_digest;
  /// Host milliseconds spent in setup — descriptor construction and
  /// workload planning (kActive), or full environment construction
  /// (kAdvanceAll). The scale tier's "setup must be bounded by
  /// descriptor construction" gate reads this.
  double setup_ms = 0;
  /// Lane-lifecycle accounting (kAdvanceAll hydrates everything at
  /// setup, so there lanes_hydrated == lanes_total).
  int64_t lanes_total = 0;
  /// Lanes ever hydrated into a full SimEnvironment.
  int64_t lanes_hydrated = 0;
  /// Peak simultaneously-resident hydrated lanes.
  int64_t peak_resident_lanes = 0;
  /// Lanes served by a shared replay instead of their own environment:
  /// truly idle lanes (no tables, no events, ever) share one ghost
  /// replay of an empty lane, and never-touched lanes with queued loads
  /// share one transient replay per distinct planned-load signature —
  /// their metric streams are identical by construction.
  int64_t lanes_ghosted = 0;
  /// Evictor activity (0 with an unbounded budget): dehydrations into
  /// checkpoints, restores from them (mid-run wakes and end-of-run
  /// finalizations both count), the peak bytes held in checkpoints at
  /// any instant, and the host milliseconds spent restoring (summed
  /// across lanes; restores run inside the parallel shard sections).
  int64_t lanes_evicted = 0;
  int64_t lanes_restored = 0;
  /// Lanes the evictor finalized early instead of checkpointing: a lane
  /// with no future workload event and no retention tick that could
  /// mutate state can never wake again, so its wrap-up result is
  /// already determined — it is retired on the spot (no blob, no
  /// restore). Not counted in lanes_evicted/lanes_restored.
  int64_t lanes_retired = 0;
  int64_t checkpoint_bytes = 0;
  double restore_ms = 0;
};

/// \brief Lockstep epoch driver over per-database lanes.
class FleetSimulation {
 public:
  explicit FleetSimulation(FleetSimOptions options);
  ~FleetSimulation();

  FleetSimulation(const FleetSimulation&) = delete;
  FleetSimulation& operator=(const FleetSimulation&) = delete;

  /// Builds the fleet and replays `options.days` days of workload.
  /// Call at most once per instance.
  Result<FleetSimResult> Run();

  /// Stable lane→shard assignment (hash of the database name, invariant
  /// across processes and enumeration orders).
  static int ShardOf(const std::string& db, int shards);

 private:
  struct Lane;

  /// Per-lane environment options: the template with the lane's derived
  /// seeds, pinned writer/runner ids and trace recorder applied — the
  /// same construction whether the lane hydrates fresh or restores from
  /// a checkpoint (restores must rebuild an *identical* deployment).
  EnvironmentOptions LaneEnvironmentOptions(Lane* lane) const;

  /// Per-lane driver options: the configured options plus the preset
  /// policy's movement axis for deferred-mode requests. Same at hydrate
  /// and restore (restored lanes must rebuild an identical driver).
  DriverOptions LaneDriverOptions() const;

  /// Hydrates `lane`: constructs its environment/driver/service, creates
  /// its database, and replays its pending table ops in plan order (with
  /// the lane's injector disarmed, as the eager path's serial-load
  /// sections were). Safe to call from parallel shard sections — all
  /// shared-map bookkeeping happens before, in PrepareHydration.
  void HydrateLane(Lane* lane);
  /// Serial pre-hydration bookkeeping: retracts the lane's pending
  /// barrier estimates for hours >= `from_hour` (its actual tallies take
  /// over) and updates the residency accounting.
  void PrepareHydration(Lane* lane, int64_t from_hour);
  /// Advances one lane to `epoch_end`, executing its due events.
  void AdvanceLane(Lane* lane, SimTime epoch_end);
  /// O(changed) barrier contribution of a lane advanced through the
  /// epoch starting at `epoch`: publishes this hour's tally delta and
  /// the next hour's boundary spillover into the load model. Returns
  /// the lane's RPC tally for the hour — the evictor's activity signal
  /// (a wake that only replayed no-op ticks tallies zero).
  int64_t PublishLaneDeltas(Lane* lane, SimTime epoch);
  /// Arms (or tightens) the lane's wake-up in the fleet calendar.
  void MaybeArm(Lane* lane, SimTime at);
  /// Catch-up to `end_time` + FinishRun + totals/digest accounting. When
  /// `keep_env` is false the environment is destroyed afterwards
  /// (transient finalization of cold lanes), bounding peak residency;
  /// metrics and trace recorders are always retained for the merge.
  void FinalizeLane(Lane* lane, SimTime end_time, bool keep_env);

  /// \name Lane eviction (DESIGN.md §10)
  /// @{
  /// First future retention tick at which this lane's retention service
  /// could actually expire a snapshot (and thus mutate state): the
  /// earliest per-table `snapshot timestamp + policy retention`
  /// threshold, rounded up to the driver's tick cadence. -1 when no
  /// snapshot can ever expire (retention off, or every table holds only
  /// its current lineage head) — the deferred ticks in between are
  /// provable no-ops and replay identically on restore.
  SimTime EffectiveRetentionBound(Lane* lane) const;
  /// Finalizes a quiescent lane on the spot when nothing (event, onboard
  /// load, or mutating retention tick) can ever wake it again before
  /// `end_time` — no checkpoint, no wrap-up restore. Returns whether the
  /// lane was retired; `*next_due` (optional) receives the lane's next
  /// forced-residency instant either way. Serial coordinator sections
  /// only.
  bool TryRetireLane(Lane* lane, SimTime now, SimTime end_time,
                     SimTime* next_due);
  /// Dehydrates a quiescent lane into `lane->checkpoint`, replaces its
  /// (hourly) retention arming with the effective bound, and drops the
  /// environment; retires it instead when TryRetireLane applies. Serial
  /// coordinator sections only.
  Status EvictLane(Lane* lane, SimTime now, SimTime end_time);
  /// Post-barrier eviction pass: idle rule first, then the LRU budget
  /// rule (victims ordered by furthest next wake, unarmed lanes first).
  Status EvictColdLanes(SimTime now, SimTime end_time);
  /// Serial bookkeeping before a restore: residency/peak accounting,
  /// restore counters, checkpoint-byte release.
  void PrepareRestore(Lane* lane);
  /// Rebuilds the lane's environment/driver from its checkpoint (same
  /// per-lane options as HydrateLane). Safe to call from parallel shard
  /// sections — all shared bookkeeping happened in PrepareRestore.
  void RestoreLane(Lane* lane);
  /// @}

  FleetSimOptions options_;
  storage::EpochLoadModel epoch_load_;
  std::vector<std::unique_ptr<Lane>> lanes_;
  /// lane indices grouped by shard
  std::vector<std::vector<int>> shard_lanes_;
  /// Fleet-level wake queue (kActive): one kCompactionEnd entry per
  /// armed lane, carrying the lane index. Entries are tombstoned by
  /// comparing against the lane's authoritative next_wake on pop.
  CalendarQueue wake_queue_;
  /// Planned CreateFile counts of still-pending (unhydrated) table
  /// loads, bucketed by the hour of their `at` — the barrier adds the
  /// bucket for the sealed hour so deferred lanes are indistinguishable
  /// from eager ones in the load model.
  std::map<int64_t, int64_t> pending_rpcs_by_hour_;
  /// Desired injector arming for lanes hydrated mid-run.
  bool fault_armed_ = false;
  int64_t resident_lanes_ = 0;
  int64_t peak_resident_lanes_ = 0;
  int64_t lanes_hydrated_ = 0;
  int64_t lanes_evicted_ = 0;
  int64_t lanes_restored_ = 0;
  int64_t lanes_retired_ = 0;
  int64_t checkpoint_bytes_now_ = 0;
  int64_t checkpoint_bytes_peak_ = 0;
  bool ran_ = false;
};

}  // namespace autocomp::sim
