/// \file fleet_driver.h
/// \brief Shard-parallel discrete-event replay of the table fleet.
///
/// The classic EventDriver replays every event of the whole fleet on one
/// timeline. This driver exploits the fleet's real coupling structure:
/// tenant databases only interact through the NameNode's *hourly*
/// RPC-load/timeout model (namespace quotas are per database, tables
/// never span databases). Each database becomes a **lane** — a complete
/// SimEnvironment (clock, storage, catalog, clusters, engine) plus its
/// own MetricsRecorder and EventDriver. Lanes are grouped into K
/// deterministic shards (stable hash of the database name), and all
/// shards advance concurrently on a common::ThreadPool in lockstep
/// epochs aligned to the NameNode's hour buckets.
///
/// Cross-lane coupling is reduced to one number per epoch: at every hour
/// barrier the coordinator sums each lane's NameNode RPC tally for the
/// completed hour and publishes it to a shared storage::EpochLoadModel.
/// During the next epoch every lane's NameNode derives its timeout
/// probability from that published (epoch-start) load — constant within
/// the epoch — and draws timeouts from a counter-based RNG stream keyed
/// by (seed, file path, per-lane open index). No draw depends on the
/// interleaving of lanes, so the run is **bit-identical at any shard
/// count and any pool size** (NFR2): metrics from a sequential run
/// (shards advanced one after another) equal those of a parallel run
/// exactly, series for series, sample for sample.
///
/// The merged result is deterministic too: per-lane recorders are merged
/// in lane order with a stable sort by time (MetricsRecorder::Merge).

#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "obs/trace.h"
#include "sim/driver.h"
#include "sim/environment.h"
#include "sim/metrics.h"
#include "sim/presets.h"
#include "storage/epoch_load.h"
#include "workload/fleet.h"

namespace autocomp::sim {

/// \brief Configuration for a shard-parallel fleet replay.
struct FleetSimOptions {
  /// Simulated days to replay.
  int days = 7;
  /// Deterministic shard count K (lane = database, shard = hash(db) % K).
  /// The *results* do not depend on K — only wall-clock does.
  int shards = 4;
  /// When false, shards are advanced one after another on the calling
  /// thread — the sequential reference the determinism tests compare
  /// against. Results are identical either way.
  bool sharded = true;
  /// Pool for concurrent shard advancement (nullptr = inline, i.e.
  /// sequential even when `sharded`).
  ThreadPool* pool = nullptr;
  /// Master seed; per-lane environment seeds are derived from it and the
  /// database name, independent of lane/shard enumeration order.
  uint64_t seed = 7;
  /// Environment template instantiated once per lane (the seed and the
  /// engine writer id are overridden per lane).
  EnvironmentOptions env = {};
  workload::FleetOptions fleet = {};
  DriverOptions driver = {};
  /// Run the fault::InvariantChecker over every lane at every hour
  /// barrier (and once after the final flush); the replay fails fast
  /// with Internal on the first violation. Test-only — a full-metadata
  /// audit per lane per epoch is far too slow for benchmarking.
  bool check_invariants = false;
  /// Per-lane AutoComp service built from this preset (the preset's pool
  /// and trace are overridden per lane). nullopt replays the workload
  /// with no compaction control loop — the pre-tracing behaviour.
  std::optional<StrategyPreset> preset;
  /// Trace detail recorded per lane. kOff records nothing (and, unless
  /// `trace_armed`, no recorders are even constructed).
  obs::TraceLevel trace_level = obs::TraceLevel::kOff;
  /// Install per-lane recorders even at kOff, so every emission site
  /// pays its pointer+level check — the bench harness measures exactly
  /// this armed-but-disabled overhead against the <2% target.
  bool trace_armed = false;
  /// Per-lane ring capacity (events retained for export; the digest
  /// covers everything regardless).
  size_t trace_capacity = obs::TraceRecorder::kDefaultCapacity;
  /// When non-empty, the merged Chrome trace-event JSON is written here
  /// at the end of the run (one thread track per lane).
  std::string trace_out;
};

/// \brief Outcome of a fleet replay.
struct FleetSimResult {
  /// Lane recorders merged in lane order (deterministic).
  MetricsRecorder metrics;
  /// Workload events executed across all lanes.
  int64_t events_executed = 0;
  /// Fleet-wide data file count at end of run.
  int64_t total_files = 0;
  /// Fleet-wide NameNode open() calls across the run.
  int64_t open_calls = 0;
  /// Faults injected across all lanes (0 in fault-free runs).
  int64_t faults_injected = 0;
  /// Per-lane trace digests merged (order-insensitive). Empty (zero
  /// events) when tracing was off; bit-identical across shard counts and
  /// pool sizes otherwise — the golden-trace tests' oracle.
  obs::TraceDigest trace_digest;
};

/// \brief Lockstep epoch driver over per-database lanes.
class FleetSimulation {
 public:
  explicit FleetSimulation(FleetSimOptions options);
  ~FleetSimulation();

  FleetSimulation(const FleetSimulation&) = delete;
  FleetSimulation& operator=(const FleetSimulation&) = delete;

  /// Builds the fleet and replays `options.days` days of workload.
  /// Call at most once per instance.
  Result<FleetSimResult> Run();

  /// Stable lane→shard assignment (hash of the database name, invariant
  /// across processes and enumeration orders).
  static int ShardOf(const std::string& db, int shards);

 private:
  struct Lane;

  /// Advances one lane to `epoch_end`, executing its due events.
  void AdvanceLane(Lane* lane, SimTime epoch_end);

  FleetSimOptions options_;
  storage::EpochLoadModel epoch_load_;
  std::vector<std::unique_ptr<Lane>> lanes_;
  /// lane indices grouped by shard
  std::vector<std::vector<int>> shard_lanes_;
  bool ran_ = false;
};

}  // namespace autocomp::sim
