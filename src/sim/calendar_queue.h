/// \file calendar_queue.h
/// \brief Hour-bucketed calendar queue for the event driver's time loop.
///
/// EventDriver::AdvanceTo used to recompute `min(sample, retention,
/// service-due, earliest-compaction-end)` from scratch on every iteration
/// — four branchy reads plus a heap top per stop. The calendar queue
/// replaces that with a hierarchical structure: a sparse, ordered index
/// of hour buckets (std::map keyed by `time / kHour`), each holding the
/// entries that fall inside that hour. Peeking the next boundary touches
/// only the front bucket, and advancing consumes buckets in order, so
/// each step is O(1) amortized over a replay.
///
/// Two entry families share the wheel:
///  * **Compaction ends** — pushed exactly when a unit enters the
///    driver's inflight set, popped exactly when it finalizes. Pop order
///    is (end_time, then table *name*) — the same tie-break as the
///    min-heap this replaces, delegated to a caller-supplied id->name
///    comparator so table-id interning can never change finalize order.
///  * **Timers** (sample / retention / service) — one live schedule per
///    kind. Re-arming overwrites the schedule; superseded entries are
///    dropped lazily when a scan reaches them (classic timing-wheel
///    tombstoning), so re-arms are O(1) and never shift other entries.
///
/// Intra-bucket entries are kept unsorted and scanned linearly: a bucket
/// holds at most the timers (≤3) plus the compactions ending within one
/// simulated hour, so a linear min-scan with the full (time, kind, name)
/// comparator is cheaper than keeping the bucket sorted under tombstones
/// — and it makes the pop order trivially deterministic.

#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <vector>

#include "common/units.h"

namespace autocomp::sim {

class CalendarQueue {
 public:
  /// Entry kinds. kCompactionEnd entries carry a table id; timer kinds
  /// have exactly one live schedule each.
  enum class Kind : int8_t {
    kCompactionEnd = 0,
    kSample = 1,
    kRetention = 2,
    kService = 3,
  };
  static constexpr int kNumTimerKinds = 4;

  struct Entry {
    SimTime time = 0;
    Kind kind = Kind::kCompactionEnd;
    int32_t table = -1;  // valid for kCompactionEnd only
  };

  /// `table_name_less(a, b)` orders table ids by their *names* — the
  /// finalize tie-break. Defaults to raw id order (fine for tests that
  /// never look at names).
  explicit CalendarQueue(
      std::function<bool(int32_t, int32_t)> table_name_less = {})
      : table_name_less_(std::move(table_name_less)) {
    for (int i = 0; i < kNumTimerKinds; ++i) {
      timer_time_[i] = -1;
      timer_entry_time_[i] = -1;
    }
  }

  /// Registers a compaction-end boundary for `table`. The caller keeps
  /// the push/pop discipline (one entry per inflight unit), so the wheel
  /// never holds stale compaction entries.
  void ScheduleCompaction(SimTime time, int32_t table) {
    BucketFor(time).push_back(Entry{time, Kind::kCompactionEnd, table});
    ++compaction_count_;
  }

  /// (Re)schedules timer `kind` for `time`. A previously scheduled entry
  /// at a different time becomes a tombstone, dropped lazily.
  void ArmTimer(Kind kind, SimTime time) {
    const int k = static_cast<int>(kind);
    timer_time_[k] = time;
    if (timer_entry_time_[k] == time) return;  // live entry already placed
    BucketFor(time).push_back(Entry{time, kind, -1});
    timer_entry_time_[k] = time;
  }

  /// Clears timer `kind`; its wheel entry (if any) becomes a tombstone.
  void DisarmTimer(Kind kind) { timer_time_[static_cast<int>(kind)] = -1; }

  /// Earliest live boundary (timer or compaction end), pruning tombstones
  /// and exhausted buckets as it scans forward.
  std::optional<SimTime> PeekNext() {
    for (auto it = buckets_.begin(); it != buckets_.end();
         it = buckets_.erase(it)) {
      Prune(it->second);
      if (it->second.empty()) continue;  // all tombstones: drop the bucket
      SimTime best = it->second.front().time;
      for (const Entry& e : it->second) best = std::min(best, e.time);
      return best;
    }
    return std::nullopt;
  }

  /// Pops the earliest compaction entry with time <= `cutoff`, ordered by
  /// (time, then table name). Buckets are hour-ranged and scanned in
  /// order, so the first bucket containing any compaction holds the
  /// global minimum end time.
  std::optional<Entry> PopCompactionDue(SimTime cutoff) {
    if (compaction_count_ == 0) return std::nullopt;
    for (auto it = buckets_.begin(); it != buckets_.end();) {
      if (it->first * kHour > cutoff) return std::nullopt;
      Bucket& bucket = it->second;
      Prune(bucket);
      if (bucket.empty()) {
        it = buckets_.erase(it);
        continue;
      }
      size_t best = bucket.size();
      for (size_t i = 0; i < bucket.size(); ++i) {
        if (bucket[i].kind != Kind::kCompactionEnd) continue;
        if (best == bucket.size() || CompactionLess(bucket[i], bucket[best])) {
          best = i;
        }
      }
      if (best == bucket.size()) {
        ++it;  // only live timers here; later buckets may still be due
        continue;
      }
      if (bucket[best].time > cutoff) return std::nullopt;
      const Entry out = bucket[best];
      bucket.erase(bucket.begin() + static_cast<ptrdiff_t>(best));
      --compaction_count_;
      if (bucket.empty()) buckets_.erase(it);
      return out;
    }
    return std::nullopt;
  }

  /// Earliest pending compaction-end time, ignoring timers. Non-mutating
  /// (no pruning): buckets are scanned in order and compaction entries
  /// are never tombstoned, so the first one found in the first bucket
  /// holding any is the minimum-time entry. The fleet driver uses this as
  /// a lane's next RPC-capable boundary while the lane dozes.
  std::optional<SimTime> PeekNextCompaction() const {
    if (compaction_count_ == 0) return std::nullopt;
    for (const auto& [hour, bucket] : buckets_) {
      std::optional<SimTime> best;
      for (const Entry& e : bucket) {
        if (e.kind != Kind::kCompactionEnd) continue;
        if (!best || e.time < *best) best = e.time;
      }
      if (best) return best;
    }
    return std::nullopt;
  }

  int64_t compaction_count() const { return compaction_count_; }
  /// Live bucket count (tombstone-only buckets may still be pending
  /// collection). Exposed for rollover tests.
  int64_t bucket_count() const {
    return static_cast<int64_t>(buckets_.size());
  }

 private:
  using Bucket = std::vector<Entry>;

  Bucket& BucketFor(SimTime time) {
    // Times are nonnegative in the simulator; integer division buckets
    // [h*kHour, (h+1)*kHour) together.
    return buckets_[time / kHour];
  }

  bool CompactionLess(const Entry& a, const Entry& b) const {
    if (a.time != b.time) return a.time < b.time;
    if (table_name_less_) return table_name_less_(a.table, b.table);
    return a.table < b.table;
  }

  /// Drops tombstoned timer entries (superseded or disarmed schedules).
  /// When the dropped entry is the one timer_entry_time_ still points at
  /// (a disarm that was never re-armed), the bookkeeping is reset so a
  /// future ArmTimer at the same instant places a fresh entry.
  void Prune(Bucket& bucket) {
    bucket.erase(
        std::remove_if(bucket.begin(), bucket.end(),
                       [this](const Entry& e) {
                         if (e.kind == Kind::kCompactionEnd) return false;
                         const int k = static_cast<int>(e.kind);
                         if (timer_time_[k] == e.time) return false;  // live
                         if (timer_entry_time_[k] == e.time) {
                           timer_entry_time_[k] = -1;
                         }
                         return true;
                       }),
        bucket.end());
  }

  std::function<bool(int32_t, int32_t)> table_name_less_;
  std::map<int64_t, Bucket> buckets_;  // hour index -> entries
  SimTime timer_time_[kNumTimerKinds];        // authoritative schedule
  SimTime timer_entry_time_[kNumTimerKinds];  // time of the placed entry
  int64_t compaction_count_ = 0;
};

}  // namespace autocomp::sim
