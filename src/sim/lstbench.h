/// \file lstbench.h
/// \brief LST-Bench-style workload runner (§6.3's evaluation harness).
///
/// The paper's auto-tuning experiments deploy LST-Bench with three of its
/// built-in workloads: TPC-DS WP1 (long-running, frequent modifications,
/// one cluster), TPC-DS WP3 (one cluster writes, another reads), and
/// TPC-H. This module packages those session structures as a reusable
/// runner: each experiment is a fresh environment, a load phase, and N
/// sessions of (data modification → reads), optionally guarded by an
/// optimize-after-write trigger whose threshold the tuner searches over.

#pragma once

#include <cstdint>
#include <string>

#include "common/status.h"
#include "common/units.h"

namespace autocomp::sim {

/// \brief Which LST-Bench workload pattern to run.
enum class LstBenchWorkload : int {
  /// TPC-DS WP1: everything on one cluster; compaction (when triggered)
  /// contends with the workload.
  kWp1,
  /// TPC-DS WP3: writes on a sidecar cluster, compaction on the dedicated
  /// cluster — reads never contend with maintenance.
  kWp3,
  /// TPC-H-like: unpartitioned tables dominate and each session's data
  /// modification phase is heavy; compaction rewrites whole tables.
  kTpchLike,
};

const char* LstBenchWorkloadName(LstBenchWorkload workload);

/// \brief Experiment sizing.
struct LstBenchConfig {
  LstBenchWorkload workload = LstBenchWorkload::kWp1;
  int sessions = 4;
  /// Reads per session (TPC-DS passes sample its 99 queries).
  int queries_per_pass = 40;
  int64_t total_logical_bytes = 24 * kGiB;
  /// Fraction of data modified per TPC-DS maintenance phase.
  double modify_fraction = 0.02;
  /// Fraction of each unpartitioned TPC-H table overwritten per session.
  double tpch_overwrite_fraction = 0.15;
  uint64_t seed = 17;
};

/// \brief Runs complete experiments under a trigger configuration.
///
/// Deterministic: the same config + trigger always produces the same
/// duration, so tuners can search the threshold space reproducibly.
class LstBenchRunner {
 public:
  explicit LstBenchRunner(LstBenchConfig config) : config_(config) {}

  /// Runs one experiment with an optimize-after-write trigger firing when
  /// `trait_name >= threshold` (supported traits: "file_count_reduction",
  /// "file_entropy_total"). A negative threshold disables the trigger —
  /// the paper's "default" configuration. Returns the end-to-end duration
  /// in simulated seconds.
  Result<double> Run(const std::string& trait_name, double threshold) const;

  /// Convenience: the no-compaction baseline.
  Result<double> RunDefault() const { return Run("file_count_reduction", -1); }

  const LstBenchConfig& config() const { return config_; }

 private:
  LstBenchConfig config_;
};

}  // namespace autocomp::sim
