#include "sim/metrics.h"

#include <algorithm>
#include <cstdio>

namespace autocomp::sim {

namespace {
SimTime HourOf(SimTime t) { return (t / kHour) * kHour; }
}  // namespace

void MetricsRecorder::Record(const std::string& series, SimTime time,
                             double value) {
  series_[series].push_back(SeriesPoint{time, value});
}

void MetricsRecorder::Observe(const std::string& metric, SimTime time,
                              double value) {
  hourly_samples_[metric][HourOf(time)].Add(value);
}

void MetricsRecorder::Increment(const std::string& counter, SimTime time,
                                int64_t n) {
  hourly_counts_[counter][HourOf(time)] += n;
}

const std::vector<SeriesPoint>& MetricsRecorder::Series(
    const std::string& series) const {
  static const std::vector<SeriesPoint> kEmpty;
  const auto it = series_.find(series);
  return it == series_.end() ? kEmpty : it->second;
}

std::vector<std::pair<SimTime, QuantileSummary>>
MetricsRecorder::HourlySummaries(const std::string& metric) const {
  std::vector<std::pair<SimTime, QuantileSummary>> out;
  const auto it = hourly_samples_.find(metric);
  if (it == hourly_samples_.end()) return out;
  for (const auto& [hour, sample] : it->second) {
    out.emplace_back(hour, sample.Summary());
  }
  return out;
}

std::vector<std::pair<SimTime, int64_t>> MetricsRecorder::HourlyCounts(
    const std::string& counter) const {
  std::vector<std::pair<SimTime, int64_t>> out;
  const auto it = hourly_counts_.find(counter);
  if (it == hourly_counts_.end()) return out;
  out.assign(it->second.begin(), it->second.end());
  return out;
}

int64_t MetricsRecorder::TotalCount(const std::string& counter) const {
  int64_t total = 0;
  for (const auto& [_, n] : HourlyCounts(counter)) total += n;
  return total;
}

Sample MetricsRecorder::AllObservations(const std::string& metric) const {
  Sample all;
  const auto it = hourly_samples_.find(metric);
  if (it == hourly_samples_.end()) return all;
  for (const auto& [_, sample] : it->second) {
    for (double v : sample.values()) all.Add(v);
  }
  return all;
}

double SeriesSum(const MetricsRecorder& metrics, const std::string& series) {
  double sum = 0;
  for (const SeriesPoint& p : metrics.Series(series)) sum += p.value;
  return sum;
}

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::ToString() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t i = 0; i < headers_.size(); ++i) widths[i] = headers_[i].size();
  for (const auto& row : rows_) {
    for (size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  std::string out;
  auto append_row = [&](const std::vector<std::string>& cells) {
    for (size_t i = 0; i < cells.size(); ++i) {
      out += "| ";
      out += cells[i];
      out.append(widths[i] - cells[i].size() + 1, ' ');
    }
    out += "|\n";
  };
  append_row(headers_);
  std::string rule;
  for (size_t w : widths) {
    rule += "|";
    rule.append(w + 2, '-');
  }
  rule += "|\n";
  out += rule;
  for (const auto& row : rows_) append_row(row);
  return out;
}

std::string Fmt(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
  return buf;
}

}  // namespace autocomp::sim
