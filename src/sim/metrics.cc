#include "sim/metrics.h"

#include <algorithm>
#include <cstdio>
#include <cstring>

namespace autocomp::sim {

namespace {
SimTime HourOf(SimTime t) { return (t / kHour) * kHour; }

std::string Describe(const std::string& name, const char* what) {
  return "metric '" + name + "': " + what;
}
}  // namespace

MetricId MetricsRecorder::Intern(const std::string& name) {
  const auto [it, inserted] =
      ids_.emplace(name, static_cast<int32_t>(slots_.size()));
  if (inserted) slots_.emplace_back();
  return MetricId{it->second};
}

const MetricsRecorder::Slot* MetricsRecorder::FindSlot(
    const std::string& name) const {
  const auto it = ids_.find(name);
  return it == ids_.end() ? nullptr
                          : &slots_[static_cast<size_t>(it->second)];
}

void MetricsRecorder::Record(const std::string& series, SimTime time,
                             double value) {
  Record(Intern(series), time, value);
}

void MetricsRecorder::Record(MetricId id, SimTime time, double value) {
  slots_[static_cast<size_t>(id.value)].series.push_back(
      SeriesPoint{time, value});
}

void MetricsRecorder::Observe(const std::string& metric, SimTime time,
                              double value) {
  Observe(Intern(metric), time, value);
}

void MetricsRecorder::Observe(MetricId id, SimTime time, double value) {
  slots_[static_cast<size_t>(id.value)].hourly_samples[HourOf(time)].Add(
      value);
}

void MetricsRecorder::Increment(const std::string& counter, SimTime time,
                                int64_t n) {
  Increment(Intern(counter), time, n);
}

void MetricsRecorder::Increment(MetricId id, SimTime time, int64_t n) {
  slots_[static_cast<size_t>(id.value)].hourly_counts[HourOf(time)] += n;
}

const std::vector<SeriesPoint>& MetricsRecorder::Series(
    const std::string& series) const {
  static const std::vector<SeriesPoint> kEmpty;
  const Slot* slot = FindSlot(series);
  return slot == nullptr ? kEmpty : slot->series;
}

std::vector<std::pair<SimTime, QuantileSummary>>
MetricsRecorder::HourlySummaries(const std::string& metric) const {
  std::vector<std::pair<SimTime, QuantileSummary>> out;
  const Slot* slot = FindSlot(metric);
  if (slot == nullptr) return out;
  for (const auto& [hour, sample] : slot->hourly_samples) {
    out.emplace_back(hour, sample.Summary());
  }
  return out;
}

std::vector<std::pair<SimTime, int64_t>> MetricsRecorder::HourlyCounts(
    const std::string& counter) const {
  std::vector<std::pair<SimTime, int64_t>> out;
  const Slot* slot = FindSlot(counter);
  if (slot == nullptr) return out;
  out.assign(slot->hourly_counts.begin(), slot->hourly_counts.end());
  return out;
}

int64_t MetricsRecorder::TotalCount(const std::string& counter) const {
  int64_t total = 0;
  for (const auto& [_, n] : HourlyCounts(counter)) total += n;
  return total;
}

Sample MetricsRecorder::AllObservations(const std::string& metric) const {
  Sample all;
  const Slot* slot = FindSlot(metric);
  if (slot == nullptr) return all;
  for (const auto& [_, sample] : slot->hourly_samples) {
    for (double v : sample.values()) all.Add(v);
  }
  return all;
}

bool MetricsRecorder::Equals(const MetricsRecorder& other,
                             std::string* why) const {
  const auto fail = [&](const std::string& message) {
    if (why != nullptr) *why = message;
    return false;
  };
  // Union of names; interned-but-empty slots on either side are ignored
  // so pre-registration of handles does not affect equality.
  std::map<std::string, std::pair<const Slot*, const Slot*>> by_name;
  for (const auto& [name, id] : ids_) {
    by_name[name].first = &slots_[static_cast<size_t>(id)];
  }
  for (const auto& [name, id] : other.ids_) {
    by_name[name].second = &other.slots_[static_cast<size_t>(id)];
  }
  static const Slot kEmpty;
  for (const auto& [name, pair] : by_name) {
    const Slot& a = pair.first != nullptr ? *pair.first : kEmpty;
    const Slot& b = pair.second != nullptr ? *pair.second : kEmpty;
    if (a.series.size() != b.series.size()) {
      return fail(Describe(name, "series length differs"));
    }
    for (size_t i = 0; i < a.series.size(); ++i) {
      if (a.series[i].time != b.series[i].time ||
          a.series[i].value != b.series[i].value) {
        return fail(Describe(name, "series point differs at index ") +
                    std::to_string(i));
      }
    }
    if (a.hourly_counts != b.hourly_counts) {
      return fail(Describe(name, "hourly counts differ"));
    }
    if (a.hourly_samples.size() != b.hourly_samples.size()) {
      return fail(Describe(name, "sampled hour set differs"));
    }
    auto ita = a.hourly_samples.begin();
    auto itb = b.hourly_samples.begin();
    for (; ita != a.hourly_samples.end(); ++ita, ++itb) {
      if (ita->first != itb->first) {
        return fail(Describe(name, "sampled hour set differs"));
      }
      // Per-hour multiset equality, bit-exact on values. Sorted copies
      // make the comparison independent of within-hour arrival order
      // (lane merge order is fixed, but Sample sorts lazily in place).
      std::vector<double> va = ita->second.values();
      std::vector<double> vb = itb->second.values();
      if (va.size() != vb.size()) {
        return fail(Describe(name, "sample count differs in hour ") +
                    std::to_string(ita->first));
      }
      std::sort(va.begin(), va.end());
      std::sort(vb.begin(), vb.end());
      if (va != vb) {
        return fail(Describe(name, "sample values differ in hour ") +
                    std::to_string(ita->first));
      }
    }
  }
  return true;
}

obs::MetricsSnapshot MetricsRecorder::Snapshot() const {
  obs::MetricsSnapshot snap;
  for (const auto& [name, id] : ids_) {
    const Slot& slot = slots_[static_cast<size_t>(id)];
    if (!slot.series.empty()) {
      snap.gauges[name] = slot.series.back().value;
    }
    if (!slot.hourly_counts.empty()) {
      int64_t total = 0;
      for (const auto& [hour, n] : slot.hourly_counts) total += n;
      snap.counters[name] = total;
    }
    obs::MetricsSnapshot::Summary summary;
    for (const auto& [hour, sample] : slot.hourly_samples) {
      if (sample.count() == 0) continue;
      if (summary.count == 0) {
        summary.min = sample.Min();
        summary.max = sample.Max();
      } else {
        summary.min = std::min(summary.min, sample.Min());
        summary.max = std::max(summary.max, sample.Max());
      }
      summary.count += sample.count();
      summary.sum += sample.Sum();
    }
    if (summary.count > 0) snap.summaries[name] = summary;
  }
  return snap;
}

MetricsRecorder MetricsRecorder::Merge(
    const std::vector<const MetricsRecorder*>& lanes) {
  MetricsRecorder out;
  // Pass 1: union-intern every lane's names (first-seen order — the same
  // ids the old per-name loop assigned) and build per-lane slot
  // translations, summing series lengths so the append pass never
  // reallocates and never touches a name map again.
  std::vector<std::vector<int32_t>> translate(lanes.size());
  std::vector<size_t> series_sizes;
  for (size_t l = 0; l < lanes.size(); ++l) {
    const MetricsRecorder* lane = lanes[l];
    if (lane == nullptr) continue;
    translate[l].assign(lane->slots_.size(), -1);
    for (const auto& [name, id] : lane->ids_) {
      const int32_t dst = out.Intern(name).value;
      translate[l][static_cast<size_t>(id)] = dst;
      if (static_cast<size_t>(dst) >= series_sizes.size()) {
        series_sizes.resize(static_cast<size_t>(dst) + 1, 0);
      }
      series_sizes[static_cast<size_t>(dst)] +=
          lane->slots_[static_cast<size_t>(id)].series.size();
    }
  }
  for (size_t i = 0; i < series_sizes.size(); ++i) {
    out.slots_[i].series.reserve(series_sizes[i]);
  }
  // Pass 2: append in lane order through the translated ids. Per
  // destination slot this produces exactly the lane-order concatenation
  // the name-keyed loop did — iteration by slot index instead of by name
  // only changes which *distinct* slots are visited first.
  for (size_t l = 0; l < lanes.size(); ++l) {
    const MetricsRecorder* lane = lanes[l];
    if (lane == nullptr) continue;
    for (size_t s = 0; s < lane->slots_.size(); ++s) {
      const Slot& src = lane->slots_[s];
      Slot& dst = out.slots_[static_cast<size_t>(translate[l][s])];
      dst.series.insert(dst.series.end(), src.series.begin(),
                        src.series.end());
      for (const auto& [hour, sample] : src.hourly_samples) {
        Sample& merged = dst.hourly_samples[hour];
        for (double v : sample.values()) merged.Add(v);
      }
      for (const auto& [hour, n] : src.hourly_counts) {
        dst.hourly_counts[hour] += n;
      }
    }
  }
  // Lane streams are individually time-ordered; a stable sort interleaves
  // them by time while ties keep lane order — the same result for any
  // shard count, given a fixed lane order.
  for (Slot& slot : out.slots_) {
    std::stable_sort(
        slot.series.begin(), slot.series.end(),
        [](const SeriesPoint& a, const SeriesPoint& b) {
          return a.time < b.time;
        });
  }
  return out;
}

uint64_t MetricsRecorder::ContentHash() const {
  // FNV-1a over the same view Equals compares: names in sorted order,
  // series point for point (time and value bit-exact), hourly counts,
  // per-hour sample multisets (sorted copies, like Equals, so the hash
  // is independent of within-hour arrival order). Empty slots skipped.
  uint64_t h = 1469598103934665603ull;
  const auto mix = [&h](uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 1099511628211ull;
    }
  };
  const auto mix_double = [&](double d) {
    uint64_t bits;
    static_assert(sizeof(bits) == sizeof(d));
    std::memcpy(&bits, &d, sizeof(bits));
    mix(bits);
  };
  for (const auto& [name, id] : ids_) {
    const Slot& slot = slots_[static_cast<size_t>(id)];
    if (slot.series.empty() && slot.hourly_samples.empty() &&
        slot.hourly_counts.empty()) {
      continue;
    }
    mix(static_cast<uint64_t>(name.size()));
    for (char c : name) mix(static_cast<unsigned char>(c));
    mix(static_cast<uint64_t>(slot.series.size()));
    for (const SeriesPoint& p : slot.series) {
      mix(static_cast<uint64_t>(p.time));
      mix_double(p.value);
    }
    mix(static_cast<uint64_t>(slot.hourly_counts.size()));
    for (const auto& [hour, n] : slot.hourly_counts) {
      mix(static_cast<uint64_t>(hour));
      mix(static_cast<uint64_t>(n));
    }
    mix(static_cast<uint64_t>(slot.hourly_samples.size()));
    for (const auto& [hour, sample] : slot.hourly_samples) {
      mix(static_cast<uint64_t>(hour));
      std::vector<double> values = sample.values();
      std::sort(values.begin(), values.end());
      mix(static_cast<uint64_t>(values.size()));
      for (double v : values) mix_double(v);
    }
  }
  return h;
}

double SeriesSum(const MetricsRecorder& metrics, const std::string& series) {
  double sum = 0;
  for (const SeriesPoint& p : metrics.Series(series)) sum += p.value;
  return sum;
}

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::ToString() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t i = 0; i < headers_.size(); ++i) widths[i] = headers_[i].size();
  for (const auto& row : rows_) {
    for (size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  std::string out;
  auto append_row = [&](const std::vector<std::string>& cells) {
    for (size_t i = 0; i < cells.size(); ++i) {
      out += "| ";
      out += cells[i];
      out.append(widths[i] - cells[i].size() + 1, ' ');
    }
    out += "|\n";
  };
  append_row(headers_);
  std::string rule;
  for (size_t w : widths) {
    rule += "|";
    rule.append(w + 2, '-');
  }
  rule += "|\n";
  out += rule;
  for (const auto& row : rows_) append_row(row);
  return out;
}

std::string Fmt(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
  return buf;
}

}  // namespace autocomp::sim
