/// \file environment.h
/// \brief One-stop construction of a simulated deployment: storage,
/// catalog, control plane, query and compaction clusters (Figure 5's
/// cluster integration).

#pragma once

#include <memory>

#include "catalog/catalog.h"
#include "catalog/control_plane.h"
#include "common/clock.h"
#include "engine/cluster.h"
#include "engine/compaction_runner.h"
#include "engine/query_engine.h"
#include "fault/fault_injector.h"
#include "fault/retry_policy.h"
#include "storage/filesystem.h"

namespace autocomp::sim {

/// \brief Deployment sizing, defaulting to the paper's §6 setup: a
/// 15-executor query cluster and a 3-executor compaction cluster.
struct EnvironmentOptions {
  int namenode_shards = 1;
  storage::NameNodeOptions namenode = {};
  engine::ClusterOptions query_cluster = {};      // 15 executors default
  engine::ClusterOptions compaction_cluster = {}; // overridden to 3 below
  engine::QueryEngineOptions engine = {};
  /// Catalog behaviour (metadata-footprint persistence + retention).
  /// With persist_metadata on, the retention service also reaps the
  /// manifest objects orphaned by snapshot expiry, so long-horizon
  /// lineages stop accumulating storage-side metadata.
  catalog::CatalogOptions catalog = {};
  uint64_t seed = 7;
  /// Pinned compaction-runner id (0 = process-wide counter). See
  /// QueryEngineOptions::writer_id for why the shard-parallel fleet
  /// driver pins these: file names must not depend on how many
  /// environments the process constructed before this one.
  int runner_id = 0;
  /// Fault injection for this deployment. Disabled by default; when
  /// enabled, the environment's injector is wired onto every NameNode
  /// shard, the catalog commit path and the compaction runner. The
  /// injector seed defaults to `fault.seed`; the fleet driver overrides
  /// it per lane so injections replay bit-identically across shard
  /// counts.
  fault::FaultInjectorOptions fault = {};
  /// Retry budget + backoff shape for the compaction runner.
  fault::RetryPolicy retry = {};
  /// Trace recorder observing this deployment (not owned; must outlive
  /// the environment). When set, it is wired onto every NameNode shard,
  /// the catalog commit path, the compaction runner, and the fault
  /// injector — regardless of its level, so a level-kOff recorder
  /// measures the armed-but-disabled overhead (the bench parity guard).
  obs::TraceRecorder* trace = nullptr;

  EnvironmentOptions() {
    query_cluster.executors = 15;
    compaction_cluster.executors = 3;
    // A 3-executor Spark job rewrites on the order of ~48 GiB per
    // hour; this makes large table-scope rewrites take minutes of
    // simulated time, opening the race window where user writes cause
    // cluster-side conflicts (Table 1).
    compaction_cluster.rewrite_bytes_per_hour = 48.0 * kGiB;
  }
};

/// \brief Owns all long-lived simulation components and wires them up.
class SimEnvironment {
 public:
  explicit SimEnvironment(EnvironmentOptions options = {});

  SimulatedClock& clock() { return clock_; }
  storage::DistributedFileSystem& dfs() { return *dfs_; }
  catalog::Catalog& catalog() { return *catalog_; }
  catalog::ControlPlane& control_plane() { return *control_plane_; }
  engine::Cluster& query_cluster() { return *query_cluster_; }
  engine::Cluster& compaction_cluster() { return *compaction_cluster_; }
  engine::QueryEngine& query_engine() { return *query_engine_; }
  /// Runner bound to the dedicated compaction cluster.
  engine::CompactionRunner& compaction_runner() { return *compaction_runner_; }
  /// The deployment's fault injector (always constructed; a disabled
  /// injector is a no-op on every site).
  fault::FaultInjector& fault_injector() { return *fault_injector_; }

  /// Total data files currently in storage (the Figure 6/10c metric).
  int64_t TotalFileCount() const;

  const EnvironmentOptions& options() const { return options_; }

 private:
  EnvironmentOptions options_;
  SimulatedClock clock_;
  std::unique_ptr<fault::FaultInjector> fault_injector_;
  std::unique_ptr<storage::DistributedFileSystem> dfs_;
  std::unique_ptr<catalog::Catalog> catalog_;
  std::unique_ptr<catalog::ControlPlane> control_plane_;
  std::unique_ptr<engine::Cluster> query_cluster_;
  std::unique_ptr<engine::Cluster> compaction_cluster_;
  std::unique_ptr<engine::QueryEngine> query_engine_;
  std::unique_ptr<engine::CompactionRunner> compaction_runner_;
};

}  // namespace autocomp::sim
