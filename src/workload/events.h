/// \file events.h
/// \brief Timestamped workload events consumed by the simulation harness.

#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/units.h"
#include "engine/query_engine.h"

namespace autocomp::workload {

/// \brief One query (read or write) issued by a workload stream.
struct QueryEvent {
  SimTime time = 0;
  /// Stream label for reporting ("dashboard", "hourly-etl", ...).
  std::string stream;
  bool is_write = false;
  /// For reads: target table and optional partition restriction.
  std::string table;
  std::optional<std::string> read_partition;
  /// For writes: the full spec (table inside).
  engine::WriteSpec write;
};

/// \brief Stable chronological ordering (ties broken by stream+table so
/// runs are reproducible).
void SortEvents(std::vector<QueryEvent>* events);

/// \brief Merges multiple event lists into one sorted timeline.
std::vector<QueryEvent> MergeTimelines(
    std::vector<std::vector<QueryEvent>> timelines);

}  // namespace autocomp::workload
