/// \file trickle.h
/// \brief Managed trickle-ingestion pipeline (§2): raw event data lands
/// every five minutes and is incrementally compacted into ~512MB files in
/// hourly partitions. Contrasted with untuned user jobs in Figure 1.

#pragma once

#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "catalog/control_plane.h"
#include "common/random.h"
#include "common/units.h"
#include "engine/compaction_runner.h"
#include "engine/query_engine.h"
#include "workload/events.h"

namespace autocomp::workload {

struct TrickleOptions {
  std::string db = "raw";
  /// Number of raw event tables (one per high-volume topic).
  int num_topics = 4;
  SimTime start_time = 0;
  SimTime duration = 6 * kHour;
  /// Logical bytes landing per topic per 5-minute flush.
  int64_t bytes_per_flush = 96 * kMiB;
  uint64_t seed = 511;
};

/// \brief Central ingestion pipeline: deterministic 5-minute appends into
/// hourly partitions plus an hourly rollup that compacts the just-closed
/// partition to the 512MB target.
class TrickleIngestion {
 public:
  explicit TrickleIngestion(TrickleOptions options);

  /// Creates the raw tables (partitioned by hour via identity key).
  Status Setup(catalog::Catalog* catalog, SimTime at);

  /// 5-minute append events for the whole window.
  std::vector<QueryEvent> GenerateEvents() const;

  /// Hourly partition key for a timestamp ("hour=000012").
  static std::string HourPartition(SimTime t);

  /// Compacts the partition that closed at `hour_boundary` for every
  /// topic (the pipeline's incremental hourly compaction). Returns the
  /// number of committed rewrites.
  Result<int> RunHourlyRollup(engine::CompactionRunner* runner,
                              catalog::ControlPlane* control_plane,
                              SimTime hour_boundary) const;

  std::vector<std::string> TableNames() const;
  const TrickleOptions& options() const { return options_; }

 private:
  TrickleOptions options_;
};

}  // namespace autocomp::workload
