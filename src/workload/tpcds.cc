#include "workload/tpcds.h"

#include <cstdio>

#include "lst/partition.h"
#include "lst/types.h"
#include "workload/tpch.h"

namespace autocomp::workload {

const std::vector<TpcdsTableSpec>& TpcdsTables() {
  static const std::vector<TpcdsTableSpec> kTables = {
      {"store_sales", 0.38, true},    {"catalog_sales", 0.20, true},
      {"web_sales", 0.10, true},      {"store_returns", 0.05, true},
      {"catalog_returns", 0.04, true}, {"web_returns", 0.02, true},
      {"inventory", 0.12, true},      {"customer", 0.04, false},
      {"customer_address", 0.02, false}, {"item", 0.015, false},
      {"date_dim", 0.005, false},     {"store", 0.01, false},
  };
  return kTables;
}

std::vector<std::string> TpcdsMonthPartitions() {
  std::vector<std::string> out;
  char buf[40];
  for (int year = 1998; year <= 2002; ++year) {
    for (int month = 1; month <= 12; ++month) {
      std::snprintf(buf, sizeof(buf), "sold_month=%04d-%02d", year, month);
      out.emplace_back(buf);
    }
  }
  return out;
}

namespace {

lst::Schema FactSchema() {
  return lst::Schema(0, {{1, "sk", lst::FieldType::kInt64, true},
                         {2, "sold_date", lst::FieldType::kDate, true},
                         {3, "quantity", lst::FieldType::kInt32, false},
                         {4, "price", lst::FieldType::kDouble, false},
                         {5, "cost", lst::FieldType::kDouble, false}});
}

lst::PartitionSpec FactPartitionSpec() {
  return lst::PartitionSpec(1,
                            {{2, lst::Transform::kMonth, "sold_month"}});
}

lst::Schema DimSchema() {
  return lst::Schema(0, {{1, "sk", lst::FieldType::kInt64, true},
                         {2, "name", lst::FieldType::kString, false},
                         {3, "attr", lst::FieldType::kString, false}});
}

}  // namespace

TpcdsWorkload::TpcdsWorkload(TpcdsOptions options)
    : options_(std::move(options)) {}

Status TpcdsWorkload::Setup(catalog::Catalog* catalog,
                            engine::QueryEngine* engine, SimTime at) {
  if (!catalog->DatabaseExists(options_.db)) {
    AUTOCOMP_RETURN_NOT_OK(catalog->CreateDatabase(options_.db));
  }
  engine::WriterProfile profile;
  profile.target_file_bytes = 512 * kMiB;
  profile.write_tasks = 16;
  profile.size_jitter_sigma = 0.2;
  // The benchmark's load phase is tuned: output coalesced to the target
  // file size, so the initial layout is near-optimal (Figure 3 baseline).
  profile.coalesce_output = true;

  for (const TpcdsTableSpec& spec : TpcdsTables()) {
    auto table = catalog->CreateTable(
        options_.db, spec.name, spec.partitioned ? FactSchema() : DimSchema(),
        spec.partitioned ? FactPartitionSpec()
                         : lst::PartitionSpec::Unpartitioned());
    AUTOCOMP_RETURN_NOT_OK(table.status());

    engine::WriteSpec write;
    write.table = options_.db + "." + spec.name;
    write.kind = engine::WriteKind::kAppend;
    write.logical_bytes = static_cast<int64_t>(
        static_cast<double>(options_.total_logical_bytes) *
        spec.size_fraction);
    if (write.logical_bytes <= 0) continue;
    write.profile = profile;
    if (spec.partitioned) write.partitions = TpcdsMonthPartitions();
    auto result = engine->ExecuteWrite(write, at);
    AUTOCOMP_RETURN_NOT_OK(result.status());
  }
  return Status::OK();
}

std::vector<std::string> TpcdsWorkload::TableNames() const {
  std::vector<std::string> out;
  for (const TpcdsTableSpec& spec : TpcdsTables()) {
    out.push_back(options_.db + "." + spec.name);
  }
  return out;
}

std::vector<std::pair<std::string, std::optional<std::string>>>
TpcdsWorkload::SingleUserQueries(Rng* rng) const {
  std::vector<std::pair<std::string, std::optional<std::string>>> out;
  const auto& tables = TpcdsTables();
  std::vector<double> weights;
  weights.reserve(tables.size());
  for (const TpcdsTableSpec& spec : tables) {
    // Query frequency roughly tracks table size (fact-heavy benchmark).
    weights.push_back(0.05 + spec.size_fraction);
  }
  const std::vector<std::string> months = TpcdsMonthPartitions();
  for (int q = 0; q < options_.queries_per_pass; ++q) {
    const size_t idx = rng->WeightedIndex(weights);
    const TpcdsTableSpec& spec = tables[idx];
    std::optional<std::string> partition;
    if (spec.partitioned && rng->Bernoulli(0.5)) {
      partition = months[static_cast<size_t>(
          rng->UniformInt(0, static_cast<int64_t>(months.size()) - 1))];
    }
    out.emplace_back(options_.db + "." + spec.name, partition);
  }
  return out;
}

std::vector<engine::WriteSpec> TpcdsWorkload::MaintenanceWrites(
    double fraction, Rng* rng) const {
  std::vector<engine::WriteSpec> out;
  const std::vector<std::string> months = TpcdsMonthPartitions();
  for (const TpcdsTableSpec& spec : TpcdsTables()) {
    if (!spec.partitioned) continue;  // TPC-DS DM targets the fact tables
    engine::WriteSpec write;
    write.table = options_.db + "." + spec.name;
    write.kind = engine::WriteKind::kOverwrite;
    write.logical_bytes = static_cast<int64_t>(
        static_cast<double>(options_.total_logical_bytes) *
        spec.size_fraction * fraction);
    if (write.logical_bytes <= 0) continue;
    write.profile = engine::UntunedUserJobProfile();
    write.replace_fraction = fraction;
    // The TPC-DS maintenance functions delete/insert by date ranges that
    // span the table's history, so modifications land across many months.
    const int touched = 12 + static_cast<int>(rng->UniformInt(0, 6));
    for (int i = 0; i < touched; ++i) {
      const int64_t pick =
          rng->UniformInt(0, static_cast<int64_t>(months.size()) - 1);
      write.partitions.push_back(months[static_cast<size_t>(pick)]);
    }
    out.push_back(std::move(write));
  }
  return out;
}

}  // namespace autocomp::workload
