/// \file tpcds.h
/// \brief TPC-DS-like phase model (Figures 3 and 9).
///
/// The simulation keeps TPC-DS at the fidelity the experiments need: a
/// database of fact/dimension tables (facts date-partitioned), a
/// single-user phase that scans tables query-by-query, and a data
/// maintenance phase that modifies ~3% of the data via delete + insert,
/// spraying small files (§2's Figure 3 setup).

#pragma once

#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "catalog/catalog.h"
#include "common/random.h"
#include "common/units.h"
#include "engine/query_engine.h"

namespace autocomp::workload {

struct TpcdsOptions {
  std::string db = "tpcds";
  /// Total logical bytes across all tables (SF1000 ≈ 1TB logical).
  int64_t total_logical_bytes = 64 * kGiB;
  uint64_t seed = 2024;
  /// Queries in one single-user pass (TPC-DS has 99).
  int queries_per_pass = 99;
};

/// \brief Fact/dimension table inventory with size weights.
struct TpcdsTableSpec {
  std::string name;
  double size_fraction;
  bool partitioned;  // facts are date-partitioned
};
const std::vector<TpcdsTableSpec>& TpcdsTables();

/// \brief Monthly sales-date partitions (1998-01 .. 2002-12).
std::vector<std::string> TpcdsMonthPartitions();

class TpcdsWorkload {
 public:
  explicit TpcdsWorkload(TpcdsOptions options);

  const TpcdsOptions& options() const { return options_; }

  /// Creates and loads the database with a reasonably tuned writer.
  Status Setup(catalog::Catalog* catalog, engine::QueryEngine* engine,
               SimTime at);

  /// Qualified table names.
  std::vector<std::string> TableNames() const;

  /// One single-user pass: (table, optional partition) per query. Facts
  /// are hit more often; ~half the fact scans are partition-restricted.
  std::vector<std::pair<std::string, std::optional<std::string>>>
  SingleUserQueries(Rng* rng) const;

  /// Data maintenance: delete + insert ops touching ~`fraction` of the
  /// data, written with an untuned profile (this is what fragments the
  /// table in Figure 3).
  std::vector<engine::WriteSpec> MaintenanceWrites(double fraction,
                                                   Rng* rng) const;

 private:
  TpcdsOptions options_;
};

}  // namespace autocomp::workload
