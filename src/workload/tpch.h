/// \file tpch.h
/// \brief TPC-H-like schemas and data loading (the CAB experiments model
/// their databases on the TPC-H schema, §6: LINEITEM partitioned by
/// month(SHIPDATE), ORDERS unpartitioned).

#pragma once

#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "common/random.h"
#include "common/units.h"
#include "engine/query_engine.h"
#include "lst/partition.h"
#include "lst/types.h"

namespace autocomp::workload {

/// TPC-H date range used by dbgen: 1992-01-01 .. 1998-12-31.
inline constexpr int32_t kTpchStartYear = 1992;
inline constexpr int32_t kTpchEndYear = 1998;

/// \brief Schema of the LINEITEM table (the fields the simulation uses).
lst::Schema LineitemSchema();
/// \brief month(L_SHIPDATE) partition spec for LINEITEM.
lst::PartitionSpec LineitemPartitionSpec();

/// \brief Schema of the ORDERS table.
lst::Schema OrdersSchema();

/// \brief All monthly partition keys ("shipdate_month=1992-01"...).
std::vector<std::string> LineitemMonthPartitions();

/// \brief Relative logical-size weights of the TPC-H tables (LINEITEM
/// dominates at ~70% of the database).
struct TpchTableSpec {
  std::string name;
  double size_fraction;
  bool partitioned;
};
const std::vector<TpchTableSpec>& TpchTables();

/// \brief Creates the TPC-H-like tables of one database and loads
/// `total_logical_bytes` of synthetic data split across them with the
/// given writer profile.
///
/// Partitioned tables spread their bytes over the monthly partitions; the
/// load itself writes through the engine so untuned profiles immediately
/// produce the small-file spray of Figure 1.
Status SetupTpchDatabase(catalog::Catalog* catalog,
                         engine::QueryEngine* engine, const std::string& db,
                         int64_t total_logical_bytes,
                         const engine::WriterProfile& profile, SimTime at,
                         int64_t target_file_size_bytes = 512 * kMiB);

}  // namespace autocomp::workload
