/// \file cab.h
/// \brief CAB-like workload generator (§6: query streams "modeled after
/// real-world usage patterns in cloud data warehouse environments").
///
/// Four stream archetypes per database, matching the paper's list:
///  * dashboards — constant demand with sinusoidal variation (reads),
///  * interactive — short read bursts,
///  * maintenance — large daily write bursts,
///  * hourly ETL — predictable writes at fixed times.
///
/// A configurable write spike reproduces the hour-4 load bump the paper
/// observes in Figure 6. Updates hit both the partitioned LINEITEM and
/// the unpartitioned ORDERS tables (the paper's extension of CAB-gen).

#pragma once

#include <string>
#include <vector>

#include "common/random.h"
#include "common/units.h"
#include "workload/events.h"
#include "workload/tpch.h"

namespace autocomp::workload {

/// \brief Generator parameters (defaults mirror §6's test scenario where
/// sensible: 20 databases, 5-hour experiment).
struct CabOptions {
  int num_databases = 20;
  SimTime start_time = 0;
  SimTime duration = 5 * kHour;
  uint64_t seed = 99;

  /// Mean dashboard reads per database-hour (sinusoidally modulated).
  double dashboard_reads_per_hour = 10.0;
  /// Short-burst arrivals per database-hour and reads per burst.
  double bursts_per_hour = 0.6;
  int reads_per_burst = 5;
  /// Predictable ETL writes per database-hour.
  int etl_writes_per_hour = 4;
  /// Logical bytes per ETL write.
  int64_t etl_write_bytes = 48 * kMiB;
  /// Daily-style maintenance write bursts per database over the whole
  /// experiment (bytes are `maintenance_write_bytes`).
  int maintenance_bursts = 1;
  int64_t maintenance_write_bytes = 512 * kMiB;
  /// Fraction of writes that are overwrites (vs appends).
  double overwrite_fraction = 0.5;
  /// Hour (since start) of the global write spike and its multiplier.
  int spike_hour = 3;  // 0-indexed: the paper's "hour four"
  double spike_multiplier = 3.0;
};

/// \brief Deterministic CAB-like event generator.
class CabWorkload {
 public:
  explicit CabWorkload(CabOptions options);

  /// Database names "cab_db00".."cab_dbNN".
  std::vector<std::string> DatabaseNames() const;

  /// Full event timeline over [start_time, start_time + duration).
  std::vector<QueryEvent> GenerateEvents() const;

  const CabOptions& options() const { return options_; }

 private:
  std::vector<QueryEvent> GenerateForDatabase(const std::string& db,
                                              Rng rng) const;

  CabOptions options_;
};

}  // namespace autocomp::workload
