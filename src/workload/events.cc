#include "workload/events.h"

#include <algorithm>

namespace autocomp::workload {

void SortEvents(std::vector<QueryEvent>* events) {
  std::stable_sort(events->begin(), events->end(),
                   [](const QueryEvent& a, const QueryEvent& b) {
                     if (a.time != b.time) return a.time < b.time;
                     if (a.stream != b.stream) return a.stream < b.stream;
                     const std::string& ta = a.is_write ? a.write.table : a.table;
                     const std::string& tb = b.is_write ? b.write.table : b.table;
                     return ta < tb;
                   });
}

std::vector<QueryEvent> MergeTimelines(
    std::vector<std::vector<QueryEvent>> timelines) {
  std::vector<QueryEvent> out;
  size_t total = 0;
  for (const auto& t : timelines) total += t.size();
  out.reserve(total);
  for (auto& t : timelines) {
    out.insert(out.end(), std::make_move_iterator(t.begin()),
               std::make_move_iterator(t.end()));
  }
  SortEvents(&out);
  return out;
}

}  // namespace autocomp::workload
