/// \file fleet.h
/// \brief Scaled-down model of a production table fleet (§7: 35K tables
/// across tenant databases with namespace quotas, daily write activity
/// skewed toward a hot subset, and a daily scan-heavy workload).
///
/// Drives the production-deployment experiments: Figure 2 (distribution
/// shift none → manual → auto), Figure 10 (rollout timeline), and
/// Figure 11 (workload impact and open() calls).

#pragma once

#include <functional>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "catalog/control_plane.h"
#include "common/random.h"
#include "common/units.h"
#include "engine/query_engine.h"
#include "workload/events.h"

namespace autocomp::workload {

struct FleetOptions {
  /// Tenant databases and tables per database (defaults give an ~800
  /// table fleet — a 1:40 scale model of the 35K-table deployment).
  int num_databases = 16;
  int tables_per_db = 12;
  /// Namespace-quota objects per database.
  int64_t quota_objects_per_db = 400'000;
  /// Lognormal parameters for table logical size (median ~e^mu bytes).
  double size_mu = std::log(4.0 * kGiB);
  double size_sigma = 1.6;
  /// Fraction of tables that are date-partitioned.
  double partitioned_fraction = 0.45;
  /// Fraction of tables written on any given day (Zipf-skewed pick).
  double daily_write_fraction = 0.15;
  /// Logical bytes per daily write, as a fraction of table size.
  double daily_write_size_fraction = 0.02;
  /// Reads per table per day for the scan-heavy daily workload.
  double daily_reads_per_table = 0.3;
  /// New tables onboarded per day (the deployment keeps growing).
  int new_tables_per_day = 2;
  uint64_t seed = 77;
};

/// \brief Destination components for one tenant database. The sharded
/// fleet simulator keeps each database in its own lane (catalog, engine,
/// control plane); the classic single-environment path resolves every
/// database to the same triple.
struct LaneTargets {
  catalog::Catalog* catalog = nullptr;
  engine::QueryEngine* engine = nullptr;
  catalog::ControlPlane* control_plane = nullptr;  // optional
};

/// \brief Maps a tenant database name to the components that own it.
using LaneResolver = std::function<LaneTargets(const std::string& db)>;

/// \brief Fleet generator with per-day event production.
class FleetWorkload {
 public:
  /// \brief One deferred table materialisation: a table's creation plus
  /// its initial (fragmented) load, with every random draw already
  /// taken. Drawing is the only part that consumes the fleet's shared
  /// random sequence, so ops can be materialised lazily per lane — the
  /// lazy fleet driver queues them on unhydrated lanes — as long as each
  /// lane replays its own ops in plan order. Materialize is pure given
  /// the op (the engine's own rng advances identically either way).
  struct TableOp {
    std::string db;
    std::string table;  // unqualified
    SimTime at = 0;
    bool partitioned = false;
    /// The initial load; `load.table` is the qualified name.
    engine::WriteSpec load;
    /// Setup tables get the fleet's default compaction policy (applied
    /// only when the materialising lane has a control plane).
    bool set_policy = false;
    catalog::TablePolicy policy;
  };

  explicit FleetWorkload(FleetOptions options);

  /// Creates databases/tables and performs the initial (fragmented)
  /// load. Progress is deterministic in `seed`.
  Status Setup(catalog::Catalog* catalog, engine::QueryEngine* engine,
               catalog::ControlPlane* control_plane, SimTime at);

  /// Sharded variant: identical table parameters and creation order (the
  /// generator's own rng draws are shared and sequential), but each
  /// database's objects are created in the components `resolver` returns
  /// for it. Used by the shard-parallel fleet driver, whose lanes own
  /// disjoint databases.
  Status SetupSharded(const LaneResolver& resolver, SimTime at);

  /// Write + read events for simulation day `day` (0-based), spread over
  /// business hours. Includes onboarding of new tables (the returned
  /// events reference them only after `OnboardNewTables` ran for that
  /// day).
  std::vector<QueryEvent> EventsForDay(int day) const;

  /// Creates this day's newly onboarded tables (call before executing the
  /// day's events).
  Status OnboardNewTables(catalog::Catalog* catalog,
                          engine::QueryEngine* engine, int day, SimTime at);

  /// Sharded variant of OnboardNewTables (same draws, routed per lane).
  Status OnboardNewTablesSharded(const LaneResolver& resolver, int day,
                                 SimTime at);

  /// Draws the whole initial fleet (databases d0..dN in order, tables
  /// t0..tM within each) into deferred ops, consuming exactly the draws
  /// Setup would. Ops are grouped by database in database order. The
  /// caller owns database creation (CreateDatabase draws nothing and
  /// issues no RPCs); every database 0..num_databases-1 must exist in a
  /// lane's catalog before its ops materialise there.
  std::vector<TableOp> PlanSetup(SimTime at);

  /// Draws day `day`'s onboarded tables into deferred ops (same draws as
  /// OnboardNewTables).
  std::vector<TableOp> PlanOnboard(int day, SimTime at);

  /// Executes one drawn op against a lane: CreateTable + initial load
  /// (+ policy). No random draws; deterministic given the op.
  static Status Materialize(const LaneTargets& lane, const TableOp& op);

  /// Tenant database of a fleet event (the lane-partitioning key).
  static std::string DatabaseOf(const QueryEvent& event);

  /// All currently onboarded qualified table names.
  const std::vector<std::string>& TableNames() const { return tables_; }

  const FleetOptions& options() const { return options_; }

 private:
  struct TableInfo {
    std::string qualified_name;
    int64_t logical_bytes = 0;
    bool partitioned = false;
  };

  /// Draws one table's parameters from `rng` (the exact sequence the
  /// pre-split CreateAndLoadTable consumed) and registers it in
  /// tables_/infos_ so EventsForDay can target it.
  TableOp DrawTableOp(const std::string& db, const std::string& name,
                      SimTime at, Rng* rng);

  FleetOptions options_;
  Rng base_rng_;
  std::vector<std::string> tables_;
  std::vector<TableInfo> infos_;
};

}  // namespace autocomp::workload
