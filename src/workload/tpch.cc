#include "workload/tpch.h"

#include <cstdio>

#include "common/logging.h"

namespace autocomp::workload {

lst::Schema LineitemSchema() {
  return lst::Schema(
      0, {{1, "l_orderkey", lst::FieldType::kInt64, true},
          {2, "l_partkey", lst::FieldType::kInt64, true},
          {3, "l_suppkey", lst::FieldType::kInt64, true},
          {4, "l_linenumber", lst::FieldType::kInt32, true},
          {5, "l_quantity", lst::FieldType::kDouble, true},
          {6, "l_extendedprice", lst::FieldType::kDouble, true},
          {7, "l_discount", lst::FieldType::kDouble, true},
          {8, "l_tax", lst::FieldType::kDouble, true},
          {9, "l_returnflag", lst::FieldType::kString, true},
          {10, "l_linestatus", lst::FieldType::kString, true},
          {11, "l_shipdate", lst::FieldType::kDate, true},
          {12, "l_commitdate", lst::FieldType::kDate, true},
          {13, "l_receiptdate", lst::FieldType::kDate, true},
          {14, "l_shipinstruct", lst::FieldType::kString, false},
          {15, "l_shipmode", lst::FieldType::kString, false},
          {16, "l_comment", lst::FieldType::kString, false}});
}

lst::PartitionSpec LineitemPartitionSpec() {
  return lst::PartitionSpec(
      1, {{/*source_field_id=*/11, lst::Transform::kMonth, "shipdate_month"}});
}

lst::Schema OrdersSchema() {
  return lst::Schema(0, {{1, "o_orderkey", lst::FieldType::kInt64, true},
                         {2, "o_custkey", lst::FieldType::kInt64, true},
                         {3, "o_orderstatus", lst::FieldType::kString, true},
                         {4, "o_totalprice", lst::FieldType::kDouble, true},
                         {5, "o_orderdate", lst::FieldType::kDate, true},
                         {6, "o_orderpriority", lst::FieldType::kString, false},
                         {7, "o_clerk", lst::FieldType::kString, false},
                         {8, "o_shippriority", lst::FieldType::kInt32, false},
                         {9, "o_comment", lst::FieldType::kString, false}});
}

std::vector<std::string> LineitemMonthPartitions() {
  std::vector<std::string> out;
  char buf[48];
  for (int32_t year = kTpchStartYear; year <= kTpchEndYear; ++year) {
    for (int32_t month = 1; month <= 12; ++month) {
      std::snprintf(buf, sizeof(buf), "shipdate_month=%04d-%02d", year, month);
      out.emplace_back(buf);
    }
  }
  return out;
}

const std::vector<TpchTableSpec>& TpchTables() {
  static const std::vector<TpchTableSpec> kTables = {
      {"lineitem", 0.70, true},  {"orders", 0.16, false},
      {"partsupp", 0.08, false}, {"customer", 0.03, false},
      {"part", 0.02, false},     {"supplier", 0.01, false},
  };
  return kTables;
}

Status SetupTpchDatabase(catalog::Catalog* catalog,
                         engine::QueryEngine* engine, const std::string& db,
                         int64_t total_logical_bytes,
                         const engine::WriterProfile& profile, SimTime at,
                         int64_t target_file_size_bytes) {
  if (!catalog->DatabaseExists(db)) {
    AUTOCOMP_RETURN_NOT_OK(catalog->CreateDatabase(db));
  }
  Config props;
  props.SetInt(lst::kPropTargetFileSizeBytes, target_file_size_bytes);
  for (const TpchTableSpec& spec : TpchTables()) {
    lst::Schema schema =
        spec.name == "lineitem" ? LineitemSchema() : OrdersSchema();
    lst::PartitionSpec part_spec = spec.partitioned
                                       ? LineitemPartitionSpec()
                                       : lst::PartitionSpec::Unpartitioned();
    auto table =
        catalog->CreateTable(db, spec.name, schema, part_spec, props);
    AUTOCOMP_RETURN_NOT_OK(table.status());

    engine::WriteSpec write;
    write.table = db + "." + spec.name;
    write.kind = engine::WriteKind::kAppend;
    write.logical_bytes = static_cast<int64_t>(
        static_cast<double>(total_logical_bytes) * spec.size_fraction);
    if (write.logical_bytes <= 0) continue;
    write.profile = profile;
    if (spec.partitioned) write.partitions = LineitemMonthPartitions();
    auto result = engine->ExecuteWrite(write, at);
    AUTOCOMP_RETURN_NOT_OK(result.status());
    if (result->conflict_failed) {
      return Status::Internal("initial load lost a commit race for " +
                              write.table);
    }
  }
  return Status::OK();
}

}  // namespace autocomp::workload
