#include "workload/fleet.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "lst/partition.h"
#include "lst/types.h"

namespace autocomp::workload {

namespace {

lst::Schema FleetSchema() {
  return lst::Schema(0, {{1, "id", lst::FieldType::kInt64, true},
                         {2, "event_date", lst::FieldType::kDate, true},
                         {3, "payload", lst::FieldType::kString, false}});
}

lst::PartitionSpec FleetPartitionSpec() {
  return lst::PartitionSpec(1, {{2, lst::Transform::kMonth, "month"}});
}

std::vector<std::string> FleetMonths() {
  std::vector<std::string> out;
  char buf[32];
  for (int year = 2023; year <= 2024; ++year) {
    for (int month = 1; month <= 12; ++month) {
      std::snprintf(buf, sizeof(buf), "month=%04d-%02d", year, month);
      out.emplace_back(buf);
    }
  }
  return out;
}

}  // namespace

FleetWorkload::FleetWorkload(FleetOptions options)
    : options_(options), base_rng_(options.seed) {}

FleetWorkload::TableOp FleetWorkload::DrawTableOp(const std::string& db,
                                                  const std::string& name,
                                                  SimTime at, Rng* rng) {
  TableOp op;
  op.db = db;
  op.table = name;
  op.at = at;
  op.partitioned = rng->Bernoulli(options_.partitioned_fraction);

  TableInfo info;
  info.qualified_name = db + "." + name;
  info.partitioned = op.partitioned;
  info.logical_bytes = static_cast<int64_t>(
      std::llround(rng->LogNormal(options_.size_mu, options_.size_sigma)));
  info.logical_bytes = std::clamp<int64_t>(info.logical_bytes, 64 * kMiB,
                                           2048LL * kGiB);

  op.load.table = info.qualified_name;
  op.load.kind = engine::WriteKind::kAppend;
  op.load.logical_bytes = info.logical_bytes;
  // Most fleets onboard with untuned writers; a minority are well-tuned.
  op.load.profile = rng->Bernoulli(0.25) ? engine::TunedPipelineProfile()
                                         : engine::UntunedUserJobProfile();
  if (op.partitioned) {
    const std::vector<std::string> months = FleetMonths();
    const int span = 6 + static_cast<int>(rng->UniformInt(0, 17));
    for (int i = 0; i < span; ++i) {
      op.load.partitions.push_back(months[months.size() - 1 -
                                          static_cast<size_t>(i)]);
    }
  }
  tables_.push_back(info.qualified_name);
  infos_.push_back(std::move(info));
  return op;
}

Status FleetWorkload::Materialize(const LaneTargets& lane,
                                  const TableOp& op) {
  if (lane.catalog == nullptr || lane.engine == nullptr) {
    return Status::InvalidArgument("no lane for database " + op.db);
  }
  auto table = lane.catalog->CreateTable(
      op.db, op.table, FleetSchema(),
      op.partitioned ? FleetPartitionSpec()
                     : lst::PartitionSpec::Unpartitioned());
  AUTOCOMP_RETURN_NOT_OK(table.status());
  auto result = lane.engine->ExecuteWrite(op.load, op.at);
  AUTOCOMP_RETURN_NOT_OK(result.status());
  if (op.set_policy && lane.control_plane != nullptr) {
    lane.control_plane->SetPolicy(op.load.table, op.policy);
  }
  return Status::OK();
}

std::vector<FleetWorkload::TableOp> FleetWorkload::PlanSetup(SimTime at) {
  // All rng draws come from one shared sequence, so table parameters are
  // identical no matter how databases map onto lanes.
  Rng rng = base_rng_.Fork(0);
  std::vector<TableOp> ops;
  ops.reserve(static_cast<size_t>(options_.num_databases) *
              static_cast<size_t>(std::max(0, options_.tables_per_db)));
  char db_buf[32];
  char table_buf[32];
  for (int d = 0; d < options_.num_databases; ++d) {
    std::snprintf(db_buf, sizeof(db_buf), "tenant%03d", d);
    for (int t = 0; t < options_.tables_per_db; ++t) {
      std::snprintf(table_buf, sizeof(table_buf), "tbl%03d", t);
      TableOp op = DrawTableOp(db_buf, table_buf, at, &rng);
      op.set_policy = true;
      op.policy.target_file_size_bytes = 512 * kMiB;
      op.policy.snapshot_retention = 3 * kDay;
      ops.push_back(std::move(op));
    }
  }
  return ops;
}

Status FleetWorkload::SetupSharded(const LaneResolver& resolver, SimTime at) {
  const std::vector<TableOp> ops = PlanSetup(at);
  // Databases first, then each database's tables in plan order — the
  // exact creation order of the pre-split eager setup.
  char db_buf[32];
  size_t next = 0;
  for (int d = 0; d < options_.num_databases; ++d) {
    std::snprintf(db_buf, sizeof(db_buf), "tenant%03d", d);
    const LaneTargets lane = resolver(db_buf);
    if (lane.catalog == nullptr || lane.engine == nullptr) {
      return Status::InvalidArgument(std::string("no lane for database ") +
                                     db_buf);
    }
    AUTOCOMP_RETURN_NOT_OK(
        lane.catalog->CreateDatabase(db_buf, options_.quota_objects_per_db));
    for (; next < ops.size() && ops[next].db == db_buf; ++next) {
      AUTOCOMP_RETURN_NOT_OK(Materialize(lane, ops[next]));
    }
  }
  return Status::OK();
}

Status FleetWorkload::Setup(catalog::Catalog* catalog,
                            engine::QueryEngine* engine,
                            catalog::ControlPlane* control_plane, SimTime at) {
  return SetupSharded(
      [&](const std::string&) {
        return LaneTargets{catalog, engine, control_plane};
      },
      at);
}

std::vector<FleetWorkload::TableOp> FleetWorkload::PlanOnboard(int day,
                                                               SimTime at) {
  Rng rng = base_rng_.Fork(1000 + static_cast<uint64_t>(day));
  std::vector<TableOp> ops;
  ops.reserve(static_cast<size_t>(std::max(0, options_.new_tables_per_day)));
  char db_buf[32];
  char table_buf[48];
  for (int i = 0; i < options_.new_tables_per_day; ++i) {
    const int d = static_cast<int>(
        rng.UniformInt(0, options_.num_databases - 1));
    std::snprintf(db_buf, sizeof(db_buf), "tenant%03d", d);
    std::snprintf(table_buf, sizeof(table_buf), "new_d%03d_%02d", day, i);
    ops.push_back(DrawTableOp(db_buf, table_buf, at, &rng));
  }
  return ops;
}

Status FleetWorkload::OnboardNewTablesSharded(const LaneResolver& resolver,
                                              int day, SimTime at) {
  for (const TableOp& op : PlanOnboard(day, at)) {
    AUTOCOMP_RETURN_NOT_OK(Materialize(resolver(op.db), op));
  }
  return Status::OK();
}

Status FleetWorkload::OnboardNewTables(catalog::Catalog* catalog,
                                       engine::QueryEngine* engine, int day,
                                       SimTime at) {
  return OnboardNewTablesSharded(
      [&](const std::string&) {
        return LaneTargets{catalog, engine, nullptr};
      },
      day, at);
}

std::string FleetWorkload::DatabaseOf(const QueryEvent& event) {
  const std::string& qualified = event.is_write ? event.write.table
                                                : event.table;
  const size_t dot = qualified.find('.');
  return dot == std::string::npos ? qualified : qualified.substr(0, dot);
}

std::vector<QueryEvent> FleetWorkload::EventsForDay(int day) const {
  std::vector<QueryEvent> events;
  Rng rng = base_rng_.Fork(2000 + static_cast<uint64_t>(day));
  const SimTime day_start = static_cast<SimTime>(day) * kDay;
  const std::vector<std::string> months = FleetMonths();

  // Zipf-skewed daily writers: hot tables get written most days.
  const int64_t writers = std::max<int64_t>(
      1, static_cast<int64_t>(std::llround(
             static_cast<double>(infos_.size()) *
             options_.daily_write_fraction)));
  for (int64_t w = 0; w < writers; ++w) {
    const int64_t pick =
        rng.Zipf(static_cast<int64_t>(infos_.size()), 0.8);
    const TableInfo& info = infos_[static_cast<size_t>(pick)];
    QueryEvent e;
    e.time = day_start + 8 * kHour + rng.UniformInt(0, 10 * kHour);
    e.stream = "fleet-write";
    e.is_write = true;
    e.write.table = info.qualified_name;
    e.write.kind = rng.Bernoulli(0.3) ? engine::WriteKind::kOverwrite
                                      : engine::WriteKind::kAppend;
    e.write.logical_bytes = std::max<int64_t>(
        1 * kMiB, static_cast<int64_t>(std::llround(
                      static_cast<double>(info.logical_bytes) *
                      options_.daily_write_size_fraction *
                      rng.Uniform(0.5, 2.0))));
    e.write.profile = engine::UntunedUserJobProfile();
    if (info.partitioned) {
      const int64_t back = rng.Zipf(12, 1.3);
      e.write.partitions = {
          months[months.size() - 1 - static_cast<size_t>(back)]};
    }
    events.push_back(std::move(e));
  }

  // Scan-heavy daily workload (Figure 11a correlates its files-scanned
  // with compaction runs).
  const int64_t reads = std::max<int64_t>(
      1, static_cast<int64_t>(std::llround(
             static_cast<double>(infos_.size()) *
             options_.daily_reads_per_table)));
  for (int64_t r = 0; r < reads; ++r) {
    const int64_t pick =
        rng.Zipf(static_cast<int64_t>(infos_.size()), 0.6);
    QueryEvent e;
    e.time = day_start + 6 * kHour + rng.UniformInt(0, 14 * kHour);
    e.stream = "fleet-scan";
    e.is_write = false;
    e.table = infos_[static_cast<size_t>(pick)].qualified_name;
    events.push_back(std::move(e));
  }

  SortEvents(&events);
  return events;
}

}  // namespace autocomp::workload
