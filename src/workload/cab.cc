#include "workload/cab.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace autocomp::workload {

namespace {

/// Recent LINEITEM month partitions that writes target (CDC-style traffic
/// lands in the freshest months).
std::vector<std::string> RecentMonths(Rng* rng, int count) {
  const std::vector<std::string> all = LineitemMonthPartitions();
  std::vector<std::string> out;
  for (int i = 0; i < count; ++i) {
    // Zipf toward the most recent month.
    const int64_t back = rng->Zipf(24, 1.2);
    out.push_back(all[all.size() - 1 - static_cast<size_t>(back)]);
  }
  return out;
}

}  // namespace

CabWorkload::CabWorkload(CabOptions options) : options_(options) {}

std::vector<std::string> CabWorkload::DatabaseNames() const {
  std::vector<std::string> out;
  char buf[32];
  for (int i = 0; i < options_.num_databases; ++i) {
    std::snprintf(buf, sizeof(buf), "cab_db%02d", i);
    out.emplace_back(buf);
  }
  return out;
}

std::vector<QueryEvent> CabWorkload::GenerateForDatabase(
    const std::string& db, Rng rng) const {
  std::vector<QueryEvent> events;
  const SimTime start = options_.start_time;
  const SimTime end = start + options_.duration;
  const int hours =
      static_cast<int>((options_.duration + kHour - 1) / kHour);

  // --- Dashboards: sinusoidal read arrivals, 5-minute buckets.
  for (SimTime t = start; t < end; t += 5 * kMinute) {
    const double phase =
        2.0 * M_PI * static_cast<double>(t - start) / (3 * kHour);
    const double rate_per_hour =
        options_.dashboard_reads_per_hour * (1.0 + 0.5 * std::sin(phase));
    const double rate_per_bucket = rate_per_hour / 12.0;
    const int64_t n = rng.Poisson(rate_per_bucket);
    for (int64_t i = 0; i < n; ++i) {
      QueryEvent e;
      e.time = t + rng.UniformInt(0, 5 * kMinute - 1);
      e.stream = "dashboard";
      e.is_write = false;
      // Dashboards mostly hit LINEITEM, often partition-restricted.
      if (rng.Bernoulli(0.7)) {
        e.table = db + ".lineitem";
        if (rng.Bernoulli(0.6)) {
          e.read_partition = RecentMonths(&rng, 1).front();
        }
      } else {
        e.table = db + ".orders";
      }
      events.push_back(std::move(e));
    }
  }

  // --- Interactive short bursts.
  for (int h = 0; h < hours; ++h) {
    const int64_t bursts = rng.Poisson(options_.bursts_per_hour);
    for (int64_t b = 0; b < bursts; ++b) {
      const SimTime burst_start = start + h * kHour + rng.UniformInt(0, kHour - 1);
      for (int q = 0; q < options_.reads_per_burst; ++q) {
        QueryEvent e;
        e.time = std::min<SimTime>(end - 1, burst_start + q * 20 * kSecond);
        e.stream = "interactive";
        e.is_write = false;
        e.table = db + (rng.Bernoulli(0.5) ? ".lineitem" : ".orders");
        events.push_back(std::move(e));
      }
    }
  }

  // --- Hourly ETL writes (predictable, fixed minute per db).
  const SimTime etl_minute = rng.UniformInt(0, 59) * kMinute;
  for (int h = 0; h < hours; ++h) {
    double multiplier = 1.0;
    if (h == options_.spike_hour) multiplier = options_.spike_multiplier;
    const int writes = static_cast<int>(
        std::llround(options_.etl_writes_per_hour * multiplier));
    // Space the hour's writes so they all land within the hour even
    // during the spike.
    const SimTime spacing =
        std::min<SimTime>(7 * kMinute,
                          (kHour - etl_minute) / std::max(1, writes));
    for (int w = 0; w < writes; ++w) {
      QueryEvent e;
      e.time = start + h * kHour + etl_minute + w * spacing;
      if (e.time >= end) continue;
      e.stream = "hourly-etl";
      e.is_write = true;
      e.write.kind = rng.Bernoulli(options_.overwrite_fraction)
                         ? engine::WriteKind::kOverwrite
                         : engine::WriteKind::kAppend;
      e.write.logical_bytes = static_cast<int64_t>(
          static_cast<double>(options_.etl_write_bytes) *
          rng.Uniform(0.5, 1.5));
      e.write.profile = engine::UntunedUserJobProfile();
      // Mixed update pattern: both partitioned and unpartitioned tables.
      if (rng.Bernoulli(0.6)) {
        e.write.table = db + ".lineitem";
        e.write.partitions =
            RecentMonths(&rng, 1 + static_cast<int>(rng.UniformInt(0, 2)));
      } else {
        e.write.table = db + ".orders";
      }
      events.push_back(std::move(e));
    }
  }

  // --- Large maintenance bursts (daily jobs compressed into the window).
  for (int m = 0; m < options_.maintenance_bursts; ++m) {
    QueryEvent e;
    e.time = start + rng.UniformInt(0, options_.duration - 1);
    e.stream = "maintenance";
    e.is_write = true;
    e.write.table = db + ".lineitem";
    e.write.kind = engine::WriteKind::kOverwrite;
    e.write.logical_bytes = options_.maintenance_write_bytes;
    e.write.profile = engine::UntunedUserJobProfile();
    e.write.partitions = RecentMonths(&rng, 4);
    e.write.replace_fraction = 0.1;
    events.push_back(std::move(e));
  }

  return events;
}

std::vector<QueryEvent> CabWorkload::GenerateEvents() const {
  Rng root(options_.seed);
  std::vector<std::vector<QueryEvent>> timelines;
  uint64_t label = 0;
  for (const std::string& db : DatabaseNames()) {
    timelines.push_back(GenerateForDatabase(db, root.Fork(label++)));
  }
  return MergeTimelines(std::move(timelines));
}

}  // namespace autocomp::workload
