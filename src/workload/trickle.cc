#include "workload/trickle.h"

#include <algorithm>
#include <cstdio>

#include "lst/types.h"

namespace autocomp::workload {

TrickleIngestion::TrickleIngestion(TrickleOptions options)
    : options_(std::move(options)) {}

std::string TrickleIngestion::HourPartition(SimTime t) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "hour=%06lld",
                static_cast<long long>(t / kHour));
  return buf;
}

std::vector<std::string> TrickleIngestion::TableNames() const {
  std::vector<std::string> out;
  char buf[48];
  for (int i = 0; i < options_.num_topics; ++i) {
    std::snprintf(buf, sizeof(buf), "%s.events%02d", options_.db.c_str(), i);
    out.emplace_back(buf);
  }
  return out;
}

Status TrickleIngestion::Setup(catalog::Catalog* catalog, SimTime at) {
  (void)at;
  if (!catalog->DatabaseExists(options_.db)) {
    AUTOCOMP_RETURN_NOT_OK(catalog->CreateDatabase(options_.db));
  }
  lst::Schema schema(0, {{1, "event_time", lst::FieldType::kTimestamp, true},
                         {2, "hour_key", lst::FieldType::kInt64, true},
                         {3, "payload", lst::FieldType::kString, false}});
  lst::PartitionSpec spec(1, {{2, lst::Transform::kIdentity, "hour"}});
  char buf[32];
  for (int i = 0; i < options_.num_topics; ++i) {
    std::snprintf(buf, sizeof(buf), "events%02d", i);
    auto table = catalog->CreateTable(options_.db, buf, schema, spec);
    AUTOCOMP_RETURN_NOT_OK(table.status());
  }
  return Status::OK();
}

std::vector<QueryEvent> TrickleIngestion::GenerateEvents() const {
  std::vector<QueryEvent> events;
  Rng rng(options_.seed);
  const SimTime end = options_.start_time + options_.duration;
  for (SimTime t = options_.start_time; t < end; t += 5 * kMinute) {
    int topic = 0;
    for (const std::string& table : TableNames()) {
      QueryEvent e;
      e.time = t;
      e.stream = "trickle-ingest";
      e.is_write = true;
      e.write.table = table;
      e.write.kind = engine::WriteKind::kAppend;
      e.write.logical_bytes = static_cast<int64_t>(
          static_cast<double>(options_.bytes_per_flush) *
          rng.Uniform(0.7, 1.3));
      // Checkpoint flushes are written by a modest number of tasks; files
      // land well under target until the hourly rollup packs them.
      e.write.profile.target_file_bytes = 128 * kMiB;
      e.write.profile.write_tasks = 4;
      e.write.profile.size_jitter_sigma = 0.25;
      e.write.partitions = {HourPartition(t)};
      events.push_back(std::move(e));
      ++topic;
    }
    (void)topic;
  }
  return events;
}

Result<int> TrickleIngestion::RunHourlyRollup(
    engine::CompactionRunner* runner,
    catalog::ControlPlane* control_plane, SimTime hour_boundary) const {
  // Compact the partition that just closed (the previous hour).
  const std::string partition = HourPartition(hour_boundary - kHour);
  int committed = 0;
  SimTime cursor = hour_boundary;
  for (const std::string& table : TableNames()) {
    engine::CompactionRequest request;
    request.table = table;
    request.partition = partition;
    request.target_file_size_bytes = 512 * kMiB;
    AUTOCOMP_ASSIGN_OR_RETURN(engine::CompactionResult result,
                              runner->Run(request, cursor));
    cursor = std::max(cursor, result.end_time);
    if (result.committed) {
      ++committed;
      if (control_plane != nullptr) {
        // Reap the checkpoint files the rollup just rewrote.
        auto retention = control_plane->RunRetentionFor(table, SimTime{0});
        (void)retention;
      }
    }
  }
  return committed;
}

}  // namespace autocomp::workload
