#include "obs/trace.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <utility>

namespace autocomp::obs {

const char* TraceLevelName(TraceLevel level) {
  switch (level) {
    case TraceLevel::kOff:
      return "off";
    case TraceLevel::kPhases:
      return "phases";
    case TraceLevel::kDecisions:
      return "decisions";
    case TraceLevel::kFull:
      return "full";
  }
  return "unknown";
}

Result<TraceLevel> TraceLevelByName(std::string_view name) {
  if (name == "off") return TraceLevel::kOff;
  if (name == "phases") return TraceLevel::kPhases;
  if (name == "decisions") return TraceLevel::kDecisions;
  if (name == "full") return TraceLevel::kFull;
  return Status::InvalidArgument(
      "unknown trace level '" + std::string(name) +
      "' (valid: off, phases, decisions, full)");
}

const char* SpanCategoryName(SpanCategory category) {
  switch (category) {
    case SpanCategory::kPhase:
      return "phase";
    case SpanCategory::kDecision:
      return "decision";
    case SpanCategory::kRunner:
      return "runner";
    case SpanCategory::kCommit:
      return "commit";
    case SpanCategory::kFault:
      return "fault";
    case SpanCategory::kStorage:
      return "storage";
  }
  return "unknown";
}

uint64_t TraceDigest::Fingerprint() const {
  return CounterRng::Mix(
      CounterRng::Mix(static_cast<uint64_t>(events) ^ CounterRng::Mix(sum)) ^
      CounterRng::Mix(xr));
}

std::string TraceDigest::ToString() const {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "fp=%016llx events=%lld",
                static_cast<unsigned long long>(Fingerprint()),
                static_cast<long long>(events));
  return buf;
}

TraceRecorder::TraceRecorder() : TraceRecorder(Options{}) {}

TraceRecorder::TraceRecorder(Options options)
    : options_(std::move(options)),
      lane_key_(CounterRng::HashString(options_.lane)) {}

uint64_t TraceRecorder::NextTick(SimTime now) {
  const uint64_t base =
      now > 0 ? static_cast<uint64_t>(now) * 1'000'000ULL : 0;
  last_tick_ = std::max(base, last_tick_ + 1);
  return last_tick_;
}

uint64_t TraceRecorder::NextSpanId(uint64_t start_tick) {
  const uint64_t epoch = start_tick / (static_cast<uint64_t>(kHour) * 1'000'000ULL);
  return CounterRng::At(lane_key_, epoch, sequence_++);
}

uint64_t TraceRecorder::BeginSpan(TraceLevel need, SpanCategory category,
                                  const char* name, SimTime now,
                                  std::string detail) {
  if (!enabled(need)) return 0;
  OpenSpan span;
  span.category = category;
  span.name = name;
  span.detail = std::move(detail);
  span.start_tick = NextTick(now);
  span.span_id = NextSpanId(span.start_tick);
  span.active = true;
  size_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
    open_[slot] = std::move(span);
  } else {
    slot = open_.size();
    open_.push_back(std::move(span));
  }
  return static_cast<uint64_t>(slot) + 1;
}

void TraceRecorder::EndSpan(uint64_t handle, SimTime at, double value,
                            std::string outcome) {
  if (handle == 0) return;
  const size_t slot = static_cast<size_t>(handle - 1);
  if (slot >= open_.size() || !open_[slot].active) return;
  OpenSpan span = std::move(open_[slot]);
  open_[slot].active = false;
  free_slots_.push_back(slot);

  TraceEvent event;
  event.span_id = span.span_id;
  event.category = span.category;
  event.name = span.name;
  event.detail = std::move(span.detail);
  if (!outcome.empty()) {
    if (!event.detail.empty()) event.detail += ';';
    event.detail += outcome;
  }
  event.start_tick = span.start_tick;
  event.end_tick = NextTick(at);
  event.value = value;
  Emit(std::move(event));
}

void TraceRecorder::Instant(TraceLevel need, SpanCategory category,
                            const char* name, SimTime now, std::string detail,
                            double value) {
  if (!enabled(need)) return;
  TraceEvent event;
  event.category = category;
  event.name = name;
  event.detail = std::move(detail);
  event.start_tick = NextTick(now);
  event.end_tick = event.start_tick;
  event.span_id = NextSpanId(event.start_tick);
  event.value = value;
  Emit(std::move(event));
}

uint64_t TraceRecorder::EventHash(const TraceEvent& event) const {
  uint64_t h = lane_key_;
  h = CounterRng::Mix(h ^ CounterRng::HashString(event.name));
  h = CounterRng::Mix(h ^ static_cast<uint64_t>(event.category));
  h = CounterRng::Mix(h ^ event.start_tick);
  h = CounterRng::Mix(h ^ event.end_tick);
  h = CounterRng::Mix(h ^ CounterRng::HashString(event.detail));
  uint64_t value_bits = 0;
  static_assert(sizeof(value_bits) == sizeof(event.value));
  std::memcpy(&value_bits, &event.value, sizeof(value_bits));
  h = CounterRng::Mix(h ^ value_bits);
  return CounterRng::Mix(h ^ event.span_id);
}

void TraceRecorder::Emit(TraceEvent event) {
  const uint64_t hash = EventHash(event);
  digest_events_.fetch_add(1, std::memory_order_relaxed);
  digest_sum_.fetch_add(hash, std::memory_order_relaxed);
  digest_xor_.fetch_xor(hash, std::memory_order_relaxed);
  if (options_.capacity == 0) return;
  if (ring_.empty()) ring_.resize(options_.capacity);
  const uint64_t slot = cursor_.fetch_add(1, std::memory_order_relaxed);
  ring_[static_cast<size_t>(slot % options_.capacity)] = std::move(event);
}

TraceDigest TraceRecorder::digest() const {
  TraceDigest d;
  d.events = digest_events_.load(std::memory_order_relaxed);
  d.sum = digest_sum_.load(std::memory_order_relaxed);
  d.xr = digest_xor_.load(std::memory_order_relaxed);
  return d;
}

std::vector<TraceEvent> TraceRecorder::Events() const {
  std::vector<TraceEvent> events;
  const uint64_t written = cursor_.load(std::memory_order_relaxed);
  if (written == 0 || options_.capacity == 0) return events;
  const uint64_t retained =
      std::min<uint64_t>(written, static_cast<uint64_t>(options_.capacity));
  events.reserve(static_cast<size_t>(retained));
  // Oldest retained event first (the ring overwrites in emission order).
  for (uint64_t i = written - retained; i < written; ++i) {
    events.push_back(ring_[static_cast<size_t>(i % options_.capacity)]);
  }
  std::sort(events.begin(), events.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              return a.start_tick < b.start_tick;
            });
  return events;
}

int64_t TraceRecorder::events_dropped() const {
  const int64_t emitted = events_emitted();
  const int64_t capacity = static_cast<int64_t>(options_.capacity);
  return emitted > capacity ? emitted - capacity : 0;
}

TraceDigest TraceRecorder::MergeDigests(
    const std::vector<const TraceRecorder*>& lanes) {
  TraceDigest merged;
  for (const TraceRecorder* lane : lanes) {
    if (lane != nullptr) merged.Combine(lane->digest());
  }
  return merged;
}

}  // namespace autocomp::obs
