/// \file trace.h
/// \brief Deterministic per-lane tracing: spans, instants, digests.
///
/// The simulator's runs are bit-identical across shard counts and pool
/// sizes (NFR2), which makes a structured trace a perfect regression
/// oracle: if every recorded event is a pure function of simulated
/// state — virtual-clock timestamps, counter-derived span ids, no wall
/// clock anywhere — then the trace of a fixed-seed run is a constant,
/// and a one-line digest of it catches any behavioural drift in the
/// whole stack (golden-trace tests).
///
/// Model:
///  * One TraceRecorder per lane (tenant database in the fleet driver,
///    "main" for single-environment scenarios). Emission within a lane
///    is serial — the lane's events replay on one logical timeline even
///    when different epochs run on different pool threads (the epoch
///    barrier orders them).
///  * Timestamps are virtual microsecond ticks derived from the
///    simulated clock: tick = max(sim_seconds * 1e6, last_tick + 1).
///    Simulated time is integer seconds and does not advance inside a
///    pipeline run, so the +1 sub-ticks give every event a unique,
///    strictly increasing timestamp; a span's end tick therefore always
///    exceeds the ticks of everything emitted while it was open, which
///    is exactly the containment Chrome's trace viewer needs to nest
///    "X" complete events.
///  * Span ids are CounterRng::At(lane key, hour epoch, sequence) — a
///    pure function of (lane, epoch, per-lane emission sequence), never
///    of wall clock or addresses.
///  * The ring buffer only bounds what the exporters can see; the
///    TraceDigest is accumulated at emission with a commutative combine
///    (count + wrapping sum + xor of per-event content hashes), so it
///    covers every event ever emitted, is independent of ring capacity,
///    and merges across lanes like MetricsRecorder::Merge.
///
/// Disabled path: a null recorder pointer or TraceLevel::kOff costs one
/// predictable branch per site (call sites guard with
/// `trace != nullptr && trace->enabled(level)`). Compiling with
/// -DAUTOCOMP_DISABLE_TRACING=ON folds enabled() to a constant false,
/// dead-coding every emission call site out of the binary entirely.

#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/counter_rng.h"
#include "common/status.h"
#include "common/units.h"

namespace autocomp::obs {

/// \brief How much detail to record. Levels are cumulative: kFull
/// records everything kDecisions does plus the per-event firehose.
enum class TraceLevel : int {
  kOff = 0,
  /// OODA phase spans + pipeline run envelopes.
  kPhases = 1,
  /// + per-candidate ranking / winner-selection decision events.
  kDecisions = 2,
  /// + runner attempts/retries, commit outcomes, fault injections,
  /// storage timeout draws.
  kFull = 3,
};

const char* TraceLevelName(TraceLevel level);
/// Parses "off" | "phases" | "decisions" | "full" (the CLI knob).
Result<TraceLevel> TraceLevelByName(std::string_view name);

/// \brief Span taxonomy (the Chrome exporter's "cat" field).
enum class SpanCategory : int {
  kPhase = 0,    // OODA phases + pipeline run envelope
  kDecision,     // ranking / selection decisions
  kRunner,       // compaction work units, retries, backoffs
  kCommit,       // Transaction::Commit outcomes
  kFault,        // fault-injector hits
  kStorage,      // NameNode timeout draws / quota rejections
};

const char* SpanCategoryName(SpanCategory category);

/// \brief One recorded event. start_tick == end_tick for instants.
struct TraceEvent {
  uint64_t span_id = 0;
  SpanCategory category = SpanCategory::kPhase;
  /// Static-storage name (call sites pass string literals).
  const char* name = "";
  /// "key=value;key=value" payload. Must be a pure function of simulated
  /// state — never wall clock, addresses, or host properties.
  std::string detail;
  uint64_t start_tick = 0;
  uint64_t end_tick = 0;
  double value = 0;
};

/// \brief Order-insensitive fingerprint of a set of trace events.
///
/// Combine is commutative and associative (count + wrapping sum + xor
/// of content hashes), so per-lane digests merge in any order to the
/// same value and the digest does not depend on ring capacity or on the
/// interleaving of emission. Two digests being equal is (modulo hash
/// collisions) the statement "these runs emitted the same multiset of
/// events" — the golden-trace tests' oracle.
struct TraceDigest {
  int64_t events = 0;
  uint64_t sum = 0;
  uint64_t xr = 0;

  void Combine(const TraceDigest& other) {
    events += other.events;
    sum += other.sum;
    xr ^= other.xr;
  }
  bool operator==(const TraceDigest& other) const {
    return events == other.events && sum == other.sum && xr == other.xr;
  }
  bool operator!=(const TraceDigest& other) const { return !(*this == other); }

  /// All three accumulators mixed into one 64-bit fingerprint.
  uint64_t Fingerprint() const;
  /// "fp=<16 hex> events=<n>" — the one-line run fingerprint.
  std::string ToString() const;
};

/// \brief Per-lane recorder. See the file comment for the model.
class TraceRecorder {
 public:
  static constexpr size_t kDefaultCapacity = 1 << 15;

  struct Options {
    TraceLevel level = TraceLevel::kOff;
    /// Lane name: the tenant database for fleet lanes, "main" otherwise.
    /// Keys the span-id stream and names the exporter's thread track.
    std::string lane = "main";
    /// Ring capacity in events; bounds exporter memory only (the digest
    /// always covers every emitted event). 0 keeps the digest but
    /// retains no events.
    size_t capacity = kDefaultCapacity;
  };

  // No default argument: gcc cannot use a nested class with default
  // member initializers as a default argument (PR c++/96645).
  TraceRecorder();
  explicit TraceRecorder(Options options);

  /// True when events at `need` should be recorded. Call sites guard
  /// emission (and the construction of detail strings) with this; under
  /// AUTOCOMP_DISABLE_TRACING it is a constant false and the guarded
  /// block compiles to nothing.
#ifdef AUTOCOMP_DISABLE_TRACING
  bool enabled(TraceLevel) const { return false; }
#else
  bool enabled(TraceLevel need) const {
    return static_cast<int>(options_.level) >= static_cast<int>(need) &&
           need != TraceLevel::kOff;
  }
#endif

  /// Opens a span at simulated time `now`. Returns an opaque handle for
  /// EndSpan (0 when not recording — EndSpan(0, ...) is a no-op, so
  /// call sites need no second guard).
  uint64_t BeginSpan(TraceLevel need, SpanCategory category, const char* name,
                     SimTime now, std::string detail = {});

  /// Closes a span. `outcome` (e.g. "outcome=committed;snapshot=42") is
  /// appended to the Begin detail; `at` may lie in the simulated future
  /// (deferred compaction units end at their natural end_time).
  void EndSpan(uint64_t handle, SimTime at, double value = 0,
               std::string outcome = {});

  /// Records a zero-duration event.
  void Instant(TraceLevel need, SpanCategory category, const char* name,
               SimTime now, std::string detail = {}, double value = 0);

  /// Digest over every event emitted so far (capacity-independent).
  TraceDigest digest() const;

  /// Events retained in the ring, in start-tick order. When more than
  /// `capacity` events were emitted, only the newest survive.
  std::vector<TraceEvent> Events() const;

  int64_t events_emitted() const {
    return digest_events_.load(std::memory_order_relaxed);
  }
  /// Events that fell out of the ring (emitted - retained).
  int64_t events_dropped() const;

  const std::string& lane() const { return options_.lane; }
  TraceLevel level() const { return options_.level; }

  /// Lane digests combined in any order — same semantics as
  /// MetricsRecorder::Merge but commutative, so shard scheduling cannot
  /// matter even in principle.
  static TraceDigest MergeDigests(
      const std::vector<const TraceRecorder*>& lanes);

 private:
  struct OpenSpan {
    SpanCategory category = SpanCategory::kPhase;
    const char* name = "";
    std::string detail;
    uint64_t start_tick = 0;
    uint64_t span_id = 0;
    bool active = false;
  };

  /// Next virtual timestamp: unique and strictly increasing per lane.
  uint64_t NextTick(SimTime now);
  uint64_t NextSpanId(uint64_t start_tick);
  void Emit(TraceEvent event);
  uint64_t EventHash(const TraceEvent& event) const;

  Options options_;
  uint64_t lane_key_ = 0;
  uint64_t last_tick_ = 0;
  uint64_t sequence_ = 0;
  std::vector<OpenSpan> open_;
  std::vector<size_t> free_slots_;
  /// Ring storage, lazily sized to capacity on first emission.
  std::vector<TraceEvent> ring_;
  std::atomic<uint64_t> cursor_{0};
  /// Digest accumulators (commutative, so safe even if emission ever
  /// races; today emission is serial per lane).
  std::atomic<int64_t> digest_events_{0};
  std::atomic<uint64_t> digest_sum_{0};
  std::atomic<uint64_t> digest_xor_{0};
};

}  // namespace autocomp::obs
