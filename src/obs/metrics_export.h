/// \file metrics_export.h
/// \brief Prometheus-style text export of a metrics snapshot.
///
/// obs sits below sim in the dependency graph, so the exporter defines
/// its own snapshot structure and sim::MetricsRecorder::Snapshot()
/// produces it (sim depends on obs, never the reverse). The text format
/// follows the Prometheus exposition format: `# TYPE` headers, one
/// sample per line, deterministic (sorted) metric order.

#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#include "common/status.h"

namespace autocomp::obs {

/// \brief Aggregated view of a run's metrics, keyed by raw metric name
/// (the exporter sanitizes names for Prometheus).
struct MetricsSnapshot {
  /// Monotonic totals (hourly counters summed across the run).
  std::map<std::string, int64_t> counters;
  /// Last observed value of each recorded series.
  std::map<std::string, double> gauges;
  /// Distribution metrics (hourly samples aggregated across the run).
  struct Summary {
    int64_t count = 0;
    double sum = 0;
    double min = 0;
    double max = 0;
  };
  std::map<std::string, Summary> summaries;
};

/// Lowercases and maps every character outside [a-z0-9_] to '_', and
/// prefixes a leading digit with '_' — a valid Prometheus metric name.
std::string SanitizeMetricName(std::string_view name);

/// Renders the snapshot in the Prometheus text exposition format.
/// Counters get a `_total` suffix; summaries expand to `_count`, `_sum`,
/// `_min` and `_max` gauges. Every name is prefixed with `<prefix>_`.
std::string ToPrometheusText(const MetricsSnapshot& snapshot,
                             std::string_view prefix = "autocomp");

/// Writes ToPrometheusText to `path`.
Status WritePrometheusText(const MetricsSnapshot& snapshot,
                           const std::string& path,
                           std::string_view prefix = "autocomp");

}  // namespace autocomp::obs
