#include "obs/metrics_export.h"

#include <cctype>
#include <cstdio>

namespace autocomp::obs {

namespace {

std::string FormatDouble(double value) {
  char buf[64];
  // %.17g round-trips doubles exactly and prints integers compactly.
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

void AppendSample(std::string* out, const std::string& name, double value) {
  out->append(name);
  out->push_back(' ');
  out->append(FormatDouble(value));
  out->push_back('\n');
}

void AppendTypeHeader(std::string* out, const std::string& name,
                      const char* type) {
  out->append("# TYPE ");
  out->append(name);
  out->push_back(' ');
  out->append(type);
  out->push_back('\n');
}

}  // namespace

std::string SanitizeMetricName(std::string_view name) {
  std::string sanitized;
  sanitized.reserve(name.size() + 1);
  for (char c : name) {
    const unsigned char uc = static_cast<unsigned char>(c);
    if (std::isalnum(uc)) {
      sanitized.push_back(
          static_cast<char>(std::tolower(uc)));
    } else {
      sanitized.push_back('_');
    }
  }
  if (sanitized.empty()) sanitized = "_";
  if (std::isdigit(static_cast<unsigned char>(sanitized.front()))) {
    sanitized.insert(sanitized.begin(), '_');
  }
  return sanitized;
}

std::string ToPrometheusText(const MetricsSnapshot& snapshot,
                             std::string_view prefix) {
  const std::string p = std::string(prefix) + "_";
  std::string out;
  for (const auto& [name, total] : snapshot.counters) {
    const std::string metric = p + SanitizeMetricName(name) + "_total";
    AppendTypeHeader(&out, metric, "counter");
    AppendSample(&out, metric, static_cast<double>(total));
  }
  for (const auto& [name, value] : snapshot.gauges) {
    const std::string metric = p + SanitizeMetricName(name);
    AppendTypeHeader(&out, metric, "gauge");
    AppendSample(&out, metric, value);
  }
  for (const auto& [name, summary] : snapshot.summaries) {
    const std::string base = p + SanitizeMetricName(name);
    AppendTypeHeader(&out, base + "_count", "gauge");
    AppendSample(&out, base + "_count", static_cast<double>(summary.count));
    AppendTypeHeader(&out, base + "_sum", "gauge");
    AppendSample(&out, base + "_sum", summary.sum);
    AppendTypeHeader(&out, base + "_min", "gauge");
    AppendSample(&out, base + "_min", summary.min);
    AppendTypeHeader(&out, base + "_max", "gauge");
    AppendSample(&out, base + "_max", summary.max);
  }
  return out;
}

Status WritePrometheusText(const MetricsSnapshot& snapshot,
                           const std::string& path, std::string_view prefix) {
  const std::string text = ToPrometheusText(snapshot, prefix);
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    return Status::Internal("cannot open metrics output file: " + path);
  }
  const size_t written = std::fwrite(text.data(), 1, text.size(), out);
  const int closed = std::fclose(out);
  if (written != text.size() || closed != 0) {
    return Status::Internal("short write to metrics output file: " + path);
  }
  return Status::OK();
}

}  // namespace autocomp::obs
