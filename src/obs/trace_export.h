/// \file trace_export.h
/// \brief Chrome trace_event JSON export of recorded lanes.
///
/// The output loads directly in chrome://tracing and Perfetto: one
/// process ("autocomp"), one thread track per lane (named via "M"
/// thread_name metadata), complete "X" events for spans and thread-
/// scoped "i" events for instants. Timestamps are the recorder's
/// virtual microsecond ticks, so nesting on a track reflects genuine
/// containment (OODA run → phases → runner units → commit outcomes).

#pragma once

#include <string>
#include <vector>

#include "common/json.h"
#include "common/status.h"
#include "obs/trace.h"

namespace autocomp::obs {

/// Builds the {"traceEvents": [...], ...} document over the lanes'
/// retained ring contents, in the given lane order (tid i+1 = lanes[i]).
/// Null lane pointers are skipped. Deterministic: member order is
/// sorted (JsonValue) and events are emitted per lane in tick order.
JsonValue ChromeTraceJson(const std::vector<const TraceRecorder*>& lanes);

/// Serializes ChromeTraceJson to `path`.
Status WriteChromeTrace(const std::vector<const TraceRecorder*>& lanes,
                        const std::string& path);

}  // namespace autocomp::obs
