#include "obs/trace_export.h"

#include <cstdio>

namespace autocomp::obs {

namespace {

std::string HexSpanId(uint64_t id) {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "0x%016llx",
                static_cast<unsigned long long>(id));
  return buf;
}

}  // namespace

JsonValue ChromeTraceJson(const std::vector<const TraceRecorder*>& lanes) {
  JsonValue events = JsonValue::Array();
  int tid = 0;
  for (const TraceRecorder* lane : lanes) {
    ++tid;
    if (lane == nullptr) continue;
    JsonValue thread_name = JsonValue::Object();
    thread_name.Set("ph", "M");
    thread_name.Set("name", "thread_name");
    thread_name.Set("pid", 1);
    thread_name.Set("tid", tid);
    JsonValue name_args = JsonValue::Object();
    name_args.Set("name", lane->lane());
    thread_name.Set("args", std::move(name_args));
    events.Append(std::move(thread_name));

    for (const TraceEvent& event : lane->Events()) {
      JsonValue entry = JsonValue::Object();
      entry.Set("name", event.name);
      entry.Set("cat", SpanCategoryName(event.category));
      entry.Set("pid", 1);
      entry.Set("tid", tid);
      entry.Set("ts", static_cast<int64_t>(event.start_tick));
      if (event.end_tick > event.start_tick) {
        entry.Set("ph", "X");
        entry.Set("dur",
                  static_cast<int64_t>(event.end_tick - event.start_tick));
      } else {
        entry.Set("ph", "i");
        entry.Set("s", "t");  // thread-scoped instant
      }
      JsonValue args = JsonValue::Object();
      args.Set("span_id", HexSpanId(event.span_id));
      if (!event.detail.empty()) args.Set("detail", event.detail);
      if (event.value != 0) args.Set("value", event.value);
      entry.Set("args", std::move(args));
      events.Append(std::move(entry));
    }
  }
  JsonValue doc = JsonValue::Object();
  JsonValue process_name = JsonValue::Object();
  process_name.Set("ph", "M");
  process_name.Set("name", "process_name");
  process_name.Set("pid", 1);
  process_name.Set("tid", 0);
  JsonValue process_args = JsonValue::Object();
  process_args.Set("name", "autocomp");
  process_name.Set("args", std::move(process_args));
  // Prepend the process metadata by rebuilding: JsonValue arrays only
  // append, so build the final array here.
  JsonValue all = JsonValue::Array();
  all.Append(std::move(process_name));
  for (size_t i = 0; i < events.size(); ++i) all.Append(events[i]);
  doc.Set("traceEvents", std::move(all));
  doc.Set("displayTimeUnit", "ms");
  return doc;
}

Status WriteChromeTrace(const std::vector<const TraceRecorder*>& lanes,
                        const std::string& path) {
  const std::string text = ChromeTraceJson(lanes).Dump();
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    return Status::Internal("cannot open trace output file: " + path);
  }
  const size_t written = std::fwrite(text.data(), 1, text.size(), out);
  const int closed = std::fclose(out);
  if (written != text.size() || closed != 0) {
    return Status::Internal("short write to trace output file: " + path);
  }
  return Status::OK();
}

}  // namespace autocomp::obs
