#include "core/triggers.h"

#include <algorithm>
#include <cassert>

namespace autocomp::core {

OptimizeAfterWriteHook::OptimizeAfterWriteHook() : mode_(Mode::kNotify) {}

OptimizeAfterWriteHook::OptimizeAfterWriteHook(ImmediateStages stages)
    : mode_(Mode::kImmediate), stages_(std::move(stages)) {
  assert(stages_->collector != nullptr);
  assert(stages_->scheduler != nullptr);
}

Result<std::optional<ScheduledCompaction>> OptimizeAfterWriteHook::OnWrite(
    const std::string& table, const std::optional<std::string>& partition,
    SimTime now) {
  Candidate candidate;
  candidate.table = table;
  if (partition) {
    candidate.scope = CandidateScope::kPartition;
    candidate.partition = partition;
  } else {
    candidate.scope = CandidateScope::kTable;
  }

  if (mode_ == Mode::kNotify) {
    // Deduplicate: re-notifying an already-queued candidate is a no-op.
    const bool queued =
        std::any_of(queue_.begin(), queue_.end(),
                    [&](const Candidate& c) { return c == candidate; });
    if (!queued) queue_.push_back(std::move(candidate));
    return std::optional<ScheduledCompaction>();
  }

  // Immediate mode: observe + orient this one candidate, check the
  // threshold, and act right away.
  ++evaluated_;
  AUTOCOMP_ASSIGN_OR_RETURN(CandidateStats stats,
                            stages_->collector->Collect(candidate));
  ObservedCandidate observed{candidate, std::move(stats)};
  std::vector<TraitedCandidate> traited =
      ComputeTraits({observed}, stages_->traits);
  if (traited.empty() || !stages_->policy.ShouldCompact(traited.front())) {
    return std::optional<ScheduledCompaction>();
  }
  ++triggered_;
  ScoredCandidate scored;
  scored.traited = std::move(traited.front());
  scored.score = 1.0;
  AUTOCOMP_ASSIGN_OR_RETURN(std::vector<ScheduledCompaction> executed,
                            stages_->scheduler->Execute({scored}, now));
  if (executed.empty()) return std::optional<ScheduledCompaction>();
  return std::optional<ScheduledCompaction>(std::move(executed.front()));
}

std::vector<Candidate> OptimizeAfterWriteHook::DrainNotifications() {
  std::vector<Candidate> out(queue_.begin(), queue_.end());
  queue_.clear();
  return out;
}

AutoCompService::AutoCompService(std::unique_ptr<AutoCompPipeline> pipeline,
                                 PeriodicTrigger trigger,
                                 OptimizeAfterWriteHook* hook)
    : pipeline_(std::move(pipeline)), trigger_(trigger), hook_(hook) {
  assert(pipeline_ != nullptr);
}

Result<std::optional<PipelineRunReport>> AutoCompService::Tick(SimTime now) {
  if (!trigger_.Due(now)) {
    return std::optional<PipelineRunReport>();
  }
  trigger_.MarkRun(now);
  Result<PipelineRunReport> report = RunNow();
  if (!report.ok()) return report.status();
  return std::optional<PipelineRunReport>(std::move(report).value());
}

Result<PipelineRunReport> AutoCompService::RunNow() {
  // A notify-mode hook narrows the run to the candidates that actually
  // changed since the last run; otherwise scan the whole catalog.
  Result<PipelineRunReport> report =
      (hook_ != nullptr &&
       hook_->mode() == OptimizeAfterWriteHook::Mode::kNotify)
          ? pipeline_->RunForCandidates(hook_->DrainNotifications())
          : pipeline_->RunOnce();
  if (report.ok()) history_.push_back(*report);
  return report;
}

}  // namespace autocomp::core
