#include "core/filters.h"

namespace autocomp::core {

std::vector<ObservedCandidate> ApplyFilters(
    std::vector<ObservedCandidate> candidates,
    const std::vector<std::shared_ptr<const CandidateFilter>>& filters,
    SimTime now, int64_t* dropped) {
  if (dropped != nullptr) *dropped = 0;
  if (filters.empty()) return candidates;  // nothing to do, nothing to copy
  std::vector<ObservedCandidate> out;
  out.reserve(candidates.size());
  int64_t removed = 0;
  for (ObservedCandidate& c : candidates) {
    bool keep = true;
    for (const auto& filter : filters) {
      if (!filter->ShouldKeep(c, now)) {
        keep = false;
        break;
      }
    }
    if (keep) {
      out.push_back(std::move(c));
    } else {
      ++removed;
    }
  }
  if (dropped != nullptr) *dropped = removed;
  return out;
}

}  // namespace autocomp::core
