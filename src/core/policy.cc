#include "core/policy.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "core/triggers.h"
#include "engine/compaction_runner.h"

namespace autocomp::core {

namespace {

/// Shortest %g form that survives a strtod round trip for the simple
/// parameter values the axes use (counts, ratios, hours).
std::string FmtParam(double value) {
  if (value == static_cast<double>(static_cast<long long>(value))) {
    return std::to_string(static_cast<long long>(value));
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.12g", value);
  return buf;
}

Status MakeError(PolicySpec::ParseError* out, std::string axis,
                 std::string token, std::string reason) {
  Status status = Status::InvalidArgument("policy: axis=" + axis +
                                          " token=" + token +
                                          " reason=" + reason);
  if (out != nullptr) {
    out->axis = std::move(axis);
    out->token = std::move(token);
    out->reason = std::move(reason);
  }
  return status;
}

}  // namespace

const char* TriggerAxisName(TriggerAxis trigger) {
  switch (trigger) {
    case TriggerAxis::kPeriodic:
      return "periodic";
    case TriggerAxis::kFileCount:
      return "file-count";
    case TriggerAxis::kSizeRatio:
      return "size-ratio";
    case TriggerAxis::kStaleness:
      return "staleness";
    case TriggerAxis::kDeadline:
      return "deadline";
  }
  return "unknown";
}

const char* GranularityAxisName(GranularityAxis granularity) {
  switch (granularity) {
    case GranularityAxis::kPartition:
      return "partition";
    case GranularityAxis::kTable:
      return "table";
    case GranularityAxis::kFleet:
      return "fleet";
  }
  return "unknown";
}

const char* PickerAxisName(PickerAxis picker) {
  switch (picker) {
    case PickerAxis::kMoop:
      return "moop";
    case PickerAxis::kSorted:
      return "sorted";
    case PickerAxis::kGreedySizeRatio:
      return "greedy-size-ratio";
    case PickerAxis::kOnlineMerge:
      return "online-merge";
  }
  return "unknown";
}

double DefaultTriggerParam(TriggerAxis trigger) {
  switch (trigger) {
    case TriggerAxis::kPeriodic:
      return 0;
    case TriggerAxis::kFileCount:
      return 16;
    case TriggerAxis::kSizeRatio:
      return 4;
    case TriggerAxis::kStaleness:
      return 6;
    case TriggerAxis::kDeadline:
      return 24;
  }
  return 0;
}

double DefaultPickerParam(PickerAxis picker) {
  return picker == PickerAxis::kOnlineMerge ? 4 : 0;
}

PolicySpec::PolicySpec() : movement(engine::RewriteMovement::kPartial) {}

PolicySpec PolicySpec::Default() { return PolicySpec(); }

std::string PolicySpec::ToString() const {
  std::string out = "trigger=";
  out += TriggerAxisName(trigger);
  if (trigger_param != DefaultTriggerParam(trigger)) {
    out += ':';
    out += FmtParam(trigger_param);
  }
  out += ";granularity=";
  out += GranularityAxisName(granularity);
  out += ";movement=";
  out += engine::RewriteMovementName(movement);
  out += ";picker=";
  out += PickerAxisName(picker);
  if (picker_param != DefaultPickerParam(picker)) {
    out += ':';
    out += FmtParam(picker_param);
  }
  return out;
}

Status PolicySpec::Validate(ParseError* error) const {
  switch (trigger) {
    case TriggerAxis::kPeriodic:
      if (trigger_param != 0) {
        return MakeError(error, "trigger", FmtParam(trigger_param),
                         "param-out-of-range");
      }
      break;
    case TriggerAxis::kFileCount:
      if (!(trigger_param >= 2) ||
          trigger_param != std::floor(trigger_param)) {
        return MakeError(error, "trigger", FmtParam(trigger_param),
                         "param-out-of-range");
      }
      break;
    case TriggerAxis::kSizeRatio:
      if (!(trigger_param > 1)) {
        return MakeError(error, "trigger", FmtParam(trigger_param),
                         "param-out-of-range");
      }
      break;
    case TriggerAxis::kStaleness:
    case TriggerAxis::kDeadline:
      if (!(trigger_param > 0)) {
        return MakeError(error, "trigger", FmtParam(trigger_param),
                         "param-out-of-range");
      }
      break;
  }
  if (picker == PickerAxis::kOnlineMerge) {
    if (movement != engine::RewriteMovement::kMerge) {
      return MakeError(error, "picker", "online-merge",
                       "invalid-combination");
    }
    if (!(picker_param >= 2) || picker_param != std::floor(picker_param)) {
      return MakeError(error, "picker", FmtParam(picker_param),
                       "param-out-of-range");
    }
  } else if (picker_param != 0) {
    return MakeError(error, "picker", FmtParam(picker_param),
                     "param-out-of-range");
  }
  return Status::OK();
}

bool PolicySpec::operator==(const PolicySpec& other) const {
  return trigger == other.trigger && trigger_param == other.trigger_param &&
         granularity == other.granularity && movement == other.movement &&
         picker == other.picker && picker_param == other.picker_param;
}

namespace {

/// Splits "name" or "name:param" into the name and an optional param.
/// Returns false on a malformed param.
bool SplitParam(const std::string& value, std::string* name,
                std::optional<double>* param) {
  const size_t colon = value.find(':');
  if (colon == std::string::npos) {
    *name = value;
    param->reset();
    return true;
  }
  *name = value.substr(0, colon);
  const std::string text = value.substr(colon + 1);
  if (text.empty()) return false;
  char* end = nullptr;
  const double parsed = std::strtod(text.c_str(), &end);
  if (end == nullptr || *end != '\0' || !std::isfinite(parsed)) return false;
  *param = parsed;
  return true;
}

}  // namespace

Result<PolicySpec> PolicySpec::Parse(const std::string& text,
                                     ParseError* error) {
  PolicySpec spec;
  bool seen_trigger = false, seen_granularity = false, seen_movement = false,
       seen_picker = false;
  size_t pos = 0;
  while (pos <= text.size()) {
    const size_t next = text.find(';', pos);
    const std::string field = text.substr(
        pos, next == std::string::npos ? std::string::npos : next - pos);
    pos = next == std::string::npos ? text.size() + 1 : next + 1;
    if (field.empty()) continue;
    const size_t eq = field.find('=');
    if (eq == std::string::npos) {
      return MakeError(error, "", field, "unknown-key");
    }
    const std::string key = field.substr(0, eq);
    const std::string value = field.substr(eq + 1);
    std::string name;
    std::optional<double> param;
    if (!SplitParam(value, &name, &param)) {
      return MakeError(error, key, value, "bad-param");
    }
    if (key == "trigger") {
      if (seen_trigger) return MakeError(error, key, value, "duplicate-key");
      seen_trigger = true;
      bool known = false;
      for (TriggerAxis t :
           {TriggerAxis::kPeriodic, TriggerAxis::kFileCount,
            TriggerAxis::kSizeRatio, TriggerAxis::kStaleness,
            TriggerAxis::kDeadline}) {
        if (name == TriggerAxisName(t)) {
          spec.trigger = t;
          spec.trigger_param = param.value_or(DefaultTriggerParam(t));
          known = true;
          break;
        }
      }
      if (!known) return MakeError(error, key, name, "unknown-value");
    } else if (key == "granularity") {
      if (seen_granularity) {
        return MakeError(error, key, value, "duplicate-key");
      }
      seen_granularity = true;
      if (param.has_value()) return MakeError(error, key, value, "bad-param");
      bool known = false;
      for (GranularityAxis g :
           {GranularityAxis::kPartition, GranularityAxis::kTable,
            GranularityAxis::kFleet}) {
        if (name == GranularityAxisName(g)) {
          spec.granularity = g;
          known = true;
          break;
        }
      }
      if (!known) return MakeError(error, key, name, "unknown-value");
    } else if (key == "movement") {
      if (seen_movement) return MakeError(error, key, value, "duplicate-key");
      seen_movement = true;
      if (param.has_value()) return MakeError(error, key, value, "bad-param");
      bool known = false;
      for (engine::RewriteMovement m :
           {engine::RewriteMovement::kPartial, engine::RewriteMovement::kFull,
            engine::RewriteMovement::kMerge}) {
        if (name == engine::RewriteMovementName(m)) {
          spec.movement = m;
          known = true;
          break;
        }
      }
      if (!known) return MakeError(error, key, name, "unknown-value");
    } else if (key == "picker") {
      if (seen_picker) return MakeError(error, key, value, "duplicate-key");
      seen_picker = true;
      bool known = false;
      for (PickerAxis p :
           {PickerAxis::kMoop, PickerAxis::kSorted,
            PickerAxis::kGreedySizeRatio, PickerAxis::kOnlineMerge}) {
        if (name == PickerAxisName(p)) {
          spec.picker = p;
          spec.picker_param = param.value_or(DefaultPickerParam(p));
          known = true;
          break;
        }
      }
      if (!known) return MakeError(error, key, name, "unknown-value");
    } else {
      return MakeError(error, key, value, "unknown-key");
    }
  }
  if (!seen_trigger) return MakeError(error, "trigger", "", "missing-key");
  if (!seen_granularity) {
    return MakeError(error, "granularity", "", "missing-key");
  }
  if (!seen_movement) return MakeError(error, "movement", "", "missing-key");
  if (!seen_picker) return MakeError(error, "picker", "", "missing-key");
  AUTOCOMP_RETURN_NOT_OK(spec.Validate(error));
  return spec;
}

std::shared_ptr<const CandidateFilter> TriggerFilterFor(
    const PolicySpec& spec) {
  switch (spec.trigger) {
    case TriggerAxis::kPeriodic:
      return nullptr;
    case TriggerAxis::kFileCount:
      return std::make_shared<FileCountTriggerFilter>(
          static_cast<int64_t>(spec.trigger_param));
    case TriggerAxis::kSizeRatio:
      return std::make_shared<SizeRatioTriggerFilter>(spec.trigger_param);
    case TriggerAxis::kStaleness:
      return std::make_shared<StalenessTriggerFilter>(
          static_cast<SimTime>(std::llround(spec.trigger_param * kHour)));
    case TriggerAxis::kDeadline:
      return std::make_shared<DeadlineTriggerFilter>(
          static_cast<SimTime>(std::llround(spec.trigger_param * kHour)));
  }
  return nullptr;
}

engine::RewriteMovement MovementFor(const PolicySpec& spec) {
  return spec.movement;
}

std::vector<PolicySpec> EnumerateValidSpecs(EnumerateOptions options) {
  std::vector<PolicySpec> out;
  std::vector<GranularityAxis> granularities;
  if (options.all_granularities) {
    granularities = {GranularityAxis::kPartition, GranularityAxis::kTable,
                     GranularityAxis::kFleet};
  } else {
    granularities = {GranularityAxis::kTable};
  }
  for (TriggerAxis trigger :
       {TriggerAxis::kPeriodic, TriggerAxis::kFileCount,
        TriggerAxis::kSizeRatio, TriggerAxis::kStaleness,
        TriggerAxis::kDeadline}) {
    for (GranularityAxis granularity : granularities) {
      for (engine::RewriteMovement movement :
           {engine::RewriteMovement::kFull, engine::RewriteMovement::kPartial,
            engine::RewriteMovement::kMerge}) {
        for (PickerAxis picker :
             {PickerAxis::kMoop, PickerAxis::kSorted,
              PickerAxis::kGreedySizeRatio, PickerAxis::kOnlineMerge}) {
          PolicySpec spec;
          spec.trigger = trigger;
          spec.trigger_param = DefaultTriggerParam(trigger);
          spec.granularity = granularity;
          spec.movement = movement;
          spec.picker = picker;
          spec.picker_param = DefaultPickerParam(picker);
          if (!spec.Validate().ok()) continue;
          out.push_back(spec);
        }
      }
    }
  }
  return out;
}

}  // namespace autocomp::core
