/// \file pareto.h
/// \brief Pareto-frontier analysis over compaction candidates (§8,
/// "Navigating Multi-Objective Trade-offs").
///
/// The paper's production deployment scalarizes the multi-objective
/// problem with fixed weights and notes the risk of overemphasizing one
/// metric; §8 proposes exposing the Pareto frontier instead — the set of
/// non-dominated (benefit, cost) trade-offs — and deriving weights
/// dynamically. This module implements both: frontier extraction, a
/// frontier-based selector, and a weight-sweep analyzer showing which
/// frontier point each weighting would pick.

#pragma once

#include <string>
#include <vector>

#include "core/candidate.h"
#include "core/ranking.h"

namespace autocomp::core {

/// \brief A candidate's position in the (benefit, cost) plane.
struct ParetoPoint {
  /// Index into the input pool.
  size_t index = 0;
  double benefit = 0;
  double cost = 0;
  bool on_frontier = false;
};

/// \brief True when `a` dominates `b`: at least as good on both axes and
/// strictly better on one (higher benefit, lower cost).
bool Dominates(const ParetoPoint& a, const ParetoPoint& b);

/// \brief Computes the (benefit, cost) points and marks the non-dominated
/// frontier. Deterministic; ties keep every co-optimal point on the
/// frontier.
std::vector<ParetoPoint> ComputeParetoFrontier(
    const std::vector<TraitedCandidate>& pool,
    const std::string& benefit_trait, const std::string& cost_trait);

/// \brief Selector keeping only frontier candidates, ordered by benefit
/// descending. Every selected candidate is a defensible trade-off: no
/// other candidate offers more benefit for less cost.
class ParetoFrontierSelector final : public Selector {
 public:
  ParetoFrontierSelector(std::string benefit_trait, std::string cost_trait)
      : benefit_trait_(std::move(benefit_trait)),
        cost_trait_(std::move(cost_trait)) {}

  std::string name() const override { return "pareto-frontier"; }
  std::vector<ScoredCandidate> Select(
      const std::vector<ScoredCandidate>& ranked) const override;

 private:
  std::string benefit_trait_;
  std::string cost_trait_;
};

/// \brief One row of the weight-sweep: which candidate a given w1 picks.
struct WeightSweepRow {
  double benefit_weight = 0;  // w1; cost weight is 1 - w1
  std::string top_candidate_id;
  double benefit = 0;
  double cost = 0;
  bool on_frontier = false;
};

/// \brief Evaluates the scalarized MOOP across a sweep of benefit weights
/// and reports the winning candidate for each. Demonstrates §8's point:
/// every weighting picks a frontier point, and small weight changes can
/// jump between very different trade-offs.
std::vector<WeightSweepRow> SweepWeights(
    const std::vector<TraitedCandidate>& pool,
    const std::string& benefit_trait, const std::string& cost_trait,
    int steps = 11);

/// \brief One measured policy point of the sweep harness: a PolicySpec
/// run against a workload archetype, measured in (compaction GBHr,
/// mean read latency) — both axes minimized. The frontier over these
/// is the design space's cost/performance trade-off curve
/// (BENCH_policy.json; the tuning loop searches along it).
struct PolicyOutcome {
  /// Canonical PolicySpec string (core/policy.h).
  std::string spec;
  /// Workload archetype the point was measured on.
  std::string archetype;
  double gb_hours = 0;
  double read_latency_s = 0;
  bool on_frontier = false;
};

/// \brief Marks the non-dominated points within each archetype group
/// (both axes minimized; ties keep every co-optimal point). Points from
/// different archetypes never dominate each other.
void MarkPolicyFrontier(std::vector<PolicyOutcome>* outcomes);

}  // namespace autocomp::core
