#include "core/stats_index.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <functional>
#include <utility>

namespace autocomp::core {

// ---------------------------------------------------------------------------
// Aggregate / ScopeView

void IncrementalStatsIndex::Aggregate::Add(const lst::DataFile& f) {
  const auto it =
      std::upper_bound(sizes.begin(), sizes.end(), f.file_size_bytes);
  sizes.insert(it, f.file_size_bytes);
  total_bytes += f.file_size_bytes;
  if (f.content == lst::FileContent::kPositionDeletes) ++delete_file_count;
  if (!f.clustered) unclustered_bytes += f.file_size_bytes;
}

bool IncrementalStatsIndex::Aggregate::Remove(const lst::DataFile& f) {
  const auto it =
      std::lower_bound(sizes.begin(), sizes.end(), f.file_size_bytes);
  if (it == sizes.end() || *it != f.file_size_bytes) return false;
  sizes.erase(it);
  total_bytes -= f.file_size_bytes;
  if (f.content == lst::FileContent::kPositionDeletes) --delete_file_count;
  if (!f.clustered) unclustered_bytes -= f.file_size_bytes;
  return true;
}

void IncrementalStatsIndex::ScopeView::Add(common::PartitionId pid,
                                           const lst::DataFile& f) {
  total.Add(f);
  partitions[pid].Add(f);
}

bool IncrementalStatsIndex::ScopeView::Remove(common::PartitionId pid,
                                              const lst::DataFile& f) {
  if (!total.Remove(f)) return false;
  const auto it = partitions.find(pid);
  if (it == partitions.end() || !it->second.Remove(f)) return false;
  // Empty partitions disappear so the partition key set always equals
  // TableMetadata::LivePartitions() of the same version.
  if (it->second.empty()) partitions.erase(it);
  return true;
}

void IncrementalStatsIndex::ScopeView::Clear() {
  total = Aggregate{};
  partitions.clear();
}

// ---------------------------------------------------------------------------
// IncrementalStatsIndex

IncrementalStatsIndex::IncrementalStatsIndex(catalog::Catalog* catalog)
    : catalog_(catalog) {
  assert(catalog_ != nullptr);
  listener_id_ = catalog_->AddCommitListener(
      [this](const catalog::CommitEvent& event) { OnCommit(event); });
}

IncrementalStatsIndex::~IncrementalStatsIndex() {
  catalog_->RemoveCommitListener(listener_id_);
}

IncrementalStatsIndex::Shard& IncrementalStatsIndex::ShardFor(
    common::TableId table) const {
  return shards_[static_cast<size_t>(table) % kShardCount];
}

int IncrementalStatsIndex::SizeBucket(int64_t size_bytes) {
  if (size_bytes <= 0) return 0;
  const int bucket =
      std::bit_width(static_cast<uint64_t>(size_bytes)) - 1;
  return bucket < kHistogramBuckets ? bucket : kHistogramBuckets - 1;
}

void IncrementalStatsIndex::RebuildLocked(
    TableEntry* entry, const lst::TableMetadata& meta) const {
  entry->live.Clear();
  entry->fresh.Clear();
  entry->histogram_count.fill(0);
  entry->histogram_bytes.fill(0);

  int64_t last_replace = 0;
  for (const lst::Snapshot& s : meta.snapshots()) {
    if (s.operation == lst::SnapshotOperation::kReplace) {
      last_replace = std::max(last_replace, s.snapshot_id);
    }
  }
  entry->last_replace_snapshot_id = last_replace;

  // One manifest walk over the SoA columns; vectors fill unsorted and
  // are sorted once at the end (cheaper than per-file sorted insertion
  // for a bulk load). Partition keys are translated once per (manifest,
  // partition) into this entry's id arena, so the per-file loop reads
  // four numeric columns and never touches a string.
  const lst::Snapshot* snap = meta.current_snapshot();
  std::vector<common::PartitionId> translate;
  if (snap != nullptr) {
    for (const lst::ManifestPtr& m : snap->manifests) {
      const common::StringInterner& names = m->partition_interner();
      translate.assign(static_cast<size_t>(names.size()),
                       common::StringInterner::kInvalidId);
      for (const common::PartitionId mpid : m->partition_ids()) {
        translate[static_cast<size_t>(mpid)] =
            entry->partition_names.Intern(names.NameOf(mpid));
      }
      const auto& sizes = m->size_column();
      const auto& flags = m->flag_column();
      const auto& added = m->added_snapshot_column();
      const auto& pcol = m->partition_column();
      for (size_t i = 0; i < sizes.size(); ++i) {
        const int64_t size = sizes[i];
        const bool is_delete =
            (flags[i] & lst::Manifest::kFlagPositionDeletes) != 0;
        const bool unclustered =
            (flags[i] & lst::Manifest::kFlagUnclustered) != 0;
        const common::PartitionId pid =
            translate[static_cast<size_t>(pcol[i])];

        entry->live.total.sizes.push_back(size);
        entry->live.total.total_bytes += size;
        if (is_delete) ++entry->live.total.delete_file_count;
        if (unclustered) entry->live.total.unclustered_bytes += size;
        Aggregate& part = entry->live.partitions[pid];
        part.sizes.push_back(size);
        part.total_bytes += size;
        if (is_delete) ++part.delete_file_count;
        if (unclustered) part.unclustered_bytes += size;

        if (added[i] > last_replace) {
          entry->fresh.total.sizes.push_back(size);
          entry->fresh.total.total_bytes += size;
          if (is_delete) ++entry->fresh.total.delete_file_count;
          if (unclustered) entry->fresh.total.unclustered_bytes += size;
          Aggregate& fresh_part = entry->fresh.partitions[pid];
          fresh_part.sizes.push_back(size);
          fresh_part.total_bytes += size;
          if (is_delete) ++fresh_part.delete_file_count;
          if (unclustered) fresh_part.unclustered_bytes += size;
        }

        const int bucket = SizeBucket(size);
        ++entry->histogram_count[bucket];
        entry->histogram_bytes[bucket] += size;
      }
    }
  }

  std::sort(entry->live.total.sizes.begin(), entry->live.total.sizes.end());
  for (auto& [_, part] : entry->live.partitions) {
    std::sort(part.sizes.begin(), part.sizes.end());
  }
  std::sort(entry->fresh.total.sizes.begin(), entry->fresh.total.sizes.end());
  for (auto& [_, part] : entry->fresh.partitions) {
    std::sort(part.sizes.begin(), part.sizes.end());
  }

  entry->version = meta.version();
}

void IncrementalStatsIndex::ApplyDeltaLocked(
    TableEntry* entry, const lst::TableMetadata& meta,
    const lst::CommitDelta& delta) const {
  // Removals first, judged against the OLD watermark: a removed file was
  // fresh iff it was added after the replace snapshot that preceded this
  // commit.
  for (const lst::DataFile& f : delta.removed) {
    const common::PartitionId pid =
        entry->partition_names.Intern(f.partition);
    const bool was_fresh =
        f.added_snapshot_id > entry->last_replace_snapshot_id;
    if (!entry->live.Remove(pid, f) ||
        (was_fresh && !entry->fresh.Remove(pid, f))) {
      // The delta does not reconcile with the aggregates (should not
      // happen; defensive against future commit paths) — rebuild.
      rebuilds_.fetch_add(1);
      RebuildLocked(entry, meta);
      return;
    }
    const int bucket = SizeBucket(f.file_size_bytes);
    --entry->histogram_count[bucket];
    entry->histogram_bytes[bucket] -= f.file_size_bytes;
  }

  // A replace commit advances the watermark: nothing live was added
  // after it (its own outputs carry added_snapshot_id == the watermark),
  // so the fresh population resets.
  if (delta.operation == lst::SnapshotOperation::kReplace) {
    entry->last_replace_snapshot_id =
        std::max(entry->last_replace_snapshot_id, delta.snapshot_id);
    entry->fresh.Clear();
  }

  for (const lst::DataFile& f : delta.added) {
    const common::PartitionId pid =
        entry->partition_names.Intern(f.partition);
    entry->live.Add(pid, f);
    if (f.added_snapshot_id > entry->last_replace_snapshot_id) {
      entry->fresh.Add(pid, f);
    }
    const int bucket = SizeBucket(f.file_size_bytes);
    ++entry->histogram_count[bucket];
    entry->histogram_bytes[bucket] += f.file_size_bytes;
  }

  entry->version = meta.version();
  deltas_applied_.fetch_add(1);
}

IncrementalStatsIndex::TableEntry* IncrementalStatsIndex::EnsureLocked(
    Shard& shard, common::TableId table,
    const lst::TableMetadata& meta) const {
  auto [it, inserted] = shard.tables.try_emplace(table);
  TableEntry& entry = it->second;
  if (inserted) {
    lazy_builds_.fetch_add(1);
    RebuildLocked(&entry, meta);
  } else if (entry.version < meta.version()) {
    // The entry lags the pinned metadata: either its commit event has
    // not been delivered yet (listeners run outside the catalog lock) or
    // it was dropped before the entry existed. Newer wins — rebuild; the
    // in-flight event will then be skipped as stale.
    rebuilds_.fetch_add(1);
    RebuildLocked(&entry, meta);
  } else if (entry.version > meta.version()) {
    // The caller pinned an older version than the index has applied;
    // serving it would break determinism. Fall back to the rescan path.
    return nullptr;
  }
  return &entry;
}

void IncrementalStatsIndex::OnCommit(const catalog::CommitEvent& event) const {
  const common::TableId table_id = table_ids_.Intern(event.table);
  Shard& shard = ShardFor(table_id);
  std::lock_guard<std::mutex> lock(shard.mu);
  const auto it = shard.tables.find(table_id);
  if (event.metadata == nullptr) {  // drop
    if (it != shard.tables.end()) shard.tables.erase(it);
    return;
  }
  if (it == shard.tables.end()) {
    // Not materialized yet; the first query will lazy-build from fresh
    // metadata. Building here would index tables observe never reads.
    return;
  }
  TableEntry& entry = it->second;
  const int64_t committed_version = event.metadata->version();
  if (committed_version <= entry.version) {
    // Out-of-order delivery of an event the entry already covers.
    stale_events_.fetch_add(1);
    return;
  }
  if (event.delta != nullptr && event.delta->known &&
      committed_version == entry.version + 1) {
    ApplyDeltaLocked(&entry, *event.metadata, *event.delta);
    return;
  }
  // Delta-less commit (expiry, rollback) or a gap in the event stream.
  rebuilds_.fetch_add(1);
  RebuildLocked(&entry, *event.metadata);
}

std::optional<CandidateStats> IncrementalStatsIndex::TryCollect(
    const Candidate& candidate, const lst::TableMetadataPtr& meta) const {
  const common::TableId table_id = table_ids_.Intern(candidate.table);
  Shard& shard = ShardFor(table_id);
  std::lock_guard<std::mutex> lock(shard.mu);
  const TableEntry* entry = EnsureLocked(shard, table_id, *meta);
  if (entry == nullptr) return std::nullopt;

  const ScopeView* view = nullptr;
  switch (candidate.scope) {
    case CandidateScope::kTable:
      view = &entry->live;
      break;
    case CandidateScope::kSnapshot:
      // Serve only the watermark the index maintains; any other
      // after_snapshot_id needs a filtered rescan.
      if (candidate.after_snapshot_id != entry->last_replace_snapshot_id) {
        return std::nullopt;
      }
      view = &entry->fresh;
      break;
    case CandidateScope::kPartition:
      break;  // handled below
  }

  CandidateStats stats;
  stats.table_created_at = meta->created_at();
  stats.last_modified_at = meta->last_updated_at();

  if (candidate.scope == CandidateScope::kPartition) {
    // Reporting edge: resolve the candidate's partition key against the
    // entry's arena; an unknown key means no live files (same result a
    // rescan restricted to it would produce).
    const common::PartitionId pid =
        candidate.partition.has_value()
            ? entry->partition_names.Lookup(*candidate.partition)
            : common::StringInterner::kInvalidId;
    const auto part = pid != common::StringInterner::kInvalidId
                          ? entry->live.partitions.find(pid)
                          : entry->live.partitions.end();
    if (part != entry->live.partitions.end()) {
      const Aggregate& agg = part->second;
      stats.file_sizes = agg.sizes;
      stats.total_bytes = agg.total_bytes;
      stats.delete_file_count = agg.delete_file_count;
      stats.unclustered_bytes = agg.unclustered_bytes;
      stats.file_sizes_by_partition.emplace(*candidate.partition, agg.sizes);
    }
  } else {
    stats.file_sizes = view->total.sizes;
    stats.total_bytes = view->total.total_bytes;
    stats.delete_file_count = view->total.delete_file_count;
    stats.unclustered_bytes = view->total.unclustered_bytes;
    // The id-keyed map iterates in id (arrival) order; inserting into
    // the name-keyed output map restores lexicographic order (NFR2).
    for (const auto& [pid, agg] : view->partitions) {
      stats.file_sizes_by_partition.emplace(entry->partition_names.NameOf(pid),
                                            agg.sizes);
    }
  }
  stats.file_count = static_cast<int64_t>(stats.file_sizes.size());
  return stats;
}

std::optional<std::vector<std::string>> IncrementalStatsIndex::LivePartitions(
    const std::string& table, const lst::TableMetadataPtr& meta) const {
  const common::TableId table_id = table_ids_.Intern(table);
  Shard& shard = ShardFor(table_id);
  std::lock_guard<std::mutex> lock(shard.mu);
  const TableEntry* entry = EnsureLocked(shard, table_id, *meta);
  if (entry == nullptr) return std::nullopt;
  std::vector<std::string> out;
  out.reserve(entry->live.partitions.size());
  for (const auto& [pid, _] : entry->live.partitions) {
    out.push_back(entry->partition_names.NameOf(pid));
  }
  // Ids iterate in arrival order; sorting restores the lexicographic
  // output of TableMetadata::LivePartitions (NFR2).
  std::sort(out.begin(), out.end());
  return out;
}

std::optional<int64_t> IncrementalStatsIndex::LastReplaceSnapshotId(
    const std::string& table, const lst::TableMetadataPtr& meta) const {
  const common::TableId table_id = table_ids_.Intern(table);
  Shard& shard = ShardFor(table_id);
  std::lock_guard<std::mutex> lock(shard.mu);
  const TableEntry* entry = EnsureLocked(shard, table_id, *meta);
  if (entry == nullptr) return std::nullopt;
  return entry->last_replace_snapshot_id;
}

std::optional<IncrementalStatsIndex::SmallFileSummary>
IncrementalStatsIndex::SmallFilesBelow(const std::string& table,
                                       const lst::TableMetadataPtr& meta,
                                       int64_t threshold_bytes) const {
  const common::TableId table_id = table_ids_.Intern(table);
  Shard& shard = ShardFor(table_id);
  std::lock_guard<std::mutex> lock(shard.mu);
  const TableEntry* entry = EnsureLocked(shard, table_id, *meta);
  if (entry == nullptr) return std::nullopt;

  SmallFileSummary out;
  if (threshold_bytes <= 0) return out;
  const int boundary = SizeBucket(threshold_bytes);
  // Buckets strictly below the boundary hold sizes < 2^boundary <=
  // threshold: counted wholesale from the histogram.
  for (int b = 0; b < boundary; ++b) {
    out.count += entry->histogram_count[b];
    out.bytes += entry->histogram_bytes[b];
  }
  // The boundary bucket straddles the threshold; refine against the
  // exact sorted sizes (touches only that bucket's occupancy).
  const std::vector<int64_t>& sizes = entry->live.total.sizes;
  const int64_t bucket_lo = boundary == 0 ? 0 : int64_t{1} << boundary;
  const auto lo = std::lower_bound(sizes.begin(), sizes.end(), bucket_lo);
  const auto hi = std::lower_bound(sizes.begin(), sizes.end(), threshold_bytes);
  for (auto it = lo; it != hi; ++it) {
    ++out.count;
    out.bytes += *it;
  }
  return out;
}

IncrementalStatsIndex::Totals IncrementalStatsIndex::FleetTotals() const {
  Totals totals;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    for (const auto& [_, entry] : shard.tables) {
      ++totals.tables;
      totals.live_files +=
          static_cast<int64_t>(entry.live.total.sizes.size());
      totals.live_bytes += entry.live.total.total_bytes;
    }
  }
  return totals;
}

// ---------------------------------------------------------------------------
// IndexedStatsCollector

IndexedStatsCollector::IndexedStatsCollector(
    catalog::Catalog* catalog, const catalog::ControlPlane* control_plane,
    const Clock* clock, std::shared_ptr<const IncrementalStatsIndex> index,
    bool cross_check)
    : StatsCollector(catalog, control_plane, clock),
      index_(std::move(index)),
      cross_check_(cross_check) {
  assert(index_ != nullptr);
}

Result<CandidateStats> IndexedStatsCollector::Collect(
    const Candidate& candidate) const {
  AUTOCOMP_ASSIGN_OR_RETURN(lst::TableMetadataPtr meta,
                            catalog_->LoadTable(candidate.table));
  std::optional<CandidateStats> indexed = index_->TryCollect(candidate, meta);
  if (!indexed.has_value()) {
    index_fallbacks_.fetch_add(1);
    return CollectFromMetadata(candidate, meta);
  }
  index_hits_.fetch_add(1);
  RefreshVolatile(candidate, *meta, &*indexed);

  if (cross_check_) {
    // Reference rescan against the SAME pinned metadata, so a concurrent
    // commit cannot manufacture a false mismatch.
    AUTOCOMP_ASSIGN_OR_RETURN(CandidateStats reference,
                              CollectFromMetadata(candidate, meta));
    std::string why;
    if (!StatsEquivalent(*indexed, reference, &why)) {
      return Status::Internal("stats index diverged from rescan for " +
                              candidate.id() + ": " + why);
    }
  }
  return std::move(*indexed);
}

// ---------------------------------------------------------------------------

bool StatsEquivalent(const CandidateStats& a, const CandidateStats& b,
                     std::string* why) {
  const auto fail = [why](const std::string& field) {
    if (why != nullptr) *why = field;
    return false;
  };
  if (a.file_count != b.file_count) return fail("file_count");
  if (a.total_bytes != b.total_bytes) return fail("total_bytes");
  if (a.file_sizes != b.file_sizes) return fail("file_sizes");
  if (a.file_sizes_by_partition != b.file_sizes_by_partition) {
    return fail("file_sizes_by_partition");
  }
  if (a.target_file_size_bytes != b.target_file_size_bytes) {
    return fail("target_file_size_bytes");
  }
  if (a.table_created_at != b.table_created_at) {
    return fail("table_created_at");
  }
  if (a.last_modified_at != b.last_modified_at) {
    return fail("last_modified_at");
  }
  if (a.delete_file_count != b.delete_file_count) {
    return fail("delete_file_count");
  }
  if (a.unclustered_bytes != b.unclustered_bytes) {
    return fail("unclustered_bytes");
  }
  if (a.quota_utilization != b.quota_utilization) {
    return fail("quota_utilization");
  }
  if (a.custom.entries() != b.custom.entries()) return fail("custom");
  return true;
}

}  // namespace autocomp::core
