/// \file observe.h
/// \brief Observe phase: candidate generation and statistics collection.

#pragma once

#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "catalog/control_plane.h"
#include "common/clock.h"
#include "common/thread_pool.h"
#include "core/candidate.h"

namespace autocomp::core {

class IncrementalStatsIndex;

/// \brief Produces the raw candidate pool from the catalog (§4.1).
///
/// Implementations must be deterministic for a given catalog state (NFR2):
/// candidates come out sorted by id, and the parallel path (a non-null
/// `pool` with more than one worker) is required to produce output
/// bit-for-bit identical to the sequential path — generators shard the
/// fleet per table into index-ordered slots and merge deterministically.
///
/// Generators that derive candidates from table contents (partition
/// lists, replace watermarks) optionally consult an IncrementalStatsIndex
/// so idle tables cost O(1) instead of a manifest walk; with no index
/// (or a stale one) they fall back to scanning the pinned metadata, and
/// the output is identical either way.
class CandidateGenerator {
 public:
  virtual ~CandidateGenerator() = default;
  virtual std::string name() const = 0;
  virtual Result<std::vector<Candidate>> Generate(
      catalog::Catalog* catalog, ThreadPool* pool = nullptr) const = 0;
};

/// \brief One candidate per table (LinkedIn's initial deployment scope,
/// §7).
class TableScopeGenerator final : public CandidateGenerator {
 public:
  /// Table scope reads no table contents, so the index is unused; the
  /// parameter keeps construction uniform across generators.
  explicit TableScopeGenerator(
      std::shared_ptr<const IncrementalStatsIndex> index = nullptr);
  std::string name() const override { return "table-scope"; }
  Result<std::vector<Candidate>> Generate(
      catalog::Catalog* catalog, ThreadPool* pool = nullptr) const override;

 private:
  std::shared_ptr<const IncrementalStatsIndex> index_;
};

/// \brief One candidate per live partition of partitioned tables;
/// unpartitioned tables are skipped.
class PartitionScopeGenerator final : public CandidateGenerator {
 public:
  explicit PartitionScopeGenerator(
      std::shared_ptr<const IncrementalStatsIndex> index = nullptr);
  std::string name() const override { return "partition-scope"; }
  Result<std::vector<Candidate>> Generate(
      catalog::Catalog* catalog, ThreadPool* pool = nullptr) const override;

 private:
  std::shared_ptr<const IncrementalStatsIndex> index_;
};

/// \brief Partition scope for partitioned tables, table scope otherwise —
/// the evaluation's "hybrid" strategy (§6).
class HybridScopeGenerator final : public CandidateGenerator {
 public:
  explicit HybridScopeGenerator(
      std::shared_ptr<const IncrementalStatsIndex> index = nullptr);
  std::string name() const override { return "hybrid-scope"; }
  Result<std::vector<Candidate>> Generate(
      catalog::Catalog* catalog, ThreadPool* pool = nullptr) const override;

 private:
  std::shared_ptr<const IncrementalStatsIndex> index_;
};

/// \brief One candidate per table covering only files added after the
/// last compaction (replace) snapshot — fresh-data maintenance (§4.1).
class SnapshotScopeGenerator final : public CandidateGenerator {
 public:
  explicit SnapshotScopeGenerator(
      std::shared_ptr<const IncrementalStatsIndex> index = nullptr);
  std::string name() const override { return "snapshot-scope"; }
  Result<std::vector<Candidate>> Generate(
      catalog::Catalog* catalog, ThreadPool* pool = nullptr) const override;

 private:
  std::shared_ptr<const IncrementalStatsIndex> index_;
};

/// \brief Collects the standardized statistics for a candidate from LST
/// metadata tables and catalog quota state.
///
/// `Collect` must be safe to call concurrently from multiple threads:
/// it only reads catalog/control-plane state. Subclasses adding mutable
/// state (e.g. caches) must synchronize internally.
///
/// Canonical ordering (NFR2): `file_sizes` and every vector in
/// `file_sizes_by_partition` come out sorted ascending. Every collector
/// implementation must honor this — it is what makes rescans, cached
/// entries, and incrementally indexed aggregates bit-identical even
/// through order-sensitive float reductions (the entropy traits).
class StatsCollector {
 public:
  StatsCollector(catalog::Catalog* catalog,
                 const catalog::ControlPlane* control_plane,
                 const Clock* clock);
  virtual ~StatsCollector() = default;

  /// Fills a CandidateStats for `candidate` from the current table state.
  virtual Result<CandidateStats> Collect(const Candidate& candidate) const;

  /// Convenience: observe a whole pool. With a non-null `pool` (of >1
  /// workers) candidates fan out across the pool; output order and
  /// content are identical to the sequential path, and on error the
  /// first failing candidate in pool order is reported (NFR2).
  Result<std::vector<ObservedCandidate>> CollectAll(
      const std::vector<Candidate>& candidates,
      ThreadPool* pool = nullptr) const;

  /// Cache telemetry; the plain collector has no cache so both are 0.
  virtual int64_t hits() const { return 0; }
  virtual int64_t misses() const { return 0; }

  /// Stats-index telemetry; non-indexed collectors report 0.
  virtual int64_t index_hits() const { return 0; }
  virtual int64_t index_fallbacks() const { return 0; }

 protected:
  /// The full rescan path against a pinned metadata version: walks the
  /// candidate's live files and fills the canonical (sorted) stats.
  /// Subclasses use it as the fallback/cross-check reference.
  Result<CandidateStats> CollectFromMetadata(
      const Candidate& candidate, const lst::TableMetadataPtr& meta) const;

  /// Re-derives the fields that change *without* the table's snapshot
  /// moving (control-plane target size, database quota, access
  /// telemetry). Cached/indexed hit paths call this so their output is
  /// byte-identical to a fresh collection.
  void RefreshVolatile(const Candidate& candidate,
                       const lst::TableMetadata& meta,
                       CandidateStats* stats) const;

  catalog::Catalog* catalog_;
  const catalog::ControlPlane* control_plane_;
  const Clock* clock_;
};

/// \brief Snapshot-keyed LRU caching wrapper around StatsCollector.
///
/// Observing a 100K-table fleet (the paper's projected scale, §2) every
/// cycle re-walks every table's live files. The metadata-derived portion
/// of a candidate's stats depends only on the table's current snapshot,
/// so entries are keyed by (candidate id, current snapshot id) and
/// reused until the snapshot moves — the common case in a fleet where
/// most tables are idle between compaction cycles.
///
/// Two safeguards keep cached output byte-identical to a cold run:
///  - Volatile inputs that change *without* a snapshot move — database
///    quota utilization (commits to sibling tables), access telemetry,
///    and the control-plane target file size — are re-read on every hit.
///  - The collector registers a commit listener with the catalog; any
///    commit or drop of a table eagerly evicts that table's entries
///    (all scopes/partitions), bounding memory for churned tables.
///
/// Thread-safe: a mutex guards the cache and counters so CollectAll can
/// fan Collect out across a ThreadPool.
class CachingStatsCollector final : public StatsCollector {
 public:
  /// `capacity` bounds the number of cached candidate entries (LRU
  /// eviction); <= 0 means unbounded.
  CachingStatsCollector(catalog::Catalog* catalog,
                        const catalog::ControlPlane* control_plane,
                        const Clock* clock, int64_t capacity = kDefaultCapacity);

  /// Layered form: cache misses collect through `base` (e.g. an
  /// IndexedStatsCollector) instead of the plain rescan, composing the
  /// cache with the incremental index. `base` must produce canonical
  /// (sorted) stats; index telemetry is forwarded from it.
  CachingStatsCollector(catalog::Catalog* catalog,
                        const catalog::ControlPlane* control_plane,
                        const Clock* clock,
                        std::shared_ptr<const StatsCollector> base,
                        int64_t capacity = kDefaultCapacity);
  ~CachingStatsCollector() override;

  CachingStatsCollector(const CachingStatsCollector&) = delete;
  CachingStatsCollector& operator=(const CachingStatsCollector&) = delete;

  static constexpr int64_t kDefaultCapacity = 1 << 20;

  Result<CandidateStats> Collect(const Candidate& candidate) const override;

  int64_t hits() const override;
  int64_t misses() const override;
  int64_t index_hits() const override;
  int64_t index_fallbacks() const override;
  int64_t size() const;
  /// Drops all cached entries (e.g. after policy changes, which affect
  /// target sizes without moving table versions).
  void Invalidate() const;
  /// Drops every entry belonging to `table` (any scope or partition);
  /// wired to catalog commits via the commit listener.
  void InvalidateTable(const std::string& table) const;

 private:
  struct Entry {
    int64_t snapshot_id = 0;
    CandidateStats stats;
    std::list<std::string>::iterator lru_it;
  };

  void TouchLocked(Entry& entry, const std::string& key) const;

  catalog::Catalog* listener_catalog_ = nullptr;
  int64_t listener_id_ = 0;
  /// Optional miss-path delegate (nullptr = plain rescan).
  std::shared_ptr<const StatsCollector> base_;
  const int64_t capacity_;
  mutable std::mutex mu_;
  // Ordered map so InvalidateTable can prefix-scan a table's entries
  // ("db.t", "db.t/part", "db.t@>42" are contiguous).
  mutable std::map<std::string, Entry> cache_;
  mutable std::list<std::string> lru_;  // front = most recent
  mutable int64_t hits_ = 0;
  mutable int64_t misses_ = 0;
};

}  // namespace autocomp::core
