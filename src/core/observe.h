/// \file observe.h
/// \brief Observe phase: candidate generation and statistics collection.

#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "catalog/control_plane.h"
#include "common/clock.h"
#include "core/candidate.h"

namespace autocomp::core {

/// \brief Produces the raw candidate pool from the catalog (§4.1).
///
/// Implementations must be deterministic for a given catalog state (NFR2):
/// candidates come out sorted by id.
class CandidateGenerator {
 public:
  virtual ~CandidateGenerator() = default;
  virtual std::string name() const = 0;
  virtual Result<std::vector<Candidate>> Generate(
      catalog::Catalog* catalog) const = 0;
};

/// \brief One candidate per table (LinkedIn's initial deployment scope,
/// §7).
class TableScopeGenerator final : public CandidateGenerator {
 public:
  std::string name() const override { return "table-scope"; }
  Result<std::vector<Candidate>> Generate(
      catalog::Catalog* catalog) const override;
};

/// \brief One candidate per live partition of partitioned tables;
/// unpartitioned tables are skipped.
class PartitionScopeGenerator final : public CandidateGenerator {
 public:
  std::string name() const override { return "partition-scope"; }
  Result<std::vector<Candidate>> Generate(
      catalog::Catalog* catalog) const override;
};

/// \brief Partition scope for partitioned tables, table scope otherwise —
/// the evaluation's "hybrid" strategy (§6).
class HybridScopeGenerator final : public CandidateGenerator {
 public:
  std::string name() const override { return "hybrid-scope"; }
  Result<std::vector<Candidate>> Generate(
      catalog::Catalog* catalog) const override;
};

/// \brief One candidate per table covering only files added after the
/// last compaction (replace) snapshot — fresh-data maintenance (§4.1).
class SnapshotScopeGenerator final : public CandidateGenerator {
 public:
  std::string name() const override { return "snapshot-scope"; }
  Result<std::vector<Candidate>> Generate(
      catalog::Catalog* catalog) const override;
};

/// \brief Collects the standardized statistics for a candidate from LST
/// metadata tables and catalog quota state.
class StatsCollector {
 public:
  StatsCollector(catalog::Catalog* catalog,
                 const catalog::ControlPlane* control_plane,
                 const Clock* clock);
  virtual ~StatsCollector() = default;

  /// Fills a CandidateStats for `candidate` from the current table state.
  virtual Result<CandidateStats> Collect(const Candidate& candidate) const;

  /// Convenience: observe a whole pool.
  Result<std::vector<ObservedCandidate>> CollectAll(
      const std::vector<Candidate>& candidates) const;

 protected:
  catalog::Catalog* catalog_;
  const catalog::ControlPlane* control_plane_;
  const Clock* clock_;
};

/// \brief Version-keyed caching wrapper around StatsCollector.
///
/// Observing a 100K-table fleet (the paper's projected scale, §2) every
/// cycle re-walks every table's live files. Since stats depend only on a
/// table's metadata version (plus quota state, which changes with file
/// counts and hence with versions too), results can be reused until the
/// table's version moves — the common case in a fleet where most tables
/// are idle between compaction cycles.
class CachingStatsCollector final : public StatsCollector {
 public:
  CachingStatsCollector(catalog::Catalog* catalog,
                        const catalog::ControlPlane* control_plane,
                        const Clock* clock);

  Result<CandidateStats> Collect(const Candidate& candidate) const override;

  int64_t hits() const { return hits_; }
  int64_t misses() const { return misses_; }
  /// Drops all cached entries (e.g. after policy changes, which affect
  /// target sizes without moving table versions).
  void Invalidate() const;

 private:
  struct Entry {
    int64_t version = 0;
    CandidateStats stats;
  };
  mutable std::map<std::string, Entry> cache_;
  mutable int64_t hits_ = 0;
  mutable int64_t misses_ = 0;
};

}  // namespace autocomp::core
