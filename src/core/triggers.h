/// \file triggers.h
/// \brief Execution triggers (§5): periodic ("pull") and
/// optimize-after-write ("push"), plus the service tying them to a
/// pipeline.

#pragma once

#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/clock.h"
#include "core/filters.h"
#include "core/pipeline.h"
#include "core/ranking.h"

namespace autocomp::core {

/// \name Trigger-axis admission filters (policy.h, TriggerAxis)
///
/// The policy design space's trigger axis is realized as per-candidate
/// admission predicates slotted into the pipeline's pre-orient filter
/// chain: the service still wakes on its periodic cadence (the
/// PeriodicTrigger below), but a candidate only proceeds to orient once
/// its trigger condition holds. The periodic trigger is the absence of
/// such a filter — every cycle admits everything, the pre-decomposition
/// behavior.
/// @{

/// \brief Fires once the candidate holds at least `min_files` small
/// files (Iceberg's min-input-files / Bigtable's stack-size trigger).
class FileCountTriggerFilter final : public CandidateFilter {
 public:
  explicit FileCountTriggerFilter(int64_t min_files)
      : min_files_(min_files) {}
  std::string name() const override { return "trigger:file-count"; }
  bool ShouldKeep(const ObservedCandidate& candidate,
                  SimTime) const override {
    return candidate.stats.small_file_count() >= min_files_;
  }

 private:
  int64_t min_files_;
};

/// \brief Fires once small-file bytes reach 1/`ratio` of the
/// already-compact bytes — an LSM size-ratio (tiering) trigger: debt is
/// worth paying down when it is no longer negligible against the
/// compacted mass.
class SizeRatioTriggerFilter final : public CandidateFilter {
 public:
  explicit SizeRatioTriggerFilter(double ratio) : ratio_(ratio) {}
  std::string name() const override { return "trigger:size-ratio"; }
  bool ShouldKeep(const ObservedCandidate& candidate,
                  SimTime) const override {
    const int64_t small = candidate.stats.small_file_bytes();
    const int64_t compact = candidate.stats.total_bytes - small;
    return candidate.stats.small_file_count() >= 2 &&
           static_cast<double>(small) * ratio_ >=
               static_cast<double>(compact);
  }

 private:
  double ratio_;
};

/// \brief Fires once the candidate has been write-quiescent for
/// `quiesce_window` with debt outstanding: compact cold data, dodge
/// write-write conflicts on hot data.
class StalenessTriggerFilter final : public CandidateFilter {
 public:
  explicit StalenessTriggerFilter(SimTime quiesce_window)
      : quiesce_window_(quiesce_window) {}
  std::string name() const override { return "trigger:staleness"; }
  bool ShouldKeep(const ObservedCandidate& candidate,
                  SimTime now) const override {
    return candidate.stats.small_file_count() >= 2 &&
           now - candidate.stats.last_modified_at >= quiesce_window_;
  }

 private:
  SimTime quiesce_window_;
};

/// \brief Staleness with a burst bypass: quiesced debt compacts after
/// `deadline`, but a backlog of `burst_files` or more small files fires
/// immediately — a latency SLO that still reacts to write bursts.
class DeadlineTriggerFilter final : public CandidateFilter {
 public:
  explicit DeadlineTriggerFilter(SimTime deadline, int64_t burst_files = 16)
      : deadline_(deadline), burst_files_(burst_files) {}
  std::string name() const override { return "trigger:deadline"; }
  bool ShouldKeep(const ObservedCandidate& candidate,
                  SimTime now) const override {
    const int64_t small = candidate.stats.small_file_count();
    if (small < 2) return false;
    return small >= burst_files_ ||
           now - candidate.stats.last_modified_at >= deadline_;
  }

 private:
  SimTime deadline_;
  int64_t burst_files_;
};

/// @}

/// \brief Fixed-interval trigger (the evaluation triggers compaction
/// hourly; LinkedIn's production deployment daily).
class PeriodicTrigger {
 public:
  PeriodicTrigger(SimTime interval, SimTime first_due = 0)
      : interval_(interval), next_due_(first_due) {}

  bool Due(SimTime now) const { return now >= next_due_; }
  SimTime next_due() const { return next_due_; }
  SimTime interval() const { return interval_; }

  /// Advances the schedule past `now` (multiple missed intervals collapse
  /// into one run).
  void MarkRun(SimTime now) {
    next_due_ += interval_;
    if (next_due_ <= now) {
      next_due_ = now + interval_;
    }
  }

 private:
  SimTime interval_;
  SimTime next_due_;
};

/// \brief Engine hook evaluated after write commits (§5).
///
/// Two modes: kImmediate evaluates the written candidate's traits at once
/// and compacts when the threshold policy triggers (needs an unlimited
/// budget); kNotify enqueues the candidate for the next service run
/// (decoupled, resource-controlled).
class OptimizeAfterWriteHook {
 public:
  enum class Mode : int { kImmediate, kNotify };

  struct ImmediateStages {
    std::shared_ptr<const StatsCollector> collector;
    std::vector<std::shared_ptr<const Trait>> traits;
    ThresholdPolicy policy;
    std::shared_ptr<CompactionScheduler> scheduler;
  };

  /// Notify-mode hook.
  OptimizeAfterWriteHook();
  /// Immediate-mode hook.
  explicit OptimizeAfterWriteHook(ImmediateStages stages);

  Mode mode() const { return mode_; }

  /// Invoked by the engine's write path after a commit. For kImmediate
  /// the returned unit is set when compaction ran; for kNotify it is
  /// nullopt and the candidate queues up.
  Result<std::optional<ScheduledCompaction>> OnWrite(
      const std::string& table, const std::optional<std::string>& partition,
      SimTime now);

  /// kNotify: drains the queued candidates (deduplicated, stable order).
  std::vector<Candidate> DrainNotifications();

  int64_t triggered_count() const { return triggered_; }
  int64_t evaluated_count() const { return evaluated_; }

 private:
  Mode mode_;
  std::optional<ImmediateStages> stages_;
  std::deque<Candidate> queue_;
  int64_t triggered_ = 0;
  int64_t evaluated_ = 0;
};

/// \brief Standalone compaction service (Figure 5): owns a pipeline, a
/// periodic trigger, and optionally consumes hook notifications.
class AutoCompService {
 public:
  AutoCompService(std::unique_ptr<AutoCompPipeline> pipeline,
                  PeriodicTrigger trigger,
                  OptimizeAfterWriteHook* hook = nullptr);

  /// Called by the host on its own cadence; runs the pipeline when the
  /// trigger is due (and folds in any hook notifications). Returns the
  /// run report if a run happened.
  Result<std::optional<PipelineRunReport>> Tick(SimTime now);

  /// Forces a run regardless of the trigger (used for post-write bursts).
  Result<PipelineRunReport> RunNow();

  AutoCompPipeline* pipeline() { return pipeline_.get(); }
  const PeriodicTrigger& trigger() const { return trigger_; }

  /// History of all runs, for reporting.
  const std::vector<PipelineRunReport>& history() const { return history_; }

 private:
  std::unique_ptr<AutoCompPipeline> pipeline_;
  PeriodicTrigger trigger_;
  OptimizeAfterWriteHook* hook_;
  std::vector<PipelineRunReport> history_;
};

}  // namespace autocomp::core
