#include "core/advisor.h"

#include <algorithm>

namespace autocomp::core {

const char* AdviceKindName(AdviceKind kind) {
  switch (kind) {
    case AdviceKind::kUntunedWriter:
      return "untuned-writer";
    case AdviceKind::kTrickleAppends:
      return "trickle-appends";
    case AdviceKind::kMorDeltaBacklog:
      return "mor-delta-backlog";
    case AdviceKind::kClusteringOpportunity:
      return "clustering-opportunity";
  }
  return "unknown";
}

Result<std::vector<WriteAdvice>> WriteConfigAdvisor::AnalyzeTable(
    catalog::Catalog* catalog, const std::string& qualified_name) const {
  AUTOCOMP_ASSIGN_OR_RETURN(lst::TableMetadataPtr meta,
                            catalog->LoadTable(qualified_name));
  std::vector<WriteAdvice> advice;

  // --- Writer patterns from the recent commit history (writes only).
  const auto& snapshots = meta->snapshots();
  int commits = 0;
  int64_t added_files = 0;
  int64_t added_bytes = 0;
  int small_commits = 0;
  for (auto it = snapshots.rbegin();
       it != snapshots.rend() && commits < options_.history_window; ++it) {
    if (it->operation == lst::SnapshotOperation::kReplace) continue;
    if (it->added_files <= 0) continue;
    ++commits;
    added_files += it->added_files;
    added_bytes += it->added_bytes;
    if (it->added_bytes / it->added_files < options_.small_write_bytes) {
      ++small_commits;
    }
  }
  if (commits >= options_.min_commits && added_files > 0) {
    const int64_t mean_file = added_bytes / added_files;
    if (mean_file < options_.small_write_bytes) {
      const double files_per_commit =
          static_cast<double>(added_files) / commits;
      if (files_per_commit >= 8) {
        advice.push_back(WriteAdvice{
            qualified_name, AdviceKind::kUntunedWriter,
            "writes add ~" + std::to_string(static_cast<int64_t>(
                                 files_per_commit)) +
                " files of " + FormatBytes(mean_file) +
                " mean size per commit; enable output coalescing or raise "
                "the shuffle-partition size toward the " +
                FormatBytes(meta->target_file_size_bytes()) + " target",
            static_cast<double>(options_.small_write_bytes - mean_file) /
                static_cast<double>(options_.small_write_bytes) +
                files_per_commit / 64.0});
      } else {
        advice.push_back(WriteAdvice{
            qualified_name, AdviceKind::kTrickleAppends,
            "frequent small appends (" + std::to_string(small_commits) +
                " of the last " + std::to_string(commits) +
                " commits add files of " + FormatBytes(mean_file) +
                " mean size); attach an optimize-after-write hook or an "
                "hourly rollup",
            static_cast<double>(small_commits) / commits});
      }
    }
  }

  // --- MoR delta backlog.
  int64_t delete_files = 0;
  int64_t unclustered_bytes = 0;
  meta->ForEachLiveFile([&](const lst::DataFile& f) {
    if (f.content == lst::FileContent::kPositionDeletes) ++delete_files;
    if (!f.clustered) unclustered_bytes += f.file_size_bytes;
  });
  if (delete_files >= options_.mor_backlog_threshold) {
    advice.push_back(WriteAdvice{
        qualified_name, AdviceKind::kMorDeltaBacklog,
        std::to_string(delete_files) +
            " merge-on-read delta files pending; every scan pays a merge "
            "penalty per delta — schedule a fold-in compaction",
        static_cast<double>(delete_files) /
            options_.mor_backlog_threshold});
  }

  // --- Clustering opportunity on hot, large, unclustered tables.
  const catalog::TableAccessStats access =
      catalog->GetAccessStats(qualified_name);
  if (access.read_count >= options_.hot_read_threshold &&
      unclustered_bytes >= options_.clustering_min_bytes) {
    advice.push_back(WriteAdvice{
        qualified_name, AdviceKind::kClusteringOpportunity,
        "read " + std::to_string(access.read_count) + " times with " +
            FormatBytes(unclustered_bytes) +
            " unclustered; a clustering rewrite (~1.6x one-off cost) lets "
            "selective scans skip row groups",
        static_cast<double>(access.read_count) /
            options_.hot_read_threshold});
  }
  return advice;
}

Result<std::vector<WriteAdvice>> WriteConfigAdvisor::Analyze(
    catalog::Catalog* catalog) const {
  std::vector<WriteAdvice> all;
  for (const std::string& name : catalog->ListAllTables()) {
    AUTOCOMP_ASSIGN_OR_RETURN(std::vector<WriteAdvice> advice,
                              AnalyzeTable(catalog, name));
    all.insert(all.end(), std::make_move_iterator(advice.begin()),
               std::make_move_iterator(advice.end()));
  }
  std::sort(all.begin(), all.end(),
            [](const WriteAdvice& a, const WriteAdvice& b) {
              if (a.severity != b.severity) return a.severity > b.severity;
              if (a.table != b.table) return a.table < b.table;
              return static_cast<int>(a.kind) < static_cast<int>(b.kind);
            });
  return all;
}

}  // namespace autocomp::core
