/// \file ranking.h
/// \brief Decide phase: ranking and selection of candidates (§4.3).

#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/candidate.h"
#include "core/traits.h"

namespace autocomp::core {

/// \brief Orders candidates by priority (most attractive first).
class Ranker {
 public:
  virtual ~Ranker() = default;
  virtual std::string name() const = 0;
  virtual std::vector<ScoredCandidate> Rank(
      std::vector<TraitedCandidate> candidates) const = 0;
};

/// \brief Weighted-sum scalarization of the multi-objective problem
/// (§4.3): each trait is min-max normalized across the candidate pool,
/// then S_c = Σ_benefit w·T′ − Σ_cost w·T′. Weights should sum to 1.
///
/// Degenerate traits (max == min across the pool) normalize to 0 and
/// cannot influence the ranking. Ties break on candidate id (NFR2).
class MoopRanker final : public Ranker {
 public:
  struct Objective {
    std::string trait;
    double weight = 0;
    /// Costs subtract; benefits add.
    bool is_cost = false;
  };

  explicit MoopRanker(std::vector<Objective> objectives);

  /// The paper's evaluation setting (§6.1): w=0.7 on file count
  /// reduction, w=0.3 on compute cost.
  static MoopRanker PaperDefault();

  std::string name() const override { return "moop"; }
  std::vector<ScoredCandidate> Rank(
      std::vector<TraitedCandidate> candidates) const override;

  const std::vector<Objective>& objectives() const { return objectives_; }

 private:
  std::vector<Objective> objectives_;
};

/// \brief Single-trait greedy ranking (the unconstrained scenario's
/// building block and the §6.3 auto-tuning decision functions).
class SingleTraitRanker final : public Ranker {
 public:
  explicit SingleTraitRanker(std::string trait) : trait_(std::move(trait)) {}
  std::string name() const override { return "single-trait:" + trait_; }
  std::vector<ScoredCandidate> Rank(
      std::vector<TraitedCandidate> candidates) const override;

 private:
  std::string trait_;
};

/// \brief Policy-axis picker (core/policy.h, PickerAxis::kGreedySizeRatio):
/// ranks candidates by the fraction of their bytes sitting in small files
/// — the classic tiering heuristic: the table most dominated by debt
/// compacts first, no trait computation needed.
class GreedySizeRatioRanker final : public Ranker {
 public:
  std::string name() const override { return "greedy-size-ratio"; }
  std::vector<ScoredCandidate> Rank(
      std::vector<TraitedCandidate> candidates) const override;
};

/// \brief Policy-axis picker (PickerAxis::kOnlineMerge): ranks candidates
/// by Bigtable-style k-way merge pressure (merge_policy.h,
/// MergePressureScore) — files eliminated per GiB written by the
/// geometric merge policy's next forced merge, 0 when the candidate's
/// stack already fits the budget.
class OnlineMergeRanker final : public Ranker {
 public:
  explicit OnlineMergeRanker(size_t k) : k_(k) {}
  std::string name() const override {
    return "online-merge:" + std::to_string(k_);
  }
  std::vector<ScoredCandidate> Rank(
      std::vector<TraitedCandidate> candidates) const override;

  size_t k() const { return k_; }

 private:
  size_t k_;
};

/// \brief Unconstrained-scenario decision function (§4.3): pass a
/// candidate to the act phase when `trait >= threshold`.
class ThresholdPolicy {
 public:
  ThresholdPolicy(std::string trait, double threshold)
      : trait_(std::move(trait)), threshold_(threshold) {}

  const std::string& trait() const { return trait_; }
  double threshold() const { return threshold_; }

  bool ShouldCompact(const TraitedCandidate& candidate) const;

  /// Filters a pool down to the candidates that trigger.
  std::vector<TraitedCandidate> Triggered(
      const std::vector<TraitedCandidate>& candidates) const;

 private:
  std::string trait_;
  double threshold_;
};

/// \brief Picks the final work list from the ranked candidates.
class Selector {
 public:
  virtual ~Selector() = default;
  virtual std::string name() const = 0;
  virtual std::vector<ScoredCandidate> Select(
      const std::vector<ScoredCandidate>& ranked) const = 0;
};

/// \brief Top-k selection (LinkedIn's initial rollout fixed k≈10, §7).
class FixedKSelector final : public Selector {
 public:
  explicit FixedKSelector(int64_t k) : k_(k) {}
  std::string name() const override { return "fixed-k"; }
  std::vector<ScoredCandidate> Select(
      const std::vector<ScoredCandidate>& ranked) const override;

 private:
  int64_t k_;
};

/// \brief Greedy budget fill (§4.3's "fit as many high-priority
/// compaction tasks as possible within the budget"): walks the ranking
/// and takes every candidate whose estimated cost still fits. The number
/// selected is the *dynamic k* of §7 (Figure 10b).
class BudgetedSelector final : public Selector {
 public:
  /// `cost_trait` must be present in candidates' traits (GBHr estimate).
  BudgetedSelector(double budget, std::string cost_trait,
                   bool skip_unaffordable = true)
      : budget_(budget),
        cost_trait_(std::move(cost_trait)),
        skip_unaffordable_(skip_unaffordable) {}

  std::string name() const override { return "budgeted"; }
  std::vector<ScoredCandidate> Select(
      const std::vector<ScoredCandidate>& ranked) const override;

  double budget() const { return budget_; }

 private:
  double budget_;
  std::string cost_trait_;
  /// true: keep scanning past items that do not fit (greedy knapsack);
  /// false: stop at the first item that does not fit (strict priority).
  bool skip_unaffordable_;
};

/// \brief Exact 0/1-knapsack selection maximizing total score within the
/// budget. Exponentially-scaled DP over discretized costs; used by the
/// ablation bench to quantify the gap to the greedy heuristic.
class KnapsackSelector final : public Selector {
 public:
  KnapsackSelector(double budget, std::string cost_trait,
                   int resolution = 1000)
      : budget_(budget),
        cost_trait_(std::move(cost_trait)),
        resolution_(resolution) {}

  std::string name() const override { return "knapsack"; }
  std::vector<ScoredCandidate> Select(
      const std::vector<ScoredCandidate>& ranked) const override;

 private:
  double budget_;
  std::string cost_trait_;
  int resolution_;
};

/// \brief LinkedIn's production benefit weight (§7):
///   w1 = 0.5 × (1 + UsedQuota / TotalQuota),
/// boosting file-count reduction for tenants near their namespace quota.
/// The cost weight is 1 - w1.
double QuotaAwareBenefitWeight(double quota_utilization);

}  // namespace autocomp::core
