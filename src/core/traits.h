/// \file traits.h
/// \brief Orient phase: traits describing a candidate's compaction
/// benefit or cost (§4.2).
///
/// Traits are independent of one another and combined only at ranking
/// time. A trait is either a *benefit* (higher = more attractive) or a
/// *cost* (higher = less attractive); the MOOP ranker subtracts
/// normalized costs from normalized benefits.

#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "common/units.h"
#include "core/candidate.h"

namespace autocomp::core {

/// \brief One decision helper computed from observed statistics.
class Trait {
 public:
  virtual ~Trait() = default;
  virtual std::string name() const = 0;
  /// Costs are subtracted by the MOOP ranking (§4.3).
  virtual bool is_cost() const { return false; }
  virtual double Compute(const ObservedCandidate& candidate) const = 0;
};

/// \brief Estimated file count reduction ΔF_c (§4.2):
///   ΔF_c = Σ_i 1(FileSize_i < TargetFileSize).
///
/// This is the paper's production estimator. It ignores partition
/// boundaries, which §7 reports as a source of overestimation (~28% in
/// one production sample); see PartitionAwareFileCountReductionTrait.
class FileCountReductionTrait final : public Trait {
 public:
  std::string name() const override { return "file_count_reduction"; }
  double Compute(const ObservedCandidate& candidate) const override;
};

/// \brief Partition-aware ΔF estimate: per partition, small files can
/// merge only with each other, and the merged data still needs
/// ceil(bytes/target) output files:
///   ΔF = Σ_p (small_p - ceil(small_bytes_p / target)).
/// Used by the estimator-accuracy experiments (§7).
class PartitionAwareFileCountReductionTrait final : public Trait {
 public:
  std::string name() const override {
    return "file_count_reduction_partition_aware";
  }
  double Compute(const ObservedCandidate& candidate) const override;
};

/// \brief Fraction of the candidate's files that are small; the relative
/// variant used for threshold triggers ("trigger compaction when the
/// estimated file count reduction reaches at least 10%", §4.3).
class SmallFileRatioTrait final : public Trait {
 public:
  std::string name() const override { return "small_file_ratio"; }
  double Compute(const ObservedCandidate& candidate) const override;
};

/// \brief File entropy (Netflix's auto-optimize trait [65], referenced in
/// §4.2 and tuned in §6.3): mean squared deviation of small files from
/// the target size, normalized by target², in [0, 1]:
///   E = (1/N) Σ_{size_i < target} ((target - size_i) / target)².
/// 0 = perfectly laid out; values near 1 = mostly tiny files.
class FileEntropyTrait final : public Trait {
 public:
  std::string name() const override { return "file_entropy"; }
  double Compute(const ObservedCandidate& candidate) const override;
};

/// \brief Layout-optimization benefit (§8, "Automatic Data Layout
/// Optimization"): bytes stored without a clustering layout. A clustering
/// rewrite converts these into row-group-skippable files; selective scans
/// then read only the matching fraction. Pair with ComputeCostTrait
/// scaled by the clustering write multiplier for a §8-style cost/benefit
/// analysis.
class ClusteringBenefitTrait final : public Trait {
 public:
  std::string name() const override { return "unclustered_bytes"; }
  double Compute(const ObservedCandidate& candidate) const override;
};

/// \brief Workload-aware benefit (§8, "Workload Awareness"): the file
/// count reduction weighted by how often the table is actually read,
///   ΔF_weighted = ΔF × log2(1 + read_count),
/// so the framework prioritizes hot tables whose scans actually pay for
/// the fragmentation. Reads come from the observe phase's custom metric
/// "read_count" (0 when the platform cannot provide it, degrading to a
/// zero trait — cold tables drop to the bottom of the ranking).
class WorkloadAwareReductionTrait final : public Trait {
 public:
  std::string name() const override {
    return "workload_aware_file_count_reduction";
  }
  double Compute(const ObservedCandidate& candidate) const override;
};

/// \brief Number of MoR delete (delta) files pending merge. Hive-style
/// deployments trigger compaction on delta-file-count thresholds (§9,
/// "compaction triggered by thresholds for delta file counts"); folding
/// them both shrinks metadata and removes the per-scan merge penalty.
class DeleteFileCountTrait final : public Trait {
 public:
  std::string name() const override { return "delete_file_count"; }
  double Compute(const ObservedCandidate& candidate) const override;
};

/// \brief Magnitude-aware entropy: the SUM (not mean) of squared relative
/// deviations over small files,
///   E_total = Σ_{size_i < target} ((target - size_i) / target)².
/// Unlike FileEntropyTrait it grows with the amount of fragmentation, so
/// a single threshold can separate "huge fragmented table" from "small
/// table with a few stray files" — the regime the §6.3 tuner needs.
class TotalFileEntropyTrait final : public Trait {
 public:
  std::string name() const override { return "file_entropy_total"; }
  double Compute(const ObservedCandidate& candidate) const override;
};

/// \brief Estimated compute cost (§4.2):
///   GBHr_c = ExecutorMemoryGB × DataSize_c / RewriteBytesPerHour,
/// where DataSize_c sums the candidate's small files (the bytes a rewrite
/// touches).
class ComputeCostTrait final : public Trait {
 public:
  ComputeCostTrait(double executor_memory_gb, double rewrite_bytes_per_hour)
      : executor_memory_gb_(executor_memory_gb),
        rewrite_bytes_per_hour_(rewrite_bytes_per_hour) {}

  std::string name() const override { return "compute_cost_gbhr"; }
  bool is_cost() const override { return true; }
  double Compute(const ObservedCandidate& candidate) const override;

 private:
  double executor_memory_gb_;
  double rewrite_bytes_per_hour_;
};

/// \brief Computes all traits for a candidate pool (orient phase).
///
/// Traits are pure functions of the observed stats, so with a non-null
/// `pool` candidates fan out across workers into per-index slots; output
/// is identical to the sequential path (NFR2). Takes the pool by value:
/// each candidate's stats move into the traited output rather than being
/// deep-copied (pass std::move when the caller is done with them).
std::vector<TraitedCandidate> ComputeTraits(
    std::vector<ObservedCandidate> candidates,
    const std::vector<std::shared_ptr<const Trait>>& traits,
    ThreadPool* pool = nullptr);

}  // namespace autocomp::core
