/// \file filters.h
/// \brief Optional filtering stages between the OODA phases (§3.3, §4.1).
///
/// Filters refine the candidate pool using observed statistics and
/// platform knowledge: skip tables that are too new or too small, avoid
/// hot tables to dodge write-write conflicts, and allow arbitrary
/// deployment-specific predicates.

#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/units.h"
#include "core/candidate.h"

namespace autocomp::core {

/// \brief Predicate over observed candidates. Returning false drops the
/// candidate from the pipeline.
class CandidateFilter {
 public:
  virtual ~CandidateFilter() = default;
  virtual std::string name() const = 0;
  virtual bool ShouldKeep(const ObservedCandidate& candidate,
                          SimTime now) const = 0;
};

/// \brief Drops tables created within the last `min_age` (OpenHouse skips
/// recently created tables to avoid spending budget on short-lived data,
/// §4.1).
class RecentCreationFilter final : public CandidateFilter {
 public:
  explicit RecentCreationFilter(SimTime min_age) : min_age_(min_age) {}
  std::string name() const override { return "recent-creation"; }
  bool ShouldKeep(const ObservedCandidate& candidate,
                  SimTime now) const override {
    return now - candidate.stats.table_created_at >= min_age_;
  }

 private:
  SimTime min_age_;
};

/// \brief Drops candidates below a minimum total size ("skip tables that
/// are too small", §3.3).
class MinSizeFilter final : public CandidateFilter {
 public:
  explicit MinSizeFilter(int64_t min_total_bytes)
      : min_total_bytes_(min_total_bytes) {}
  std::string name() const override { return "min-size"; }
  bool ShouldKeep(const ObservedCandidate& candidate,
                  SimTime) const override {
    return candidate.stats.total_bytes >= min_total_bytes_;
  }

 private:
  int64_t min_total_bytes_;
};

/// \brief Drops candidates with fewer than `min_small_files` files below
/// the target size — there is nothing to gain from compacting them.
class MinSmallFilesFilter final : public CandidateFilter {
 public:
  explicit MinSmallFilesFilter(int64_t min_small_files)
      : min_small_files_(min_small_files) {}
  std::string name() const override { return "min-small-files"; }
  bool ShouldKeep(const ObservedCandidate& candidate,
                  SimTime) const override {
    return candidate.stats.small_file_count() >= min_small_files_;
  }

 private:
  int64_t min_small_files_;
};

/// \brief Drops candidates written within the last `quiesce_window` to
/// reduce the chance of a write-write conflict aborting the rewrite
/// ("verify whether a compaction candidate has undergone recent frequent
/// writes", §3.3).
class RecentWriteActivityFilter final : public CandidateFilter {
 public:
  explicit RecentWriteActivityFilter(SimTime quiesce_window)
      : quiesce_window_(quiesce_window) {}
  std::string name() const override { return "recent-write-activity"; }
  bool ShouldKeep(const ObservedCandidate& candidate,
                  SimTime now) const override {
    return now - candidate.stats.last_modified_at >= quiesce_window_;
  }

 private:
  SimTime quiesce_window_;
};

/// \brief Wraps an arbitrary deployment-specific predicate (NFR1).
class PredicateFilter final : public CandidateFilter {
 public:
  PredicateFilter(std::string name,
                  std::function<bool(const ObservedCandidate&, SimTime)> fn)
      : name_(std::move(name)), fn_(std::move(fn)) {}
  std::string name() const override { return name_; }
  bool ShouldKeep(const ObservedCandidate& candidate,
                  SimTime now) const override {
    return fn_(candidate, now);
  }

 private:
  std::string name_;
  std::function<bool(const ObservedCandidate&, SimTime)> fn_;
};

/// \brief Applies a filter chain in order; returns survivors (stable).
/// Takes the pool by value and moves survivors through — an empty filter
/// chain is a no-op pass-through (pass std::move to avoid the copy).
std::vector<ObservedCandidate> ApplyFilters(
    std::vector<ObservedCandidate> candidates,
    const std::vector<std::shared_ptr<const CandidateFilter>>& filters,
    SimTime now, int64_t* dropped = nullptr);

}  // namespace autocomp::core
