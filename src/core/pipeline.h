/// \file pipeline.h
/// \brief The AutoComp OODA pipeline: observe → orient → decide → act,
/// with optional filters between phases and a feedback loop (Figure 4).

#pragma once

#include <memory>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "common/clock.h"
#include "core/candidate.h"
#include "core/filters.h"
#include "core/observe.h"
#include "core/ranking.h"
#include "core/scheduler.h"
#include "core/traits.h"
#include "obs/trace.h"

namespace autocomp::core {

/// \brief Feedback record comparing the decide phase's estimates with the
/// act phase's measured outcome (feeds the §7 estimator-accuracy
/// analysis and the feedback loop of Figure 4).
struct FeedbackEntry {
  std::string candidate_id;
  double estimated_file_reduction = 0;
  double actual_file_reduction = 0;
  double estimated_gb_hours = 0;
  double actual_gb_hours = 0;
};

/// \brief Real (wall-clock) time spent in each OODA phase of one run —
/// profiling the control loop itself, so measured with the host clock,
/// not the simulated one.
struct PipelinePhaseTimings {
  double generate_ms = 0;
  double observe_ms = 0;
  double orient_ms = 0;
  double decide_ms = 0;
  double act_ms = 0;
  double total_ms() const {
    return generate_ms + observe_ms + orient_ms + decide_ms + act_ms;
  }
};

/// \brief Everything one pipeline run produced, per phase.
struct PipelineRunReport {
  SimTime started_at = 0;
  int64_t candidates_generated = 0;
  int64_t dropped_pre_orient = 0;
  int64_t dropped_post_orient = 0;
  /// Decide output (full ranking, before selection).
  std::vector<ScoredCandidate> ranked;
  /// The selected work list handed to the act phase.
  std::vector<ScoredCandidate> selected;
  /// Act output.
  std::vector<ScheduledCompaction> executed;
  /// Feedback loop output.
  std::vector<FeedbackEntry> feedback;
  /// Control-loop profiling: wall-clock per phase and the stats-cache
  /// traffic this run generated (0/0 for non-caching collectors).
  PipelinePhaseTimings timings;
  int64_t stats_cache_hits = 0;
  int64_t stats_cache_misses = 0;
  /// Incremental stats-index traffic this run generated (0/0 for
  /// non-indexed collectors). A fallback is a candidate the index could
  /// not serve at the pinned metadata version (rescan path taken).
  int64_t stats_index_hits = 0;
  int64_t stats_index_fallbacks = 0;

  int64_t committed_count() const;
  int64_t conflict_count() const;
  /// Net live-file reduction across committed units.
  int64_t files_reduced() const;
  int64_t bytes_rewritten() const;
  double actual_gb_hours() const;
};

/// \brief Composable OODA pipeline (NFR1: stages mix and match as long as
/// the data exchanged keeps the standard structure).
class AutoCompPipeline {
 public:
  struct Stages {
    std::shared_ptr<const CandidateGenerator> generator;
    std::shared_ptr<const StatsCollector> collector;
    /// Filters applied between observe and orient.
    std::vector<std::shared_ptr<const CandidateFilter>> pre_orient_filters;
    std::vector<std::shared_ptr<const Trait>> traits;
    /// Filters applied between orient and decide.
    std::vector<std::shared_ptr<const CandidateFilter>> post_orient_filters;
    std::shared_ptr<const Ranker> ranker;
    std::shared_ptr<const Selector> selector;
    std::shared_ptr<CompactionScheduler> scheduler;
    /// When non-null, generation, stats collection, and trait evaluation
    /// fan out across this pool; results stay bit-identical to the
    /// sequential path (NFR2). Not owned; must outlive the pipeline.
    ThreadPool* pool = nullptr;
    /// When non-null, every run records an "ooda.run" envelope span with
    /// nested phase spans (kPhases) and per-candidate ranking / winner
    /// decision instants (kDecisions). Not owned; must outlive the
    /// pipeline. Payloads are pure functions of simulated state — the
    /// wall-clock phase timings stay in PipelinePhaseTimings only.
    obs::TraceRecorder* trace = nullptr;
    /// Canonical PolicySpec string of the policy these stages realize,
    /// when it differs from the default (core/policy.h). Presets leave
    /// this empty for the default policy so traces — including the
    /// pinned golden trace — are byte-identical to the
    /// pre-decomposition pipeline; a non-empty label adds one
    /// "decide.policy" instant per decide phase at kDecisions.
    std::string policy_label;
  };

  AutoCompPipeline(Stages stages, catalog::Catalog* catalog,
                   const Clock* clock);

  /// Runs one full OODA cycle at the current time. Dry runs (scheduler ==
  /// nullptr) stop after decide and leave `executed` empty.
  Result<PipelineRunReport> RunOnce();

  /// Runs observe+orient+decide for an externally supplied candidate pool
  /// (used by the optimize-after-write hook, which already knows which
  /// table changed).
  Result<PipelineRunReport> RunForCandidates(std::vector<Candidate> pool);

  const Stages& stages() const { return stages_; }

 private:
  Result<PipelineRunReport> Run(std::vector<Candidate> pool,
                                double generate_ms);

  Stages stages_;
  catalog::Catalog* catalog_;
  const Clock* clock_;
};

}  // namespace autocomp::core
