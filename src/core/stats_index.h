/// \file stats_index.h
/// \brief Incrementally maintained observation aggregates: O(delta) stats
/// per OODA cycle instead of O(fleet live files).
///
/// The observe phase standardizes per-table/per-partition statistics for
/// every candidate each cycle (§4.1); at fleet scale that rescan is the
/// dominant cost even with the snapshot-keyed cache, because every cache
/// miss still walks the table's manifest tree. The LSM design-space trade
/// (Sarkar et al.) applies: amortize the bookkeeping into the write path.
/// IncrementalStatsIndex subscribes to Catalog commit listeners and keeps,
/// per table and per partition:
///
///  * exact sorted live file-size vectors (whole table, per partition,
///    and the "fresh" subset added after the last replace snapshot),
///  * live byte totals, MoR delete-file counts, unclustered bytes,
///  * a log2 file-size histogram (64 buckets of counts and bytes), so any
///    small_file_threshold / target size query is answered from buckets
///    plus one boundary refinement, never a rescan,
///  * the last replace (compaction) snapshot id — the snapshot-scope
///    generator's watermark.
///
/// Commits carrying a lst::CommitDelta apply O(delta) updates under
/// sharded locks; delta-less commits (snapshot expiry, rollback) and
/// out-of-order listener delivery degrade to a full single-table rebuild
/// from the event's metadata. Entries build lazily on first query.
///
/// Hot-path representation: tables and partitions are keyed by interned
/// ids (common::StringInterner), and rebuilds stream the manifests' SoA
/// columns (sizes, record counts, flags, partition ids) instead of
/// per-file DataFile structs — a rebuild never touches a path string.
///
/// NFR2 (determinism): every query pins a metadata version; the index
/// answers only when its entry matches that exact version, otherwise the
/// caller falls back to the rescan path. Size vectors are kept in the
/// canonical sorted-ascending order StatsCollector produces, so indexed
/// stats are bit-identical to a rescan — including float-summation order
/// in the entropy traits. IndexedStatsCollector's cross-check mode and
/// the randomized property test enforce this.

#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "common/interner.h"
#include "core/candidate.h"
#include "core/observe.h"

namespace autocomp::core {

/// \brief Sharded, commit-listener-maintained fleet statistics index.
///
/// Thread-safe: state is partitioned into shards keyed by table name;
/// each shard has its own mutex, so commits and queries on different
/// tables proceed in parallel. All methods are const so read-side
/// consumers (generators, collectors) can share one instance.
class IncrementalStatsIndex {
 public:
  explicit IncrementalStatsIndex(catalog::Catalog* catalog);
  ~IncrementalStatsIndex();

  IncrementalStatsIndex(const IncrementalStatsIndex&) = delete;
  IncrementalStatsIndex& operator=(const IncrementalStatsIndex&) = delete;

  /// \name Queries
  /// All queries take the caller's pinned metadata version. They return
  /// nullopt when the index cannot serve that exact version (entry newer
  /// than the pinned metadata, or an unserved snapshot-scope watermark);
  /// the caller must then fall back to scanning `meta`. When the entry is
  /// missing or older, the index (re)builds it from `meta` first.
  /// @{

  /// Metadata-derived candidate stats (canonical sorted order). Volatile
  /// fields (target size, quota, access telemetry) are NOT filled; the
  /// collector layers them on via RefreshVolatile.
  std::optional<CandidateStats> TryCollect(
      const Candidate& candidate, const lst::TableMetadataPtr& meta) const;

  /// Live partition keys, lexicographically sorted (same order as
  /// TableMetadata::LivePartitions).
  std::optional<std::vector<std::string>> LivePartitions(
      const std::string& table, const lst::TableMetadataPtr& meta) const;

  /// Most recent replace (compaction) snapshot id; 0 when none.
  std::optional<int64_t> LastReplaceSnapshotId(
      const std::string& table, const lst::TableMetadataPtr& meta) const;

  /// Live files strictly smaller than `threshold_bytes`, answered from
  /// the log2 histogram plus a boundary-bucket refinement.
  struct SmallFileSummary {
    int64_t count = 0;
    int64_t bytes = 0;
  };
  std::optional<SmallFileSummary> SmallFilesBelow(
      const std::string& table, const lst::TableMetadataPtr& meta,
      int64_t threshold_bytes) const;
  /// @}

  /// Aggregates over every table currently materialized in the index.
  struct Totals {
    int64_t tables = 0;
    int64_t live_files = 0;
    int64_t live_bytes = 0;
  };
  Totals FleetTotals() const;

  /// \name Maintenance telemetry
  /// @{
  int64_t deltas_applied() const { return deltas_applied_.load(); }
  int64_t rebuilds() const { return rebuilds_.load(); }
  int64_t lazy_builds() const { return lazy_builds_.load(); }
  int64_t stale_events() const { return stale_events_.load(); }
  /// @}

  static constexpr int kShardCount = 16;
  static constexpr int kHistogramBuckets = 64;

 private:
  /// Sorted-size aggregate for one scope (whole table, one partition, or
  /// the fresh-files subset).
  struct Aggregate {
    std::vector<int64_t> sizes;  // canonical: sorted ascending
    int64_t total_bytes = 0;
    int64_t delete_file_count = 0;
    int64_t unclustered_bytes = 0;

    bool empty() const { return sizes.empty(); }
    void Add(const lst::DataFile& f);
    /// Removes one occurrence of the file; false when its size is absent
    /// (aggregate out of sync — caller escalates to a rebuild).
    bool Remove(const lst::DataFile& f);
  };

  /// Table-level + per-partition aggregates over one file population.
  /// Partitions are keyed by ids interned in the owning TableEntry —
  /// strings appear only at the reporting edge (TryCollect /
  /// LivePartitions re-establish name-lexicographic order there).
  struct ScopeView {
    Aggregate total;
    std::map<common::PartitionId, Aggregate> partitions;

    void Add(common::PartitionId pid, const lst::DataFile& f);
    bool Remove(common::PartitionId pid, const lst::DataFile& f);
    void Clear();
  };

  struct TableEntry {
    /// Metadata version the aggregates describe; the staleness key.
    int64_t version = -1;
    int64_t last_replace_snapshot_id = 0;
    /// Partition-key arena for this table's ScopeViews. Never reset:
    /// ids of vanished partitions simply go unused.
    common::StringInterner partition_names;
    /// All live files.
    ScopeView live;
    /// Live files with added_snapshot_id > last_replace_snapshot_id
    /// (the snapshot-scope candidate population).
    ScopeView fresh;
    /// log2 histogram over live file sizes: bucket b holds files with
    /// bit_width(size) - 1 == b, i.e. sizes in [2^b, 2^(b+1)).
    std::array<int64_t, kHistogramBuckets> histogram_count{};
    std::array<int64_t, kHistogramBuckets> histogram_bytes{};
  };

  struct Shard {
    mutable std::mutex mu;
    std::map<common::TableId, TableEntry> tables;
  };

  Shard& ShardFor(common::TableId table) const;
  static int SizeBucket(int64_t size_bytes);

  /// Repopulates `entry` from a full walk of `meta`'s live files.
  void RebuildLocked(TableEntry* entry, const lst::TableMetadata& meta) const;
  /// Applies one commit's delta on top of `entry` (which must be at
  /// exactly the parent version). Falls back to RebuildLocked if the
  /// delta does not reconcile with the aggregates.
  void ApplyDeltaLocked(TableEntry* entry, const lst::TableMetadata& meta,
                        const lst::CommitDelta& delta) const;

  /// Finds (building or refreshing as needed) the entry for `table` and
  /// returns it when it describes exactly `meta`'s version; nullptr when
  /// the entry is newer than the pinned metadata (caller falls back).
  /// Must be called with the shard lock held.
  TableEntry* EnsureLocked(Shard& shard, common::TableId table,
                           const lst::TableMetadata& meta) const;

  /// Commit-listener entry point.
  void OnCommit(const catalog::CommitEvent& event) const;

  catalog::Catalog* catalog_;
  int64_t listener_id_ = 0;
  /// Table-name arena: shard selection and entry keys are dense int ids;
  /// names cross this boundary only on the listener/query edges.
  mutable common::StringInterner table_ids_;
  mutable std::array<Shard, kShardCount> shards_;

  mutable std::atomic<int64_t> deltas_applied_{0};
  mutable std::atomic<int64_t> rebuilds_{0};
  mutable std::atomic<int64_t> lazy_builds_{0};
  mutable std::atomic<int64_t> stale_events_{0};
};

/// \brief StatsCollector that answers from the IncrementalStatsIndex and
/// falls back to the rescan path when the index cannot serve the pinned
/// metadata version. Output is bit-identical to StatsCollector::Collect
/// (NFR2); `cross_check` verifies that on every hit (debug/test mode) and
/// fails with Internal on divergence.
class IndexedStatsCollector final : public StatsCollector {
 public:
  IndexedStatsCollector(catalog::Catalog* catalog,
                        const catalog::ControlPlane* control_plane,
                        const Clock* clock,
                        std::shared_ptr<const IncrementalStatsIndex> index,
                        bool cross_check = false);

  Result<CandidateStats> Collect(const Candidate& candidate) const override;

  int64_t index_hits() const override { return index_hits_.load(); }
  int64_t index_fallbacks() const override { return index_fallbacks_.load(); }

  const IncrementalStatsIndex* index() const { return index_.get(); }

 private:
  std::shared_ptr<const IncrementalStatsIndex> index_;
  const bool cross_check_;
  mutable std::atomic<int64_t> index_hits_{0};
  mutable std::atomic<int64_t> index_fallbacks_{0};
};

/// \brief Field-by-field stats equality (including the custom property
/// bag); the cross-check predicate, shared with tests. On mismatch,
/// `why` (when non-null) receives a description of the first differing
/// field.
bool StatsEquivalent(const CandidateStats& a, const CandidateStats& b,
                     std::string* why = nullptr);

}  // namespace autocomp::core
