/// \file scheduler.h
/// \brief Act phase: executing the selected compaction plan (§4.4).
///
/// Scheduling must respect LST conflict semantics: with Iceberg v1.2.0
/// even rewrites of distinct partitions of one table conflict, so the
/// evaluation runs "parallel on the table level but sequential on the
/// partition level" (§6). Both policies are provided, plus an off-peak
/// deferral decorator.

#pragma once

#include <memory>
#include <string>
#include <vector>

#include "catalog/control_plane.h"
#include "common/clock.h"
#include "core/candidate.h"
#include "engine/compaction_runner.h"

namespace autocomp::core {

/// \brief One executed work unit.
struct ScheduledCompaction {
  Candidate candidate;
  engine::CompactionResult result;
};

/// \brief Common scheduler knobs.
struct SchedulerOptions {
  lst::ValidationMode validation_mode = lst::ValidationMode::kStrictTableLevel;
  /// Run snapshot retention for a table right after a committed rewrite so
  /// replaced files leave the storage layer (OpenHouse pairs compaction
  /// with its retention data service).
  bool run_retention_after_commit = true;
  /// Retention window used by that post-commit sweep (0 = expire all
  /// superseded snapshots immediately, reaping the rewritten files).
  SimTime post_commit_retention = 0;
  /// Override the per-table target size (0 = use table policy/property).
  int64_t target_file_size_bytes = 0;
  /// Data-movement axis for every request this scheduler builds
  /// (core/policy.h). A non-empty TablePolicy::compaction_policy
  /// overrides it per table.
  engine::RewriteMovement movement = engine::RewriteMovement::kPartial;
};

/// \brief Executes a ranked, selected plan.
class CompactionScheduler {
 public:
  virtual ~CompactionScheduler() = default;
  virtual std::string name() const = 0;
  /// Runs the plan starting at `now`; returns per-unit outcomes in
  /// execution order. Individual conflicts/failures are reported in the
  /// results, not raised.
  virtual Result<std::vector<ScheduledCompaction>> Execute(
      const std::vector<ScoredCandidate>& plan, SimTime now) = 0;
};

/// \brief Strictly sequential execution: each work unit starts when the
/// previous one ends. Safest against intra-table conflicts; used when
/// compaction shares the user cluster (§4.4).
class SerialScheduler final : public CompactionScheduler {
 public:
  SerialScheduler(engine::CompactionRunner* runner,
                  catalog::ControlPlane* control_plane,
                  SchedulerOptions options = {});

  std::string name() const override { return "serial"; }
  Result<std::vector<ScheduledCompaction>> Execute(
      const std::vector<ScoredCandidate>& plan, SimTime now) override;

 private:
  engine::CompactionRunner* runner_;
  catalog::ControlPlane* control_plane_;
  SchedulerOptions options_;
};

/// \brief Parallel across tables, sequential within a table: work units
/// for different tables all start at `now` (the cluster's slot model
/// arbitrates), while units of the same table are chained to avoid the
/// Iceberg v1.2.0 disjoint-partition rewrite conflict (§4.4, §6).
class TableParallelScheduler final : public CompactionScheduler {
 public:
  TableParallelScheduler(engine::CompactionRunner* runner,
                         catalog::ControlPlane* control_plane,
                         SchedulerOptions options = {});

  std::string name() const override { return "table-parallel"; }
  Result<std::vector<ScheduledCompaction>> Execute(
      const std::vector<ScoredCandidate>& plan, SimTime now) override;

 private:
  engine::CompactionRunner* runner_;
  catalog::ControlPlane* control_plane_;
  SchedulerOptions options_;
};

/// \brief Decorator deferring execution to an off-peak window ("deferred
/// to off-peak hours if usage patterns are predictable", §4.4).
class OffPeakScheduler final : public CompactionScheduler {
 public:
  /// Window in hours-of-day [start, end); wraps midnight when start > end.
  OffPeakScheduler(std::unique_ptr<CompactionScheduler> inner,
                   int window_start_hour, int window_end_hour);

  std::string name() const override { return "off-peak"; }
  Result<std::vector<ScheduledCompaction>> Execute(
      const std::vector<ScoredCandidate>& plan, SimTime now) override;

  /// First time >= now inside the window (exposed for tests).
  SimTime NextWindowStart(SimTime now) const;

 private:
  std::unique_ptr<CompactionScheduler> inner_;
  int window_start_hour_;
  int window_end_hour_;
};

/// \brief Builds the engine request for a candidate (shared by all
/// schedulers).
engine::CompactionRequest RequestFor(const Candidate& candidate,
                                     const SchedulerOptions& options,
                                     const catalog::ControlPlane* control_plane);

}  // namespace autocomp::core
