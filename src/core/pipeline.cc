#include "core/pipeline.h"

#include <cassert>
#include <chrono>
#include <cstdio>
#include <utility>

namespace autocomp::core {

namespace {

using WallClock = std::chrono::steady_clock;

double MsSince(WallClock::time_point start) {
  return std::chrono::duration<double, std::milli>(WallClock::now() - start)
      .count();
}

/// Shortest-round-trip double formatting for trace details (deterministic
/// across runs; std::to_string's fixed-6 would alias close scores).
std::string FmtDouble(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace

int64_t PipelineRunReport::committed_count() const {
  int64_t n = 0;
  for (const ScheduledCompaction& unit : executed) {
    if (unit.result.committed) ++n;
  }
  return n;
}

int64_t PipelineRunReport::conflict_count() const {
  int64_t n = 0;
  for (const ScheduledCompaction& unit : executed) {
    if (unit.result.conflict) ++n;
  }
  return n;
}

int64_t PipelineRunReport::files_reduced() const {
  int64_t n = 0;
  for (const ScheduledCompaction& unit : executed) {
    if (unit.result.committed) {
      n += unit.result.files_rewritten - unit.result.files_produced;
    }
  }
  return n;
}

int64_t PipelineRunReport::bytes_rewritten() const {
  int64_t n = 0;
  for (const ScheduledCompaction& unit : executed) {
    if (unit.result.committed) n += unit.result.bytes_rewritten;
  }
  return n;
}

double PipelineRunReport::actual_gb_hours() const {
  double n = 0;
  for (const ScheduledCompaction& unit : executed) {
    if (unit.result.attempted) n += unit.result.gb_hours;
  }
  return n;
}

AutoCompPipeline::AutoCompPipeline(Stages stages, catalog::Catalog* catalog,
                                   const Clock* clock)
    : stages_(std::move(stages)), catalog_(catalog), clock_(clock) {
  assert(catalog_ != nullptr && clock_ != nullptr);
  assert(stages_.generator != nullptr);
  assert(stages_.collector != nullptr);
  assert(stages_.ranker != nullptr);
  assert(stages_.selector != nullptr);
}

Result<PipelineRunReport> AutoCompPipeline::RunOnce() {
  const WallClock::time_point start = WallClock::now();
  obs::TraceRecorder* trace = stages_.trace;
  uint64_t gen_span = 0;
  if (trace != nullptr && trace->enabled(obs::TraceLevel::kPhases)) {
    gen_span = trace->BeginSpan(obs::TraceLevel::kPhases,
                                obs::SpanCategory::kPhase, "phase.generate",
                                clock_->Now());
  }
  AUTOCOMP_ASSIGN_OR_RETURN(
      std::vector<Candidate> pool,
      stages_.generator->Generate(catalog_, stages_.pool));
  if (trace != nullptr) {
    trace->EndSpan(gen_span, clock_->Now(),
                   static_cast<double>(pool.size()),
                   "candidates=" + std::to_string(pool.size()));
  }
  return Run(std::move(pool), MsSince(start));
}

Result<PipelineRunReport> AutoCompPipeline::RunForCandidates(
    std::vector<Candidate> pool) {
  return Run(std::move(pool), 0);
}

Result<PipelineRunReport> AutoCompPipeline::Run(std::vector<Candidate> pool,
                                                double generate_ms) {
  PipelineRunReport report;
  report.started_at = clock_->Now();
  report.candidates_generated = static_cast<int64_t>(pool.size());
  report.timings.generate_ms = generate_ms;

  obs::TraceRecorder* trace = stages_.trace;
  const bool trace_phases =
      trace != nullptr && trace->enabled(obs::TraceLevel::kPhases);
  uint64_t run_span = 0;
  if (trace_phases) {
    run_span = trace->BeginSpan(
        obs::TraceLevel::kPhases, obs::SpanCategory::kPhase, "ooda.run",
        report.started_at,
        "candidates=" + std::to_string(report.candidates_generated));
  }

  // --- Observe: collect the standardized statistics.
  const int64_t hits_before = stages_.collector->hits();
  const int64_t misses_before = stages_.collector->misses();
  const int64_t index_hits_before = stages_.collector->index_hits();
  const int64_t index_fallbacks_before = stages_.collector->index_fallbacks();
  WallClock::time_point phase_start = WallClock::now();
  uint64_t phase_span = 0;
  if (trace_phases) {
    phase_span = trace->BeginSpan(obs::TraceLevel::kPhases,
                                  obs::SpanCategory::kPhase, "phase.observe",
                                  report.started_at);
  }
  AUTOCOMP_ASSIGN_OR_RETURN(
      std::vector<ObservedCandidate> observed,
      stages_.collector->CollectAll(pool, stages_.pool));
  report.timings.observe_ms = MsSince(phase_start);
  report.stats_cache_hits = stages_.collector->hits() - hits_before;
  report.stats_cache_misses = stages_.collector->misses() - misses_before;
  report.stats_index_hits = stages_.collector->index_hits() - index_hits_before;
  report.stats_index_fallbacks =
      stages_.collector->index_fallbacks() - index_fallbacks_before;
  if (trace != nullptr) {
    trace->EndSpan(phase_span, report.started_at,
                   static_cast<double>(observed.size()),
                   "observed=" + std::to_string(observed.size()) +
                       ";cache_hits=" +
                       std::to_string(report.stats_cache_hits) +
                       ";cache_misses=" +
                       std::to_string(report.stats_cache_misses));
  }

  // --- Optional filters between observe and orient.
  observed = ApplyFilters(std::move(observed), stages_.pre_orient_filters,
                          report.started_at, &report.dropped_pre_orient);

  // --- Orient: compute traits (consumes the observed pool).
  phase_start = WallClock::now();
  if (trace_phases) {
    phase_span = trace->BeginSpan(obs::TraceLevel::kPhases,
                                  obs::SpanCategory::kPhase, "phase.orient",
                                  report.started_at);
  }
  std::vector<TraitedCandidate> traited =
      ComputeTraits(std::move(observed), stages_.traits, stages_.pool);

  // --- Optional filters between orient and decide.
  if (!stages_.post_orient_filters.empty()) {
    std::vector<TraitedCandidate> kept;
    kept.reserve(traited.size());
    for (TraitedCandidate& tc : traited) {
      bool keep = true;
      for (const auto& filter : stages_.post_orient_filters) {
        if (!filter->ShouldKeep(tc.observed, report.started_at)) {
          keep = false;
          break;
        }
      }
      if (keep) {
        kept.push_back(std::move(tc));
      } else {
        ++report.dropped_post_orient;
      }
    }
    traited = std::move(kept);
  }
  report.timings.orient_ms = MsSince(phase_start);
  if (trace != nullptr) {
    trace->EndSpan(phase_span, report.started_at,
                   static_cast<double>(traited.size()),
                   "traited=" + std::to_string(traited.size()) +
                       ";dropped_post_orient=" +
                       std::to_string(report.dropped_post_orient));
  }

  // --- Decide: rank and select.
  phase_start = WallClock::now();
  if (trace_phases) {
    phase_span = trace->BeginSpan(obs::TraceLevel::kPhases,
                                  obs::SpanCategory::kPhase, "phase.decide",
                                  report.started_at);
  }
  report.ranked = stages_.ranker->Rank(std::move(traited));
  report.selected = stages_.selector->Select(report.ranked);
  report.timings.decide_ms = MsSince(phase_start);
  if (trace != nullptr && trace->enabled(obs::TraceLevel::kDecisions)) {
    // Non-default policies stamp each decide phase with their spec (the
    // per-policy decide span of the sweep bench). Gated on the label so
    // the default policy's trace — and the pinned golden digest — stay
    // byte-identical to the pre-decomposition pipeline.
    if (!stages_.policy_label.empty()) {
      trace->Instant(obs::TraceLevel::kDecisions, obs::SpanCategory::kDecision,
                     "decide.policy", report.started_at,
                     "spec=" + stages_.policy_label,
                     static_cast<double>(report.ranked.size()));
    }
    // The full ranking, in rank order, then every winner with the trait
    // vector that scored it — the decision-audit tests replay these
    // against the report's own ranked/selected lists.
    for (size_t i = 0; i < report.ranked.size(); ++i) {
      const ScoredCandidate& sc = report.ranked[i];
      trace->Instant(obs::TraceLevel::kDecisions, obs::SpanCategory::kDecision,
                     "decide.ranked", report.started_at,
                     "id=" + sc.candidate().id() +
                         ";rank=" + std::to_string(i),
                     sc.score);
    }
    for (const ScoredCandidate& sc : report.selected) {
      std::string detail = "id=" + sc.candidate().id();
      for (const auto& [trait, value] : sc.traited.traits) {
        detail += ";" + trait + "=" + FmtDouble(value);
      }
      trace->Instant(obs::TraceLevel::kDecisions, obs::SpanCategory::kDecision,
                     "decide.winner", report.started_at, std::move(detail),
                     sc.score);
    }
  }
  if (trace != nullptr) {
    trace->EndSpan(phase_span, report.started_at,
                   static_cast<double>(report.ranked.size()),
                   "ranked=" + std::to_string(report.ranked.size()) +
                       ";selected=" + std::to_string(report.selected.size()));
  }

  // --- Act.
  phase_start = WallClock::now();
  if (trace_phases) {
    phase_span = trace->BeginSpan(obs::TraceLevel::kPhases,
                                  obs::SpanCategory::kPhase, "phase.act",
                                  report.started_at);
  }
  if (stages_.scheduler != nullptr && !report.selected.empty()) {
    AUTOCOMP_ASSIGN_OR_RETURN(
        report.executed,
        stages_.scheduler->Execute(report.selected, report.started_at));
  }
  report.timings.act_ms = MsSince(phase_start);
  if (trace != nullptr) {
    trace->EndSpan(phase_span, report.started_at,
                   static_cast<double>(report.executed.size()),
                   "executed=" + std::to_string(report.executed.size()));
  }

  // --- Feedback loop: estimates vs. measured outcome per executed unit.
  for (const ScheduledCompaction& unit : report.executed) {
    FeedbackEntry entry;
    entry.candidate_id = unit.candidate.id();
    for (const ScoredCandidate& sc : report.selected) {
      if (sc.candidate() == unit.candidate) {
        const auto& traits = sc.traited.traits;
        const auto reduction = traits.find("file_count_reduction");
        if (reduction != traits.end()) {
          entry.estimated_file_reduction = reduction->second;
        }
        const auto cost = traits.find("compute_cost_gbhr");
        if (cost != traits.end()) entry.estimated_gb_hours = cost->second;
        break;
      }
    }
    if (unit.result.committed) {
      entry.actual_file_reduction = static_cast<double>(
          unit.result.files_rewritten - unit.result.files_produced);
    }
    entry.actual_gb_hours = unit.result.gb_hours;
    report.feedback.push_back(std::move(entry));
  }
  if (trace != nullptr) {
    trace->EndSpan(run_span, report.started_at,
                   static_cast<double>(report.committed_count()),
                   "ranked=" + std::to_string(report.ranked.size()) +
                       ";selected=" + std::to_string(report.selected.size()) +
                       ";committed=" + std::to_string(report.committed_count()));
  }
  return report;
}

}  // namespace autocomp::core
