/// \file advisor.h
/// \brief Write-configuration advisor (§8, "Tuning Write and Compaction
/// Mechanisms and Policies").
///
/// The paper observes that engineers rarely control engine configuration
/// across all workloads, and that control planes "offer a valuable
/// opportunity to analyze and surface such issues, with actionable
/// insights for stakeholders". The advisor inspects each table's commit
/// history and telemetry and produces the recommendations an operator
/// would act on: untuned writers, tiny trickle appends, MoR delta
/// backlogs, and clustering opportunities on hot selective tables.

#pragma once

#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "common/units.h"

namespace autocomp::core {

/// \brief Category of a recommendation.
enum class AdviceKind : int {
  /// Commits add many files far below the target size: the writer needs
  /// output coalescing / a larger shuffle-partition size.
  kUntunedWriter,
  /// Frequent commits each adding a handful of tiny files: trickle
  /// ingestion without a rollup; suggest post-write compaction hooks.
  kTrickleAppends,
  /// Merge-on-read delta files accumulating: scans pay a merge penalty
  /// per delta; schedule fold-in compaction.
  kMorDeltaBacklog,
  /// Frequently read table stored unclustered: a clustering rewrite
  /// would let selective scans skip row groups.
  kClusteringOpportunity,
};

const char* AdviceKindName(AdviceKind kind);

/// \brief One actionable recommendation.
struct WriteAdvice {
  std::string table;
  AdviceKind kind;
  /// Human-readable, self-contained recommendation text.
  std::string message;
  /// Larger = more urgent; used to order the report.
  double severity = 0;
};

/// \brief Advisor thresholds.
struct AdvisorOptions {
  /// Mean added-file size below which a writer counts as untuned.
  int64_t small_write_bytes = 32 * kMiB;
  /// Commits inspected per table (most recent first).
  int history_window = 10;
  /// Minimum commits before a writer pattern is judged.
  int min_commits = 3;
  /// Delta files above which a MoR backlog is flagged.
  int64_t mor_backlog_threshold = 8;
  /// Reads above which a table counts as hot for clustering advice.
  int64_t hot_read_threshold = 20;
  /// Unclustered bytes above which clustering is worth its 1.6x rewrite.
  int64_t clustering_min_bytes = 1 * kGiB;
};

/// \brief Analyzes the fleet and returns recommendations, most severe
/// first. Deterministic for a given catalog state.
class WriteConfigAdvisor {
 public:
  explicit WriteConfigAdvisor(AdvisorOptions options = {})
      : options_(options) {}

  Result<std::vector<WriteAdvice>> Analyze(catalog::Catalog* catalog) const;

  /// Single-table variant.
  Result<std::vector<WriteAdvice>> AnalyzeTable(
      catalog::Catalog* catalog, const std::string& qualified_name) const;

 private:
  AdvisorOptions options_;
};

}  // namespace autocomp::core
