#include "core/merge_policy.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <map>
#include <numeric>

#include "common/units.h"

namespace autocomp::core {

size_t MergeAllPolicy::MergeCount(const std::vector<int64_t>& stack,
                                  size_t) const {
  return stack.size();
}

size_t LazyMergePolicy::MergeCount(const std::vector<int64_t>&,
                                   size_t) const {
  return 2;
}

size_t GeometricMergePolicy::MergeCount(const std::vector<int64_t>& stack,
                                        size_t) const {
  assert(stack.size() >= 2);
  size_t count = 2;
  int64_t merged = stack[stack.size() - 1] + stack[stack.size() - 2];
  while (count < stack.size()) {
    const int64_t older = stack[stack.size() - 1 - count];
    if (static_cast<double>(older) > ratio_ * static_cast<double>(merged)) {
      break;
    }
    merged += older;
    ++count;
  }
  return count;
}

int64_t SimulateOnlineMergeCost(const std::vector<int64_t>& arrivals,
                                size_t k, const OnlineMergePolicy& policy) {
  assert(k >= 1);
  std::vector<int64_t> stack;
  int64_t cost = 0;
  for (int64_t size : arrivals) {
    stack.push_back(size);
    while (stack.size() > k) {
      size_t merge = policy.MergeCount(stack, k);
      merge = std::max<size_t>(2, std::min(merge, stack.size()));
      int64_t merged = 0;
      for (size_t i = stack.size() - merge; i < stack.size(); ++i) {
        merged += stack[i];
      }
      stack.resize(stack.size() - merge);
      stack.push_back(merged);
      cost += merged;
    }
  }
  return cost;
}

namespace {

/// Memoized minimum remaining cost from (next arrival index, stack).
/// States are keyed by the stack contents — two schedules reaching the
/// same stack at the same index have identical futures.
struct OracleMemo {
  const std::vector<int64_t>* arrivals;
  size_t k;
  std::map<std::pair<size_t, std::vector<int64_t>>, int64_t> memo;

  int64_t Solve(size_t index, std::vector<int64_t> stack) {
    if (index == arrivals->size()) {
      // Trailing merges only add cost; an in-budget stack is done.
      return stack.size() <= k ? 0 : ForcedMergeMin(index, std::move(stack));
    }
    if (stack.size() > k) return ForcedMergeMin(index, std::move(stack));
    const auto key = std::make_pair(index, stack);
    auto it = memo.find(key);
    if (it != memo.end()) return it->second;
    // Option 1: take the next arrival with the stack as-is.
    std::vector<int64_t> next = stack;
    next.push_back((*arrivals)[index]);
    int64_t best = Solve(index + 1, std::move(next));
    // Option 2: a voluntary merge of any newest suffix first.
    for (size_t merge = 2; merge <= stack.size(); ++merge) {
      best = std::min(best, MergeThenSolve(index, stack, merge));
    }
    memo.emplace(key, best);
    return best;
  }

  int64_t MergeThenSolve(size_t index, const std::vector<int64_t>& stack,
                         size_t merge) {
    int64_t merged = 0;
    for (size_t i = stack.size() - merge; i < stack.size(); ++i) {
      merged += stack[i];
    }
    std::vector<int64_t> next(stack.begin(), stack.end() - merge);
    next.push_back(merged);
    return merged + Solve(index, std::move(next));
  }

  /// Over-budget stack: some merge is mandatory before anything else.
  int64_t ForcedMergeMin(size_t index, std::vector<int64_t> stack) {
    int64_t best = std::numeric_limits<int64_t>::max();
    for (size_t merge = 2; merge <= stack.size(); ++merge) {
      best = std::min(best, MergeThenSolve(index, stack, merge));
    }
    return best;
  }
};

}  // namespace

int64_t OfflineOptimalMergeCost(const std::vector<int64_t>& arrivals,
                                size_t k) {
  assert(k >= 1);
  OracleMemo oracle{&arrivals, k, {}};
  return oracle.Solve(0, {});
}

MergeCompetitiveRatio CompetitiveRatioFor(
    const std::vector<int64_t>& arrivals, size_t k,
    const OnlineMergePolicy& policy) {
  MergeCompetitiveRatio out;
  out.online_cost = SimulateOnlineMergeCost(arrivals, k, policy);
  out.offline_cost = OfflineOptimalMergeCost(arrivals, k);
  out.ratio = out.offline_cost > 0 ? static_cast<double>(out.online_cost) /
                                         static_cast<double>(out.offline_cost)
                                   : 1.0;
  return out;
}

std::vector<std::shared_ptr<const OnlineMergePolicy>> BuiltinMergePolicies() {
  return {std::make_shared<MergeAllPolicy>(),
          std::make_shared<LazyMergePolicy>(),
          std::make_shared<GeometricMergePolicy>()};
}

double MergePressureScore(const std::vector<int64_t>& file_sizes, size_t k) {
  if (k < 1 || file_sizes.size() <= k) return 0;
  // Sizes ascending: the smallest files stand in for the newest runs
  // (fresh writes are the small ones), so the planned merge is the
  // cheap suffix the geometric policy would fold first.
  std::vector<int64_t> stack = file_sizes;
  std::sort(stack.begin(), stack.end(), std::greater<int64_t>());
  const GeometricMergePolicy policy;
  const size_t merge =
      std::max<size_t>(2, std::min(policy.MergeCount(stack, k), stack.size()));
  int64_t merged_bytes = 0;
  for (size_t i = stack.size() - merge; i < stack.size(); ++i) {
    merged_bytes += stack[i];
  }
  if (merged_bytes <= 0) return 0;
  return static_cast<double>(merge - 1) * static_cast<double>(kGiB) /
         static_cast<double>(merged_bytes);
}

}  // namespace autocomp::core
