#include "core/ranking.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.h"
#include "core/merge_policy.h"

namespace autocomp::core {

namespace {

/// Deterministic descending-score ordering with id tie-break (NFR2).
void SortByScore(std::vector<ScoredCandidate>* candidates) {
  std::sort(candidates->begin(), candidates->end(),
            [](const ScoredCandidate& a, const ScoredCandidate& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.candidate().id() < b.candidate().id();
            });
}

double TraitOrZero(const TraitedCandidate& c, const std::string& name) {
  const auto it = c.traits.find(name);
  return it == c.traits.end() ? 0.0 : it->second;
}

}  // namespace

MoopRanker::MoopRanker(std::vector<Objective> objectives)
    : objectives_(std::move(objectives)) {
  double total = 0;
  for (const Objective& o : objectives_) total += o.weight;
  if (std::abs(total - 1.0) > 1e-6) {
    LOG_WARN << "MOOP weights sum to " << total << ", expected 1.0";
  }
}

MoopRanker MoopRanker::PaperDefault() {
  return MoopRanker({{"file_count_reduction", 0.7, /*is_cost=*/false},
                     {"compute_cost_gbhr", 0.3, /*is_cost=*/true}});
}

std::vector<ScoredCandidate> MoopRanker::Rank(
    std::vector<TraitedCandidate> candidates) const {
  // Min-max normalization per objective across the pool (§4.3).
  struct Range {
    double min = std::numeric_limits<double>::infinity();
    double max = -std::numeric_limits<double>::infinity();
  };
  // Per-objective range, held alongside the objective so the scoring
  // loop below does no map lookups per candidate.
  std::vector<Range> ranges(objectives_.size());
  for (size_t i = 0; i < objectives_.size(); ++i) {
    Range& r = ranges[i];
    for (const TraitedCandidate& c : candidates) {
      const double v = TraitOrZero(c, objectives_[i].trait);
      r.min = std::min(r.min, v);
      r.max = std::max(r.max, v);
    }
  }

  std::vector<ScoredCandidate> out;
  out.reserve(candidates.size());
  for (TraitedCandidate& c : candidates) {
    double score = 0;
    for (size_t i = 0; i < objectives_.size(); ++i) {
      const Objective& o = objectives_[i];
      const Range& r = ranges[i];
      const double span = r.max - r.min;
      // Degenerate traits (all candidates identical) normalize to 0.
      const double normalized =
          span > 0 ? (TraitOrZero(c, o.trait) - r.min) / span : 0.0;
      score += (o.is_cost ? -1.0 : 1.0) * o.weight * normalized;
    }
    ScoredCandidate sc;
    sc.traited = std::move(c);
    sc.score = score;
    out.push_back(std::move(sc));
  }
  SortByScore(&out);
  return out;
}

std::vector<ScoredCandidate> SingleTraitRanker::Rank(
    std::vector<TraitedCandidate> candidates) const {
  std::vector<ScoredCandidate> out;
  out.reserve(candidates.size());
  for (TraitedCandidate& c : candidates) {
    ScoredCandidate sc;
    sc.score = TraitOrZero(c, trait_);
    sc.traited = std::move(c);
    out.push_back(std::move(sc));
  }
  SortByScore(&out);
  return out;
}

std::vector<ScoredCandidate> GreedySizeRatioRanker::Rank(
    std::vector<TraitedCandidate> candidates) const {
  std::vector<ScoredCandidate> out;
  out.reserve(candidates.size());
  for (TraitedCandidate& c : candidates) {
    const CandidateStats& stats = c.observed.stats;
    ScoredCandidate sc;
    sc.score = static_cast<double>(stats.small_file_bytes()) /
               static_cast<double>(std::max<int64_t>(1, stats.total_bytes));
    sc.traited = std::move(c);
    out.push_back(std::move(sc));
  }
  SortByScore(&out);
  return out;
}

std::vector<ScoredCandidate> OnlineMergeRanker::Rank(
    std::vector<TraitedCandidate> candidates) const {
  std::vector<ScoredCandidate> out;
  out.reserve(candidates.size());
  for (TraitedCandidate& c : candidates) {
    ScoredCandidate sc;
    sc.score = MergePressureScore(c.observed.stats.file_sizes, k_);
    sc.traited = std::move(c);
    out.push_back(std::move(sc));
  }
  SortByScore(&out);
  return out;
}

bool ThresholdPolicy::ShouldCompact(const TraitedCandidate& candidate) const {
  return TraitOrZero(candidate, trait_) >= threshold_;
}

std::vector<TraitedCandidate> ThresholdPolicy::Triggered(
    const std::vector<TraitedCandidate>& candidates) const {
  std::vector<TraitedCandidate> out;
  for (const TraitedCandidate& c : candidates) {
    if (ShouldCompact(c)) out.push_back(c);
  }
  return out;
}

std::vector<ScoredCandidate> FixedKSelector::Select(
    const std::vector<ScoredCandidate>& ranked) const {
  const size_t k = k_ < 0 ? 0 : static_cast<size_t>(k_);
  std::vector<ScoredCandidate> out(
      ranked.begin(),
      ranked.begin() + static_cast<ptrdiff_t>(std::min(k, ranked.size())));
  return out;
}

std::vector<ScoredCandidate> BudgetedSelector::Select(
    const std::vector<ScoredCandidate>& ranked) const {
  std::vector<ScoredCandidate> out;
  double remaining = budget_;
  for (const ScoredCandidate& c : ranked) {
    const double cost = TraitOrZero(c.traited, cost_trait_);
    if (cost <= remaining) {
      out.push_back(c);
      remaining -= cost;
    } else if (!skip_unaffordable_) {
      break;
    }
    // Greedy knapsack: items that do not fit are skipped and the scan
    // continues — smaller lower-priority tasks can still use the budget.
  }
  return out;
}

std::vector<ScoredCandidate> KnapsackSelector::Select(
    const std::vector<ScoredCandidate>& ranked) const {
  if (ranked.empty() || budget_ <= 0) return {};
  // Discretize costs to `resolution_` buckets of the budget.
  const int capacity = std::max(1, resolution_);
  const double unit = budget_ / capacity;
  const size_t n = ranked.size();

  std::vector<int> cost(n);
  std::vector<double> value(n);
  for (size_t i = 0; i < n; ++i) {
    const double c = TraitOrZero(ranked[i].traited, cost_trait_);
    cost[i] = static_cast<int>(std::ceil(c / unit));
    // Scores can be negative (cost-dominant candidates); shift into a
    // non-negative range so the DP maximizes meaningfully but keep the
    // original ordering semantics by offsetting uniformly.
    value[i] = ranked[i].score;
  }
  double min_score = 0;
  for (double v : value) min_score = std::min(min_score, v);
  for (double& v : value) v += -min_score + 1e-9;

  // dp[w] = best total value at cost w; choice tracking for recovery.
  std::vector<double> dp(static_cast<size_t>(capacity) + 1, 0.0);
  std::vector<std::vector<bool>> take(
      n, std::vector<bool>(static_cast<size_t>(capacity) + 1, false));
  for (size_t i = 0; i < n; ++i) {
    if (cost[i] > capacity) continue;
    for (int w = capacity; w >= cost[i]; --w) {
      const double candidate_value =
          dp[static_cast<size_t>(w - cost[i])] + value[i];
      if (candidate_value > dp[static_cast<size_t>(w)]) {
        dp[static_cast<size_t>(w)] = candidate_value;
        take[i][static_cast<size_t>(w)] = true;
      }
    }
  }
  // Recover the chosen set.
  std::vector<ScoredCandidate> out;
  int w = capacity;
  for (size_t i = n; i-- > 0;) {
    if (w >= 0 && take[i][static_cast<size_t>(w)]) {
      out.push_back(ranked[i]);
      w -= cost[i];
    }
  }
  std::reverse(out.begin(), out.end());
  return out;
}

double QuotaAwareBenefitWeight(double quota_utilization) {
  const double u = std::clamp(quota_utilization, 0.0, 1.0);
  return 0.5 * (1.0 + u);
}

}  // namespace autocomp::core
