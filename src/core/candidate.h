/// \file candidate.h
/// \brief Compaction candidates: the unit of work flowing through the
/// OODA pipeline (paper §3.3, §4.1).

#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/config.h"
#include "common/interner.h"
#include "common/units.h"

namespace autocomp::core {

/// \brief Granularity of a candidate (§4.1). Partition scope enables
/// parallel sub-table work units (FR1); snapshot scope targets freshly
/// written data.
enum class CandidateScope : int { kTable, kPartition, kSnapshot };

const char* CandidateScopeName(CandidateScope scope);

/// \brief A collection of files eligible for compaction.
struct Candidate {
  std::string table;  // "db.table"
  CandidateScope scope = CandidateScope::kTable;
  /// Set for kPartition scope.
  std::optional<std::string> partition;
  /// For kSnapshot scope: only files added after this snapshot id.
  int64_t after_snapshot_id = 0;
  /// Interned table id, stamped by whichever driver owns the candidate
  /// (see common/interner.h). A transport hint for hot paths that have
  /// already interned `table` — ids are meaningful only within the
  /// interner that assigned them, so this is excluded from equality and
  /// id(). kInvalidId when no driver has stamped it.
  common::TableId table_id = common::StringInterner::kInvalidId;

  /// Stable identifier used for deterministic tie-breaking and reporting.
  std::string id() const {
    std::string out = table;
    if (partition) out += "/" + *partition;
    if (after_snapshot_id > 0) {
      out += "@>" + std::to_string(after_snapshot_id);
    }
    return out;
  }

  bool operator==(const Candidate& other) const {
    return table == other.table && scope == other.scope &&
           partition == other.partition &&
           after_snapshot_id == other.after_snapshot_id;
  }
};

/// \brief Standardized statistics layout produced by the observe phase
/// (§4.1): generic metrics all platforms can provide, plus a custom bag
/// for platform-specific metrics.
struct CandidateStats {
  /// Generic metrics.
  int64_t file_count = 0;
  int64_t total_bytes = 0;
  std::vector<int64_t> file_sizes;
  int64_t target_file_size_bytes = 512 * kMiB;
  SimTime table_created_at = 0;
  SimTime last_modified_at = 0;
  /// Distinct partitions covered by the candidate's files (1 for
  /// partition scope; >=1 for table scope). Partition-aware estimators
  /// need the per-partition breakdown.
  std::map<std::string, std::vector<int64_t>> file_sizes_by_partition;

  /// MoR delta files pending merge (Hive-style delta-count triggers key
  /// off this; compaction folds them away).
  int64_t delete_file_count = 0;
  /// Bytes in files without a clustering layout — the raw material for
  /// §8's layout-optimization extension.
  int64_t unclustered_bytes = 0;

  /// Tenant signals (the production w1 weighting, §7).
  double quota_utilization = 0.0;

  /// Custom, platform-specific metrics (access frequency, usage, ...).
  Config custom;

  int64_t small_file_count() const {
    int64_t n = 0;
    for (int64_t s : file_sizes) {
      if (s < target_file_size_bytes) ++n;
    }
    return n;
  }
  int64_t small_file_bytes() const {
    int64_t n = 0;
    for (int64_t s : file_sizes) {
      if (s < target_file_size_bytes) n += s;
    }
    return n;
  }
};

/// \brief Candidate + its observed statistics (observe-phase output).
struct ObservedCandidate {
  Candidate candidate;
  CandidateStats stats;
};

/// \brief Candidate + computed traits (orient-phase output).
struct TraitedCandidate {
  ObservedCandidate observed;
  /// Trait name -> raw (unnormalized) value.
  std::map<std::string, double> traits;
};

/// \brief Candidate ranked by the decide phase.
struct ScoredCandidate {
  TraitedCandidate traited;
  /// Scalarized MOOP score (higher = compact first).
  double score = 0.0;

  const Candidate& candidate() const { return traited.observed.candidate; }
};

}  // namespace autocomp::core
