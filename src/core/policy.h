/// \file policy.h
/// \brief The composable compaction-policy design space.
///
/// The LSM compaction-design-space analysis (Sarkar et al.) decomposes
/// any compaction policy into four orthogonal axes: *when* to trigger,
/// at *what granularity* to act, *how much data to move*, and *which
/// files to pick*. AutoComp's OODA pipeline already contains one
/// primitive per axis (the hourly periodic trigger, table-scope
/// candidates, binpacked partial rewrites, the MOOP ranker); this module
/// names the axes explicitly and makes every combination addressable by
/// a stable `PolicySpec` string, e.g.
///
///   trigger=file-count:16;granularity=table;movement=partial;picker=moop
///
/// so the §6.3 tuning loop can search policy *shapes* instead of scalar
/// knobs, tables can carry a policy override in the catalog
/// (catalog::TablePolicy::compaction_policy), and the sweep bench can
/// walk the cross-product. The default-constructed spec reproduces the
/// pre-decomposition pipeline bit for bit (tests/policy_diff_test.cc).

#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/filters.h"
#include "core/ranking.h"

namespace autocomp::engine {
enum class RewriteMovement : int;
}  // namespace autocomp::engine

namespace autocomp::core {

/// \brief Trigger axis: the per-candidate admission rule deciding *when*
/// accumulated debt is worth acting on. Implemented as pre-orient
/// filters, so every trigger composes with any scope/ranker/scheduler.
enum class TriggerAxis : int {
  /// Every service cycle considers every candidate (the paper's hourly
  /// evaluation setting). The default; adds no filter.
  kPeriodic,
  /// Fire once a candidate holds at least N small files (Iceberg's
  /// min-input-files; Bigtable's "stack size" trigger).
  kFileCount,
  /// Fire once small-file bytes are at least 1/R of the already-compact
  /// bytes (an LSM size-ratio/tiering trigger).
  kSizeRatio,
  /// Fire once the candidate has been write-quiescent for H hours with
  /// debt outstanding (compact cold data; dodges write-write conflicts).
  kStaleness,
  /// Staleness with a burst bypass: quiesced debt compacts after H
  /// hours, but a large backlog (>= 16 small files) fires immediately.
  kDeadline,
};

/// \brief Granularity axis: the scope candidates are generated at.
/// Maps onto the existing generators (partition / table / hybrid); the
/// "fleet" granularity is the hybrid mixed-scope pool over every table
/// the control plane sees.
enum class GranularityAxis : int { kPartition, kTable, kFleet };

/// \brief File-picking axis: the decide-phase ranking primitive.
enum class PickerAxis : int {
  /// Weighted multi-objective scalarization (the paper's §4.3 ranker).
  kMoop,
  /// Single-trait sort by estimated file-count reduction.
  kSorted,
  /// Greedy size-ratio: rank by small-file byte fraction.
  kGreedySizeRatio,
  /// Bigtable-style k-way online merge pressure (see merge_policy.h);
  /// requires movement=merge. Param = stack budget k (default 4).
  kOnlineMerge,
};

/// \brief One point in the four-axis design space, with per-axis
/// parameters. Equality is structural; ToString() is canonical (fixed
/// key order) and Parse(ToString(s)) == s for every valid spec.
struct PolicySpec {
  TriggerAxis trigger = TriggerAxis::kPeriodic;
  /// kFileCount: N (>= 2). kSizeRatio: R (> 1). kStaleness/kDeadline:
  /// hours (> 0). kPeriodic: unused (must be 0).
  double trigger_param = 0;
  GranularityAxis granularity = GranularityAxis::kTable;
  engine::RewriteMovement movement;  // default set in the constructor
  PickerAxis picker = PickerAxis::kMoop;
  /// kOnlineMerge: stack budget k (>= 2). Other pickers: unused (0).
  double picker_param = 0;

  PolicySpec();

  /// The spec reproducing the pre-decomposition pipeline exactly:
  /// periodic / table / partial / moop.
  static PolicySpec Default();

  /// Canonical string form, e.g.
  /// "trigger=size-ratio:4;granularity=table;movement=merge;picker=moop".
  /// Parameters are omitted when they equal the axis default.
  std::string ToString() const;

  /// Structured parse failure: which axis, which token, and why.
  struct ParseError {
    std::string axis;    // "trigger", "granularity", "movement", "picker"
    std::string token;   // the offending input fragment
    std::string reason;  // "unknown-key" | "duplicate-key" | "missing-key" |
                         // "unknown-value" | "bad-param" |
                         // "param-out-of-range" | "invalid-combination"
  };

  /// Parses a spec string (any key order; all four keys required).
  /// On failure returns InvalidArgument and, when `error` is non-null,
  /// fills the structured reason.
  static Result<PolicySpec> Parse(const std::string& text,
                                  ParseError* error = nullptr);

  /// Checks parameter ranges and cross-axis constraints (the only
  /// invalid combination today: picker=online-merge requires
  /// movement=merge — the merge ranker scores k-way merge pressure,
  /// which only the tiering-style movement realizes).
  Status Validate(ParseError* error = nullptr) const;

  bool operator==(const PolicySpec& other) const;
  bool operator!=(const PolicySpec& other) const {
    return !(*this == other);
  }
};

const char* TriggerAxisName(TriggerAxis trigger);
const char* GranularityAxisName(GranularityAxis granularity);
const char* PickerAxisName(PickerAxis picker);

/// \brief Default parameter for a trigger kind (what ToString omits):
/// file-count 16, size-ratio 4, staleness 6 h, deadline 24 h, periodic 0.
double DefaultTriggerParam(TriggerAxis trigger);
/// \brief Default parameter for a picker kind (online-merge k = 4).
double DefaultPickerParam(PickerAxis picker);

/// \brief The trigger-axis filter for `spec` (nullptr for kPeriodic —
/// the periodic trigger is the absence of an admission filter; the
/// service's own PeriodicTrigger provides the cadence).
std::shared_ptr<const CandidateFilter> TriggerFilterFor(
    const PolicySpec& spec);

/// \brief The data-movement request mode for `spec`.
engine::RewriteMovement MovementFor(const PolicySpec& spec);

/// \brief Options for EnumerateValidSpecs.
struct EnumerateOptions {
  /// When false (default), granularity is pinned to kTable so the
  /// enumeration is exactly the (trigger x movement x picker)
  /// cross-product the sweep bench walks. When true, all three
  /// granularities are included.
  bool all_granularities = false;
};

/// \brief Every valid PolicySpec (axis defaults for parameters), in a
/// deterministic order. With granularity pinned this is 5 triggers x
/// (3 movements x 3 movement-agnostic pickers + the merge-only
/// online-merge picker) = 50 specs.
std::vector<PolicySpec> EnumerateValidSpecs(EnumerateOptions options = {});

}  // namespace autocomp::core
