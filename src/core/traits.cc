#include "core/traits.h"

#include <algorithm>
#include <cmath>

namespace autocomp::core {

double FileCountReductionTrait::Compute(
    const ObservedCandidate& candidate) const {
  return static_cast<double>(candidate.stats.small_file_count());
}

double PartitionAwareFileCountReductionTrait::Compute(
    const ObservedCandidate& candidate) const {
  const CandidateStats& stats = candidate.stats;
  const int64_t target = std::max<int64_t>(1, stats.target_file_size_bytes);
  double reduction = 0;
  for (const auto& [partition, sizes] : stats.file_sizes_by_partition) {
    int64_t small_count = 0;
    int64_t small_bytes = 0;
    for (int64_t s : sizes) {
      if (s < target) {
        ++small_count;
        small_bytes += s;
      }
    }
    if (small_count == 0) continue;
    const int64_t outputs = (small_bytes + target - 1) / target;
    reduction += static_cast<double>(
        std::max<int64_t>(0, small_count - outputs));
  }
  return reduction;
}

double SmallFileRatioTrait::Compute(const ObservedCandidate& candidate) const {
  const CandidateStats& stats = candidate.stats;
  if (stats.file_count == 0) return 0.0;
  return static_cast<double>(stats.small_file_count()) /
         static_cast<double>(stats.file_count);
}

double FileEntropyTrait::Compute(const ObservedCandidate& candidate) const {
  const CandidateStats& stats = candidate.stats;
  if (stats.file_sizes.empty()) return 0.0;
  const double target =
      static_cast<double>(std::max<int64_t>(1, stats.target_file_size_bytes));
  double acc = 0;
  for (int64_t size : stats.file_sizes) {
    if (size < stats.target_file_size_bytes) {
      const double deviation = (target - static_cast<double>(size)) / target;
      acc += deviation * deviation;
    }
  }
  return acc / static_cast<double>(stats.file_sizes.size());
}

double ClusteringBenefitTrait::Compute(
    const ObservedCandidate& candidate) const {
  return static_cast<double>(candidate.stats.unclustered_bytes);
}

double WorkloadAwareReductionTrait::Compute(
    const ObservedCandidate& candidate) const {
  const double reduction =
      static_cast<double>(candidate.stats.small_file_count());
  const double reads =
      static_cast<double>(candidate.stats.custom.GetInt("read_count", 0));
  return reduction * std::log2(1.0 + reads);
}

double DeleteFileCountTrait::Compute(
    const ObservedCandidate& candidate) const {
  return static_cast<double>(candidate.stats.delete_file_count);
}

double TotalFileEntropyTrait::Compute(
    const ObservedCandidate& candidate) const {
  const CandidateStats& stats = candidate.stats;
  const double target =
      static_cast<double>(std::max<int64_t>(1, stats.target_file_size_bytes));
  double acc = 0;
  for (int64_t size : stats.file_sizes) {
    if (size < stats.target_file_size_bytes) {
      const double deviation = (target - static_cast<double>(size)) / target;
      acc += deviation * deviation;
    }
  }
  return acc;
}

double ComputeCostTrait::Compute(const ObservedCandidate& candidate) const {
  const double data_bytes =
      static_cast<double>(candidate.stats.small_file_bytes());
  if (rewrite_bytes_per_hour_ <= 0) return 0.0;
  return executor_memory_gb_ * (data_bytes / rewrite_bytes_per_hour_);
}

std::vector<TraitedCandidate> ComputeTraits(
    std::vector<ObservedCandidate> candidates,
    const std::vector<std::shared_ptr<const Trait>>& traits,
    ThreadPool* pool) {
  std::vector<TraitedCandidate> out(candidates.size());
  // name() builds a fresh string per call; materialize each once instead
  // of once per candidate (the virtual call + heap alloc showed up at
  // fleet scale).
  std::vector<std::string> names;
  names.reserve(traits.size());
  for (const auto& trait : traits) names.push_back(trait->name());
  // The pool is consumed: each candidate's stats (size vectors, partition
  // map, custom bag) move into their slot instead of being deep-copied —
  // at fleet scale the copies dominated the orient phase.
  const auto compute_one = [&](int64_t i) {
    TraitedCandidate& tc = out[static_cast<size_t>(i)];
    tc.observed = std::move(candidates[static_cast<size_t>(i)]);
    auto hint = tc.traits.end();
    for (size_t j = 0; j < traits.size(); ++j) {
      hint = tc.traits.emplace_hint(hint, names[j],
                                    traits[j]->Compute(tc.observed));
    }
  };
  const int64_t n = static_cast<int64_t>(candidates.size());
  if (pool != nullptr && pool->worker_count() > 1 && n > 1) {
    // Each index writes only its own slot; traits are pure, so the
    // result is identical to the sequential loop (NFR2).
    pool->ParallelFor(n, compute_one);
  } else {
    for (int64_t i = 0; i < n; ++i) compute_one(i);
  }
  return out;
}

}  // namespace autocomp::core
