#include "core/scheduler.h"

#include <algorithm>
#include <cassert>
#include <map>

#include "common/logging.h"
#include "core/policy.h"

namespace autocomp::core {

engine::CompactionRequest RequestFor(
    const Candidate& candidate, const SchedulerOptions& options,
    const catalog::ControlPlane* control_plane) {
  engine::CompactionRequest request;
  request.table = candidate.table;
  request.partition = candidate.partition;
  request.after_snapshot_id = candidate.after_snapshot_id;
  request.validation_mode = options.validation_mode;
  request.target_file_size_bytes = options.target_file_size_bytes;
  request.movement = options.movement;
  if (control_plane != nullptr) {
    const catalog::TablePolicy policy =
        control_plane->GetPolicy(candidate.table);
    if (request.target_file_size_bytes == 0) {
      request.target_file_size_bytes = policy.target_file_size_bytes;
    }
    request.cluster_output = policy.clustering_enabled;
    if (!policy.compaction_policy.empty()) {
      // Per-table policy override; a bad catalog entry must not crash
      // the service, so parse failures fall back to the fleet default.
      auto spec = PolicySpec::Parse(policy.compaction_policy);
      if (spec.ok()) {
        request.movement = MovementFor(*spec);
      } else {
        LOG_WARN << "ignoring unparsable compaction_policy for "
                 << candidate.table << ": " << spec.status();
      }
    }
  }
  return request;
}

namespace {

/// Runs one unit and (optionally) retention afterwards. Returns the end
/// time of the unit (>= submit).
SimTime RunUnit(engine::CompactionRunner* runner,
                catalog::ControlPlane* control_plane,
                const SchedulerOptions& options, const Candidate& candidate,
                SimTime submit, std::vector<ScheduledCompaction>* out) {
  const engine::CompactionRequest request =
      RequestFor(candidate, options, control_plane);
  auto result = runner->Run(request, submit);
  if (!result.ok()) {
    // Infrastructure failure: record a failed unit and move on.
    ScheduledCompaction unit;
    unit.candidate = candidate;
    unit.result.attempted = true;
    unit.result.status = result.status();
    unit.result.start_time = submit;
    unit.result.end_time = submit;
    out->push_back(std::move(unit));
    return submit;
  }
  ScheduledCompaction unit;
  unit.candidate = candidate;
  unit.result = std::move(result).value();
  const SimTime end = unit.result.end_time;
  if (unit.result.committed && options.run_retention_after_commit &&
      control_plane != nullptr) {
    auto retention = control_plane->RunRetentionFor(
        candidate.table, options.post_commit_retention);
    if (!retention.ok()) {
      LOG_WARN << "post-compaction retention failed for " << candidate.table
               << ": " << retention.status();
    }
  }
  out->push_back(std::move(unit));
  return end;
}

}  // namespace

SerialScheduler::SerialScheduler(engine::CompactionRunner* runner,
                                 catalog::ControlPlane* control_plane,
                                 SchedulerOptions options)
    : runner_(runner), control_plane_(control_plane), options_(options) {
  assert(runner_ != nullptr);
}

Result<std::vector<ScheduledCompaction>> SerialScheduler::Execute(
    const std::vector<ScoredCandidate>& plan, SimTime now) {
  std::vector<ScheduledCompaction> out;
  out.reserve(plan.size());
  SimTime cursor = now;
  for (const ScoredCandidate& item : plan) {
    cursor = std::max(
        cursor, RunUnit(runner_, control_plane_, options_, item.candidate(),
                        cursor, &out));
  }
  return out;
}

TableParallelScheduler::TableParallelScheduler(
    engine::CompactionRunner* runner, catalog::ControlPlane* control_plane,
    SchedulerOptions options)
    : runner_(runner), control_plane_(control_plane), options_(options) {
  assert(runner_ != nullptr);
}

Result<std::vector<ScheduledCompaction>> TableParallelScheduler::Execute(
    const std::vector<ScoredCandidate>& plan, SimTime now) {
  // Group by table, preserving plan (priority) order within each group.
  std::map<std::string, std::vector<const ScoredCandidate*>> by_table;
  std::vector<std::string> table_order;
  for (const ScoredCandidate& item : plan) {
    auto [it, inserted] = by_table.try_emplace(item.candidate().table);
    if (inserted) table_order.push_back(item.candidate().table);
    it->second.push_back(&item);
  }
  std::vector<ScheduledCompaction> out;
  out.reserve(plan.size());
  for (const std::string& table : table_order) {
    // Tables start concurrently at `now`; the shared cluster's slot
    // model provides the actual arbitration. Units within one table are
    // chained sequentially.
    SimTime cursor = now;
    for (const ScoredCandidate* item : by_table[table]) {
      cursor = std::max(
          cursor, RunUnit(runner_, control_plane_, options_,
                          item->candidate(), cursor, &out));
    }
  }
  return out;
}

OffPeakScheduler::OffPeakScheduler(std::unique_ptr<CompactionScheduler> inner,
                                   int window_start_hour, int window_end_hour)
    : inner_(std::move(inner)),
      window_start_hour_(window_start_hour),
      window_end_hour_(window_end_hour) {
  assert(inner_ != nullptr);
  assert(window_start_hour_ >= 0 && window_start_hour_ < 24);
  assert(window_end_hour_ >= 0 && window_end_hour_ < 24);
}

SimTime OffPeakScheduler::NextWindowStart(SimTime now) const {
  const int hour_of_day = static_cast<int>((now / kHour) % 24);
  const bool wraps = window_start_hour_ > window_end_hour_;
  const bool inside =
      wraps ? (hour_of_day >= window_start_hour_ ||
               hour_of_day < window_end_hour_)
            : (hour_of_day >= window_start_hour_ &&
               hour_of_day < window_end_hour_);
  if (inside) return now;
  const SimTime day_start = (now / kDay) * kDay;
  SimTime next = day_start + window_start_hour_ * kHour;
  if (next <= now) next += kDay;
  return next;
}

Result<std::vector<ScheduledCompaction>> OffPeakScheduler::Execute(
    const std::vector<ScoredCandidate>& plan, SimTime now) {
  return inner_->Execute(plan, NextWindowStart(now));
}

}  // namespace autocomp::core
