#include "core/pareto.h"

#include <algorithm>
#include <limits>
#include <map>

namespace autocomp::core {

namespace {

double TraitOrZero(const TraitedCandidate& c, const std::string& name) {
  const auto it = c.traits.find(name);
  return it == c.traits.end() ? 0.0 : it->second;
}

}  // namespace

bool Dominates(const ParetoPoint& a, const ParetoPoint& b) {
  const bool at_least_as_good = a.benefit >= b.benefit && a.cost <= b.cost;
  const bool strictly_better = a.benefit > b.benefit || a.cost < b.cost;
  return at_least_as_good && strictly_better;
}

std::vector<ParetoPoint> ComputeParetoFrontier(
    const std::vector<TraitedCandidate>& pool,
    const std::string& benefit_trait, const std::string& cost_trait) {
  std::vector<ParetoPoint> points;
  points.reserve(pool.size());
  for (size_t i = 0; i < pool.size(); ++i) {
    ParetoPoint p;
    p.index = i;
    p.benefit = TraitOrZero(pool[i], benefit_trait);
    p.cost = TraitOrZero(pool[i], cost_trait);
    points.push_back(p);
  }
  // Sweep by ascending cost (ties: descending benefit); a point is on the
  // frontier iff its benefit strictly exceeds everything cheaper. This is
  // O(n log n) rather than the naive O(n²) pairwise check.
  std::vector<size_t> order(points.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    if (points[a].cost != points[b].cost) {
      return points[a].cost < points[b].cost;
    }
    return points[a].benefit > points[b].benefit;
  });
  double best_benefit = -std::numeric_limits<double>::infinity();
  double frontier_cost = std::numeric_limits<double>::quiet_NaN();
  for (size_t idx : order) {
    ParetoPoint& p = points[idx];
    if (p.benefit > best_benefit) {
      p.on_frontier = true;
      best_benefit = p.benefit;
      frontier_cost = p.cost;
    } else if (p.benefit == best_benefit && p.cost == frontier_cost) {
      p.on_frontier = true;  // co-optimal duplicate
    }
  }
  return points;
}

std::vector<ScoredCandidate> ParetoFrontierSelector::Select(
    const std::vector<ScoredCandidate>& ranked) const {
  std::vector<TraitedCandidate> pool;
  pool.reserve(ranked.size());
  for (const ScoredCandidate& sc : ranked) pool.push_back(sc.traited);
  const auto points = ComputeParetoFrontier(pool, benefit_trait_, cost_trait_);

  std::vector<ScoredCandidate> out;
  for (const ParetoPoint& p : points) {
    if (p.on_frontier) out.push_back(ranked[p.index]);
  }
  std::sort(out.begin(), out.end(), [&](const auto& a, const auto& b) {
    const double ba = a.traited.traits.count(benefit_trait_)
                          ? a.traited.traits.at(benefit_trait_)
                          : 0;
    const double bb = b.traited.traits.count(benefit_trait_)
                          ? b.traited.traits.at(benefit_trait_)
                          : 0;
    if (ba != bb) return ba > bb;
    return a.candidate().id() < b.candidate().id();
  });
  return out;
}

std::vector<WeightSweepRow> SweepWeights(
    const std::vector<TraitedCandidate>& pool,
    const std::string& benefit_trait, const std::string& cost_trait,
    int steps) {
  std::vector<WeightSweepRow> rows;
  if (pool.empty() || steps < 2) return rows;
  const auto points = ComputeParetoFrontier(pool, benefit_trait, cost_trait);
  for (int s = 0; s < steps; ++s) {
    const double w1 = static_cast<double>(s) / (steps - 1);
    MoopRanker ranker({{benefit_trait, w1, false},
                       {cost_trait, 1.0 - w1, true}});
    const auto ranked = ranker.Rank(pool);
    const std::string top_id = ranked.front().candidate().id();
    WeightSweepRow row;
    row.benefit_weight = w1;
    row.top_candidate_id = top_id;
    for (size_t i = 0; i < pool.size(); ++i) {
      if (pool[i].observed.candidate.id() == top_id) {
        row.benefit = points[i].benefit;
        row.cost = points[i].cost;
        row.on_frontier = points[i].on_frontier;
        break;
      }
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

void MarkPolicyFrontier(std::vector<PolicyOutcome>* outcomes) {
  // Per-archetype min-min dominance: mapped onto the existing sweep by
  // treating negated GBHr as the benefit axis.
  std::map<std::string, std::vector<size_t>> groups;
  for (size_t i = 0; i < outcomes->size(); ++i) {
    (*outcomes)[i].on_frontier = false;
    groups[(*outcomes)[i].archetype].push_back(i);
  }
  for (const auto& [archetype, members] : groups) {
    std::vector<size_t> order = members;
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      const PolicyOutcome& pa = (*outcomes)[a];
      const PolicyOutcome& pb = (*outcomes)[b];
      if (pa.read_latency_s != pb.read_latency_s) {
        return pa.read_latency_s < pb.read_latency_s;
      }
      return pa.gb_hours < pb.gb_hours;
    });
    double best_gbhr = std::numeric_limits<double>::infinity();
    double frontier_latency = std::numeric_limits<double>::quiet_NaN();
    for (size_t idx : order) {
      PolicyOutcome& p = (*outcomes)[idx];
      if (p.gb_hours < best_gbhr) {
        p.on_frontier = true;
        best_gbhr = p.gb_hours;
        frontier_latency = p.read_latency_s;
      } else if (p.gb_hours == best_gbhr &&
                 p.read_latency_s == frontier_latency) {
        p.on_frontier = true;  // co-optimal duplicate
      }
    }
  }
}

}  // namespace autocomp::core
