/// \file merge_policy.h
/// \brief Bigtable-style k-way online merge compaction, with an
/// offline-optimal oracle.
///
/// The merge-compaction model (Mathieu et al., "Bigtable merge
/// compaction", PAPERS.md): runs of sizes a_1..a_n arrive one at a
/// time; the system may hold at most `k` runs, so after an arrival
/// overflows the stack some newest suffix of runs must be merged into
/// one. Merging runs costs the sum of their bytes (everything merged is
/// rewritten). An *online* policy sees only the current stack; the
/// *offline optimum* knows the whole arrival trace. The ratio of the
/// two is the policy's competitive ratio — the principled yardstick the
/// policy sweep reports per workload archetype (EXPERIMENTS.md).
///
/// The pipeline uses this model two ways: the OnlineMergeRanker
/// (ranking.h) scores candidates by their k-way merge pressure, and the
/// oracle prices completed traces so the sweep bench can report how far
/// each online policy lands from optimal.

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace autocomp::core {

/// \brief Chooses how many of the newest runs to merge when the stack
/// exceeds the budget. Implementations must be pure functions of the
/// stack (determinism; NFR2).
class OnlineMergePolicy {
 public:
  virtual ~OnlineMergePolicy() = default;
  virtual std::string name() const = 0;
  /// `stack` is oldest-to-newest run sizes, with stack.size() == k + 1
  /// (an arrival just overflowed the budget). Returns how many of the
  /// newest runs to merge, in [2, stack.size()].
  virtual size_t MergeCount(const std::vector<int64_t>& stack,
                            size_t k) const = 0;
};

/// \brief Merge everything into one run (the naive baseline — minimal
/// read amplification, maximal write amplification).
class MergeAllPolicy final : public OnlineMergePolicy {
 public:
  std::string name() const override { return "merge-all"; }
  size_t MergeCount(const std::vector<int64_t>& stack,
                    size_t k) const override;
};

/// \brief Merge only the two newest runs (the laziest legal move —
/// minimal bytes per step; can re-pay the same bytes many times).
class LazyMergePolicy final : public OnlineMergePolicy {
 public:
  std::string name() const override { return "lazy"; }
  size_t MergeCount(const std::vector<int64_t>& stack,
                    size_t k) const override;
};

/// \brief Geometric (Bigtable-style) policy: starting from the two
/// newest runs, keep absorbing the next older run while it is at most
/// `ratio` times the suffix merged so far — maintaining an
/// approximately geometric stack, the shape that yields logarithmic
/// write amplification.
class GeometricMergePolicy final : public OnlineMergePolicy {
 public:
  explicit GeometricMergePolicy(double ratio = 2.0) : ratio_(ratio) {}
  std::string name() const override { return "geometric"; }
  size_t MergeCount(const std::vector<int64_t>& stack,
                    size_t k) const override;

 private:
  double ratio_;
};

/// \brief Replays `arrivals` under `policy` with stack budget `k`;
/// returns total bytes written across all forced merges. A trace that
/// never overflows the budget costs 0.
int64_t SimulateOnlineMergeCost(const std::vector<int64_t>& arrivals,
                                size_t k, const OnlineMergePolicy& policy);

/// \brief Minimum total merge cost any schedule can achieve on
/// `arrivals` with stack budget `k`, by memoized exhaustive search over
/// stack states (each state is a contiguous partition of the arrivals
/// seen so far; after each arrival the schedule may merge any newest
/// suffix, or nothing if the stack fits). Exponential in principle —
/// intended for traces of up to ~18 arrivals (tests and the sweep's
/// per-archetype ratio report).
int64_t OfflineOptimalMergeCost(const std::vector<int64_t>& arrivals,
                                size_t k);

/// \brief An online policy's cost vs the offline optimum on one trace.
struct MergeCompetitiveRatio {
  int64_t online_cost = 0;
  int64_t offline_cost = 0;
  /// online/offline; 1.0 when both are 0 (nothing to merge). Always
  /// >= 1.0 and finite for any legal policy.
  double ratio = 1.0;
};

MergeCompetitiveRatio CompetitiveRatioFor(
    const std::vector<int64_t>& arrivals, size_t k,
    const OnlineMergePolicy& policy);

/// \brief The built-in online policies, for ratio sweeps.
std::vector<std::shared_ptr<const OnlineMergePolicy>> BuiltinMergePolicies();

/// \brief Merge pressure of a file stack under budget `k`: plans the
/// geometric policy's forced merge over the candidate's small files
/// (sizes ascending = newest-first proxy) and returns files eliminated
/// per GiB written, 0 when the stack fits the budget. The
/// OnlineMergeRanker's scoring function.
double MergePressureScore(const std::vector<int64_t>& file_sizes, size_t k);

}  // namespace autocomp::core
