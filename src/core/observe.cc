#include "core/observe.h"

#include <algorithm>
#include <cassert>

#include "lst/metadata_tables.h"

namespace autocomp::core {

namespace {

/// Sorted-by-id candidate list (determinism, NFR2).
std::vector<Candidate> Sorted(std::vector<Candidate> candidates) {
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              return a.id() < b.id();
            });
  return candidates;
}

}  // namespace

const char* CandidateScopeName(CandidateScope scope) {
  switch (scope) {
    case CandidateScope::kTable:
      return "table";
    case CandidateScope::kPartition:
      return "partition";
    case CandidateScope::kSnapshot:
      return "snapshot";
  }
  return "unknown";
}

Result<std::vector<Candidate>> TableScopeGenerator::Generate(
    catalog::Catalog* catalog) const {
  std::vector<Candidate> out;
  for (const std::string& name : catalog->ListAllTables()) {
    Candidate c;
    c.table = name;
    c.scope = CandidateScope::kTable;
    out.push_back(std::move(c));
  }
  return Sorted(std::move(out));
}

Result<std::vector<Candidate>> PartitionScopeGenerator::Generate(
    catalog::Catalog* catalog) const {
  std::vector<Candidate> out;
  for (const std::string& name : catalog->ListAllTables()) {
    AUTOCOMP_ASSIGN_OR_RETURN(lst::TableMetadataPtr meta,
                              catalog->LoadTable(name));
    if (!meta->partition_spec().is_partitioned()) continue;
    for (const std::string& partition : meta->LivePartitions()) {
      Candidate c;
      c.table = name;
      c.scope = CandidateScope::kPartition;
      c.partition = partition;
      out.push_back(std::move(c));
    }
  }
  return Sorted(std::move(out));
}

Result<std::vector<Candidate>> HybridScopeGenerator::Generate(
    catalog::Catalog* catalog) const {
  std::vector<Candidate> out;
  for (const std::string& name : catalog->ListAllTables()) {
    AUTOCOMP_ASSIGN_OR_RETURN(lst::TableMetadataPtr meta,
                              catalog->LoadTable(name));
    if (meta->partition_spec().is_partitioned()) {
      for (const std::string& partition : meta->LivePartitions()) {
        Candidate c;
        c.table = name;
        c.scope = CandidateScope::kPartition;
        c.partition = partition;
        out.push_back(std::move(c));
      }
    } else {
      Candidate c;
      c.table = name;
      c.scope = CandidateScope::kTable;
      out.push_back(std::move(c));
    }
  }
  return Sorted(std::move(out));
}

Result<std::vector<Candidate>> SnapshotScopeGenerator::Generate(
    catalog::Catalog* catalog) const {
  std::vector<Candidate> out;
  for (const std::string& name : catalog->ListAllTables()) {
    AUTOCOMP_ASSIGN_OR_RETURN(lst::TableMetadataPtr meta,
                              catalog->LoadTable(name));
    // Files added after the most recent replace (compaction) snapshot.
    int64_t last_replace = 0;
    for (const lst::Snapshot& s : meta->snapshots()) {
      if (s.operation == lst::SnapshotOperation::kReplace) {
        last_replace = std::max(last_replace, s.snapshot_id);
      }
    }
    Candidate c;
    c.table = name;
    c.scope = CandidateScope::kSnapshot;
    c.after_snapshot_id = last_replace;
    out.push_back(std::move(c));
  }
  return Sorted(std::move(out));
}

StatsCollector::StatsCollector(catalog::Catalog* catalog,
                               const catalog::ControlPlane* control_plane,
                               const Clock* clock)
    : catalog_(catalog), control_plane_(control_plane), clock_(clock) {
  assert(catalog_ != nullptr && clock_ != nullptr);
}

Result<CandidateStats> StatsCollector::Collect(
    const Candidate& candidate) const {
  AUTOCOMP_ASSIGN_OR_RETURN(lst::TableMetadataPtr meta,
                            catalog_->LoadTable(candidate.table));
  CandidateStats stats;
  stats.table_created_at = meta->created_at();
  stats.last_modified_at = meta->last_updated_at();
  stats.target_file_size_bytes = meta->target_file_size_bytes();
  if (control_plane_ != nullptr) {
    const catalog::TablePolicy policy =
        control_plane_->GetPolicy(candidate.table);
    stats.target_file_size_bytes = policy.target_file_size_bytes;
  }

  std::vector<lst::DataFile> files;
  switch (candidate.scope) {
    case CandidateScope::kTable:
      files = meta->LiveFiles();
      break;
    case CandidateScope::kPartition:
      files = meta->LiveFiles(candidate.partition);
      break;
    case CandidateScope::kSnapshot: {
      lst::MetadataTables tables(meta);
      files = tables.FilesAddedAfter(candidate.after_snapshot_id);
      break;
    }
  }
  stats.file_count = static_cast<int64_t>(files.size());
  stats.file_sizes.reserve(files.size());
  for (const lst::DataFile& f : files) {
    stats.file_sizes.push_back(f.file_size_bytes);
    stats.total_bytes += f.file_size_bytes;
    stats.file_sizes_by_partition[f.partition].push_back(f.file_size_bytes);
    if (f.content == lst::FileContent::kPositionDeletes) {
      ++stats.delete_file_count;
    }
    if (!f.clustered) stats.unclustered_bytes += f.file_size_bytes;
  }

  auto db = catalog::SplitQualifiedName(candidate.table);
  if (db.ok()) {
    const storage::QuotaStatus quota = catalog_->DatabaseQuota(db->first);
    stats.quota_utilization = quota.utilization();
  }

  // Custom metrics (§4.1: "candidate access patterns and usage metrics —
  // information that may not be available in all systems").
  const catalog::TableAccessStats access =
      catalog_->GetAccessStats(candidate.table);
  stats.custom.SetInt("read_count", access.read_count);
  stats.custom.SetInt("last_read_at", access.last_read_at);
  return stats;
}

Result<std::vector<ObservedCandidate>> StatsCollector::CollectAll(
    const std::vector<Candidate>& candidates) const {
  std::vector<ObservedCandidate> out;
  out.reserve(candidates.size());
  for (const Candidate& c : candidates) {
    AUTOCOMP_ASSIGN_OR_RETURN(CandidateStats stats, Collect(c));
    out.push_back(ObservedCandidate{c, std::move(stats)});
  }
  return out;
}

CachingStatsCollector::CachingStatsCollector(
    catalog::Catalog* catalog, const catalog::ControlPlane* control_plane,
    const Clock* clock)
    : StatsCollector(catalog, control_plane, clock) {}

Result<CandidateStats> CachingStatsCollector::Collect(
    const Candidate& candidate) const {
  AUTOCOMP_ASSIGN_OR_RETURN(lst::TableMetadataPtr meta,
                            catalog_->LoadTable(candidate.table));
  const std::string key = candidate.id();
  const auto it = cache_.find(key);
  if (it != cache_.end() && it->second.version == meta->version()) {
    ++hits_;
    return it->second.stats;
  }
  ++misses_;
  AUTOCOMP_ASSIGN_OR_RETURN(CandidateStats stats,
                            StatsCollector::Collect(candidate));
  cache_[key] = Entry{meta->version(), stats};
  return stats;
}

void CachingStatsCollector::Invalidate() const { cache_.clear(); }

}  // namespace autocomp::core
