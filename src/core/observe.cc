#include "core/observe.h"

#include <algorithm>
#include <cassert>
#include <functional>
#include <optional>
#include <utility>

#include "core/stats_index.h"
#include "lst/metadata_tables.h"

namespace autocomp::core {

namespace {

/// Sorted-by-id candidate list (determinism, NFR2). Ids are materialized
/// once per candidate — id() builds a string, and calling it inside the
/// comparator allocated twice per comparison at fleet scale.
std::vector<Candidate> Sorted(std::vector<Candidate> candidates) {
  std::vector<std::pair<std::string, size_t>> keys;
  keys.reserve(candidates.size());
  for (size_t i = 0; i < candidates.size(); ++i) {
    keys.emplace_back(candidates[i].id(), i);
  }
  std::sort(keys.begin(), keys.end());
  std::vector<Candidate> out;
  out.reserve(candidates.size());
  for (const auto& [_, i] : keys) out.push_back(std::move(candidates[i]));
  return out;
}

using PerTableFn = std::function<Status(
    catalog::Catalog*, const std::string&, std::vector<Candidate>*)>;

/// Shared generator skeleton: runs `per_table` over every table in the
/// fleet — fanned out across `pool` when one is supplied — and merges the
/// per-table shards in table order before the final sort. Each table
/// writes only its own index's slot, so the merged list (and the first
/// error surfaced, in table order) is bit-for-bit identical to the
/// sequential path regardless of worker count or scheduling (NFR2).
Result<std::vector<Candidate>> GeneratePerTable(catalog::Catalog* catalog,
                                                ThreadPool* pool,
                                                const PerTableFn& per_table) {
  const std::vector<std::string> names = catalog->ListAllTables();
  const int64_t n = static_cast<int64_t>(names.size());
  std::vector<std::vector<Candidate>> shards(names.size());
  std::vector<Status> statuses(names.size(), Status::OK());
  if (pool != nullptr && pool->worker_count() > 1 && n > 1) {
    pool->ParallelFor(n, [&](int64_t i) {
      statuses[i] = per_table(catalog, names[i], &shards[i]);
    });
  } else {
    for (int64_t i = 0; i < n; ++i) {
      statuses[i] = per_table(catalog, names[i], &shards[i]);
    }
  }
  size_t total = 0;
  for (size_t i = 0; i < shards.size(); ++i) {
    AUTOCOMP_RETURN_NOT_OK(statuses[i]);
    total += shards[i].size();
  }
  std::vector<Candidate> out;
  out.reserve(total);
  for (std::vector<Candidate>& shard : shards) {
    for (Candidate& c : shard) out.push_back(std::move(c));
  }
  return Sorted(std::move(out));
}

}  // namespace

const char* CandidateScopeName(CandidateScope scope) {
  switch (scope) {
    case CandidateScope::kTable:
      return "table";
    case CandidateScope::kPartition:
      return "partition";
    case CandidateScope::kSnapshot:
      return "snapshot";
  }
  return "unknown";
}

TableScopeGenerator::TableScopeGenerator(
    std::shared_ptr<const IncrementalStatsIndex> index)
    : index_(std::move(index)) {}

Result<std::vector<Candidate>> TableScopeGenerator::Generate(
    catalog::Catalog* catalog, ThreadPool* pool) const {
  return GeneratePerTable(
      catalog, pool,
      [](catalog::Catalog*, const std::string& name,
         std::vector<Candidate>* out) {
        Candidate c;
        c.table = name;
        c.scope = CandidateScope::kTable;
        out->push_back(std::move(c));
        return Status::OK();
      });
}

namespace {

/// Live partition keys of `name` at the pinned metadata version: O(1)
/// from the index when available and current, manifest walk otherwise.
/// Both orders are lexicographic, so output is identical (NFR2).
std::vector<std::string> LivePartitionsFor(
    const IncrementalStatsIndex* index, const std::string& name,
    const lst::TableMetadataPtr& meta) {
  if (index != nullptr) {
    auto indexed = index->LivePartitions(name, meta);
    if (indexed.has_value()) return std::move(*indexed);
  }
  return meta->LivePartitions();
}

}  // namespace

PartitionScopeGenerator::PartitionScopeGenerator(
    std::shared_ptr<const IncrementalStatsIndex> index)
    : index_(std::move(index)) {}

Result<std::vector<Candidate>> PartitionScopeGenerator::Generate(
    catalog::Catalog* catalog, ThreadPool* pool) const {
  return GeneratePerTable(
      catalog, pool,
      [this](catalog::Catalog* cat, const std::string& name,
             std::vector<Candidate>* out) {
        AUTOCOMP_ASSIGN_OR_RETURN(lst::TableMetadataPtr meta,
                                  cat->LoadTable(name));
        if (!meta->partition_spec().is_partitioned()) return Status::OK();
        for (std::string& partition :
             LivePartitionsFor(index_.get(), name, meta)) {
          Candidate c;
          c.table = name;
          c.scope = CandidateScope::kPartition;
          c.partition = std::move(partition);
          out->push_back(std::move(c));
        }
        return Status::OK();
      });
}

HybridScopeGenerator::HybridScopeGenerator(
    std::shared_ptr<const IncrementalStatsIndex> index)
    : index_(std::move(index)) {}

Result<std::vector<Candidate>> HybridScopeGenerator::Generate(
    catalog::Catalog* catalog, ThreadPool* pool) const {
  return GeneratePerTable(
      catalog, pool,
      [this](catalog::Catalog* cat, const std::string& name,
             std::vector<Candidate>* out) {
        AUTOCOMP_ASSIGN_OR_RETURN(lst::TableMetadataPtr meta,
                                  cat->LoadTable(name));
        if (meta->partition_spec().is_partitioned()) {
          for (std::string& partition :
               LivePartitionsFor(index_.get(), name, meta)) {
            Candidate c;
            c.table = name;
            c.scope = CandidateScope::kPartition;
            c.partition = std::move(partition);
            out->push_back(std::move(c));
          }
        } else {
          Candidate c;
          c.table = name;
          c.scope = CandidateScope::kTable;
          out->push_back(std::move(c));
        }
        return Status::OK();
      });
}

SnapshotScopeGenerator::SnapshotScopeGenerator(
    std::shared_ptr<const IncrementalStatsIndex> index)
    : index_(std::move(index)) {}

Result<std::vector<Candidate>> SnapshotScopeGenerator::Generate(
    catalog::Catalog* catalog, ThreadPool* pool) const {
  return GeneratePerTable(
      catalog, pool,
      [this](catalog::Catalog* cat, const std::string& name,
             std::vector<Candidate>* out) {
        AUTOCOMP_ASSIGN_OR_RETURN(lst::TableMetadataPtr meta,
                                  cat->LoadTable(name));
        // Files added after the most recent replace (compaction) snapshot.
        std::optional<int64_t> last_replace;
        if (index_ != nullptr) {
          last_replace = index_->LastReplaceSnapshotId(name, meta);
        }
        if (!last_replace.has_value()) {
          int64_t scanned = 0;
          for (const lst::Snapshot& s : meta->snapshots()) {
            if (s.operation == lst::SnapshotOperation::kReplace) {
              scanned = std::max(scanned, s.snapshot_id);
            }
          }
          last_replace = scanned;
        }
        Candidate c;
        c.table = name;
        c.scope = CandidateScope::kSnapshot;
        c.after_snapshot_id = *last_replace;
        out->push_back(std::move(c));
        return Status::OK();
      });
}

StatsCollector::StatsCollector(catalog::Catalog* catalog,
                               const catalog::ControlPlane* control_plane,
                               const Clock* clock)
    : catalog_(catalog), control_plane_(control_plane), clock_(clock) {
  assert(catalog_ != nullptr && clock_ != nullptr);
}

Result<CandidateStats> StatsCollector::Collect(
    const Candidate& candidate) const {
  AUTOCOMP_ASSIGN_OR_RETURN(lst::TableMetadataPtr meta,
                            catalog_->LoadTable(candidate.table));
  return CollectFromMetadata(candidate, meta);
}

Result<CandidateStats> StatsCollector::CollectFromMetadata(
    const Candidate& candidate, const lst::TableMetadataPtr& meta) const {
  CandidateStats stats;
  stats.table_created_at = meta->created_at();
  stats.last_modified_at = meta->last_updated_at();

  const auto accumulate = [&stats](const lst::DataFile& f) {
    stats.file_sizes.push_back(f.file_size_bytes);
    stats.total_bytes += f.file_size_bytes;
    stats.file_sizes_by_partition[f.partition].push_back(f.file_size_bytes);
    if (f.content == lst::FileContent::kPositionDeletes) {
      ++stats.delete_file_count;
    }
    if (!f.clustered) stats.unclustered_bytes += f.file_size_bytes;
  };
  switch (candidate.scope) {
    case CandidateScope::kTable:
      // Visit manifests in place; copying LiveFiles() per candidate was
      // the observe phase's dominant allocation at fleet scale.
      stats.file_sizes.reserve(meta->live_file_count());
      meta->ForEachLiveFile(accumulate);
      break;
    case CandidateScope::kPartition:
      meta->ForEachLiveFile(accumulate, candidate.partition);
      break;
    case CandidateScope::kSnapshot: {
      lst::MetadataTables tables(meta);
      tables.ForEachFileAddedAfter(candidate.after_snapshot_id, accumulate);
      break;
    }
  }
  stats.file_count = static_cast<int64_t>(stats.file_sizes.size());

  // Canonical ordering (see class comment): size vectors are sorted so
  // rescans, cached entries, and the incremental index agree byte for
  // byte — including the float-summation order of the entropy traits.
  std::sort(stats.file_sizes.begin(), stats.file_sizes.end());
  for (auto& [_, sizes] : stats.file_sizes_by_partition) {
    std::sort(sizes.begin(), sizes.end());
  }

  RefreshVolatile(candidate, *meta, &stats);
  return stats;
}

void StatsCollector::RefreshVolatile(const Candidate& candidate,
                                     const lst::TableMetadata& meta,
                                     CandidateStats* stats) const {
  // The control-plane target size (policy edits), the database quota
  // (commits to sibling tables), and access telemetry all change without
  // the table's snapshot moving; deriving them here keeps cache-hit and
  // index-hit output byte-identical to a fresh collection.
  stats->target_file_size_bytes = meta.target_file_size_bytes();
  if (control_plane_ != nullptr) {
    stats->target_file_size_bytes =
        control_plane_->GetPolicy(candidate.table).target_file_size_bytes;
  }

  auto db = catalog::SplitQualifiedName(candidate.table);
  if (db.ok()) {
    const storage::QuotaStatus quota = catalog_->DatabaseQuota(db->first);
    stats->quota_utilization = quota.utilization();
  }

  // Custom metrics (§4.1: "candidate access patterns and usage metrics —
  // information that may not be available in all systems").
  const catalog::TableAccessStats access =
      catalog_->GetAccessStats(candidate.table);
  stats->custom.SetInt("read_count", access.read_count);
  stats->custom.SetInt("last_read_at", access.last_read_at);
}

Result<std::vector<ObservedCandidate>> StatsCollector::CollectAll(
    const std::vector<Candidate>& candidates, ThreadPool* pool) const {
  const int64_t n = static_cast<int64_t>(candidates.size());
  std::vector<ObservedCandidate> out;
  out.reserve(candidates.size());
  if (pool != nullptr && pool->worker_count() > 1 && n > 1) {
    // Per-index slots + index-ordered merge: same output (and same first
    // error) as the sequential loop below, whatever the interleaving.
    std::vector<std::optional<CandidateStats>> slots(candidates.size());
    std::vector<Status> statuses(candidates.size(), Status::OK());
    pool->ParallelFor(n, [&](int64_t i) {
      auto collected = Collect(candidates[i]);
      if (collected.ok()) {
        slots[i] = std::move(*collected);
      } else {
        statuses[i] = collected.status();
      }
    });
    for (int64_t i = 0; i < n; ++i) {
      AUTOCOMP_RETURN_NOT_OK(statuses[i]);
    }
    for (int64_t i = 0; i < n; ++i) {
      out.push_back(ObservedCandidate{candidates[i], std::move(*slots[i])});
    }
    return out;
  }
  for (const Candidate& c : candidates) {
    AUTOCOMP_ASSIGN_OR_RETURN(CandidateStats stats, Collect(c));
    out.push_back(ObservedCandidate{c, std::move(stats)});
  }
  return out;
}

CachingStatsCollector::CachingStatsCollector(
    catalog::Catalog* catalog, const catalog::ControlPlane* control_plane,
    const Clock* clock, int64_t capacity)
    : CachingStatsCollector(catalog, control_plane, clock, nullptr,
                            capacity) {}

CachingStatsCollector::CachingStatsCollector(
    catalog::Catalog* catalog, const catalog::ControlPlane* control_plane,
    const Clock* clock, std::shared_ptr<const StatsCollector> base,
    int64_t capacity)
    : StatsCollector(catalog, control_plane, clock),
      listener_catalog_(catalog),
      base_(std::move(base)),
      capacity_(capacity) {
  listener_id_ = listener_catalog_->AddCommitListener(
      [this](const catalog::CommitEvent& event) {
        InvalidateTable(event.table);
      });
}

CachingStatsCollector::~CachingStatsCollector() {
  listener_catalog_->RemoveCommitListener(listener_id_);
}

void CachingStatsCollector::TouchLocked(Entry& entry,
                                        const std::string& key) const {
  (void)key;
  lru_.splice(lru_.begin(), lru_, entry.lru_it);
}

Result<CandidateStats> CachingStatsCollector::Collect(
    const Candidate& candidate) const {
  AUTOCOMP_ASSIGN_OR_RETURN(lst::TableMetadataPtr meta,
                            catalog_->LoadTable(candidate.table));
  const std::string key = candidate.id();
  std::optional<CandidateStats> hit;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = cache_.find(key);
    if (it != cache_.end() &&
        it->second.snapshot_id == meta->current_snapshot_id()) {
      ++hits_;
      TouchLocked(it->second, key);
      hit = it->second.stats;
    } else {
      ++misses_;
    }
  }
  if (hit.has_value()) {
    // Volatile inputs are re-read outside the lock (catalog reads only).
    RefreshVolatile(candidate, *meta, &*hit);
    return std::move(*hit);
  }

  // Miss: collect without holding the lock so concurrent misses on other
  // candidates overlap — through the base collector (index path) when
  // layered, the plain rescan otherwise. Commits never race collection
  // in this codebase (the pipeline observes, then acts), so the entry we
  // store below still describes `meta`'s snapshot.
  AUTOCOMP_ASSIGN_OR_RETURN(CandidateStats stats,
                            base_ != nullptr
                                ? base_->Collect(candidate)
                                : StatsCollector::Collect(candidate));
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = cache_.find(key);
    if (it != cache_.end()) {
      it->second.snapshot_id = meta->current_snapshot_id();
      it->second.stats = stats;
      TouchLocked(it->second, key);
    } else {
      lru_.push_front(key);
      Entry entry;
      entry.snapshot_id = meta->current_snapshot_id();
      entry.stats = stats;
      entry.lru_it = lru_.begin();
      cache_.emplace(key, std::move(entry));
      if (capacity_ > 0 && static_cast<int64_t>(cache_.size()) > capacity_) {
        cache_.erase(lru_.back());
        lru_.pop_back();
      }
    }
  }
  return stats;
}

int64_t CachingStatsCollector::hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

int64_t CachingStatsCollector::misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return misses_;
}

int64_t CachingStatsCollector::index_hits() const {
  return base_ != nullptr ? base_->index_hits() : 0;
}

int64_t CachingStatsCollector::index_fallbacks() const {
  return base_ != nullptr ? base_->index_fallbacks() : 0;
}

int64_t CachingStatsCollector::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int64_t>(cache_.size());
}

void CachingStatsCollector::Invalidate() const {
  std::lock_guard<std::mutex> lock(mu_);
  cache_.clear();
  lru_.clear();
}

void CachingStatsCollector::InvalidateTable(const std::string& table) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = cache_.lower_bound(table);
  while (it != cache_.end() &&
         it->first.compare(0, table.size(), table) == 0) {
    // Candidate ids for a table are "t", "t/<partition>", or "t@><snap>";
    // require one of those boundaries so "db.t" does not evict "db.t2".
    const std::string& key = it->first;
    const bool boundary = key.size() == table.size() ||
                          key[table.size()] == '/' || key[table.size()] == '@';
    if (boundary) {
      lru_.erase(it->second.lru_it);
      it = cache_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace autocomp::core
