/// \file binpack.h
/// \brief Bin-packing used by the compaction rewrite planner.
///
/// Iceberg's RewriteDataFiles groups input files into output files near
/// the target size; we implement the same first-fit-decreasing heuristic
/// plus an optimal DP variant used by the ablation benches.

#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace autocomp::format {

/// \brief One planned output file: indices into the input list.
struct Bin {
  std::vector<size_t> item_indices;
  int64_t total_bytes = 0;
};

/// \brief First-fit-decreasing packing of `sizes` into bins of
/// `capacity_bytes`. Items larger than the capacity get their own bin
/// (oversized files are rewritten as-is). Deterministic: ties broken by
/// original index.
std::vector<Bin> FirstFitDecreasing(const std::vector<int64_t>& sizes,
                                    int64_t capacity_bytes);

/// \brief Lower bound on the number of bins (ceil(total/capacity)).
int64_t MinBinsLowerBound(const std::vector<int64_t>& sizes,
                          int64_t capacity_bytes);

/// \brief Packing quality: mean fill fraction of non-oversized bins,
/// in [0, 1]. Empty input yields 1.
double MeanFillFraction(const std::vector<Bin>& bins, int64_t capacity_bytes);

}  // namespace autocomp::format
