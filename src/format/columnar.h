/// \file columnar.h
/// \brief Analytic model of a Parquet/ORC-like columnar file format.
///
/// The paper argues small files defeat columnar encoding and compression
/// (§1: "Small files storing a limited number of rows also reduce the
/// efficiency of columnar formats"). We capture this with an analytic
/// model: every file pays a fixed footer/metadata overhead, and the
/// achievable compression ratio decays below a critical size because
/// column chunks become too short for dictionary/RLE encoding to bite.

#pragma once

#include <cstdint>

#include "common/units.h"

namespace autocomp::format {

/// \brief Knobs for the columnar-format model.
struct ColumnarFormatOptions {
  /// Size of one row group; files hold >= 1 row group.
  int64_t row_group_bytes = 128 * kMiB;
  /// Fixed per-file footer + column-index metadata.
  int64_t footer_bytes = 64 * kKiB;
  /// Compression ratio achieved by a well-sized file (logical/stored).
  double peak_compression_ratio = 3.0;
  /// Below this logical size, encoding efficiency decays toward 1.0.
  int64_t efficient_chunk_bytes = 32 * kMiB;
  /// Bytes of one logical row (used to convert rows <-> bytes).
  int64_t bytes_per_record = 256;
};

/// \brief Pure functions mapping logical data to on-disk file sizes and
/// per-file scan overheads.
class ColumnarFileModel {
 public:
  explicit ColumnarFileModel(ColumnarFormatOptions options = {})
      : options_(options) {}

  const ColumnarFormatOptions& options() const { return options_; }

  /// Compression ratio achieved when `logical_bytes` of data share one
  /// file. Decays linearly from peak at `efficient_chunk_bytes` down to
  /// 1.0 for tiny files.
  double CompressionRatioFor(int64_t logical_bytes) const;

  /// On-disk size of a file holding `logical_bytes` of logical data
  /// (compression + footer overhead). Minimum is footer_bytes + 1.
  int64_t StoredBytesFor(int64_t logical_bytes) const;

  /// Inverse of StoredBytesFor under peak compression: logical bytes that
  /// fill a file of `stored_bytes` (used to plan writes toward a target
  /// on-disk file size).
  int64_t LogicalBytesForStored(int64_t stored_bytes) const;

  /// Number of row groups in a file of `stored_bytes`.
  int64_t RowGroupsFor(int64_t stored_bytes) const;

  /// Records held by `logical_bytes`.
  int64_t RecordsFor(int64_t logical_bytes) const {
    return logical_bytes / options_.bytes_per_record;
  }

  /// Aggregate on-disk waste (stored minus ideally-stored) of splitting
  /// `logical_bytes` across `num_files` files instead of packing them at
  /// target size. Quantifies the paper's storage-efficiency argument.
  int64_t FragmentationOverhead(int64_t logical_bytes, int64_t num_files) const;

 private:
  ColumnarFormatOptions options_;
};

}  // namespace autocomp::format
