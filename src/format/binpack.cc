#include "format/binpack.h"

#include <algorithm>
#include <cassert>
#include <numeric>

namespace autocomp::format {

std::vector<Bin> FirstFitDecreasing(const std::vector<int64_t>& sizes,
                                    int64_t capacity_bytes) {
  assert(capacity_bytes > 0);
  std::vector<size_t> order(sizes.size());
  std::iota(order.begin(), order.end(), size_t{0});
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return sizes[a] > sizes[b];
  });

  std::vector<Bin> bins;
  for (size_t idx : order) {
    const int64_t size = std::max<int64_t>(0, sizes[idx]);
    if (size >= capacity_bytes) {
      // Oversized: own bin, never shared.
      Bin bin;
      bin.item_indices.push_back(idx);
      bin.total_bytes = size;
      bins.push_back(std::move(bin));
      continue;
    }
    bool placed = false;
    for (Bin& bin : bins) {
      const bool oversized =
          bin.item_indices.size() == 1 &&
          sizes[bin.item_indices.front()] >= capacity_bytes;
      if (!oversized && bin.total_bytes + size <= capacity_bytes) {
        bin.item_indices.push_back(idx);
        bin.total_bytes += size;
        placed = true;
        break;
      }
    }
    if (!placed) {
      Bin bin;
      bin.item_indices.push_back(idx);
      bin.total_bytes = size;
      bins.push_back(std::move(bin));
    }
  }
  return bins;
}

int64_t MinBinsLowerBound(const std::vector<int64_t>& sizes,
                          int64_t capacity_bytes) {
  assert(capacity_bytes > 0);
  int64_t total = 0;
  for (int64_t s : sizes) total += std::max<int64_t>(0, s);
  return (total + capacity_bytes - 1) / capacity_bytes;
}

double MeanFillFraction(const std::vector<Bin>& bins, int64_t capacity_bytes) {
  assert(capacity_bytes > 0);
  double acc = 0;
  int64_t counted = 0;
  for (const Bin& bin : bins) {
    if (bin.total_bytes >= capacity_bytes) continue;  // oversized pass-through
    acc += static_cast<double>(bin.total_bytes) / capacity_bytes;
    ++counted;
  }
  return counted == 0 ? 1.0 : acc / counted;
}

}  // namespace autocomp::format
