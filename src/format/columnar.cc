#include "format/columnar.h"

#include <algorithm>
#include <cmath>

namespace autocomp::format {

double ColumnarFileModel::CompressionRatioFor(int64_t logical_bytes) const {
  if (logical_bytes <= 0) return 1.0;
  const double efficient =
      static_cast<double>(options_.efficient_chunk_bytes);
  const double peak = options_.peak_compression_ratio;
  if (static_cast<double>(logical_bytes) >= efficient) return peak;
  // Linear decay from peak at `efficient` to 1.0 at size 0.
  const double frac = static_cast<double>(logical_bytes) / efficient;
  return 1.0 + (peak - 1.0) * frac;
}

int64_t ColumnarFileModel::StoredBytesFor(int64_t logical_bytes) const {
  if (logical_bytes < 0) logical_bytes = 0;
  const double ratio = CompressionRatioFor(logical_bytes);
  const int64_t data_bytes = static_cast<int64_t>(
      std::llround(static_cast<double>(logical_bytes) / ratio));
  return std::max<int64_t>(options_.footer_bytes + 1,
                           data_bytes + options_.footer_bytes);
}

int64_t ColumnarFileModel::LogicalBytesForStored(int64_t stored_bytes) const {
  // Exact inverse of StoredBytesFor, honouring the size-dependent
  // compression ratio: small files were stored at a poor ratio, so they
  // hold less logical data than the peak ratio would suggest. Getting
  // this right is what makes merged outputs smaller than their inputs.
  const double d = static_cast<double>(
      std::max<int64_t>(0, stored_bytes - options_.footer_bytes));
  const double peak = options_.peak_compression_ratio;
  const double efficient = static_cast<double>(options_.efficient_chunk_bytes);
  // Data stored from a logical size at or above `efficient` compresses at
  // peak; the boundary in stored space is efficient/peak.
  if (d >= efficient / peak) {
    return static_cast<int64_t>(std::llround(d * peak));
  }
  // Below the boundary: ratio(L) = 1 + (peak-1)·L/E and d = L/ratio(L)
  // solve to L = d / (1 - d·(peak-1)/E).
  const double denom = 1.0 - d * (peak - 1.0) / efficient;
  return static_cast<int64_t>(std::llround(d / std::max(denom, 1e-9)));
}

int64_t ColumnarFileModel::RowGroupsFor(int64_t stored_bytes) const {
  if (stored_bytes <= 0) return 0;
  return std::max<int64_t>(
      1, (stored_bytes + options_.row_group_bytes - 1) /
             options_.row_group_bytes);
}

int64_t ColumnarFileModel::FragmentationOverhead(int64_t logical_bytes,
                                                 int64_t num_files) const {
  if (num_files <= 0 || logical_bytes <= 0) return 0;
  const int64_t per_file_logical = logical_bytes / num_files;
  const int64_t fragmented = num_files * StoredBytesFor(per_file_logical);
  const int64_t packed = StoredBytesFor(logical_bytes);
  return std::max<int64_t>(0, fragmented - packed);
}

}  // namespace autocomp::format
