/// \file fault_injector.h
/// \brief Seeded, counter-RNG-driven fault injection.
///
/// Every stochastic injection decision is a pure function of
/// (seed, site, resource, per-site hit index) via CounterRng — the same
/// construction the shard-parallel simulator uses for NameNode timeout
/// draws — so a run with faults enabled is bit-identical across thread
/// pool sizes and shard counts (NFR2): no draw depends on how events from
/// *other* tables or lanes interleave, only on how many times this site
/// was hit before, which is deterministic within a lane's serial
/// execution.
///
/// Two injection sources compose:
///  * a FaultSchedule scripts exact failures ("inject kind K at site S on
///    the k-th hit"), the workhorse of the differential tests;
///  * a FaultProfile draws failures with per-site probabilities, the
///    workhorse of the fuzz suite and the CLI's --fault-profile knob.
///
/// The disabled injector costs one predictable branch per site hit, so
/// production-shaped runs keep their fault hooks compiled in (the bench
/// guard in bench_sim_throughput tracks the armed-but-idle overhead
/// against a <2% target).

#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/blob.h"
#include "common/clock.h"
#include "common/status.h"
#include "fault/fault_sites.h"

namespace autocomp::obs {
class TraceRecorder;
}  // namespace autocomp::obs

namespace autocomp::fault {

/// \brief One probabilistic failure mode at a site.
struct SiteFault {
  double probability = 0;
  FaultKind kind = FaultKind::kNone;
};

/// \brief Per-site probabilistic failure modes. A site may carry several
/// kinds; each is drawn independently (first match in order wins).
struct FaultProfile {
  std::map<std::string, std::vector<SiteFault>, std::less<>> sites;

  bool empty() const { return sites.empty(); }
};

/// \brief Named profile presets for the CLI's --fault-profile flag:
///  * "none"      — armed but idle (zero-fault overhead measurements);
///  * "timeouts"  — storage read timeouts + occasional quota breaches;
///  * "conflicts" — commit CAS races with rare terminal aborts;
///  * "chaos"     — every site at once, including runner crashes and
///                  dropped/duplicated commit events.
/// Unknown names return an error listing the valid ones.
Result<FaultProfile> FaultProfileByName(std::string_view name);

/// \brief One scripted injection: fire `kind` on the `hit`-th arm of
/// `site` (1-based), optionally only when the resource (path, table)
/// contains `resource_substring`. When the filter is set, `hit` counts
/// only matching arms.
struct ScheduledFault {
  std::string site;
  uint64_t hit = 1;
  FaultKind kind = FaultKind::kNone;
  std::string resource_substring;
};

/// \brief A deterministic script of injections.
struct FaultSchedule {
  std::vector<ScheduledFault> entries;

  FaultSchedule& Add(std::string site, uint64_t hit, FaultKind kind,
                     std::string resource_substring = "") {
    entries.push_back(ScheduledFault{std::move(site), hit, kind,
                                     std::move(resource_substring)});
    return *this;
  }
};

/// \brief Injector configuration.
struct FaultInjectorOptions {
  /// Master switch. When false, Arm() is a single branch and nothing is
  /// counted — the zero-overhead path.
  bool enabled = false;
  /// Seed for the counter-based draws (the CLI's --fault-seed).
  uint64_t seed = 0x5eedfau;
  FaultProfile profile;
  FaultSchedule schedule;
};

/// \brief Per-site hit/injection accounting.
struct SiteCounters {
  int64_t hits = 0;
  int64_t injected = 0;
};

/// \brief Deterministic fault decision source, one per simulated
/// deployment (the shard-parallel fleet driver builds one per lane with a
/// lane-derived seed, so injections are independent of shard count).
///
/// Thread-safe: Arm() may be called from pipeline worker threads; the
/// fast path (disabled) takes no lock.
class FaultInjector {
 public:
  explicit FaultInjector(FaultInjectorOptions options = {});

  bool enabled() const { return options_.enabled; }
  const FaultInjectorOptions& options() const { return options_; }

  /// Deployment-wide gate under the master switch: while disarmed, Arm()
  /// returns kNone and counts nothing. Drivers disarm around workload
  /// setup and onboarding — scripted data loads treat failures as fatal,
  /// and injecting there would kill the run before it starts. Toggle only
  /// from serial sections (the boundary itself must be deterministic).
  void set_armed(bool armed) {
    armed_.store(armed, std::memory_order_relaxed);
  }
  bool armed() const { return armed_.load(std::memory_order_relaxed); }

  /// Counts one hit of `site` for `resource` and decides whether a fault
  /// fires. Returns kNone when nothing is injected. Scheduled entries are
  /// consulted before the probabilistic profile.
  ///
  /// Fast path: when neither the schedule nor the profile configures
  /// `site` — in particular for the armed-but-empty parity configuration
  /// — Arm() short-circuits before the lock, the hit counter, and any
  /// RNG or string work. Unconfigured sites therefore do not appear in
  /// Counters() and do not advance total_hits(); a site's hit stream is
  /// only observable when something could actually fire on it, which is
  /// also what keeps the armed-but-idle overhead inside its <2% budget.
  FaultKind Arm(std::string_view site, std::string_view resource);

  /// Canonical error Status for an armed kind (e.g. kTimeout maps to
  /// Status::TimedOut). The message names the site and resource so logs
  /// distinguish injected failures from organic ones.
  static Status ToStatus(FaultKind kind, std::string_view site,
                         std::string_view resource);

  /// Installs (or clears, with nullptr) a trace recorder. With one
  /// installed, every injected fault records a "fault.injected" instant
  /// (at TraceLevel::kFull) timestamped from `clock`, so the trace shows
  /// which draws actually fired — the counters only say how many.
  void SetTrace(obs::TraceRecorder* trace, const Clock* clock) {
    trace_ = trace;
    trace_clock_ = clock;
  }

  /// Snapshot of per-site counters (site -> hits/injections).
  std::map<std::string, SiteCounters> Counters() const;
  int64_t total_hits() const;
  int64_t total_injected() const;

  /// \name Lane checkpoint (DESIGN.md §10)
  /// Serializes the per-site hit/injection counters (including filtered
  /// hit streams) — the only mutable state. The injection *decisions*
  /// are pure functions of (seed, site, resource, hit index), so a
  /// restored injector resumes the exact draw stream. Arming is managed
  /// by the fleet driver, not checkpointed.
  /// @{
  void SaveState(common::BlobWriter* w) const;
  void RestoreState(common::BlobReader* r);
  /// @}

 private:
  struct SiteState {
    SiteCounters counters;
    /// Arms matching each schedule filter, for filtered hit counting.
    std::map<std::string, int64_t> filtered_hits;
  };

  void TraceInjection(std::string_view site, std::string_view resource,
                      FaultKind kind) const;

  /// True when the schedule or profile could ever fire at `site`.
  bool SiteConfigured(std::string_view site) const {
    return std::binary_search(configured_sites_.begin(),
                              configured_sites_.end(), site);
  }

  FaultInjectorOptions options_;
  /// Sites the schedule or profile names, sorted — the Arm() fast-path
  /// filter. Immutable after construction, so reads take no lock.
  std::vector<std::string> configured_sites_;
  std::atomic<bool> armed_{true};
  obs::TraceRecorder* trace_ = nullptr;
  const Clock* trace_clock_ = nullptr;
  mutable std::mutex mu_;
  std::map<std::string, SiteState, std::less<>> sites_;
};

}  // namespace autocomp::fault
