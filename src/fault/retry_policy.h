/// \file retry_policy.h
/// \brief Bounded retries with deterministic exponential backoff.
///
/// Retry delays are a pure function of (seed, key, attempt) via
/// CounterRng — no wall clock, no shared generator — so a retried run
/// replays bit-identically (NFR2) and the simulated backoff cost charged
/// to a work unit does not depend on scheduling. Jitter decorrelates
/// retry storms (the paper's §2 thundering-herd concern) without
/// sacrificing reproducibility.

#pragma once

#include <algorithm>
#include <cstdint>

#include "common/counter_rng.h"

namespace autocomp::fault {

/// \brief Knobs for a bounded exponential-backoff retry loop.
struct RetryPolicy {
  /// Total attempts including the first (1 = never retry).
  int max_attempts = 4;
  double base_backoff_seconds = 2.0;
  double max_backoff_seconds = 60.0;
  /// Backoff is scaled by a factor in [1 - jitter, 1 + jitter].
  double jitter_fraction = 0.25;
  /// Seed for the jitter draw (keyed per retry loop by `key`).
  uint64_t seed = 7;

  /// Deterministic backoff before retry number `attempt` (1-based: the
  /// delay after the attempt-th failure). Doubles per attempt, clamps at
  /// max_backoff_seconds, then jitters.
  double BackoffSeconds(uint64_t key, int attempt) const {
    if (attempt < 1) attempt = 1;
    double delay = base_backoff_seconds;
    for (int i = 1; i < attempt && delay < max_backoff_seconds; ++i) {
      delay *= 2.0;
    }
    delay = std::min(delay, max_backoff_seconds);
    if (jitter_fraction > 0) {
      const double u = CounterRng::Uniform01(
          seed, key, static_cast<uint64_t>(attempt));
      delay *= 1.0 + jitter_fraction * (2.0 * u - 1.0);
    }
    return delay;
  }
};

}  // namespace autocomp::fault
