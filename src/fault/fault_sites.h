/// \file fault_sites.h
/// \brief Named fault-injection sites and the fault kinds they admit.
///
/// AutoComp's production story (paper §2, §5, §7) is defined by failure:
/// NameNode RPC timeouts under object-count pressure, namespace-quota
/// breaches, optimistic-concurrency commit conflicts between writers and
/// compaction jobs (Table 1), the Iceberg v1.2.0 quirk where concurrent
/// rewrites of disjoint partitions still abort (§4.4), and compaction
/// jobs dying mid-rewrite with half their outputs written. Each of those
/// failure modes is a *site*: a named, counted injection point threaded
/// through the stack. The injector decides, deterministically, whether
/// the k-th hit of a site fails and how.

#pragma once

namespace autocomp::fault {

/// NameNode::Open — a read RPC times out on demand (in addition to the
/// load-model timeouts).
inline constexpr const char* kSiteStorageOpen = "storage.open";
/// NameNode::CreateFile — the create is rejected as a namespace-quota
/// breach even though the quota arithmetic would admit it.
inline constexpr const char* kSiteStorageCreate = "storage.create";
/// lst::Transaction::Commit — the commit is lost to an (injected)
/// concurrent writer: either a retryable CAS race or a terminal
/// validation rejection, including the disjoint-rewrite v1.2.0 quirk.
inline constexpr const char* kSiteLstCommit = "lst.commit";
/// engine::CompactionRunner — the rewrite job crashes mid-write, leaving
/// partial outputs the runner must clean up (and may retry).
inline constexpr const char* kSiteEngineRunner = "engine.runner";
/// lst::ExpireSnapshots — the retention service's lineage-truncation
/// commit loses its CAS to a concurrent writer and must recompute the
/// expiry set on the new version. A separate site from lst.commit so
/// scripted k-th-hit schedules on user/compaction commits are not
/// shifted by maintenance sweeps.
inline constexpr const char* kSiteRetentionExpire = "retention.expire";
/// catalog::Catalog commit notification — the commit event is dropped
/// (never delivered to listeners) or delivered twice.
inline constexpr const char* kSiteCatalogCommitEvent = "catalog.commit_event";

/// \brief What an armed fault does at its site.
enum class FaultKind : int {
  kNone = 0,
  /// storage.open: the read times out.
  kTimeout,
  /// storage.create: the create fails with ResourceExhausted.
  kQuotaExceeded,
  /// lst.commit: a compare-and-swap race — retryable; a rebase+retry
  /// converges to the same end state.
  kCasRaceConflict,
  /// lst.commit: a validation rejection — terminal; the operation is
  /// genuinely lost.
  kValidationAbort,
  /// lst.commit: the Iceberg v1.2.0 quirk (§4.4) — a rewrite aborts as
  /// if strict table-level validation were in force, even when
  /// partition-aware validation would admit it. Only arms on rewrites.
  kDisjointRewriteAbort,
  /// engine.runner: the compaction job dies mid-write; already-written
  /// outputs must be abandoned and deleted.
  kRunnerCrash,
  /// catalog.commit_event: the commit event is silently dropped.
  kDropEvent,
  /// catalog.commit_event: the commit event is delivered twice.
  kDuplicateEvent,
};

/// Human-readable name of a FaultKind (e.g. "cas_race_conflict").
const char* FaultKindName(FaultKind kind);

}  // namespace autocomp::fault
