/// \file invariant_checker.h
/// \brief Whole-deployment safety invariants, checked between fault
/// injections.
///
/// The fault suites hammer the commit path with injected CAS races,
/// runner crashes and storage failures; this checker is the oracle that
/// says the wreckage is still a consistent deployment. It extends the
/// per-table lst::ValidateHistory pass with cross-cutting checks no
/// single table can see: live files must exist in storage, no file may
/// be live in two tables, NameNode object/quota accounting must agree
/// with a from-scratch recount, and database quota usage must cover the
/// catalog's live set. The fleet simulator runs it after every hour
/// epoch when FleetSimOptions::check_invariants is set.

#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/status.h"

namespace autocomp::catalog {
class Catalog;
}  // namespace autocomp::catalog

namespace autocomp::fault {

/// \brief One violated deployment invariant.
struct InvariantViolation {
  /// Qualified "db.table" name; empty for storage/fleet-level checks.
  std::string table;
  std::string message;
};

struct InvariantCheckerOptions {
  /// Also flag storage data files that no table's current snapshot
  /// references. Off by default: historical snapshots legitimately pin
  /// removed files until retention runs, so this is only sound after
  /// snapshot expiry + orphan deletion.
  bool check_orphans = false;
};

/// \brief Cross-layer consistency oracle over a catalog + its storage.
class InvariantChecker {
 public:
  explicit InvariantChecker(InvariantCheckerOptions options = {});

  /// All violations found (empty = consistent). Uses only const,
  /// RPC-free storage access (Stat/GetQuota) so checking never perturbs
  /// the load model or the deterministic RPC counters.
  std::vector<InvariantViolation> Check(catalog::Catalog& catalog) const;

  /// OK when consistent; Internal listing the first violations otherwise.
  Status CheckOrFail(catalog::Catalog& catalog) const;

 private:
  InvariantCheckerOptions options_;
};

/// \brief Content-shape digest of every table's current live set
/// ("db.table" -> digest). Deliberately path-free: retried compactions
/// may emit outputs under different file names while producing the same
/// logical table, so differential tests compare partitions, sizes and
/// record counts — what queries observe — rather than physical paths.
std::map<std::string, std::string> CatalogEndState(catalog::Catalog& catalog);

/// \brief Human-readable difference between two end states; empty when
/// they are identical.
std::string DiffEndStates(const std::map<std::string, std::string>& a,
                          const std::map<std::string, std::string>& b);

}  // namespace autocomp::fault
