#include "fault/fault_injector.h"

#include "common/counter_rng.h"
#include "obs/trace.h"

namespace autocomp::fault {

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNone:
      return "none";
    case FaultKind::kTimeout:
      return "timeout";
    case FaultKind::kQuotaExceeded:
      return "quota_exceeded";
    case FaultKind::kCasRaceConflict:
      return "cas_race_conflict";
    case FaultKind::kValidationAbort:
      return "validation_abort";
    case FaultKind::kDisjointRewriteAbort:
      return "disjoint_rewrite_abort";
    case FaultKind::kRunnerCrash:
      return "runner_crash";
    case FaultKind::kDropEvent:
      return "drop_event";
    case FaultKind::kDuplicateEvent:
      return "duplicate_event";
  }
  return "unknown";
}

Result<FaultProfile> FaultProfileByName(std::string_view name) {
  FaultProfile profile;
  if (name == "none") return profile;
  if (name == "timeouts") {
    profile.sites[kSiteStorageOpen] = {{0.05, FaultKind::kTimeout}};
    profile.sites[kSiteStorageCreate] = {{0.002, FaultKind::kQuotaExceeded}};
    return profile;
  }
  if (name == "conflicts") {
    profile.sites[kSiteLstCommit] = {{0.05, FaultKind::kCasRaceConflict},
                                     {0.005, FaultKind::kValidationAbort}};
    return profile;
  }
  if (name == "chaos") {
    profile.sites[kSiteStorageOpen] = {{0.05, FaultKind::kTimeout}};
    profile.sites[kSiteStorageCreate] = {{0.002, FaultKind::kQuotaExceeded}};
    profile.sites[kSiteLstCommit] = {
        {0.05, FaultKind::kCasRaceConflict},
        {0.005, FaultKind::kValidationAbort},
        {0.005, FaultKind::kDisjointRewriteAbort}};
    profile.sites[kSiteEngineRunner] = {{0.02, FaultKind::kRunnerCrash}};
    profile.sites[kSiteCatalogCommitEvent] = {
        {0.01, FaultKind::kDropEvent}, {0.01, FaultKind::kDuplicateEvent}};
    return profile;
  }
  return Status::InvalidArgument(
      "unknown fault profile: " + std::string(name) +
      " (valid: none, timeouts, conflicts, chaos)");
}

FaultInjector::FaultInjector(FaultInjectorOptions options)
    : options_(std::move(options)) {
  // Precompute the sites anything could ever fire at. Arm() consults this
  // sorted vector before taking the lock or counting, so the hot paths of
  // an armed-but-idle injector (empty profile, empty schedule) pay one
  // branch on an empty vector — the same order of cost as disabled.
  for (const ScheduledFault& entry : options_.schedule.entries) {
    configured_sites_.push_back(entry.site);
  }
  for (const auto& [site, faults] : options_.profile.sites) {
    for (const SiteFault& f : faults) {
      if (f.probability > 0 && f.kind != FaultKind::kNone) {
        configured_sites_.push_back(site);
        break;
      }
    }
  }
  std::sort(configured_sites_.begin(), configured_sites_.end());
  configured_sites_.erase(
      std::unique(configured_sites_.begin(), configured_sites_.end()),
      configured_sites_.end());
}

FaultKind FaultInjector::Arm(std::string_view site,
                             std::string_view resource) {
  if (!options_.enabled) return FaultKind::kNone;
  if (!armed_.load(std::memory_order_relaxed)) return FaultKind::kNone;
  if (!SiteConfigured(site)) return FaultKind::kNone;
  std::lock_guard<std::mutex> lock(mu_);
  auto site_it = sites_.find(site);
  if (site_it == sites_.end()) {
    site_it = sites_.emplace(std::string(site), SiteState{}).first;
  }
  SiteState& state = site_it->second;
  ++state.counters.hits;

  // Filtered schedule entries count only arms whose resource matches the
  // filter; advance each distinct matching filter once per arm.
  for (const ScheduledFault& entry : options_.schedule.entries) {
    if (entry.site != site || entry.resource_substring.empty()) continue;
    if (resource.find(entry.resource_substring) == std::string_view::npos) {
      continue;
    }
    bool counted_already = false;
    for (const ScheduledFault& prior : options_.schedule.entries) {
      if (&prior == &entry) break;
      if (prior.site == site &&
          prior.resource_substring == entry.resource_substring) {
        counted_already = true;
        break;
      }
    }
    if (!counted_already) ++state.filtered_hits[entry.resource_substring];
  }

  // Scheduled injections take priority (exact, scriptable).
  for (const ScheduledFault& entry : options_.schedule.entries) {
    if (entry.site != site || entry.kind == FaultKind::kNone) continue;
    int64_t relevant_hits = state.counters.hits;
    if (!entry.resource_substring.empty()) {
      if (resource.find(entry.resource_substring) ==
          std::string_view::npos) {
        continue;
      }
      relevant_hits = state.filtered_hits[entry.resource_substring];
    }
    if (static_cast<uint64_t>(relevant_hits) == entry.hit) {
      ++state.counters.injected;
      TraceInjection(site, resource, entry.kind);
      return entry.kind;
    }
  }

  // Probabilistic profile: one independent counter-based draw per
  // configured kind, keyed by (site, resource, kind) so streams never
  // alias across sites or kinds.
  const auto profile_it = options_.profile.sites.find(site);
  if (profile_it != options_.profile.sites.end()) {
    for (size_t i = 0; i < profile_it->second.size(); ++i) {
      const SiteFault& f = profile_it->second[i];
      if (f.probability <= 0 || f.kind == FaultKind::kNone) continue;
      const uint64_t key = CounterRng::Mix(CounterRng::HashString(site)) ^
                           CounterRng::Mix(CounterRng::HashString(resource)) ^
                           static_cast<uint64_t>(f.kind);
      if (CounterRng::Uniform01(
              options_.seed, key,
              static_cast<uint64_t>(state.counters.hits)) < f.probability) {
        ++state.counters.injected;
        TraceInjection(site, resource, f.kind);
        return f.kind;
      }
    }
  }
  return FaultKind::kNone;
}

void FaultInjector::TraceInjection(std::string_view site,
                                   std::string_view resource,
                                   FaultKind kind) const {
  if (trace_ == nullptr || trace_clock_ == nullptr ||
      !trace_->enabled(obs::TraceLevel::kFull)) {
    return;
  }
  trace_->Instant(obs::TraceLevel::kFull, obs::SpanCategory::kFault,
                  "fault.injected", trace_clock_->Now(),
                  "site=" + std::string(site) + ";resource=" +
                      std::string(resource) + ";kind=" + FaultKindName(kind));
}

Status FaultInjector::ToStatus(FaultKind kind, std::string_view site,
                               std::string_view resource) {
  const std::string detail = std::string("injected ") + FaultKindName(kind) +
                             " at " + std::string(site) + " on " +
                             std::string(resource);
  switch (kind) {
    case FaultKind::kNone:
      return Status::OK();
    case FaultKind::kTimeout:
      return Status::TimedOut(detail);
    case FaultKind::kQuotaExceeded:
      return Status::ResourceExhausted(detail);
    case FaultKind::kCasRaceConflict:
    case FaultKind::kValidationAbort:
    case FaultKind::kDisjointRewriteAbort:
      return Status::CommitConflict(detail);
    case FaultKind::kRunnerCrash:
      return Status::Unavailable(detail);
    case FaultKind::kDropEvent:
    case FaultKind::kDuplicateEvent:
      return Status::Internal(detail);  // never surfaced as a Status
  }
  return Status::Internal(detail);
}

std::map<std::string, SiteCounters> FaultInjector::Counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::map<std::string, SiteCounters> out;
  for (const auto& [site, state] : sites_) out.emplace(site, state.counters);
  return out;
}

int64_t FaultInjector::total_hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  int64_t total = 0;
  for (const auto& [site, state] : sites_) total += state.counters.hits;
  return total;
}

int64_t FaultInjector::total_injected() const {
  std::lock_guard<std::mutex> lock(mu_);
  int64_t total = 0;
  for (const auto& [site, state] : sites_) total += state.counters.injected;
  return total;
}

void FaultInjector::SaveState(common::BlobWriter* w) const {
  std::lock_guard<std::mutex> lock(mu_);
  w->WriteU64(sites_.size());
  for (const auto& [site, state] : sites_) {
    w->WriteString(site);
    w->WriteI64(state.counters.hits);
    w->WriteI64(state.counters.injected);
    w->WriteU64(state.filtered_hits.size());
    for (const auto& [filter, hits] : state.filtered_hits) {
      w->WriteString(filter);
      w->WriteI64(hits);
    }
  }
}

void FaultInjector::RestoreState(common::BlobReader* r) {
  std::lock_guard<std::mutex> lock(mu_);
  sites_.clear();
  const uint64_t site_count = r->ReadU64();
  for (uint64_t i = 0; i < site_count; ++i) {
    std::string site = r->ReadString();
    SiteState state;
    state.counters.hits = r->ReadI64();
    state.counters.injected = r->ReadI64();
    const uint64_t filters = r->ReadU64();
    for (uint64_t j = 0; j < filters; ++j) {
      std::string filter = r->ReadString();
      state.filtered_hits[std::move(filter)] = r->ReadI64();
    }
    sites_.emplace(std::move(site), std::move(state));
  }
}

}  // namespace autocomp::fault
