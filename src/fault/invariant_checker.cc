#include "fault/invariant_checker.h"

#include <algorithm>
#include <set>
#include <sstream>

#include "catalog/catalog.h"
#include "lst/history_validator.h"
#include "storage/filesystem.h"

namespace autocomp::fault {

InvariantChecker::InvariantChecker(InvariantCheckerOptions options)
    : options_(options) {}

std::vector<InvariantViolation> InvariantChecker::Check(
    catalog::Catalog& catalog) const {
  std::vector<InvariantViolation> out;
  storage::DistributedFileSystem* dfs = catalog.filesystem();

  // Which table owns each live path (detects cross-table duplication),
  // and per-database live file tallies (for the quota lower bound).
  std::map<std::string, std::string> live_owner;
  std::map<std::string, int64_t> db_live_files;

  for (const std::string& name : catalog.ListAllTables()) {
    auto meta_or = catalog.LoadTable(name);
    if (!meta_or.ok()) {
      out.push_back({name, "LoadTable failed: " + meta_or.status().ToString()});
      continue;
    }
    const lst::TableMetadataPtr& meta = meta_or.value();

    // Per-table history invariants: linear acyclic lineage, replayable
    // live sets, consistent summary counters.
    for (const lst::HistoryViolation& v : lst::ValidateHistory(*meta)) {
      std::ostringstream msg;
      msg << "history invariant (snapshot " << v.snapshot_id
          << "): " << v.message;
      out.push_back({name, msg.str()});
    }

    const std::string db = name.substr(0, name.find('.'));
    meta->ForEachLiveFile([&](const lst::DataFile& f) {
      ++db_live_files[db];
      // No live-file loss: every referenced file must exist in storage
      // with the advertised size (Stat is const and RPC-free, so the
      // check cannot perturb the deterministic load model).
      auto info_or = dfs->Stat(f.path);
      if (!info_or.ok()) {
        out.push_back({name, "live file missing from storage: " + f.path});
      } else if (info_or.value().size_bytes != f.file_size_bytes) {
        std::ostringstream msg;
        msg << "live file size mismatch for " << f.path << ": metadata says "
            << f.file_size_bytes << " bytes, storage says "
            << info_or.value().size_bytes;
        out.push_back({name, msg.str()});
      }
      // Live-path uniqueness: DataFile::operator== keys on the path
      // alone (see data_file.h), so a path live twice — whether in two
      // tables or twice inside one table's current snapshot — would make
      // the metadata layer conflate distinct files. Assert both.
      auto [it, inserted] = live_owner.emplace(f.path, name);
      if (!inserted) {
        if (it->second == name) {
          out.push_back({name, "file " + f.path +
                                   " is live twice in the current snapshot"});
        } else {
          out.push_back({name, "file " + f.path + " is live in both " +
                                   it->second + " and " + name});
        }
      }
    });
  }

  // NameNode bookkeeping must agree with a from-scratch recount of its
  // own namespace (object counts, per-directory tallies).
  if (Status audit = dfs->AuditAccounting(); !audit.ok()) {
    out.push_back({"", "storage accounting audit: " + audit.ToString()});
  }

  // Quota accounting: a database's used_objects counts its files and
  // directories, so it can never undercount the catalog's live set.
  for (const std::string& db : catalog.ListDatabases()) {
    const storage::QuotaStatus quota = catalog.DatabaseQuota(db);
    const int64_t live = db_live_files[db];
    if (quota.used_objects < live) {
      std::ostringstream msg;
      msg << "database " << db << " quota usage " << quota.used_objects
          << " undercounts its " << live << " live files";
      out.push_back({"", msg.str()});
    }
  }

  if (options_.check_orphans) {
    for (const std::string& db : catalog.ListDatabases()) {
      const std::string root = catalog::Catalog::DatabaseLocation(db);
      for (int s = 0; s < dfs->num_shards(); ++s) {
        dfs->shard(s).ForEachFile([&](const storage::FileInfo& info) {
          if (info.path.rfind(root + "/", 0) != 0) return;
          // Metadata objects are catalog-owned, not table-live.
          if (info.path.find("/metadata/") != std::string::npos) return;
          if (live_owner.find(info.path) == live_owner.end()) {
            out.push_back({"", "orphan data file in storage: " + info.path});
          }
        });
      }
    }
  }

  return out;
}

Status InvariantChecker::CheckOrFail(catalog::Catalog& catalog) const {
  std::vector<InvariantViolation> violations = Check(catalog);
  if (violations.empty()) return Status::OK();
  std::ostringstream msg;
  msg << violations.size() << " invariant violation(s):";
  const size_t limit = std::min<size_t>(violations.size(), 5);
  for (size_t i = 0; i < limit; ++i) {
    msg << " [" << (violations[i].table.empty() ? "fleet" : violations[i].table)
        << "] " << violations[i].message << ";";
  }
  return Status::Internal(msg.str());
}

std::map<std::string, std::string> CatalogEndState(catalog::Catalog& catalog) {
  std::map<std::string, std::string> out;
  for (const std::string& name : catalog.ListAllTables()) {
    auto meta_or = catalog.LoadTable(name);
    if (!meta_or.ok()) {
      out[name] = "load-error: " + meta_or.status().ToString();
      continue;
    }
    const lst::TableMetadataPtr& meta = meta_or.value();
    // Multiset of (partition, size, records) — the query-visible content
    // shape, independent of output file naming.
    std::multiset<std::string> shapes;
    meta->ForEachLiveFile([&](const lst::DataFile& f) {
      std::ostringstream s;
      s << f.partition << "|" << f.file_size_bytes << "|" << f.record_count
        << "|" << (f.content == lst::FileContent::kData ? "d" : "x");
      shapes.insert(s.str());
    });
    std::ostringstream digest;
    digest << "files=" << meta->live_file_count()
           << " bytes=" << meta->live_bytes() << " [";
    for (const std::string& s : shapes) digest << s << ",";
    digest << "]";
    out[name] = digest.str();
  }
  return out;
}

std::string DiffEndStates(const std::map<std::string, std::string>& a,
                          const std::map<std::string, std::string>& b) {
  std::ostringstream why;
  for (const auto& [name, digest] : a) {
    auto it = b.find(name);
    if (it == b.end()) {
      why << "table " << name << " only in first state; ";
    } else if (it->second != digest) {
      why << "table " << name << " differs: '" << digest << "' vs '"
          << it->second << "'; ";
    }
  }
  for (const auto& [name, digest] : b) {
    if (a.find(name) == a.end()) {
      why << "table " << name << " only in second state; ";
    }
  }
  return why.str();
}

}  // namespace autocomp::fault
