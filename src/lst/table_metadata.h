/// \file table_metadata.h
/// \brief Immutable, versioned table metadata (the object a catalog swaps
/// atomically on every commit).

#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/config.h"
#include "common/status.h"
#include "common/units.h"
#include "lst/manifest.h"
#include "lst/partition.h"
#include "lst/snapshot.h"
#include "lst/types.h"

namespace autocomp::fault {
class FaultInjector;
}  // namespace autocomp::fault

namespace autocomp::obs {
class TraceRecorder;
}  // namespace autocomp::obs

namespace autocomp::lst {

class TableMetadata;
using TableMetadataPtr = std::shared_ptr<const TableMetadata>;

/// Well-known table property keys.
inline constexpr const char* kPropTargetFileSizeBytes =
    "write.target-file-size-bytes";
inline constexpr const char* kPropMaxManifests =
    "commit.manifest.max-count";

/// \brief All state of one table at one version.
///
/// Instances are immutable; every commit builds a successor via Builder
/// and the catalog CAS-swaps the pointer. Snapshot history is retained
/// until ExpireSnapshots trims it.
class TableMetadata {
 public:
  /// \brief Mutating construction helper; the only way to make metadata.
  class Builder;

  const std::string& name() const { return name_; }
  const std::string& location() const { return location_; }
  const Schema& schema() const { return schema_; }
  const PartitionSpec& partition_spec() const { return spec_; }
  const Config& properties() const { return properties_; }

  /// Monotonic metadata version; the catalog's CAS key.
  int64_t version() const { return version_; }
  SimTime created_at() const { return created_at_; }
  SimTime last_updated_at() const { return last_updated_at_; }

  const std::vector<Snapshot>& snapshots() const { return snapshots_; }
  int64_t current_snapshot_id() const { return current_snapshot_id_; }
  /// nullptr when the table has no snapshot yet.
  const Snapshot* current_snapshot() const;
  const Snapshot* FindSnapshot(int64_t snapshot_id) const;

  /// Snapshots committed strictly after `snapshot_id` on the current
  /// lineage (oldest first). Used by conflict validation.
  std::vector<const Snapshot*> SnapshotsAfter(int64_t snapshot_id) const;

  /// Live data files of the current snapshot, optionally restricted to
  /// one partition key. Empty when no snapshot.
  std::vector<DataFile> LiveFiles(
      const std::optional<std::string>& partition = std::nullopt) const;

  /// Zero-copy visitation of the current snapshot's live files,
  /// optionally restricted to one partition key. Unlike LiveFiles() this
  /// never materializes DataFile copies — the hot path for fleet-scale
  /// observation and commit validation, where only a scan is needed.
  void ForEachLiveFile(
      const std::function<void(const DataFile&)>& fn,
      const std::optional<std::string>& partition = std::nullopt) const;

  /// True if `path` is live in the current snapshot.
  bool IsLive(const std::string& path) const;

  /// Distinct partition keys present in the current snapshot.
  std::vector<std::string> LivePartitions() const;

  int64_t live_file_count() const;
  int64_t live_bytes() const;

  /// Next ids used by Builder when appending commits.
  int64_t next_snapshot_id() const { return next_snapshot_id_; }
  int64_t next_manifest_id() const { return next_manifest_id_; }
  int64_t next_sequence_number() const { return next_sequence_number_; }

  /// Target on-disk file size for writes/compaction; falls back to 512MiB
  /// (the paper's target, §2).
  int64_t target_file_size_bytes() const;

  /// Per-lineage manifest allocator: shared partition-key interner plus
  /// the recycled-buffer pool. Successor versions built via
  /// Builder(base) inherit it, so every manifest in a table's history
  /// interns partition keys into one arena. Never nullptr.
  const std::shared_ptr<ManifestFactory>& manifest_factory() const {
    return manifest_factory_;
  }

 private:
  friend class Builder;
  TableMetadata() = default;

  std::string name_;
  std::string location_;
  Schema schema_;
  PartitionSpec spec_;
  Config properties_;
  int64_t version_ = 0;
  SimTime created_at_ = 0;
  SimTime last_updated_at_ = 0;
  std::vector<Snapshot> snapshots_;
  int64_t current_snapshot_id_ = 0;  // 0 = none
  int64_t next_snapshot_id_ = 1;
  int64_t next_manifest_id_ = 1;
  int64_t next_sequence_number_ = 1;
  std::shared_ptr<ManifestFactory> manifest_factory_;
};

/// \brief Builds a new (or successor) TableMetadata.
class TableMetadata::Builder {
 public:
  /// Starts a fresh table definition.
  Builder(std::string name, std::string location, Schema schema,
          PartitionSpec spec);

  /// Starts from an existing version; the result's version is base+1.
  explicit Builder(const TableMetadata& base);

  Builder& SetProperties(Config properties);
  Builder& SetProperty(const std::string& key, const std::string& value);
  Builder& SetCreatedAt(SimTime t);
  Builder& SetLastUpdatedAt(SimTime t);

  /// Appends a snapshot and makes it current. The snapshot's id, sequence
  /// number and parent must have been allocated from this builder via
  /// AllocateSnapshotId()/AllocateSequenceNumber().
  Builder& AddSnapshot(Snapshot snapshot);

  /// Replaces the retained snapshot list (used by snapshot expiry). The
  /// current snapshot must be retained.
  Builder& SetSnapshots(std::vector<Snapshot> snapshots);

  int64_t AllocateSnapshotId();
  int64_t AllocateManifestId();
  int64_t AllocateSequenceNumber();

  /// Allocates an id and builds a manifest through the lineage's
  /// ManifestFactory: shared partition interner, pooled file vectors.
  /// All commit paths construct manifests through this.
  ManifestPtr NewManifest(std::vector<DataFile> files);

  /// A (possibly recycled) empty buffer to assemble file lists into;
  /// pairs with NewManifest so steady-state commits reuse capacity.
  std::vector<DataFile> TakeFileBuffer();

  /// Deserialization-only: restore the exact version and id counters of
  /// a persisted metadata document (normal commits never call these).
  Builder& RestoreVersion(int64_t version);
  Builder& RestoreCounters(int64_t next_snapshot_id, int64_t next_manifest_id,
                           int64_t next_sequence_number);
  /// Deserialization-only: install the factory the restored manifests
  /// were built through, so the revived lineage keeps one shared
  /// partition interner instead of per-manifest arenas.
  Builder& RestoreManifestFactory(std::shared_ptr<ManifestFactory> factory);

  Result<TableMetadataPtr> Build();

 private:
  TableMetadata meta_;
  bool built_ = false;
};

struct CommitDelta;

/// \brief Abstract metadata store: the commit point of the system.
///
/// Implemented by catalog::Catalog. A commit succeeds only if the table's
/// version still equals `base_version` (compare-and-swap) — this is where
/// write-write conflicts surface (Table 1 in the paper).
class MetadataStore {
 public:
  virtual ~MetadataStore() = default;

  virtual Result<TableMetadataPtr> LoadTable(const std::string& name) const = 0;

  /// Atomically replaces table metadata iff version == base_version.
  /// Returns CommitConflict when the version moved.
  virtual Status CommitTable(const std::string& name, int64_t base_version,
                             TableMetadataPtr new_metadata) = 0;

  /// CommitTable plus the live-set delta the commit produced (see
  /// commit_delta.h). Transactions commit through this entry point so
  /// stores can feed incremental consumers; the default forwards to
  /// CommitTable, dropping the delta — stores that do not track deltas
  /// need not change.
  virtual Status CommitTableWithDelta(const std::string& name,
                                      int64_t base_version,
                                      TableMetadataPtr new_metadata,
                                      const CommitDelta& delta) {
    (void)delta;
    return CommitTable(name, base_version, std::move(new_metadata));
  }

  /// Fault injector armed on this store's commit path, if any.
  /// Transactions created against this store arm fault::kSiteLstCommit
  /// through it (injected CAS races and validation aborts); nullptr means
  /// faults are off. Stores wired into a fault harness override this.
  virtual fault::FaultInjector* fault_injector() const { return nullptr; }

  /// Trace recorder observing this store's commit path, if any.
  /// Transactions created against this store record their commit
  /// outcomes through it (see obs/trace.h); nullptr means tracing is
  /// off. Stores wired into a traced environment override this.
  virtual obs::TraceRecorder* trace_recorder() const { return nullptr; }
};

/// \brief Merges manifests so that no more than `max_manifests` remain,
/// coalescing the smallest ones first (Iceberg's manifest-merge-on-write).
/// Allocates new manifest ids via `builder`.
ManifestList MaybeMergeManifests(ManifestList manifests, int64_t max_manifests,
                                 TableMetadata::Builder* builder);

}  // namespace autocomp::lst
