/// \file metadata_tables.h
/// \brief Read-only "metadata tables" (Iceberg-style) over table state.
///
/// The paper's deployment pulls compaction statistics from Iceberg
/// metadata tables [ref 9]. AutoComp's observe phase consumes these rows;
/// keeping them as a separate query surface (instead of poking at
/// TableMetadata internals) preserves NFR3: any LST that can produce these
/// rows can plug into AutoComp.

#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/units.h"
#include "lst/table_metadata.h"

namespace autocomp::lst {

/// \brief One row of the `partitions` metadata table.
struct PartitionRow {
  std::string partition;  // empty for unpartitioned tables
  int64_t file_count = 0;
  int64_t total_bytes = 0;
  int64_t record_count = 0;
  int64_t smallest_file_bytes = 0;
  int64_t largest_file_bytes = 0;
  /// Most recent snapshot that touched this partition.
  SimTime last_modified_at = 0;

  double avg_file_bytes() const {
    return file_count > 0 ? static_cast<double>(total_bytes) / file_count : 0;
  }
};

/// \brief One row of the `snapshots` metadata table.
struct SnapshotRow {
  int64_t snapshot_id = 0;
  int64_t parent_snapshot_id = 0;
  SimTime committed_at = 0;
  std::string operation;
  int64_t added_files = 0;
  int64_t deleted_files = 0;
  int64_t added_bytes = 0;
};

/// \brief Summary row of the `manifests` metadata table.
struct ManifestRow {
  int64_t manifest_id = 0;
  int64_t file_count = 0;
  int64_t total_bytes = 0;
  int64_t partition_count = 0;
};

/// \brief Metadata-table queries over one metadata version.
class MetadataTables {
 public:
  explicit MetadataTables(TableMetadataPtr metadata)
      : metadata_(std::move(metadata)) {}

  /// `files`: all live data files of the current snapshot.
  std::vector<DataFile> Files() const { return metadata_->LiveFiles(); }

  /// `partitions`: per-partition aggregates over live files.
  std::vector<PartitionRow> Partitions() const;

  /// `snapshots`: commit history rows, oldest first.
  std::vector<SnapshotRow> Snapshots() const;

  /// `manifests`: current snapshot's manifests.
  std::vector<ManifestRow> Manifests() const;

  /// Files added by snapshots with id > `after_snapshot_id` that are still
  /// live (supports snapshot-scoped compaction candidates, §4.1).
  std::vector<DataFile> FilesAddedAfter(int64_t after_snapshot_id) const;

  /// Zero-copy variant of FilesAddedAfter: visits the matching files in
  /// place instead of materializing DataFile copies — the observe phase's
  /// snapshot-scope hot path.
  void ForEachFileAddedAfter(int64_t after_snapshot_id,
                             const std::function<void(const DataFile&)>& fn)
      const;

 private:
  TableMetadataPtr metadata_;
};

}  // namespace autocomp::lst
