/// \file snapshot.h
/// \brief Table snapshots: one per committed transaction.

#pragma once

#include <cstdint>
#include <memory>
#include <set>
#include <string>

#include "common/units.h"
#include "lst/manifest.h"

namespace autocomp::lst {

/// \brief Operation that produced a snapshot. Validation rules differ per
/// operation (see transaction.h).
enum class SnapshotOperation : int {
  kAppend,
  /// Logical row updates/deletes that replace specific files (CoW) or add
  /// delete files (MoR).
  kOverwrite,
  /// Data-file rewrite that preserves logical content (compaction).
  kReplace,
  kDelete,
};

const char* SnapshotOperationName(SnapshotOperation op);

/// \brief One committed version of a table.
struct Snapshot {
  int64_t snapshot_id = 0;
  /// 0 for the first snapshot.
  int64_t parent_snapshot_id = 0;
  int64_t sequence_number = 0;
  SimTime timestamp = 0;
  SnapshotOperation operation = SnapshotOperation::kAppend;
  ManifestList manifests;

  /// Commit summary (counts mirrored from Iceberg snapshot summaries).
  int64_t added_files = 0;
  int64_t deleted_files = 0;
  int64_t added_bytes = 0;
  int64_t deleted_bytes = 0;
  int64_t added_records = 0;

  /// Partitions written or rewritten by this commit; drives
  /// partition-aware conflict validation.
  std::set<std::string> touched_partitions;
  /// Paths removed from the live set by this commit (shared: snapshots are
  /// copied into every successor metadata version).
  std::shared_ptr<const std::set<std::string>> removed_paths;

  int64_t live_file_count() const {
    int64_t n = 0;
    for (const ManifestPtr& m : manifests) n += m->file_count();
    return n;
  }
  int64_t live_bytes() const {
    int64_t n = 0;
    for (const ManifestPtr& m : manifests) n += m->total_bytes();
    return n;
  }
};

}  // namespace autocomp::lst
