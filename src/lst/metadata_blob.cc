#include "lst/metadata_blob.h"

#include <map>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

namespace autocomp::lst {

namespace {

void FileToBlob(const DataFile& f, common::BlobWriter* w) {
  w->WriteString(f.path);
  w->WriteString(f.partition);
  w->WriteI32(static_cast<int32_t>(f.content));
  w->WriteI64(f.file_size_bytes);
  w->WriteI64(f.record_count);
  w->WriteBool(f.clustered);
  w->WriteI64(f.added_snapshot_id);
  w->WriteI64(f.sequence_number);
}

DataFile FileFromBlob(common::BlobReader* r) {
  DataFile f;
  f.path = r->ReadString();
  f.partition = r->ReadString();
  f.content = static_cast<FileContent>(r->ReadI32());
  f.file_size_bytes = r->ReadI64();
  f.record_count = r->ReadI64();
  f.clustered = r->ReadBool();
  f.added_snapshot_id = r->ReadI64();
  f.sequence_number = r->ReadI64();
  return f;
}

}  // namespace

void TableMetadataToBlob(const TableMetadata& metadata,
                         common::BlobWriter* w) {
  w->WriteString(metadata.name());
  w->WriteString(metadata.location());
  w->WriteI64(metadata.version());
  w->WriteI64(metadata.created_at());
  w->WriteI64(metadata.last_updated_at());
  w->WriteI64(metadata.current_snapshot_id());
  w->WriteI64(metadata.next_snapshot_id());
  w->WriteI64(metadata.next_manifest_id());
  w->WriteI64(metadata.next_sequence_number());

  const Schema& schema = metadata.schema();
  w->WriteI32(schema.schema_id());
  w->WriteU64(schema.fields().size());
  for (const Field& f : schema.fields()) {
    w->WriteI32(f.id);
    w->WriteString(f.name);
    w->WriteI32(static_cast<int32_t>(f.type));
    w->WriteBool(f.required);
  }

  const PartitionSpec& spec = metadata.partition_spec();
  w->WriteI32(spec.spec_id());
  w->WriteU64(spec.fields().size());
  for (const PartitionField& pf : spec.fields()) {
    w->WriteI32(pf.source_field_id);
    w->WriteI32(static_cast<int32_t>(pf.transform));
    w->WriteString(pf.name);
    w->WriteI32(pf.bucket_count);
  }

  const auto& properties = metadata.properties().entries();
  w->WriteU64(properties.size());
  for (const auto& [key, value] : properties) {
    w->WriteString(key);
    w->WriteString(value);
  }

  // Manifest pool: each distinct manifest once, in id order, exactly as
  // the JSON codec pools them (snapshots share unchanged manifests).
  std::map<int64_t, ManifestPtr> pool;
  for (const Snapshot& s : metadata.snapshots()) {
    for (const ManifestPtr& m : s.manifests) {
      pool.emplace(m->manifest_id(), m);
    }
  }
  w->WriteU64(pool.size());
  for (const auto& [id, manifest] : pool) {
    w->WriteI64(id);
    w->WriteU64(manifest->files().size());
    for (const DataFile& f : manifest->files()) FileToBlob(f, w);
  }

  w->WriteU64(metadata.snapshots().size());
  for (const Snapshot& s : metadata.snapshots()) {
    w->WriteI64(s.snapshot_id);
    w->WriteI64(s.parent_snapshot_id);
    w->WriteI64(s.sequence_number);
    w->WriteI64(s.timestamp);
    w->WriteI32(static_cast<int32_t>(s.operation));
    w->WriteI64(s.added_files);
    w->WriteI64(s.deleted_files);
    w->WriteI64(s.added_bytes);
    w->WriteI64(s.deleted_bytes);
    w->WriteI64(s.added_records);
    w->WriteU64(s.manifests.size());
    for (const ManifestPtr& m : s.manifests) w->WriteI64(m->manifest_id());
    w->WriteU64(s.touched_partitions.size());
    for (const std::string& p : s.touched_partitions) w->WriteString(p);
    if (s.removed_paths != nullptr) {
      w->WriteU64(s.removed_paths->size());
      for (const std::string& p : *s.removed_paths) w->WriteString(p);
    } else {
      w->WriteU64(0);
    }
  }
}

Result<TableMetadataPtr> TableMetadataFromBlob(common::BlobReader* r) {
  std::string name = r->ReadString();
  std::string location = r->ReadString();
  const int64_t version = r->ReadI64();
  const SimTime created_at = r->ReadI64();
  const SimTime last_updated_at = r->ReadI64();
  const int64_t current_id = r->ReadI64();
  const int64_t next_snapshot_id = r->ReadI64();
  const int64_t next_manifest_id = r->ReadI64();
  const int64_t next_sequence_number = r->ReadI64();

  const int32_t schema_id = r->ReadI32();
  std::vector<Field> fields(r->ReadU64());
  for (Field& f : fields) {
    f.id = r->ReadI32();
    f.name = r->ReadString();
    f.type = static_cast<FieldType>(r->ReadI32());
    f.required = r->ReadBool();
  }
  Schema schema(schema_id, std::move(fields));

  const int32_t spec_id = r->ReadI32();
  std::vector<PartitionField> spec_fields(r->ReadU64());
  for (PartitionField& pf : spec_fields) {
    pf.source_field_id = r->ReadI32();
    pf.transform = static_cast<Transform>(r->ReadI32());
    pf.name = r->ReadString();
    pf.bucket_count = r->ReadI32();
  }
  PartitionSpec spec(spec_id, std::move(spec_fields));

  TableMetadata::Builder builder(std::move(name), std::move(location),
                                 std::move(schema), std::move(spec));

  Config properties;
  const uint64_t property_count = r->ReadU64();
  for (uint64_t i = 0; i < property_count; ++i) {
    std::string key = r->ReadString();
    properties.Set(key, r->ReadString());
  }
  builder.SetProperties(std::move(properties));
  builder.SetCreatedAt(created_at);

  // Revive manifests through one shared factory so the restored lineage
  // interns partition keys into a single arena (see
  // TableMetadataFromJson, which this mirrors step for step).
  auto factory = std::make_shared<ManifestFactory>();
  builder.RestoreManifestFactory(factory);
  std::map<int64_t, ManifestPtr> pool;
  const uint64_t manifest_count = r->ReadU64();
  for (uint64_t i = 0; i < manifest_count; ++i) {
    const int64_t id = r->ReadI64();
    std::vector<DataFile> files(r->ReadU64());
    for (DataFile& f : files) f = FileFromBlob(r);
    pool.emplace(id, factory->Make(id, std::move(files)));
  }

  std::vector<Snapshot> snapshots(r->ReadU64());
  for (Snapshot& s : snapshots) {
    s.snapshot_id = r->ReadI64();
    s.parent_snapshot_id = r->ReadI64();
    s.sequence_number = r->ReadI64();
    s.timestamp = r->ReadI64();
    s.operation = static_cast<SnapshotOperation>(r->ReadI32());
    s.added_files = r->ReadI64();
    s.deleted_files = r->ReadI64();
    s.added_bytes = r->ReadI64();
    s.deleted_bytes = r->ReadI64();
    s.added_records = r->ReadI64();
    const uint64_t manifest_ids = r->ReadU64();
    for (uint64_t i = 0; i < manifest_ids; ++i) {
      const auto it = pool.find(r->ReadI64());
      if (it == pool.end()) {
        return Status::Internal("checkpoint references unknown manifest");
      }
      s.manifests.push_back(it->second);
    }
    const uint64_t touched = r->ReadU64();
    for (uint64_t i = 0; i < touched; ++i) {
      s.touched_partitions.insert(r->ReadString());
    }
    const uint64_t removed_count = r->ReadU64();
    if (removed_count > 0) {
      auto removed = std::make_shared<std::set<std::string>>();
      for (uint64_t i = 0; i < removed_count; ++i) {
        removed->insert(r->ReadString());
      }
      s.removed_paths = std::move(removed);
    }
  }
  if (!snapshots.empty()) {
    Snapshot current = std::move(snapshots.back());
    snapshots.pop_back();
    builder.SetSnapshots(std::move(snapshots));
    builder.AddSnapshot(std::move(current));
  }
  builder.SetLastUpdatedAt(last_updated_at);
  builder.RestoreVersion(version);
  builder.RestoreCounters(next_snapshot_id, next_manifest_id,
                          next_sequence_number);
  if (!r->ok()) return Status::Internal("truncated metadata checkpoint");
  AUTOCOMP_ASSIGN_OR_RETURN(TableMetadataPtr meta, builder.Build());
  if (meta->current_snapshot_id() != current_id) {
    return Status::Internal(
        "checkpoint current-snapshot-id does not match the last snapshot");
  }
  return meta;
}

}  // namespace autocomp::lst
