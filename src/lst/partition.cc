#include "lst/partition.h"

#include <cstdio>

namespace autocomp::lst {

const char* TransformName(Transform t) {
  switch (t) {
    case Transform::kIdentity:
      return "identity";
    case Transform::kMonth:
      return "month";
    case Transform::kDay:
      return "day";
    case Transform::kYear:
      return "year";
    case Transform::kBucket:
      return "bucket";
  }
  return "unknown";
}

// Howard Hinnant's days<->civil algorithms (public domain).
CivilDate CivilFromDays(int64_t z) {
  z += 719468;
  const int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  const int64_t doe = z - era * 146097;
  const int64_t yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  const int64_t y = yoe + era * 400;
  const int64_t doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
  const int64_t mp = (5 * doy + 2) / 153;
  const int64_t d = doy - (153 * mp + 2) / 5 + 1;
  const int64_t m = mp < 10 ? mp + 3 : mp - 9;
  CivilDate out;
  out.year = static_cast<int32_t>(m <= 2 ? y + 1 : y);
  out.month = static_cast<int32_t>(m);
  out.day = static_cast<int32_t>(d);
  return out;
}

int64_t DaysFromCivil(int32_t y, int32_t m, int32_t d) {
  const int64_t yy = y - (m <= 2 ? 1 : 0);
  const int64_t era = (yy >= 0 ? yy : yy - 399) / 400;
  const int64_t yoe = yy - era * 400;
  const int64_t doy = (153 * (m > 2 ? m - 3 : m + 9) + 2) / 5 + d - 1;
  const int64_t doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
  return era * 146097 + doe - 719468;
}

std::string ApplyTransform(Transform transform, int64_t value,
                           int32_t bucket_count) {
  char buf[32];
  switch (transform) {
    case Transform::kIdentity:
      return std::to_string(value);
    case Transform::kMonth: {
      const CivilDate c = CivilFromDays(value);
      std::snprintf(buf, sizeof(buf), "%04d-%02d", c.year, c.month);
      return buf;
    }
    case Transform::kDay: {
      const CivilDate c = CivilFromDays(value);
      std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d", c.year, c.month,
                    c.day);
      return buf;
    }
    case Transform::kYear: {
      const CivilDate c = CivilFromDays(value);
      std::snprintf(buf, sizeof(buf), "%04d", c.year);
      return buf;
    }
    case Transform::kBucket: {
      const int32_t buckets = bucket_count > 0 ? bucket_count : 16;
      // Deterministic integer mix, then bucket.
      uint64_t h = static_cast<uint64_t>(value) * 0x9E3779B97F4A7C15ULL;
      h ^= h >> 32;
      std::snprintf(buf, sizeof(buf), "bucket_%u",
                    static_cast<uint32_t>(h % static_cast<uint64_t>(buckets)));
      return buf;
    }
  }
  return "invalid";
}

Result<std::string> PartitionSpec::PartitionKeyFor(
    const std::vector<int64_t>& values) const {
  if (values.size() != fields_.size()) {
    return Status::InvalidArgument(
        "expected " + std::to_string(fields_.size()) + " partition values, got " +
        std::to_string(values.size()));
  }
  if (fields_.empty()) return std::string();
  std::string key;
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (i > 0) key += "/";
    key += fields_[i].name;
    key += "=";
    key += ApplyTransform(fields_[i].transform, values[i],
                          fields_[i].bucket_count);
  }
  return key;
}

Status PartitionSpec::Validate(const Schema& schema) const {
  for (const PartitionField& pf : fields_) {
    auto field = schema.FindField(pf.source_field_id);
    AUTOCOMP_RETURN_NOT_OK(field.status());
    const bool needs_date = pf.transform == Transform::kMonth ||
                            pf.transform == Transform::kDay ||
                            pf.transform == Transform::kYear;
    if (needs_date && field->type != FieldType::kDate) {
      return Status::InvalidArgument(
          "transform " + std::string(TransformName(pf.transform)) +
          " requires a date source field, got " +
          FieldTypeName(field->type) + " for " + field->name);
    }
    if (pf.transform == Transform::kBucket && pf.bucket_count <= 0) {
      return Status::InvalidArgument("bucket transform requires bucket_count");
    }
  }
  return Status::OK();
}

std::string PartitionSpec::ToString() const {
  if (fields_.empty()) return "unpartitioned";
  std::string out = "spec#" + std::to_string(spec_id_) + "[";
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (i > 0) out += ", ";
    out += std::string(TransformName(fields_[i].transform)) + "(" +
           std::to_string(fields_[i].source_field_id) + ") as " +
           fields_[i].name;
  }
  out += "]";
  return out;
}

}  // namespace autocomp::lst
