/// \file transaction.h
/// \brief Optimistic-concurrency transactions over a MetadataStore.
///
/// A Transaction captures a base metadata version at creation, stages one
/// operation (append / overwrite / rewrite / delete), and commits via the
/// catalog's compare-and-swap. If other commits landed in between, the
/// transaction attempts to *rebase*: appends always rebase; rewrites and
/// overwrites re-validate against the intervening snapshots and fail with
/// CommitConflict when the validation mode rejects them.
///
/// Two validation modes are provided:
///  * kStrictTableLevel — a rewrite conflicts with ANY intervening commit
///    to the table, even one touching disjoint partitions. This mirrors
///    the Apache Iceberg v1.2.0 behaviour the paper observed ("compaction
///    operations executed concurrently could result in conflicts when
///    targeting distinct partitions within a table", §4.4).
///  * kPartitionAware — a rewrite conflicts only when an intervening
///    commit removed one of its input files or touched one of its
///    partitions (the paper's suggested "conflict filtering" fix, §8).

#pragma once

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/status.h"
#include "lst/commit_delta.h"
#include "lst/conflict.h"
#include "lst/table_metadata.h"

namespace autocomp::lst {

enum class ValidationMode : int {
  kStrictTableLevel,
  kPartitionAware,
};

/// \brief Result of a successful commit.
struct CommitResult {
  int64_t snapshot_id = 0;
  /// Number of rebase retries needed (0 = clean first attempt). The
  /// experiments count these as client-side conflicts (Table 1).
  int retries = 0;
  TableMetadataPtr metadata;
};

/// \brief Single-operation optimistic transaction.
class Transaction {
 public:
  /// Captures the current version of `table_name` as the base. Fails later
  /// at Commit if the table vanishes. With `injector` set, every commit
  /// attempt arms fault::kSiteLstCommit (injected CAS races and
  /// validation aborts); Table::NewTransaction wires the store's injector
  /// through automatically. With `trace` set, every commit outcome is
  /// recorded (at TraceLevel::kFull): "commit.success" with the new
  /// snapshot id, "commit.conflict" with the structured ConflictKind.
  Transaction(MetadataStore* store, std::string table_name,
              TableMetadataPtr base, const Clock* clock,
              ValidationMode mode = ValidationMode::kStrictTableLevel,
              fault::FaultInjector* injector = nullptr,
              obs::TraceRecorder* trace = nullptr);

  /// Stages an append of new files. May be called repeatedly before
  /// Commit; files accumulate.
  Status Append(std::vector<DataFile> files);

  /// Stages a logical overwrite: `replaced_paths` leave the live set,
  /// `added` files join it. Used for CoW updates/deletes.
  Status Overwrite(std::vector<std::string> replaced_paths,
                   std::vector<DataFile> added);

  /// Stages a compaction rewrite: logically content-preserving.
  Status RewriteFiles(std::vector<std::string> replaced_paths,
                      std::vector<DataFile> added);

  /// Stages a file deletion (data removal).
  Status DeleteFiles(std::vector<std::string> paths);

  /// One commit attempt. On CommitConflict the transaction stays usable
  /// and CommitWithRetries may rebase it.
  Result<CommitResult> Commit();

  /// Commit with automatic rebase, up to `max_retries` retries. Returns
  /// CommitConflict when validation rejects the rebase (the operation is
  /// genuinely lost) or retries are exhausted.
  Result<CommitResult> CommitWithRetries(int max_retries);

  SnapshotOperation operation() const { return operation_; }
  const TableMetadataPtr& base() const { return base_; }

  /// Structured reason for the most recent commit failure (kNone after a
  /// success or before any attempt). `last_conflict().retryable()` is the
  /// signal the compaction runner's retry loop keys off: CAS races
  /// rebase-and-retry, validation rejections abandon.
  const ConflictInfo& last_conflict() const { return last_conflict_; }

  /// Paths the staged operation removes from the live set. The runner's
  /// pre-retry re-validation checks these are still live before paying
  /// for another commit attempt.
  const std::vector<std::string>& replaced_paths() const {
    return replaced_paths_;
  }

 private:
  Status EnsureOperation(SnapshotOperation op);
  /// Records `kind` + `detail` into last_conflict_ and returns the
  /// matching CommitConflict Status (single exit for all conflict paths).
  Status Conflict(ConflictKind kind, const std::string& detail) const;
  /// One commit attempt; sets *cas_race when the failure was a raw CAS
  /// race (retryable) rather than a validation rejection (terminal).
  Result<CommitResult> CommitInternal(bool* cas_race);
  /// Validates the staged operation against snapshots committed after the
  /// base version. Returns CommitConflict on rejection.
  Status ValidateAgainst(const TableMetadata& current) const;
  /// Builds the successor metadata from `current` and the staged op.
  /// Records the exact live-set change into `*delta` (added files as
  /// stamped, removed files with their live descriptors) — the commit
  /// hands it to MetadataStore::CommitTableWithDelta so incremental
  /// consumers avoid rescanning the table.
  Result<TableMetadataPtr> Apply(const TableMetadata& current,
                                 CommitDelta* delta) const;

  MetadataStore* store_;
  std::string table_name_;
  /// Metadata as of transaction start; never rebased — validation always
  /// runs against the state the operation actually read.
  TableMetadataPtr base_;
  const Clock* clock_;
  ValidationMode mode_;
  fault::FaultInjector* injector_;
  obs::TraceRecorder* trace_;
  /// Set on every conflict path, including inside const validation (hence
  /// mutable); cleared by a successful commit.
  mutable ConflictInfo last_conflict_;

  bool has_operation_ = false;
  SnapshotOperation operation_ = SnapshotOperation::kAppend;
  std::vector<DataFile> added_;
  std::vector<std::string> replaced_paths_;
};

}  // namespace autocomp::lst
