/// \file manifest.h
/// \brief Manifests and manifest lists: the metadata layer whose growth
/// the paper calls out ("bloated metadata in LSTs", §1).
///
/// Fleet-scale replay hammers this layer: every commit filters or merges
/// manifests and every observe rescan walks them. Two hot-path
/// optimizations live here:
///
///  * the per-manifest partition summary is a sorted vector of interned
///    `common::PartitionId`s (4 bytes each) instead of a
///    `std::set<std::string>` — pruning is a Lookup plus binary search
///    with zero per-manifest string storage when the interner is shared
///    across a table's lineage (see ManifestFactory);
///  * column (SoA) views over the file entries — sizes, record counts,
///    added-snapshot ids, partition ids, and packed trait flags — so bulk
///    consumers (the incremental stats index rebuild) stream cache-dense
///    numeric columns instead of striding over ~120-byte DataFile structs
///    and their path strings.

#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/interner.h"
#include "lst/data_file.h"

namespace autocomp::lst {

/// \brief An immutable group of live data files written by one commit (or
/// produced by filtering/merging earlier manifests).
///
/// The simulator keeps only live entries per manifest; deleted entries are
/// dropped when a rewriting commit filters a manifest. Manifests are
/// shared across snapshots via shared_ptr, mirroring how Iceberg snapshots
/// reuse unchanged manifest files.
class Manifest {
 public:
  /// Packed per-file trait flags (the SoA `flag_column`).
  static constexpr uint8_t kFlagPositionDeletes = 1;
  static constexpr uint8_t kFlagUnclustered = 2;

  /// Standalone construction (tests, JSON restore): partition keys are
  /// interned into a private per-manifest interner.
  Manifest(int64_t manifest_id, std::vector<DataFile> files)
      : Manifest(manifest_id, std::move(files),
                 std::make_shared<common::StringInterner>()) {}

  /// Lineage construction (ManifestFactory): partition keys are interned
  /// into the shared per-table interner, so equal keys cost 4 bytes per
  /// manifest instead of one owned string each.
  Manifest(int64_t manifest_id, std::vector<DataFile> files,
           std::shared_ptr<common::StringInterner> interner)
      : manifest_id_(manifest_id),
        files_(std::move(files)),
        interner_(std::move(interner)) {
    const size_t n = files_.size();
    size_column_.reserve(n);
    record_count_column_.reserve(n);
    added_snapshot_column_.reserve(n);
    partition_column_.reserve(n);
    flag_column_.reserve(n);
    for (const DataFile& f : files_) {
      total_bytes_ += f.file_size_bytes;
      const common::PartitionId pid = interner_->Intern(f.partition);
      size_column_.push_back(f.file_size_bytes);
      record_count_column_.push_back(f.record_count);
      added_snapshot_column_.push_back(f.added_snapshot_id);
      partition_column_.push_back(pid);
      uint8_t flags = 0;
      if (f.content == FileContent::kPositionDeletes) {
        flags |= kFlagPositionDeletes;
      }
      if (!f.clustered) flags |= kFlagUnclustered;
      flag_column_.push_back(flags);
    }
    partition_ids_ = partition_column_;
    std::sort(partition_ids_.begin(), partition_ids_.end());
    partition_ids_.erase(
        std::unique(partition_ids_.begin(), partition_ids_.end()),
        partition_ids_.end());
  }

  int64_t manifest_id() const { return manifest_id_; }
  const std::vector<DataFile>& files() const { return files_; }
  int64_t file_count() const { return static_cast<int64_t>(files_.size()); }
  int64_t total_bytes() const { return total_bytes_; }

  /// Partition summary used for scan pruning: interned ids, sorted and
  /// deduplicated. Resolve names through partition_interner() — ids from
  /// different interners (different lineages) are not comparable.
  const std::vector<common::PartitionId>& partition_ids() const {
    return partition_ids_;
  }
  int64_t partition_count() const {
    return static_cast<int64_t>(partition_ids_.size());
  }
  const common::StringInterner& partition_interner() const {
    return *interner_;
  }

  bool ContainsPartition(std::string_view partition) const {
    const common::PartitionId id = interner_->Lookup(partition);
    return id != common::StringInterner::kInvalidId &&
           std::binary_search(partition_ids_.begin(), partition_ids_.end(),
                              id);
  }

  /// \name SoA column views (parallel to files(), same index space)
  /// @{
  const std::vector<int64_t>& size_column() const { return size_column_; }
  const std::vector<int64_t>& record_count_column() const {
    return record_count_column_;
  }
  const std::vector<int64_t>& added_snapshot_column() const {
    return added_snapshot_column_;
  }
  const std::vector<common::PartitionId>& partition_column() const {
    return partition_column_;
  }
  const std::vector<uint8_t>& flag_column() const { return flag_column_; }
  /// @}

 private:
  friend class ManifestFactory;

  int64_t manifest_id_;
  std::vector<DataFile> files_;
  int64_t total_bytes_ = 0;
  std::shared_ptr<common::StringInterner> interner_;
  std::vector<common::PartitionId> partition_ids_;
  std::vector<int64_t> size_column_;
  std::vector<int64_t> record_count_column_;
  std::vector<int64_t> added_snapshot_column_;
  std::vector<common::PartitionId> partition_column_;
  std::vector<uint8_t> flag_column_;
};

using ManifestPtr = std::shared_ptr<const Manifest>;

/// \brief Ordered list of manifests making up one snapshot's view.
using ManifestList = std::vector<ManifestPtr>;

/// \brief Per-table-lineage manifest allocator: one shared partition-key
/// interner plus a capped free list of DataFile vectors.
///
/// A long replay churns manifests constantly (every append creates one,
/// every rewrite filters several); the dominant allocation is each
/// manifest's `std::vector<DataFile>`. Manifests made through a factory
/// carry a deleter that, when the last snapshot referencing them expires,
/// returns the vector's capacity to the factory, so steady-state commits
/// reuse buffers instead of round-tripping the allocator. TakeBuffer()
/// hands that capacity back to commit paths assembling new file lists.
///
/// Thread-safe: manifests may be released from any pipeline thread.
/// The factory must outlive no manifest — deleters hold the free list by
/// shared_ptr, so releasing a manifest after the factory is destroyed is
/// safe (the capacity is simply freed).
class ManifestFactory {
 public:
  /// Free-list cap: bounds idle capacity at ~kMaxFreeVectors times the
  /// largest manifest seen, which profiling showed is enough to make
  /// steady-state commits allocation-free.
  static constexpr size_t kMaxFreeVectors = 16;

  ManifestFactory()
      : interner_(std::make_shared<common::StringInterner>()),
        free_list_(std::make_shared<FreeList>()) {}

  const std::shared_ptr<common::StringInterner>& interner() const {
    return interner_;
  }

  /// A (possibly recycled) empty vector to assemble a file list into.
  std::vector<DataFile> TakeBuffer() { return free_list_->Take(); }

  /// Builds a manifest sharing the lineage interner; its file vector is
  /// recycled through this factory on destruction.
  ManifestPtr Make(int64_t manifest_id, std::vector<DataFile> files) {
    auto* raw = new Manifest(manifest_id, std::move(files), interner_);
    return ManifestPtr(raw, Recycler{free_list_});
  }

  /// Vectors currently parked in the free list (telemetry for tests).
  int64_t free_vectors() const { return free_list_->size(); }
  /// Vectors returned to the free list over the factory's lifetime.
  int64_t recycled() const { return free_list_->recycled(); }

 private:
  struct FreeList {
    std::mutex mu;
    std::vector<std::vector<DataFile>> vectors;
    int64_t recycled_total = 0;

    std::vector<DataFile> Take() {
      std::lock_guard<std::mutex> lock(mu);
      if (vectors.empty()) return {};
      std::vector<DataFile> out = std::move(vectors.back());
      vectors.pop_back();
      out.clear();
      return out;
    }
    void Put(std::vector<DataFile>&& v) {
      if (v.capacity() == 0) return;
      std::lock_guard<std::mutex> lock(mu);
      ++recycled_total;
      if (vectors.size() < kMaxFreeVectors) vectors.push_back(std::move(v));
    }
    int64_t size() {
      std::lock_guard<std::mutex> lock(mu);
      return static_cast<int64_t>(vectors.size());
    }
    int64_t recycled() {
      std::lock_guard<std::mutex> lock(mu);
      return recycled_total;
    }
  };

  struct Recycler {
    std::shared_ptr<FreeList> free_list;
    void operator()(const Manifest* m) const {
      // Reclaim the file vector before destruction; the manifest is
      // unreferenced here, so the const_cast does not break immutability
      // as observed by any alive reader.
      auto* mutable_m = const_cast<Manifest*>(m);
      free_list->Put(std::move(mutable_m->files_));
      delete m;
    }
  };

  std::shared_ptr<common::StringInterner> interner_;
  std::shared_ptr<FreeList> free_list_;
};

}  // namespace autocomp::lst
