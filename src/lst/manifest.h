/// \file manifest.h
/// \brief Manifests and manifest lists: the metadata layer whose growth
/// the paper calls out ("bloated metadata in LSTs", §1).

#pragma once

#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "lst/data_file.h"

namespace autocomp::lst {

/// \brief An immutable group of live data files written by one commit (or
/// produced by filtering/merging earlier manifests).
///
/// The simulator keeps only live entries per manifest; deleted entries are
/// dropped when a rewriting commit filters a manifest. Manifests are
/// shared across snapshots via shared_ptr, mirroring how Iceberg snapshots
/// reuse unchanged manifest files.
class Manifest {
 public:
  Manifest(int64_t manifest_id, std::vector<DataFile> files)
      : manifest_id_(manifest_id), files_(std::move(files)) {
    for (const DataFile& f : files_) {
      total_bytes_ += f.file_size_bytes;
      partitions_.insert(f.partition);
    }
  }

  int64_t manifest_id() const { return manifest_id_; }
  const std::vector<DataFile>& files() const { return files_; }
  int64_t file_count() const { return static_cast<int64_t>(files_.size()); }
  int64_t total_bytes() const { return total_bytes_; }

  /// Partition summary used for scan pruning.
  const std::set<std::string>& partitions() const { return partitions_; }
  bool ContainsPartition(const std::string& partition) const {
    return partitions_.count(partition) > 0;
  }

 private:
  int64_t manifest_id_;
  std::vector<DataFile> files_;
  int64_t total_bytes_ = 0;
  std::set<std::string> partitions_;
};

using ManifestPtr = std::shared_ptr<const Manifest>;

/// \brief Ordered list of manifests making up one snapshot's view.
using ManifestList = std::vector<ManifestPtr>;

}  // namespace autocomp::lst
