/// \file commit_delta.h
/// \brief The net live-file change produced by one commit.
///
/// AutoComp's observe phase is O(fleet live files) when every cycle
/// rescans manifests; maintaining aggregates incrementally from commit
/// deltas makes it O(files changed since last cycle) instead (the
/// LSM-compaction design-space trade: amortize bookkeeping into the
/// write path). Transactions record the exact added/removed DataFile
/// descriptors while building the successor metadata — the information
/// is free at that point — and hand them to the MetadataStore so commit
/// listeners (core::IncrementalStatsIndex) can apply O(delta) updates.
///
/// Commit paths that edit history wholesale (snapshot expiry, rollback)
/// do not produce a delta; they commit with `known == false` and
/// consumers fall back to a full-table rebuild.

#pragma once

#include <cstdint>
#include <vector>

#include "lst/data_file.h"
#include "lst/snapshot.h"

namespace autocomp::lst {

/// \brief Added/removed live files of one committed snapshot.
struct CommitDelta {
  /// False when the commit path could not (or did not bother to) derive
  /// the exact live-set change; consumers must treat the whole table as
  /// invalidated.
  bool known = false;
  /// Snapshot produced by the commit (0 when unknown).
  int64_t snapshot_id = 0;
  SnapshotOperation operation = SnapshotOperation::kAppend;
  /// Files that joined the live set, stamped with their snapshot id and
  /// sequence number (full descriptors: partition, size, content, ...).
  std::vector<DataFile> added;
  /// Files that left the live set, with the descriptors they had while
  /// live (Snapshot::removed_paths keeps only paths; incremental
  /// consumers need partition and size to reverse the aggregates).
  std::vector<DataFile> removed;
};

}  // namespace autocomp::lst
