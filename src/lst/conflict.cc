#include "lst/conflict.h"

namespace autocomp::lst {

const char* ConflictKindName(ConflictKind kind) {
  switch (kind) {
    case ConflictKind::kNone:
      return "none";
    case ConflictKind::kCasRace:
      return "cas_race";
    case ConflictKind::kInputRemoved:
      return "input_removed";
    case ConflictKind::kStrictTableLevel:
      return "strict_table_level";
    case ConflictKind::kPartitionOverlap:
      return "partition_overlap";
    case ConflictKind::kStaleOverwrite:
      return "stale_overwrite";
    case ConflictKind::kReplacedNotLive:
      return "replaced_not_live";
    case ConflictKind::kInjectedCasRace:
      return "injected_cas_race";
    case ConflictKind::kInjectedValidation:
      return "injected_validation";
    case ConflictKind::kRetriesExhausted:
      return "retries_exhausted";
  }
  return "unknown";
}

}  // namespace autocomp::lst
