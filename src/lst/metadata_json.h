/// \file metadata_json.h
/// \brief JSON (de)serialization of table metadata, and the persistence
/// of metadata files into storage.
///
/// Real LSTs persist every metadata version as a JSON file plus manifest
/// files next to the data; those objects count against HDFS namespace
/// quotas and are themselves a cause of small-file proliferation (§2,
/// cause iv: "Iceberg introduces additional metadata for each table ...
/// This added metadata contributes to small file proliferation"). The
/// serializer makes table state externally durable/inspectable; the
/// MetadataPersister mirrors the storage-side footprint.

#pragma once

#include <string>

#include "common/status.h"
#include "lst/table_metadata.h"
#include "storage/filesystem.h"

namespace autocomp::lst {

/// \brief Serializes one metadata version (schema, spec, properties,
/// snapshots, manifests, file entries) to a JSON document.
std::string TableMetadataToJson(const TableMetadata& metadata);

/// \brief Parses a document produced by TableMetadataToJson back into
/// metadata. Round-trips everything AutoComp consumes: name/location,
/// schema fields, partition spec, properties, version counters, and the
/// full snapshot/manifest/file tree.
Result<TableMetadataPtr> TableMetadataFromJson(const std::string& json);

/// \brief Writes the storage-side footprint of a metadata version:
/// `<location>/metadata/vNNN.metadata.json` plus one
/// `<location>/metadata/manifest-<id>.avro` object per manifest of the
/// current snapshot that is not yet persisted. Returns the number of
/// storage objects created. These objects count toward namespace quotas
/// exactly like data files.
Result<int64_t> PersistMetadataFootprint(
    storage::DistributedFileSystem* dfs, const TableMetadata& metadata);

/// \brief Deletes metadata objects of versions at or below
/// `up_to_version` (metadata expiry, paired with snapshot expiry).
/// Returns the number of objects removed.
Result<int64_t> ExpireMetadataFootprint(
    storage::DistributedFileSystem* dfs, const TableMetadata& metadata,
    int64_t up_to_version);

/// \brief Deletes persisted manifest objects no retained snapshot of
/// `metadata` references any more (the storage-side counterpart of
/// snapshot expiry: without it, 30-day lineages leak one
/// `manifest-*.avro` per expired commit). Returns the number of objects
/// removed.
Result<int64_t> ExpireManifestFootprint(
    storage::DistributedFileSystem* dfs, const TableMetadata& metadata);

}  // namespace autocomp::lst
