#include "lst/table_metadata.h"

#include <algorithm>
#include <set>

#include "common/logging.h"

namespace autocomp::lst {

const char* SnapshotOperationName(SnapshotOperation op) {
  switch (op) {
    case SnapshotOperation::kAppend:
      return "append";
    case SnapshotOperation::kOverwrite:
      return "overwrite";
    case SnapshotOperation::kReplace:
      return "replace";
    case SnapshotOperation::kDelete:
      return "delete";
  }
  return "unknown";
}

const Snapshot* TableMetadata::current_snapshot() const {
  return FindSnapshot(current_snapshot_id_);
}

const Snapshot* TableMetadata::FindSnapshot(int64_t snapshot_id) const {
  if (snapshot_id == 0) return nullptr;
  for (const Snapshot& s : snapshots_) {
    if (s.snapshot_id == snapshot_id) return &s;
  }
  return nullptr;
}

std::vector<const Snapshot*> TableMetadata::SnapshotsAfter(
    int64_t snapshot_id) const {
  // Snapshots are stored in commit order; history is linear in this
  // implementation (no branches), so "after" is a suffix scan.
  std::vector<const Snapshot*> out;
  bool seen = snapshot_id == 0;
  for (const Snapshot& s : snapshots_) {
    if (seen) out.push_back(&s);
    if (s.snapshot_id == snapshot_id) seen = true;
  }
  return out;
}

std::vector<DataFile> TableMetadata::LiveFiles(
    const std::optional<std::string>& partition) const {
  std::vector<DataFile> out;
  ForEachLiveFile([&out](const DataFile& f) { out.push_back(f); }, partition);
  return out;
}

void TableMetadata::ForEachLiveFile(
    const std::function<void(const DataFile&)>& fn,
    const std::optional<std::string>& partition) const {
  const Snapshot* snap = current_snapshot();
  if (snap == nullptr) return;
  for (const ManifestPtr& m : snap->manifests) {
    if (partition && !m->ContainsPartition(*partition)) continue;
    for (const DataFile& f : m->files()) {
      if (!partition || f.partition == *partition) fn(f);
    }
  }
}

bool TableMetadata::IsLive(const std::string& path) const {
  const Snapshot* snap = current_snapshot();
  if (snap == nullptr) return false;
  for (const ManifestPtr& m : snap->manifests) {
    for (const DataFile& f : m->files()) {
      if (f.path == path) return true;
    }
  }
  return false;
}

std::vector<std::string> TableMetadata::LivePartitions() const {
  std::set<std::string> parts;
  const Snapshot* snap = current_snapshot();
  if (snap == nullptr) return {};
  // Resolve each manifest's interned summary through its own interner:
  // manifests normally share the lineage interner, but restored or
  // hand-built ones may carry private arenas. The set re-establishes the
  // lexicographic output order ids do not carry.
  for (const ManifestPtr& m : snap->manifests) {
    const common::StringInterner& names = m->partition_interner();
    for (const common::PartitionId id : m->partition_ids()) {
      parts.insert(names.NameOf(id));
    }
  }
  return {parts.begin(), parts.end()};
}

int64_t TableMetadata::live_file_count() const {
  const Snapshot* snap = current_snapshot();
  return snap == nullptr ? 0 : snap->live_file_count();
}

int64_t TableMetadata::live_bytes() const {
  const Snapshot* snap = current_snapshot();
  return snap == nullptr ? 0 : snap->live_bytes();
}

int64_t TableMetadata::target_file_size_bytes() const {
  return properties_.GetInt(kPropTargetFileSizeBytes, 512 * kMiB);
}

TableMetadata::Builder::Builder(std::string name, std::string location,
                                Schema schema, PartitionSpec spec) {
  meta_.name_ = std::move(name);
  meta_.location_ = std::move(location);
  meta_.schema_ = std::move(schema);
  meta_.spec_ = std::move(spec);
  meta_.version_ = 1;
  meta_.manifest_factory_ = std::make_shared<ManifestFactory>();
}

TableMetadata::Builder::Builder(const TableMetadata& base) {
  meta_ = base;
  meta_.version_ = base.version_ + 1;
  // Successors share the lineage factory (interner + buffer pool); only
  // metadata predating the factory (none today) would need a fresh one.
  if (meta_.manifest_factory_ == nullptr) {
    meta_.manifest_factory_ = std::make_shared<ManifestFactory>();
  }
}

TableMetadata::Builder& TableMetadata::Builder::SetProperties(
    Config properties) {
  meta_.properties_ = std::move(properties);
  return *this;
}

TableMetadata::Builder& TableMetadata::Builder::SetProperty(
    const std::string& key, const std::string& value) {
  meta_.properties_.Set(key, value);
  return *this;
}

TableMetadata::Builder& TableMetadata::Builder::SetCreatedAt(SimTime t) {
  meta_.created_at_ = t;
  if (meta_.last_updated_at_ < t) meta_.last_updated_at_ = t;
  return *this;
}

TableMetadata::Builder& TableMetadata::Builder::SetLastUpdatedAt(SimTime t) {
  meta_.last_updated_at_ = t;
  return *this;
}

TableMetadata::Builder& TableMetadata::Builder::AddSnapshot(Snapshot snapshot) {
  meta_.current_snapshot_id_ = snapshot.snapshot_id;
  meta_.last_updated_at_ = std::max(meta_.last_updated_at_, snapshot.timestamp);
  meta_.snapshots_.push_back(std::move(snapshot));
  return *this;
}

TableMetadata::Builder& TableMetadata::Builder::SetSnapshots(
    std::vector<Snapshot> snapshots) {
  meta_.snapshots_ = std::move(snapshots);
  return *this;
}

TableMetadata::Builder& TableMetadata::Builder::RestoreVersion(
    int64_t version) {
  meta_.version_ = version;
  return *this;
}

TableMetadata::Builder& TableMetadata::Builder::RestoreCounters(
    int64_t next_snapshot_id, int64_t next_manifest_id,
    int64_t next_sequence_number) {
  meta_.next_snapshot_id_ = next_snapshot_id;
  meta_.next_manifest_id_ = next_manifest_id;
  meta_.next_sequence_number_ = next_sequence_number;
  return *this;
}

TableMetadata::Builder& TableMetadata::Builder::RestoreManifestFactory(
    std::shared_ptr<ManifestFactory> factory) {
  if (factory != nullptr) meta_.manifest_factory_ = std::move(factory);
  return *this;
}

int64_t TableMetadata::Builder::AllocateSnapshotId() {
  return meta_.next_snapshot_id_++;
}

int64_t TableMetadata::Builder::AllocateManifestId() {
  return meta_.next_manifest_id_++;
}

int64_t TableMetadata::Builder::AllocateSequenceNumber() {
  return meta_.next_sequence_number_++;
}

ManifestPtr TableMetadata::Builder::NewManifest(std::vector<DataFile> files) {
  return meta_.manifest_factory_->Make(AllocateManifestId(),
                                       std::move(files));
}

std::vector<DataFile> TableMetadata::Builder::TakeFileBuffer() {
  return meta_.manifest_factory_->TakeBuffer();
}

Result<TableMetadataPtr> TableMetadata::Builder::Build() {
  AUTOCOMP_CHECK(!built_) << "Builder::Build called twice";
  built_ = true;
  if (meta_.name_.empty()) {
    return Status::InvalidArgument("table name must not be empty");
  }
  if (meta_.location_.empty() || meta_.location_.front() != '/') {
    return Status::InvalidArgument("table location must be absolute: " +
                                   meta_.location_);
  }
  AUTOCOMP_RETURN_NOT_OK(meta_.spec_.Validate(meta_.schema_));
  if (meta_.current_snapshot_id_ != 0 &&
      meta_.FindSnapshot(meta_.current_snapshot_id_) == nullptr) {
    return Status::Internal("current snapshot not in snapshot list");
  }
  return std::make_shared<const TableMetadata>(std::move(meta_));
}

ManifestList MaybeMergeManifests(ManifestList manifests, int64_t max_manifests,
                                 TableMetadata::Builder* builder) {
  if (max_manifests <= 0 ||
      static_cast<int64_t>(manifests.size()) <= max_manifests) {
    return manifests;
  }
  // Coalesce smallest manifests first until under the limit; this bounds
  // metadata growth the same way Iceberg's merge-on-write does.
  std::sort(manifests.begin(), manifests.end(),
            [](const ManifestPtr& a, const ManifestPtr& b) {
              if (a->file_count() != b->file_count()) {
                return a->file_count() < b->file_count();
              }
              return a->manifest_id() < b->manifest_id();
            });
  const size_t to_merge =
      manifests.size() - static_cast<size_t>(max_manifests) + 1;
  std::vector<DataFile> merged_files = builder->TakeFileBuffer();
  for (size_t i = 0; i < to_merge; ++i) {
    const auto& files = manifests[i]->files();
    merged_files.insert(merged_files.end(), files.begin(), files.end());
  }
  ManifestList out(manifests.begin() + static_cast<ptrdiff_t>(to_merge),
                   manifests.end());
  out.push_back(builder->NewManifest(std::move(merged_files)));
  // Restore deterministic ordering by manifest id.
  std::sort(out.begin(), out.end(),
            [](const ManifestPtr& a, const ManifestPtr& b) {
              return a->manifest_id() < b->manifest_id();
            });
  return out;
}

}  // namespace autocomp::lst
