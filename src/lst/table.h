/// \file table.h
/// \brief Table handle: the public entry point for reads and writes.

#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/status.h"
#include "lst/transaction.h"

namespace autocomp::lst {

/// \brief Result of scan planning: the files a query must read.
struct ScanPlan {
  std::vector<DataFile> files;
  int64_t total_bytes = 0;
  int64_t total_records = 0;
  /// Manifests inspected during planning — planning cost grows with
  /// metadata bloat, one of the paper's small-file costs.
  int64_t manifests_scanned = 0;
  /// Snapshot the plan is pinned to.
  int64_t snapshot_id = 0;
};

/// \brief Lightweight handle binding a table name to a MetadataStore.
///
/// Handles are cheap to copy; they hold no table state. Every read loads
/// the current metadata from the store (snapshot isolation: the returned
/// plan/transaction is pinned to the version read).
class Table {
 public:
  Table(MetadataStore* store, std::string name, const Clock* clock);

  const std::string& name() const { return name_; }

  /// Loads the current metadata version.
  Result<TableMetadataPtr> Metadata() const;

  /// Starts a transaction pinned to the current version.
  Result<Transaction> NewTransaction(
      ValidationMode mode = ValidationMode::kStrictTableLevel) const;

  /// Plans a scan over the current snapshot, optionally pruned to one
  /// partition. Planning walks manifests (partition summaries prune).
  Result<ScanPlan> PlanScan(
      const std::optional<std::string>& partition = std::nullopt) const;

 private:
  MetadataStore* store_;
  std::string name_;
  const Clock* clock_;
};

/// \brief Outcome of snapshot expiry.
struct ExpireResult {
  TableMetadataPtr metadata;
  /// Files no longer referenced by any retained snapshot; the caller
  /// deletes them from storage (the sim's equivalent of Iceberg's
  /// expire_snapshots + orphan cleanup, which OpenHouse runs as a data
  /// service).
  std::vector<std::string> orphaned_paths;
  int64_t expired_snapshots = 0;
};

/// \brief Removes snapshots older than `older_than`, always retaining the
/// current snapshot and the most recent `keep_last` snapshots. Commits the
/// trimmed metadata with CAS retries.
Result<ExpireResult> ExpireSnapshots(MetadataStore* store,
                                     const std::string& table_name,
                                     const Clock* clock, SimTime older_than,
                                     int keep_last = 1);

}  // namespace autocomp::lst
