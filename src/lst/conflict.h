/// \file conflict.h
/// \brief Structured commit-conflict reasons.
///
/// A bare CommitConflict Status tells a caller *that* a commit lost, not
/// *why* — but the paper's Table 1 distinguishes cluster-side from
/// client-side conflicts precisely because they demand different
/// responses: a CAS race is transient (rebase and retry converges), a
/// validation rejection is terminal (the inputs are gone; retrying burns
/// compute to lose again). The retrying compaction runner keys its
/// retry/abandon decision off this classification, so Transaction
/// records it alongside the Status on every conflict path.

#pragma once

#include <string>

namespace autocomp::lst {

/// \brief Why a commit attempt conflicted.
enum class ConflictKind : int {
  kNone = 0,
  /// The metadata version moved between load and swap — retryable; the
  /// next attempt rebases onto the new version.
  kCasRace,
  /// An intervening commit removed one of the rewrite's input files —
  /// terminal; committing would resurrect deleted data.
  kInputRemoved,
  /// Strict table-level validation (Iceberg v1.2.0, §4.4): any
  /// intervening rewrite on the table aborts this one — terminal under
  /// the configured mode.
  kStrictTableLevel,
  /// Partition-aware validation: an intervening rewrite touched one of
  /// this operation's partitions — terminal.
  kPartitionOverlap,
  /// An overwrite/delete staged against files no longer live (stale
  /// reader metadata) — terminal.
  kStaleOverwrite,
  /// Apply found replaced paths missing from the live set — terminal.
  kReplacedNotLive,
  /// Injected CAS race (fault::FaultKind::kCasRaceConflict) — retryable,
  /// exactly like an organic one.
  kInjectedCasRace,
  /// Injected validation abort (kValidationAbort or the
  /// kDisjointRewriteAbort v1.2.0 quirk) — terminal.
  kInjectedValidation,
  /// CommitWithRetries ran out of attempts (the last underlying failure
  /// was retryable, but the budget is spent).
  kRetriesExhausted,
};

/// Human-readable name ("cas_race", "strict_table_level", ...).
const char* ConflictKindName(ConflictKind kind);

/// \brief The last conflict a Transaction hit, with enough context for a
/// caller to decide between rebase-and-retry and abandonment.
struct ConflictInfo {
  ConflictKind kind = ConflictKind::kNone;
  /// Qualified table name the commit targeted.
  std::string table;
  /// The conflicting Status message.
  std::string detail;

  /// True when a rebase + retry can converge: the failure was a race for
  /// the metadata pointer, not a rejection of the operation itself.
  bool retryable() const {
    return kind == ConflictKind::kCasRace ||
           kind == ConflictKind::kInjectedCasRace;
  }
};

}  // namespace autocomp::lst
