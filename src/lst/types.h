/// \file types.h
/// \brief Schema types for log-structured tables.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace autocomp::lst {

/// \brief Logical column types (the subset the simulation needs).
enum class FieldType : int {
  kBool,
  kInt32,
  kInt64,
  kDouble,
  kString,
  /// Days since 1970-01-01; the type partition transforms act on.
  kDate,
  /// Seconds since epoch.
  kTimestamp,
};

const char* FieldTypeName(FieldType type);

/// \brief One named, typed column with a stable field id.
struct Field {
  int32_t id = 0;
  std::string name;
  FieldType type = FieldType::kInt64;
  bool required = false;
};

/// \brief Versioned column list. Field ids are unique and stable across
/// schema evolution (columns are looked up by id, never by position).
class Schema {
 public:
  Schema() = default;
  Schema(int32_t schema_id, std::vector<Field> fields);

  int32_t schema_id() const { return schema_id_; }
  const std::vector<Field>& fields() const { return fields_; }

  /// Field lookup by id; NotFound if absent.
  Result<Field> FindField(int32_t field_id) const;
  /// Field lookup by name; NotFound if absent.
  Result<Field> FindFieldByName(const std::string& name) const;

  /// Returns a new schema (id+1) with `field` appended.
  /// InvalidArgument on duplicate id or name.
  Result<Schema> AddField(const Field& field) const;

  std::string ToString() const;

 private:
  int32_t schema_id_ = 0;
  std::vector<Field> fields_;
};

}  // namespace autocomp::lst
