#include "lst/table.h"

#include <algorithm>
#include <cassert>
#include <set>

#include "fault/fault_injector.h"

namespace autocomp::lst {

Table::Table(MetadataStore* store, std::string name, const Clock* clock)
    : store_(store), name_(std::move(name)), clock_(clock) {
  assert(store_ != nullptr && clock_ != nullptr);
}

Result<TableMetadataPtr> Table::Metadata() const {
  return store_->LoadTable(name_);
}

Result<Transaction> Table::NewTransaction(ValidationMode mode) const {
  AUTOCOMP_ASSIGN_OR_RETURN(TableMetadataPtr base, Metadata());
  return Transaction(store_, name_, std::move(base), clock_, mode,
                     store_->fault_injector(), store_->trace_recorder());
}

Result<ScanPlan> Table::PlanScan(
    const std::optional<std::string>& partition) const {
  AUTOCOMP_ASSIGN_OR_RETURN(TableMetadataPtr meta, Metadata());
  ScanPlan plan;
  const Snapshot* snap = meta->current_snapshot();
  if (snap == nullptr) return plan;
  plan.snapshot_id = snap->snapshot_id;
  for (const ManifestPtr& m : snap->manifests) {
    if (partition && !m->ContainsPartition(*partition)) continue;  // pruned
    ++plan.manifests_scanned;
    for (const DataFile& f : m->files()) {
      if (partition && f.partition != *partition) continue;
      plan.total_bytes += f.file_size_bytes;
      plan.total_records += f.record_count;
      plan.files.push_back(f);
    }
  }
  return plan;
}

Result<ExpireResult> ExpireSnapshots(MetadataStore* store,
                                     const std::string& table_name,
                                     const Clock* clock, SimTime older_than,
                                     int keep_last) {
  assert(store != nullptr && clock != nullptr);
  constexpr int kMaxCasRetries = 5;
  for (int attempt = 0;; ++attempt) {
    AUTOCOMP_ASSIGN_OR_RETURN(TableMetadataPtr meta,
                              store->LoadTable(table_name));
    const auto& snapshots = meta->snapshots();
    if (snapshots.empty()) {
      return ExpireResult{meta, {}, 0};
    }

    const size_t keep_tail =
        std::min(snapshots.size(), static_cast<size_t>(std::max(1, keep_last)));
    std::vector<Snapshot> retained;
    std::vector<const Snapshot*> expired;
    for (size_t i = 0; i < snapshots.size(); ++i) {
      const Snapshot& s = snapshots[i];
      const bool in_tail = i + keep_tail >= snapshots.size();
      const bool is_current = s.snapshot_id == meta->current_snapshot_id();
      if (in_tail || is_current || s.timestamp >= older_than) {
        retained.push_back(s);
      } else {
        expired.push_back(&s);
      }
    }
    if (expired.empty()) {
      return ExpireResult{meta, {}, 0};
    }

    // Live paths across all retained snapshots stay on disk.
    std::set<std::string> referenced;
    for (const Snapshot& s : retained) {
      for (const ManifestPtr& m : s.manifests) {
        for (const DataFile& f : m->files()) referenced.insert(f.path);
      }
    }
    std::set<std::string> orphaned;
    for (const Snapshot* s : expired) {
      for (const ManifestPtr& m : s->manifests) {
        for (const DataFile& f : m->files()) {
          if (referenced.count(f.path) == 0) orphaned.insert(f.path);
        }
      }
    }

    TableMetadata::Builder builder(*meta);
    builder.SetSnapshots(std::move(retained));
    builder.SetLastUpdatedAt(clock->Now());
    AUTOCOMP_ASSIGN_OR_RETURN(TableMetadataPtr next, builder.Build());
    // Injected commit faults on the maintenance path: a CAS race means a
    // concurrent writer won the swap before the truncation landed —
    // recompute the expiry set against the new version, like an organic
    // conflict below. Anything else configured at the site is terminal.
    if (fault::FaultInjector* injector = store->fault_injector();
        injector != nullptr) {
      const fault::FaultKind kind =
          injector->Arm(fault::kSiteRetentionExpire, table_name);
      if (kind == fault::FaultKind::kCasRaceConflict) {
        if (attempt >= kMaxCasRetries) {
          return fault::FaultInjector::ToStatus(
              kind, fault::kSiteRetentionExpire, table_name);
        }
        continue;
      }
      if (kind != fault::FaultKind::kNone) {
        return fault::FaultInjector::ToStatus(
            kind, fault::kSiteRetentionExpire, table_name);
      }
    }
    const Status cas = store->CommitTable(table_name, meta->version(), next);
    if (cas.ok()) {
      ExpireResult result;
      result.metadata = next;
      result.orphaned_paths.assign(orphaned.begin(), orphaned.end());
      result.expired_snapshots = static_cast<int64_t>(expired.size());
      return result;
    }
    if (!cas.IsCommitConflict() || attempt >= kMaxCasRetries) return cas;
    // CAS race with a concurrent commit: recompute on the new version.
  }
}

}  // namespace autocomp::lst
