/// \file data_file.h
/// \brief Immutable data-file descriptors tracked in table metadata.

#pragma once

#include <cstdint>
#include <string>

#include "common/units.h"

namespace autocomp::lst {

/// \brief Kind of content a tracked file holds. MoR tables accumulate
/// delete (delta) files that compaction folds back into data files (§2,
/// "Merge-on-Read configurations generate delta files that accumulate").
enum class FileContent : int {
  kData,
  /// Row-level deletes pending merge (MoR delta file).
  kPositionDeletes,
};

/// \brief Metadata entry for one immutable file referenced by a table.
///
/// Matches the fields Iceberg keeps per data file that AutoComp's observe
/// phase consumes: path, partition key, on-disk size, record count, and
/// the snapshot that added the file (enables snapshot-scoped candidates).
struct DataFile {
  std::string path;
  /// Partition key string ("month=1995-03"); empty for unpartitioned.
  std::string partition;
  FileContent content = FileContent::kData;
  int64_t file_size_bytes = 0;
  int64_t record_count = 0;
  /// True when the file was written with a clustering layout (Z-order /
  /// V-order style, §8 "Automatic Data Layout Optimization"): selective
  /// scans can skip row groups inside clustered files.
  bool clustered = false;
  /// Snapshot that added this file (filled in at commit).
  int64_t added_snapshot_id = 0;
  /// Commit sequence number (filled in at commit).
  int64_t sequence_number = 0;

  /// Path identity: two DataFile entries are "the same file" iff their
  /// paths are equal, regardless of the other fields. This is the
  /// contract the whole metadata layer leans on — commit validation,
  /// removed-path sets, and the incremental stats index all treat the
  /// path as the primary key, which is sound only because files are
  /// immutable once written (a path is never reused with different
  /// contents) and because a path is live in at most one table at one
  /// snapshot. fault::CheckInvariants audits live-path uniqueness —
  /// within a table's current snapshot and across tables — every epoch.
  bool operator==(const DataFile& other) const {
    return path == other.path;
  }
};

}  // namespace autocomp::lst
