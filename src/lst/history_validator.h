/// \file history_validator.h
/// \brief Consistency checking over a table's snapshot history.
///
/// The paper's §8 highlights that "understanding LST conflict resolution
/// mechanisms and predicting potential conflicts is challenging" and
/// points to formal analyses of LST consistency models [69-71]. This
/// validator mechanically checks the invariants those analyses rely on
/// against a concrete metadata instance — the library's safety net for
/// catching broken commit logic (it is run inside the property suites
/// and available to users debugging their own extensions).

#pragma once

#include <string>
#include <vector>

#include "common/status.h"
#include "lst/table_metadata.h"

namespace autocomp::lst {

/// \brief One violated invariant.
struct HistoryViolation {
  /// Snapshot where the violation was detected (0 = metadata-level).
  int64_t snapshot_id = 0;
  std::string message;
};

/// \brief Checks the invariants of a metadata instance:
///  1. snapshot ids are unique and the parent chain is linear
///     (each snapshot's parent is its predecessor);
///  2. sequence numbers strictly increase along the chain;
///  3. timestamps never decrease along the chain;
///  4. the current snapshot exists and is the chain's head;
///  5. replaying the history — applying each snapshot's additions
///     (files with added_snapshot_id == snapshot) and removals
///     (removed_paths) — reproduces exactly each snapshot's live set;
///  6. no file path is added twice while still live;
///  7. every removed path was live in the parent snapshot;
///  8. summary counters (added/deleted files) match the replay;
///  9. id counters (next_snapshot_id, next_manifest_id,
///     next_sequence_number) exceed every id in use.
///
/// Returns the list of violations (empty = consistent).
std::vector<HistoryViolation> ValidateHistory(const TableMetadata& metadata);

/// \brief Convenience wrapper: OK when consistent, Internal with the
/// first violations otherwise.
Status CheckHistory(const TableMetadata& metadata);

}  // namespace autocomp::lst
