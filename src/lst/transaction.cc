#include "lst/transaction.h"

#include <algorithm>
#include <cassert>

#include "common/logging.h"
#include "fault/fault_injector.h"
#include "obs/trace.h"

namespace autocomp::lst {

Transaction::Transaction(MetadataStore* store, std::string table_name,
                         TableMetadataPtr base, const Clock* clock,
                         ValidationMode mode, fault::FaultInjector* injector,
                         obs::TraceRecorder* trace)
    : store_(store),
      table_name_(std::move(table_name)),
      base_(std::move(base)),
      clock_(clock),
      mode_(mode),
      injector_(injector),
      trace_(trace) {
  assert(store_ != nullptr && clock_ != nullptr && base_ != nullptr);
}

Status Transaction::Conflict(ConflictKind kind,
                             const std::string& detail) const {
  last_conflict_.kind = kind;
  last_conflict_.table = table_name_;
  last_conflict_.detail = detail;
  if (trace_ != nullptr && trace_->enabled(obs::TraceLevel::kFull)) {
    trace_->Instant(obs::TraceLevel::kFull, obs::SpanCategory::kCommit,
                    "commit.conflict", clock_->Now(),
                    "table=" + table_name_ +
                        ";kind=" + ConflictKindName(kind) +
                        ";retryable=" + (last_conflict_.retryable() ? "1"
                                                                    : "0"));
  }
  return Status::CommitConflict(detail);
}

Status Transaction::EnsureOperation(SnapshotOperation op) {
  if (has_operation_ && operation_ != op) {
    return Status::FailedPrecondition(
        "transaction already staged a different operation");
  }
  has_operation_ = true;
  operation_ = op;
  return Status::OK();
}

Status Transaction::Append(std::vector<DataFile> files) {
  AUTOCOMP_RETURN_NOT_OK(EnsureOperation(SnapshotOperation::kAppend));
  if (files.empty()) {
    return Status::InvalidArgument("append requires at least one file");
  }
  added_.insert(added_.end(), std::make_move_iterator(files.begin()),
                std::make_move_iterator(files.end()));
  return Status::OK();
}

Status Transaction::Overwrite(std::vector<std::string> replaced_paths,
                              std::vector<DataFile> added) {
  AUTOCOMP_RETURN_NOT_OK(EnsureOperation(SnapshotOperation::kOverwrite));
  replaced_paths_.insert(replaced_paths_.end(),
                         std::make_move_iterator(replaced_paths.begin()),
                         std::make_move_iterator(replaced_paths.end()));
  added_.insert(added_.end(), std::make_move_iterator(added.begin()),
                std::make_move_iterator(added.end()));
  return Status::OK();
}

Status Transaction::RewriteFiles(std::vector<std::string> replaced_paths,
                                 std::vector<DataFile> added) {
  AUTOCOMP_RETURN_NOT_OK(EnsureOperation(SnapshotOperation::kReplace));
  if (replaced_paths.empty()) {
    return Status::InvalidArgument("rewrite requires input files");
  }
  replaced_paths_.insert(replaced_paths_.end(),
                         std::make_move_iterator(replaced_paths.begin()),
                         std::make_move_iterator(replaced_paths.end()));
  added_.insert(added_.end(), std::make_move_iterator(added.begin()),
                std::make_move_iterator(added.end()));
  return Status::OK();
}

Status Transaction::DeleteFiles(std::vector<std::string> paths) {
  AUTOCOMP_RETURN_NOT_OK(EnsureOperation(SnapshotOperation::kDelete));
  if (paths.empty()) {
    return Status::InvalidArgument("delete requires at least one path");
  }
  replaced_paths_.insert(replaced_paths_.end(),
                         std::make_move_iterator(paths.begin()),
                         std::make_move_iterator(paths.end()));
  return Status::OK();
}

Status Transaction::ValidateAgainst(const TableMetadata& current) const {
  const auto intervening = current.SnapshotsAfter(base_->current_snapshot_id());
  if (intervening.empty()) return Status::OK();

  switch (operation_) {
    case SnapshotOperation::kAppend:
      // Fast-append: never conflicts; it only adds a manifest.
      return Status::OK();
    case SnapshotOperation::kReplace: {
      // Which partitions do my input files live in? Scan the base
      // snapshot's manifests in place — materializing LiveFiles() here
      // copied every live DataFile (paths, partitions) per validation,
      // which dominates rebase cost on large tables.
      std::set<std::string> my_partitions;
      std::set<std::string> my_inputs(replaced_paths_.begin(),
                                      replaced_paths_.end());
      base_->ForEachLiveFile([&](const DataFile& f) {
        if (my_inputs.count(f.path) > 0) my_partitions.insert(f.partition);
      });
      for (const Snapshot* s : intervening) {
        // Fast-appends never invalidate a rewrite: they only add files,
        // and the rebase keeps them. (Iceberg rewrites succeed under
        // concurrent appends.)
        if (s->operation == SnapshotOperation::kAppend) continue;
        // Any operation that removed one of my inputs kills the rewrite
        // — its outputs would resurrect deleted/rewritten data.
        if (s->removed_paths != nullptr) {
          for (const std::string& p : *s->removed_paths) {
            if (my_inputs.count(p) > 0) {
              return Conflict(
                  ConflictKind::kInputRemoved,
                  "rewrite input removed by concurrent commit: " + p);
            }
          }
        }
        if (s->operation == SnapshotOperation::kReplace) {
          if (mode_ == ValidationMode::kStrictTableLevel) {
            // Iceberg v1.2.0 behaviour observed in the paper (§4.4):
            // concurrent rewrites of the SAME TABLE conflict even when
            // they target disjoint partitions.
            return Conflict(ConflictKind::kStrictTableLevel,
                            "concurrent rewrite on table " + table_name_ +
                                " (strict table-level validation)");
          }
          // Partition-aware conflict filtering (§8): only overlapping
          // partitions conflict.
          for (const std::string& part : s->touched_partitions) {
            if (my_partitions.count(part) > 0) {
              return Conflict(ConflictKind::kPartitionOverlap,
                              "concurrent rewrite touched partition " + part);
            }
          }
        }
      }
      return Status::OK();
    }
    case SnapshotOperation::kOverwrite:
    case SnapshotOperation::kDelete: {
      // An overwrite/delete read specific files; it conflicts when any of
      // them is no longer live (e.g. compaction rewrote them) — this is
      // the client-side versioning conflict users hit when compaction
      // races their write queries (Table 1).
      for (const std::string& path : replaced_paths_) {
        if (!current.IsLive(path)) {
          return Conflict(
              ConflictKind::kStaleOverwrite,
              "overwritten file no longer live (stale metadata): " + path);
        }
      }
      return Status::OK();
    }
  }
  return Status::Internal("unreachable");
}

Result<TableMetadataPtr> Transaction::Apply(const TableMetadata& current,
                                            CommitDelta* delta) const {
  TableMetadata::Builder builder(current);
  Snapshot snap;
  snap.snapshot_id = builder.AllocateSnapshotId();
  snap.parent_snapshot_id = current.current_snapshot_id();
  snap.sequence_number = builder.AllocateSequenceNumber();
  snap.timestamp = clock_->Now();
  snap.operation = operation_;

  delta->known = true;
  delta->snapshot_id = snap.snapshot_id;
  delta->operation = operation_;
  delta->added.clear();
  delta->removed.clear();

  const Snapshot* base_snap = current.current_snapshot();
  ManifestList manifests =
      base_snap == nullptr ? ManifestList{} : base_snap->manifests;

  auto removed = std::make_shared<std::set<std::string>>();

  if (!replaced_paths_.empty()) {
    const std::set<std::string> to_remove(replaced_paths_.begin(),
                                          replaced_paths_.end());
    ManifestList filtered;
    filtered.reserve(manifests.size());
    for (const ManifestPtr& m : manifests) {
      const bool touched = std::any_of(
          m->files().begin(), m->files().end(),
          [&](const DataFile& f) { return to_remove.count(f.path) > 0; });
      if (!touched) {
        filtered.push_back(m);
        continue;
      }
      std::vector<DataFile> kept = builder.TakeFileBuffer();
      kept.reserve(m->files().size());
      for (const DataFile& f : m->files()) {
        if (to_remove.count(f.path) > 0) {
          snap.deleted_files += 1;
          snap.deleted_bytes += f.file_size_bytes;
          snap.touched_partitions.insert(f.partition);
          removed->insert(f.path);
          delta->removed.push_back(f);
        } else {
          kept.push_back(f);
        }
      }
      if (!kept.empty()) {
        filtered.push_back(builder.NewManifest(std::move(kept)));
      }
    }
    manifests = std::move(filtered);
    // Replaced paths that were not live: appends racing deletes could
    // cause this; validation should have caught genuine conflicts.
    if (removed->size() != replaced_paths_.size()) {
      return Conflict(ConflictKind::kReplacedNotLive,
                      "some replaced files are not live in " + table_name_);
    }
  }

  if (!added_.empty()) {
    std::vector<DataFile> stamped = added_;
    for (DataFile& f : stamped) {
      f.added_snapshot_id = snap.snapshot_id;
      f.sequence_number = snap.sequence_number;
      snap.added_files += 1;
      snap.added_bytes += f.file_size_bytes;
      snap.added_records += f.record_count;
      snap.touched_partitions.insert(f.partition);
    }
    delta->added = stamped;
    manifests.push_back(builder.NewManifest(std::move(stamped)));
  }

  const int64_t max_manifests =
      current.properties().GetInt(kPropMaxManifests, 100);
  manifests = MaybeMergeManifests(std::move(manifests), max_manifests,
                                  &builder);

  snap.manifests = std::move(manifests);
  snap.removed_paths =
      removed->empty() ? nullptr
                       : std::shared_ptr<const std::set<std::string>>(removed);
  builder.AddSnapshot(std::move(snap));
  builder.SetLastUpdatedAt(clock_->Now());
  return builder.Build();
}

Result<CommitResult> Transaction::CommitInternal(bool* cas_race) {
  *cas_race = false;
  if (!has_operation_) {
    return Status::FailedPrecondition("nothing staged to commit");
  }
  AUTOCOMP_ASSIGN_OR_RETURN(TableMetadataPtr current,
                            store_->LoadTable(table_name_));
  if (current->version() != base_->version()) {
    // Someone committed since we captured the base: validate the rebase.
    // A rejection here is terminal (the operation is genuinely lost).
    AUTOCOMP_RETURN_NOT_OK(ValidateAgainst(*current));
  }
  // Injected commit faults: a CAS race (a concurrent writer "won" the
  // swap — retryable, nothing was installed) or a validation abort
  // (terminal). The disjoint-rewrite kind models the v1.2.0 quirk and
  // only applies to rewrites; for other operations it degrades to no
  // fault.
  if (injector_ != nullptr) {
    const fault::FaultKind kind =
        injector_->Arm(fault::kSiteLstCommit, table_name_);
    const Status injected =
        fault::FaultInjector::ToStatus(kind, fault::kSiteLstCommit,
                                       table_name_);
    switch (kind) {
      case fault::FaultKind::kCasRaceConflict:
        *cas_race = true;
        return Conflict(ConflictKind::kInjectedCasRace, injected.message());
      case fault::FaultKind::kValidationAbort:
        return Conflict(ConflictKind::kInjectedValidation,
                        injected.message());
      case fault::FaultKind::kDisjointRewriteAbort:
        if (operation_ == SnapshotOperation::kReplace) {
          return Conflict(ConflictKind::kInjectedValidation,
                          injected.message());
        }
        break;
      default:
        break;
    }
  }
  CommitDelta delta;
  AUTOCOMP_ASSIGN_OR_RETURN(TableMetadataPtr next, Apply(*current, &delta));
  const Status cas = store_->CommitTableWithDelta(table_name_,
                                                  current->version(), next,
                                                  delta);
  if (!cas.ok()) {
    // A CAS failure means another commit landed between our load and our
    // swap; the caller may rebase and retry.
    *cas_race = cas.IsCommitConflict();
    if (*cas_race) {
      return Conflict(ConflictKind::kCasRace, cas.message());
    }
    return cas;
  }
  CommitResult result;
  result.snapshot_id = next->current_snapshot_id();
  result.retries = 0;
  result.metadata = next;
  last_conflict_ = ConflictInfo{};
  if (trace_ != nullptr && trace_->enabled(obs::TraceLevel::kFull)) {
    trace_->Instant(obs::TraceLevel::kFull, obs::SpanCategory::kCommit,
                    "commit.success", clock_->Now(),
                    "table=" + table_name_ + ";op=" +
                        SnapshotOperationName(operation_) + ";snapshot=" +
                        std::to_string(result.snapshot_id),
                    static_cast<double>(added_.size()));
  }
  return result;
}

Result<CommitResult> Transaction::Commit() {
  bool cas_race = false;
  return CommitInternal(&cas_race);
}

Result<CommitResult> Transaction::CommitWithRetries(int max_retries) {
  int retries = 0;
  while (true) {
    bool cas_race = false;
    Result<CommitResult> attempt = CommitInternal(&cas_race);
    if (attempt.ok()) {
      attempt->retries = retries;
      return attempt;
    }
    if (!cas_race) return attempt.status();  // validation rejection: final
    if (retries >= max_retries) {
      return Conflict(ConflictKind::kRetriesExhausted,
                      "retries exhausted after " + std::to_string(retries) +
                          " attempts");
    }
    ++retries;
    // Retry: CommitInternal reloads the current version and re-validates
    // against the ORIGINAL base, so strict-mode rewrites still conflict
    // after a rebase.
  }
}

}  // namespace autocomp::lst
