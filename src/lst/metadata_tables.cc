#include "lst/metadata_tables.h"

#include <algorithm>
#include <map>

namespace autocomp::lst {

std::vector<PartitionRow> MetadataTables::Partitions() const {
  std::map<std::string, PartitionRow> rows;
  const Snapshot* snap = metadata_->current_snapshot();
  if (snap == nullptr) return {};

  // Last-modified per partition from the snapshot history.
  std::map<std::string, SimTime> last_modified;
  for (const Snapshot& s : metadata_->snapshots()) {
    for (const std::string& p : s.touched_partitions) {
      last_modified[p] = std::max(last_modified[p], s.timestamp);
    }
  }

  for (const ManifestPtr& m : snap->manifests) {
    for (const DataFile& f : m->files()) {
      PartitionRow& row = rows[f.partition];
      if (row.file_count == 0) {
        row.partition = f.partition;
        row.smallest_file_bytes = f.file_size_bytes;
        row.largest_file_bytes = f.file_size_bytes;
      } else {
        row.smallest_file_bytes =
            std::min(row.smallest_file_bytes, f.file_size_bytes);
        row.largest_file_bytes =
            std::max(row.largest_file_bytes, f.file_size_bytes);
      }
      row.file_count += 1;
      row.total_bytes += f.file_size_bytes;
      row.record_count += f.record_count;
      const auto it = last_modified.find(f.partition);
      if (it != last_modified.end()) row.last_modified_at = it->second;
    }
  }
  std::vector<PartitionRow> out;
  out.reserve(rows.size());
  for (auto& [_, row] : rows) out.push_back(std::move(row));
  return out;
}

std::vector<SnapshotRow> MetadataTables::Snapshots() const {
  std::vector<SnapshotRow> out;
  out.reserve(metadata_->snapshots().size());
  for (const Snapshot& s : metadata_->snapshots()) {
    SnapshotRow row;
    row.snapshot_id = s.snapshot_id;
    row.parent_snapshot_id = s.parent_snapshot_id;
    row.committed_at = s.timestamp;
    row.operation = SnapshotOperationName(s.operation);
    row.added_files = s.added_files;
    row.deleted_files = s.deleted_files;
    row.added_bytes = s.added_bytes;
    out.push_back(std::move(row));
  }
  return out;
}

std::vector<ManifestRow> MetadataTables::Manifests() const {
  std::vector<ManifestRow> out;
  const Snapshot* snap = metadata_->current_snapshot();
  if (snap == nullptr) return out;
  out.reserve(snap->manifests.size());
  for (const ManifestPtr& m : snap->manifests) {
    ManifestRow row;
    row.manifest_id = m->manifest_id();
    row.file_count = m->file_count();
    row.total_bytes = m->total_bytes();
    row.partition_count = m->partition_count();
    out.push_back(row);
  }
  return out;
}

std::vector<DataFile> MetadataTables::FilesAddedAfter(
    int64_t after_snapshot_id) const {
  std::vector<DataFile> out;
  ForEachFileAddedAfter(after_snapshot_id,
                        [&out](const DataFile& f) { out.push_back(f); });
  return out;
}

void MetadataTables::ForEachFileAddedAfter(
    int64_t after_snapshot_id,
    const std::function<void(const DataFile&)>& fn) const {
  metadata_->ForEachLiveFile([&](const DataFile& f) {
    if (f.added_snapshot_id > after_snapshot_id) fn(f);
  });
}

}  // namespace autocomp::lst
