/// \file partition.h
/// \brief Partition specs and value transforms (Iceberg-style hidden
/// partitioning).

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "lst/types.h"

namespace autocomp::lst {

/// \brief Value transform applied to a source column to derive the
/// partition value.
enum class Transform : int {
  kIdentity,
  /// Year-month of a kDate column ("1995-03"). The LINEITEM table in the
  /// evaluation is partitioned by month(SHIPDATE).
  kMonth,
  /// Calendar day of a kDate column ("1995-03-07").
  kDay,
  /// Year of a kDate column ("1995").
  kYear,
  /// Hash bucket of any column ("bucket_17").
  kBucket,
};

const char* TransformName(Transform t);

/// \brief One partition dimension: a source field plus a transform.
struct PartitionField {
  int32_t source_field_id = 0;
  Transform transform = Transform::kIdentity;
  std::string name;
  /// For kBucket only.
  int32_t bucket_count = 0;
};

/// \brief Applies `transform` to a raw column value.
/// For date transforms, `value` is days since 1970-01-01.
std::string ApplyTransform(Transform transform, int64_t value,
                           int32_t bucket_count = 0);

/// \brief Partition layout of a table. An empty spec means the table is
/// unpartitioned (the ORDERS table in the evaluation).
class PartitionSpec {
 public:
  PartitionSpec() = default;
  PartitionSpec(int32_t spec_id, std::vector<PartitionField> fields)
      : spec_id_(spec_id), fields_(std::move(fields)) {}

  /// Unpartitioned spec (spec id 0, no fields).
  static PartitionSpec Unpartitioned() { return PartitionSpec(); }

  int32_t spec_id() const { return spec_id_; }
  const std::vector<PartitionField>& fields() const { return fields_; }
  bool is_partitioned() const { return !fields_.empty(); }

  /// Derives the partition key ("month=1995-03") from raw source values,
  /// one per partition field, in spec order.
  Result<std::string> PartitionKeyFor(const std::vector<int64_t>& values) const;

  /// Validates the spec against a schema: every source field must exist,
  /// and date transforms require kDate sources.
  Status Validate(const Schema& schema) const;

  std::string ToString() const;

 private:
  int32_t spec_id_ = 0;
  std::vector<PartitionField> fields_;
};

/// \brief Civil-date helpers for the date transforms.
/// Days since 1970-01-01 -> {year, month (1-12), day (1-31)}.
struct CivilDate {
  int32_t year = 1970;
  int32_t month = 1;
  int32_t day = 1;
};
CivilDate CivilFromDays(int64_t days);
/// Inverse of CivilFromDays.
int64_t DaysFromCivil(int32_t year, int32_t month, int32_t day);

}  // namespace autocomp::lst
