#include "lst/history_validator.h"

#include <map>
#include <set>

namespace autocomp::lst {

namespace {

void Add(std::vector<HistoryViolation>* out, int64_t snapshot_id,
         std::string message) {
  out->push_back(HistoryViolation{snapshot_id, std::move(message)});
}

}  // namespace

std::vector<HistoryViolation> ValidateHistory(const TableMetadata& metadata) {
  std::vector<HistoryViolation> violations;
  const auto& snapshots = metadata.snapshots();

  // --- metadata-level checks.
  if (metadata.current_snapshot_id() != 0 &&
      metadata.current_snapshot() == nullptr) {
    Add(&violations, 0, "current snapshot id not present in history");
  }
  if (!snapshots.empty() &&
      metadata.current_snapshot_id() != snapshots.back().snapshot_id) {
    Add(&violations, 0, "current snapshot is not the head of the chain");
  }

  // --- chain checks.
  std::set<int64_t> ids;
  int64_t prev_id = 0;
  int64_t prev_sequence = 0;
  SimTime prev_timestamp = -1;
  int64_t max_manifest_id = 0;
  for (size_t i = 0; i < snapshots.size(); ++i) {
    const Snapshot& s = snapshots[i];
    if (!ids.insert(s.snapshot_id).second) {
      Add(&violations, s.snapshot_id, "duplicate snapshot id");
    }
    if (i > 0 && s.parent_snapshot_id != prev_id) {
      Add(&violations, s.snapshot_id,
          "parent id " + std::to_string(s.parent_snapshot_id) +
              " is not the predecessor " + std::to_string(prev_id));
    }
    if (s.sequence_number <= prev_sequence) {
      Add(&violations, s.snapshot_id, "sequence number not increasing");
    }
    if (s.timestamp < prev_timestamp) {
      Add(&violations, s.snapshot_id, "timestamp went backwards");
    }
    if (s.snapshot_id >= metadata.next_snapshot_id()) {
      Add(&violations, s.snapshot_id, "snapshot id beyond next_snapshot_id");
    }
    if (s.sequence_number >= metadata.next_sequence_number()) {
      Add(&violations, s.snapshot_id,
          "sequence number beyond next_sequence_number");
    }
    for (const ManifestPtr& m : s.manifests) {
      max_manifest_id = std::max(max_manifest_id, m->manifest_id());
    }
    prev_id = s.snapshot_id;
    prev_sequence = s.sequence_number;
    prev_timestamp = s.timestamp;
  }
  if (max_manifest_id >= metadata.next_manifest_id()) {
    Add(&violations, 0, "manifest id beyond next_manifest_id");
  }

  // --- replay: rebuild every snapshot's live set from the previous one.
  //
  // Note: the first retained snapshot after an expiry carries files added
  // by expired (now absent) snapshots, so the replay seeds from the first
  // snapshot's actual live set and checks the *transitions*.
  std::map<std::string, DataFile> live;
  for (size_t i = 0; i < snapshots.size(); ++i) {
    const Snapshot& s = snapshots[i];
    // Collect this snapshot's actual live set.
    std::map<std::string, DataFile> actual;
    for (const ManifestPtr& m : s.manifests) {
      for (const DataFile& f : m->files()) {
        if (!actual.emplace(f.path, f).second) {
          Add(&violations, s.snapshot_id,
              "path appears twice in live set: " + f.path);
        }
      }
    }
    if (i == 0) {
      live = actual;
      continue;
    }
    // Apply the delta to the previous live set.
    int64_t removed_count = 0;
    if (s.removed_paths != nullptr) {
      for (const std::string& path : *s.removed_paths) {
        const auto it = live.find(path);
        if (it == live.end()) {
          Add(&violations, s.snapshot_id,
              "removed path was not live in parent: " + path);
        } else {
          live.erase(it);
          ++removed_count;
        }
      }
    }
    int64_t added_count = 0;
    for (const auto& [path, file] : actual) {
      if (file.added_snapshot_id == s.snapshot_id) {
        if (!live.emplace(path, file).second) {
          Add(&violations, s.snapshot_id,
              "added path was already live: " + path);
        }
        ++added_count;
      }
    }
    // The replayed set must equal the actual set.
    if (live.size() != actual.size()) {
      Add(&violations, s.snapshot_id,
          "replayed live set size " + std::to_string(live.size()) +
              " != actual " + std::to_string(actual.size()));
    } else {
      for (const auto& [path, _] : actual) {
        if (live.count(path) == 0) {
          Add(&violations, s.snapshot_id,
              "replayed live set missing path: " + path);
          break;
        }
      }
    }
    // Summary counters.
    if (s.added_files != added_count) {
      Add(&violations, s.snapshot_id,
          "summary added_files=" + std::to_string(s.added_files) +
              " but replay added " + std::to_string(added_count));
    }
    if (s.deleted_files != removed_count) {
      Add(&violations, s.snapshot_id,
          "summary deleted_files=" + std::to_string(s.deleted_files) +
              " but replay removed " + std::to_string(removed_count));
    }
    live = actual;  // re-sync so one violation does not cascade
  }
  return violations;
}

Status CheckHistory(const TableMetadata& metadata) {
  const auto violations = ValidateHistory(metadata);
  if (violations.empty()) return Status::OK();
  std::string message = "history of " + metadata.name() + " inconsistent: ";
  for (size_t i = 0; i < violations.size() && i < 3; ++i) {
    if (i > 0) message += "; ";
    message += "[snap " + std::to_string(violations[i].snapshot_id) + "] " +
               violations[i].message;
  }
  if (violations.size() > 3) {
    message += "; (+" + std::to_string(violations.size() - 3) + " more)";
  }
  return Status::Internal(message);
}

}  // namespace autocomp::lst
