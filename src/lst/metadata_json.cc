#include "lst/metadata_json.h"

#include <cstdio>
#include <map>
#include <set>

#include "common/json.h"
#include "common/units.h"

namespace autocomp::lst {

namespace {

// ----- enum <-> string ------------------------------------------------

Result<FieldType> FieldTypeFromName(const std::string& name) {
  static const std::map<std::string, FieldType> kByName = {
      {"bool", FieldType::kBool},       {"int32", FieldType::kInt32},
      {"int64", FieldType::kInt64},     {"double", FieldType::kDouble},
      {"string", FieldType::kString},   {"date", FieldType::kDate},
      {"timestamp", FieldType::kTimestamp},
  };
  const auto it = kByName.find(name);
  if (it == kByName.end()) {
    return Status::InvalidArgument("unknown field type: " + name);
  }
  return it->second;
}

Result<Transform> TransformFromName(const std::string& name) {
  static const std::map<std::string, Transform> kByName = {
      {"identity", Transform::kIdentity}, {"month", Transform::kMonth},
      {"day", Transform::kDay},           {"year", Transform::kYear},
      {"bucket", Transform::kBucket},
  };
  const auto it = kByName.find(name);
  if (it == kByName.end()) {
    return Status::InvalidArgument("unknown transform: " + name);
  }
  return it->second;
}

Result<SnapshotOperation> OperationFromName(const std::string& name) {
  static const std::map<std::string, SnapshotOperation> kByName = {
      {"append", SnapshotOperation::kAppend},
      {"overwrite", SnapshotOperation::kOverwrite},
      {"replace", SnapshotOperation::kReplace},
      {"delete", SnapshotOperation::kDelete},
  };
  const auto it = kByName.find(name);
  if (it == kByName.end()) {
    return Status::InvalidArgument("unknown snapshot operation: " + name);
  }
  return it->second;
}

// ----- serialization ---------------------------------------------------

JsonValue FileToJson(const DataFile& f) {
  JsonValue obj = JsonValue::Object();
  obj.Set("path", f.path);
  obj.Set("partition", f.partition);
  obj.Set("content", f.content == FileContent::kPositionDeletes
                         ? "position-deletes"
                         : "data");
  obj.Set("file-size-bytes", f.file_size_bytes);
  obj.Set("record-count", f.record_count);
  obj.Set("clustered", f.clustered);
  obj.Set("added-snapshot-id", f.added_snapshot_id);
  obj.Set("sequence-number", f.sequence_number);
  return obj;
}

Result<DataFile> FileFromJson(const JsonValue& obj) {
  DataFile f;
  AUTOCOMP_ASSIGN_OR_RETURN(f.path, obj.Get("path").AsString());
  AUTOCOMP_ASSIGN_OR_RETURN(f.partition, obj.Get("partition").AsString());
  AUTOCOMP_ASSIGN_OR_RETURN(std::string content,
                            obj.Get("content").AsString());
  f.content = content == "position-deletes" ? FileContent::kPositionDeletes
                                            : FileContent::kData;
  AUTOCOMP_ASSIGN_OR_RETURN(f.file_size_bytes,
                            obj.Get("file-size-bytes").AsInt());
  AUTOCOMP_ASSIGN_OR_RETURN(f.record_count, obj.Get("record-count").AsInt());
  AUTOCOMP_ASSIGN_OR_RETURN(f.clustered, obj.Get("clustered").AsBool());
  AUTOCOMP_ASSIGN_OR_RETURN(f.added_snapshot_id,
                            obj.Get("added-snapshot-id").AsInt());
  AUTOCOMP_ASSIGN_OR_RETURN(f.sequence_number,
                            obj.Get("sequence-number").AsInt());
  return f;
}

}  // namespace

std::string TableMetadataToJson(const TableMetadata& metadata) {
  JsonValue root = JsonValue::Object();
  root.Set("format-version", 1);
  root.Set("name", metadata.name());
  root.Set("location", metadata.location());
  root.Set("version", metadata.version());
  root.Set("created-at", metadata.created_at());
  root.Set("last-updated-at", metadata.last_updated_at());
  root.Set("current-snapshot-id", metadata.current_snapshot_id());
  root.Set("next-snapshot-id", metadata.next_snapshot_id());
  root.Set("next-manifest-id", metadata.next_manifest_id());
  root.Set("next-sequence-number", metadata.next_sequence_number());

  // Schema.
  JsonValue schema = JsonValue::Object();
  schema.Set("schema-id", metadata.schema().schema_id());
  JsonValue fields = JsonValue::Array();
  for (const Field& f : metadata.schema().fields()) {
    JsonValue field = JsonValue::Object();
    field.Set("id", f.id);
    field.Set("name", f.name);
    field.Set("type", FieldTypeName(f.type));
    field.Set("required", f.required);
    fields.Append(std::move(field));
  }
  schema.Set("fields", std::move(fields));
  root.Set("schema", std::move(schema));

  // Partition spec.
  JsonValue spec = JsonValue::Object();
  spec.Set("spec-id", metadata.partition_spec().spec_id());
  JsonValue spec_fields = JsonValue::Array();
  for (const PartitionField& pf : metadata.partition_spec().fields()) {
    JsonValue field = JsonValue::Object();
    field.Set("source-id", pf.source_field_id);
    field.Set("transform", TransformName(pf.transform));
    field.Set("name", pf.name);
    field.Set("bucket-count", pf.bucket_count);
    spec_fields.Append(std::move(field));
  }
  spec.Set("fields", std::move(spec_fields));
  root.Set("partition-spec", std::move(spec));

  // Properties.
  JsonValue properties = JsonValue::Object();
  for (const auto& [key, value] : metadata.properties().entries()) {
    properties.Set(key, value);
  }
  root.Set("properties", std::move(properties));

  // Manifest pool: unique manifests across all snapshots (shared between
  // versions exactly like Iceberg reuses manifest files).
  std::map<int64_t, ManifestPtr> pool;
  for (const Snapshot& s : metadata.snapshots()) {
    for (const ManifestPtr& m : s.manifests) {
      pool.emplace(m->manifest_id(), m);
    }
  }
  JsonValue manifests = JsonValue::Array();
  for (const auto& [id, manifest] : pool) {
    JsonValue m = JsonValue::Object();
    m.Set("id", id);
    JsonValue files = JsonValue::Array();
    for (const DataFile& f : manifest->files()) {
      files.Append(FileToJson(f));
    }
    m.Set("files", std::move(files));
    manifests.Append(std::move(m));
  }
  root.Set("manifests", std::move(manifests));

  // Snapshots referencing manifest ids.
  JsonValue snapshots = JsonValue::Array();
  for (const Snapshot& s : metadata.snapshots()) {
    JsonValue snap = JsonValue::Object();
    snap.Set("snapshot-id", s.snapshot_id);
    snap.Set("parent-snapshot-id", s.parent_snapshot_id);
    snap.Set("sequence-number", s.sequence_number);
    snap.Set("timestamp", s.timestamp);
    snap.Set("operation", SnapshotOperationName(s.operation));
    snap.Set("added-files", s.added_files);
    snap.Set("deleted-files", s.deleted_files);
    snap.Set("added-bytes", s.added_bytes);
    snap.Set("deleted-bytes", s.deleted_bytes);
    snap.Set("added-records", s.added_records);
    JsonValue manifest_ids = JsonValue::Array();
    for (const ManifestPtr& m : s.manifests) {
      manifest_ids.Append(m->manifest_id());
    }
    snap.Set("manifest-ids", std::move(manifest_ids));
    JsonValue touched = JsonValue::Array();
    for (const std::string& p : s.touched_partitions) touched.Append(p);
    snap.Set("touched-partitions", std::move(touched));
    JsonValue removed = JsonValue::Array();
    if (s.removed_paths != nullptr) {
      for (const std::string& p : *s.removed_paths) removed.Append(p);
    }
    snap.Set("removed-paths", std::move(removed));
    snapshots.Append(std::move(snap));
  }
  root.Set("snapshots", std::move(snapshots));
  return root.Dump();
}

Result<TableMetadataPtr> TableMetadataFromJson(const std::string& json) {
  AUTOCOMP_ASSIGN_OR_RETURN(JsonValue root, JsonValue::Parse(json));
  if (root.Get("format-version").as_int() != 1) {
    return Status::InvalidArgument("unsupported metadata format version");
  }

  // Schema.
  const JsonValue& schema_json = root.Get("schema");
  std::vector<Field> fields;
  for (const JsonValue& fj : schema_json.Get("fields").items()) {
    Field f;
    AUTOCOMP_ASSIGN_OR_RETURN(int64_t id, fj.Get("id").AsInt());
    f.id = static_cast<int32_t>(id);
    AUTOCOMP_ASSIGN_OR_RETURN(f.name, fj.Get("name").AsString());
    AUTOCOMP_ASSIGN_OR_RETURN(std::string type_name,
                              fj.Get("type").AsString());
    AUTOCOMP_ASSIGN_OR_RETURN(f.type, FieldTypeFromName(type_name));
    AUTOCOMP_ASSIGN_OR_RETURN(f.required, fj.Get("required").AsBool());
    fields.push_back(std::move(f));
  }
  Schema schema(static_cast<int32_t>(schema_json.Get("schema-id").as_int()),
                std::move(fields));

  // Partition spec.
  const JsonValue& spec_json = root.Get("partition-spec");
  std::vector<PartitionField> spec_fields;
  for (const JsonValue& fj : spec_json.Get("fields").items()) {
    PartitionField pf;
    AUTOCOMP_ASSIGN_OR_RETURN(int64_t source, fj.Get("source-id").AsInt());
    pf.source_field_id = static_cast<int32_t>(source);
    AUTOCOMP_ASSIGN_OR_RETURN(std::string transform,
                              fj.Get("transform").AsString());
    AUTOCOMP_ASSIGN_OR_RETURN(pf.transform, TransformFromName(transform));
    AUTOCOMP_ASSIGN_OR_RETURN(pf.name, fj.Get("name").AsString());
    pf.bucket_count =
        static_cast<int32_t>(fj.Get("bucket-count").as_int());
    spec_fields.push_back(std::move(pf));
  }
  PartitionSpec spec(static_cast<int32_t>(spec_json.Get("spec-id").as_int()),
                     std::move(spec_fields));

  AUTOCOMP_ASSIGN_OR_RETURN(std::string name, root.Get("name").AsString());
  AUTOCOMP_ASSIGN_OR_RETURN(std::string location,
                            root.Get("location").AsString());
  TableMetadata::Builder builder(name, location, std::move(schema),
                                 std::move(spec));

  // Properties.
  Config properties;
  for (const auto& [key, value] : root.Get("properties").members()) {
    AUTOCOMP_ASSIGN_OR_RETURN(std::string v, value.AsString());
    properties.Set(key, v);
  }
  builder.SetProperties(std::move(properties));
  builder.SetCreatedAt(root.Get("created-at").as_int());

  // Manifest pool, revived through one shared factory so the restored
  // lineage interns partition keys into a single arena (and successor
  // commits inherit it via Builder(base)).
  auto factory = std::make_shared<ManifestFactory>();
  builder.RestoreManifestFactory(factory);
  std::map<int64_t, ManifestPtr> pool;
  for (const JsonValue& mj : root.Get("manifests").items()) {
    AUTOCOMP_ASSIGN_OR_RETURN(int64_t id, mj.Get("id").AsInt());
    std::vector<DataFile> files;
    for (const JsonValue& fj : mj.Get("files").items()) {
      AUTOCOMP_ASSIGN_OR_RETURN(DataFile f, FileFromJson(fj));
      files.push_back(std::move(f));
    }
    pool.emplace(id, factory->Make(id, std::move(files)));
  }

  // Snapshots. Build()'s consistency checks require the current snapshot
  // to exist; reconstruct history in order via SetSnapshots + AddSnapshot
  // on the final (current) one.
  std::vector<Snapshot> snapshots;
  for (const JsonValue& sj : root.Get("snapshots").items()) {
    Snapshot s;
    AUTOCOMP_ASSIGN_OR_RETURN(s.snapshot_id, sj.Get("snapshot-id").AsInt());
    AUTOCOMP_ASSIGN_OR_RETURN(s.parent_snapshot_id,
                              sj.Get("parent-snapshot-id").AsInt());
    AUTOCOMP_ASSIGN_OR_RETURN(s.sequence_number,
                              sj.Get("sequence-number").AsInt());
    AUTOCOMP_ASSIGN_OR_RETURN(s.timestamp, sj.Get("timestamp").AsInt());
    AUTOCOMP_ASSIGN_OR_RETURN(std::string op,
                              sj.Get("operation").AsString());
    AUTOCOMP_ASSIGN_OR_RETURN(s.operation, OperationFromName(op));
    s.added_files = sj.Get("added-files").as_int();
    s.deleted_files = sj.Get("deleted-files").as_int();
    s.added_bytes = sj.Get("added-bytes").as_int();
    s.deleted_bytes = sj.Get("deleted-bytes").as_int();
    s.added_records = sj.Get("added-records").as_int();
    for (const JsonValue& id : sj.Get("manifest-ids").items()) {
      const auto it = pool.find(id.as_int());
      if (it == pool.end()) {
        return Status::InvalidArgument("snapshot references unknown manifest " +
                                       std::to_string(id.as_int()));
      }
      s.manifests.push_back(it->second);
    }
    for (const JsonValue& p : sj.Get("touched-partitions").items()) {
      AUTOCOMP_ASSIGN_OR_RETURN(std::string partition, p.AsString());
      s.touched_partitions.insert(std::move(partition));
    }
    if (sj.Get("removed-paths").size() > 0) {
      auto removed = std::make_shared<std::set<std::string>>();
      for (const JsonValue& p : sj.Get("removed-paths").items()) {
        AUTOCOMP_ASSIGN_OR_RETURN(std::string path, p.AsString());
        removed->insert(std::move(path));
      }
      s.removed_paths = std::move(removed);
    }
    snapshots.push_back(std::move(s));
  }
  if (!snapshots.empty()) {
    Snapshot current = std::move(snapshots.back());
    snapshots.pop_back();
    builder.SetSnapshots(std::move(snapshots));
    builder.AddSnapshot(std::move(current));
  }
  builder.SetLastUpdatedAt(root.Get("last-updated-at").as_int());
  builder.RestoreVersion(root.Get("version").as_int());
  builder.RestoreCounters(root.Get("next-snapshot-id").as_int(),
                          root.Get("next-manifest-id").as_int(),
                          root.Get("next-sequence-number").as_int());
  const int64_t current_id = root.Get("current-snapshot-id").as_int();
  AUTOCOMP_ASSIGN_OR_RETURN(TableMetadataPtr meta, builder.Build());
  if (meta->current_snapshot_id() != current_id) {
    return Status::InvalidArgument(
        "current-snapshot-id does not match the last snapshot");
  }
  return meta;
}

Result<int64_t> PersistMetadataFootprint(storage::DistributedFileSystem* dfs,
                                         const TableMetadata& metadata) {
  int64_t created = 0;
  const std::string json = TableMetadataToJson(metadata);
  char name[64];
  std::snprintf(name, sizeof(name), "/metadata/v%06lld.metadata.json",
                static_cast<long long>(metadata.version()));
  const std::string metadata_path = metadata.location() + name;
  if (!dfs->Exists(metadata_path)) {
    AUTOCOMP_RETURN_NOT_OK(dfs->CreateFile(
        metadata_path, static_cast<int64_t>(json.size()), 0));
    ++created;
  }
  const Snapshot* snap = metadata.current_snapshot();
  if (snap != nullptr) {
    for (const ManifestPtr& m : snap->manifests) {
      char mname[64];
      std::snprintf(mname, sizeof(mname), "/metadata/manifest-%06lld.avro",
                    static_cast<long long>(m->manifest_id()));
      const std::string manifest_path = metadata.location() + mname;
      if (!dfs->Exists(manifest_path)) {
        // Manifest size model: fixed header + ~200B per file entry.
        AUTOCOMP_RETURN_NOT_OK(dfs->CreateFile(
            manifest_path, 8 * kKiB + 200 * m->file_count(), 0));
        ++created;
      }
    }
  }
  return created;
}

Result<int64_t> ExpireMetadataFootprint(storage::DistributedFileSystem* dfs,
                                        const TableMetadata& metadata,
                                        int64_t up_to_version) {
  int64_t removed = 0;
  for (const storage::FileInfo& info :
       dfs->ListFiles(metadata.location() + "/metadata")) {
    // Match "vNNNNNN.metadata.json" and extract the version.
    const size_t slash = info.path.rfind('/');
    const std::string base = info.path.substr(slash + 1);
    long long version = 0;
    if (std::sscanf(base.c_str(), "v%lld.metadata.json", &version) == 1 &&
        version <= up_to_version) {
      AUTOCOMP_RETURN_NOT_OK(dfs->DeleteFile(info.path));
      ++removed;
    }
  }
  return removed;
}

Result<int64_t> ExpireManifestFootprint(storage::DistributedFileSystem* dfs,
                                        const TableMetadata& metadata) {
  std::set<long long> referenced;
  for (const Snapshot& s : metadata.snapshots()) {
    for (const ManifestPtr& m : s.manifests) {
      referenced.insert(static_cast<long long>(m->manifest_id()));
    }
  }
  int64_t removed = 0;
  for (const storage::FileInfo& info :
       dfs->ListFiles(metadata.location() + "/metadata")) {
    const size_t slash = info.path.rfind('/');
    const std::string base = info.path.substr(slash + 1);
    long long manifest_id = 0;
    if (std::sscanf(base.c_str(), "manifest-%lld.avro", &manifest_id) == 1 &&
        referenced.count(manifest_id) == 0) {
      AUTOCOMP_RETURN_NOT_OK(dfs->DeleteFile(info.path));
      ++removed;
    }
  }
  return removed;
}

}  // namespace autocomp::lst
