/// \file metadata_blob.h
/// \brief Compact binary (de)serialization of table metadata for lane
/// checkpoints.
///
/// The JSON codec (metadata_json.h) exists to model the *storage-side*
/// footprint of metadata files; the fleet simulator's lane evictor
/// (DESIGN.md §10) needs something different: an in-memory snapshot of a
/// table's full lineage that restores bit-exactly and costs a fraction
/// of the live object graph. This codec writes the same logical content
/// as TableMetadataToJson — schema, spec, properties, version counters,
/// manifest pool, snapshot history — as length-prefixed binary, with
/// doubles as raw IEEE-754 bits (no decimal round-trip). Restoration
/// follows the exact recipe of TableMetadataFromJson: one shared
/// ManifestFactory per lineage, SetSnapshots + AddSnapshot for the
/// current snapshot, RestoreVersion/RestoreCounters last.

#pragma once

#include "common/blob.h"
#include "common/status.h"
#include "lst/table_metadata.h"

namespace autocomp::lst {

/// \brief Appends one metadata version to `writer`.
void TableMetadataToBlob(const TableMetadata& metadata,
                         common::BlobWriter* writer);

/// \brief Reads one metadata version written by TableMetadataToBlob.
/// Round-trips everything the simulator consumes; the revived lineage
/// shares one ManifestFactory (partition interner + buffer pool).
Result<TableMetadataPtr> TableMetadataFromBlob(common::BlobReader* reader);

}  // namespace autocomp::lst
