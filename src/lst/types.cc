#include "lst/types.h"

namespace autocomp::lst {

const char* FieldTypeName(FieldType type) {
  switch (type) {
    case FieldType::kBool:
      return "bool";
    case FieldType::kInt32:
      return "int32";
    case FieldType::kInt64:
      return "int64";
    case FieldType::kDouble:
      return "double";
    case FieldType::kString:
      return "string";
    case FieldType::kDate:
      return "date";
    case FieldType::kTimestamp:
      return "timestamp";
  }
  return "unknown";
}

Schema::Schema(int32_t schema_id, std::vector<Field> fields)
    : schema_id_(schema_id), fields_(std::move(fields)) {}

Result<Field> Schema::FindField(int32_t field_id) const {
  for (const Field& f : fields_) {
    if (f.id == field_id) return f;
  }
  return Status::NotFound("no field with id " + std::to_string(field_id));
}

Result<Field> Schema::FindFieldByName(const std::string& name) const {
  for (const Field& f : fields_) {
    if (f.name == name) return f;
  }
  return Status::NotFound("no field named " + name);
}

Result<Schema> Schema::AddField(const Field& field) const {
  for (const Field& f : fields_) {
    if (f.id == field.id) {
      return Status::InvalidArgument("duplicate field id " +
                                     std::to_string(field.id));
    }
    if (f.name == field.name) {
      return Status::InvalidArgument("duplicate field name " + field.name);
    }
  }
  std::vector<Field> fields = fields_;
  fields.push_back(field);
  return Schema(schema_id_ + 1, std::move(fields));
}

std::string Schema::ToString() const {
  std::string out = "schema#" + std::to_string(schema_id_) + "(";
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (i > 0) out += ", ";
    out += fields_[i].name;
    out += ":";
    out += FieldTypeName(fields_[i].type);
  }
  out += ")";
  return out;
}

}  // namespace autocomp::lst
