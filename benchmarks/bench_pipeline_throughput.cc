/// \file bench_pipeline_throughput.cc
/// \brief Control-loop throughput: full RunOnce() cycles over a synthetic
/// fleet across collector modes (rescan, cache, incremental stats index,
/// index+cache) and pool sizes, verifying every configuration produces
/// the sequential ranking byte for byte (NFR2).
///
/// The paper projects observe/decide cycles over ~100K tables (§2); this
/// bench measures how fast the framework itself can turn the OODA loop as
/// workers, caching, and the IncrementalStatsIndex are added. Pool sizes
/// above hardware_concurrency are skipped and annotated as invalid:
/// oversubscribed pools on a starved host measure scheduler noise, not
/// speedup. Results land in BENCH_pipeline.json:
///   {"fleet_tables": N, "hardware_concurrency": H, "runs": [
///      {"name": "...", "pool_size": P, "cache": true, "indexed": false,
///       "cold_ms": ..., "best_ms": ..., "tables_per_sec": ...,
///       "speedup_vs_seq": ..., "speedup_vs_cold_seq": ...,
///       "cache_hit_rate": ..., "index_hit_rate": ...}, ...]}
///
/// speedup_vs_seq compares steady-state best runs; speedup_vs_cold_seq
/// compares against the cold seq rescan (run 0, no warm allocator or
/// metadata residency) — the state an advisor actually wakes up in.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "catalog/catalog.h"
#include "catalog/control_plane.h"
#include "common/clock.h"
#include "common/json.h"
#include "common/logging.h"
#include "common/random.h"
#include "common/thread_pool.h"
#include "core/observe.h"
#include "core/pipeline.h"
#include "core/ranking.h"
#include "core/stats_index.h"
#include "core/traits.h"
#include "lst/table.h"
#include "sim/metrics.h"
#include "storage/filesystem.h"

using namespace autocomp;

namespace {

constexpr int kFleetTables = 2000;
constexpr int kDatabases = 20;
// Best-of-N absorbs scheduler noise on busy hosts; run 0 is reported
// separately as the cold measurement.
constexpr int kRunsPerConfig = 7;

/// Synthetic fleet: metadata-only tables with fragmented file lists (the
/// observe phase reads manifests, never file contents, so no storage
/// objects are needed).
void BuildFleet(catalog::Catalog* catalog, Rng* rng) {
  for (int d = 0; d < kDatabases; ++d) {
    AUTOCOMP_CHECK(
        catalog->CreateDatabase("db" + std::to_string(d), 1'000'000).ok());
  }
  for (int t = 0; t < kFleetTables; ++t) {
    const std::string db = "db" + std::to_string(t % kDatabases);
    const std::string name = "t" + std::to_string(t);
    auto table = catalog->CreateTable(
        db, name, lst::Schema(0, {{1, "d", lst::FieldType::kDate, true}}),
        lst::PartitionSpec(1, {{1, lst::Transform::kMonth, "m"}}));
    AUTOCOMP_CHECK(table.ok()) << table.status();
    // 100-300 files spread over a handful of partitions, mostly small —
    // the long-tail fragmentation profile of Figure 1.
    const int files = static_cast<int>(rng->UniformInt(100, 300));
    const int partitions = static_cast<int>(rng->UniformInt(2, 8));
    std::vector<lst::DataFile> batch;
    batch.reserve(files);
    for (int f = 0; f < files; ++f) {
      lst::DataFile file;
      file.path = "/data/" + db + "/" + name + "/f" + std::to_string(f);
      file.partition = "m=2024-" + std::to_string(1 + f % partitions);
      file.file_size_bytes = rng->UniformInt(1, 64) * kMiB;
      file.record_count = 1000;
      batch.push_back(std::move(file));
    }
    auto txn = table->NewTransaction();
    AUTOCOMP_CHECK(txn.ok());
    AUTOCOMP_CHECK(txn->Append(std::move(batch)).ok());
    AUTOCOMP_CHECK(txn->Commit().ok());
  }
}

core::AutoCompPipeline MakePipeline(catalog::Catalog* catalog,
                                    const catalog::ControlPlane* control_plane,
                                    const Clock* clock,
                                    std::shared_ptr<core::StatsCollector> collector,
                                    ThreadPool* pool) {
  core::AutoCompPipeline::Stages stages;
  stages.generator = std::make_shared<core::TableScopeGenerator>();
  stages.collector = std::move(collector);
  stages.traits = {std::make_shared<core::FileCountReductionTrait>(),
                   std::make_shared<core::FileEntropyTrait>(),
                   std::make_shared<core::ComputeCostTrait>(24.0, 1e12)};
  stages.ranker = std::make_shared<core::MoopRanker>(
      std::vector<core::MoopRanker::Objective>{
          {"file_count_reduction", 0.7, false},
          {"compute_cost_gbhr", 0.3, true}});
  stages.selector = std::make_shared<core::FixedKSelector>(100);
  stages.scheduler = nullptr;  // decide-only: catalog state stays fixed
  stages.pool = pool;
  (void)control_plane;
  return core::AutoCompPipeline(std::move(stages), catalog, clock);
}

std::string RankingFingerprint(const core::PipelineRunReport& report) {
  std::string out;
  for (const core::ScoredCandidate& sc : report.ranked) {
    out += sc.candidate().id();
    out += '=';
    out += std::to_string(sc.score);
    out += ';';
  }
  return out;
}

struct RunResult {
  std::string name;
  int pool_size = 0;  // 0 = sequential (no pool)
  bool cache = false;
  bool indexed = false;
  bool skipped = false;
  std::string skip_reason;
  double cold_ms = 0;  // first run: cache empty, index entries unbuilt
  double best_ms = 0;
  core::PipelinePhaseTimings best_timings;
  double tables_per_sec = 0;
  double cache_hit_rate = 0;
  double index_hit_rate = 0;
  std::string fingerprint;
};

struct RunSpec {
  std::string name;
  int pool_size = 0;
  bool cache = false;
  bool indexed = false;
};

RunResult RunConfig(const RunSpec& spec, catalog::Catalog* catalog,
                    const catalog::ControlPlane* control_plane,
                    const Clock* clock) {
  std::unique_ptr<ThreadPool> pool;
  if (spec.pool_size > 0) pool = std::make_unique<ThreadPool>(spec.pool_size);

  // The index registers a catalog commit listener; it must outlive the
  // pipeline runs but not the bench, so scope it to this config.
  std::shared_ptr<core::IncrementalStatsIndex> index;
  std::shared_ptr<core::StatsCollector> collector;
  if (spec.indexed) {
    index = std::make_shared<core::IncrementalStatsIndex>(catalog);
    collector = std::make_shared<core::IndexedStatsCollector>(
        catalog, control_plane, clock, index);
  }
  if (spec.cache) {
    collector = std::make_shared<core::CachingStatsCollector>(
        catalog, control_plane, clock, collector,
        core::CachingStatsCollector::kDefaultCapacity);
  } else if (collector == nullptr) {
    collector = std::make_shared<core::StatsCollector>(catalog, control_plane,
                                                       clock);
  }
  core::AutoCompPipeline pipeline =
      MakePipeline(catalog, control_plane, clock, collector, pool.get());

  RunResult result;
  result.name = spec.name;
  result.pool_size = spec.pool_size;
  result.cache = spec.cache;
  result.indexed = spec.indexed;
  int64_t hits = 0;
  int64_t total = 0;
  int64_t index_hits = 0;
  int64_t index_total = 0;
  // The catalog never mutates (null scheduler), so with caching on, run 1
  // is the cold fill and later runs hit steady-state. Likewise the index
  // lazily builds per table on the first run and serves O(1) afterwards.
  for (int run = 0; run < kRunsPerConfig; ++run) {
    auto report = pipeline.RunOnce();
    AUTOCOMP_CHECK(report.ok()) << report.status();
    const double ms = report->timings.total_ms();
    if (run == 0) result.cold_ms = ms;
    if (result.best_ms == 0 || ms < result.best_ms) {
      result.best_ms = ms;
      result.best_timings = report->timings;
    }
    result.fingerprint = RankingFingerprint(*report);
    if (run > 0) {  // steady-state cache/index traffic only
      hits += report->stats_cache_hits;
      total += report->stats_cache_hits + report->stats_cache_misses;
      index_hits += report->stats_index_hits;
      index_total += report->stats_index_hits + report->stats_index_fallbacks;
    }
  }
  result.tables_per_sec =
      result.best_ms > 0 ? kFleetTables / (result.best_ms / 1000.0) : 0;
  result.cache_hit_rate =
      total > 0 ? static_cast<double>(hits) / static_cast<double>(total) : 0;
  result.index_hit_rate =
      index_total > 0
          ? static_cast<double>(index_hits) / static_cast<double>(index_total)
          : 0;
  return result;
}

}  // namespace

int main() {
  SimulatedClock clock(0);
  storage::DistributedFileSystem dfs(&clock, 1);
  catalog::Catalog catalog(&clock, &dfs);
  catalog::ControlPlane control_plane(&catalog);
  Rng rng(7);
  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  // CI boxes often report 1-2 cores; with AUTOCOMP_BENCH_FORCE_POOLS=1
  // the oversubscribed pool configs still *run* (exercising the parallel
  // code paths and the NFR2 fingerprint check) even though their timings
  // measure scheduler noise rather than speedup.
  const char* force_env = std::getenv("AUTOCOMP_BENCH_FORCE_POOLS");
  const bool force_pools =
      force_env != nullptr && std::strcmp(force_env, "0") != 0 &&
      force_env[0] != '\0';
  std::printf("hardware_concurrency = %d%s\n", hw,
              force_pools ? " (AUTOCOMP_BENCH_FORCE_POOLS set)" : "");
  if (hw <= 1 && !force_pools) {
    std::printf(
        "NOTE: single-core host — multi-worker pool runs would measure "
        "oversubscription noise, not speedup; skipping them. Set "
        "AUTOCOMP_BENCH_FORCE_POOLS=1 to run them anyway.\n");
  }
  std::printf("building %d-table synthetic fleet...\n", kFleetTables);
  BuildFleet(&catalog, &rng);

  // Pool sizes to attempt; anything above hardware_concurrency is
  // recorded as skipped/invalid rather than benchmarked.
  std::vector<int> pool_sizes = {1, 2, 4, hw};
  std::sort(pool_sizes.begin(), pool_sizes.end());
  pool_sizes.erase(std::unique(pool_sizes.begin(), pool_sizes.end()),
                   pool_sizes.end());

  std::vector<RunSpec> specs;
  specs.push_back({"seq", 0, false, false});
  for (int workers : pool_sizes) {
    specs.push_back({"pool" + std::to_string(workers), workers, false, false});
  }
  specs.push_back({"seq+cache", 0, true, false});
  specs.push_back({"pool" + std::to_string(hw) + "+cache", hw, true, false});
  specs.push_back({"indexed", 0, false, true});
  specs.push_back({"indexed+cache", 0, true, true});

  std::vector<RunResult> runs;
  for (const RunSpec& spec : specs) {
    if (spec.pool_size > hw && !force_pools) {
      RunResult skipped;
      skipped.name = spec.name;
      skipped.pool_size = spec.pool_size;
      skipped.cache = spec.cache;
      skipped.indexed = spec.indexed;
      skipped.skipped = true;
      skipped.skip_reason = "pool_size > hardware_concurrency (" +
                            std::to_string(hw) + "): oversubscribed";
      std::printf("skipping %s: %s\n", spec.name.c_str(),
                  skipped.skip_reason.c_str());
      runs.push_back(std::move(skipped));
      continue;
    }
    runs.push_back(RunConfig(spec, &catalog, &control_plane, &clock));
  }
  const double seq_best_ms = runs[0].best_ms;
  // The paper's comparison point is a *cold* rescan: an advisor waking up
  // with no warm state re-reads every manifest. Steady-state indexed runs
  // are measured against that cold seq baseline, and best-vs-best is
  // reported alongside for transparency.
  const double seq_cold_ms = runs[0].cold_ms;

  // NFR2: every executed configuration must produce the sequential
  // ranking, byte for byte — including both index-backed modes.
  for (const RunResult& r : runs) {
    if (r.skipped) continue;
    AUTOCOMP_CHECK(r.fingerprint == runs[0].fingerprint)
        << "ranking diverged in config " << r.name;
  }

  sim::TablePrinter table({"config", "pool", "cache", "index", "cold ms",
                           "best ms", "gen", "obs", "orient", "decide",
                           "tables/s", "speedup", "vs cold", "hit%", "idx%"});
  JsonValue json_runs = JsonValue::Array();
  for (const RunResult& r : runs) {
    const double speedup =
        !r.skipped && r.best_ms > 0 ? seq_best_ms / r.best_ms : 0;
    const double speedup_vs_cold =
        !r.skipped && r.best_ms > 0 ? seq_cold_ms / r.best_ms : 0;
    if (r.skipped) {
      table.AddRow({r.name, std::to_string(r.pool_size), r.cache ? "on" : "off",
                    r.indexed ? "on" : "off", "skipped", "-", "-", "-", "-",
                    "-", "-", "-", "-", "-", "-"});
    } else {
      table.AddRow({r.name, std::to_string(r.pool_size),
                    r.cache ? "on" : "off", r.indexed ? "on" : "off",
                    sim::Fmt(r.cold_ms, 2), sim::Fmt(r.best_ms, 2),
                    sim::Fmt(r.best_timings.generate_ms, 1),
                    sim::Fmt(r.best_timings.observe_ms, 1),
                    sim::Fmt(r.best_timings.orient_ms, 1),
                    sim::Fmt(r.best_timings.decide_ms, 1),
                    sim::Fmt(r.tables_per_sec, 0),
                    sim::Fmt(speedup, 2), sim::Fmt(speedup_vs_cold, 2),
                    sim::Fmt(100.0 * r.cache_hit_rate, 1),
                    sim::Fmt(100.0 * r.index_hit_rate, 1)});
    }
    JsonValue entry = JsonValue::Object();
    entry.Set("name", r.name);
    entry.Set("pool_size", r.pool_size);
    entry.Set("cache", r.cache);
    entry.Set("indexed", r.indexed);
    if (r.skipped) {
      entry.Set("skipped", true);
      entry.Set("skip_reason", r.skip_reason);
    } else {
      entry.Set("cold_ms", r.cold_ms);
      entry.Set("best_ms", r.best_ms);
      entry.Set("tables_per_sec", r.tables_per_sec);
      entry.Set("speedup_vs_seq", speedup);
      entry.Set("speedup_vs_cold_seq", speedup_vs_cold);
      entry.Set("cache_hit_rate", r.cache_hit_rate);
      entry.Set("index_hit_rate", r.index_hit_rate);
    }
    json_runs.Append(std::move(entry));
  }
  std::printf("%s", table.ToString().c_str());

  JsonValue doc = JsonValue::Object();
  doc.Set("fleet_tables", kFleetTables);
  doc.Set("hardware_concurrency", hw);
  doc.Set("force_pools", force_pools);
  doc.Set("runs", std::move(json_runs));
  std::FILE* out = std::fopen("BENCH_pipeline.json", "w");
  AUTOCOMP_CHECK(out != nullptr);
  const std::string dumped = doc.Dump();
  std::fwrite(dumped.data(), 1, dumped.size(), out);
  std::fclose(out);
  std::printf("wrote BENCH_pipeline.json\n");
  return 0;
}
