/// \file bench_pipeline_throughput.cc
/// \brief Control-loop throughput: full RunOnce() cycles over a synthetic
/// fleet at pool sizes {sequential, 1, 2, 4, hardware}, with the
/// snapshot-keyed stats cache on and off.
///
/// The paper projects observe/decide cycles over ~100K tables (§2); this
/// bench measures how fast the framework itself can turn the OODA loop
/// as workers and caching are added, and verifies the parallel output is
/// byte-identical to the sequential baseline (NFR2). Results land in
/// BENCH_pipeline.json:
///   {"fleet_tables": N, "hardware_concurrency": H, "runs": [
///      {"name": "...", "pool_size": P, "cache": true,
///       "tables_per_sec": ..., "speedup_vs_seq": ...,
///       "cache_hit_rate": ...}, ...]}

#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "catalog/catalog.h"
#include "catalog/control_plane.h"
#include "common/clock.h"
#include "common/json.h"
#include "common/logging.h"
#include "common/random.h"
#include "common/thread_pool.h"
#include "core/observe.h"
#include "core/pipeline.h"
#include "core/ranking.h"
#include "core/traits.h"
#include "lst/table.h"
#include "sim/metrics.h"
#include "storage/filesystem.h"

using namespace autocomp;

namespace {

constexpr int kFleetTables = 2000;
constexpr int kDatabases = 20;
constexpr int kRunsPerConfig = 3;

/// Synthetic fleet: metadata-only tables with fragmented file lists (the
/// observe phase reads manifests, never file contents, so no storage
/// objects are needed).
void BuildFleet(catalog::Catalog* catalog, Rng* rng) {
  for (int d = 0; d < kDatabases; ++d) {
    AUTOCOMP_CHECK(
        catalog->CreateDatabase("db" + std::to_string(d), 1'000'000).ok());
  }
  for (int t = 0; t < kFleetTables; ++t) {
    const std::string db = "db" + std::to_string(t % kDatabases);
    const std::string name = "t" + std::to_string(t);
    auto table = catalog->CreateTable(
        db, name, lst::Schema(0, {{1, "d", lst::FieldType::kDate, true}}),
        lst::PartitionSpec(1, {{1, lst::Transform::kMonth, "m"}}));
    AUTOCOMP_CHECK(table.ok()) << table.status();
    // 100-300 files spread over a handful of partitions, mostly small —
    // the long-tail fragmentation profile of Figure 1.
    const int files = static_cast<int>(rng->UniformInt(100, 300));
    const int partitions = static_cast<int>(rng->UniformInt(2, 8));
    std::vector<lst::DataFile> batch;
    batch.reserve(files);
    for (int f = 0; f < files; ++f) {
      lst::DataFile file;
      file.path = "/data/" + db + "/" + name + "/f" + std::to_string(f);
      file.partition = "m=2024-" + std::to_string(1 + f % partitions);
      file.file_size_bytes = rng->UniformInt(1, 64) * kMiB;
      file.record_count = 1000;
      batch.push_back(std::move(file));
    }
    auto txn = table->NewTransaction();
    AUTOCOMP_CHECK(txn.ok());
    AUTOCOMP_CHECK(txn->Append(std::move(batch)).ok());
    AUTOCOMP_CHECK(txn->Commit().ok());
  }
}

core::AutoCompPipeline MakePipeline(catalog::Catalog* catalog,
                                    const catalog::ControlPlane* control_plane,
                                    const Clock* clock,
                                    std::shared_ptr<core::StatsCollector> collector,
                                    ThreadPool* pool) {
  core::AutoCompPipeline::Stages stages;
  stages.generator = std::make_shared<core::TableScopeGenerator>();
  stages.collector = std::move(collector);
  stages.traits = {std::make_shared<core::FileCountReductionTrait>(),
                   std::make_shared<core::FileEntropyTrait>(),
                   std::make_shared<core::ComputeCostTrait>(24.0, 1e12)};
  stages.ranker = std::make_shared<core::MoopRanker>(
      std::vector<core::MoopRanker::Objective>{
          {"file_count_reduction", 0.7, false},
          {"compute_cost_gbhr", 0.3, true}});
  stages.selector = std::make_shared<core::FixedKSelector>(100);
  stages.scheduler = nullptr;  // decide-only: catalog state stays fixed
  stages.pool = pool;
  (void)control_plane;
  return core::AutoCompPipeline(std::move(stages), catalog, clock);
}

std::string RankingFingerprint(const core::PipelineRunReport& report) {
  std::string out;
  for (const core::ScoredCandidate& sc : report.ranked) {
    out += sc.candidate().id();
    out += '=';
    out += std::to_string(sc.score);
    out += ';';
  }
  return out;
}

struct RunResult {
  std::string name;
  int pool_size = 0;  // 0 = sequential (no pool)
  bool cache = false;
  double best_ms = 0;
  double tables_per_sec = 0;
  double cache_hit_rate = 0;
  std::string fingerprint;
};

RunResult RunConfig(const std::string& name, catalog::Catalog* catalog,
                    const catalog::ControlPlane* control_plane,
                    const Clock* clock, int pool_size, bool cache) {
  std::unique_ptr<ThreadPool> pool;
  if (pool_size > 0) pool = std::make_unique<ThreadPool>(pool_size);

  std::shared_ptr<core::StatsCollector> collector;
  if (cache) {
    collector = std::make_shared<core::CachingStatsCollector>(
        catalog, control_plane, clock);
  } else {
    collector = std::make_shared<core::StatsCollector>(catalog, control_plane,
                                                       clock);
  }
  core::AutoCompPipeline pipeline =
      MakePipeline(catalog, control_plane, clock, collector, pool.get());

  RunResult result;
  result.name = name;
  result.pool_size = pool_size;
  result.cache = cache;
  int64_t hits = 0;
  int64_t total = 0;
  // The catalog never mutates (null scheduler), so with caching on, run 1
  // is the cold fill and later runs hit steady-state.
  for (int run = 0; run < kRunsPerConfig; ++run) {
    auto report = pipeline.RunOnce();
    AUTOCOMP_CHECK(report.ok()) << report.status();
    const double ms = report->timings.total_ms();
    if (result.best_ms == 0 || ms < result.best_ms) result.best_ms = ms;
    result.fingerprint = RankingFingerprint(*report);
    if (run > 0) {  // steady-state cache traffic only
      hits += report->stats_cache_hits;
      total += report->stats_cache_hits + report->stats_cache_misses;
    }
  }
  result.tables_per_sec =
      result.best_ms > 0 ? kFleetTables / (result.best_ms / 1000.0) : 0;
  result.cache_hit_rate =
      total > 0 ? static_cast<double>(hits) / static_cast<double>(total) : 0;
  return result;
}

}  // namespace

int main() {
  SimulatedClock clock(0);
  storage::DistributedFileSystem dfs(&clock, 1);
  catalog::Catalog catalog(&clock, &dfs);
  catalog::ControlPlane control_plane(&catalog);
  Rng rng(7);
  std::printf("building %d-table synthetic fleet...\n", kFleetTables);
  BuildFleet(&catalog, &rng);

  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  std::vector<RunResult> runs;
  runs.push_back(
      RunConfig("seq", &catalog, &control_plane, &clock, 0, false));
  const double seq_ms = runs[0].best_ms;
  for (int workers : {1, 2, 4, hw}) {
    runs.push_back(RunConfig("pool" + std::to_string(workers), &catalog,
                             &control_plane, &clock, workers, false));
  }
  runs.push_back(
      RunConfig("seq+cache", &catalog, &control_plane, &clock, 0, true));
  runs.push_back(RunConfig("pool" + std::to_string(hw) + "+cache", &catalog,
                           &control_plane, &clock, hw, true));

  // NFR2: every configuration must produce the sequential ranking,
  // byte for byte.
  for (const RunResult& r : runs) {
    AUTOCOMP_CHECK(r.fingerprint == runs[0].fingerprint)
        << "ranking diverged in config " << r.name;
  }

  sim::TablePrinter table(
      {"config", "pool", "cache", "best ms", "tables/s", "speedup", "hit%"});
  JsonValue json_runs = JsonValue::Array();
  for (const RunResult& r : runs) {
    const double speedup = r.best_ms > 0 ? seq_ms / r.best_ms : 0;
    table.AddRow({r.name, std::to_string(r.pool_size),
                  r.cache ? "on" : "off", sim::Fmt(r.best_ms, 2),
                  sim::Fmt(r.tables_per_sec, 0), sim::Fmt(speedup, 2),
                  sim::Fmt(100.0 * r.cache_hit_rate, 1)});
    JsonValue entry = JsonValue::Object();
    entry.Set("name", r.name);
    entry.Set("pool_size", r.pool_size);
    entry.Set("cache", r.cache);
    entry.Set("best_ms", r.best_ms);
    entry.Set("tables_per_sec", r.tables_per_sec);
    entry.Set("speedup_vs_seq", speedup);
    entry.Set("cache_hit_rate", r.cache_hit_rate);
    json_runs.Append(std::move(entry));
  }
  std::printf("%s", table.ToString().c_str());

  JsonValue doc = JsonValue::Object();
  doc.Set("fleet_tables", kFleetTables);
  doc.Set("hardware_concurrency", hw);
  doc.Set("runs", std::move(json_runs));
  std::FILE* out = std::fopen("BENCH_pipeline.json", "w");
  AUTOCOMP_CHECK(out != nullptr);
  const std::string dumped = doc.Dump();
  std::fwrite(dumped.data(), 1, dumped.size(), out);
  std::fclose(out);
  std::printf("wrote BENCH_pipeline.json\n");
  return 0;
}
