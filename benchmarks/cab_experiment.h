/// \file cab_experiment.h
/// \brief Shared harness for the §6 CAB evaluation: 20 TPC-H-like
/// databases, 5-hour query streams, hourly compaction under a chosen
/// strategy. Figures 6, 7, 8 and Table 1 are different views of this run.

#pragma once

#include <memory>
#include <string>
#include <vector>

#include "sim/driver.h"
#include "sim/environment.h"
#include "sim/metrics.h"
#include "sim/presets.h"

namespace autocomp::bench {

/// \brief One evaluated strategy configuration.
struct CabStrategy {
  std::string label;       // "NoComp", "Table-10", "Hybrid-50", "Hybrid-500"
  bool compaction = false;
  sim::ScopeStrategy scope = sim::ScopeStrategy::kTable;
  int64_t k = 10;
};

/// The paper's §6.1 strategy set.
std::vector<CabStrategy> PaperStrategies();

/// \brief Everything a figure needs from one run.
struct CabRunResult {
  std::string label;
  /// Sampled (time, file count) series — Figure 6.
  std::vector<sim::SeriesPoint> file_count_series;
  /// GBHr of each compaction pipeline run — Figure 7.
  std::vector<double> compaction_gb_hours;
  /// Hourly read/write latency candlesticks — Figure 8.
  std::vector<std::pair<SimTime, QuantileSummary>> read_latency;
  std::vector<std::pair<SimTime, QuantileSummary>> write_latency;
  /// Hourly counters — Table 1.
  std::vector<std::pair<SimTime, int64_t>> write_queries;
  std::vector<std::pair<SimTime, int64_t>> client_conflicts;
  /// (hour, cluster-side compaction conflicts).
  std::vector<std::pair<SimTime, int64_t>> cluster_conflicts;
  /// End-to-end workload makespan (the no-comp run overshoots, §6.2).
  double total_read_seconds = 0;
  double total_write_seconds = 0;
  int64_t final_file_count = 0;
  int64_t initial_file_count = 0;
};

/// \brief Runs the CAB experiment once under `strategy`.
///
/// `scale` shrinks the default 20-database / 5-hour setup for smoke runs
/// (1.0 = paper-like scale).
CabRunResult RunCabExperiment(const CabStrategy& strategy,
                              double scale = 1.0);

}  // namespace autocomp::bench
