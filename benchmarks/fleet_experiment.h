/// \file fleet_experiment.h
/// \brief Shared harness for the §7 production-deployment experiments: a
/// scaled-down LinkedIn-like table fleet driven day by day under a
/// sequence of compaction regimes (none → manual top-100 → AutoComp).
/// Figures 2, 10 and 11 are different views of these runs.

#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/histogram.h"
#include "sim/driver.h"
#include "sim/environment.h"
#include "sim/metrics.h"
#include "sim/presets.h"
#include "workload/fleet.h"

namespace autocomp::bench {

/// \brief Compaction regime for a span of days.
struct FleetPhase {
  std::string label;  // "none", "manual-100", "auto-10", "auto-budget"
  int days = 7;
  enum class Mode { kNone, kManualFixed, kAutoFixedK, kAutoBudget } mode =
      Mode::kNone;
  /// kManualFixed: size of the fixed table set (chosen once, at phase
  /// start, by current small-file count — the paper's "susceptibility").
  /// kAutoFixedK: the top-k of each daily run.
  int64_t k = 10;
  /// kAutoBudget: daily GBHr budget (dynamic k).
  double budget_gb_hours = 0;
};

/// \brief Per-day record of what compaction did.
struct FleetDayStats {
  int day = 0;
  std::string phase;
  int64_t tables_compacted = 0;   // committed units (the day's k)
  int64_t files_reduced = 0;
  double gb_hours = 0;
  int64_t fleet_file_count = 0;   // at end of day
  int64_t open_calls = 0;         // storage open() calls during the day
  /// Daily scan workload aggregates (Figure 11a).
  int64_t files_scanned = 0;
  double query_seconds = 0;
  double query_gb_hours = 0;
  /// Fleet-wide % of files below 128MiB at end of day (Figure 2).
  double pct_small = 0;
};

/// \brief Control-loop execution knobs shared by every figure bench.
/// Defaults run the AutoComp pipeline on the process-wide thread pool
/// with the snapshot-keyed stats cache — identical results (NFR2),
/// faster wall-clock — so existing call sites speed up unchanged.
struct FleetRunOptions {
  /// Pool for the observe/orient fan-out; nullptr = sequential.
  ThreadPool* pool = ThreadPool::Default();
  bool cache_stats = true;
};

/// \brief Runs the fleet through `phases`, returning one record per day.
/// `histograms_out`, when given, receives the end-of-phase file-size
/// histograms (Figure 2's distribution snapshots).
std::vector<FleetDayStats> RunFleetExperiment(
    const std::vector<FleetPhase>& phases,
    std::vector<std::pair<std::string, SizeHistogram>>* histograms_out =
        nullptr,
    workload::FleetOptions fleet_options = {},
    FleetRunOptions run_options = {});

}  // namespace autocomp::bench
