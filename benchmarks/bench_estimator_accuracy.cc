/// \file bench_estimator_accuracy.cc
/// \brief Reproduces §7's "Model Accuracy and Estimation Errors": the
/// production estimators occasionally miss — one sampled task
/// underestimated compute cost by 19% while overestimating file count
/// reduction by 28%, attributed to ignoring partition boundaries.
///
/// This harness compacts a fragmented fleet and compares, per table:
///  * estimated ΔF (the paper's partition-blind estimator) vs actual,
///  * the partition-aware ΔF estimator vs actual,
///  * estimated GBHr (§4.2 formula over small-file bytes) vs measured.

#include <cmath>
#include <cstdio>

#include "common/logging.h"
#include "core/observe.h"
#include "core/traits.h"
#include "sim/environment.h"
#include "sim/metrics.h"
#include "workload/fleet.h"

using namespace autocomp;

int main() {
  std::printf("=== §7 estimator accuracy: predicted vs actual ===\n");
  sim::SimEnvironment env;
  workload::FleetOptions fleet_options;
  fleet_options.num_databases = 6;
  fleet_options.tables_per_db = 8;
  // Mostly partitioned, moderate-sized tables: the regime where ignoring
  // partition boundaries hurts the naive estimator most (per-partition
  // small-file groups still need one output file each).
  fleet_options.partitioned_fraction = 0.9;
  fleet_options.size_mu = std::log(1.0 * kGiB);
  workload::FleetWorkload fleet(fleet_options);
  AUTOCOMP_CHECK(fleet
                     .Setup(&env.catalog(), &env.query_engine(),
                            &env.control_plane(), 0)
                     .ok());
  env.clock().AdvanceTo(kHour);

  core::StatsCollector collector(&env.catalog(), &env.control_plane(),
                                 &env.clock());
  core::FileCountReductionTrait naive;
  core::PartitionAwareFileCountReductionTrait aware;
  const engine::ClusterOptions& copts = env.compaction_cluster().options();
  core::ComputeCostTrait cost(copts.executor_memory_gb * copts.executors,
                              copts.rewrite_bytes_per_hour);

  Sample naive_error_pct, aware_error_pct, cost_error_pct;
  sim::TablePrinter table({"table", "est ΔF", "aware ΔF", "actual ΔF",
                           "est GBHr", "actual GBHr"});
  int shown = 0;
  for (const std::string& name : fleet.TableNames()) {
    core::Candidate candidate;
    candidate.table = name;
    auto stats = collector.Collect(candidate);
    AUTOCOMP_CHECK(stats.ok());
    core::ObservedCandidate observed{candidate, std::move(stats).value()};
    const double est_naive = naive.Compute(observed);
    const double est_aware = aware.Compute(observed);
    const double est_cost = cost.Compute(observed);
    if (est_naive < 4) continue;  // nothing meaningful to compact

    engine::CompactionRequest request;
    request.table = name;
    auto result = env.compaction_runner().Run(request, env.clock().Now());
    AUTOCOMP_CHECK(result.ok());
    if (!result->committed) continue;
    const double actual =
        static_cast<double>(result->files_rewritten - result->files_produced);
    if (actual <= 0) continue;
    naive_error_pct.Add(100.0 * (est_naive - actual) / actual);
    aware_error_pct.Add(100.0 * (est_aware - actual) / actual);
    cost_error_pct.Add(100.0 * (est_cost - result->gb_hours) /
                       std::max(1e-9, result->gb_hours));
    if (shown++ < 12) {
      table.AddRow({name, sim::Fmt(est_naive, 0), sim::Fmt(est_aware, 0),
                    sim::Fmt(actual, 0), sim::Fmt(est_cost, 2),
                    sim::Fmt(result->gb_hours, 2)});
    }
  }
  std::printf("%s\n", table.ToString().c_str());

  sim::TablePrinter summary(
      {"estimator", "mean signed error %", "mean |error| %", "n"});
  auto add_row = [&](const char* label, const Sample& sample) {
    double abs_total = 0;
    for (double v : sample.values()) abs_total += std::fabs(v);
    summary.AddRow({label, sim::Fmt(sample.Mean(), 1),
                    sim::Fmt(sample.count() > 0
                                 ? abs_total / sample.count()
                                 : 0.0, 1),
                    std::to_string(sample.count())});
  };
  add_row("naive ΔF (paper's production estimator)", naive_error_pct);
  add_row("partition-aware ΔF", aware_error_pct);
  add_row("GBHr over small-file bytes", cost_error_pct);
  std::printf("%s\n", summary.ToString().c_str());
  std::printf(
      "Paper: ΔF overestimated ~28%% on a sampled task (partition\n"
      "boundaries ignored); cost underestimated ~19%%. The naive ΔF here\n"
      "overestimates (positive error, since merged small files still need\n"
      "ceil(bytes/target) outputs per partition); the partition-aware\n"
      "variant cuts that error substantially.\n");
  return 0;
}
