/// \file bench_table1_conflicts.cc
/// \brief Reproduces Table 1: "Client and cluster-side conflicts per
/// execution hour" for NoComp, Table-10 and Hybrid-500.
///
/// Paper shape to match: client-side conflicts exist even without
/// compaction (concurrent writes to the same tables) and correlate with
/// write-query spikes; Table-10 adds many early cluster-side conflicts
/// that die out once the hot tables are compacted; Hybrid-500 shows zero
/// cluster-side conflicts (small partition-scope rewrites rarely lose
/// races).

#include <cstdio>
#include <map>

#include "benchmarks/cab_experiment.h"
#include "sim/metrics.h"

using namespace autocomp;

namespace {

int64_t CountAt(const std::vector<std::pair<SimTime, int64_t>>& series,
                SimTime hour) {
  for (const auto& [t, n] : series) {
    if (t == hour) return n;
  }
  return 0;
}

}  // namespace

int main() {
  std::printf("=== Table 1: conflicts per execution hour ===\n");
  const bench::CabRunResult nocomp =
      bench::RunCabExperiment({"NoComp", false, sim::ScopeStrategy::kTable, 0});
  const bench::CabRunResult table10 = bench::RunCabExperiment(
      {"Table-10", true, sim::ScopeStrategy::kTable, 10});
  const bench::CabRunResult hybrid500 = bench::RunCabExperiment(
      {"Hybrid-500", true, sim::ScopeStrategy::kHybrid, 500});

  sim::TablePrinter table({"hour", "#write q", "client NoComp",
                           "client T-10", "client H-500", "cluster T-10",
                           "cluster H-500"});
  for (int hour = 1; hour <= 5; ++hour) {
    const SimTime t = (hour - 1) * kHour;  // hours are 1-indexed in the paper
    table.AddRow({std::to_string(hour),
                  std::to_string(CountAt(nocomp.write_queries, t)),
                  std::to_string(CountAt(nocomp.client_conflicts, t)),
                  std::to_string(CountAt(table10.client_conflicts, t)),
                  std::to_string(CountAt(hybrid500.client_conflicts, t)),
                  std::to_string(CountAt(table10.cluster_conflicts, t)),
                  std::to_string(CountAt(hybrid500.cluster_conflicts, t))});
  }
  std::printf("%s\n", table.ToString().c_str());
  return 0;
}
