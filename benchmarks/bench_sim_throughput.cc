/// \file bench_sim_throughput.cc
/// \brief Data-plane replay throughput: the shard-parallel fleet driver
/// (sim::FleetSimulation) against the sequential reference, at shard
/// counts {1, 2, 4, 8}, over a ~2000-table fleet.
///
/// Every configuration must be **bit-identical** to the sequential run
/// (NFR2): the merged MetricsRecorder is compared series for series,
/// sample for sample, and the run aborts on any divergence. Timings are
/// best-of-N host wall-clock; on hosts with few hardware threads the
/// sharded runs still execute (the equality check is the point) but
/// their speedups measure oversubscription, not parallelism — the JSON
/// records hardware_concurrency so readers can judge.
///
/// Two fault-injection configs run after the shard sweep: "seq-armed"
/// (enabled injector, empty profile — must be bit-identical to seq; its
/// wall-clock delta is the zero-fault overhead, budgeted at <2% on quiet
/// hosts) and "seq-chaos" (the chaos preset, pricing sustained failures
/// plus the retry/backoff machinery).
///
/// Two tracing configs follow the same pattern: "seq-traceoff" (per-lane
/// recorders installed but TraceLevel::kOff — every emission site pays
/// its pointer+level guard and nothing else; must be bit-identical to
/// seq, with the wall-clock delta budgeted at <2%) and "seq-traced"
/// (TraceLevel::kFull — tracing must be a pure observer, so metrics
/// still equal seq exactly; the digest is reported for reference).
///
/// Results land in BENCH_sim.json:
///   {"fleet_tables": N, "days": D, "hardware_concurrency": H,
///    "force_pools": B, "runs": [
///      {"name": "seq", "shards": 0, "pool_workers": 0, "wall_ms": ...,
///       "events": ..., "events_per_sec": ..., "speedup_vs_seq": 1.0,
///       "metrics_equal": true}, ...],
///    "fault_runs": [{"name": "seq-armed", "faults_injected": 0,
///       "overhead_pct": ..., "metrics_equal_to_seq": true}, ...],
///    "fault_armed_overhead_pct": ...,
///    "fault_armed_overhead_target_pct": 2.0,
///    "trace_runs": [{"name": "seq-traceoff", "trace_events": 0,
///       "overhead_pct": ..., "metrics_equal_to_seq": true}, ...],
///    "trace_off_overhead_pct": ...,
///    "trace_off_overhead_target_pct": 2.0}

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/json.h"
#include "common/logging.h"
#include "common/thread_pool.h"
#include "fault/fault_injector.h"
#include "obs/trace.h"
#include "sim/fleet_driver.h"
#include "sim/metrics.h"

using namespace autocomp;

namespace {

// ~2000 tables: 40 tenant databases x 50 tables, the scale the
// acceptance bar names. One simulated day and one rep per config keep
// the default turnaround tolerable on small hosts (five full-fleet
// replays per invocation); AUTOCOMP_BENCH_SIM_DAYS and
// AUTOCOMP_BENCH_SIM_RUNS scale the horizon / add best-of-N reps on
// hardware that can afford them.
constexpr int kDatabases = 40;
constexpr int kTablesPerDb = 50;

int EnvInt(const char* name, int fallback, int min_value) {
  const char* value = std::getenv(name);
  if (value == nullptr || value[0] == '\0') return fallback;
  const int parsed = std::atoi(value);
  return parsed < min_value ? fallback : parsed;
}

/// Perf-gate knobs (CI's perf-smoke job sets these; unset = report only):
/// a value <= 0 disables the corresponding gate.
double EnvDouble(const char* name, double fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || value[0] == '\0') return fallback;
  return std::atof(value);
}

const int kDays = EnvInt("AUTOCOMP_BENCH_SIM_DAYS", 1, 1);
const int kRunsPerConfig = EnvInt("AUTOCOMP_BENCH_SIM_RUNS", 1, 1);

sim::FleetSimOptions BaseOptions() {
  sim::FleetSimOptions options;
  options.days = kDays;
  options.seed = 7;
  options.fleet.num_databases = kDatabases;
  options.fleet.tables_per_db = kTablesPerDb;
  // Throughput here is events through the driver, not bytes through the
  // simulated DFS: shrink the lognormal table sizes so a 2000-table
  // replay finishes in minutes, not hours, on a laptop-class host. The
  // file-count distribution keeps its shape, just a smaller median.
  options.fleet.size_mu = std::log(128.0 * kMiB);
  options.fleet.size_sigma = 1.2;
  // Give the NameNode model some pressure so the epoch-load/timeout path
  // is actually exercised (fleet RPC totals overflow per-hour capacity).
  options.env.namenode.rpc_capacity_per_hour = 2'000;
  options.driver.sample_interval = 4 * kHour;
  options.driver.retention_interval = kDay;
  return options;
}

struct RunOutcome {
  std::string name;
  int shards = 0;        // 0 = sequential reference
  int pool_workers = 0;  // 0 = no pool (inline)
  double wall_ms = 0;    // best of kRunsPerConfig
  int64_t events = 0;
  int64_t total_files = 0;
  int64_t open_calls = 0;
  int64_t faults_injected = 0;
  double events_per_sec = 0;
  bool metrics_equal = true;
  sim::MetricsRecorder metrics;
  obs::TraceDigest trace_digest;
};

/// Fault-injection variants of a config. kArmedEmpty is the zero-fault
/// parity configuration (enabled injector, nothing to inject): its cost
/// is the pure overhead of having the Arm() calls in every hot path, and
/// it must stay bit-identical to the injector-free run. kChaos runs the
/// "chaos" preset (every site armed) to price the retry/backoff
/// machinery under sustained failures.
enum class FaultMode { kOff, kArmedEmpty, kChaos };

/// Tracing variants of a config. kArmedOff installs per-lane recorders
/// at TraceLevel::kOff — every emission site pays its pointer+level
/// guard, nothing is recorded; this is the disabled-tracing overhead the
/// <2% budget covers. kFull records everything (tracing must still be a
/// pure observer: metrics stay bit-identical to the untraced run).
enum class TraceMode { kOff, kArmedOff, kFull };

RunOutcome RunConfig(const std::string& name, int shards, int pool_workers,
                     FaultMode fault_mode = FaultMode::kOff,
                     TraceMode trace_mode = TraceMode::kOff) {
  RunOutcome out;
  out.name = name;
  out.shards = shards;
  out.pool_workers = pool_workers;
  std::unique_ptr<ThreadPool> pool;
  if (pool_workers > 0) pool = std::make_unique<ThreadPool>(pool_workers);
  for (int run = 0; run < kRunsPerConfig; ++run) {
    sim::FleetSimOptions options = BaseOptions();
    if (shards > 0) {
      options.sharded = true;
      options.shards = shards;
      options.pool = pool.get();
    } else {
      options.sharded = false;
      options.shards = 1;
      options.pool = nullptr;
    }
    if (fault_mode != FaultMode::kOff) {
      options.env.fault.enabled = true;
      options.env.fault.seed = 0x5eedfa;
      if (fault_mode == FaultMode::kChaos) {
        auto profile = fault::FaultProfileByName("chaos");
        AUTOCOMP_CHECK(profile.ok()) << profile.status();
        options.env.fault.profile = *std::move(profile);
      }
    }
    if (trace_mode == TraceMode::kArmedOff) {
      options.trace_armed = true;  // level stays kOff
    } else if (trace_mode == TraceMode::kFull) {
      options.trace_level = obs::TraceLevel::kFull;
    }
    sim::FleetSimulation simulation(std::move(options));
    const auto start = std::chrono::steady_clock::now();
    auto result = simulation.Run();
    const auto stop = std::chrono::steady_clock::now();
    AUTOCOMP_CHECK(result.ok()) << result.status();
    const double ms =
        std::chrono::duration<double, std::milli>(stop - start).count();
    if (out.wall_ms == 0 || ms < out.wall_ms) out.wall_ms = ms;
    out.events = result->events_executed;
    out.total_files = result->total_files;
    out.open_calls = result->open_calls;
    out.faults_injected = result->faults_injected;
    out.trace_digest = result->trace_digest;
    out.metrics = std::move(result->metrics);
    std::printf("  %s run %d/%d: %.1f ms (%lld events)\n", name.c_str(),
                run + 1, kRunsPerConfig, ms,
                static_cast<long long>(out.events));
  }
  out.events_per_sec =
      out.wall_ms > 0 ? static_cast<double>(out.events) / (out.wall_ms / 1e3)
                      : 0;
  return out;
}

}  // namespace

int main() {
  std::setvbuf(stdout, nullptr, _IOLBF, 0);  // live progress when piped
  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  const char* force_env = std::getenv("AUTOCOMP_BENCH_FORCE_POOLS");
  const bool force_pools =
      force_env != nullptr && std::strcmp(force_env, "0") != 0 &&
      force_env[0] != '\0';
  std::printf("hardware_concurrency = %d%s\n", hw,
              force_pools ? " (AUTOCOMP_BENCH_FORCE_POOLS set)" : "");
  std::printf(
      "replaying %d-table fleet for %d day(s), %d run(s) per config...\n",
      kDatabases * kTablesPerDb, kDays, kRunsPerConfig);

  std::vector<RunOutcome> runs;
  runs.push_back(RunConfig("seq", 0, 0));
  for (const int shards : {1, 2, 4, 8}) {
    runs.push_back(RunConfig("shard" + std::to_string(shards), shards,
                             shards));
  }
  const RunOutcome& seq = runs.front();

  // NFR2: every sharded configuration reproduces the sequential run
  // exactly — same merged metrics, same fleet end state.
  for (RunOutcome& r : runs) {
    if (r.shards == 0) continue;
    std::string why;
    r.metrics_equal = seq.metrics.Equals(r.metrics, &why) &&
                      r.events == seq.events &&
                      r.total_files == seq.total_files &&
                      r.open_calls == seq.open_calls;
    AUTOCOMP_CHECK(r.metrics_equal)
        << "sharded run " << r.name
        << " diverged from the sequential driver: "
        << (why.empty() ? "aggregate totals differ" : why);
  }

  sim::TablePrinter table({"config", "shards", "pool", "wall ms", "events",
                           "events/s", "speedup", "files", "opens",
                           "identical"});
  JsonValue json_runs = JsonValue::Array();
  for (const RunOutcome& r : runs) {
    const double speedup = r.wall_ms > 0 ? seq.wall_ms / r.wall_ms : 0;
    table.AddRow({r.name, std::to_string(r.shards),
                  std::to_string(r.pool_workers), sim::Fmt(r.wall_ms, 1),
                  std::to_string(r.events), sim::Fmt(r.events_per_sec, 0),
                  sim::Fmt(speedup, 2), std::to_string(r.total_files),
                  std::to_string(r.open_calls),
                  r.metrics_equal ? "yes" : "NO"});
    JsonValue entry = JsonValue::Object();
    entry.Set("name", r.name);
    entry.Set("shards", r.shards);
    entry.Set("pool_workers", r.pool_workers);
    entry.Set("wall_ms", r.wall_ms);
    entry.Set("events", r.events);
    entry.Set("events_per_sec", r.events_per_sec);
    entry.Set("speedup_vs_seq", speedup);
    entry.Set("metrics_equal", r.metrics_equal);
    json_runs.Append(std::move(entry));
  }
  std::printf("%s", table.ToString().c_str());

  // --- Fault-injection overhead: the zero-fault parity config (armed
  // injector, empty profile) must be bit-identical to seq, and its cost
  // is budgeted at <2% wall-clock; the chaos config prices sustained
  // failures + retries and is reported for reference only.
  RunOutcome armed = RunConfig("seq-armed", 0, 0, FaultMode::kArmedEmpty);
  {
    std::string why;
    armed.metrics_equal = seq.metrics.Equals(armed.metrics, &why) &&
                          armed.events == seq.events &&
                          armed.total_files == seq.total_files &&
                          armed.open_calls == seq.open_calls;
    AUTOCOMP_CHECK(armed.metrics_equal)
        << "armed-but-empty injector perturbed the simulation: "
        << (why.empty() ? "aggregate totals differ" : why);
    AUTOCOMP_CHECK(armed.faults_injected == 0);
  }
  RunOutcome chaos = RunConfig("seq-chaos", 0, 0, FaultMode::kChaos);
  AUTOCOMP_CHECK(chaos.faults_injected > 0)
      << "chaos profile injected nothing";
  constexpr double kArmedOverheadTargetPct = 2.0;
  const double armed_overhead_pct =
      seq.wall_ms > 0 ? (armed.wall_ms - seq.wall_ms) / seq.wall_ms * 100.0
                      : 0.0;
  const double chaos_overhead_pct =
      seq.wall_ms > 0 ? (chaos.wall_ms - seq.wall_ms) / seq.wall_ms * 100.0
                      : 0.0;
  sim::TablePrinter fault_table(
      {"config", "wall ms", "events", "faults", "overhead %", "identical"});
  fault_table.AddRow({armed.name, sim::Fmt(armed.wall_ms, 1),
                      std::to_string(armed.events),
                      std::to_string(armed.faults_injected),
                      sim::Fmt(armed_overhead_pct, 2),
                      armed.metrics_equal ? "yes" : "NO"});
  fault_table.AddRow({chaos.name, sim::Fmt(chaos.wall_ms, 1),
                      std::to_string(chaos.events),
                      std::to_string(chaos.faults_injected),
                      sim::Fmt(chaos_overhead_pct, 2), "n/a"});
  std::printf("%s", fault_table.ToString().c_str());
  std::printf("armed (zero-fault) overhead: %.2f%% (target < %.0f%%)\n",
              armed_overhead_pct, kArmedOverheadTargetPct);

  JsonValue fault_runs = JsonValue::Array();
  for (const RunOutcome* r : {&armed, &chaos}) {
    JsonValue entry = JsonValue::Object();
    entry.Set("name", r->name);
    entry.Set("wall_ms", r->wall_ms);
    entry.Set("events", r->events);
    entry.Set("faults_injected", r->faults_injected);
    entry.Set("overhead_pct",
              r == &armed ? armed_overhead_pct : chaos_overhead_pct);
    entry.Set("metrics_equal_to_seq", r == &armed);
    fault_runs.Append(std::move(entry));
  }

  // --- Tracing overhead: armed-but-off recorders must be bit-identical
  // to seq with <2% wall-clock cost (the disabled-tracing budget); a
  // full-detail trace must also be a pure observer — metrics still equal
  // seq exactly — and its cost is reported for reference only.
  RunOutcome traceoff =
      RunConfig("seq-traceoff", 0, 0, FaultMode::kOff, TraceMode::kArmedOff);
  RunOutcome traced =
      RunConfig("seq-traced", 0, 0, FaultMode::kOff, TraceMode::kFull);
  for (RunOutcome* r : {&traceoff, &traced}) {
    std::string why;
    r->metrics_equal = seq.metrics.Equals(r->metrics, &why) &&
                       r->events == seq.events &&
                       r->total_files == seq.total_files &&
                       r->open_calls == seq.open_calls;
    AUTOCOMP_CHECK(r->metrics_equal)
        << r->name << " perturbed the simulation: "
        << (why.empty() ? "aggregate totals differ" : why);
  }
  AUTOCOMP_CHECK(traceoff.trace_digest.events == 0)
      << "armed-but-off recorders recorded "
      << traceoff.trace_digest.events << " events";
  AUTOCOMP_CHECK(traced.trace_digest.events > 0)
      << "full-detail trace recorded nothing";
  constexpr double kTraceOffOverheadTargetPct = 2.0;
  const double trace_off_overhead_pct =
      seq.wall_ms > 0
          ? (traceoff.wall_ms - seq.wall_ms) / seq.wall_ms * 100.0
          : 0.0;
  const double traced_overhead_pct =
      seq.wall_ms > 0 ? (traced.wall_ms - seq.wall_ms) / seq.wall_ms * 100.0
                      : 0.0;
  sim::TablePrinter trace_table({"config", "wall ms", "trace events",
                                 "overhead %", "digest", "identical"});
  trace_table.AddRow({traceoff.name, sim::Fmt(traceoff.wall_ms, 1),
                      std::to_string(traceoff.trace_digest.events),
                      sim::Fmt(trace_off_overhead_pct, 2), "-",
                      traceoff.metrics_equal ? "yes" : "NO"});
  trace_table.AddRow({traced.name, sim::Fmt(traced.wall_ms, 1),
                      std::to_string(traced.trace_digest.events),
                      sim::Fmt(traced_overhead_pct, 2),
                      traced.trace_digest.ToString(),
                      traced.metrics_equal ? "yes" : "NO"});
  std::printf("%s", trace_table.ToString().c_str());
  std::printf("trace-off (armed, level=off) overhead: %.2f%% (target < %.0f%%)\n",
              trace_off_overhead_pct, kTraceOffOverheadTargetPct);

  JsonValue trace_runs = JsonValue::Array();
  for (const RunOutcome* r : {&traceoff, &traced}) {
    JsonValue entry = JsonValue::Object();
    entry.Set("name", r->name);
    entry.Set("wall_ms", r->wall_ms);
    entry.Set("events", r->events);
    entry.Set("trace_events", r->trace_digest.events);
    entry.Set("trace_digest", r->trace_digest.ToString());
    entry.Set("overhead_pct",
              r == &traceoff ? trace_off_overhead_pct : traced_overhead_pct);
    entry.Set("metrics_equal_to_seq", r->metrics_equal);
    trace_runs.Append(std::move(entry));
  }

  // Pre-overhaul reference (PR 5 seed, same 2000-table/1-day config on a
  // 1-vCPU container): the "before" side of the hot-path rework. Kept as
  // constants so regenerating this file never loses the comparison.
  JsonValue baseline = JsonValue::Object();
  baseline.Set("label", std::string("pr5-pre-overhaul"));
  baseline.Set("seq_wall_ms", 45976.1);
  baseline.Set("seq_events", static_cast<int64_t>(901));
  baseline.Set("seq_events_per_sec", 19.6);
  baseline.Set("fault_armed_overhead_pct", 13.2);

  JsonValue doc = JsonValue::Object();
  doc.Set("baseline", std::move(baseline));
  doc.Set("events_per_sec", seq.events_per_sec);
  doc.Set("speedup_vs_baseline", seq.events_per_sec / 19.6);
  doc.Set("fault_runs", std::move(fault_runs));
  doc.Set("fault_armed_overhead_pct", armed_overhead_pct);
  doc.Set("fault_armed_overhead_target_pct", kArmedOverheadTargetPct);
  doc.Set("trace_runs", std::move(trace_runs));
  doc.Set("trace_off_overhead_pct", trace_off_overhead_pct);
  doc.Set("trace_off_overhead_target_pct", kTraceOffOverheadTargetPct);
  doc.Set("fleet_tables", kDatabases * kTablesPerDb);
  doc.Set("days", kDays);
  doc.Set("hardware_concurrency", hw);
  doc.Set("force_pools", force_pools);
  doc.Set("runs", std::move(json_runs));
  std::FILE* out = std::fopen("BENCH_sim.json", "w");
  AUTOCOMP_CHECK(out != nullptr);
  const std::string dumped = doc.Dump();
  std::fwrite(dumped.data(), 1, dumped.size(), out);
  std::fclose(out);
  std::printf("wrote BENCH_sim.json\n");

  // --- Perf gates (CI perf-smoke). Throughput may only regress to the
  // checked-in floor, and the armed-but-idle fault / disabled-tracing
  // costs must stay inside their budgets. Report-only unless the env
  // vars are set, so local exploratory runs never fail spuriously.
  const double min_events_per_sec =
      EnvDouble("AUTOCOMP_BENCH_MIN_EVENTS_PER_SEC", 0);
  const double max_overhead_pct =
      EnvDouble("AUTOCOMP_BENCH_MAX_OVERHEAD_PCT", 0);
  int gate_failures = 0;
  if (min_events_per_sec > 0 && seq.events_per_sec < min_events_per_sec) {
    std::printf("PERF GATE FAIL: seq events/s %.0f below floor %.0f\n",
                seq.events_per_sec, min_events_per_sec);
    ++gate_failures;
  }
  if (max_overhead_pct > 0) {
    if (armed_overhead_pct > max_overhead_pct) {
      std::printf(
          "PERF GATE FAIL: armed fault overhead %.2f%% above budget %.2f%%\n",
          armed_overhead_pct, max_overhead_pct);
      ++gate_failures;
    }
    if (trace_off_overhead_pct > max_overhead_pct) {
      std::printf(
          "PERF GATE FAIL: trace-off overhead %.2f%% above budget %.2f%%\n",
          trace_off_overhead_pct, max_overhead_pct);
      ++gate_failures;
    }
  }
  if (min_events_per_sec > 0 || max_overhead_pct > 0) {
    std::printf("perf gates: %s (floor %.0f ev/s, overhead budget %.2f%%)\n",
                gate_failures == 0 ? "PASS" : "FAIL", min_events_per_sec,
                max_overhead_pct);
  }
  return gate_failures == 0 ? 0 : 1;
}
