/// \file bench_sim_throughput.cc
/// \brief Data-plane replay throughput: the shard-parallel fleet driver
/// (sim::FleetSimulation) against the sequential reference, at shard
/// counts {1, 2, 4, 8}, over a ~2000-table fleet.
///
/// Every configuration must be **bit-identical** to the sequential run
/// (NFR2): the merged MetricsRecorder is compared series for series,
/// sample for sample, and the run aborts on any divergence. Timings are
/// best-of-N host wall-clock; on hosts with few hardware threads the
/// sharded runs still execute (the equality check is the point) but
/// their speedups measure oversubscription, not parallelism — the JSON
/// records hardware_concurrency so readers can judge.
///
/// Two fault-injection configs run after the shard sweep: "seq-armed"
/// (enabled injector, empty profile — must be bit-identical to seq; its
/// wall-clock delta is the zero-fault overhead, budgeted at <2% on quiet
/// hosts) and "seq-chaos" (the chaos preset, pricing sustained failures
/// plus the retry/backoff machinery). The armed overhead is the median
/// per-pair ratio against a plain-seq baseline *interleaved rep by rep*
/// with the armed runs (RunInterleaved), not a delta against the shard
/// sweep's seq block — the budget is smaller than the host's
/// minute-scale throughput drift.
///
/// Two tracing configs follow the same pattern: "seq-traceoff" (per-lane
/// recorders installed but TraceLevel::kOff — every emission site pays
/// its pointer+level guard and nothing else; must be bit-identical to
/// seq, with the wall-clock delta budgeted at <2% against its own
/// interleaved baseline) and "seq-traced" (TraceLevel::kFull — tracing
/// must be a pure observer, so metrics still equal seq exactly; the
/// digest is reported for reference).
///
/// Timing hygiene: every config gets one untimed warmup replay before
/// its best-of-N timed runs, so allocator/page-cache warmup lands on no
/// config in particular (previously the first-measured config paid it,
/// producing *negative* overhead percentages for later configs). Pool
/// configs wider than hardware_concurrency are skipped (their "speedup"
/// measures oversubscription, not parallelism) unless
/// AUTOCOMP_BENCH_FORCE_POOLS=1 — the same discipline as
/// bench_pipeline_throughput.
///
/// A "seq-eager" run (LaneMode::kAdvanceAll) prices the lazy driver
/// against the historical hydrate-everything/advance-everything path at
/// the 2000-table tier, and must be bit-identical to seq.
///
/// The **scale tier** then replays a cold-fleet configuration —
/// AUTOCOMP_BENCH_SCALE_TABLES one-table tenant databases (default
/// 20000) for AUTOCOMP_BENCH_SCALE_DAYS days (default 7; 50000 x 30 is
/// the supported upper shape) with *absolute* daily activity held
/// constant, the paper's hot-subset skew — as seq vs shard{1,2,4,8} x
/// pool{0,2,4}. Every config runs in a forked child so getrusage
/// ru_maxrss gives a clean per-config peak RSS; results are compared
/// across processes via MetricsRecorder::ContentHash and must match seq
/// exactly. A half-scale seq run (same activity, half the lanes)
/// documents the sublinear-footprint claim: lanes_hydrated and peak RSS
/// track activity, not fleet size.
///
/// The **eviction tier** (AUTOCOMP_BENCH_SCALE_EVICT_LANES, default 256;
/// 0 skips) reruns the scale fleet under a hard resident-lane budget +
/// idle rule (DESIGN.md §10): cold lanes dehydrate into checkpoints and
/// restore on their next due event. Both a sequential and a
/// shard4-pool2 eviction config must hash-equal the unbounded seq run;
/// the JSON records peak RSS vs unbounded, the wall-clock penalty, and
/// the eviction/restore/checkpoint-bytes accounting. CI gates the
/// evicting footprint under AUTOCOMP_BENCH_SCALE_EVICT_MAX_RSS_MB.
///
/// Results land in BENCH_sim.json:
///   {"fleet_tables": N, "days": D, "hardware_concurrency": H,
///    "force_pools": B, "runs": [
///      {"name": "seq", "shards": 0, "pool_workers": 0, "wall_ms": ...,
///       "events": ..., "events_per_sec": ..., "speedup_vs_seq": 1.0,
///       "metrics_equal": true}, ...],
///    "lazy_speedup_vs_eager": ...,
///    "fault_runs": [{"name": "seq-armed", "faults_injected": 0,
///       "overhead_pct": ..., "metrics_equal_to_seq": true}, ...],
///    "fault_armed_overhead_pct": ...,
///    "fault_armed_overhead_target_pct": 2.0,
///    "trace_runs": [{"name": "seq-traceoff", "trace_events": 0,
///       "overhead_pct": ..., "metrics_equal_to_seq": true}, ...],
///    "trace_off_overhead_pct": ...,
///    "trace_off_overhead_target_pct": 2.0,
///    "scale": {"tables": N, "days": D, "configs": [...],
///       "events_per_sec": ..., "peak_rss_mb": ...,
///       "wall_ms_per_event": ..., "base_wall_ms_per_event": ...,
///       "half_scale": {...}, "identical": true}}

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#if defined(__unix__)
#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>
#endif

#include "common/json.h"
#include "common/logging.h"
#include "common/thread_pool.h"
#include "fault/fault_injector.h"
#include "obs/trace.h"
#include "sim/fleet_driver.h"
#include "sim/metrics.h"

using namespace autocomp;

namespace {

// ~2000 tables: 40 tenant databases x 50 tables, the scale the
// acceptance bar names. One simulated day keeps the default turnaround
// tolerable on small hosts; each config takes the best of three timed
// reps (after an untimed warmup) because the overhead comparisons gate
// on low-single-digit percentages that a single noisy rep cannot
// resolve. AUTOCOMP_BENCH_SIM_DAYS and AUTOCOMP_BENCH_SIM_RUNS scale
// the horizon / rep count for hardware at either extreme.
constexpr int kDatabases = 40;
constexpr int kTablesPerDb = 50;

int EnvInt(const char* name, int fallback, int min_value) {
  const char* value = std::getenv(name);
  if (value == nullptr || value[0] == '\0') return fallback;
  const int parsed = std::atoi(value);
  return parsed < min_value ? fallback : parsed;
}

/// Perf-gate knobs (CI's perf-smoke job sets these; unset = report only):
/// a value <= 0 disables the corresponding gate.
double EnvDouble(const char* name, double fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || value[0] == '\0') return fallback;
  return std::atof(value);
}

const int kDays = EnvInt("AUTOCOMP_BENCH_SIM_DAYS", 1, 1);
const int kRunsPerConfig = EnvInt("AUTOCOMP_BENCH_SIM_RUNS", 3, 1);

sim::FleetSimOptions BaseOptions() {
  sim::FleetSimOptions options;
  options.days = kDays;
  options.seed = 7;
  options.fleet.num_databases = kDatabases;
  options.fleet.tables_per_db = kTablesPerDb;
  // Throughput here is events through the driver, not bytes through the
  // simulated DFS: shrink the lognormal table sizes so a 2000-table
  // replay finishes in minutes, not hours, on a laptop-class host. The
  // file-count distribution keeps its shape, just a smaller median.
  options.fleet.size_mu = std::log(128.0 * kMiB);
  options.fleet.size_sigma = 1.2;
  // Give the NameNode model some pressure so the epoch-load/timeout path
  // is actually exercised (fleet RPC totals overflow per-hour capacity).
  options.env.namenode.rpc_capacity_per_hour = 2'000;
  options.driver.sample_interval = 4 * kHour;
  options.driver.retention_interval = kDay;
  return options;
}

struct RunOutcome {
  std::string name;
  int shards = 0;        // 0 = sequential reference
  int pool_workers = 0;  // 0 = no pool (inline)
  double wall_ms = 0;    // best of kRunsPerConfig
  int64_t events = 0;
  int64_t total_files = 0;
  int64_t open_calls = 0;
  int64_t faults_injected = 0;
  double events_per_sec = 0;
  bool metrics_equal = true;
  /// Config not run (pool wider than the host) — excluded from the
  /// equality sweep and from any speedup claim; annotated in the JSON.
  bool skipped = false;
  std::string skip_reason;
  sim::MetricsRecorder metrics;
  obs::TraceDigest trace_digest;
};

/// Fault-injection variants of a config. kArmedEmpty is the zero-fault
/// parity configuration (enabled injector, nothing to inject): its cost
/// is the pure overhead of having the Arm() calls in every hot path, and
/// it must stay bit-identical to the injector-free run. kChaos runs the
/// "chaos" preset (every site armed) to price the retry/backoff
/// machinery under sustained failures.
enum class FaultMode { kOff, kArmedEmpty, kChaos };

/// Tracing variants of a config. kArmedOff installs per-lane recorders
/// at TraceLevel::kOff — every emission site pays its pointer+level
/// guard, nothing is recorded; this is the disabled-tracing overhead the
/// <2% budget covers. kFull records everything (tracing must still be a
/// pure observer: metrics stay bit-identical to the untraced run).
enum class TraceMode { kOff, kArmedOff, kFull };

/// One timed base-tier replay with the given variant knobs.
struct OneRun {
  double ms = 0;
  sim::FleetSimResult result;
};

OneRun TimedRun(int shards, ThreadPool* pool, FaultMode fault_mode,
                TraceMode trace_mode, sim::LaneMode lane_mode) {
  sim::FleetSimOptions options = BaseOptions();
  options.lane_mode = lane_mode;
  if (shards > 0) {
    options.sharded = true;
    options.shards = shards;
    options.pool = pool;
  } else {
    options.sharded = false;
    options.shards = 1;
    options.pool = nullptr;
  }
  if (fault_mode != FaultMode::kOff) {
    options.env.fault.enabled = true;
    options.env.fault.seed = 0x5eedfa;
    if (fault_mode == FaultMode::kChaos) {
      auto profile = fault::FaultProfileByName("chaos");
      AUTOCOMP_CHECK(profile.ok()) << profile.status();
      options.env.fault.profile = *std::move(profile);
    }
  }
  if (trace_mode == TraceMode::kArmedOff) {
    options.trace_armed = true;  // level stays kOff
  } else if (trace_mode == TraceMode::kFull) {
    options.trace_level = obs::TraceLevel::kFull;
  }
  sim::FleetSimulation simulation(std::move(options));
  const auto start = std::chrono::steady_clock::now();
  auto result = simulation.Run();
  const auto stop = std::chrono::steady_clock::now();
  AUTOCOMP_CHECK(result.ok()) << result.status();
  OneRun out;
  out.ms = std::chrono::duration<double, std::milli>(stop - start).count();
  out.result = *std::move(result);
  return out;
}

RunOutcome RunConfig(const std::string& name, int shards, int pool_workers,
                     FaultMode fault_mode = FaultMode::kOff,
                     TraceMode trace_mode = TraceMode::kOff,
                     sim::LaneMode lane_mode = sim::LaneMode::kActive) {
  RunOutcome out;
  out.name = name;
  out.shards = shards;
  out.pool_workers = pool_workers;
  std::unique_ptr<ThreadPool> pool;
  if (pool_workers > 0) pool = std::make_unique<ThreadPool>(pool_workers);
  // run -1 is an untimed warmup: allocator arenas and code pages get hot
  // once per config, so no config's timing carries the process's cold
  // start (which used to make later configs look *faster* than seq —
  // negative "overhead").
  for (int run = -1; run < kRunsPerConfig; ++run) {
    OneRun timed =
        TimedRun(shards, pool.get(), fault_mode, trace_mode, lane_mode);
    if (run < 0) {
      std::printf("  %s warmup: %.1f ms\n", name.c_str(), timed.ms);
      continue;
    }
    if (out.wall_ms == 0 || timed.ms < out.wall_ms) out.wall_ms = timed.ms;
    out.events = timed.result.events_executed;
    out.total_files = timed.result.total_files;
    out.open_calls = timed.result.open_calls;
    out.faults_injected = timed.result.faults_injected;
    out.trace_digest = timed.result.trace_digest;
    out.metrics = std::move(timed.result.metrics);
    std::printf("  %s run %d/%d: %.1f ms (%lld events)\n", name.c_str(),
                run + 1, kRunsPerConfig, timed.ms,
                static_cast<long long>(out.events));
  }
  out.events_per_sec =
      out.wall_ms > 0 ? static_cast<double>(out.events) / (out.wall_ms / 1e3)
                      : 0;
  return out;
}

/// Interleaved overhead measurement. The host's throughput drifts on
/// minute scales (frequency scaling, noisy neighbours), so timing a
/// variant block minutes after the baseline block buries a 2% effect in
/// several percent of drift — an armed-hook config was once measured 6%
/// *faster* than the plain run it strictly supersets. Each rep times a
/// fresh plain-seq baseline and the variant back to back, so both runs
/// of a pair sample the same host conditions; the reported overhead is
/// the *median of the per-pair ratios*, which a single noisy rep on
/// either side cannot skew (best-of-each would pair a lucky baseline
/// with an unlucky variant). `*overhead_pct` receives that median.
RunOutcome RunInterleaved(const std::string& name, FaultMode fault_mode,
                          TraceMode trace_mode, double* overhead_pct) {
  RunOutcome out;
  out.name = name;
  std::vector<double> pair_ratios;
  // At least five pairs regardless of kRunsPerConfig: the median needs
  // enough samples to reject the ±5% outlier reps a busy host produces.
  // Which side of a pair runs first alternates per rep — under a
  // monotone host slowdown the second position is systematically the
  // slower one, which a fixed order would bill entirely to the variant.
  const int pairs = std::max(kRunsPerConfig, 5);
  for (int run = -1; run < pairs; ++run) {
    const bool variant_first = run % 2 == 0;
    OneRun first = TimedRun(0, nullptr,
                            variant_first ? fault_mode : FaultMode::kOff,
                            variant_first ? trace_mode : TraceMode::kOff,
                            sim::LaneMode::kActive);
    OneRun second = TimedRun(0, nullptr,
                             variant_first ? FaultMode::kOff : fault_mode,
                             variant_first ? TraceMode::kOff : trace_mode,
                             sim::LaneMode::kActive);
    OneRun& base = variant_first ? second : first;
    OneRun& variant = variant_first ? first : second;
    if (run < 0) {
      std::printf("  %s warmup: %.1f ms (paired baseline %.1f ms)\n",
                  name.c_str(), variant.ms, base.ms);
      continue;
    }
    if (base.ms > 0) pair_ratios.push_back(variant.ms / base.ms);
    if (out.wall_ms == 0 || variant.ms < out.wall_ms) out.wall_ms = variant.ms;
    out.events = variant.result.events_executed;
    out.total_files = variant.result.total_files;
    out.open_calls = variant.result.open_calls;
    out.faults_injected = variant.result.faults_injected;
    out.trace_digest = variant.result.trace_digest;
    out.metrics = std::move(variant.result.metrics);
    std::printf("  %s run %d/%d: %.1f ms (paired baseline %.1f ms)\n",
                name.c_str(), run + 1, pairs, variant.ms, base.ms);
  }
  out.events_per_sec =
      out.wall_ms > 0 ? static_cast<double>(out.events) / (out.wall_ms / 1e3)
                      : 0;
  *overhead_pct = 0;
  if (!pair_ratios.empty()) {
    std::sort(pair_ratios.begin(), pair_ratios.end());
    const size_t n = pair_ratios.size();
    const double median = n % 2 == 1
                              ? pair_ratios[n / 2]
                              : (pair_ratios[n / 2 - 1] + pair_ratios[n / 2]) / 2;
    *overhead_pct = (median - 1.0) * 100.0;
  }
  return out;
}

RunOutcome SkippedConfig(const std::string& name, int shards,
                         int pool_workers, int hw) {
  RunOutcome out;
  out.name = name;
  out.shards = shards;
  out.pool_workers = pool_workers;
  out.skipped = true;
  out.skip_reason = "pool_workers " + std::to_string(pool_workers) +
                    " > hardware_concurrency " + std::to_string(hw);
  std::printf("  %s: skipped (%s; AUTOCOMP_BENCH_FORCE_POOLS=1 to run)\n",
              name.c_str(), out.skip_reason.c_str());
  return out;
}

// ---- scale tier ------------------------------------------------------
// AUTOCOMP_BENCH_SCALE_TABLES=0 skips the tier entirely.
const int kScaleTables = EnvInt("AUTOCOMP_BENCH_SCALE_TABLES", 20'000, 0);
const int kScaleDays = EnvInt("AUTOCOMP_BENCH_SCALE_DAYS", 7, 1);
// Eviction-tier knobs: the bounded-residency configs run the same fleet
// under FleetSimOptions::max_resident_lanes / evict_after_idle_hours
// (DESIGN.md §10) and must stay bit-identical to the unbounded seq run
// while holding peak RSS to a fraction of it. EVICT_LANES=0 skips the
// eviction configs.
const int kScaleEvictLanes = EnvInt("AUTOCOMP_BENCH_SCALE_EVICT_LANES", 4096, 0);
const int kScaleEvictIdleHours =
    EnvInt("AUTOCOMP_BENCH_SCALE_EVICT_IDLE_HOURS", 36, 0);
// MATRIX=0 drops the shard{1,2,4,8} x pool{0,2,4} identity sweep and
// keeps only seq + half + eviction configs — for iterating on the
// eviction tier without paying for the full 13-config matrix.
const int kScaleMatrix = EnvInt("AUTOCOMP_BENCH_SCALE_MATRIX", 1, 0);
// Absolute daily activity, held constant as the fleet grows: this is the
// paper's fleet shape (a small, Zipf-skewed hot subset doing nearly all
// the writing while the long tail sits cold), and it is what makes the
// sublinearity claim testable — doubling the fleet must not double the
// wall clock or the footprint, because the work didn't double.
constexpr double kScaleDailyWrites = 1000.0;
constexpr double kScaleDailyReads = 250.0;

sim::FleetSimOptions ScaleOptions(int tables) {
  sim::FleetSimOptions options;
  options.days = kScaleDays;
  options.seed = 7;
  // One table per tenant database = one lane per table: the sharpest
  // possible residency accounting (a lane hydrates iff *its* table is
  // ever touched).
  options.fleet.num_databases = tables;
  options.fleet.tables_per_db = 1;
  options.fleet.size_mu = std::log(128.0 * kMiB);
  options.fleet.size_sigma = 1.2;
  options.fleet.daily_write_fraction =
      kScaleDailyWrites / static_cast<double>(tables);
  options.fleet.daily_reads_per_table =
      kScaleDailyReads / static_cast<double>(tables);
  options.fleet.new_tables_per_day = 20;
  options.env.namenode.rpc_capacity_per_hour = tables;
  // 12h samples keep the merged per-lane series (lanes x days x 2 points
  // each) modest even at 50k x 30; dozing lanes defer these ticks, so
  // the cadence does not wake anyone.
  options.driver.sample_interval = 12 * kHour;
  options.driver.retention_interval = kDay;
  return options;
}

struct ScaleOutcome {
  std::string name;
  int shards = 0;
  int pool_workers = 0;
  bool forked = false;  // peak_rss_mb is per-config (fork+wait4) only then
  double wall_ms = 0;
  double setup_ms = 0;
  double peak_rss_mb = 0;
  int64_t events = 0;
  int64_t total_files = 0;
  int64_t open_calls = 0;
  int64_t lanes_total = 0;
  int64_t lanes_hydrated = 0;
  int64_t peak_resident_lanes = 0;
  int64_t lanes_ghosted = 0;
  int64_t lanes_evicted = 0;
  int64_t lanes_restored = 0;
  int64_t lanes_retired = 0;
  int64_t checkpoint_bytes = 0;
  double restore_ms = 0;
  unsigned long long metrics_hash = 0;
  bool identical = true;  // ContentHash + totals match the scale seq run
  double events_per_sec = 0;
};

/// One full-scale replay, in-process. Cross-process comparison uses
/// MetricsRecorder::ContentHash (order-stable over exactly the surface
/// Equals compares); the scale fleet runs without a preset, so no
/// host-wall-clock metric exists to perturb the hash.
ScaleOutcome ScaleBody(const std::string& name, int tables, int shards,
                       int pool_workers, int64_t max_resident_lanes,
                       int evict_after_idle_hours) {
  ScaleOutcome out;
  out.name = name;
  out.shards = shards;
  out.pool_workers = pool_workers;
  std::unique_ptr<ThreadPool> pool;
  if (pool_workers > 0) pool = std::make_unique<ThreadPool>(pool_workers);
  sim::FleetSimOptions options = ScaleOptions(tables);
  options.max_resident_lanes = max_resident_lanes;
  options.evict_after_idle_hours = evict_after_idle_hours;
  if (shards > 0) {
    options.sharded = true;
    options.shards = shards;
    options.pool = pool.get();
  } else {
    options.sharded = false;
    options.shards = 1;
    options.pool = nullptr;
  }
  sim::FleetSimulation simulation(std::move(options));
  const auto start = std::chrono::steady_clock::now();
  auto result = simulation.Run();
  const auto stop = std::chrono::steady_clock::now();
  AUTOCOMP_CHECK(result.ok()) << result.status();
  out.wall_ms =
      std::chrono::duration<double, std::milli>(stop - start).count();
  out.setup_ms = result->setup_ms;
  out.events = result->events_executed;
  out.total_files = result->total_files;
  out.open_calls = result->open_calls;
  out.lanes_total = result->lanes_total;
  out.lanes_hydrated = result->lanes_hydrated;
  out.peak_resident_lanes = result->peak_resident_lanes;
  out.lanes_ghosted = result->lanes_ghosted;
  out.lanes_evicted = result->lanes_evicted;
  out.lanes_restored = result->lanes_restored;
  out.lanes_retired = result->lanes_retired;
  out.checkpoint_bytes = result->checkpoint_bytes;
  out.restore_ms = result->restore_ms;
  out.metrics_hash = result->metrics.ContentHash();
  out.events_per_sec =
      out.wall_ms > 0 ? static_cast<double>(out.events) / (out.wall_ms / 1e3)
                      : 0;
  return out;
}

/// Runs a scale config in a forked child when the platform allows, so
/// wait4's ru_maxrss is that single replay's peak RSS — sequential
/// in-process runs would only ever report the high-water mark of the
/// *largest* config. Falls back to in-process (peak_rss_mb = 0) when
/// fork is unavailable.
ScaleOutcome RunScaleConfig(const std::string& name, int tables, int shards,
                            int pool_workers, int64_t max_resident_lanes = 0,
                            int evict_after_idle_hours = 0) {
  ScaleOutcome out;
#if defined(__unix__)
  int fds[2] = {-1, -1};
  if (pipe(fds) == 0) {
    const pid_t pid = fork();
    if (pid == 0) {
      close(fds[0]);
      const ScaleOutcome child =
          ScaleBody(name, tables, shards, pool_workers, max_resident_lanes,
                    evict_after_idle_hours);
      char buf[384];
      const int len = std::snprintf(
          buf, sizeof buf,
          "%.3f %.3f %lld %lld %lld %lld %lld %lld %lld %lld %lld %lld %lld "
          "%.3f %llu\n",
          child.wall_ms, child.setup_ms,
          static_cast<long long>(child.events),
          static_cast<long long>(child.total_files),
          static_cast<long long>(child.open_calls),
          static_cast<long long>(child.lanes_total),
          static_cast<long long>(child.lanes_hydrated),
          static_cast<long long>(child.peak_resident_lanes),
          static_cast<long long>(child.lanes_ghosted),
          static_cast<long long>(child.lanes_evicted),
          static_cast<long long>(child.lanes_restored),
          static_cast<long long>(child.lanes_retired),
          static_cast<long long>(child.checkpoint_bytes), child.restore_ms,
          child.metrics_hash);
      ssize_t written = 0;
      while (written < len) {
        const ssize_t n = write(fds[1], buf + written, len - written);
        if (n <= 0) _exit(3);
        written += n;
      }
      _exit(0);
    }
    if (pid > 0) {
      close(fds[1]);
      std::string line;
      char buf[384];
      ssize_t n;
      while ((n = read(fds[0], buf, sizeof buf)) > 0) line.append(buf, n);
      close(fds[0]);
      struct rusage ru;
      std::memset(&ru, 0, sizeof ru);
      int status = 0;
      AUTOCOMP_CHECK(wait4(pid, &status, 0, &ru) == pid);
      AUTOCOMP_CHECK(WIFEXITED(status) && WEXITSTATUS(status) == 0)
          << "scale config " << name << " child exited abnormally";
      long long events = 0, files = 0, opens = 0, total = 0, hydrated = 0,
                peak = 0, ghosted = 0, evicted = 0, restored = 0, retired = 0,
                ckpt = 0;
      unsigned long long hash = 0;
      AUTOCOMP_CHECK(std::sscanf(line.c_str(),
                                 "%lf %lf %lld %lld %lld %lld %lld %lld "
                                 "%lld %lld %lld %lld %lld %lf %llu",
                                 &out.wall_ms, &out.setup_ms, &events, &files,
                                 &opens, &total, &hydrated, &peak, &ghosted,
                                 &evicted, &restored, &retired, &ckpt,
                                 &out.restore_ms, &hash) == 15)
          << "scale config " << name << " child wrote: " << line;
      out.name = name;
      out.shards = shards;
      out.pool_workers = pool_workers;
      out.events = events;
      out.total_files = files;
      out.open_calls = opens;
      out.lanes_total = total;
      out.lanes_hydrated = hydrated;
      out.peak_resident_lanes = peak;
      out.lanes_ghosted = ghosted;
      out.lanes_evicted = evicted;
      out.lanes_restored = restored;
      out.lanes_retired = retired;
      out.checkpoint_bytes = ckpt;
      out.metrics_hash = hash;
      out.events_per_sec =
          out.wall_ms > 0
              ? static_cast<double>(out.events) / (out.wall_ms / 1e3)
              : 0;
      // Linux reports ru_maxrss in kilobytes.
      out.peak_rss_mb = static_cast<double>(ru.ru_maxrss) / 1024.0;
      out.forked = true;
    } else {
      close(fds[0]);
      close(fds[1]);
      out = ScaleBody(name, tables, shards, pool_workers, max_resident_lanes,
                      evict_after_idle_hours);
    }
  } else {
    out = ScaleBody(name, tables, shards, pool_workers, max_resident_lanes,
                    evict_after_idle_hours);
  }
#else
  out = ScaleBody(name, tables, shards, pool_workers, max_resident_lanes,
                  evict_after_idle_hours);
#endif
  std::printf(
      "  %s: %.1f ms (%lld events, setup %.1f ms, %lld/%lld lanes hydrated, "
      "peak resident %lld, evicted %lld, restored %lld, rss %.1f MB)\n",
      name.c_str(), out.wall_ms, static_cast<long long>(out.events),
      out.setup_ms, static_cast<long long>(out.lanes_hydrated),
      static_cast<long long>(out.lanes_total),
      static_cast<long long>(out.peak_resident_lanes),
      static_cast<long long>(out.lanes_evicted),
      static_cast<long long>(out.lanes_restored), out.peak_rss_mb);
  return out;
}

}  // namespace

int main() {
  std::setvbuf(stdout, nullptr, _IOLBF, 0);  // live progress when piped
  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  const char* force_env = std::getenv("AUTOCOMP_BENCH_FORCE_POOLS");
  const bool force_pools =
      force_env != nullptr && std::strcmp(force_env, "0") != 0 &&
      force_env[0] != '\0';
  std::printf("hardware_concurrency = %d%s\n", hw,
              force_pools ? " (AUTOCOMP_BENCH_FORCE_POOLS set)" : "");

  // --- Scale tier replays run FIRST, while this process is still small:
  // each config forks a child whose wait4 ru_maxrss is that replay's own
  // peak RSS. Forking after the 2000-table tier would hand every child
  // a ~300 MB inherited high-water mark and flatten the comparison. The
  // full seq vs shard{1,2,4,8} x pool{0,2,4} matrix runs regardless of
  // hardware_concurrency — cross-process bit-identity (ContentHash) is
  // the point here, and no speedup is claimed from these runs. A
  // half-fleet seq run with the same absolute activity documents the
  // sublinear wall/footprint claim.
  const bool scale_enabled = kScaleTables > 0;
  const bool evict_enabled = scale_enabled && kScaleEvictLanes > 0;
  std::vector<ScaleOutcome> scale_runs;
  std::vector<ScaleOutcome> evict_runs;
  ScaleOutcome scale_half;
  bool scale_identical = true;
  if (scale_enabled) {
    std::printf(
        "scale tier: %d one-table databases, %d day(s), ~%.0f writes + "
        "%.0f reads per day fleet-wide...\n",
        kScaleTables, kScaleDays, kScaleDailyWrites, kScaleDailyReads);
    scale_runs.push_back(RunScaleConfig("seq", kScaleTables, 0, 0));
    if (kScaleMatrix > 0) {
      for (const int shards : {1, 2, 4, 8}) {
        for (const int workers : {0, 2, 4}) {
          const std::string name = "shard" + std::to_string(shards) + "-pool" +
                                   std::to_string(workers);
          scale_runs.push_back(
              RunScaleConfig(name, kScaleTables, shards, workers));
        }
      }
    } else {
      std::printf("scale matrix: skipped (AUTOCOMP_BENCH_SCALE_MATRIX=0)\n");
    }
    // Bounded-residency configs: the evictor dehydrates cold lanes into
    // checkpoints under a hard budget + idle rule; metrics must still
    // hash-equal the unbounded seq run while peak RSS drops. One
    // sequential and one sharded+pooled config, so the cross-process
    // identity check covers eviction interleaved with shard parallelism.
    if (evict_enabled) {
      std::printf(
          "eviction tier: budget %d resident lanes, idle rule %d h...\n",
          kScaleEvictLanes, kScaleEvictIdleHours);
      evict_runs.push_back(RunScaleConfig("seq-evict", kScaleTables, 0, 0,
                                          kScaleEvictLanes,
                                          kScaleEvictIdleHours));
      evict_runs.push_back(RunScaleConfig("shard4-pool2-evict", kScaleTables,
                                          4, 2, kScaleEvictLanes,
                                          kScaleEvictIdleHours));
    }
    const ScaleOutcome& sseq = scale_runs.front();
    const auto check_identical = [&](ScaleOutcome& r) {
      r.identical = r.metrics_hash == sseq.metrics_hash &&
                    r.events == sseq.events &&
                    r.total_files == sseq.total_files &&
                    r.open_calls == sseq.open_calls;
      scale_identical = scale_identical && r.identical;
      AUTOCOMP_CHECK(r.identical)
          << "scale config " << r.name
          << " diverged from scale seq: hash " << r.metrics_hash << " vs "
          << sseq.metrics_hash;
    };
    for (ScaleOutcome& r : scale_runs) {
      if (&r == &sseq) continue;
      check_identical(r);
    }
    for (ScaleOutcome& r : evict_runs) {
      check_identical(r);
      AUTOCOMP_CHECK(r.lanes_evicted > 0)
          << "eviction config " << r.name << " never evicted a lane";
    }
    scale_half = RunScaleConfig("seq-half", kScaleTables / 2, 0, 0);
  } else {
    std::printf("scale tier: skipped (AUTOCOMP_BENCH_SCALE_TABLES=0)\n");
  }

  std::printf(
      "replaying %d-table fleet for %d day(s), %d run(s) per config...\n",
      kDatabases * kTablesPerDb, kDays, kRunsPerConfig);
  std::vector<RunOutcome> runs;
  runs.push_back(RunConfig("seq", 0, 0));
  for (const int shards : {1, 2, 4, 8}) {
    const std::string name = "shard" + std::to_string(shards);
    // A pool wider than the host measures oversubscription, not
    // parallelism (shard8 reported 0.81x on a 1-vCPU container) — skip
    // it and say so, unless the caller forces the full sweep (CI does,
    // to keep the NFR2 equality check exercised at every width).
    if (!force_pools && shards > hw) {
      runs.push_back(SkippedConfig(name, shards, shards, hw));
      continue;
    }
    runs.push_back(RunConfig(name, shards, shards));
  }
  const RunOutcome& seq = runs.front();

  // NFR2: every sharded configuration reproduces the sequential run
  // exactly — same merged metrics, same fleet end state.
  for (RunOutcome& r : runs) {
    if (r.shards == 0 || r.skipped) continue;
    std::string why;
    r.metrics_equal = seq.metrics.Equals(r.metrics, &why) &&
                      r.events == seq.events &&
                      r.total_files == seq.total_files &&
                      r.open_calls == seq.open_calls;
    AUTOCOMP_CHECK(r.metrics_equal)
        << "sharded run " << r.name
        << " diverged from the sequential driver: "
        << (why.empty() ? "aggregate totals differ" : why);
  }

  // The lazy driver (kActive, what every config above runs) against the
  // historical hydrate-everything/advance-everything path on the same
  // fleet. Must be bit-identical; the wall-clock ratio is the lazy
  // scheduling win at a tier where *every* lane has daily work.
  RunOutcome eager = RunConfig("seq-eager", 0, 0, FaultMode::kOff,
                               TraceMode::kOff, sim::LaneMode::kAdvanceAll);
  {
    std::string why;
    eager.metrics_equal = seq.metrics.Equals(eager.metrics, &why) &&
                          eager.events == seq.events &&
                          eager.total_files == seq.total_files &&
                          eager.open_calls == seq.open_calls;
    AUTOCOMP_CHECK(eager.metrics_equal)
        << "lazy driver diverged from the eager reference: "
        << (why.empty() ? "aggregate totals differ" : why);
  }
  const double lazy_speedup_vs_eager =
      seq.wall_ms > 0 ? eager.wall_ms / seq.wall_ms : 0;

  sim::TablePrinter table({"config", "shards", "pool", "wall ms", "events",
                           "events/s", "speedup", "files", "opens",
                           "identical"});
  JsonValue json_runs = JsonValue::Array();
  auto add_run_row = [&](const RunOutcome& r) {
    if (r.skipped) {
      table.AddRow({r.name, std::to_string(r.shards),
                    std::to_string(r.pool_workers), "skipped", "-", "-", "-",
                    "-", "-", "n/a"});
    } else {
      const double speedup = r.wall_ms > 0 ? seq.wall_ms / r.wall_ms : 0;
      table.AddRow({r.name, std::to_string(r.shards),
                    std::to_string(r.pool_workers), sim::Fmt(r.wall_ms, 1),
                    std::to_string(r.events), sim::Fmt(r.events_per_sec, 0),
                    sim::Fmt(speedup, 2), std::to_string(r.total_files),
                    std::to_string(r.open_calls),
                    r.metrics_equal ? "yes" : "NO"});
    }
    JsonValue entry = JsonValue::Object();
    entry.Set("name", r.name);
    entry.Set("shards", r.shards);
    entry.Set("pool_workers", r.pool_workers);
    if (r.skipped) {
      entry.Set("skipped", true);
      entry.Set("skip_reason", r.skip_reason);
    } else {
      entry.Set("wall_ms", r.wall_ms);
      entry.Set("events", r.events);
      entry.Set("events_per_sec", r.events_per_sec);
      entry.Set("speedup_vs_seq", r.wall_ms > 0 ? seq.wall_ms / r.wall_ms : 0);
      entry.Set("metrics_equal", r.metrics_equal);
    }
    json_runs.Append(std::move(entry));
  };
  for (const RunOutcome& r : runs) add_run_row(r);
  add_run_row(eager);
  std::printf("%s", table.ToString().c_str());
  std::printf("lazy (active-lane) speedup vs eager advance-all: %.2fx\n",
              lazy_speedup_vs_eager);

  // --- Fault-injection overhead: the zero-fault parity config (armed
  // injector, empty profile) must be bit-identical to seq, and its cost
  // is budgeted at <2% wall-clock — measured against an interleaved
  // baseline (see RunInterleaved) because the budget is smaller than the
  // host's minute-scale drift. The chaos config prices sustained
  // failures + retries and is reported for reference only.
  double armed_overhead_pct = 0;
  RunOutcome armed = RunInterleaved("seq-armed", FaultMode::kArmedEmpty,
                                    TraceMode::kOff, &armed_overhead_pct);
  {
    std::string why;
    armed.metrics_equal = seq.metrics.Equals(armed.metrics, &why) &&
                          armed.events == seq.events &&
                          armed.total_files == seq.total_files &&
                          armed.open_calls == seq.open_calls;
    AUTOCOMP_CHECK(armed.metrics_equal)
        << "armed-but-empty injector perturbed the simulation: "
        << (why.empty() ? "aggregate totals differ" : why);
    AUTOCOMP_CHECK(armed.faults_injected == 0);
  }
  RunOutcome chaos = RunConfig("seq-chaos", 0, 0, FaultMode::kChaos);
  AUTOCOMP_CHECK(chaos.faults_injected > 0)
      << "chaos profile injected nothing";
  constexpr double kArmedOverheadTargetPct = 2.0;
  const double chaos_overhead_pct =
      seq.wall_ms > 0 ? (chaos.wall_ms - seq.wall_ms) / seq.wall_ms * 100.0
                      : 0.0;
  sim::TablePrinter fault_table(
      {"config", "wall ms", "events", "faults", "overhead %", "identical"});
  fault_table.AddRow({armed.name, sim::Fmt(armed.wall_ms, 1),
                      std::to_string(armed.events),
                      std::to_string(armed.faults_injected),
                      sim::Fmt(armed_overhead_pct, 2),
                      armed.metrics_equal ? "yes" : "NO"});
  fault_table.AddRow({chaos.name, sim::Fmt(chaos.wall_ms, 1),
                      std::to_string(chaos.events),
                      std::to_string(chaos.faults_injected),
                      sim::Fmt(chaos_overhead_pct, 2), "n/a"});
  std::printf("%s", fault_table.ToString().c_str());
  std::printf("armed (zero-fault) overhead: %.2f%% (target < %.0f%%)\n",
              armed_overhead_pct, kArmedOverheadTargetPct);

  JsonValue fault_runs = JsonValue::Array();
  for (const RunOutcome* r : {&armed, &chaos}) {
    JsonValue entry = JsonValue::Object();
    entry.Set("name", r->name);
    entry.Set("wall_ms", r->wall_ms);
    entry.Set("events", r->events);
    entry.Set("faults_injected", r->faults_injected);
    entry.Set("overhead_pct",
              r == &armed ? armed_overhead_pct : chaos_overhead_pct);
    entry.Set("metrics_equal_to_seq", r == &armed);
    fault_runs.Append(std::move(entry));
  }

  // --- Tracing overhead: armed-but-off recorders must be bit-identical
  // to seq with <2% wall-clock cost (the disabled-tracing budget),
  // measured against an interleaved baseline like the fault hooks; a
  // full-detail trace must also be a pure observer — metrics still equal
  // seq exactly — and its cost is reported for reference only.
  double trace_off_overhead_pct = 0;
  RunOutcome traceoff = RunInterleaved("seq-traceoff", FaultMode::kOff,
                                       TraceMode::kArmedOff,
                                       &trace_off_overhead_pct);
  RunOutcome traced =
      RunConfig("seq-traced", 0, 0, FaultMode::kOff, TraceMode::kFull);
  for (RunOutcome* r : {&traceoff, &traced}) {
    std::string why;
    r->metrics_equal = seq.metrics.Equals(r->metrics, &why) &&
                       r->events == seq.events &&
                       r->total_files == seq.total_files &&
                       r->open_calls == seq.open_calls;
    AUTOCOMP_CHECK(r->metrics_equal)
        << r->name << " perturbed the simulation: "
        << (why.empty() ? "aggregate totals differ" : why);
  }
  AUTOCOMP_CHECK(traceoff.trace_digest.events == 0)
      << "armed-but-off recorders recorded "
      << traceoff.trace_digest.events << " events";
  AUTOCOMP_CHECK(traced.trace_digest.events > 0)
      << "full-detail trace recorded nothing";
  constexpr double kTraceOffOverheadTargetPct = 2.0;
  const double traced_overhead_pct =
      seq.wall_ms > 0 ? (traced.wall_ms - seq.wall_ms) / seq.wall_ms * 100.0
                      : 0.0;
  sim::TablePrinter trace_table({"config", "wall ms", "trace events",
                                 "overhead %", "digest", "identical"});
  trace_table.AddRow({traceoff.name, sim::Fmt(traceoff.wall_ms, 1),
                      std::to_string(traceoff.trace_digest.events),
                      sim::Fmt(trace_off_overhead_pct, 2), "-",
                      traceoff.metrics_equal ? "yes" : "NO"});
  trace_table.AddRow({traced.name, sim::Fmt(traced.wall_ms, 1),
                      std::to_string(traced.trace_digest.events),
                      sim::Fmt(traced_overhead_pct, 2),
                      traced.trace_digest.ToString(),
                      traced.metrics_equal ? "yes" : "NO"});
  std::printf("%s", trace_table.ToString().c_str());
  std::printf("trace-off (armed, level=off) overhead: %.2f%% (target < %.0f%%)\n",
              trace_off_overhead_pct, kTraceOffOverheadTargetPct);

  JsonValue trace_runs = JsonValue::Array();
  for (const RunOutcome* r : {&traceoff, &traced}) {
    JsonValue entry = JsonValue::Object();
    entry.Set("name", r->name);
    entry.Set("wall_ms", r->wall_ms);
    entry.Set("events", r->events);
    entry.Set("trace_events", r->trace_digest.events);
    entry.Set("trace_digest", r->trace_digest.ToString());
    entry.Set("overhead_pct",
              r == &traceoff ? trace_off_overhead_pct : traced_overhead_pct);
    entry.Set("metrics_equal_to_seq", r->metrics_equal);
    trace_runs.Append(std::move(entry));
  }

  // --- Scale-tier report (the replays themselves ran first, above).
  JsonValue scale_json = JsonValue::Object();
  double scale_events_per_sec = 0;
  double scale_peak_rss_mb = 0;
  bool scale_forked = false;
  double evict_peak_rss_mb = 0;
  double evict_rss_vs_unbounded = 0;
  double evict_wall_penalty_pct = 0;
  bool evict_forked = false;
  if (scale_enabled) {
    const ScaleOutcome& sseq = scale_runs.front();
    const ScaleOutcome& half = scale_half;

    sim::TablePrinter scale_table(
        {"config", "shards", "pool", "wall ms", "setup ms", "events",
         "events/s", "hydrated", "peak res", "evicted", "rss MB",
         "identical"});
    const auto add_scale_row = [&](const ScaleOutcome& r,
                                   const char* identical) {
      scale_table.AddRow(
          {r.name, std::to_string(r.shards), std::to_string(r.pool_workers),
           sim::Fmt(r.wall_ms, 1), sim::Fmt(r.setup_ms, 1),
           std::to_string(r.events), sim::Fmt(r.events_per_sec, 0),
           std::to_string(r.lanes_hydrated) + "/" +
               std::to_string(r.lanes_total),
           std::to_string(r.peak_resident_lanes),
           std::to_string(r.lanes_evicted), sim::Fmt(r.peak_rss_mb, 1),
           identical});
    };
    for (const ScaleOutcome& r : scale_runs) {
      add_scale_row(r, &r == &sseq ? "ref" : (r.identical ? "yes" : "NO"));
    }
    for (const ScaleOutcome& r : evict_runs) {
      add_scale_row(r, r.identical ? "yes" : "NO");
    }
    add_scale_row(half, "n/a");
    std::printf("%s", scale_table.ToString().c_str());

    const double scale_wall_per_event =
        sseq.events > 0 ? sseq.wall_ms / static_cast<double>(sseq.events) : 0;
    const double base_wall_per_event =
        seq.events > 0 ? seq.wall_ms / static_cast<double>(seq.events) : 0;
    const double rss_full_vs_half =
        half.peak_rss_mb > 0 ? sseq.peak_rss_mb / half.peak_rss_mb : 0;
    const double wall_full_vs_half =
        half.wall_ms > 0 ? sseq.wall_ms / half.wall_ms : 0;
    std::printf(
        "scale: %.3f ms/event (2000-table tier: %.3f); 2x lanes => %.2fx "
        "wall, %.2fx rss; %lld of %lld lanes ever hydrated\n",
        scale_wall_per_event, base_wall_per_event, wall_full_vs_half,
        rss_full_vs_half, static_cast<long long>(sseq.lanes_hydrated),
        static_cast<long long>(sseq.lanes_total));

    JsonValue scale_configs = JsonValue::Array();
    auto scale_entry = [](const ScaleOutcome& r, bool is_ref) {
      JsonValue entry = JsonValue::Object();
      entry.Set("name", r.name);
      entry.Set("shards", r.shards);
      entry.Set("pool_workers", r.pool_workers);
      entry.Set("wall_ms", r.wall_ms);
      entry.Set("setup_ms", r.setup_ms);
      entry.Set("events", r.events);
      entry.Set("events_per_sec", r.events_per_sec);
      entry.Set("lanes_total", r.lanes_total);
      entry.Set("lanes_hydrated", r.lanes_hydrated);
      entry.Set("peak_resident_lanes", r.peak_resident_lanes);
      entry.Set("lanes_ghosted", r.lanes_ghosted);
      entry.Set("lanes_evicted", r.lanes_evicted);
      entry.Set("lanes_restored", r.lanes_restored);
      entry.Set("lanes_retired", r.lanes_retired);
      entry.Set("checkpoint_bytes", r.checkpoint_bytes);
      entry.Set("restore_ms", r.restore_ms);
      entry.Set("peak_rss_mb", r.peak_rss_mb);
      entry.Set("metrics_hash", std::to_string(r.metrics_hash));
      if (!is_ref) entry.Set("identical_to_seq", r.identical);
      return entry;
    };
    for (const ScaleOutcome& r : scale_runs) {
      scale_configs.Append(scale_entry(r, &r == &sseq));
    }
    scale_json.Set("tables", kScaleTables);
    scale_json.Set("days", kScaleDays);
    scale_json.Set("daily_writes", kScaleDailyWrites);
    scale_json.Set("daily_reads", kScaleDailyReads);
    scale_json.Set("per_config_rss", sseq.forked);
    scale_json.Set("configs", std::move(scale_configs));
    scale_json.Set("half_scale", scale_entry(half, true));
    scale_json.Set("events_per_sec", sseq.events_per_sec);
    scale_json.Set("peak_rss_mb", sseq.peak_rss_mb);
    scale_json.Set("setup_ms", sseq.setup_ms);
    scale_json.Set("wall_ms_per_event", scale_wall_per_event);
    scale_json.Set("base_wall_ms_per_event", base_wall_per_event);
    scale_json.Set("wall_full_vs_half", wall_full_vs_half);
    scale_json.Set("rss_full_vs_half", rss_full_vs_half);
    scale_json.Set("lanes_total", sseq.lanes_total);
    scale_json.Set("lanes_hydrated", sseq.lanes_hydrated);
    scale_json.Set("peak_resident_lanes", sseq.peak_resident_lanes);
    scale_json.Set("identical", scale_identical);
    scale_events_per_sec = sseq.events_per_sec;
    scale_peak_rss_mb = sseq.peak_rss_mb;
    scale_forked = sseq.forked;

    if (evict_enabled) {
      const ScaleOutcome& sevict = evict_runs.front();
      evict_rss_vs_unbounded = sseq.peak_rss_mb > 0 && sevict.forked
                                   ? sevict.peak_rss_mb / sseq.peak_rss_mb
                                   : 0;
      evict_wall_penalty_pct =
          sseq.wall_ms > 0
              ? (sevict.wall_ms - sseq.wall_ms) / sseq.wall_ms * 100.0
              : 0;
      std::printf(
          "evict: rss %.1f MB vs unbounded %.1f MB (%.0f%%), wall penalty "
          "%.1f%%, %lld evictions / %lld restores / %lld retired, checkpoint "
          "peak %.1f MB, restore %.1f ms total\n",
          sevict.peak_rss_mb, sseq.peak_rss_mb,
          evict_rss_vs_unbounded * 100.0, evict_wall_penalty_pct,
          static_cast<long long>(sevict.lanes_evicted),
          static_cast<long long>(sevict.lanes_restored),
          static_cast<long long>(sevict.lanes_retired),
          static_cast<double>(sevict.checkpoint_bytes) / (1024.0 * 1024.0),
          sevict.restore_ms);
      JsonValue evict_json = JsonValue::Object();
      evict_json.Set("max_resident_lanes", kScaleEvictLanes);
      evict_json.Set("evict_after_idle_hours", kScaleEvictIdleHours);
      JsonValue evict_configs = JsonValue::Array();
      for (const ScaleOutcome& r : evict_runs) {
        evict_configs.Append(scale_entry(r, false));
      }
      evict_json.Set("configs", std::move(evict_configs));
      evict_json.Set("peak_rss_mb", sevict.peak_rss_mb);
      evict_json.Set("rss_vs_unbounded", evict_rss_vs_unbounded);
      evict_json.Set("wall_penalty_pct", evict_wall_penalty_pct);
      evict_json.Set("lanes_evicted", sevict.lanes_evicted);
      evict_json.Set("lanes_restored", sevict.lanes_restored);
      evict_json.Set("lanes_retired", sevict.lanes_retired);
      evict_json.Set("checkpoint_bytes", sevict.checkpoint_bytes);
      evict_json.Set("restore_ms", sevict.restore_ms);
      scale_json.Set("evict", std::move(evict_json));
      evict_peak_rss_mb = sevict.peak_rss_mb;
      evict_forked = sevict.forked;
    }
  } else {
    scale_json.Set("skipped", true);
  }

  // Pre-overhaul reference (PR 5 seed, same 2000-table/1-day config on a
  // 1-vCPU container): the "before" side of the hot-path rework. Kept as
  // constants so regenerating this file never loses the comparison.
  JsonValue baseline = JsonValue::Object();
  baseline.Set("label", std::string("pr5-pre-overhaul"));
  baseline.Set("seq_wall_ms", 45976.1);
  baseline.Set("seq_events", static_cast<int64_t>(901));
  baseline.Set("seq_events_per_sec", 19.6);
  baseline.Set("fault_armed_overhead_pct", 13.2);

  JsonValue doc = JsonValue::Object();
  doc.Set("baseline", std::move(baseline));
  doc.Set("events_per_sec", seq.events_per_sec);
  doc.Set("speedup_vs_baseline", seq.events_per_sec / 19.6);
  doc.Set("lazy_speedup_vs_eager", lazy_speedup_vs_eager);
  doc.Set("scale", std::move(scale_json));
  doc.Set("fault_runs", std::move(fault_runs));
  doc.Set("fault_armed_overhead_pct", armed_overhead_pct);
  doc.Set("fault_armed_overhead_target_pct", kArmedOverheadTargetPct);
  doc.Set("trace_runs", std::move(trace_runs));
  doc.Set("trace_off_overhead_pct", trace_off_overhead_pct);
  doc.Set("trace_off_overhead_target_pct", kTraceOffOverheadTargetPct);
  doc.Set("fleet_tables", kDatabases * kTablesPerDb);
  doc.Set("days", kDays);
  doc.Set("hardware_concurrency", hw);
  doc.Set("force_pools", force_pools);
  doc.Set("runs", std::move(json_runs));
  std::FILE* out = std::fopen("BENCH_sim.json", "w");
  AUTOCOMP_CHECK(out != nullptr);
  const std::string dumped = doc.Dump();
  std::fwrite(dumped.data(), 1, dumped.size(), out);
  std::fclose(out);
  std::printf("wrote BENCH_sim.json\n");

  // --- Perf gates (CI perf-smoke). Throughput may only regress to the
  // checked-in floor, and the armed-but-idle fault / disabled-tracing
  // costs must stay inside their budgets. Report-only unless the env
  // vars are set, so local exploratory runs never fail spuriously.
  const double min_events_per_sec =
      EnvDouble("AUTOCOMP_BENCH_MIN_EVENTS_PER_SEC", 0);
  const double max_overhead_pct =
      EnvDouble("AUTOCOMP_BENCH_MAX_OVERHEAD_PCT", 0);
  int gate_failures = 0;
  if (min_events_per_sec > 0 && seq.events_per_sec < min_events_per_sec) {
    std::printf("PERF GATE FAIL: seq events/s %.0f below floor %.0f\n",
                seq.events_per_sec, min_events_per_sec);
    ++gate_failures;
  }
  if (max_overhead_pct > 0) {
    if (armed_overhead_pct > max_overhead_pct) {
      std::printf(
          "PERF GATE FAIL: armed fault overhead %.2f%% above budget %.2f%%\n",
          armed_overhead_pct, max_overhead_pct);
      ++gate_failures;
    }
    if (trace_off_overhead_pct > max_overhead_pct) {
      std::printf(
          "PERF GATE FAIL: trace-off overhead %.2f%% above budget %.2f%%\n",
          trace_off_overhead_pct, max_overhead_pct);
      ++gate_failures;
    }
  }
  const double scale_min_events_per_sec =
      EnvDouble("AUTOCOMP_BENCH_SCALE_MIN_EVENTS_PER_SEC", 0);
  const double scale_max_rss_mb = EnvDouble("AUTOCOMP_BENCH_SCALE_MAX_RSS_MB", 0);
  if (scale_enabled && scale_min_events_per_sec > 0 &&
      scale_events_per_sec < scale_min_events_per_sec) {
    std::printf("PERF GATE FAIL: scale events/s %.0f below floor %.0f\n",
                scale_events_per_sec, scale_min_events_per_sec);
    ++gate_failures;
  }
  // The RSS ceiling only means something when each config ran in its own
  // forked child (otherwise ru_maxrss is the whole process's high-water
  // mark, dominated by the 2000-table tier's merged recorders).
  if (scale_enabled && scale_max_rss_mb > 0 && scale_forked &&
      scale_peak_rss_mb > scale_max_rss_mb) {
    std::printf("PERF GATE FAIL: scale peak rss %.1f MB above ceiling %.1f MB\n",
                scale_peak_rss_mb, scale_max_rss_mb);
    ++gate_failures;
  }
  // Eviction-tier gate: with a lane budget in force the footprint must
  // stay under its own (tighter) checked-in ceiling — the bounded-memory
  // contract of DESIGN.md §10, not just a regression guard.
  const double evict_max_rss_mb =
      EnvDouble("AUTOCOMP_BENCH_SCALE_EVICT_MAX_RSS_MB", 0);
  if (evict_enabled && evict_max_rss_mb > 0 && evict_forked &&
      evict_peak_rss_mb > evict_max_rss_mb) {
    std::printf(
        "PERF GATE FAIL: evict peak rss %.1f MB above ceiling %.1f MB "
        "(%.0f%% of unbounded, wall penalty %.1f%%)\n",
        evict_peak_rss_mb, evict_max_rss_mb, evict_rss_vs_unbounded * 100.0,
        evict_wall_penalty_pct);
    ++gate_failures;
  }
  if (min_events_per_sec > 0 || max_overhead_pct > 0 ||
      scale_min_events_per_sec > 0 || scale_max_rss_mb > 0 ||
      evict_max_rss_mb > 0) {
    std::printf("perf gates: %s (floor %.0f ev/s, overhead budget %.2f%%, "
                "scale floor %.0f ev/s, scale rss ceiling %.1f MB, evict "
                "rss ceiling %.1f MB)\n",
                gate_failures == 0 ? "PASS" : "FAIL", min_events_per_sec,
                max_overhead_pct, scale_min_events_per_sec, scale_max_rss_mb,
                evict_max_rss_mb);
  }
  return gate_failures == 0 ? 0 : 1;
}
