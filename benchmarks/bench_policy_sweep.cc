/// \file bench_policy_sweep.cc
/// \brief The composable-policy Pareto sweep: every valid pinned-table
/// PolicySpec (core/policy.h; 50 points = 5 triggers x {3 movements x 3
/// movement-agnostic pickers + the merge-only online-merge picker}) is
/// replayed over four workload archetypes — batch-etl, trickle-heavy,
/// scan-heavy and churn-onboarding — and each (archetype, policy) point
/// is priced on the paper's two axes: compaction GBHr spent vs mean read
/// latency delivered. core::MarkPolicyFrontier marks the non-dominated
/// set per archetype; the whole cross-product lands in
/// BENCH_policy.json.
///
/// Every point runs in a forked child (parent stays small; a crashed
/// replay fails one point, not the harness) that executes the replay
/// TWICE — sequential and shard4-pool2 — and the two merged
/// MetricsRecorders must agree Equals + ContentHash exactly (NFR2
/// extends to every policy shape, not just the default). The run aborts
/// on any divergence. Replays use the deferred-act driver so compaction
/// work is executed on the simulated timeline and its GBHr lands in the
/// metrics; host-wall-clock profiling series are disabled
/// (DriverOptions::record_host_timings) so bit-identity is meaningful.
///
/// Two follow-up sections reuse the sweep's machinery:
///  * merge competitive ratios — per archetype, an arrival trace shaped
///    like that archetype's write pattern is priced under every built-in
///    online merge policy against the offline-optimal oracle
///    (core/merge_policy.h); ratios must be finite and >= 1, and the
///    per-archetype numbers are the ones quoted in EXPERIMENTS.md;
///  * armed-overhead parity — a non-default policy (per-policy decide
///    spans and label plumbing active) with the fault injector armed on
///    an empty profile must stay bit-identical to the unarmed run, with
///    the wall-clock delta budgeted at <2%, measured pair-interleaved
///    (median of per-pair ratios) exactly like bench_sim_throughput.
///
/// A PolicyTuner demo closes the loop to §6.3: a CFO optimizer searches
/// the four-axis shape space through PolicySpecCodec against the
/// *measured* batch-etl outcomes (normalized GBHr + latency
/// scalarization), showing the tuner converging on the measured frontier
/// without a single extra simulation (decode-level memoization).
///
/// Knobs: AUTOCOMP_BENCH_POLICY_DAYS (default 1),
/// AUTOCOMP_BENCH_POLICY_MAX_SPECS (0 = all 50),
/// AUTOCOMP_BENCH_POLICY_RUNS (overhead pairs, default 3, min 5 pairs),
/// AUTOCOMP_BENCH_POLICY_TUNER_ITERS (default 48),
/// AUTOCOMP_BENCH_POLICY_MAX_OVERHEAD_PCT (<=0 = report only).

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <random>
#include <string>
#include <vector>

#if defined(__unix__)
#include <sys/wait.h>
#include <unistd.h>
#endif

#include "common/json.h"
#include "common/logging.h"
#include "common/thread_pool.h"
#include "core/merge_policy.h"
#include "core/pareto.h"
#include "core/policy.h"
#include "fault/fault_injector.h"
#include "sim/fleet_driver.h"
#include "sim/metrics.h"
#include "sim/presets.h"
#include "tuning/optimizer.h"
#include "tuning/policy_search.h"

using namespace autocomp;

namespace {

int EnvInt(const char* name, int fallback, int min_value) {
  const char* value = std::getenv(name);
  if (value == nullptr || value[0] == '\0') return fallback;
  const int parsed = std::atoi(value);
  return parsed < min_value ? fallback : parsed;
}

double EnvDouble(const char* name, double fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || value[0] == '\0') return fallback;
  return std::atof(value);
}

const int kDays = EnvInt("AUTOCOMP_BENCH_POLICY_DAYS", 1, 1);
const int kMaxSpecs = EnvInt("AUTOCOMP_BENCH_POLICY_MAX_SPECS", 0, 0);
const int kRunsPerConfig = EnvInt("AUTOCOMP_BENCH_POLICY_RUNS", 3, 1);
const int kTunerIters = EnvInt("AUTOCOMP_BENCH_POLICY_TUNER_ITERS", 48, 1);

/// One workload archetype: a named FleetOptions shape. The four cover
/// the quadrants the paper's fleet mixes: steady batch loads, high-
/// frequency trickle ingestion (the small-file factory), read-dominated
/// serving tables, and a growing fleet with constant onboarding churn.
struct Archetype {
  const char* name;
  double daily_write_fraction;
  double daily_write_size_fraction;
  double daily_reads_per_table;
  int new_tables_per_day;
};

constexpr Archetype kArchetypes[] = {
    {"batch-etl", 0.15, 0.02, 1.0, 2},
    {"trickle-heavy", 0.70, 0.004, 1.0, 2},
    {"scan-heavy", 0.15, 0.02, 4.0, 2},
    {"churn-onboarding", 0.35, 0.01, 1.5, 6},
};
constexpr int kNumArchetypes =
    static_cast<int>(sizeof(kArchetypes) / sizeof(kArchetypes[0]));

sim::FleetSimOptions ArchetypeOptions(const Archetype& archetype,
                                      const core::PolicySpec& spec) {
  sim::FleetSimOptions options;
  options.days = kDays;
  options.seed = 7;
  options.fleet.num_databases = 4;
  options.fleet.tables_per_db = 4;
  options.fleet.seed = 77;
  // Small tables keep a 50-policy x 4-archetype x 2-run sweep in
  // minutes; the file-count dynamics (what the policies act on) keep
  // their shape.
  options.fleet.size_mu = std::log(128.0 * kMiB);
  options.fleet.size_sigma = 1.2;
  options.fleet.daily_write_fraction = archetype.daily_write_fraction;
  options.fleet.daily_write_size_fraction =
      archetype.daily_write_size_fraction;
  options.fleet.daily_reads_per_table = archetype.daily_reads_per_table;
  options.fleet.new_tables_per_day = archetype.new_tables_per_day;
  options.env.namenode.rpc_capacity_per_hour = 2'000;
  options.driver.sample_interval = 4 * kHour;
  options.driver.retention_interval = kDay;
  // Deferred act: compaction executes on the simulated timeline, so its
  // commits/GBHr are recorded as metrics and the movement axis flows
  // through DriverOptions::compaction_movement. Host-wall-clock
  // profiling series stay off — the bit-identity assertion below
  // compares every recorded metric.
  options.driver.deferred_compaction = true;
  options.driver.record_host_timings = false;
  sim::StrategyPreset preset;
  preset.scope = sim::ScopeStrategy::kTable;
  preset.k = 5;
  preset.deferred_act = true;
  preset.policy = spec;
  options.preset = preset;
  return options;
}

/// What one (archetype, policy) replay measures.
struct PointBody {
  double gb_hours = 0;
  double read_latency_s = 0;
  long long events = 0;
  long long commits = 0;
  unsigned long long hash_seq = 0;
  unsigned long long hash_shard = 0;
  int identical = 0;
};

/// Runs the point twice — sequential reference and shard4-pool2 — and
/// compares the merged metrics exactly.
PointBody PointReplay(const Archetype& archetype,
                      const core::PolicySpec& spec) {
  sim::FleetSimOptions seq_options = ArchetypeOptions(archetype, spec);
  seq_options.sharded = false;
  sim::FleetSimulation seq_sim(std::move(seq_options));
  auto seq = seq_sim.Run();
  AUTOCOMP_CHECK(seq.ok()) << spec.ToString() << ": " << seq.status();

  ThreadPool pool(2);
  sim::FleetSimOptions shard_options = ArchetypeOptions(archetype, spec);
  shard_options.sharded = true;
  shard_options.shards = 4;
  shard_options.pool = &pool;
  sim::FleetSimulation shard_sim(std::move(shard_options));
  auto shard = shard_sim.Run();
  AUTOCOMP_CHECK(shard.ok()) << spec.ToString() << ": " << shard.status();

  PointBody out;
  out.gb_hours = sim::SeriesSum(seq->metrics, "compaction_gbhr");
  const Sample reads = seq->metrics.AllObservations("read_latency_s");
  out.read_latency_s = reads.empty() ? 0.0 : reads.Mean();
  out.events = seq->events_executed;
  out.commits = seq->metrics.TotalCount("compaction_commits");
  out.hash_seq = seq->metrics.ContentHash();
  out.hash_shard = shard->metrics.ContentHash();
  std::string why;
  out.identical = seq->metrics.Equals(shard->metrics, &why) &&
                          out.hash_seq == out.hash_shard &&
                          seq->events_executed == shard->events_executed &&
                          seq->total_files == shard->total_files
                      ? 1
                      : 0;
  if (out.identical == 0) {
    std::fprintf(stderr, "policy %s diverged seq vs shard4-pool2: %s\n",
                 spec.ToString().c_str(),
                 why.empty() ? "aggregate totals differ" : why.c_str());
  }
  return out;
}

/// Forks the replay so the parent never accumulates 400 runs of merged
/// recorders (and a wedged replay fails one point, not the sweep).
/// Falls back to in-process where fork is unavailable.
PointBody RunPoint(const Archetype& archetype, const core::PolicySpec& spec) {
  PointBody out;
#if defined(__unix__)
  int fds[2] = {-1, -1};
  if (pipe(fds) == 0) {
    const pid_t pid = fork();
    if (pid == 0) {
      close(fds[0]);
      const PointBody child = PointReplay(archetype, spec);
      char buf[256];
      const int len = std::snprintf(
          buf, sizeof buf, "%.17g %.17g %lld %lld %llu %llu %d\n",
          child.gb_hours, child.read_latency_s, child.events, child.commits,
          child.hash_seq, child.hash_shard, child.identical);
      ssize_t written = 0;
      while (written < len) {
        const ssize_t n = write(fds[1], buf + written, len - written);
        if (n <= 0) _exit(3);
        written += n;
      }
      _exit(0);
    }
    if (pid > 0) {
      close(fds[1]);
      std::string line;
      char buf[256];
      ssize_t n;
      while ((n = read(fds[0], buf, sizeof buf)) > 0) line.append(buf, n);
      close(fds[0]);
      int status = 0;
      AUTOCOMP_CHECK(waitpid(pid, &status, 0) == pid);
      AUTOCOMP_CHECK(WIFEXITED(status) && WEXITSTATUS(status) == 0)
          << "policy point " << spec.ToString() << " child exited abnormally";
      AUTOCOMP_CHECK(std::sscanf(line.c_str(), "%lf %lf %lld %lld %llu %llu %d",
                                 &out.gb_hours, &out.read_latency_s,
                                 &out.events, &out.commits, &out.hash_seq,
                                 &out.hash_shard, &out.identical) == 7)
          << "policy point child wrote: " << line;
      return out;
    }
    close(fds[0]);
    close(fds[1]);
  }
#endif
  return PointReplay(archetype, spec);
}

/// An archetype-shaped arrival trace for the merge-ratio report: run
/// sizes drawn lognormally around that archetype's per-write size, with
/// the draw count fixed so the offline oracle (exponential search)
/// stays tractable.
std::vector<int64_t> ArchetypeArrivals(int archetype_index) {
  const Archetype& archetype = kArchetypes[archetype_index];
  std::mt19937_64 rng(1000003ULL * (archetype_index + 1));
  const double median =
      std::max(1.0 * kMiB, 128.0 * kMiB * archetype.daily_write_size_fraction);
  std::lognormal_distribution<double> size(std::log(median), 0.8);
  std::vector<int64_t> arrivals(14);
  for (int64_t& a : arrivals) {
    a = std::max<int64_t>(1, static_cast<int64_t>(std::llround(size(rng))));
  }
  return arrivals;
}

/// One timed sequential batch-etl replay for the overhead pairs. The
/// policy is non-default so the per-policy plumbing (decide label, the
/// policy-assembled stages) is on the measured path; `armed` adds the
/// enabled-but-empty fault injector whose cost is being budgeted.
struct OverheadRun {
  double ms = 0;
  sim::FleetSimResult result;
};

OverheadRun OverheadReplay(bool armed) {
  auto spec = core::PolicySpec::Parse(
      "trigger=file-count:4;granularity=table;movement=partial;picker=moop");
  AUTOCOMP_CHECK(spec.ok()) << spec.status();
  sim::FleetSimOptions options = ArchetypeOptions(kArchetypes[0], *spec);
  options.sharded = false;
  if (armed) {
    options.env.fault.enabled = true;
    options.env.fault.seed = 0x5eedfa;  // empty profile: nothing to inject
  }
  sim::FleetSimulation simulation(std::move(options));
  const auto start = std::chrono::steady_clock::now();
  auto result = simulation.Run();
  const auto stop = std::chrono::steady_clock::now();
  AUTOCOMP_CHECK(result.ok()) << result.status();
  OverheadRun out;
  out.ms = std::chrono::duration<double, std::milli>(stop - start).count();
  out.result = *std::move(result);
  return out;
}

}  // namespace

int main() {
  std::setvbuf(stdout, nullptr, _IOLBF, 0);  // live progress when piped

  std::vector<core::PolicySpec> specs = core::EnumerateValidSpecs();
  if (kMaxSpecs > 0 && static_cast<int>(specs.size()) > kMaxSpecs) {
    std::printf("capping sweep to first %d of %zu specs "
                "(AUTOCOMP_BENCH_POLICY_MAX_SPECS)\n",
                kMaxSpecs, specs.size());
    specs.resize(kMaxSpecs);
  }
  std::printf("policy sweep: %zu specs x %d archetypes, %d day(s), each "
              "point seq + shard4-pool2...\n",
              specs.size(), kNumArchetypes, kDays);

  std::vector<core::PolicyOutcome> outcomes;
  std::vector<PointBody> bodies;
  bool all_identical = true;
  for (int a = 0; a < kNumArchetypes; ++a) {
    const Archetype& archetype = kArchetypes[a];
    int64_t commits = 0;
    for (const core::PolicySpec& spec : specs) {
      const PointBody body = RunPoint(archetype, spec);
      AUTOCOMP_CHECK(body.identical == 1)
          << "NFR2 violation: " << archetype.name << " / " << spec.ToString()
          << " is not bit-identical seq vs shard4-pool2";
      all_identical = all_identical && body.identical == 1;
      commits += body.commits;
      core::PolicyOutcome outcome;
      outcome.spec = spec.ToString();
      outcome.archetype = archetype.name;
      outcome.gb_hours = body.gb_hours;
      outcome.read_latency_s = body.read_latency_s;
      outcomes.push_back(std::move(outcome));
      bodies.push_back(body);
    }
    std::printf("  %s: %zu points replayed (%lld compaction commits across "
                "the sweep)\n",
                archetype.name, specs.size(),
                static_cast<long long>(commits));
    AUTOCOMP_CHECK(commits > 0)
        << "archetype " << archetype.name
        << " never compacted under any policy — the sweep is vacuous";
  }
  core::MarkPolicyFrontier(&outcomes);

  JsonValue archetypes_json = JsonValue::Array();
  for (int a = 0; a < kNumArchetypes; ++a) {
    const Archetype& archetype = kArchetypes[a];
    sim::TablePrinter table(
        {"policy", "GBHr", "read s", "commits", "frontier"});
    JsonValue points = JsonValue::Array();
    int frontier_size = 0;
    for (size_t i = 0; i < specs.size(); ++i) {
      const size_t index = a * specs.size() + i;
      const core::PolicyOutcome& outcome = outcomes[index];
      const PointBody& body = bodies[index];
      if (outcome.on_frontier) ++frontier_size;
      table.AddRow({outcome.spec, sim::Fmt(outcome.gb_hours, 3),
                    sim::Fmt(outcome.read_latency_s, 4),
                    std::to_string(body.commits),
                    outcome.on_frontier ? "*" : ""});
      JsonValue point = JsonValue::Object();
      point.Set("spec", outcome.spec);
      point.Set("gb_hours", outcome.gb_hours);
      point.Set("read_latency_s", outcome.read_latency_s);
      point.Set("on_frontier", outcome.on_frontier);
      point.Set("commits", static_cast<int64_t>(body.commits));
      point.Set("events", static_cast<int64_t>(body.events));
      point.Set("metrics_hash", std::to_string(body.hash_seq));
      point.Set("identical_seq_vs_shard", body.identical == 1);
      points.Append(std::move(point));
    }
    std::printf("\n[%s] Pareto frontier (%d of %zu points):\n%s",
                archetype.name, frontier_size, specs.size(),
                table.ToString().c_str());

    // Merge competitive ratios on this archetype's arrival shape.
    const std::vector<int64_t> arrivals = ArchetypeArrivals(a);
    const size_t merge_k = 4;
    JsonValue ratios = JsonValue::Array();
    sim::TablePrinter ratio_table(
        {"merge policy", "online", "offline", "ratio"});
    for (const auto& policy : core::BuiltinMergePolicies()) {
      const core::MergeCompetitiveRatio r =
          core::CompetitiveRatioFor(arrivals, merge_k, *policy);
      AUTOCOMP_CHECK(r.ratio >= 1.0 && std::isfinite(r.ratio))
          << policy->name() << " on " << archetype.name;
      ratio_table.AddRow({policy->name(), std::to_string(r.online_cost),
                          std::to_string(r.offline_cost),
                          sim::Fmt(r.ratio, 3)});
      JsonValue row = JsonValue::Object();
      row.Set("policy", policy->name());
      row.Set("online_cost", r.online_cost);
      row.Set("offline_cost", r.offline_cost);
      row.Set("ratio", r.ratio);
      ratios.Append(std::move(row));
    }
    std::printf("[%s] merge competitive ratios (k=%zu, %zu arrivals):\n%s",
                archetype.name, merge_k, arrivals.size(),
                ratio_table.ToString().c_str());

    JsonValue entry = JsonValue::Object();
    entry.Set("name", std::string(archetype.name));
    entry.Set("daily_write_fraction", archetype.daily_write_fraction);
    entry.Set("daily_write_size_fraction",
              archetype.daily_write_size_fraction);
    entry.Set("daily_reads_per_table", archetype.daily_reads_per_table);
    entry.Set("new_tables_per_day", archetype.new_tables_per_day);
    entry.Set("frontier_size", frontier_size);
    entry.Set("points", std::move(points));
    entry.Set("merge_k", static_cast<int64_t>(merge_k));
    entry.Set("merge_ratios", std::move(ratios));
    archetypes_json.Append(std::move(entry));
  }

  // --- Armed-overhead parity: enabled-but-empty injector on the
  // policy-assembled pipeline, pair-interleaved against its own unarmed
  // baseline (host drift exceeds the 2% budget on minute scales).
  std::printf("\narmed-overhead parity (non-default policy, armed empty "
              "injector)...\n");
  std::vector<double> pair_ratios;
  const int pairs = std::max(kRunsPerConfig, 5);
  OverheadRun armed_last;
  OverheadRun base_last;
  for (int run = -1; run < pairs; ++run) {
    const bool armed_first = run % 2 == 0;
    OverheadRun first = OverheadReplay(armed_first);
    OverheadRun second = OverheadReplay(!armed_first);
    OverheadRun& base = armed_first ? second : first;
    OverheadRun& armed = armed_first ? first : second;
    if (run < 0) {
      std::printf("  warmup: armed %.1f ms, base %.1f ms\n", armed.ms,
                  base.ms);
      continue;
    }
    if (base.ms > 0) pair_ratios.push_back(armed.ms / base.ms);
    std::printf("  pair %d/%d: armed %.1f ms, base %.1f ms\n", run + 1, pairs,
                armed.ms, base.ms);
    armed_last = std::move(armed);
    base_last = std::move(base);
  }
  std::string why;
  const bool parity =
      base_last.result.metrics.Equals(armed_last.result.metrics, &why) &&
      base_last.result.metrics.ContentHash() ==
          armed_last.result.metrics.ContentHash() &&
      armed_last.result.faults_injected == 0;
  AUTOCOMP_CHECK(parity)
      << "armed-but-empty injector perturbed the policy pipeline: "
      << (why.empty() ? "hash/fault totals differ" : why);
  std::sort(pair_ratios.begin(), pair_ratios.end());
  double armed_overhead_pct = 0;
  if (!pair_ratios.empty()) {
    const size_t n = pair_ratios.size();
    const double median =
        n % 2 == 1 ? pair_ratios[n / 2]
                   : (pair_ratios[n / 2 - 1] + pair_ratios[n / 2]) / 2;
    armed_overhead_pct = (median - 1.0) * 100.0;
  }
  constexpr double kArmedOverheadTargetPct = 2.0;
  std::printf("armed overhead: %.2f%% (target < %.0f%%), parity: %s\n",
              armed_overhead_pct, kArmedOverheadTargetPct,
              parity ? "bit-identical" : "DIVERGED");

  // --- §6.3 shape search over the measured batch-etl outcomes. The
  // objective scalarizes both axes, normalized by the sweep's maxima so
  // neither dominates on units. No fresh simulation runs: the tuner
  // evaluates against the sweep's memo, which is the point — shape
  // search is cheap once the design space is priced.
  double max_gbhr = 0;
  double max_latency = 0;
  for (size_t i = 0; i < specs.size(); ++i) {
    max_gbhr = std::max(max_gbhr, outcomes[i].gb_hours);
    max_latency = std::max(max_latency, outcomes[i].read_latency_s);
  }
  std::map<std::string, double> measured;
  for (size_t i = 0; i < specs.size(); ++i) {
    const double g = max_gbhr > 0 ? outcomes[i].gb_hours / max_gbhr : 0;
    const double l =
        max_latency > 0 ? outcomes[i].read_latency_s / max_latency : 0;
    measured[outcomes[i].spec] = g + l;
  }
  tuning::CfoOptimizer cfo(tuning::PolicySpecCodec::Dims(), /*seed=*/7);
  tuning::PolicyTuner tuner(
      &cfo, [&](const core::PolicySpec& suggested) -> Result<double> {
        core::PolicySpec pinned = suggested;
        pinned.granularity = core::GranularityAxis::kTable;
        const auto it = measured.find(pinned.ToString());
        // Outside the (possibly capped) sweep: a bad but finite score,
        // so the search keeps moving instead of failing.
        if (it == measured.end()) return 4.0;
        return it->second;
      });
  auto trials = tuner.Run(kTunerIters);
  AUTOCOMP_CHECK(trials.ok()) << trials.status();
  auto best = tuner.Best();
  AUTOCOMP_CHECK(best.ok()) << best.status();
  std::printf("tuner (%d iters, %lld memo hits): best shape %s "
              "(objective %.4f)\n",
              kTunerIters, static_cast<long long>(tuner.memo_hits()),
              best->spec.ToString().c_str(), best->objective);

  JsonValue tuner_json = JsonValue::Object();
  tuner_json.Set("optimizer", std::string("cfo"));
  tuner_json.Set("iterations", kTunerIters);
  tuner_json.Set("memo_hits", tuner.memo_hits());
  tuner_json.Set("best_spec", best->spec.ToString());
  tuner_json.Set("best_objective", best->objective);
  tuner_json.Set("archetype", std::string(kArchetypes[0].name));

  JsonValue doc = JsonValue::Object();
  doc.Set("days", kDays);
  doc.Set("policy_points", static_cast<int64_t>(specs.size()));
  doc.Set("archetype_count", kNumArchetypes);
  doc.Set("all_identical_seq_vs_shard", all_identical);
  doc.Set("archetypes", std::move(archetypes_json));
  doc.Set("armed_overhead_pct", armed_overhead_pct);
  doc.Set("armed_overhead_target_pct", kArmedOverheadTargetPct);
  doc.Set("armed_parity", parity);
  doc.Set("tuner", std::move(tuner_json));
  std::FILE* out = std::fopen("BENCH_policy.json", "w");
  AUTOCOMP_CHECK(out != nullptr);
  const std::string dumped = doc.Dump();
  std::fwrite(dumped.data(), 1, dumped.size(), out);
  std::fclose(out);
  std::printf("wrote BENCH_policy.json\n");

  // --- Perf gate (CI perf-smoke; report-only unless set).
  const double max_overhead_pct =
      EnvDouble("AUTOCOMP_BENCH_POLICY_MAX_OVERHEAD_PCT", 0);
  int gate_failures = 0;
  if (max_overhead_pct > 0 && armed_overhead_pct > max_overhead_pct) {
    std::printf(
        "PERF GATE FAIL: policy armed overhead %.2f%% above budget %.2f%%\n",
        armed_overhead_pct, max_overhead_pct);
    ++gate_failures;
  }
  if (max_overhead_pct > 0) {
    std::printf("perf gates: %s (policy overhead budget %.2f%%)\n",
                gate_failures == 0 ? "PASS" : "FAIL", max_overhead_pct);
  }
  return gate_failures == 0 ? 0 : 1;
}
