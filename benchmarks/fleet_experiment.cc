#include "benchmarks/fleet_experiment.h"

#include <algorithm>
#include <map>

#include "common/logging.h"
#include "core/observe.h"
#include "core/ranking.h"
#include "core/scheduler.h"
#include "core/traits.h"

namespace autocomp::bench {

namespace {

SizeHistogram FleetHistogram(catalog::Catalog* catalog) {
  SizeHistogram histogram = SizeHistogram::ForFileSizes();
  for (const std::string& name : catalog->ListAllTables()) {
    auto meta = catalog->LoadTable(name);
    if (!meta.ok()) continue;
    (*meta)->ForEachLiveFile(
        [&](const lst::DataFile& f) { histogram.Add(f.file_size_bytes); });
  }
  return histogram;
}

/// Chooses the `k` tables with the most small files right now (how the
/// fixed manual set was picked, §7: "chosen because of their
/// susceptibility to high fragmentation").
std::vector<std::string> PickManualSet(catalog::Catalog* catalog,
                                       const Clock* clock, int64_t k,
                                       ThreadPool* thread_pool) {
  core::TableScopeGenerator generator;
  core::StatsCollector collector(catalog, nullptr, clock);
  auto pool = generator.Generate(catalog, thread_pool);
  AUTOCOMP_CHECK(pool.ok());
  auto observed = collector.CollectAll(*pool, thread_pool);
  AUTOCOMP_CHECK(observed.ok());
  auto traited = core::ComputeTraits(
      *observed, {std::make_shared<core::FileCountReductionTrait>()},
      thread_pool);
  auto ranked = core::SingleTraitRanker("file_count_reduction").Rank(traited);
  std::vector<std::string> out;
  for (const auto& sc : ranked) {
    if (static_cast<int64_t>(out.size()) >= k) break;
    out.push_back(sc.candidate().table);
  }
  return out;
}

}  // namespace

std::vector<FleetDayStats> RunFleetExperiment(
    const std::vector<FleetPhase>& phases,
    std::vector<std::pair<std::string, SizeHistogram>>* histograms_out,
    workload::FleetOptions fleet_options, FleetRunOptions run_options) {
  sim::SimEnvironment env;
  workload::FleetWorkload fleet(fleet_options);
  AUTOCOMP_CHECK(fleet
                     .Setup(&env.catalog(), &env.query_engine(),
                            &env.control_plane(), 0)
                     .ok());

  sim::MetricsRecorder metrics;
  sim::DriverOptions driver_options;
  driver_options.sample_interval = 4 * kHour;
  driver_options.retention_interval = kDay;
  sim::EventDriver driver(&env, &metrics, driver_options);

  std::vector<FleetDayStats> out;
  int day = 0;
  int64_t open_calls_prev = 0;

  for (const FleetPhase& phase : phases) {
    // Manual phase: fix the table set once, at phase start.
    std::vector<std::string> manual_set;
    if (phase.mode == FleetPhase::Mode::kManualFixed) {
      manual_set = PickManualSet(&env.catalog(), &env.clock(), phase.k,
                                 run_options.pool);
    }
    // Auto phases: one MOOP service per phase.
    std::unique_ptr<core::AutoCompService> service;
    if (phase.mode == FleetPhase::Mode::kAutoFixedK ||
        phase.mode == FleetPhase::Mode::kAutoBudget) {
      sim::StrategyPreset preset;
      preset.scope = sim::ScopeStrategy::kTable;
      preset.k = phase.k;
      if (phase.mode == FleetPhase::Mode::kAutoBudget) {
        preset.budget_gb_hours = phase.budget_gb_hours;
      }
      preset.trigger_interval = kDay;   // daily, like the deployment
      preset.first_trigger = 0;         // RunNow is called explicitly
      preset.pool = run_options.pool;
      preset.cache_stats = run_options.cache_stats;
      service = sim::MakeMoopService(&env, preset);
    }

    for (int d = 0; d < phase.days; ++d, ++day) {
      AUTOCOMP_CHECK(fleet
                         .OnboardNewTables(&env.catalog(), &env.query_engine(),
                                           day, env.clock().Now())
                         .ok());
      // Business-hours workload.
      const double query_gbhr_before = env.query_cluster().total_gb_hours();
      const int64_t files_scanned_before =
          metrics.TotalCount("files_scanned");
      double day_read_seconds = 0;
      std::vector<workload::QueryEvent> events = fleet.EventsForDay(day);
      // Reads run directly (not via driver.Execute) so the per-day
      // files-scanned counter can be tracked.
      for (const workload::QueryEvent& e : events) {
        AUTOCOMP_CHECK(driver.AdvanceTo(e.time).ok());
        if (!e.is_write) {
          auto result = env.query_engine().ExecuteRead(
              e.table, e.read_partition, env.clock().Now());
          if (result.ok()) {
            metrics.Increment("files_scanned", env.clock().Now(),
                              result->files_scanned);
            metrics.Observe("read_latency_s", env.clock().Now(),
                            result->total_seconds);
            day_read_seconds += result->total_seconds;
          }
        } else {
          AUTOCOMP_CHECK(driver.Execute(e).ok());
        }
      }
      // Nightly compaction at 22:00.
      const SimTime night = static_cast<SimTime>(day) * kDay + 22 * kHour;
      AUTOCOMP_CHECK(driver.AdvanceTo(night).ok());

      FleetDayStats stats;
      stats.day = day;
      stats.phase = phase.label;
      if (phase.mode == FleetPhase::Mode::kManualFixed) {
        for (const std::string& table : manual_set) {
          engine::CompactionRequest request;
          request.table = table;
          auto result =
              env.compaction_runner().Run(request, env.clock().Now());
          if (!result.ok() || !result->attempted) continue;
          if (result->committed) {
            ++stats.tables_compacted;
            stats.files_reduced +=
                result->files_rewritten - result->files_produced;
            (void)env.control_plane().RunRetentionFor(table, SimTime{0});
          }
          stats.gb_hours += result->gb_hours;
        }
      } else if (service != nullptr) {
        auto report = service->RunNow();
        AUTOCOMP_CHECK(report.ok()) << report.status();
        stats.tables_compacted = report->committed_count();
        stats.files_reduced = report->files_reduced();
        stats.gb_hours = report->actual_gb_hours();
      }

      // End-of-day accounting.
      AUTOCOMP_CHECK(
          driver.AdvanceTo(static_cast<SimTime>(day + 1) * kDay).ok());
      stats.fleet_file_count = env.TotalFileCount();
      const int64_t open_calls_now = env.dfs().AggregateStats().open_calls;
      stats.open_calls = open_calls_now - open_calls_prev;
      open_calls_prev = open_calls_now;
      stats.files_scanned =
          metrics.TotalCount("files_scanned") - files_scanned_before;
      stats.query_seconds = day_read_seconds;
      stats.query_gb_hours =
          env.query_cluster().total_gb_hours() - query_gbhr_before;
      out.push_back(std::move(stats));
    }

    if (histograms_out != nullptr) {
      histograms_out->emplace_back(phase.label,
                                   FleetHistogram(&env.catalog()));
    }
  }

  // Fill pct_small from periodic histograms (cheap enough at day ends).
  // Recorded only at phase boundaries above; per-day variant would be
  // costly, so derive the final per-day value lazily: here we approximate
  // by the phase-end histogram's value for every day of that phase.
  if (histograms_out != nullptr) {
    size_t phase_index = 0;
    int phase_end = phases.empty() ? 0 : phases[0].days;
    for (FleetDayStats& stats : out) {
      while (stats.day >= phase_end && phase_index + 1 < phases.size()) {
        ++phase_index;
        phase_end += phases[phase_index].days;
      }
      stats.pct_small =
          100.0 * (*histograms_out)[phase_index].second.FractionBelow(
                      128 * kMiB);
    }
  }
  return out;
}

}  // namespace autocomp::bench
