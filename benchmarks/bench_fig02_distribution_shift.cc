/// \file bench_fig02_distribution_shift.cc
/// \brief Reproduces Figure 2: "File size distribution for
/// OpenHouse-managed Iceberg tables, shown before and after compaction".
///
/// Paper shape to match: before compaction 83% of files are <128MB;
/// manual compaction drops that to ~62% and then plateaus (diminishing
/// returns, §7); rolling out AutoComp accelerates the shift toward the
/// 512MB target.

#include <cstdio>

#include "benchmarks/fleet_experiment.h"

using namespace autocomp;

int main() {
  std::printf("=== Figure 2: fleet file-size distribution shift ===\n");
  std::vector<bench::FleetPhase> phases = {
      {"no-compaction", 6, bench::FleetPhase::Mode::kNone, 0, 0},
      {"manual-100 (period 1)", 6, bench::FleetPhase::Mode::kManualFixed, 100,
       0},
      {"manual-100 (period 2)", 6, bench::FleetPhase::Mode::kManualFixed, 100,
       0},
      {"autocomp-10", 6, bench::FleetPhase::Mode::kAutoFixedK, 10, 0},
      {"autocomp-budget", 6, bench::FleetPhase::Mode::kAutoBudget, 0, 400},
  };
  std::vector<std::pair<std::string, SizeHistogram>> histograms;
  const auto days = bench::RunFleetExperiment(phases, &histograms);

  for (const auto& [label, histogram] : histograms) {
    std::printf("--- after phase: %s ---\n%s", label.c_str(),
                histogram.ToAsciiChart().c_str());
    std::printf("files: %lld, %%<128MiB: %.1f, %%<512MiB: %.1f\n\n",
                static_cast<long long>(histogram.total_count()),
                100 * histogram.FractionBelow(128 * kMiB),
                100 * histogram.FractionBelow(512 * kMiB));
  }

  sim::TablePrinter table({"phase", "% files < 128MiB at phase end"});
  for (const auto& [label, histogram] : histograms) {
    table.AddRow({label,
                  sim::Fmt(100 * histogram.FractionBelow(128 * kMiB), 1)});
  }
  std::printf("%s", table.ToString().c_str());
  std::printf(
      "\nPaper: 83%% small before; 62%% after manual; manual plateaus "
      "between its two periods; AutoComp keeps shifting the distribution.\n");
  return 0;
}
