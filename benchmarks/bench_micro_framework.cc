/// \file bench_micro_framework.cc
/// \brief google-benchmark micro-suite for AutoComp's decision framework:
/// candidate generation, trait computation, MOOP ranking, selection, and
/// rewrite bin-packing. These bound the control-plane overhead of running
/// AutoComp over large fleets (21K-100K tables, §2).

#include <benchmark/benchmark.h>

#include "core/filters.h"
#include "core/observe.h"
#include "core/ranking.h"
#include "core/traits.h"
#include "format/binpack.h"
#include "common/random.h"
#include "common/units.h"

namespace autocomp {
namespace {

std::vector<core::ObservedCandidate> MakePool(int64_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<core::ObservedCandidate> pool;
  pool.reserve(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    core::ObservedCandidate oc;
    oc.candidate.table = "db.t" + std::to_string(i);
    oc.stats.target_file_size_bytes = 512 * kMiB;
    const int files = static_cast<int>(rng.UniformInt(4, 400));
    for (int f = 0; f < files; ++f) {
      const int64_t size = static_cast<int64_t>(
          rng.LogNormal(std::log(16.0 * kMiB), 1.2));
      oc.stats.file_sizes.push_back(size);
      oc.stats.total_bytes += size;
      oc.stats.file_sizes_by_partition["p=" + std::to_string(f % 16)]
          .push_back(size);
    }
    oc.stats.file_count = files;
    pool.push_back(std::move(oc));
  }
  return pool;
}

void BM_TraitComputation(benchmark::State& state) {
  const auto pool = MakePool(state.range(0), 1);
  std::vector<std::shared_ptr<const core::Trait>> traits = {
      std::make_shared<core::FileCountReductionTrait>(),
      std::make_shared<core::FileEntropyTrait>(),
      std::make_shared<core::ComputeCostTrait>(192, 48.0 * kGiB)};
  for (auto _ : state) {
    auto result = core::ComputeTraits(pool, traits);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_TraitComputation)->Arg(100)->Arg(1000)->Arg(10000);

void BM_PartitionAwareTrait(benchmark::State& state) {
  const auto pool = MakePool(state.range(0), 2);
  core::PartitionAwareFileCountReductionTrait trait;
  for (auto _ : state) {
    double total = 0;
    for (const auto& oc : pool) total += trait.Compute(oc);
    benchmark::DoNotOptimize(total);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_PartitionAwareTrait)->Arg(1000);

void BM_MoopRanking(benchmark::State& state) {
  const auto pool = MakePool(state.range(0), 3);
  std::vector<std::shared_ptr<const core::Trait>> traits = {
      std::make_shared<core::FileCountReductionTrait>(),
      std::make_shared<core::ComputeCostTrait>(192, 48.0 * kGiB)};
  const auto traited = core::ComputeTraits(pool, traits);
  const core::MoopRanker ranker = core::MoopRanker::PaperDefault();
  for (auto _ : state) {
    auto ranked = ranker.Rank(traited);
    benchmark::DoNotOptimize(ranked);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_MoopRanking)->Arg(100)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_BudgetedSelection(benchmark::State& state) {
  const auto pool = MakePool(state.range(0), 4);
  std::vector<std::shared_ptr<const core::Trait>> traits = {
      std::make_shared<core::FileCountReductionTrait>(),
      std::make_shared<core::ComputeCostTrait>(192, 48.0 * kGiB)};
  const auto ranked =
      core::MoopRanker::PaperDefault().Rank(core::ComputeTraits(pool, traits));
  const core::BudgetedSelector selector(500.0, "compute_cost_gbhr");
  for (auto _ : state) {
    auto selected = selector.Select(ranked);
    benchmark::DoNotOptimize(selected);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_BudgetedSelection)->Arg(1000)->Arg(10000);

void BM_KnapsackSelection(benchmark::State& state) {
  const auto pool = MakePool(state.range(0), 5);
  std::vector<std::shared_ptr<const core::Trait>> traits = {
      std::make_shared<core::FileCountReductionTrait>(),
      std::make_shared<core::ComputeCostTrait>(192, 48.0 * kGiB)};
  const auto ranked =
      core::MoopRanker::PaperDefault().Rank(core::ComputeTraits(pool, traits));
  const core::KnapsackSelector selector(500.0, "compute_cost_gbhr", 500);
  for (auto _ : state) {
    auto selected = selector.Select(ranked);
    benchmark::DoNotOptimize(selected);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_KnapsackSelection)->Arg(1000);

void BM_FilterChain(benchmark::State& state) {
  const auto pool = MakePool(state.range(0), 6);
  std::vector<std::shared_ptr<const core::CandidateFilter>> filters = {
      std::make_shared<core::MinSmallFilesFilter>(8),
      std::make_shared<core::MinSizeFilter>(64 * kMiB),
      std::make_shared<core::RecentCreationFilter>(kHour)};
  for (auto _ : state) {
    auto kept = core::ApplyFilters(pool, filters, 10 * kHour);
    benchmark::DoNotOptimize(kept);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_FilterChain)->Arg(10000);

void BM_BinPackFfd(benchmark::State& state) {
  Rng rng(7);
  std::vector<int64_t> sizes;
  for (int64_t i = 0; i < state.range(0); ++i) {
    sizes.push_back(rng.UniformInt(1 * kMiB, 256 * kMiB));
  }
  for (auto _ : state) {
    auto bins = format::FirstFitDecreasing(sizes, 512 * kMiB);
    benchmark::DoNotOptimize(bins);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_BinPackFfd)->Arg(100)->Arg(1000)->Arg(10000);

}  // namespace
}  // namespace autocomp

BENCHMARK_MAIN();
