/// \file bench_fig09_autotuning.cc
/// \brief Reproduces Figure 9: "Comparison of compaction decisions and
/// results" — auto-tuning optimize-after-write trigger thresholds with a
/// FLAML/CFO-style optimizer across three LST-Bench-style workloads
/// (sim::LstBenchRunner).
///
/// Paper shapes to match:
///  (a) TPC-DS WP1, small-file-count trigger: compaction helps (up to ~2×
///      on fragmented tables); the tuner converges to a mid threshold.
///  (b) TPC-H: the default (no auto-compaction) is best — compaction
///      rewrites entire non-partitioned tables and the data-modification
///      phase dominates.
///  (c) TPC-DS WP1, file-entropy trigger: comparable to (a).
///  (d) TPC-DS WP3 (separate read/write clusters): consistent benefit.

#include <cstdio>

#include "common/logging.h"
#include "sim/lstbench.h"
#include "sim/metrics.h"
#include "tuning/optimizer.h"

using namespace autocomp;

namespace {

void TuneScenario(const char* title, sim::LstBenchWorkload workload,
                  const std::string& trait_name, double lo, double hi) {
  sim::LstBenchConfig config;
  config.workload = workload;
  const sim::LstBenchRunner runner(config);

  auto baseline = runner.RunDefault();
  AUTOCOMP_CHECK(baseline.ok()) << baseline.status();
  std::printf("--- %s ---\n", title);
  std::printf("default (no auto-compaction): %.0f s\n", *baseline);

  tuning::CfoOptimizer optimizer({{trait_name, lo, hi, /*log_scale=*/true}},
                                 21);
  tuning::Tuner tuner(&optimizer,
                      [&](const tuning::ParamVector& p) -> Result<double> {
                        return runner.Run(trait_name, p[0]);
                      });
  auto trials = tuner.Run(12);
  AUTOCOMP_CHECK(trials.ok()) << trials.status();

  sim::TablePrinter table({"iter", "threshold", "duration (s)", "vs default"});
  for (size_t i = 0; i < trials->size(); ++i) {
    const tuning::Trial& t = (*trials)[i];
    table.AddRow({std::to_string(i + 1), sim::Fmt(t.params[0], 3),
                  sim::Fmt(t.objective, 0),
                  sim::Fmt(t.objective / *baseline, 2) + "x"});
  }
  std::printf("%s", table.ToString().c_str());
  auto best = tuner.Best();
  std::printf("best tuned: %.0f s (%.2fx of default)\n\n", best->objective,
              best->objective / *baseline);
}

}  // namespace

int main() {
  std::printf("=== Figure 9: auto-tuning compaction triggers ===\n\n");
  TuneScenario("(a) TPC-DS WP1, small-file-count trigger",
               sim::LstBenchWorkload::kWp1, "file_count_reduction", 1, 5000);
  TuneScenario("(b) TPC-H, small-file-count trigger",
               sim::LstBenchWorkload::kTpchLike, "file_count_reduction", 1,
               5000);
  TuneScenario("(c) TPC-DS WP1, file-entropy trigger",
               sim::LstBenchWorkload::kWp1, "file_entropy_total", 1, 5000);
  TuneScenario("(d) TPC-DS WP3, small-file-count trigger",
               sim::LstBenchWorkload::kWp3, "file_count_reduction", 1, 5000);
  return 0;
}
