/// \file bench_fig08_query_latency.cc
/// \brief Reproduces Figure 8: "Impact of compaction on query latency" —
/// hourly candlesticks (min / p25 / median / p75 / max) for read-only and
/// read-write queries under each strategy.
///
/// Paper shape to match: hour 1 is similar everywhere; from hour 2 on,
/// compaction improves read latency (fastest under the aggressive
/// Table-10), variability shrinks, and the NoComp run overshoots the
/// 5-hour window (extra ~25 minutes of queueing + execution).

#include <cstdio>

#include "benchmarks/cab_experiment.h"
#include "sim/metrics.h"

using namespace autocomp;

namespace {

void PrintCandles(
    const char* title,
    const std::vector<bench::CabRunResult>& runs,
    std::vector<std::pair<SimTime, QuantileSummary>>
        bench::CabRunResult::*series) {
  std::printf("--- %s (per-hour candlesticks, seconds) ---\n", title);
  sim::TablePrinter table(
      {"strategy", "hour", "min", "p25", "median", "p75", "max", "n"});
  for (const bench::CabRunResult& run : runs) {
    for (const auto& [hour, q] : run.*series) {
      table.AddRow({run.label, std::to_string(hour / kHour),
                    sim::Fmt(q.min, 1), sim::Fmt(q.p25, 1),
                    sim::Fmt(q.median, 1), sim::Fmt(q.p75, 1),
                    sim::Fmt(q.max, 1), std::to_string(q.count)});
    }
  }
  std::printf("%s\n", table.ToString().c_str());
}

}  // namespace

int main() {
  std::printf("=== Figure 8: impact of compaction on query latency ===\n");
  std::vector<bench::CabRunResult> runs;
  for (const bench::CabStrategy& strategy : bench::PaperStrategies()) {
    runs.push_back(bench::RunCabExperiment(strategy));
  }
  PrintCandles("read-only queries", runs, &bench::CabRunResult::read_latency);
  PrintCandles("read-write queries", runs,
               &bench::CabRunResult::write_latency);

  std::printf("--- end-to-end workload time (the NoComp overshoot) ---\n");
  sim::TablePrinter table({"strategy", "total read h", "total write h"});
  for (const bench::CabRunResult& run : runs) {
    table.AddRow({run.label, sim::Fmt(run.total_read_seconds / 3600.0, 2),
                  sim::Fmt(run.total_write_seconds / 3600.0, 2)});
  }
  std::printf("%s\n", table.ToString().c_str());
  return 0;
}
