/// \file bench_ablation.cc
/// \brief Ablations for the design choices called out in DESIGN.md §5:
///  1. greedy budget fill vs exact knapsack selection (§4.3's "reasonable
///     greedy heuristic"),
///  2. strict table-level vs partition-aware rewrite validation (§4.4 /
///     §8 "conflict filtering"),
///  3. serial vs table-parallel act-phase scheduling.

#include <cstdio>

#include "benchmarks/cab_experiment.h"
#include "common/logging.h"
#include "common/random.h"
#include "core/observe.h"
#include "core/ranking.h"
#include "core/scheduler.h"
#include "core/traits.h"
#include "sim/environment.h"
#include "sim/metrics.h"
#include "sim/presets.h"
#include "workload/tpch.h"

using namespace autocomp;

namespace {

// ------------------------------------------------- 1. greedy vs knapsack

void AblateSelector() {
  std::printf("--- ablation 1: greedy budget fill vs exact knapsack ---\n");
  Rng rng(5);
  sim::TablePrinter table({"budget", "greedy score", "knapsack score",
                           "greedy k", "knapsack k", "gap %"});
  for (double budget : {50.0, 150.0, 400.0}) {
    // Realistic pool: compaction benefit and cost are strongly correlated
    // (both scale with the candidate's small-file volume), ranked with
    // the paper's MOOP weights.
    std::vector<core::TraitedCandidate> pool;
    for (int i = 0; i < 200; ++i) {
      core::TraitedCandidate tc;
      tc.observed.candidate.table = "db.t" + std::to_string(i);
      const double small_gib = rng.LogNormal(std::log(2.0), 1.0);
      const double files = small_gib * rng.Uniform(40, 120);
      tc.traits["file_count_reduction"] = files;
      tc.traits["compute_cost_gbhr"] =
          192.0 * small_gib / 48.0;  // §4.2 formula at 48GiB/h
      pool.push_back(std::move(tc));
    }
    const auto ranked = core::MoopRanker::PaperDefault().Rank(pool);
    const auto greedy =
        core::BudgetedSelector(budget, "compute_cost_gbhr").Select(ranked);
    const auto knapsack =
        core::KnapsackSelector(budget, "compute_cost_gbhr", 2000)
            .Select(ranked);
    auto total = [](const std::vector<core::ScoredCandidate>& v) {
      double s = 0;
      for (const auto& sc : v) s += sc.score;
      return s;
    };
    const double g = total(greedy);
    const double k = total(knapsack);
    table.AddRow({sim::Fmt(budget, 0), sim::Fmt(g, 2), sim::Fmt(k, 2),
                  std::to_string(greedy.size()),
                  std::to_string(knapsack.size()),
                  sim::Fmt(100.0 * (k - g) / std::max(1e-9, k), 1)});
  }
  std::printf("%s", table.ToString().c_str());
  std::printf(
      "With realistic benefit/cost correlation the greedy fill tracks the\n"
      "optimum within ~5-20%% while being deterministic and trivially\n"
      "explainable (NFR2) — the trade the paper's production deployment\n"
      "makes; the knapsack prefers many small tasks for the same budget.\n\n");
}

// ------------------------------------- 2. strict vs partition-aware mode

void AblateValidation() {
  std::printf("--- ablation 2: rewrite conflict validation mode ---\n");
  sim::TablePrinter table({"validation", "committed", "conflicts",
                           "conflict rate %"});
  for (lst::ValidationMode mode : {lst::ValidationMode::kStrictTableLevel,
                                   lst::ValidationMode::kPartitionAware}) {
    sim::SimEnvironment env;
    AUTOCOMP_CHECK(workload::SetupTpchDatabase(
                       &env.catalog(), &env.query_engine(), "db", 16 * kGiB,
                       engine::UntunedUserJobProfile(), 0)
                       .ok());
    // Two interleaved partition-scope rewrites of the same table: under
    // strict validation the second of any overlapping pair conflicts even
    // though the partitions are disjoint (the Iceberg v1.2.0 quirk).
    auto meta = env.catalog().LoadTable("db.lineitem");
    const auto partitions = (*meta)->LivePartitions();
    int committed = 0, conflicts = 0;
    for (size_t i = 0; i + 1 < partitions.size() && i < 40; i += 2) {
      engine::CompactionRequest a, b;
      a.table = b.table = "db.lineitem";
      a.partition = partitions[i];
      b.partition = partitions[i + 1];
      a.validation_mode = b.validation_mode = mode;
      auto pending_a =
          env.compaction_runner().Prepare(a, env.clock().Now());
      auto pending_b =
          env.compaction_runner().Prepare(b, env.clock().Now());
      AUTOCOMP_CHECK(pending_a.ok() && pending_b.ok());
      for (auto* pending : {&pending_a, &pending_b}) {
        if (!(*pending)->result.attempted) continue;
        auto result =
            env.compaction_runner().Finalize(std::move(*pending).value());
        if (result.committed) ++committed;
        if (result.conflict) ++conflicts;
      }
      env.clock().Advance(kMinute);
    }
    table.AddRow({mode == lst::ValidationMode::kStrictTableLevel
                      ? "strict table-level (Iceberg v1.2.0)"
                      : "partition-aware (conflict filtering)",
                  std::to_string(committed), std::to_string(conflicts),
                  sim::Fmt(100.0 * conflicts /
                               std::max(1, committed + conflicts),
                           1)});
  }
  std::printf("%s", table.ToString().c_str());
  std::printf("Partition-aware validation eliminates the disjoint-partition"
              " conflicts that force §6's sequential-within-table "
              "scheduling.\n\n");
}

// --------------------------------------- 3. serial vs parallel scheduling

void AblateScheduler() {
  std::printf("--- ablation 3: act-phase scheduling policy ---\n");
  sim::TablePrinter table(
      {"scheduler", "committed", "conflicts", "makespan (min)"});
  for (int which = 0; which < 2; ++which) {
    sim::SimEnvironment env;
    for (int d = 0; d < 4; ++d) {
      AUTOCOMP_CHECK(workload::SetupTpchDatabase(
                         &env.catalog(), &env.query_engine(),
                         "db" + std::to_string(d), 8 * kGiB,
                         engine::UntunedUserJobProfile(), 0)
                         .ok());
    }
    env.clock().AdvanceTo(kHour);
    core::AutoCompPipeline::Stages stages;
    stages.generator = std::make_shared<core::HybridScopeGenerator>();
    stages.collector = std::make_shared<core::StatsCollector>(
        &env.catalog(), &env.control_plane(), &env.clock());
    stages.traits = {std::make_shared<core::FileCountReductionTrait>(),
                     std::make_shared<core::ComputeCostTrait>(
                         192, env.compaction_cluster()
                                  .options()
                                  .rewrite_bytes_per_hour)};
    stages.ranker = std::make_shared<core::MoopRanker>(
        core::MoopRanker::PaperDefault());
    stages.selector = std::make_shared<core::FixedKSelector>(60);
    if (which == 0) {
      stages.scheduler = std::make_shared<core::SerialScheduler>(
          &env.compaction_runner(), &env.control_plane());
    } else {
      stages.scheduler = std::make_shared<core::TableParallelScheduler>(
          &env.compaction_runner(), &env.control_plane());
    }
    core::AutoCompPipeline pipeline(std::move(stages), &env.catalog(),
                                    &env.clock());
    auto report = pipeline.RunOnce();
    AUTOCOMP_CHECK(report.ok());
    SimTime last_end = kHour;
    for (const core::ScheduledCompaction& unit : report->executed) {
      last_end = std::max(last_end, unit.result.end_time);
    }
    table.AddRow({which == 0 ? "serial" : "table-parallel",
                  std::to_string(report->committed_count()),
                  std::to_string(report->conflict_count()),
                  sim::Fmt(static_cast<double>(last_end - kHour) / 60.0, 1)});
  }
  std::printf("%s", table.ToString().c_str());
  std::printf("Table-parallel scheduling shortens the makespan without "
              "adding conflicts (units of one table stay sequential).\n");
}

// ---------------------------------- 4. plain vs clustering rewrite (§8)

void AblateClustering() {
  std::printf("--- ablation 4: plain vs clustering (Z-order-style) rewrite "
              "---\n");
  sim::TablePrinter table({"rewrite", "compaction GBHr",
                           "selective scan GiB", "full scan GiB",
                           "scan GBHr (selective)"});
  for (const bool cluster : {false, true}) {
    sim::SimEnvironment env;
    AUTOCOMP_CHECK(workload::SetupTpchDatabase(
                       &env.catalog(), &env.query_engine(), "db", 8 * kGiB,
                       engine::UntunedUserJobProfile(), 0)
                       .ok());
    engine::CompactionRequest request;
    request.table = "db.lineitem";
    request.cluster_output = cluster;
    auto result = env.compaction_runner().Run(request, kHour);
    AUTOCOMP_CHECK(result.ok() && result->committed);
    (void)env.control_plane().RunRetentionFor("db.lineitem", SimTime{0});
    env.clock().AdvanceTo(result->end_time + kMinute);
    // A dashboard-style selective query (10% of rows) vs a full scan.
    auto selective = env.query_engine().ExecuteRead(
        "db.lineitem", std::nullopt, env.clock().Now(), 0.1);
    auto full = env.query_engine().ExecuteRead(
        "db.lineitem", std::nullopt, env.clock().Now() + kHour, 1.0);
    AUTOCOMP_CHECK(selective.ok() && full.ok());
    table.AddRow({cluster ? "clustering" : "plain",
                  sim::Fmt(result->gb_hours, 1),
                  sim::Fmt(static_cast<double>(selective->bytes_scanned) /
                               kGiB, 2),
                  sim::Fmt(static_cast<double>(full->bytes_scanned) / kGiB,
                           2),
                  sim::Fmt(selective->gb_hours, 3)});
  }
  std::printf("%s", table.ToString().c_str());
  std::printf("Clustering costs ~1.6x the rewrite but selective scans skip\n"
              "row groups afterwards - the §8 cost/benefit extension.\n");
}

}  // namespace

int main() {
  std::printf("=== design-choice ablations ===\n\n");
  AblateSelector();
  AblateValidation();
  AblateScheduler();
  AblateClustering();
  return 0;
}
