#include "benchmarks/cab_experiment.h"

#include <algorithm>

#include "common/logging.h"
#include "workload/cab.h"
#include "workload/tpch.h"

namespace autocomp::bench {

std::vector<CabStrategy> PaperStrategies() {
  return {
      {"NoComp", false, sim::ScopeStrategy::kTable, 0},
      {"Table-10", true, sim::ScopeStrategy::kTable, 10},
      {"Hybrid-50", true, sim::ScopeStrategy::kHybrid, 50},
      {"Hybrid-500", true, sim::ScopeStrategy::kHybrid, 500},
  };
}

CabRunResult RunCabExperiment(const CabStrategy& strategy, double scale) {
  sim::SimEnvironment env;

  // --- Load: 20 databases with TPC-H-like schemas, written by untuned
  // user jobs (§6's "data load operation generates many small files").
  workload::CabOptions cab_options;
  cab_options.num_databases =
      std::max(1, static_cast<int>(20 * scale));
  cab_options.duration = 5 * kHour;
  workload::CabWorkload cab(cab_options);
  const int64_t bytes_per_db = static_cast<int64_t>(
      (500.0 / 20.0) * scale >= 1 ? (500.0 / 20.0) * kGiB : 4 * kGiB);
  for (const std::string& db : cab.DatabaseNames()) {
    Status setup = workload::SetupTpchDatabase(
        &env.catalog(), &env.query_engine(), db, bytes_per_db,
        engine::UntunedUserJobProfile(), /*at=*/0);
    AUTOCOMP_CHECK(setup.ok()) << setup;
  }

  CabRunResult result;
  result.label = strategy.label;
  result.initial_file_count = env.TotalFileCount();

  // --- Compaction service (hourly trigger, MOOP 0.7/0.3, 512MB target).
  // Act is deferred to the driver so rewrites overlap user writes on the
  // simulated timeline — the source of Table 1's cluster-side conflicts.
  std::unique_ptr<core::AutoCompService> service;
  if (strategy.compaction) {
    sim::StrategyPreset preset;
    preset.scope = strategy.scope;
    preset.k = strategy.k;
    preset.trigger_interval = kHour;
    preset.first_trigger = kHour;
    preset.deferred_act = true;
    service = sim::MakeMoopService(&env, preset);
  }

  // --- Drive the 5-hour stream.
  sim::MetricsRecorder metrics;
  sim::DriverOptions driver_options;
  driver_options.sample_interval = 10 * kMinute;
  driver_options.retention_interval = kHour;
  driver_options.deferred_compaction = true;
  sim::EventDriver driver(&env, &metrics, driver_options);
  if (service != nullptr) driver.AttachService(service.get());
  Status run = driver.Run(cab.GenerateEvents(), cab_options.duration);
  AUTOCOMP_CHECK(run.ok()) << run;

  // --- Collect the figure views.
  result.file_count_series = metrics.Series("files_total");
  result.read_latency = metrics.HourlySummaries("read_latency_s");
  result.write_latency = metrics.HourlySummaries("write_latency_s");
  result.write_queries = metrics.HourlyCounts("write_queries");
  result.client_conflicts = metrics.HourlyCounts("client_conflicts");
  result.total_read_seconds = driver.total_read_seconds();
  result.total_write_seconds = driver.total_write_seconds();
  result.final_file_count = env.TotalFileCount();
  result.cluster_conflicts = metrics.HourlyCounts("cluster_conflicts");
  for (const sim::SeriesPoint& p : metrics.Series("compaction_gbhr")) {
    result.compaction_gb_hours.push_back(p.value);
  }
  return result;
}

}  // namespace autocomp::bench
