/// \file bench_fig10_production_rollout.cc
/// \brief Reproduces Figure 10: "AutoComp behavior and impact on file
/// count" — the production rollout timeline.
///
/// Paper shapes to match:
///  (a) switching from manual top-100 to AutoComp top-10 (week 3)
///      *increases* files reduced (~+12%: 6.59M → 7.44M in production)
///      while also increasing compaction cost;
///  (b) switching from fixed k to budget-constrained dynamic k lets the
///      daily k grow to whatever fits the budget (k≈2500 at 226 TBHr);
///  (c) the fleet's total file count declines over time despite growth.

#include <cstdio>
#include <map>

#include "benchmarks/fleet_experiment.h"

using namespace autocomp;

int main() {
  std::printf("=== Figure 10: production rollout timeline ===\n");
  // Scaled-down weeks: 4 days each. Weeks 1-2 manual, weeks 3-6 auto-10,
  // then the dynamic-k transition.
  const int week_days = 4;
  std::vector<bench::FleetPhase> phases = {
      {"manual-100", 2 * week_days, bench::FleetPhase::Mode::kManualFixed,
       100, 0},
      {"auto-10", 4 * week_days, bench::FleetPhase::Mode::kAutoFixedK, 10, 0},
      {"auto-budget", 2 * week_days, bench::FleetPhase::Mode::kAutoBudget, 0,
       600},
  };
  const auto days = bench::RunFleetExperiment(phases);

  std::printf("--- (a)+(b): per-day compaction effectiveness and cost ---\n");
  sim::TablePrinter daily({"day", "phase", "k (committed)", "files reduced",
                           "GBHr", "fleet files"});
  for (const bench::FleetDayStats& d : days) {
    daily.AddRow({std::to_string(d.day), d.phase,
                  std::to_string(d.tables_compacted),
                  std::to_string(d.files_reduced), sim::Fmt(d.gb_hours, 1),
                  std::to_string(d.fleet_file_count)});
  }
  std::printf("%s\n", daily.ToString().c_str());

  // Weekly aggregates (the paper's Figure 10a granularity).
  std::printf("--- weekly aggregates ---\n");
  sim::TablePrinter weekly(
      {"week", "phase", "files reduced", "GBHr", "mean daily k"});
  std::map<int, std::vector<const bench::FleetDayStats*>> by_week;
  for (const bench::FleetDayStats& d : days) {
    by_week[d.day / week_days].push_back(&d);
  }
  for (const auto& [week, stats] : by_week) {
    int64_t reduced = 0;
    double gbhr = 0;
    double k_sum = 0;
    for (const bench::FleetDayStats* d : stats) {
      reduced += d->files_reduced;
      gbhr += d->gb_hours;
      k_sum += static_cast<double>(d->tables_compacted);
    }
    weekly.AddRow({std::to_string(week + 1), stats.front()->phase,
                   std::to_string(reduced), sim::Fmt(gbhr, 1),
                   sim::Fmt(k_sum / static_cast<double>(stats.size()), 1)});
  }
  std::printf("%s\n", weekly.ToString().c_str());

  // (a)'s headline comparison: steady-state manual (after its initial
  // cleanup week) vs AutoComp top-10 — the paper's 6.59M vs 7.44M.
  auto mean_reduced = [&](const std::string& phase, int from_day) {
    double total = 0;
    int n = 0;
    for (const bench::FleetDayStats& d : days) {
      if (d.phase == phase && d.day >= from_day) {
        total += static_cast<double>(d.files_reduced);
        ++n;
      }
    }
    return n > 0 ? total / n : 0.0;
  };
  const double manual = mean_reduced("manual-100", week_days);  // week 2
  const double auto10 = mean_reduced("auto-10", 0);
  std::printf(
      "mean daily files reduced (steady state): manual-100=%.0f "
      "auto-10=%.0f (auto/manual = %.2fx; paper: 1.12x with 10x fewer "
      "tables compacted)\n",
      manual, auto10, manual > 0 ? auto10 / manual : 0.0);

  // (c): the fleet keeps onboarding tables; fixed k=10 can barely hold
  // the line, and the budget-constrained dynamic k drives the count down
  // — the deployment's motivation for the week-22 transition.
  auto phase_trend = [&](const std::string& phase) {
    int64_t first = -1, last = -1;
    for (const bench::FleetDayStats& d : days) {
      if (d.phase != phase) continue;
      if (first < 0) first = d.fleet_file_count;
      last = d.fleet_file_count;
    }
    std::printf("  %-12s fleet files %lld -> %lld\n", phase.c_str(),
                static_cast<long long>(first), static_cast<long long>(last));
  };
  std::printf("--- (c): fleet file count trend per phase ---\n");
  phase_trend("manual-100");
  phase_trend("auto-10");
  phase_trend("auto-budget");
  return 0;
}
