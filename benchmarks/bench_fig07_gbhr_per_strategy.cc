/// \file bench_fig07_gbhr_per_strategy.cc
/// \brief Reproduces Figure 7: "Mean GBHr_App for various compaction
/// strategies" — per-compaction-run compute cost under each strategy.
///
/// Paper shape to match: table-scope compaction is more expensive and
/// more variable per run; the finer-grained hybrid strategies show a
/// lower, more stable GBHr_App, trading speed of file-count reduction
/// for controlled resource use.

#include <cmath>
#include <cstdio>

#include "benchmarks/cab_experiment.h"
#include "common/histogram.h"
#include "sim/metrics.h"

using namespace autocomp;

int main() {
  std::printf("=== Figure 7: mean GBHr_App per compaction strategy ===\n");
  sim::TablePrinter table(
      {"strategy", "runs", "mean GBHr", "stddev", "min", "max"});
  for (const bench::CabStrategy& strategy : bench::PaperStrategies()) {
    if (!strategy.compaction) continue;
    const bench::CabRunResult run = bench::RunCabExperiment(strategy);
    Sample sample;
    for (double gbhr : run.compaction_gb_hours) sample.Add(gbhr);
    table.AddRow({strategy.label, std::to_string(sample.count()),
                  sim::Fmt(sample.Mean(), 2), sim::Fmt(sample.StdDev(), 2),
                  sample.empty() ? "-" : sim::Fmt(sample.Min(), 2),
                  sample.empty() ? "-" : sim::Fmt(sample.Max(), 2)});
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf(
      "Expected shape: Table-10 has the highest and most variable per-run\n"
      "GBHr; Hybrid-50 is lowest and most stable; Hybrid-500 sits between.\n");
  return 0;
}
