/// \file bench_fig06_file_count_over_time.cc
/// \brief Reproduces Figure 6: "Compaction strategy impact on file count
/// over time" — the storage-layer file count sampled over the 5-hour CAB
/// experiment for NoComp, Table-10, Hybrid-50 and Hybrid-500.
///
/// Paper shape to match: NoComp grows steadily (~2,640 files/hour with a
/// spike near hour 4); every compaction strategy drops sharply after the
/// first trigger and then flattens; hybrid strategies decline more
/// gradually than table scope.

#include <cstdio>

#include "benchmarks/cab_experiment.h"
#include "sim/metrics.h"

using namespace autocomp;

int main() {
  std::printf("=== Figure 6: compaction strategy impact on file count ===\n");
  std::vector<bench::CabRunResult> runs;
  for (const bench::CabStrategy& strategy : bench::PaperStrategies()) {
    runs.push_back(bench::RunCabExperiment(strategy));
  }

  // One row per 30 simulated minutes; one column per strategy.
  sim::TablePrinter table({"t(min)", runs[0].label, runs[1].label,
                           runs[2].label, runs[3].label});
  for (SimTime t = 0; t <= 5 * kHour; t += 30 * kMinute) {
    std::vector<std::string> row = {std::to_string(t / kMinute)};
    for (const bench::CabRunResult& run : runs) {
      // Latest sample at or before t.
      double value = 0;
      for (const sim::SeriesPoint& p : run.file_count_series) {
        if (p.time <= t) value = p.value;
      }
      row.push_back(sim::Fmt(value, 0));
    }
    table.AddRow(std::move(row));
  }
  std::printf("%s\n", table.ToString().c_str());

  for (const bench::CabRunResult& run : runs) {
    const double hours = 5.0;
    std::printf("%-11s initial=%lld final=%lld  net %+lld (%.0f files/hour)\n",
                run.label.c_str(),
                static_cast<long long>(run.initial_file_count),
                static_cast<long long>(run.final_file_count),
                static_cast<long long>(run.final_file_count -
                                       run.initial_file_count),
                static_cast<double>(run.final_file_count -
                                    run.initial_file_count) /
                    hours);
  }
  return 0;
}
