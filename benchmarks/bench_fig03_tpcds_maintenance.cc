/// \file bench_fig03_tpcds_maintenance.cc
/// \brief Reproduces Figure 3: "TPC-DS experiment (Apache Spark &
/// Iceberg): comparison of execution time before and after compaction".
///
/// Paper shape to match: a data-maintenance phase that modifies ~3% of
/// the data degrades the subsequent single-user phase by ~1.53×; manually
/// triggering compaction restores performance to the initial level.

#include <cstdio>

#include "common/logging.h"
#include "common/random.h"
#include "sim/environment.h"
#include "sim/metrics.h"
#include "workload/tpcds.h"

using namespace autocomp;

namespace {

/// Runs one single-user pass (queries chained back to back, as in the
/// benchmark's single-stream phase) and returns its makespan in seconds.
double RunSingleUserPass(sim::SimEnvironment* env,
                         const workload::TpcdsWorkload& tpcds, Rng* rng) {
  double makespan = 0;
  SimTime cursor = env->clock().Now();
  for (const auto& [table, partition] : tpcds.SingleUserQueries(rng)) {
    auto result = env->query_engine().ExecuteRead(table, partition, cursor);
    AUTOCOMP_CHECK(result.ok()) << result.status();
    makespan += result->total_seconds;
    cursor += static_cast<SimTime>(result->total_seconds) + 1;
    env->clock().AdvanceTo(cursor);
  }
  return makespan;
}

}  // namespace

int main() {
  std::printf("=== Figure 3: TPC-DS single-user time around maintenance ===\n");
  sim::SimEnvironment env;
  workload::TpcdsOptions options;
  options.total_logical_bytes = 96 * kGiB;
  workload::TpcdsWorkload tpcds(options);
  AUTOCOMP_CHECK(tpcds.Setup(&env.catalog(), &env.query_engine(), 0).ok());

  Rng rng(11);
  env.clock().AdvanceTo(kHour);
  const double initial = RunSingleUserPass(&env, tpcds, &rng);

  // Data maintenance: ~3% of the data modified via delete + insert,
  // spraying small files into the fact tables.
  for (const engine::WriteSpec& write : tpcds.MaintenanceWrites(0.03, &rng)) {
    auto result = env.query_engine().ExecuteWrite(write, env.clock().Now());
    AUTOCOMP_CHECK(result.ok()) << result.status();
    env.clock().Advance(static_cast<SimTime>(result->total_seconds) + 1);
  }
  const double degraded = RunSingleUserPass(&env, tpcds, &rng);

  // Manual compaction of every table, then re-run.
  for (const std::string& table : tpcds.TableNames()) {
    engine::CompactionRequest request;
    request.table = table;
    auto result = env.compaction_runner().Run(request, env.clock().Now());
    AUTOCOMP_CHECK(result.ok()) << result.status();
    if (result->committed) {
      (void)env.control_plane().RunRetentionFor(table, SimTime{0});
      env.clock().AdvanceTo(result->end_time + 1);
    }
  }
  const double restored = RunSingleUserPass(&env, tpcds, &rng);

  sim::TablePrinter table({"phase", "single-user time (s)", "vs initial"});
  table.AddRow({"initial", sim::Fmt(initial, 1), "1.00x"});
  table.AddRow({"after maintenance", sim::Fmt(degraded, 1),
                sim::Fmt(degraded / initial, 2) + "x"});
  table.AddRow({"after compaction", sim::Fmt(restored, 1),
                sim::Fmt(restored / initial, 2) + "x"});
  std::printf("%s\n", table.ToString().c_str());
  std::printf("Paper: maintenance degrades by ~1.53x; compaction restores "
              "to ~1x.\n");
  return 0;
}
