/// \file bench_fig11_workload_impact.cc
/// \brief Reproduces Figure 11: "Impact of AutoComp on workload metrics,
/// including file scanning, query execution, and HDFS file opens".
///
/// Paper shapes to match:
///  (a) compaction runs that reduce a table's file count are followed by
///      fewer files scanned, lower query time and lower query cost; when
///      a table is not selected, small files re-accumulate (sawtooth);
///  (b) fleet-wide filesystem open() calls drop sharply when manual
///      compaction starts and drop further under auto-compaction.

#include <cstdio>
#include <map>

#include "benchmarks/fleet_experiment.h"

using namespace autocomp;

int main() {
  std::printf("=== Figure 11: workload and HDFS impact ===\n");

  // --- (a): 30 days under daily AutoComp; scan-heavy daily workload.
  {
    std::vector<bench::FleetPhase> phases = {
        {"auto-10", 30, bench::FleetPhase::Mode::kAutoFixedK, 10, 0},
    };
    const auto days = bench::RunFleetExperiment(phases);
    std::printf("--- (a) daily scan workload vs compaction (30 days) ---\n");
    sim::TablePrinter table({"day", "files scanned", "query time (s)",
                             "query GBHr", "files reduced by compaction"});
    for (const bench::FleetDayStats& d : days) {
      table.AddRow({std::to_string(d.day), std::to_string(d.files_scanned),
                    sim::Fmt(d.query_seconds, 0),
                    sim::Fmt(d.query_gb_hours, 1),
                    std::to_string(d.files_reduced)});
    }
    std::printf("%s\n", table.ToString().c_str());
    // Correlation check: days after heavy compaction should scan fewer
    // files per query than days after light compaction.
    double scanned_after_heavy = 0, scanned_after_light = 0;
    int heavy = 0, light = 0;
    for (size_t i = 1; i < days.size(); ++i) {
      if (days[i - 1].files_reduced > 2000) {
        scanned_after_heavy += static_cast<double>(days[i].files_scanned);
        ++heavy;
      } else {
        scanned_after_light += static_cast<double>(days[i].files_scanned);
        ++light;
      }
    }
    if (heavy > 0 && light > 0) {
      std::printf("mean files scanned after heavy-compaction days: %.0f; "
                  "after light days: %.0f\n\n",
                  scanned_after_heavy / heavy, scanned_after_light / light);
    }
  }

  // --- (b): open() calls per period across the rollout.
  {
    std::vector<bench::FleetPhase> phases = {
        {"no-compaction", 6, bench::FleetPhase::Mode::kNone, 0, 0},
        {"manual-100", 6, bench::FleetPhase::Mode::kManualFixed, 100, 0},
        {"auto-budget", 6, bench::FleetPhase::Mode::kAutoBudget, 0, 800},
    };
    const auto days = bench::RunFleetExperiment(phases);
    std::printf("--- (b) storage open() calls per period ---\n");
    sim::TablePrinter table({"period", "phase", "open() calls", "per day"});
    std::map<std::string, std::pair<int64_t, int>> by_phase;
    std::vector<std::string> order;
    for (const bench::FleetDayStats& d : days) {
      auto [it, inserted] = by_phase.try_emplace(d.phase);
      if (inserted) order.push_back(d.phase);
      it->second.first += d.open_calls;
      it->second.second += 1;
    }
    int period = 1;
    for (const std::string& phase : order) {
      const auto& [total, n] = by_phase[phase];
      table.AddRow({std::to_string(period++), phase, std::to_string(total),
                    std::to_string(total / std::max(1, n))});
    }
    std::printf("%s\n", table.ToString().c_str());
    std::printf("Paper: open() calls drop sharply when manual compaction "
                "starts (month 4) and drop further under auto-compaction "
                "(month 9).\n");
  }
  return 0;
}
