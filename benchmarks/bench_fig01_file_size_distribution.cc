/// \file bench_fig01_file_size_distribution.cc
/// \brief Reproduces Figure 1: "File size distribution for ingested data
/// (raw ingestion vs. user-derived data)".
///
/// Paper shape to match: the centrally managed trickle-ingestion pipeline
/// (5-minute flushes + hourly incremental compaction) concentrates file
/// sizes near the 512MB target, while end-user Spark/Trino/Flink jobs
/// produce a heavy skew of small files.

#include <cstdio>

#include "common/histogram.h"
#include "common/logging.h"
#include "sim/driver.h"
#include "sim/environment.h"
#include "sim/metrics.h"
#include "workload/tpch.h"
#include "workload/trickle.h"

using namespace autocomp;

namespace {

SizeHistogram HistogramOf(catalog::Catalog* catalog,
                          const std::vector<std::string>& tables) {
  SizeHistogram histogram = SizeHistogram::ForFileSizes();
  for (const std::string& table : tables) {
    auto meta = catalog->LoadTable(table);
    if (!meta.ok()) continue;
    (*meta)->ForEachLiveFile(
        [&](const lst::DataFile& f) { histogram.Add(f.file_size_bytes); });
  }
  return histogram;
}

}  // namespace

int main() {
  std::printf("=== Figure 1: raw ingestion vs user-derived file sizes ===\n");
  sim::SimEnvironment env;

  // --- Raw ingestion: 6 hours of 5-minute flushes with hourly rollups
  // (the managed pipeline's incremental compaction to 512MB, §2).
  workload::TrickleOptions trickle_options;
  trickle_options.num_topics = 4;
  trickle_options.duration = 6 * kHour;
  trickle_options.bytes_per_flush = 384 * kMiB;
  workload::TrickleIngestion trickle(trickle_options);
  AUTOCOMP_CHECK(trickle.Setup(&env.catalog(), 0).ok());
  SimTime next_rollup = kHour;
  for (const workload::QueryEvent& e : trickle.GenerateEvents()) {
    while (e.time >= next_rollup) {
      env.clock().AdvanceTo(next_rollup);
      auto rolled = trickle.RunHourlyRollup(&env.compaction_runner(),
                                            &env.control_plane(), next_rollup);
      AUTOCOMP_CHECK(rolled.ok()) << rolled.status();
      next_rollup += kHour;
    }
    env.clock().AdvanceTo(e.time);
    auto write = env.query_engine().ExecuteWrite(e.write, e.time);
    AUTOCOMP_CHECK(write.ok()) << write.status();
  }
  env.clock().AdvanceTo(next_rollup);
  (void)trickle.RunHourlyRollup(&env.compaction_runner(),
                                &env.control_plane(), next_rollup);

  // --- User-derived data: untuned end-user jobs.
  AUTOCOMP_CHECK(workload::SetupTpchDatabase(
                     &env.catalog(), &env.query_engine(), "userdata",
                     24 * kGiB, engine::UntunedUserJobProfile(),
                     env.clock().Now())
                     .ok());

  const SizeHistogram raw = HistogramOf(&env.catalog(), trickle.TableNames());
  std::vector<std::string> user_tables;
  for (const std::string& t : env.catalog().ListTables("userdata")) {
    user_tables.push_back("userdata." + t);
  }
  const SizeHistogram user = HistogramOf(&env.catalog(), user_tables);

  std::printf("--- raw ingestion (managed pipeline, hourly rollup) ---\n%s\n",
              raw.ToAsciiChart().c_str());
  std::printf("--- user-derived (untuned engine writers) ---\n%s\n",
              user.ToAsciiChart().c_str());

  sim::TablePrinter table({"dataset", "files", "% < 128MiB", "% < 512MiB"});
  table.AddRow({"raw ingestion", std::to_string(raw.total_count()),
                sim::Fmt(100 * raw.FractionBelow(128 * kMiB), 1),
                sim::Fmt(100 * raw.FractionBelow(512 * kMiB), 1)});
  table.AddRow({"user-derived", std::to_string(user.total_count()),
                sim::Fmt(100 * user.FractionBelow(128 * kMiB), 1),
                sim::Fmt(100 * user.FractionBelow(512 * kMiB), 1)});
  std::printf("%s\n", table.ToString().c_str());
  return 0;
}
