file(REMOVE_RECURSE
  "libautocomp_engine.a"
)
