# Empty dependencies file for autocomp_engine.
# This may be replaced when dependencies are built.
